examples/cross_system.ml: Filename List Option Printf Sys Tea_dbt Tea_pinsim Tea_traces Tea_workloads Unix
