examples/cross_system.mli:
