examples/listscan_dfa.ml: Format Hashtbl List Option Printf String Tea_core Tea_dbt Tea_isa Tea_traces Tea_workloads
