examples/listscan_dfa.mli:
