examples/phase_detection.mli:
