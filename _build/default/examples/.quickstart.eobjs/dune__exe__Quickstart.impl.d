examples/quickstart.ml: List Option Printf Tea_core Tea_dbt Tea_isa Tea_pinsim Tea_report Tea_traces Tea_workloads
