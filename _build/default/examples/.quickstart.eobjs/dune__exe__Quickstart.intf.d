examples/quickstart.mli:
