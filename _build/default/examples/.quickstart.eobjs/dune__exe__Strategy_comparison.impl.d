examples/strategy_comparison.ml: Array Hashtbl List Option Printf Tea_core Tea_dbt Tea_pinsim Tea_traces Tea_workloads
