examples/trace_cachesim.ml: List Option Printf Tea_cachesim Tea_dbt Tea_traces Tea_workloads
