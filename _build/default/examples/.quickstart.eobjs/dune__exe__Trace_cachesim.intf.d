examples/trace_cachesim.mli:
