examples/trace_optimizer.ml: Cond Insn List Operand Option Printf Reg Tea_cfg Tea_core Tea_dbt Tea_isa Tea_opt Tea_pinsim Tea_traces Tea_workloads
