examples/trace_optimizer.mli:
