examples/unroll_profiling.ml: Format List Option Printf Tea_cfg Tea_core Tea_dbt Tea_pinsim Tea_traces Tea_workloads
