examples/unroll_profiling.mli:
