(* The cross-system workflow that motivated TEA (§3.1 of the paper):
   record traces in one environment (the StarDBT-like runtime, where
   recording is easy), serialize them, then load and replay them in a
   different environment (the Pin-like instrumentation frontend, where
   profiling is easy) — against an unmodified executable.

   The two frontends disagree about dynamic basic-block boundaries (REP
   instructions, cpuid), which is exactly the §4.1 implementation
   challenge; the edge-filtering replay still maps execution onto the
   recorded TBBs.

   Run with: dune exec examples/cross_system.exe *)

let () =
  let profile = Option.get (Tea_workloads.Spec2000.by_name "177.mesa") in
  let image = Tea_workloads.Spec2000.image profile in

  (* System A: record under the DBT and save the traces. *)
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  let path = Filename.temp_file "tea_traces" ".txt" in
  Tea_traces.Serialize.save path traces;
  Printf.printf "system A (StarDBT-like): recorded %d traces, coverage %.1f%%\n"
    (List.length traces)
    (100.0 *. dbt.Tea_dbt.Stardbt.coverage);
  Printf.printf "saved to %s (%d bytes)\n" path (Unix.stat path).Unix.st_size;

  (* System B: load the traces against the same executable and replay. *)
  let loaded = Tea_traces.Serialize.load image path in
  assert (List.length loaded = List.length traces);
  let result, _replayer = Tea_pinsim.Pintool_replay.replay ~traces:loaded image in
  Printf.printf
    "system B (Pin-like): replayed with coverage %.1f%% (DBT saw %.1f%%)\n"
    (100.0 *. result.Tea_pinsim.Pintool_replay.coverage)
    (100.0 *. dbt.Tea_dbt.Stardbt.coverage);
  Printf.printf
    "replay is expected to be slightly higher: the replayer has the traces \
     from the first instruction, while the recording run executed cold code \
     before each trace existed (paper, Table 2)\n";
  Sys.remove path
