(* Figures 2 and 3 of the paper, reproduced end to end.

   The list-scan program (Figure 2a) is run under the DBT with MRET trace
   selection; with roughly half the list nodes matching, both loop paths
   get hot and MRET records two traces — the paper's T1 (miss path) and T2
   (hit path), sharing the $$next block as two distinct TBBs. The traces
   are converted to a TEA (Figure 3b) whose states and labelled transitions
   are printed, along with Graphviz source.

   Run with: dune exec examples/listscan_dfa.exe *)

let () =
  let image = Tea_workloads.Micro.list_scan ~nodes:2000 ~match_every:2 () in
  print_string "--- Figure 2(a): the list-scan program ---\n";
  Format.printf "%a" Tea_isa.Image.pp_listing image;

  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  Printf.printf "\n--- Figure 2(c): MRET traces ---\n";
  List.iter (fun t -> Format.printf "%a" Tea_traces.Trace.pp_full t) traces;

  let auto = Tea_core.Builder.build traces in
  Printf.printf "\n--- Figure 3(b): the TEA ---\n";
  Printf.printf "states: NTE";
  Tea_core.Automaton.iter_live
    (fun _s info ->
      Printf.printf ", $$T%d.%d@0x%x" info.Tea_core.Automaton.trace_id
        info.Tea_core.Automaton.tbb_index info.Tea_core.Automaton.block_start)
    auto;
  Printf.printf "\ntransitions:\n";
  List.iter
    (fun (addr, head) ->
      Printf.printf "  NTE --0x%x--> state %d\n" addr head)
    (Tea_core.Automaton.heads auto);
  Tea_core.Automaton.iter_live
    (fun s _ ->
      List.iter
        (fun (label, dst) -> Printf.printf "  %d --0x%x--> %d\n" s label dst)
        (Tea_core.Automaton.edges_of auto s))
    auto;
  Printf.printf "(every unlisted label falls back to NTE)\n";

  (* The paper's punchline: the same $$next block can be told apart by TEA
     state even though the PC alone is ambiguous. *)
  let next_instances =
    let by_addr = Hashtbl.create 8 in
    Tea_core.Automaton.iter_live
      (fun s info ->
        let k = info.Tea_core.Automaton.block_start in
        Hashtbl.replace by_addr k (s :: Option.value (Hashtbl.find_opt by_addr k) ~default:[]))
      auto;
    Hashtbl.fold (fun addr states acc ->
        if List.length states > 1 then (addr, states) :: acc else acc)
      by_addr []
  in
  List.iter
    (fun (addr, states) ->
      Printf.printf
        "block 0x%x appears in %d traces: states %s (PC alone cannot tell \
         them apart; the TEA state can)\n"
        addr (List.length states)
        (String.concat ", " (List.map string_of_int states)))
    next_instances;

  print_string "\n--- Graphviz (render with dot -Tpng) ---\n";
  print_string (Tea_core.Dot.of_automaton ~title:"listscan" auto)
