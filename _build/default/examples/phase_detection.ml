(* Phase detection from trace stability (paper §5, Wimmer et al. [22]).

   The synthetic benchmarks literally execute in phases: main runs a few
   distinct hot loops in sequence, with cold setup code between them. A
   program is "in a phase" while execution stays inside the recorded
   traces (low trace-exit ratio in the TEA replay) and "between phases"
   when the exit ratio spikes. This example replays a benchmark through
   its TEA, feeds the state stream to the detector, and prints the
   segments it finds.

   Run with: dune exec examples/phase_detection.exe *)

let () =
  (* Two hot loops separated by a long once-executed stretch: in-phase,
     between-phases, in-phase. *)
  let image = Tea_workloads.Micro.two_phase ~phase_iters:3000 ~gap_blocks:400 () in
  Printf.printf "workload: micro:two_phase (2 hot loops, 400-block cold gap)\n";

  (* Record traces, build the TEA. *)
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let auto = Tea_core.Builder.of_set dbt.Tea_dbt.Stardbt.set in
  let trans = Tea_core.Transition.create Tea_core.Transition.config_global_local auto in
  let replayer = Tea_core.Replayer.create trans in

  (* Replay, streaming every post-step state into the detector. *)
  let detector =
    Tea_core.Phases.create
      ~config:
        {
          Tea_core.Phases.window = 256;
          max_stable_exit_ratio = 0.05;
          min_stable_coverage = 0.7;
        }
      ()
  in
  let filter =
    Tea_pinsim.Edge_filter.create ~emit:(fun block ~expanded ->
        Tea_core.Replayer.feed_addr replayer ~insns:expanded
          block.Tea_cfg.Block.start;
        Tea_core.Phases.feed detector (Tea_core.Replayer.state replayer))
  in
  let _ = Tea_pinsim.Pin.run ~tool:(Tea_pinsim.Edge_filter.callbacks filter) image in
  Tea_pinsim.Edge_filter.flush filter;
  Tea_core.Phases.finish detector;

  Format.printf "%a" Tea_core.Phases.pp detector;
  Printf.printf "stable fraction: %.1f%%\n"
    (100.0
    *. float_of_int (Tea_core.Phases.stable_steps detector)
    /. float_of_int (max 1 (Tea_core.Phases.total_steps detector)));

  (* And the trace analytics the replay produced along the way. *)
  print_endline "\nhottest traces:";
  List.iter
    (fun s -> Format.printf "  %a@." Tea_core.Analysis.pp_trace_stats s)
    (Tea_core.Analysis.hottest ~n:5 replayer);
  print_endline (Tea_core.Analysis.coverage_summary replayer)
