(* Quickstart: the whole TEA pipeline on one small program.

   1. Build a program (the paper's Figure 2 list scan).
   2. Run it under the StarDBT-like runtime, recording MRET traces.
   3. Convert the traces to a TEA with Algorithm 1 and compare memory.
   4. Replay an unmodified execution through the TEA under the Pin-like
      frontend and report coverage.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A program: scan a 2000-node linked list, five passes. *)
  let image = Tea_workloads.Micro.list_scan ~nodes:2000 ~passes:5 () in
  Printf.printf "program: %d static instructions, %d code bytes\n"
    (Tea_isa.Image.instruction_count image)
    (Tea_isa.Image.code_bytes image);

  (* 2. Record MRET traces under the DBT. *)
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  Printf.printf "recorded %d traces (%d TBBs), DBT coverage %.1f%%\n"
    (List.length traces)
    (Tea_traces.Trace_set.n_tbbs dbt.Tea_dbt.Stardbt.set)
    (100.0 *. dbt.Tea_dbt.Stardbt.coverage);

  (* 3. Algorithm 1: traces -> TEA; compare representations. *)
  let auto = Tea_core.Builder.build traces in
  let dbt_bytes = Tea_traces.Trace_set.dbt_bytes dbt.Tea_dbt.Stardbt.set image in
  let tea_bytes = Tea_core.Automaton.byte_size auto in
  Printf.printf
    "TEA: %d states + NTE, %d transitions\n\
     memory: replicating DBT %d B vs TEA %d B  ->  %.0f%% savings\n"
    (Tea_core.Automaton.n_states auto)
    (Tea_core.Automaton.n_transitions auto)
    dbt_bytes tea_bytes
    (100.0 *. Tea_report.Stats.savings ~dbt:dbt_bytes ~tea:tea_bytes);

  (* 4. Replay on the unmodified program under the Pin-like frontend. *)
  let result, _replayer = Tea_pinsim.Pintool_replay.replay ~traces image in
  Printf.printf
    "replay: coverage %.1f%% (%d trace entries, %d exits), slowdown %.1fx\n"
    (100.0 *. result.Tea_pinsim.Pintool_replay.coverage)
    result.Tea_pinsim.Pintool_replay.trace_enters
    result.Tea_pinsim.Pintool_replay.trace_exits
    result.Tea_pinsim.Pintool_replay.slowdown
