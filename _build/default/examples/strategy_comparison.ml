(* The paper's second listed use of TEA (§1): "investigating trace
   formation techniques without concerning about the trace code
   compilation correctness".

   Because TEA needs no generated code, comparing selection strategies is
   just: record with each strategy, build the TEA, replay once, and read
   off the numbers a trace-selection study wants — coverage, trace count,
   code duplication, memory, and stability (exit behaviour). No code
   cache, no linking, no patching correctness to debug for any of them.

   Run with: dune exec examples/strategy_comparison.exe *)

let () =
  let profile = Option.get (Tea_workloads.Spec2000.by_name "164.gzip") in
  let image = Tea_workloads.Spec2000.image profile in
  Printf.printf "trace-formation study on %s (all four strategies):\n\n"
    profile.Tea_workloads.Proggen.name;
  Printf.printf "%-8s %7s %7s %12s %9s %9s %8s %8s\n" "strategy" "traces"
    "TBBs" "duplication" "DBT B" "TEA B" "coverage" "exits/1k";
  List.iter
    (fun (name, strategy) ->
      let dbt = Tea_dbt.Stardbt.record ~strategy image in
      let set = dbt.Tea_dbt.Stardbt.set in
      let traces = Tea_traces.Trace_set.to_list set in
      let tbbs = Tea_traces.Trace_set.n_tbbs set in
      let distinct =
        let seen = Hashtbl.create 256 in
        List.iter
          (fun t ->
            Array.iter
              (fun tb -> Hashtbl.replace seen (Tea_traces.Tbb.start tb) ())
              t.Tea_traces.Trace.tbbs)
          traces;
        Hashtbl.length seen
      in
      let auto = Tea_core.Builder.build traces in
      let result, _replayer = Tea_pinsim.Pintool_replay.replay ~traces image in
      let exits_per_1k =
        1000.0
        *. float_of_int result.Tea_pinsim.Pintool_replay.trace_exits
        /. float_of_int (max 1 result.Tea_pinsim.Pintool_replay.covered_insns)
      in
      Printf.printf "%-8s %7d %7d %11.2fx %9d %9d %7.1f%% %8.2f\n" name
        (Tea_traces.Trace_set.n_traces set)
        tbbs
        (float_of_int tbbs /. float_of_int (max 1 distinct))
        (Tea_traces.Trace_set.dbt_bytes set image)
        (Tea_core.Automaton.byte_size auto)
        (100.0 *. result.Tea_pinsim.Pintool_replay.coverage)
        exits_per_1k)
    Tea_traces.Registry.extended;
  print_newline ();
  print_endline
    "duplication = TBB instances per distinct block (tail duplication cost);";
  print_endline
    "exits/1k = trace exits per 1000 covered instructions (trace stability).";
  print_endline
    "None of this required compiling a single trace: the automata replayed\n\
     against the unmodified program."
