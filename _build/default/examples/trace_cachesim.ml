(* The paper's first listed use of TEA (§1): "building traces in one
   system, e.g. by using a DBT, and collecting statistics and profiling
   information for them on a second system, e.g. by replaying the traces
   on a cycle accurate simulator."

   Here the "second system" is a two-level cache simulator. Traces are
   recorded under the StarDBT-like runtime; the TEA replay then attributes
   every instruction fetch and data access of an *unmodified* execution to
   the trace executing at that moment — per-trace I-cache and D-cache miss
   profiles for traces that have no generated code.

   Run with: dune exec examples/trace_cachesim.exe *)

let () =
  (* A pointer-chasing workload whose ring (16 K nodes x 16 B = 256 KB)
     blows through L1D: the hot trace is exactly the one with terrible
     data locality. *)
  let image = Tea_workloads.Micro.big_chase ~nodes:16384 ~steps:150000 () in

  (* System A: record traces under the DBT. *)
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  Printf.printf "recorded %d traces under the DBT (coverage %.1f%%)\n\n"
    (List.length traces)
    (100.0 *. dbt.Tea_dbt.Stardbt.coverage);

  (* System B: the cache simulator, with per-trace attribution via TEA. *)
  let report = Tea_cachesim.Collector.profile ~traces image in
  print_string (Tea_cachesim.Collector.render report);

  (* The actionable outcome: which trace suffers the worst data locality? *)
  match
    List.filter (fun r -> r.Tea_cachesim.Collector.d_accesses > 1000) report.rows
  with
  | [] -> ()
  | rows ->
      let worst =
        List.fold_left
          (fun best r ->
            let rate (x : Tea_cachesim.Collector.row) =
              float_of_int x.d_misses /. float_of_int (max 1 x.d_accesses)
            in
            if rate r > rate best then r else best)
          (List.hd rows) rows
      in
      Printf.printf
        "\nworst data locality: trace %d (%.2f%% D-miss rate) — the trace an \
         optimizer would prefetch for\n"
        worst.trace_id
        (100.0
        *. float_of_int worst.d_misses
        /. float_of_int (max 1 worst.d_accesses))
