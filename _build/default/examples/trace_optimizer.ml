(* Closing the paper's motivation loop: TEA collects profile data so a
   runtime can "aggressively optimize traces". This example records a
   trace whose body contains four classic superblock optimization
   opportunities, replays the unmodified program to get the per-TBB
   profile, and prints the profile-weighted cycle savings an optimizer
   would bank — all before any trace code exists.

   Run with: dune exec examples/trace_optimizer.exe *)

open Tea_isa
module I = Insn
module O = Operand
module Codegen = Tea_workloads.Codegen

let reg r = O.Reg r
let imm n = O.Imm n

(* A hot loop with deliberately sloppy code:
   - imul by 8 (strength-reducible)
   - two adjacent add-immediates (combinable)
   - a reload of an unchanged memory word (redundant)
   - a store immediately overwritten (dead) *)
let build () =
  let cg = Codegen.create () in
  let cell = Codegen.alloc_word cg 37 in
  let sink = Codegen.alloc_word cg 0 in
  let counter = Codegen.alloc_word cg 0 in
  Codegen.place cg "main";
  Codegen.emit_all cg
    [ I.Mov (reg Reg.EAX, imm 1); I.Mov (O.mem counter, imm 5000) ];
  Codegen.place cg "loop";
  Codegen.emit_all cg
    [
      I.Imul (Reg.EAX, imm 8);                 (* -> shl eax, 3 *)
      I.Alu (I.Add, reg Reg.EAX, imm 3);
      I.Alu (I.Add, reg Reg.EAX, imm 4);       (* -> add eax, 7 *)
      I.Mov (reg Reg.EBX, O.mem cell);
      I.Alu (I.Xor, reg Reg.EAX, reg Reg.EBX);
      I.Mov (reg Reg.ECX, O.mem cell);         (* redundant: still in ebx *)
      I.Alu (I.And, reg Reg.EAX, reg Reg.ECX);
      I.Mov (O.mem sink, reg Reg.EAX);         (* dead: overwritten below *)
      I.Mov (O.mem sink, reg Reg.EBX);
      I.Dec (O.mem counter);
      I.Jcc (Cond.NE, I.Lbl "loop");
    ];
  Codegen.emit_all cg
    [ I.Sys 1; I.Mov (reg Reg.EAX, imm 0); I.Sys 0 ];
  Codegen.assemble cg

let () =
  let image = build () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in

  (* replay to collect the per-TBB profile *)
  let auto = Tea_core.Builder.build traces in
  let trans = Tea_core.Transition.create Tea_core.Transition.config_global_local auto in
  let replayer = Tea_core.Replayer.create trans in
  let filter =
    Tea_pinsim.Edge_filter.create ~emit:(fun block ~expanded ->
        Tea_core.Replayer.feed_addr replayer ~insns:expanded block.Tea_cfg.Block.start)
  in
  let _ = Tea_pinsim.Pin.run ~tool:(Tea_pinsim.Edge_filter.callbacks filter) image in
  Tea_pinsim.Edge_filter.flush filter;

  List.iter
    (fun trace ->
      let savings = Tea_opt.Opt.weighted replayer trace in
      if savings.Tea_opt.Opt.findings <> [] then
        print_string (Tea_opt.Opt.render trace savings))
    traces;
  let total =
    List.fold_left
      (fun acc trace -> acc + (Tea_opt.Opt.weighted replayer trace).Tea_opt.Opt.expected_cycles)
      0 traces
  in
  let native = Tea_pinsim.Pin.native_cycles image in
  Printf.printf
    "\nexpected whole-run improvement from optimizing the traces: %d of %d \
     cycles (%.1f%%) — computed from the TEA replay alone\n"
    total native
    (100.0 *. float_of_int total /. float_of_int native)
