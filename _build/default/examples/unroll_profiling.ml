(* The paper's Figure 1 motivation, reproduced.

   An optimizer wants to unroll the hot copy loop by 2, but the profile it
   has describes the *original* trace — conservatively propagating it to
   the unrolled copies would pessimize further optimization. The paper's
   answer: *duplicate* the trace instead (Figure 1d), build the TEA for the
   duplicated trace, and replay it on the unmodified program; the TEA
   states now label each copy of the loop body separately, so the replayed
   profile is exactly the per-copy profile the unrolled code will have.

   Run with: dune exec examples/unroll_profiling.exe *)

let () =
  (* Figure 1(a): copy 100 words; 20 passes so the loop is hot. *)
  let words = 100 and passes = 20 in
  let image = Tea_workloads.Micro.copy_loop ~words ~passes () in

  (* Figure 1(b): the recorded trace of the copy loop. *)
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  let loop_trace =
    (* the cyclic trace with the most executions: the copy loop body *)
    match
      List.filter
        (fun t -> Tea_traces.Trace.successors t (Tea_traces.Trace.n_tbbs t - 1) <> [])
        traces
    with
    | t :: _ -> t
    | [] -> failwith "no cyclic trace recorded"
  in
  Format.printf "--- Figure 1(b): the recorded trace ---@.%a@."
    Tea_traces.Trace.pp_full loop_trace;

  (* Figure 1(d): duplicate (NOT unroll) the trace so profiling can tell
     the copies apart. *)
  let dup = Tea_core.Builder.duplicate_trace ~factor:2 loop_trace in
  Format.printf "--- Figure 1(d): duplicated x2 ---@.%a@." Tea_traces.Trace.pp_full dup;

  (* Replay the duplicated trace's TEA against the unmodified program. *)
  let auto = Tea_core.Builder.build [ dup ] in
  let trans = Tea_core.Transition.create Tea_core.Transition.config_global_local auto in
  let replayer = Tea_core.Replayer.create trans in
  let filter =
    Tea_pinsim.Edge_filter.create ~emit:(fun block ~expanded ->
        Tea_core.Replayer.feed_addr replayer ~insns:expanded
          block.Tea_cfg.Block.start)
  in
  let _stats = Tea_pinsim.Pin.run ~tool:(Tea_pinsim.Edge_filter.callbacks filter) image in
  Tea_pinsim.Edge_filter.flush filter;

  Printf.printf "--- per-copy profile from TEA replay ---\n";
  let profile = Tea_core.Replayer.trace_profile replayer dup.Tea_traces.Trace.id in
  let body = Tea_traces.Trace.n_tbbs loop_trace in
  List.iter
    (fun (tbb_index, count) ->
      Printf.printf "  copy %d, TBB %d (0x%x): executed %d times\n"
        (tbb_index / body) tbb_index
        (Tea_traces.Tbb.start (Tea_traces.Trace.tbb dup tbb_index))
        count)
    profile;
  (* With an even iteration count per pass, the two copies run equally
     often — the specialized profile the unrolled loop needs. *)
  (match profile with
  | (_, c0) :: rest ->
      let c1 = match rest with (_, c) :: _ -> c | [] -> 0 in
      Printf.printf
        "copies executed %d / %d times -> the unrolled loop's profile is \
         balanced, not conservatively merged\n"
        c0 c1
  | [] -> ());

  (* Why duplication rather than unrolling? Figure 1(c)'s actually-unrolled
     trace lives at trace-cache addresses that never appear in the original
     program, so its DFA "finds no corresponding executable code": *)
  let unrolled =
    Tea_core.Builder.unroll_trace ~factor:2 ~clone_base:0x40000000 loop_trace
  in
  let auto_unrolled = Tea_core.Builder.build [ unrolled ] in
  let trans_unrolled =
    Tea_core.Transition.create Tea_core.Transition.config_global_local auto_unrolled
  in
  let rep_unrolled = Tea_core.Replayer.create trans_unrolled in
  let filter_unrolled =
    Tea_pinsim.Edge_filter.create ~emit:(fun block ~expanded ->
        Tea_core.Replayer.feed_addr rep_unrolled ~insns:expanded
          block.Tea_cfg.Block.start)
  in
  let _ =
    Tea_pinsim.Pin.run ~tool:(Tea_pinsim.Edge_filter.callbacks filter_unrolled) image
  in
  Tea_pinsim.Edge_filter.flush filter_unrolled;
  Printf.printf
    "\n--- Figure 1(c) contrast: the truly *unrolled* trace cannot be \
     replayed ---\ncoverage with unrolled trace: %.1f%% (its DFA never \
     leaves NTE)\ncoverage with duplicated trace: %.1f%%\n"
    (100.0 *. Tea_core.Replayer.coverage rep_unrolled)
    (100.0 *. Tea_core.Replayer.coverage replayer)
