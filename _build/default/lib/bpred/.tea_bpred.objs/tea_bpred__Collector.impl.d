lib/bpred/collector.ml: Buffer Hashtbl Int List Option Predictor Printf Tea_cfg Tea_core Tea_isa Tea_machine Tea_pinsim Tea_util
