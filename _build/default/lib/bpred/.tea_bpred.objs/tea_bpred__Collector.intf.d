lib/bpred/collector.mli: Predictor Tea_isa Tea_traces
