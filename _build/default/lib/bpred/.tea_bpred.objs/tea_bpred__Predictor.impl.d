lib/bpred/predictor.ml: Array Bool Printf
