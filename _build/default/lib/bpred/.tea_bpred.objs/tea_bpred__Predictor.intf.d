lib/bpred/predictor.mli:
