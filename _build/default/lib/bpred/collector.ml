module Interp = Tea_machine.Interp
module Block = Tea_cfg.Block
module I = Tea_isa.Insn

type row = {
  trace_id : int;
  branches : int;
  mispredicted : int;
  miss_rate : float;
}

type report = {
  rows : row list;
  cold : row;
  total : Predictor.t;
  replay_coverage : float;
}

type acc = { mutable b : int; mutable m : int }

type pending = { pc : int; target : int; taken : bool }

let profile ?(kind = Predictor.Gshare 12) ?fuel ~traces image =
  let predictor = Predictor.create kind in
  let auto = Tea_core.Builder.build traces in
  let trans =
    Tea_core.Transition.create Tea_core.Transition.config_global_local auto
  in
  let replayer = Tea_core.Replayer.create trans in
  let per_trace : (int, acc) Hashtbl.t = Hashtbl.create 64 in
  let acc_for id =
    match Hashtbl.find_opt per_trace id with
    | Some a -> a
    | None ->
        let a = { b = 0; m = 0 } in
        Hashtbl.replace per_trace id a;
        a
  in
  let buffer : pending Tea_util.Vec.t = Tea_util.Vec.create () in
  let charge block ~expanded =
    Tea_core.Replayer.feed_addr replayer ~insns:expanded block.Block.start;
    let state = Tea_core.Replayer.state replayer in
    let trace_id =
      if state = Tea_core.Automaton.nte then -1
      else
        match Tea_core.Automaton.state_info auto state with
        | Some info -> info.Tea_core.Automaton.trace_id
        | None -> -1
    in
    let a = acc_for trace_id in
    Tea_util.Vec.iter
      (fun p ->
        a.b <- a.b + 1;
        if not (Predictor.record predictor ~pc:p.pc ~target:p.target ~taken:p.taken)
        then a.m <- a.m + 1)
      buffer;
    Tea_util.Vec.clear buffer
  in
  let filter = Tea_pinsim.Edge_filter.create ~emit:charge in
  let discovery =
    Tea_cfg.Discovery.create ~policy:Tea_cfg.Discovery.Pin image
      (Tea_pinsim.Edge_filter.callbacks filter)
  in
  let on_event (ev : Interp.event) =
    (match ev.Interp.insn with
    | I.Jcc (_, I.Abs target) ->
        Tea_util.Vec.push buffer
          { pc = ev.Interp.pc; target; taken = ev.Interp.next_pc = target }
    | _ -> ());
    Tea_cfg.Discovery.feed discovery ev
  in
  let _machine, _stop = Interp.run ?fuel ~on_event image in
  Tea_cfg.Discovery.flush discovery;
  Tea_pinsim.Edge_filter.flush filter;
  let row_of trace_id (a : acc) =
    {
      trace_id;
      branches = a.b;
      mispredicted = a.m;
      miss_rate = (if a.b = 0 then 0.0 else float_of_int a.m /. float_of_int a.b);
    }
  in
  let cold =
    row_of (-1)
      (Option.value (Hashtbl.find_opt per_trace (-1)) ~default:{ b = 0; m = 0 })
  in
  let rows =
    Hashtbl.fold (fun id a l -> if id = -1 then l else row_of id a :: l) per_trace []
    |> List.sort (fun a b -> Int.compare b.mispredicted a.mispredicted)
  in
  { rows; cold; total = predictor; replay_coverage = Tea_core.Replayer.coverage replayer }

let render report =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "per-trace branch prediction (replayed, no trace code):\n";
  pr "%8s %10s %12s %10s\n" "trace" "branches" "mispredicts" "miss rate";
  let line r =
    pr "%8s %10d %12d %9.2f%%\n"
      (if r.trace_id = -1 then "cold" else string_of_int r.trace_id)
      r.branches r.mispredicted (100.0 *. r.miss_rate)
  in
  List.iter line report.rows;
  line report.cold;
  pr "overall: %d branches, %d mispredicted (%.2f%%), coverage %.1f%%\n"
    (Predictor.predictions report.total)
    (Predictor.mispredictions report.total)
    (100.0 *. Predictor.miss_rate report.total)
    (100.0 *. report.replay_coverage);
  Buffer.contents buf
