(** Per-trace branch-prediction statistics via TEA replay.

    Like {!Tea_cachesim.Collector}, but for conditional-branch direction:
    one pass runs the program, the TEA replay labels every executed
    conditional branch with the trace containing it, and a direction
    predictor scores it. The actionable output is the paper's motivating
    profile data: which traces contain the poorly-predicted branches an
    optimizer should reshape (e.g. by picking a different trace path or
    if-converting). *)

type row = {
  trace_id : int;      (** -1 = cold (NTE) *)
  branches : int;
  mispredicted : int;
  miss_rate : float;
}

type report = {
  rows : row list;     (** sorted by mispredictions, descending *)
  cold : row;
  total : Predictor.t; (** the shared predictor with overall stats *)
  replay_coverage : float;
}

val profile :
  ?kind:Predictor.kind ->
  ?fuel:int ->
  traces:Tea_traces.Trace.t list ->
  Tea_isa.Image.t ->
  report
(** Default predictor: [Gshare 12]. *)

val render : report -> string
