type kind =
  | Always_taken
  | Btfn
  | Bimodal of int
  | Gshare of int

let kind_name = function
  | Always_taken -> "always-taken"
  | Btfn -> "btfn"
  | Bimodal n -> Printf.sprintf "bimodal-%d" (1 lsl n)
  | Gshare n -> Printf.sprintf "gshare-%d" (1 lsl n)

type state =
  | S_static of [ `Taken | `Btfn ]
  | S_bimodal of { mask : int; counters : int array }
  | S_gshare of { mask : int; counters : int array; mutable history : int }

type t = {
  state : state;
  mutable n_predictions : int;
  mutable n_miss : int;
}

let create kind =
  let state =
    match kind with
    | Always_taken -> S_static `Taken
    | Btfn -> S_static `Btfn
    | Bimodal bits ->
        if bits < 1 || bits > 24 then invalid_arg "Predictor.create: bimodal bits";
        S_bimodal { mask = (1 lsl bits) - 1; counters = Array.make (1 lsl bits) 2 }
    | Gshare bits ->
        if bits < 1 || bits > 24 then invalid_arg "Predictor.create: gshare bits";
        S_gshare
          { mask = (1 lsl bits) - 1; counters = Array.make (1 lsl bits) 2; history = 0 }
  in
  { state; n_predictions = 0; n_miss = 0 }

(* Branch PCs are multi-byte aligned-ish; drop the low bits that never vary
   to spread table indices. *)
let pc_index pc = pc lsr 1

let predict t ~pc ~target =
  match t.state with
  | S_static `Taken -> true
  | S_static `Btfn -> target <= pc
  | S_bimodal { mask; counters } -> counters.(pc_index pc land mask) >= 2
  | S_gshare { mask; counters; history } ->
      counters.((pc_index pc lxor history) land mask) >= 2

let train_counter counters i taken =
  let c = counters.(i) in
  counters.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1))

let update t ~pc ~target:_ ~taken =
  match t.state with
  | S_static _ -> ()
  | S_bimodal { mask; counters } -> train_counter counters (pc_index pc land mask) taken
  | S_gshare g ->
      train_counter g.counters ((pc_index pc lxor g.history) land g.mask) taken;
      g.history <- ((g.history lsl 1) lor Bool.to_int taken) land g.mask

let record t ~pc ~target ~taken =
  let predicted = predict t ~pc ~target in
  t.n_predictions <- t.n_predictions + 1;
  if predicted <> taken then t.n_miss <- t.n_miss + 1;
  update t ~pc ~target ~taken;
  predicted = taken

let predictions t = t.n_predictions

let mispredictions t = t.n_miss

let miss_rate t =
  if t.n_predictions = 0 then 0.0
  else float_of_int t.n_miss /. float_of_int t.n_predictions

let reset_stats t =
  t.n_predictions <- 0;
  t.n_miss <- 0
