(** Conditional-branch direction predictors.

    The second "cycle-accurate simulator" statistic the TEA replay can
    attribute to traces: branch predictability. Four standard models, from
    the static baselines to gshare. All state is per-instance; predictors
    are deterministic. *)

type kind =
  | Always_taken
  | Btfn          (** static: backward taken, forward not-taken *)
  | Bimodal of int
      (** 2-bit saturating counters; the int is log2(table entries) *)
  | Gshare of int
      (** global history XOR PC indexing a 2-bit counter table;
          the int is log2(table entries) = history bits *)

val kind_name : kind -> string

type t

val create : kind -> t

val predict : t -> pc:int -> target:int -> bool
(** Predicted direction for a conditional branch at [pc] whose taken
    target is [target] (used by the static BTFN rule). Does not update
    any state. *)

val update : t -> pc:int -> target:int -> taken:bool -> unit
(** Train with the actual outcome (updates counters and history). *)

val record : t -> pc:int -> target:int -> taken:bool -> bool
(** [predict] + accounting + [update] in one step; returns whether the
    prediction was correct. *)

val predictions : t -> int

val mispredictions : t -> int

val miss_rate : t -> float

val reset_stats : t -> unit
