lib/btree/btree.ml: Array List Option Printf
