lib/btree/btree.mli:
