(* A straightforward array-based B+ tree. Nodes hold sorted key arrays that
   are copied on insertion; trace containers are small (at most a few
   thousand traces), so simplicity wins over amortized array slack. *)

type 'a node =
  | Leaf of 'a leaf
  | Internal of 'a internal

and 'a leaf = {
  mutable lkeys : int array;
  mutable lvals : 'a array;
}

and 'a internal = {
  mutable ikeys : int array;       (* separators: child i holds keys < ikeys.(i) *)
  mutable children : 'a node array;
}

type 'a t = {
  order : int;
  mutable root : 'a node option;
  mutable size : int;
}

let create ?(order = 8) () =
  if order < 2 then invalid_arg "Btree.create: order must be >= 2";
  { order; root = None; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let max_leaf t = 2 * t.order

let max_children t = (2 * t.order) + 1

(* Binary search for the first index whose key is >= [key]; also counts the
   comparisons performed. Returns (index, found, comparisons). *)
let search keys key =
  let comparisons = ref 0 in
  let lo = ref 0 and hi = ref (Array.length keys) in
  let found = ref false in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    incr comparisons;
    let k = keys.(mid) in
    if k = key then begin
      found := true;
      lo := mid;
      hi := mid
    end
    else if k < key then lo := mid + 1
    else hi := mid
  done;
  (!lo, !found, !comparisons)

let array_insert a i x =
  let n = Array.length a in
  let b = Array.make (n + 1) x in
  Array.blit a 0 b 0 i;
  Array.blit a i b (i + 1) (n - i);
  b

(* Child index to descend into for [key]: first separator greater than key
   goes left of it; equal keys go right (separators duplicate the smallest
   key of the right subtree). *)
let child_index ikeys key =
  let n = Array.length ikeys in
  let comparisons = ref 0 in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    incr comparisons;
    if key >= ikeys.(mid) then lo := mid + 1 else hi := mid
  done;
  (!lo, !comparisons)

type 'a split = { sep : int; right : 'a node }

let rec insert_node t node key value : 'a split option * bool =
  match node with
  | Leaf l ->
      let i, found, _ = search l.lkeys key in
      if found then begin
        l.lvals.(i) <- value;
        (None, false)
      end
      else begin
        l.lkeys <- array_insert l.lkeys i key;
        l.lvals <- array_insert l.lvals i value;
        if Array.length l.lkeys > max_leaf t then begin
          let n = Array.length l.lkeys in
          let mid = n / 2 in
          let rkeys = Array.sub l.lkeys mid (n - mid) in
          let rvals = Array.sub l.lvals mid (n - mid) in
          l.lkeys <- Array.sub l.lkeys 0 mid;
          l.lvals <- Array.sub l.lvals 0 mid;
          (Some { sep = rkeys.(0); right = Leaf { lkeys = rkeys; lvals = rvals } }, true)
        end
        else (None, true)
      end
  | Internal nd ->
      let ci, _ = child_index nd.ikeys key in
      let split, added = insert_node t nd.children.(ci) key value in
      (match split with
      | None -> (None, added)
      | Some { sep; right } ->
          nd.ikeys <- array_insert nd.ikeys ci sep;
          nd.children <- array_insert nd.children (ci + 1) right;
          if Array.length nd.children > max_children t then begin
            let nk = Array.length nd.ikeys in
            let mid = nk / 2 in
            let sep_up = nd.ikeys.(mid) in
            let rkeys = Array.sub nd.ikeys (mid + 1) (nk - mid - 1) in
            let rchildren =
              Array.sub nd.children (mid + 1) (Array.length nd.children - mid - 1)
            in
            nd.ikeys <- Array.sub nd.ikeys 0 mid;
            nd.children <- Array.sub nd.children 0 (mid + 1);
            ( Some { sep = sep_up; right = Internal { ikeys = rkeys; children = rchildren } },
              added )
          end
          else (None, added))

let insert t key value =
  match t.root with
  | None ->
      t.root <- Some (Leaf { lkeys = [| key |]; lvals = [| value |] });
      t.size <- 1
  | Some root -> (
      let split, added = insert_node t root key value in
      if added then t.size <- t.size + 1;
      match split with
      | None -> ()
      | Some { sep; right } ->
          t.root <- Some (Internal { ikeys = [| sep |]; children = [| root; right |] }))

let find_count t key =
  let rec go node acc =
    match node with
    | Leaf l ->
        let i, found, c = search l.lkeys key in
        if found then (Some l.lvals.(i), acc + c) else (None, acc + c)
    | Internal nd ->
        let ci, c = child_index nd.ikeys key in
        go nd.children.(ci) (acc + c)
  in
  match t.root with None -> (None, 0) | Some root -> go root 0

let find t key = fst (find_count t key)

let mem t key = Option.is_some (find t key)

let height t =
  let rec go = function
    | Leaf _ -> 1
    | Internal nd -> 1 + go nd.children.(0)
  in
  match t.root with None -> 0 | Some r -> go r

let rec leftmost = function
  | Leaf l -> if Array.length l.lkeys = 0 then None else Some (l.lkeys.(0), l.lvals.(0))
  | Internal nd -> leftmost nd.children.(0)

let rec rightmost = function
  | Leaf l ->
      let n = Array.length l.lkeys in
      if n = 0 then None else Some (l.lkeys.(n - 1), l.lvals.(n - 1))
  | Internal nd -> rightmost nd.children.(Array.length nd.children - 1)

let min_binding t = Option.bind t.root leftmost

let max_binding t = Option.bind t.root rightmost

let iter f t =
  let rec go = function
    | Leaf l -> Array.iteri (fun i k -> f k l.lvals.(i)) l.lkeys
    | Internal nd -> Array.iter go nd.children
  in
  match t.root with None -> () | Some r -> go r

let to_list t =
  let acc = ref [] in
  iter (fun k v -> acc := (k, v) :: !acc) t;
  List.rev !acc

let of_list ?order l =
  let t = create ?order () in
  List.iter (fun (k, v) -> insert t k v) l;
  t

let check_invariants t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let ok = Ok () in
  let rec sorted a i =
    i + 1 >= Array.length a || (a.(i) < a.(i + 1) && sorted a (i + 1))
  in
  let rec depth = function
    | Leaf _ -> 1
    | Internal nd -> 1 + depth nd.children.(0)
  in
  match t.root with
  | None -> if t.size = 0 then ok else fail "empty root but size=%d" t.size
  | Some root ->
      let expected_depth = depth root in
      let count = ref 0 in
      let rec go node ~is_root ~lo ~hi ~d =
        match node with
        | Leaf l ->
            let n = Array.length l.lkeys in
            count := !count + n;
            if Array.length l.lvals <> n then fail "leaf keys/vals mismatch"
            else if not (sorted l.lkeys 0) then fail "leaf keys unsorted"
            else if d <> expected_depth then fail "leaf depth %d <> %d" d expected_depth
            else if (not is_root) && n = 0 then fail "empty non-root leaf"
            else if n > max_leaf t then fail "overfull leaf (%d)" n
            else if
              Array.exists (fun k -> (match lo with Some l' -> k < l' | None -> false)
                                     || (match hi with Some h -> k >= h | None -> false))
                l.lkeys
            then fail "leaf key out of separator range"
            else ok
        | Internal nd ->
            let nk = Array.length nd.ikeys in
            let nc = Array.length nd.children in
            if nc <> nk + 1 then fail "internal children/keys mismatch"
            else if not (sorted nd.ikeys 0) then fail "internal keys unsorted"
            else if nc > max_children t then fail "overfull internal (%d)" nc
            else begin
              let result = ref ok in
              for i = 0 to nc - 1 do
                match !result with
                | Error _ -> ()
                | Ok () ->
                    let lo' = if i = 0 then lo else Some nd.ikeys.(i - 1) in
                    let hi' = if i = nk then hi else Some nd.ikeys.(i) in
                    result := go nd.children.(i) ~is_root:false ~lo:lo' ~hi:hi' ~d:(d + 1)
              done;
              !result
            end
      in
      let r = go root ~is_root:true ~lo:None ~hi:None ~d:1 in
      (match r with
      | Error _ -> r
      | Ok () ->
          if !count <> t.size then fail "size %d but %d entries" t.size !count else ok)
