(** B+ tree keyed by [int].

    This is the paper's "global B+ tree" used by the TEA transition function
    to find the trace starting at a given program counter when control moves
    from cold code into a trace, or from one trace to another (§4.2). The
    implementation counts key comparisons so the cost model can charge
    lookups honestly.

    Keys are unique; inserting an existing key replaces its value. *)

type 'a t

val create : ?order:int -> unit -> 'a t
(** [order] is the fan-out parameter: leaves hold at most [2*order]
    entries, internal nodes at most [2*order+1] children. Default 8.
    @raise Invalid_argument if [order < 2]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val insert : 'a t -> int -> 'a -> unit

val find : 'a t -> int -> 'a option

val find_count : 'a t -> int -> 'a option * int
(** Like {!find}, also returning the number of key comparisons performed —
    the honest unit of lookup cost for the Table 4 model. *)

val mem : 'a t -> int -> bool

val height : 'a t -> int
(** 0 for an empty tree, 1 for a single leaf. *)

val min_binding : 'a t -> (int * 'a) option

val max_binding : 'a t -> (int * 'a) option

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** In ascending key order. *)

val to_list : 'a t -> (int * 'a) list
(** Ascending key order. *)

val of_list : ?order:int -> (int * 'a) list -> 'a t

val check_invariants : 'a t -> (unit, string) result
(** Structural validation (sortedness, uniform leaf depth, occupancy,
    separator consistency); used by the property tests. *)
