lib/cachesim/cache.ml: Array Float
