lib/cachesim/cache.mli:
