lib/cachesim/collector.ml: Buffer Format Hashtbl Hierarchy Int List Option Printf Tea_cfg Tea_core Tea_machine Tea_pinsim Tea_traces Tea_util
