lib/cachesim/collector.mli: Hierarchy Tea_isa Tea_traces
