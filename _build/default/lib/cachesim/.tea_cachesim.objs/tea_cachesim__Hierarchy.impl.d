lib/cachesim/hierarchy.ml: Cache Format Option Tea_machine
