lib/cachesim/hierarchy.mli: Cache Format Tea_machine
