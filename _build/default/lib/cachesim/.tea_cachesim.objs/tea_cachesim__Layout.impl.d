lib/cachesim/layout.ml: Cache Hashtbl List Printf Tea_cfg Tea_core Tea_pinsim Tea_traces
