lib/cachesim/layout.mli: Cache Tea_isa Tea_traces
