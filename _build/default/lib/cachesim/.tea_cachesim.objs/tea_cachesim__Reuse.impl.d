lib/cachesim/reuse.ml: Array Buffer Float Hashtbl Printf Tea_machine Tea_util
