lib/cachesim/reuse.mli: Tea_isa
