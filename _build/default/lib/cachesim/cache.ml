type config = {
  size_bytes : int;
  line_bytes : int;
  ways : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let n_sets cfg = cfg.size_bytes / cfg.line_bytes / cfg.ways

let config ~size_bytes ~line_bytes ~ways =
  if not (is_pow2 size_bytes) then invalid_arg "Cache.config: size not a power of two";
  if not (is_pow2 line_bytes) || line_bytes < 4 then
    invalid_arg "Cache.config: bad line size";
  if ways < 1 then invalid_arg "Cache.config: ways must be >= 1";
  let cfg = { size_bytes; line_bytes; ways } in
  let sets = n_sets cfg in
  if sets < 1 || not (is_pow2 sets) then
    invalid_arg "Cache.config: size/line/ways must give a power-of-two set count";
  cfg

type t = {
  cfg : config;
  sets : int;
  line_shift : int;
  tags : int array;       (* sets * ways; -1 = invalid *)
  stamps : int array;     (* LRU timestamps, parallel to tags *)
  mutable clock : int;
  mutable n_accesses : int;
  mutable n_misses : int;
  mutable n_evictions : int;
}

let create cfg =
  let sets = n_sets cfg in
  {
    cfg;
    sets;
    line_shift = int_of_float (Float.round (Float.log2 (float_of_int cfg.line_bytes)));
    tags = Array.make (sets * cfg.ways) (-1);
    stamps = Array.make (sets * cfg.ways) 0;
    clock = 0;
    n_accesses = 0;
    n_misses = 0;
    n_evictions = 0;
  }

(* The full line number serves as the tag (set bits included — harmless
   for correctness and simpler than masking them off). *)
let locate t addr =
  let line = addr lsr t.line_shift in
  let set = line land (t.sets - 1) in
  (set * t.cfg.ways, line)

type result = Hit | Miss

let find_way t base tag =
  let rec go w =
    if w = t.cfg.ways then None
    else if t.tags.(base + w) = tag then Some (base + w)
    else go (w + 1)
  in
  go 0

let probe t addr =
  let base, tag = locate t addr in
  find_way t base tag <> None

let access t addr =
  let base, tag = locate t addr in
  t.n_accesses <- t.n_accesses + 1;
  t.clock <- t.clock + 1;
  match find_way t base tag with
  | Some i ->
      t.stamps.(i) <- t.clock;
      Hit
  | None ->
      t.n_misses <- t.n_misses + 1;
      (* victim: an invalid way, else the least recently used *)
      let victim = ref base in
      for w = 1 to t.cfg.ways - 1 do
        let i = base + w in
        if t.tags.(!victim) <> -1
           && (t.tags.(i) = -1 || t.stamps.(i) < t.stamps.(!victim))
        then victim := i
      done;
      if t.tags.(!victim) <> -1 then t.n_evictions <- t.n_evictions + 1;
      t.tags.(!victim) <- tag;
      t.stamps.(!victim) <- t.clock;
      Miss

let accesses t = t.n_accesses

let misses t = t.n_misses

let evictions t = t.n_evictions

let miss_rate t =
  if t.n_accesses = 0 then 0.0 else float_of_int t.n_misses /. float_of_int t.n_accesses

let reset_stats t =
  t.n_accesses <- 0;
  t.n_misses <- 0;
  t.n_evictions <- 0

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0
