(** A set-associative cache model with LRU replacement.

    Part of the "second system" of the paper's first motivating use case:
    build traces under a DBT, then replay them elsewhere — e.g. on a cache
    simulator — to collect statistics about the traces without ever
    generating trace code. This is a functional-warming model (hit/miss
    and eviction behaviour, no timing ports or MSHRs). *)

type config = {
  size_bytes : int;  (** total capacity; power of two *)
  line_bytes : int;  (** power of two, at least 4 *)
  ways : int;        (** associativity; must divide the line count *)
}

val config : size_bytes:int -> line_bytes:int -> ways:int -> config
(** Validates the constraints. @raise Invalid_argument otherwise. *)

type t

type result = Hit | Miss

val create : config -> t

val access : t -> int -> result
(** Touch the line containing the address, updating LRU state and filling
    on miss. *)

val probe : t -> int -> bool
(** Non-destructive lookup: would this address hit? *)

val accesses : t -> int

val misses : t -> int

val evictions : t -> int

val miss_rate : t -> float

val reset_stats : t -> unit

val flush : t -> unit
(** Invalidate all lines (statistics kept). *)

val n_sets : config -> int
