module Interp = Tea_machine.Interp
module Memory = Tea_machine.Memory
module Block = Tea_cfg.Block
module Trace = Tea_traces.Trace

type row = {
  trace_id : int;
  insns : int;
  i_accesses : int;
  i_misses : int;
  d_accesses : int;
  d_misses : int;
  access_cycles : int;
}

type report = {
  rows : row list;
  cold : row;
  hierarchy : Hierarchy.t;
  replay_coverage : float;
}

type acc = {
  mutable a_insns : int;
  mutable a_if : int;
  mutable a_im : int;
  mutable a_da : int;
  mutable a_dm : int;
  mutable a_cycles : int;
}

let fresh_acc () =
  { a_insns = 0; a_if = 0; a_im = 0; a_da = 0; a_dm = 0; a_cycles = 0 }

let row_of trace_id (a : acc) =
  {
    trace_id;
    insns = a.a_insns;
    i_accesses = a.a_if;
    i_misses = a.a_im;
    d_accesses = a.a_da;
    d_misses = a.a_dm;
    access_cycles = a.a_cycles;
  }

type pending = Ifetch of int | Data of Memory.access_kind * int

let profile ?(config = Hierarchy.default_config) ?fuel ~traces image =
  let hierarchy = Hierarchy.create config in
  let auto = Tea_core.Builder.build traces in
  let trans = Tea_core.Transition.create Tea_core.Transition.config_global_local auto in
  let replayer = Tea_core.Replayer.create trans in
  let per_trace : (int, acc) Hashtbl.t = Hashtbl.create 64 in
  let acc_for id =
    match Hashtbl.find_opt per_trace id with
    | Some a -> a
    | None ->
        let a = fresh_acc () in
        Hashtbl.replace per_trace id a;
        a
  in
  (* Accesses buffered while the current logical block executes; charged to
     the trace the TEA resolves that block to. *)
  let buffer : pending Tea_util.Vec.t = Tea_util.Vec.create () in
  let charge block ~expanded =
    Tea_core.Replayer.feed_addr replayer ~insns:expanded block.Block.start;
    let state = Tea_core.Replayer.state replayer in
    let trace_id =
      if state = Tea_core.Automaton.nte then -1
      else
        match Tea_core.Automaton.state_info auto state with
        | Some info -> info.Tea_core.Automaton.trace_id
        | None -> -1
    in
    let a = acc_for trace_id in
    a.a_insns <- a.a_insns + expanded;
    let l1_hit = config.Hierarchy.l1_hit_cycles in
    Tea_util.Vec.iter
      (fun p ->
        match p with
        | Ifetch addr ->
            let latency = Hierarchy.fetch hierarchy addr in
            a.a_if <- a.a_if + 1;
            if latency > l1_hit then a.a_im <- a.a_im + 1;
            a.a_cycles <- a.a_cycles + latency
        | Data (kind, addr) ->
            let latency = Hierarchy.data hierarchy kind addr in
            a.a_da <- a.a_da + 1;
            if latency > l1_hit then a.a_dm <- a.a_dm + 1;
            a.a_cycles <- a.a_cycles + latency)
      buffer;
    Tea_util.Vec.clear buffer
  in
  let filter = Tea_pinsim.Edge_filter.create ~emit:charge in
  let discovery =
    Tea_cfg.Discovery.create ~policy:Tea_cfg.Discovery.Pin image
      (Tea_pinsim.Edge_filter.callbacks filter)
  in
  let machine = Interp.create image in
  Memory.set_tracer (Interp.memory machine)
    (Some (fun kind addr -> Tea_util.Vec.push buffer (Data (kind, addr))));
  let on_event (ev : Interp.event) =
    Tea_util.Vec.push buffer (Ifetch ev.Interp.pc);
    Tea_cfg.Discovery.feed discovery ev
  in
  let _stop = Interp.resume ?fuel ~on_event machine in
  Tea_cfg.Discovery.flush discovery;
  Tea_pinsim.Edge_filter.flush filter;
  Memory.set_tracer (Interp.memory machine) None;
  let cold =
    row_of (-1) (Option.value (Hashtbl.find_opt per_trace (-1)) ~default:(fresh_acc ()))
  in
  let rows =
    Hashtbl.fold
      (fun id a l -> if id = -1 then l else row_of id a :: l)
      per_trace []
    |> List.sort (fun a b -> Int.compare b.access_cycles a.access_cycles)
  in
  { rows; cold; hierarchy; replay_coverage = Tea_core.Replayer.coverage replayer }

let render report =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "per-trace cache behaviour (replayed, no trace code):\n";
  pr "%8s %10s %9s %8s %9s %8s %10s\n" "trace" "insns" "I-acc" "I-miss" "D-acc"
    "D-miss" "cycles";
  let line r =
    pr "%8s %10d %9d %8d %9d %8d %10d\n"
      (if r.trace_id = -1 then "cold" else string_of_int r.trace_id)
      r.insns r.i_accesses r.i_misses r.d_accesses r.d_misses r.access_cycles
  in
  List.iter line report.rows;
  line report.cold;
  pr "replay coverage: %.1f%%\n" (100.0 *. report.replay_coverage);
  Buffer.add_string buf (Format.asprintf "%a" Hierarchy.pp report.hierarchy);
  Buffer.contents buf
