(** Per-trace cache statistics via TEA replay — the paper's first
    motivating use case end to end: traces recorded in one environment
    (the DBT) are replayed on a *different* system (this cache simulator),
    and the TEA state attributes every instruction fetch and data access
    to the TBB/trace executing at that moment, without any trace code
    existing.

    One execution pass drives three consumers off the same event stream:
    the interpreter's memory tracer (data accesses), the Pin-policy block
    discovery + §4.1 edge filter + TEA replayer (the current trace), and
    the cache hierarchy. Accesses are buffered per logical block and
    charged to the trace the TEA lands in for that block; blocks in NTE
    are charged to the cold bucket. *)

type row = {
  trace_id : int;        (** -1 for the cold (NTE) bucket *)
  insns : int;           (** instructions attributed *)
  i_accesses : int;
  i_misses : int;        (** L1I misses *)
  d_accesses : int;
  d_misses : int;        (** L1D misses *)
  access_cycles : int;   (** summed hierarchy latency *)
}

type report = {
  rows : row list;       (** traces sorted by access cycles, descending *)
  cold : row;
  hierarchy : Hierarchy.t;
  replay_coverage : float;
}

val profile :
  ?config:Hierarchy.config ->
  ?fuel:int ->
  traces:Tea_traces.Trace.t list ->
  Tea_isa.Image.t ->
  report

val render : report -> string
(** Aligned table of the per-trace rows plus the cold bucket and the
    hierarchy totals. *)
