type config = {
  l1i : Cache.config;
  l1d : Cache.config;
  l2 : Cache.config option;
  l1_hit_cycles : int;
  l2_hit_cycles : int;
  memory_cycles : int;
}

let default_config =
  {
    l1i = Cache.config ~size_bytes:(16 * 1024) ~line_bytes:64 ~ways:2;
    l1d = Cache.config ~size_bytes:(32 * 1024) ~line_bytes:64 ~ways:4;
    l2 = Some (Cache.config ~size_bytes:(256 * 1024) ~line_bytes:64 ~ways:8);
    l1_hit_cycles = 2;
    l2_hit_cycles = 12;
    memory_cycles = 120;
  }

type t = {
  cfg : config;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t option;
  mutable cycles : int;
}

let create cfg =
  {
    cfg;
    l1i = Cache.create cfg.l1i;
    l1d = Cache.create cfg.l1d;
    l2 = Option.map Cache.create cfg.l2;
    cycles = 0;
  }

let through_l2 t addr =
  match t.l2 with
  | None -> t.cfg.memory_cycles
  | Some l2 -> (
      match Cache.access l2 addr with
      | Cache.Hit -> t.cfg.l2_hit_cycles
      | Cache.Miss -> t.cfg.l2_hit_cycles + t.cfg.memory_cycles)

let access_level t l1 addr =
  let latency =
    match Cache.access l1 addr with
    | Cache.Hit -> t.cfg.l1_hit_cycles
    | Cache.Miss -> t.cfg.l1_hit_cycles + through_l2 t addr
  in
  t.cycles <- t.cycles + latency;
  latency

let fetch t addr = access_level t t.l1i addr

let data t (_kind : Tea_machine.Memory.access_kind) addr = access_level t t.l1d addr

type level_stats = { accesses : int; misses : int; miss_rate : float }

let stats_of c =
  { accesses = Cache.accesses c; misses = Cache.misses c; miss_rate = Cache.miss_rate c }

let l1i_stats t = stats_of t.l1i

let l1d_stats t = stats_of t.l1d

let l2_stats t = Option.map stats_of t.l2

let total_cycles t = t.cycles

let pp fmt t =
  let p name s =
    Format.fprintf fmt "  %s: %d accesses, %d misses (%.2f%%)@." name s.accesses
      s.misses (100.0 *. s.miss_rate)
  in
  Format.fprintf fmt "cache hierarchy (%d cycles):@." t.cycles;
  p "L1I" (l1i_stats t);
  p "L1D" (l1d_stats t);
  match l2_stats t with Some s -> p "L2 " s | None -> ()
