(** A small two-level cache hierarchy: split L1 (instruction + data) over
    an optional unified L2, with fixed per-level latencies. *)

type config = {
  l1i : Cache.config;
  l1d : Cache.config;
  l2 : Cache.config option;
  l1_hit_cycles : int;
  l2_hit_cycles : int;
  memory_cycles : int;
}

val default_config : config
(** 16 KB 2-way L1I and 32 KB 4-way L1D (64 B lines), 256 KB 8-way unified
    L2; 2 / 12 / 120 cycles — small-core figures of the paper's era. *)

type t

val create : config -> t

val fetch : t -> int -> int
(** Instruction fetch at an address; returns the access latency. *)

val data : t -> Tea_machine.Memory.access_kind -> int -> int
(** Data access; returns the access latency. *)

type level_stats = { accesses : int; misses : int; miss_rate : float }

val l1i_stats : t -> level_stats

val l1d_stats : t -> level_stats

val l2_stats : t -> level_stats option

val total_cycles : t -> int
(** Accumulated access latency over all fetches and data accesses. *)

val pp : Format.formatter -> t -> unit
