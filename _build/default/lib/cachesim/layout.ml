module Block = Tea_cfg.Block
module Trace = Tea_traces.Trace
module Tbb = Tea_traces.Tbb

type result = {
  accesses : int;
  original_misses : int;
  packed_misses : int;
  original_rate : float;
  packed_rate : float;
  improvement : float;
  trace_cache_bytes : int;
}

let default_cache = Cache.config ~size_bytes:4096 ~line_bytes:64 ~ways:2

(* Pack every trace back to back in a dedicated region; returns the packed
   base address of each TBB, keyed by automaton state id. *)
let packed_layout auto traces =
  let region_base = 0x60000000 in
  let by_state = Hashtbl.create 256 in
  let cursor = ref region_base in
  List.iter
    (fun (tr : Trace.t) ->
      let states = Tea_core.Automaton.states_of_trace auto tr.Trace.id in
      List.iteri
        (fun i state ->
          let tb = Trace.tbb tr i in
          Hashtbl.replace by_state state !cursor;
          cursor := !cursor + Tbb.byte_len tb)
        states)
    traces;
  (by_state, !cursor - region_base)

let study ?(cache = default_cache) ?fuel ~traces image =
  let auto = Tea_core.Builder.build traces in
  let trans =
    Tea_core.Transition.create Tea_core.Transition.config_global_local auto
  in
  let replayer = Tea_core.Replayer.create trans in
  let by_state, trace_cache_bytes = packed_layout auto traces in
  let original = Cache.create cache in
  let packed = Cache.create cache in
  let line = cache.Cache.line_bytes in
  let accesses = ref 0 in
  (* touch every line a block's body spans, in both layouts *)
  let touch block ~packed_base =
    let len = max 1 block.Block.byte_len in
    let rec lines off =
      if off < len then begin
        incr accesses;
        ignore (Cache.access original (block.Block.start + off));
        ignore (Cache.access packed (packed_base + off));
        lines (off + line)
      end
    in
    lines 0
  in
  let emit block ~expanded =
    Tea_core.Replayer.feed_addr replayer ~insns:expanded block.Block.start;
    let state = Tea_core.Replayer.state replayer in
    let packed_base =
      match Hashtbl.find_opt by_state state with
      | Some base -> base
      | None -> block.Block.start (* cold code keeps its layout *)
    in
    touch block ~packed_base
  in
  let filter = Tea_pinsim.Edge_filter.create ~emit in
  let _ = Tea_pinsim.Pin.run ?fuel ~tool:(Tea_pinsim.Edge_filter.callbacks filter) image in
  Tea_pinsim.Edge_filter.flush filter;
  let om = Cache.misses original and pm = Cache.misses packed in
  {
    accesses = !accesses;
    original_misses = om;
    packed_misses = pm;
    original_rate = Cache.miss_rate original;
    packed_rate = Cache.miss_rate packed;
    improvement =
      (if om = 0 then 0.0 else 1.0 -. (float_of_int pm /. float_of_int om));
    trace_cache_bytes;
  }

let render r =
  Printf.sprintf
    "code-layout study (%d line fetches):\n\
    \  original layout: %d misses (%.3f%%)\n\
    \  packed traces:   %d misses (%.3f%%) in a %d-byte trace cache\n\
    \  I-cache miss reduction: %.1f%%\n"
    r.accesses r.original_misses
    (100.0 *. r.original_rate)
    r.packed_misses
    (100.0 *. r.packed_rate)
    r.trace_cache_bytes
    (100.0 *. r.improvement)
