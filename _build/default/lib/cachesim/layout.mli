(** Code-layout study: the I-cache benefit of a packed trace cache.

    The paper's related work (§5) recalls why optimization systems use
    traces at all: they "capture program's code locality" — Dynamo, FX!32
    and hardware trace caches all pack logically-consecutive hot code
    physically together. This study quantifies that benefit for a recorded
    trace set without generating any code: the same execution's fetch
    stream is pushed through two instruction caches, one fetching from the
    original layout and one fetching hot blocks from their would-be
    trace-cache addresses (traces packed back to back), with the TEA
    replay deciding, block by block, whether execution is inside a trace
    and in which TBB. *)

type result = {
  accesses : int;            (** line fetches simulated (per cache) *)
  original_misses : int;
  packed_misses : int;
  original_rate : float;
  packed_rate : float;
  improvement : float;       (** 1 - packed/original (0 when original = 0) *)
  trace_cache_bytes : int;   (** size of the packed region *)
}

val study :
  ?cache:Cache.config ->
  ?fuel:int ->
  traces:Tea_traces.Trace.t list ->
  Tea_isa.Image.t ->
  result
(** Default cache: 4 KB, 2-way, 64 B lines — small enough that layout
    matters for synthetic workloads. *)

val render : result -> string
