module Fenwick = Tea_util.Fenwick

type histogram = {
  buckets : (int * int) array;
  cold : int;
  total : int;
  distinct_lines : int;
}

type t = {
  line_shift : int;
  last : (int, int) Hashtbl.t;   (* line -> last access time *)
  fen : Fenwick.t;               (* 1 at each line's last access time *)
  counts : int array;            (* per power-of-two bucket *)
  mutable cold : int;
  mutable total : int;
  mutable now : int;
}

let max_buckets = 40

let create ?(line_bytes = 64) () =
  if line_bytes < 4 || line_bytes land (line_bytes - 1) <> 0 then
    invalid_arg "Reuse.create: bad line size";
  {
    line_shift =
      int_of_float (Float.round (Float.log2 (float_of_int line_bytes)));
    last = Hashtbl.create 4096;
    fen = Fenwick.create ();
    counts = Array.make max_buckets 0;
    cold = 0;
    total = 0;
    now = 0;
  }

let bucket_of distance =
  let rec go b n = if n = 0 then b else go (b + 1) (n lsr 1) in
  min (max_buckets - 1) (go 0 distance)

let touch t addr =
  let line = addr lsr t.line_shift in
  t.total <- t.total + 1;
  (match Hashtbl.find_opt t.last line with
  | Some t0 ->
      let distance = Fenwick.range_sum t.fen (t0 + 1) (t.now - 1) in
      t.counts.(bucket_of distance) <- t.counts.(bucket_of distance) + 1;
      Fenwick.add t.fen t0 (-1)
  | None -> t.cold <- t.cold + 1);
  Fenwick.add t.fen t.now 1;
  Hashtbl.replace t.last line t.now;
  t.now <- t.now + 1

let histogram t =
  let top =
    let rec go i = if i < 0 then 0 else if t.counts.(i) > 0 then i + 1 else go (i - 1) in
    go (max_buckets - 1)
  in
  {
    buckets = Array.init top (fun b -> (1 lsl b, t.counts.(b)));
    cold = t.cold;
    total = t.total;
    distinct_lines = Hashtbl.length t.last;
  }

let hit_rate_for (h : histogram) k =
  if h.total = 0 then 0.0
  else begin
    (* distances < k hit; bucket b holds distances in [2^(b-1), 2^b) except
       bucket 0 which is exactly distance 0; count whole buckets whose upper
       bound is <= k (a conservative floor for partial buckets) *)
    let hits = ref 0 in
    Array.iter (fun (ub, n) -> if ub <= k then hits := !hits + n) h.buckets;
    float_of_int !hits /. float_of_int h.total
  end

let profile_data_stream ?line_bytes ?fuel image =
  let t = create ?line_bytes () in
  let machine = Tea_machine.Interp.create image in
  Tea_machine.Memory.set_tracer
    (Tea_machine.Interp.memory machine)
    (Some (fun _kind addr -> touch t addr));
  let _stop = Tea_machine.Interp.resume ?fuel machine in
  Tea_machine.Memory.set_tracer (Tea_machine.Interp.memory machine) None;
  histogram t

let render (h : histogram) =
  let buf = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "reuse-distance histogram (%d accesses, %d distinct lines):\n" h.total
    h.distinct_lines;
  Array.iter
    (fun (ub, n) ->
      if n > 0 then
        pr "  < %6d lines: %9d (%.1f%%)\n" ub n
          (100.0 *. float_of_int n /. float_of_int (max 1 h.total)))
    h.buckets;
  pr "  cold:          %9d (%.1f%%)\n" h.cold
    (100.0 *. float_of_int h.cold /. float_of_int (max 1 h.total));
  Buffer.contents buf
