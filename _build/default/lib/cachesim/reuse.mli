(** Exact LRU reuse-distance profiling of the data stream.

    The reuse distance of an access is the number of *distinct* cache
    lines touched since the previous access to the same line (∞ for cold
    accesses). Its histogram characterizes a workload's locality
    independently of any particular cache: a cache of [k] lines (fully
    associative, LRU) hits exactly the accesses with distance < [k].
    Computed exactly in O(log n) per access with a Fenwick tree over
    access timestamps. *)

type histogram = {
  buckets : (int * int) array;
      (** (upper bound, count): power-of-two buckets [<1, <2, <4, ...];
          the bound is inclusive-exclusive *)
  cold : int;            (** first-ever accesses (infinite distance) *)
  total : int;
  distinct_lines : int;
}

type t

val create : ?line_bytes:int -> unit -> t
(** Default 64-byte lines. *)

val touch : t -> int -> unit
(** Record an access to an address. *)

val histogram : t -> histogram

val hit_rate_for : histogram -> int -> float
(** [hit_rate_for h k]: the hit rate of a fully-associative LRU cache with
    [k] lines, derived from the histogram (distances strictly below [k]
    hit). *)

val profile_data_stream :
  ?line_bytes:int -> ?fuel:int -> Tea_isa.Image.t -> histogram
(** Run the program and profile every data access. *)

val render : histogram -> string
