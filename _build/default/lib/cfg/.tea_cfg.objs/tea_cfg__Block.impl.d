lib/cfg/block.ml: Array Format Insn List Tea_isa
