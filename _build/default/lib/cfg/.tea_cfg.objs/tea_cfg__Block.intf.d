lib/cfg/block.mli: Format Tea_isa
