lib/cfg/dcfg.ml: Block Buffer Discovery Hashtbl Int List Printf
