lib/cfg/dcfg.mli: Block Discovery
