lib/cfg/discovery.ml: Array Block Hashtbl Image Insn Int List Tea_isa Tea_machine
