lib/cfg/discovery.mli: Block Tea_isa Tea_machine
