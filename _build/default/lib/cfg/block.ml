open Tea_isa

type end_kind =
  | Branch
  | Policy_split

type t = {
  start : int;
  insns : (int * Insn.t) array;
  byte_len : int;
  end_kind : end_kind;
}

let make end_kind = function
  | [] -> invalid_arg "Block.make: empty instruction list"
  | insns ->
      let arr = Array.of_list insns in
      let start = fst arr.(0) in
      let byte_len =
        Array.fold_left (fun acc (_, i) -> acc + Insn.length i) 0 arr
      in
      { start; insns = arr; byte_len; end_kind }

let n_insns b = Array.length b.insns

let last_insn b = b.insns.(Array.length b.insns - 1)

let terminator b = snd (last_insn b)

let end_addr b =
  let addr, i = last_insn b in
  addr + Insn.length i

let static_successors b _image =
  let _, term = last_insn b in
  let fall = if Insn.fallthrough_continues term then [ end_addr b ] else [] in
  match Insn.direct_target term with
  | Some tgt -> tgt :: fall
  | None -> fall

let has_indirect_exit b = Insn.is_indirect (terminator b)

let exit_count b image =
  List.length (static_successors b image) + (if has_indirect_exit b then 1 else 0)

let equal a b = a.start = b.start && Array.length a.insns = Array.length b.insns

let pp fmt b =
  Format.fprintf fmt "[0x%x..0x%x) %d insns" b.start (end_addr b) (n_insns b)

let pp_full fmt b =
  Format.fprintf fmt "block 0x%x (%d insns, %d bytes):@." b.start (n_insns b)
    b.byte_len;
  Array.iter
    (fun (a, i) -> Format.fprintf fmt "  0x%08x  %a@." a Insn.pp i)
    b.insns
