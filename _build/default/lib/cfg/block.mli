(** Dynamic basic blocks (Definition 1 of the paper): a single-entry,
    single-exit sequence of instructions, discovered at run time.

    A block is identified by its start address *within one discovery
    policy*; StarDBT and Pin disagree about boundaries (REP-prefixed and
    [cpuid]-style instructions), which is exactly the implementation
    challenge §4.1 of the paper describes. *)

type end_kind =
  | Branch        (** ends in a control-transfer instruction *)
  | Policy_split  (** ended by the discovery policy (REP / cpuid under Pin) *)

type t = {
  start : int;
  insns : (int * Tea_isa.Insn.t) array;  (** (address, instruction), in order *)
  byte_len : int;                        (** encoded size of all instructions *)
  end_kind : end_kind;
}

val make : end_kind -> (int * Tea_isa.Insn.t) list -> t
(** Build a block from a non-empty instruction list.
    @raise Invalid_argument on an empty list. *)

val n_insns : t -> int

val last_insn : t -> int * Tea_isa.Insn.t

val terminator : t -> Tea_isa.Insn.t
(** The final instruction (a branch for [Branch] blocks). *)

val end_addr : t -> int
(** Address just past the last instruction (the fall-through target). *)

val static_successors : t -> Tea_isa.Image.t -> int list
(** Statically-known successor addresses: direct branch target and/or
    fall-through. Indirect targets are not included. *)

val has_indirect_exit : t -> bool

val exit_count : t -> Tea_isa.Image.t -> int
(** Number of distinct static exit points (used by the code-cache stub
    accounting): direct targets + fall-through + one for an indirect exit. *)

val equal : t -> t -> bool
(** Structural equality on (start, length). *)

val pp : Format.formatter -> t -> unit

val pp_full : Format.formatter -> t -> unit
(** Multi-line listing of the block body. *)
