type t = {
  blocks : (int, Block.t * int ref) Hashtbl.t;
  edges : (int * int, int ref) Hashtbl.t;
  mutable total_execs : int;
  mutable total_insns : int;
  mutable last : Block.t option;
}

let create () =
  {
    blocks = Hashtbl.create 256;
    edges = Hashtbl.create 512;
    total_execs = 0;
    total_insns = 0;
    last = None;
  }

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.replace tbl key (ref 1)

let on_block t (b : Block.t) =
  (match Hashtbl.find_opt t.blocks b.start with
  | Some (_, r) -> incr r
  | None -> Hashtbl.replace t.blocks b.start (b, ref 1));
  t.total_execs <- t.total_execs + 1;
  t.total_insns <- t.total_insns + Block.n_insns b;
  t.last <- Some b

let on_edge t (src : Block.t) dst = bump t.edges (src.start, dst)

let callbacks t =
  {
    Discovery.on_block = on_block t;
    Discovery.on_edge = (fun src dst -> on_edge t src dst);
  }

let tee a b =
  {
    Discovery.on_block =
      (fun blk ->
        a.Discovery.on_block blk;
        b.Discovery.on_block blk);
    Discovery.on_edge =
      (fun src dst ->
        a.Discovery.on_edge src dst;
        b.Discovery.on_edge src dst);
  }

let block_count t addr =
  match Hashtbl.find_opt t.blocks addr with Some (_, r) -> !r | None -> 0

let edge_count t ~src ~dst =
  match Hashtbl.find_opt t.edges (src, dst) with Some r -> !r | None -> 0

let blocks t =
  Hashtbl.fold (fun _ (b, r) acc -> (b, !r) :: acc) t.blocks []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a.Block.start b.Block.start)

let edges t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.edges []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let total_block_execs t = t.total_execs

let total_insns t = t.total_insns

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dcfg {\n  node [shape=box fontname=monospace];\n";
  List.iter
    (fun (b, n) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"0x%x\" [label=\"0x%x\\n%d insns x%d\"];\n"
           b.Block.start b.Block.start (Block.n_insns b) n))
    (blocks t);
  List.iter
    (fun ((src, dst), n) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"0x%x\" -> \"0x%x\" [label=\"%d\"];\n" src dst n))
    (edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
