(** Dynamic control-flow graph accumulation.

    Collects execution counts for blocks and edges from a
    {!Discovery.callbacks} stream. The paper notes that TEA is "logically
    similar to the dynamic control flow graph for the traces" but stores
    only state information; this module provides the DCFG side of that
    comparison, and feeds hotness information to the trace recorders. *)

type t

val create : unit -> t

val callbacks : t -> Discovery.callbacks
(** Callbacks that record into [t]; compose with others via {!tee}. *)

val tee : Discovery.callbacks -> Discovery.callbacks -> Discovery.callbacks
(** Fan one discovery stream out to two consumers (in order). *)

val block_count : t -> int -> int
(** Executions of the block starting at an address. *)

val edge_count : t -> src:int -> dst:int -> int

val blocks : t -> (Block.t * int) list
(** Every recorded block with its execution count, sorted by start. *)

val edges : t -> ((int * int) * int) list
(** Every recorded edge ((src start, dst start), count). *)

val total_block_execs : t -> int

val total_insns : t -> int
(** Dynamic instructions = sum over block executions of block size. *)

val to_dot : t -> string
(** Graphviz rendering with counts. *)
