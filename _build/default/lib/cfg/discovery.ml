open Tea_isa
module Interp = Tea_machine.Interp

type policy = Stardbt | Pin

let policy_name = function Stardbt -> "stardbt" | Pin -> "pin"

type callbacks = {
  on_block : Block.t -> unit;
  on_edge : Block.t -> int -> unit;
}

type t = {
  image : Image.t;
  pol : policy;
  cb : callbacks;
  cache : (int, Block.t) Hashtbl.t;
  mutable current_rev : (int * Insn.t) list;
}

let create ?(policy = Stardbt) image cb =
  { image; pol = policy; cb; cache = Hashtbl.create 256; current_rev = [] }

let policy t = t.pol

(* Complete the accumulated instructions into a block, reusing the cached
   instance for its start address so downstream identity checks are cheap. *)
let seal t end_kind =
  match t.current_rev with
  | [] -> None
  | rev ->
      let insns = List.rev rev in
      let start = fst (List.hd insns) in
      let block =
        match Hashtbl.find_opt t.cache start with
        | Some b when Array.length b.Block.insns = List.length insns -> b
        | Some _ | None ->
            let b = Block.make end_kind insns in
            Hashtbl.replace t.cache start b;
            b
      in
      t.current_rev <- [];
      Some block

let emit t block next =
  t.cb.on_block block;
  t.cb.on_edge block next

(* A REP-prefixed instruction under the Pin policy: its own block, executed
   once per iteration, with self-edges between iterations. *)
let emit_rep_block t (ev : Interp.event) =
  let block =
    match Hashtbl.find_opt t.cache ev.pc with
    | Some b -> b
    | None ->
        let b = Block.make Block.Policy_split [ (ev.pc, ev.insn) ] in
        Hashtbl.replace t.cache ev.pc b;
        b
  in
  for i = 1 to ev.reps do
    let dst = if i < ev.reps then ev.pc else ev.next_pc in
    emit t block dst
  done

let is_rep = function
  | Insn.Rep_movs | Insn.Rep_stos -> true
  | Insn.Nop | Insn.Cpuid | Insn.Halt | Insn.Mov _ | Insn.Lea _ | Insn.Alu _
  | Insn.Inc _ | Insn.Dec _ | Insn.Neg _ | Insn.Imul _ | Insn.Shift _
  | Insn.Cmp _ | Insn.Test _ | Insn.Jmp _ | Insn.Jmp_ind _ | Insn.Jcc _
  | Insn.Call _ | Insn.Call_ind _ | Insn.Ret | Insn.Push _ | Insn.Pop _
  | Insn.Sys _ -> false

let feed t (ev : Interp.event) =
  match t.pol with
  | Pin when is_rep ev.insn ->
      (match seal t Block.Policy_split with
      | Some b -> emit t b ev.pc
      | None -> ());
      emit_rep_block t ev
  | Pin when Insn.equal ev.insn Insn.Cpuid ->
      t.current_rev <- (ev.pc, ev.insn) :: t.current_rev;
      (match seal t Block.Policy_split with
      | Some b -> emit t b ev.next_pc
      | None -> assert false)
  | Stardbt | Pin ->
      t.current_rev <- (ev.pc, ev.insn) :: t.current_rev;
      if Insn.is_branch ev.insn then
        match seal t Block.Branch with
        | Some b -> emit t b ev.next_pc
        | None -> assert false

let flush t =
  match seal t Block.Policy_split with
  | Some b -> t.cb.on_block b
  | None -> ()

let blocks t =
  Hashtbl.fold (fun _ b acc -> b :: acc) t.cache []
  |> List.sort (fun a b -> Int.compare a.Block.start b.Block.start)

let block_at t addr = Hashtbl.find_opt t.cache addr

let run ?policy ?fuel image cb =
  let t = create ?policy image cb in
  let machine, stop = Interp.run ?fuel ~on_event:(feed t) image in
  flush t;
  (machine, stop, t)
