(** Dynamic basic-block discovery.

    Consumes the interpreter's per-instruction event stream and produces a
    stream of executed blocks and the control-flow edges between them — the
    exact observation point the paper instruments ("our pintool inserts the
    instrumentation code on the taken and fall through edges", §4.1).

    Two policies model the two frameworks:
    - {!Stardbt}: a block runs from a control-transfer target to the next
      control-transfer instruction; REP-prefixed instructions are ordinary
      block members counted once.
    - {!Pin}: additionally, a REP-prefixed instruction forms its own
      single-instruction block that executes once per iteration (Pin
      "creates a loop" for them), and [cpuid] forcibly ends its block.

    The policies therefore disagree on block boundaries and on dynamic
    instruction counts, reproducing the paper's Tables 2/3 coverage
    mismatches. *)

type policy = Stardbt | Pin

val policy_name : policy -> string

type callbacks = {
  on_block : Block.t -> unit;       (** the block just finished executing *)
  on_edge : Block.t -> int -> unit; (** control left the block for this address *)
}

type t

val create : ?policy:policy -> Tea_isa.Image.t -> callbacks -> t
(** Default policy is {!Stardbt}. *)

val policy : t -> policy

val feed : t -> Tea_machine.Interp.event -> unit
(** Feed one executed instruction. [on_block]/[on_edge] fire as blocks
    complete. *)

val flush : t -> unit
(** Emit any trailing partial block (program ended mid-block). No edge is
    emitted for it. *)

val blocks : t -> Block.t list
(** Every distinct block discovered so far, sorted by start address. *)

val block_at : t -> int -> Block.t option

val run :
  ?policy:policy ->
  ?fuel:int ->
  Tea_isa.Image.t ->
  callbacks ->
  Tea_machine.Interp.t * Tea_machine.Interp.stop * t
(** Convenience: execute the image from scratch, feeding every event through
    a fresh discovery instance, flushing at the end. *)
