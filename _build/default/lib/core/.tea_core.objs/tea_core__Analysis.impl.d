lib/core/analysis.ml: Automaton Format Int List Printf Replayer Transition
