lib/core/analysis.mli: Automaton Format Replayer
