lib/core/automaton.ml: Hashtbl Int List Option Printf Tea_traces Tea_util
