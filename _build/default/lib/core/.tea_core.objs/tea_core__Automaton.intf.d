lib/core/automaton.mli: Tea_traces
