lib/core/builder.ml: Array Automaton List Printf Tea_cfg Tea_traces
