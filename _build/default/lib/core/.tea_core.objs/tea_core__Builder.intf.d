lib/core/builder.mli: Automaton Tea_traces
