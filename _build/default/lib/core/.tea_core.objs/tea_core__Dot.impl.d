lib/core/dot.ml: Automaton Buffer List Printf
