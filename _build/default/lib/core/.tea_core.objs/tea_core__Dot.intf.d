lib/core/dot.mli: Automaton
