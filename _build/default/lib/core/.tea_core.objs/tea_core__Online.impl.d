lib/core/online.ml: Automaton Tea_cfg Tea_traces Transition
