lib/core/online.mli: Automaton Tea_cfg Tea_traces Transition
