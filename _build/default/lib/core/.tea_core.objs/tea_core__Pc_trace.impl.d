lib/core/pc_trace.ml: Fun Replayer String
