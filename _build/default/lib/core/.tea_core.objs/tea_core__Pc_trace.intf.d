lib/core/pc_trace.mli: Replayer Transition
