lib/core/phases.ml: Automaton Format List
