lib/core/phases.mli: Automaton Format
