lib/core/replayer.ml: Automaton Hashtbl Int List Option Tea_cfg Transition
