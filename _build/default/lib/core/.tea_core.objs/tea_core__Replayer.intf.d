lib/core/replayer.mli: Automaton Tea_cfg Transition
