lib/core/serialize.ml: Automaton Buffer Builder Char Fun Hashtbl List Printf String Tea_traces
