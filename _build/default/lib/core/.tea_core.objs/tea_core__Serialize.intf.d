lib/core/serialize.mli: Automaton Tea_isa
