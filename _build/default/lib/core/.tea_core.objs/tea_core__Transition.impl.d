lib/core/transition.ml: Array Automaton Hashtbl List Tea_btree
