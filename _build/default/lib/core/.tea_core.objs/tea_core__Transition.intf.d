lib/core/transition.mli: Automaton
