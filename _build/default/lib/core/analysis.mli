(** Trace-quality analytics over a finished replay.

    The paper's motivating use for TEA is collecting accurate profile
    information about traces before (or without) generating trace code.
    This module turns a {!Replayer}'s raw per-state counters into the
    numbers a trace optimizer actually wants: per-trace execution and
    completion behaviour, side-exit hot spots, and a hottest-traces
    ranking. *)

type trace_stats = {
  trace_id : int;
  entries : int;        (** times the trace was entered from its head *)
  tbb_executions : int; (** total TBB executions inside the trace *)
  insns_executed : int; (** instructions attributed to the trace *)
  completion_ratio : float;
      (** mean fraction of the trace's TBBs executed per entry: 1.0 means
          every entry ran the full body, low values mean early exits *)
}

val per_trace : Replayer.t -> trace_stats list
(** Stats for every trace with at least one entry, sorted by
    [insns_executed] descending. *)

val hottest : ?n:int -> Replayer.t -> trace_stats list
(** Top [n] (default 10) traces by instructions executed. *)

type exit_site = {
  state : Automaton.state;
  site_trace : int;
  site_tbb : int;
  block_start : int;
  executions : int;     (** how often this TBB ran *)
  out_edges : int;      (** stored in-trace out-edges of the state *)
}

val side_exit_candidates : ?n:int -> Replayer.t -> exit_site list
(** Hot TBBs with no in-trace successors — the side exits an optimizer
    would extend or the spots where the automaton falls back to NTE. *)

val coverage_summary : Replayer.t -> string
(** One-line human summary (coverage, enters, exits, hottest trace). *)

val pp_trace_stats : Format.formatter -> trace_stats -> unit
