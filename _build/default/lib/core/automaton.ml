module Vec = Tea_util.Vec
module Trace = Tea_traces.Trace
module Tbb = Tea_traces.Tbb

type state = int

let nte = 0

type info = {
  trace_id : int;
  tbb_index : int;
  block_start : int;
  n_insns : int;
}

type slot = {
  mutable inf : info option;          (* None = tombstone *)
  mutable edges : (int * state) list; (* (label, target) *)
}

type t = {
  slots : slot Vec.t;                        (* index 0 reserved for NTE *)
  head_by_addr : (int, state) Hashtbl.t;     (* entry addr -> head state *)
  by_trace : (int, state list) Hashtbl.t;    (* trace id -> its states *)
  entry_of_trace : (int, int) Hashtbl.t;     (* trace id -> entry addr *)
  mutable live : int;
  mutable n_edges : int;
}

let create () =
  let slots = Vec.create () in
  Vec.push slots { inf = None; edges = [] };
  {
    slots;
    head_by_addr = Hashtbl.create 64;
    by_trace = Hashtbl.create 64;
    entry_of_trace = Hashtbl.create 64;
    live = 0;
    n_edges = 0;
  }

let slot t s = Vec.get t.slots s

let remove_trace t id =
  match Hashtbl.find_opt t.by_trace id with
  | None -> ()
  | Some states ->
      List.iter
        (fun s ->
          let sl = slot t s in
          if sl.inf <> None then begin
            sl.inf <- None;
            t.n_edges <- t.n_edges - List.length sl.edges;
            sl.edges <- [];
            t.live <- t.live - 1
          end)
        states;
      Hashtbl.remove t.by_trace id;
      (match Hashtbl.find_opt t.entry_of_trace id with
      | Some addr ->
          (* Only drop the head entry if it still points into this trace. *)
          (match Hashtbl.find_opt t.head_by_addr addr with
          | Some h when List.mem h states ->
              Hashtbl.remove t.head_by_addr addr;
              t.n_edges <- t.n_edges - 1
          | Some _ | None -> ());
          Hashtbl.remove t.entry_of_trace id
      | None -> ())

let add_trace t (trace : Trace.t) =
  remove_trace t trace.Trace.id;
  let n = Trace.n_tbbs trace in
  let base = Vec.length t.slots in
  (* States first (Algorithm 1 lines 3-5)... *)
  for i = 0 to n - 1 do
    let tb = Trace.tbb trace i in
    Vec.push t.slots
      {
        inf =
          Some
            {
              trace_id = trace.Trace.id;
              tbb_index = i;
              block_start = Tbb.start tb;
              n_insns = Tbb.n_insns tb;
            };
        edges = [];
      };
    t.live <- t.live + 1
  done;
  (* ...then transitions (lines 6-17). In-trace successors become labelled
     edges; everything else is the implicit default to NTE. *)
  for i = 0 to n - 1 do
    let sl = slot t (base + i) in
    sl.edges <-
      List.map
        (fun j -> (Tbb.start (Trace.tbb trace j), base + j))
        (Trace.successors trace i);
    t.n_edges <- t.n_edges + List.length sl.edges
  done;
  (* NTE -> head, labelled with the trace entry (lines 15-17). *)
  let entry = Trace.entry trace in
  (match Hashtbl.find_opt t.head_by_addr entry with
  | Some _ -> ()
  | None -> t.n_edges <- t.n_edges + 1);
  Hashtbl.replace t.head_by_addr entry base;
  Hashtbl.replace t.entry_of_trace trace.Trace.id entry;
  Hashtbl.replace t.by_trace trace.Trace.id (List.init n (fun i -> base + i))

let n_states t = t.live

let n_transitions t = t.n_edges

let state_info t s = if s = nte then None else (slot t s).inf

let is_live t s = s <> nte && (slot t s).inf <> None

let next_in_trace t s label =
  if s = nte then None else List.assoc_opt label (slot t s).edges

let edges_of t s = if s = nte then [] else (slot t s).edges

let head_of t addr = Hashtbl.find_opt t.head_by_addr addr

let heads t =
  Hashtbl.fold (fun a s acc -> (a, s) :: acc) t.head_by_addr []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let states_of_trace t id =
  Option.value (Hashtbl.find_opt t.by_trace id) ~default:[]

let trace_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.by_trace [] |> List.sort Int.compare

let header_bytes = 16

let state_bytes = 8

let transition_bytes = 5

let byte_size t =
  header_bytes + (state_bytes * t.live) + (transition_bytes * t.n_edges)

let iter_live f t =
  Vec.iteri
    (fun s sl -> match sl.inf with Some inf -> f s inf | None -> ())
    t.slots

let check_deterministic t =
  let dup_label edges =
    let seen = Hashtbl.create 8 in
    List.exists
      (fun (label, _) ->
        if Hashtbl.mem seen label then true
        else begin
          Hashtbl.add seen label ();
          false
        end)
      edges
  in
  let bad = ref None in
  Vec.iteri
    (fun s sl ->
      if !bad = None && sl.inf <> None && dup_label sl.edges then
        bad := Some (Printf.sprintf "state %d has duplicate labels" s))
    t.slots;
  (match !bad with
  | None ->
      Hashtbl.iter
        (fun addr s ->
          if !bad = None && not (is_live t s) then
            bad := Some (Printf.sprintf "head 0x%x points to dead state %d" addr s))
        t.head_by_addr
  | Some _ -> ());
  match !bad with None -> Ok () | Some m -> Error m
