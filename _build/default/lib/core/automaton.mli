(** The Trace Execution Automaton — the paper's contribution.

    A DFA whose states are the TBBs of every recorded trace plus the
    distinguished NTE state ("No Trace being Executed", state 0). A
    transition is labelled with the program counter that triggers it: the
    start address of the successor TBB's block. Explicitly stored
    transitions are the in-trace edges and the NTE → trace-head entries;
    every unmatched label implicitly leads to NTE (cold code), which is the
    default sink the paper's Algorithm 1 expresses as TBB → NTE
    transitions.

    Traces recorded by tree strategies grow over time; {!add_trace} with an
    already-known trace id *replaces* the old version (its states become
    tombstones — state ids are never reused, so replay profiles stay
    unambiguous). *)

type state = int
(** 0 is always NTE. *)

val nte : state

type info = {
  trace_id : int;
  tbb_index : int;
  block_start : int;  (** transition label that leads into this state *)
  n_insns : int;      (** size of the underlying block, for coverage *)
}

type t

val create : unit -> t

val add_trace : t -> Tea_traces.Trace.t -> unit
(** Add every TBB of the trace as a state, its in-trace edges as labelled
    transitions, and an NTE → head transition labelled with the trace
    entry. Replaces any previous trace with the same id. *)

val remove_trace : t -> int -> unit
(** Tombstone all states of a trace id (no-op if unknown). *)

val n_states : t -> int
(** Live TBB states (NTE not counted). *)

val n_transitions : t -> int
(** Stored transitions: in-trace edges + NTE→head entries. *)

val state_info : t -> state -> info option
(** [None] for NTE and for tombstoned states. *)

val is_live : t -> state -> bool

val next_in_trace : t -> state -> int -> state option
(** The explicit in-trace transition out of a state on a label, if any.
    Never matches from NTE. *)

val edges_of : t -> state -> (int * state) list
(** Explicit out-edges (label, target) of a TBB state. *)

val head_of : t -> int -> state option
(** The trace-head state entered from NTE on this address. *)

val heads : t -> (int * state) list
(** All (entry address, head state) pairs, sorted by address. *)

val states_of_trace : t -> int -> state list

val trace_ids : t -> int list

val byte_size : t -> int
(** Size of the compact serialized representation — Table 1's "TEA"
    column: 16-byte header + 8 bytes per state + 5 bytes per stored
    transition (see DESIGN.md, "Memory-accounting model"). *)

val iter_live : (state -> info -> unit) -> t -> unit

val check_deterministic : t -> (unit, string) result
(** No state has two out-transitions with one label; at most one head per
    address. Property tests call this after every construction path. *)
