module Trace = Tea_traces.Trace
module Tbb = Tea_traces.Tbb

let add_all auto traces = List.iter (Automaton.add_trace auto) traces

let build traces =
  let auto = Automaton.create () in
  add_all auto traces;
  auto

let of_set set = build (Tea_traces.Trace_set.to_list set)

(* A cyclic superblock is a chain 0 -> 1 -> ... -> n-1 whose last TBB loops
   back to some interior index k. Both transforms replicate the loop body
   [k..n-1] [factor] times; the prologue [0..k-1] stays single. They differ
   in what the copies point at: duplication reuses the original blocks
   (replayable), unrolling clones them to fresh addresses (Figure 1(c) —
   not replayable, which is the motivation for duplication). *)
let cycle_target_of (tr : Trace.t) =
  let n = Trace.n_tbbs tr in
  let rec check i =
    if i = n - 1 then
      match Trace.successors tr i with [ k ] when k <= i -> Some k | _ -> None
    else
      match Trace.successors tr i with
      | [ j ] when j = i + 1 -> check (i + 1)
      | _ -> None
  in
  if n = 0 then None else check 0

let replicate ~what ~factor ~clone tr =
  if factor < 2 then
    invalid_arg (Printf.sprintf "Builder.%s: factor must be >= 2" what);
  match cycle_target_of tr with
  | None ->
      invalid_arg
        (Printf.sprintf "Builder.%s: trace is not a cyclic superblock" what)
  | Some k ->
      let n = Trace.n_tbbs tr in
      let body_len = n - k in
      let total = k + (body_len * factor) in
      let block_at i =
        let src = if i < k then i else k + ((i - k) mod body_len) in
        let copy = if i < k then 0 else (i - k) / body_len in
        clone ~copy (Trace.tbb tr src).Tbb.block
      in
      let blocks = Array.init total block_at in
      let succs =
        Array.init total (fun i -> if i + 1 < total then [ i + 1 ] else [ k ])
      in
      (blocks, succs)

let duplicate_trace ~factor (tr : Trace.t) =
  let blocks, succs =
    replicate ~what:"duplicate_trace" ~factor ~clone:(fun ~copy:_ b -> b) tr
  in
  Trace.make ~id:tr.Trace.id ~kind:(tr.Trace.kind ^ "-dup") blocks succs

let unroll_trace ~factor ~clone_base (tr : Trace.t) =
  (* Each copy shifts the whole body uniformly into its own region, so
     clones keep their relative layout, never collide with each other and
     (the caller picks [clone_base]) not with the program text either. *)
  let region = 0x100000 in
  let body_origin =
    match cycle_target_of tr with
    | Some k -> Tbb.start (Trace.tbb tr k)
    | None -> invalid_arg "Builder.unroll_trace: trace is not a cyclic superblock"
  in
  (* Every copy is cloned — the optimizer emits the whole unrolled trace,
     first iteration included, into fresh trace-cache memory. *)
  let clone ~copy (b : Tea_cfg.Block.t) =
    let shift = clone_base + (copy * region) - body_origin in
    let insns =
      Array.to_list
        (Array.map (fun (a, i) -> (a + shift, i)) b.Tea_cfg.Block.insns)
    in
    Tea_cfg.Block.make b.Tea_cfg.Block.end_kind insns
  in
  let blocks, succs = replicate ~what:"unroll_trace" ~factor ~clone tr in
  Trace.make ~id:tr.Trace.id ~kind:(tr.Trace.kind ^ "-unroll") blocks succs
