(** Algorithm 1 of the paper: converting a set of traces into a TEA.

    Properties proved in the paper and enforced here:
    - Property 1: the TEA has a state for every TBB;
    - Property 2: the TEA has a transition for every represented TBB
      successor (in-trace successors explicitly; all others via the NTE
      default sink).

    Also provides the Figure 1 motivation transform: *duplicating* a cyclic
    trace so that a replayed DFA can gather per-copy profiles that remain
    valid for the unrolled trace an optimizer would emit. *)

val build : Tea_traces.Trace.t list -> Automaton.t
(** Algorithm 1 verbatim: fresh TEA containing exactly the given traces. *)

val add_all : Automaton.t -> Tea_traces.Trace.t list -> unit

val of_set : Tea_traces.Trace_set.t -> Automaton.t

val duplicate_trace :
  factor:int -> Tea_traces.Trace.t -> Tea_traces.Trace.t
(** [duplicate_trace ~factor tr] unrolls a *cyclic superblock* trace
    (a chain whose last TBB loops back to an interior TBB) into [factor]
    copies of its loop body chained in sequence, with the final copy
    looping back — Figure 1(d). Every copy still refers to the *original*
    block addresses, so the resulting TEA can replay against the unmodified
    program. The duplicated trace keeps [tr]'s id.
    @raise Invalid_argument if [factor < 2] or the trace is not a cyclic
    superblock. *)

val unroll_trace :
  factor:int -> clone_base:int -> Tea_traces.Trace.t -> Tea_traces.Trace.t
(** [unroll_trace ~factor ~clone_base tr] is Figure 1(c): what an optimizer
    actually emits — the loop body copied [factor] times into *new code*
    at synthetic trace-cache addresses starting at [clone_base]. The
    paper's point is that this trace is useless for replay: its block
    addresses never appear in the original program's execution, so a TEA
    built from it finds "no corresponding executable code" and never
    leaves NTE (tested in the suite; demonstrated in
    examples/unroll_profiling.ml). Same preconditions as
    {!duplicate_trace}. *)
