let of_automaton ?(title = "tea") auto =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph %S {\n" title;
  pr "  rankdir=TB;\n  node [shape=ellipse fontname=monospace];\n";
  pr "  NTE [shape=doublecircle];\n";
  let name s =
    match Automaton.state_info auto s with
    | Some info -> Printf.sprintf "\"$$T%d.%d@0x%x\"" info.Automaton.trace_id
                     info.Automaton.tbb_index info.Automaton.block_start
    | None -> "NTE"
  in
  List.iter
    (fun id ->
      pr "  subgraph cluster_t%d {\n    label=\"trace %d\";\n" id id;
      List.iter
        (fun s -> if Automaton.is_live auto s then pr "    %s;\n" (name s))
        (Automaton.states_of_trace auto id);
      pr "  }\n")
    (Automaton.trace_ids auto);
  (* In-trace transitions, plus a dashed default edge to NTE for states with
     side exits. *)
  Automaton.iter_live
    (fun s _ ->
      let edges = Automaton.edges_of auto s in
      List.iter
        (fun (label, dst) -> pr "  %s -> %s [label=\"0x%x\"];\n" (name s) (name dst) label)
        edges;
      pr "  %s -> NTE [style=dashed color=gray];\n" (name s))
    auto;
  List.iter
    (fun (addr, head) -> pr "  NTE -> %s [label=\"0x%x\"];\n" (name head) addr)
    (Automaton.heads auto);
  pr "}\n";
  Buffer.contents buf
