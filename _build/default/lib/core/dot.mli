(** Graphviz rendering of a TEA — the Figure 3 pictures. *)

val of_automaton : ?title:string -> Automaton.t -> string
(** DOT source: the NTE state, one cluster per trace with its TBB states
    named [$$Ti.0x<addr>], in-trace transitions labelled with their PC, and
    the NTE → head entry transitions. Implicit default-to-NTE edges are
    drawn dashed from states that have a side exit. *)
