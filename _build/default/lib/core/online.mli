(** Algorithm 2 of the paper: using TEA to record traces online.

    Trace recording is a three-state machine — Initial, Executing,
    Creating — invoked on every TBB-to-TBB transition. In Executing it
    advances the TEA ({!Transition.step}, the paper's [ChangeState]) and
    asks the selection strategy whether to start recording
    ([TriggerTraceRecording]); in Creating it feeds blocks to the strategy
    ([AddTBBToTrace]) until the strategy finishes the trace
    ([DoneTraceRecording] / [FinishTrace]), at which point the trace is
    added to the automaton and the machine returns to Executing.

    The Initial state's work ([InitializeTEA]) happens in {!create}, before
    the program runs. *)

type phase = Executing | Creating

type t

val create :
  ?config:Tea_traces.Recorder.config ->
  ?transition:Transition.config ->
  Tea_traces.Recorder.strategy ->
  t
(** Fresh recorder around a selection strategy. Defaults:
    {!Tea_traces.Recorder.default_config} and
    {!Transition.config_global_local}. *)

val feed : t -> Tea_cfg.Block.t -> unit
(** The block that is about to execute; the previously-fed block is the
    algorithm's [Current]. Wire this to {!Tea_cfg.Discovery} [on_block]. *)

val finish : t -> unit
(** Program ended: lets the strategy salvage or drop a partial recording. *)

val phase : t -> phase

val tea_state : t -> Automaton.state

val automaton : t -> Automaton.t

val transition : t -> Transition.t

val traces : t -> Tea_traces.Trace.t list

val trace_set : t -> Tea_traces.Trace_set.t

val covered_insns : t -> int
(** Instructions executed while the TEA was in a non-NTE state. *)

val total_insns : t -> int

val coverage : t -> float
(** [covered / total]; 0 when nothing ran. *)
