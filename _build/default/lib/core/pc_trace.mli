(** Compact program-counter trace files.

    The fully decoupled replay story: an execution's logical-block stream
    (block start address + dynamic instruction count) is written to a
    compact binary file — zig-zag delta encoding plus LEB128 varints, a few
    bits per block in loops — and the TEA can later be replayed against
    that file with no program, no interpreter and no frontend present.
    This is what shipping a trace from a production system to an analysis
    box looks like.

    Format: magic ["TEAPC1\n"], then per block a varint-encoded zig-zag
    delta from the previous start address followed by a varint instruction
    count. *)

type writer

val open_writer : string -> writer

val write : writer -> start:int -> insns:int -> unit

val close_writer : writer -> unit
(** @raise Sys_error on I/O failure. Idempotent. *)

exception Corrupt of string

val fold : string -> 'a -> ('a -> start:int -> insns:int -> 'a) -> 'a
(** Stream the file through a folder. @raise Corrupt on bad framing. *)

val length : string -> int
(** Number of block records. *)

val replay : Transition.t -> string -> Replayer.t
(** Replay a TEA against a trace file: the offline half of the
    cross-system workflow. *)
