type config = {
  window : int;
  max_stable_exit_ratio : float;
  min_stable_coverage : float;
}

let default_config =
  { window = 2048; max_stable_exit_ratio = 0.02; min_stable_coverage = 0.8 }

type segment = {
  first_step : int;
  last_step : int;
  stable : bool;
  exit_ratio : float;
  in_trace_ratio : float;
}

type t = {
  cfg : config;
  mutable prev : Automaton.state;
  mutable steps : int;
  mutable window_steps : int;
  mutable window_exits : int;
  mutable window_in_trace : int;
  mutable segments_rev : segment list;
  mutable stable_total : int;
}

let create ?(config = default_config) () =
  if config.window < 1 then invalid_arg "Phases.create: window must be positive";
  {
    cfg = config;
    prev = Automaton.nte;
    steps = 0;
    window_steps = 0;
    window_exits = 0;
    window_in_trace = 0;
    segments_rev = [];
    stable_total = 0;
  }

(* Merge a classified window into the segment list: extend the last segment
   when stability matches, else open a new one. *)
let close_window t =
  if t.window_steps > 0 then begin
    let steps = float_of_int t.window_steps in
    let ratio = float_of_int t.window_exits /. steps in
    let coverage = float_of_int t.window_in_trace /. steps in
    let stable =
      ratio <= t.cfg.max_stable_exit_ratio
      && coverage >= t.cfg.min_stable_coverage
    in
    let first = t.steps - t.window_steps in
    let last = t.steps - 1 in
    if stable then t.stable_total <- t.stable_total + t.window_steps;
    (match t.segments_rev with
    | seg :: rest when seg.stable = stable ->
        let merged_steps = float_of_int (last - seg.first_step + 1) in
        let prev_steps = float_of_int (seg.last_step - seg.first_step + 1) in
        let exit_ratio =
          ((seg.exit_ratio *. prev_steps) +. float_of_int t.window_exits)
          /. merged_steps
        in
        let in_trace_ratio =
          ((seg.in_trace_ratio *. prev_steps) +. float_of_int t.window_in_trace)
          /. merged_steps
        in
        t.segments_rev <- { seg with last_step = last; exit_ratio; in_trace_ratio } :: rest
    | segs ->
        t.segments_rev <-
          { first_step = first; last_step = last; stable; exit_ratio = ratio;
            in_trace_ratio = coverage }
          :: segs);
    t.window_steps <- 0;
    t.window_exits <- 0;
    t.window_in_trace <- 0
  end

let feed t state =
  let exited = t.prev <> Automaton.nte && state = Automaton.nte in
  t.prev <- state;
  t.steps <- t.steps + 1;
  t.window_steps <- t.window_steps + 1;
  if exited then t.window_exits <- t.window_exits + 1;
  if state <> Automaton.nte then t.window_in_trace <- t.window_in_trace + 1;
  if t.window_steps >= t.cfg.window then close_window t

let finish t = close_window t

let segments t = List.rev t.segments_rev

let stable_steps t = t.stable_total

let total_steps t = t.steps

let n_phases t =
  List.length (List.filter (fun s -> s.stable) (segments t))

let pp fmt t =
  Format.fprintf fmt "%d steps, %d phases:@." (total_steps t) (n_phases t);
  List.iter
    (fun s ->
      Format.fprintf fmt "  [%d..%d] %s (exit ratio %.4f, in-trace %.2f)@."
        s.first_step s.last_step
        (if s.stable then "stable" else "transition")
        s.exit_ratio s.in_trace_ratio)
    (segments t)
