(** Phase detection from trace stability.

    The paper's related work (§5, Wimmer et al. [22]) describes using
    traces for program phase detection: while execution stays inside the
    recorded traces (few side exits), the program is in a stable phase;
    when the trace exit ratio rises, it is moving between phases. This
    module implements that detector over the TEA replay state stream — one
    more consumer of the "map the PC to a TBB" capability.

    Feed it the automaton state after every replay step; it classifies
    fixed-size windows by their trace-exit ratio and coalesces consecutive
    windows into stable / unstable segments. *)

type config = {
  window : int;             (** steps per classification window *)
  max_stable_exit_ratio : float;
      (** a stable window's exits/steps is at most this *)
  min_stable_coverage : float;
      (** ...and at least this fraction of its steps is inside traces
          (cold stretches are "between phases" too, even without exit
          thrashing) *)
}

val default_config : config
(** [{window = 2048; max_stable_exit_ratio = 0.02;
     min_stable_coverage = 0.8}] *)

type segment = {
  first_step : int;   (** inclusive, 0-based step index *)
  last_step : int;    (** inclusive *)
  stable : bool;
  exit_ratio : float; (** over the whole segment *)
  in_trace_ratio : float;
}

type t

val create : ?config:config -> unit -> t

val feed : t -> Automaton.state -> unit
(** The automaton state after a replay step (track NTE crossings
    internally). *)

val finish : t -> unit
(** Close the trailing (possibly partial) window. *)

val segments : t -> segment list
(** Chronological segments; adjacent segments always differ in
    stability. *)

val stable_steps : t -> int

val total_steps : t -> int

val n_phases : t -> int
(** Number of stable segments — the detected phases. *)

val pp : Format.formatter -> t -> unit
