module Block = Tea_cfg.Block

type t = {
  trans : Transition.t;
  counts : (Automaton.state, int) Hashtbl.t;
  mutable state : Automaton.state;
  mutable covered : int;
  mutable total : int;
  mutable enters : int;
  mutable exits : int;
}

let create trans =
  {
    trans;
    counts = Hashtbl.create 256;
    state = Automaton.nte;
    covered = 0;
    total = 0;
    enters = 0;
    exits = 0;
  }

let feed_addr t ?(insns = 0) addr =
  let prev = t.state in
  let next = Transition.step t.trans prev addr in
  t.state <- next;
  t.total <- t.total + insns;
  if next <> Automaton.nte then begin
    t.covered <- t.covered + insns;
    Hashtbl.replace t.counts next
      (1 + Option.value (Hashtbl.find_opt t.counts next) ~default:0)
  end;
  if prev = Automaton.nte && next <> Automaton.nte then t.enters <- t.enters + 1;
  if prev <> Automaton.nte && next = Automaton.nte then t.exits <- t.exits + 1

let feed t (b : Block.t) = feed_addr t ~insns:(Block.n_insns b) b.Block.start

let state t = t.state

let covered_insns t = t.covered

let total_insns t = t.total

let coverage t =
  if t.total = 0 then 0.0 else float_of_int t.covered /. float_of_int t.total

let trace_enters t = t.enters

let trace_exits t = t.exits

let tbb_counts t =
  Hashtbl.fold (fun s n acc -> (s, n) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let count_of_state t s = Option.value (Hashtbl.find_opt t.counts s) ~default:0

let trace_profile t id =
  let auto = Transition.automaton t.trans in
  List.filter_map
    (fun s ->
      match Automaton.state_info auto s with
      | Some info -> Some (info.Automaton.tbb_index, count_of_state t s)
      | None -> None)
    (Automaton.states_of_trace auto id)
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let transition t = t.trans
