(** Replaying recorded traces against an unmodified program execution.

    The replayer feeds every executed block's start address into the TEA.
    The automaton state then *is* the precise answer to "which TBB of which
    trace is executing right now" — including distinguishing the different
    instances of a duplicated block (the paper's \$\$T1.next vs \$\$T2.next
    example) — without any trace code existing. Per-state execution
    counters are the profile the paper collects this way. *)

type t

val create : Transition.t -> t

val feed : t -> Tea_cfg.Block.t -> unit
(** The block about to execute. Wire to {!Tea_cfg.Discovery} [on_block]. *)

val feed_addr : t -> ?insns:int -> int -> unit
(** Lower-level variant: a block start address and its instruction count
    (default 0 — no coverage accounting), for replaying from an externally
    recorded address stream. *)

val state : t -> Automaton.state

val covered_insns : t -> int

val total_insns : t -> int

val coverage : t -> float

val trace_enters : t -> int
(** NTE → trace transitions taken. *)

val trace_exits : t -> int
(** Trace → NTE transitions taken. *)

val tbb_counts : t -> (Automaton.state * int) list
(** Execution count per TEA state, sorted by state id. *)

val count_of_state : t -> Automaton.state -> int

val trace_profile : t -> int -> (int * int) list
(** [trace_profile t id]: (tbb_index, executions) for one trace, sorted by
    index — the per-copy profile of the motivation example. *)

val transition : t -> Transition.t
