lib/dbt/code_cache.ml: Hashtbl Int List Tea_isa Tea_traces
