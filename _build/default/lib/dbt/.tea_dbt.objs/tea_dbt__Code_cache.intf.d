lib/dbt/code_cache.mli: Tea_isa Tea_traces
