lib/dbt/stardbt.ml: Code_cache Hashtbl Tea_cfg Tea_machine Tea_traces
