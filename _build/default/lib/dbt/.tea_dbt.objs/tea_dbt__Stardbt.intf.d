lib/dbt/stardbt.mli: Code_cache Tea_isa Tea_machine Tea_traces
