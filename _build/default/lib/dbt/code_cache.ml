module Trace = Tea_traces.Trace
module Trace_set = Tea_traces.Trace_set

type layout = {
  trace_id : int;
  code_offset : int;
  code_bytes : int;
  stub_offset : int;
  stub_bytes : int;
  entry_patch_bytes : int;
  metadata_bytes : int;
}

type t = {
  image : Tea_isa.Image.t;
  model : Trace_set.dbt_cost_model;
  layouts : (int, layout) Hashtbl.t;
  mutable next_offset : int;
}

let create ?(model = Trace_set.default_dbt_cost) image =
  { image; model; layouts = Hashtbl.create 64; next_offset = 0 }

let layout_bytes l =
  l.code_bytes + l.stub_bytes + l.entry_patch_bytes + l.metadata_bytes

let install t trace =
  let code_bytes = Trace.code_bytes trace in
  let stub_bytes =
    t.model.Trace_set.stub_bytes * Trace.side_exit_count trace t.image
  in
  let code_offset = t.next_offset in
  let layout =
    {
      trace_id = trace.Trace.id;
      code_offset;
      code_bytes;
      stub_offset = code_offset + code_bytes;
      stub_bytes;
      entry_patch_bytes = t.model.Trace_set.entry_patch_bytes;
      metadata_bytes = t.model.Trace_set.metadata_bytes;
    }
  in
  (* Re-installation of a grown trace abandons the old region; a real cache
     would garbage-collect, but live-byte accounting only counts the latest
     version. *)
  t.next_offset <- code_offset + code_bytes + stub_bytes;
  Hashtbl.replace t.layouts trace.Trace.id layout;
  layout

let layout_of t id = Hashtbl.find_opt t.layouts id

let total_bytes t =
  Hashtbl.fold (fun _ l acc -> acc + layout_bytes l) t.layouts 0

let n_installed t = Hashtbl.length t.layouts

let layouts t =
  Hashtbl.fold (fun _ l acc -> l :: acc) t.layouts []
  |> List.sort (fun a b -> Int.compare a.trace_id b.trace_id)
