(** The replicating trace representation — StarDBT's code cache.

    This is Table 1's baseline: every trace is materialized by copying its
    TBB instructions into a cache region, emitting an exit stub for every
    static exit that leaves the trace (context spill + jump to the
    dispatcher + link record) and patching the original entry with a near
    jump. The module lays traces out at concrete cache offsets so the
    accounting in {!Tea_traces.Trace_set.dbt_bytes} is grounded in an
    actual allocation, not just arithmetic. *)

type layout = {
  trace_id : int;
  code_offset : int;   (** offset of the replicated body in the cache *)
  code_bytes : int;
  stub_offset : int;
  stub_bytes : int;
  entry_patch_bytes : int;
  metadata_bytes : int;
}

type t

val create :
  ?model:Tea_traces.Trace_set.dbt_cost_model -> Tea_isa.Image.t -> t

val install : t -> Tea_traces.Trace.t -> layout
(** Allocate (or re-allocate, for a grown trace id) the trace. *)

val layout_of : t -> int -> layout option

val total_bytes : t -> int
(** Live bytes; equals {!Tea_traces.Trace_set.dbt_bytes} over the installed
    set (asserted by the tests). *)

val n_installed : t -> int

val layouts : t -> layout list
(** In trace-id order. *)
