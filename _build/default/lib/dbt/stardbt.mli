(** The StarDBT-like runtime: translate-and-run with trace recording.

    Runs a program under the StarDBT block-discovery policy, drives a trace
    selection strategy through the standard three-phase recording machine,
    installs completed traces in the {!Code_cache}, and tracks coverage
    (instructions executed *inside* installed traces, which for a recording
    run only starts counting once each trace exists — the paper's Table 2/3
    "DBT" columns) and a simulated execution time.

    Cost model (simulated cycles, on top of native execution):
    - translating a newly seen block costs [translate_per_insn] per
      instruction (lightweight IA-32 → IA-32 translation);
    - building a trace costs [trace_build_per_insn] per instruction
      (re-optimization and stub emission);
    - each block executed from the code cache pays [dispatch] unless it
      continues inside a trace ([chained], cheaper — blocks are linked). *)

type cost_model = {
  translate_per_insn : int;
  trace_build_per_insn : int;
  dispatch : int;
  chained : int;
}

val default_cost : cost_model
(** [{translate_per_insn = 90; trace_build_per_insn = 220; dispatch = 6;
     chained = 1}] *)

type result = {
  set : Tea_traces.Trace_set.t;
  cache : Code_cache.t;
  covered_insns : int;
  total_insns : int;
  coverage : float;
  native_cycles : int;     (** the program's own cycles *)
  dbt_cycles : int;        (** native + DBT overheads: the "DBT Time" *)
  blocks_translated : int;
  stop : Tea_machine.Interp.stop;
  output : int list;       (** program output, for checking fidelity *)
}

val record :
  ?config:Tea_traces.Recorder.config ->
  ?cost:cost_model ->
  ?fuel:int ->
  strategy:Tea_traces.Recorder.strategy ->
  Tea_isa.Image.t ->
  result
