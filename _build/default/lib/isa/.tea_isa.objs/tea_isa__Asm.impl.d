lib/isa/asm.ml: Hashtbl Insn List Printf
