lib/isa/encode.ml: Array Buffer Char Cond Image Insn List Operand Reg
