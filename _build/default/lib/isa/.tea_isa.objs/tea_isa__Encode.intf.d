lib/isa/encode.mli: Image Insn
