lib/isa/image.ml: Array Asm Format Hashtbl Insn Int List Option Printf Tea_util
