lib/isa/image.mli: Asm Format Insn
