lib/isa/insn.ml: Cond Format Operand Reg
