lib/isa/insn.mli: Cond Format Operand Reg
