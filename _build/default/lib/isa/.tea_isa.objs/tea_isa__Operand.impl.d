lib/isa/operand.ml: Format Printf Reg
