type item =
  | Label of string
  | Ins of Insn.t

type data_item =
  | Dlabel of string
  | Word of int
  | Word_ref of string
  | Space of int

type program = {
  text : item list;
  data : data_item list;
}

let default_text_base = 0x08048000

let default_data_base = 0x08100000

let program ?(data = []) text = { text; data }

let layout_data ?(base = default_data_base) items =
  let seen = Hashtbl.create 16 in
  let rec loop addr symbols = function
    | [] -> (List.rev symbols, addr - base)
    | Dlabel s :: rest ->
        if Hashtbl.mem seen s then
          invalid_arg (Printf.sprintf "Asm.layout_data: duplicate label %s" s);
        Hashtbl.add seen s ();
        loop addr ((s, addr) :: symbols) rest
    | Word _ :: rest | Word_ref _ :: rest -> loop (addr + 4) symbols rest
    | Space n :: rest ->
        if n < 0 then invalid_arg "Asm.layout_data: negative Space";
        loop (addr + (4 * n)) symbols rest
  in
  loop base [] items

let text_labels items =
  List.filter_map (function Label s -> Some s | Ins _ -> None) items
