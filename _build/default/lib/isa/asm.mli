(** Assembler input: a program is a text section (labels and instructions)
    plus a data section (labelled words).

    Data lives at a fixed base address ({!default_data_base}) independent of
    the text size, so workload generators can lay out their tables first
    (with {!layout_data}), learn the symbol addresses, and then emit code
    whose memory operands carry already-absolute displacements. Code labels,
    by contrast, stay symbolic until {!Image.assemble} resolves them. *)

type item =
  | Label of string
  | Ins of Insn.t

type data_item =
  | Dlabel of string   (** names the next word's address *)
  | Word of int        (** one initialized 32-bit word *)
  | Word_ref of string (** a word holding the address of a (text or data) label *)
  | Space of int       (** [n] zero words *)

type program = {
  text : item list;
  data : data_item list;
}

val default_text_base : int
val default_data_base : int

val program : ?data:data_item list -> item list -> program

val layout_data :
  ?base:int -> data_item list -> (string * int) list * int
(** [layout_data items] assigns addresses to the data section starting at
    [base] (default {!default_data_base}): returns the data symbol table and
    the total size in bytes. Pure address arithmetic — usable before any
    code exists. @raise Invalid_argument on duplicate labels. *)

val text_labels : item list -> string list
(** All labels defined in a text section, in order. *)
