type t = E | NE | L | LE | G | GE | B | BE | A | AE | S | NS

let all = [ E; NE; L; LE; G; GE; B; BE; A; AE; S; NS ]

let negate = function
  | E -> NE
  | NE -> E
  | L -> GE
  | LE -> G
  | G -> LE
  | GE -> L
  | B -> AE
  | BE -> A
  | A -> BE
  | AE -> B
  | S -> NS
  | NS -> S

let to_string = function
  | E -> "e"
  | NE -> "ne"
  | L -> "l"
  | LE -> "le"
  | G -> "g"
  | GE -> "ge"
  | B -> "b"
  | BE -> "be"
  | A -> "a"
  | AE -> "ae"
  | S -> "s"
  | NS -> "ns"

let pp fmt c = Format.pp_print_string fmt (to_string c)

let equal (a : t) (b : t) = a = b
