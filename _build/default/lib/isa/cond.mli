(** Condition codes for conditional branches, mirroring IA-32 [jcc]. *)

type t =
  | E   (** equal (ZF) *)
  | NE  (** not equal (!ZF) *)
  | L   (** signed less (SF <> OF) *)
  | LE  (** signed less-or-equal *)
  | G   (** signed greater *)
  | GE  (** signed greater-or-equal *)
  | B   (** unsigned below (CF) *)
  | BE  (** unsigned below-or-equal *)
  | A   (** unsigned above *)
  | AE  (** unsigned above-or-equal *)
  | S   (** sign set *)
  | NS  (** sign clear *)

val all : t list

val negate : t -> t
(** The condition that holds exactly when the argument does not. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
