(* Pseudo-x86 encoding. Each constructor maps to a fixed opcode; operand
   bytes follow the exact rules priced by Operand.encoding_bytes, so
   |insn i| = Insn.length i by construction (and by property test). *)

let u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let u32 buf v =
  u8 buf v;
  u8 buf (v lsr 8);
  u8 buf (v lsr 16);
  u8 buf (v lsr 24)

(* Displacement size must mirror Operand.encoding_bytes: none when 0 with a
   base register, 1 byte when it fits i8, else 4; absolute (no base) is
   always 4. *)
let mem_bytes buf (m : Operand.mem) =
  (match m.index with
  | Some (r, s) ->
      let scale_bits = match s with 1 -> 0 | 2 -> 1 | 4 -> 2 | _ -> 3 in
      let base_bits = match m.base with Some b -> Reg.index b | None -> 5 in
      u8 buf ((scale_bits lsl 6) lor (Reg.index r lsl 3) lor base_bits)
  | None -> ());
  match m.base with
  | None -> u32 buf m.disp
  | Some _ ->
      if m.disp = 0 then ()
      else if m.disp >= -128 && m.disp <= 127 then u8 buf m.disp
      else u32 buf m.disp

let operand_bytes buf = function
  | Operand.Reg _ -> ()
  | Operand.Imm v -> u32 buf v
  | Operand.Mem m -> mem_bytes buf m

(* The ModRM byte packs whatever register fields exist; memory/immediate
   payloads follow. *)
let modrm buf a b =
  let field = function
    | Operand.Reg r -> Reg.index r
    | Operand.Imm _ -> 0
    | Operand.Mem _ -> 4
  in
  u8 buf ((field a lsl 3) lor field b)

let target = function
  | Insn.Abs a -> a
  | Insn.Lbl s -> invalid_arg ("Encode.insn: unresolved label " ^ s)

let alu_opcode = function
  | Insn.Add -> 0x01
  | Insn.Sub -> 0x29
  | Insn.And -> 0x21
  | Insn.Or -> 0x09
  | Insn.Xor -> 0x31

let shift_sub = function Insn.Shl -> 4 | Insn.Shr -> 5 | Insn.Sar -> 7

let insn i =
  let buf = Buffer.create 8 in
  (match i with
  | Insn.Nop -> u8 buf 0x90
  | Insn.Cpuid ->
      u8 buf 0x0F;
      u8 buf 0xA2
  | Insn.Halt -> u8 buf 0xF4
  | Insn.Mov (d, s) ->
      u8 buf 0x89;
      modrm buf d s;
      operand_bytes buf d;
      operand_bytes buf s
  | Insn.Lea (r, m) ->
      u8 buf 0x8D;
      modrm buf (Operand.Reg r) (Operand.Mem m);
      mem_bytes buf m
  | Insn.Alu (op, d, s) ->
      u8 buf (alu_opcode op);
      modrm buf d s;
      operand_bytes buf d;
      operand_bytes buf s
  | Insn.Inc (Operand.Reg r) -> u8 buf (0x40 + Reg.index r)
  | Insn.Dec (Operand.Reg r) -> u8 buf (0x48 + Reg.index r)
  | Insn.Inc d ->
      u8 buf 0xFF;
      modrm buf d d;
      operand_bytes buf d
  | Insn.Dec d ->
      u8 buf 0xFF;
      modrm buf d (Operand.Imm 1);
      operand_bytes buf d
  | Insn.Neg d ->
      u8 buf 0xF7;
      modrm buf d (Operand.Imm 3);
      operand_bytes buf d
  | Insn.Imul (r, s) ->
      u8 buf 0x0F;
      u8 buf 0xAF;
      modrm buf (Operand.Reg r) s;
      operand_bytes buf s
  | Insn.Shift (op, d, n) ->
      u8 buf 0xC1;
      modrm buf d (Operand.Imm (shift_sub op));
      u8 buf n;
      operand_bytes buf d
  | Insn.Cmp (a, b) ->
      u8 buf 0x39;
      modrm buf a b;
      operand_bytes buf a;
      operand_bytes buf b
  | Insn.Test (a, b) ->
      u8 buf 0x85;
      modrm buf a b;
      operand_bytes buf a;
      operand_bytes buf b
  | Insn.Jmp t ->
      u8 buf 0xE9;
      u32 buf (target t)
  | Insn.Jmp_ind op ->
      u8 buf 0xFF;
      modrm buf op (Operand.Imm 4);
      operand_bytes buf op
  | Insn.Jcc (c, t) ->
      u8 buf 0x0F;
      u8 buf (0x80 + (match c with
                      | Cond.E -> 4 | Cond.NE -> 5 | Cond.L -> 12 | Cond.LE -> 14
                      | Cond.G -> 15 | Cond.GE -> 13 | Cond.B -> 2 | Cond.BE -> 6
                      | Cond.A -> 7 | Cond.AE -> 3 | Cond.S -> 8 | Cond.NS -> 9));
      u32 buf (target t)
  | Insn.Call t ->
      u8 buf 0xE8;
      u32 buf (target t)
  | Insn.Call_ind op ->
      u8 buf 0xFF;
      modrm buf op (Operand.Imm 2);
      operand_bytes buf op
  | Insn.Ret -> u8 buf 0xC3
  | Insn.Push (Operand.Reg r) -> u8 buf (0x50 + Reg.index r)
  | Insn.Push (Operand.Imm v) ->
      u8 buf 0x68;
      u32 buf v
  | Insn.Push op ->
      u8 buf 0xFF;
      modrm buf op (Operand.Imm 6);
      operand_bytes buf op
  | Insn.Pop (Operand.Reg r) -> u8 buf (0x58 + Reg.index r)
  | Insn.Pop op ->
      u8 buf 0x8F;
      modrm buf op (Operand.Imm 0);
      operand_bytes buf op
  | Insn.Rep_movs ->
      u8 buf 0xF3;
      u8 buf 0xA5
  | Insn.Rep_stos ->
      u8 buf 0xF3;
      u8 buf 0xAB
  | Insn.Sys n ->
      u8 buf 0xCD;
      u8 buf n);
  Buffer.contents buf

let block insns =
  let buf = Buffer.create 64 in
  List.iter (fun (_, i) -> Buffer.add_string buf (insn i)) insns;
  Buffer.contents buf

let image_text image =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun addr ->
      match Image.fetch image addr with
      | Some i -> Buffer.add_string buf (insn i)
      | None -> ())
    (Image.code_addresses image);
  Buffer.contents buf
