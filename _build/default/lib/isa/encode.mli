(** Binary encoding of instructions.

    The memory accounting behind Table 1 charges the replicating DBT for
    every instruction byte it copies into the code cache, using
    {!Insn.length}. This module grounds those lengths: it emits an actual
    byte encoding (x86-shaped: opcode, ModRM, optional SIB, displacement,
    immediate) whose size equals {!Insn.length} for every instruction —
    asserted by a property test over the whole instruction space.

    The encoding is self-consistent rather than bit-compatible with real
    IA-32 (this ISA is synthetic), but the *structure* — and therefore the
    byte counts — follow the real encoding rules documented in
    {!Operand.encoding_bytes}. *)

val insn : Insn.t -> string
(** Encoded bytes. Branch targets must be resolved ([Abs]).
    @raise Invalid_argument on an unresolved [Lbl] target. *)

val block : (int * Insn.t) list -> string
(** Concatenated encoding of an (address, instruction) sequence, e.g. a
    basic block body. *)

val image_text : Image.t -> string
(** The whole text section; its length equals {!Image.code_bytes}. *)
