type t = {
  entry : int;
  code : (int, Insn.t) Hashtbl.t;
  sizes : (int, int) Hashtbl.t;
  addrs : int array;
  syms : (string, int) Hashtbl.t;
  data_init : (int * int) list;
  code_bytes : int;
  text_lo : int;
  text_hi : int;
}

exception Unknown_label of string

let resolve_target syms = function
  | Insn.Abs a -> Insn.Abs a
  | Insn.Lbl s -> (
      match Hashtbl.find_opt syms s with
      | Some a -> Insn.Abs a
      | None -> raise (Unknown_label s))

let resolve_insn syms insn =
  match insn with
  | Insn.Jmp t -> Insn.Jmp (resolve_target syms t)
  | Insn.Jcc (c, t) -> Insn.Jcc (c, resolve_target syms t)
  | Insn.Call t -> Insn.Call (resolve_target syms t)
  | Insn.Nop | Insn.Cpuid | Insn.Halt | Insn.Mov _ | Insn.Lea _ | Insn.Alu _
  | Insn.Inc _ | Insn.Dec _ | Insn.Neg _ | Insn.Imul _ | Insn.Shift _
  | Insn.Cmp _ | Insn.Test _ | Insn.Jmp_ind _ | Insn.Call_ind _ | Insn.Ret
  | Insn.Push _ | Insn.Pop _ | Insn.Rep_movs | Insn.Rep_stos | Insn.Sys _ ->
      insn

let assemble ?(text_base = Asm.default_text_base)
    ?(data_base = Asm.default_data_base) ?entry (p : Asm.program) =
  let syms = Hashtbl.create 64 in
  let add_sym s addr =
    if Hashtbl.mem syms s then
      invalid_arg (Printf.sprintf "Image.assemble: duplicate label %s" s);
    Hashtbl.add syms s addr
  in
  (* Pass 1: lay out text, collecting label addresses and raw instructions. *)
  let placed = Tea_util.Vec.create () in
  let addr = ref text_base in
  List.iter
    (fun item ->
      match item with
      | Asm.Label s -> add_sym s !addr
      | Asm.Ins i ->
          Tea_util.Vec.push placed (!addr, i);
          addr := !addr + Insn.length i)
    p.text;
  let text_hi = !addr in
  if text_hi > data_base && p.data <> [] then
    invalid_arg "Image.assemble: text overlaps data base";
  (* Data layout. *)
  let data_syms, _data_len = Asm.layout_data ~base:data_base p.data in
  List.iter (fun (s, a) -> add_sym s a) data_syms;
  (* Pass 2: resolve instruction targets and data references. *)
  let code = Hashtbl.create (Tea_util.Vec.length placed * 2) in
  let sizes = Hashtbl.create (Tea_util.Vec.length placed * 2) in
  Tea_util.Vec.iter
    (fun (a, i) ->
      let i = resolve_insn syms i in
      Hashtbl.replace code a i;
      Hashtbl.replace sizes a (Insn.length i))
    placed;
  let data_init =
    let daddr = ref data_base in
    let out = ref [] in
    List.iter
      (fun (d : Asm.data_item) ->
        match d with
        | Asm.Dlabel _ -> ()
        | Asm.Word w ->
            out := (!daddr, w) :: !out;
            daddr := !daddr + 4
        | Asm.Word_ref s -> (
            match Hashtbl.find_opt syms s with
            | Some a ->
                out := (!daddr, a) :: !out;
                daddr := !daddr + 4
            | None -> raise (Unknown_label s))
        | Asm.Space n -> daddr := !daddr + (4 * n))
      p.data;
    List.rev !out
  in
  let entry_addr =
    match entry with
    | Some s -> (
        match Hashtbl.find_opt syms s with
        | Some a -> a
        | None -> raise (Unknown_label s))
    | None -> (
        match Hashtbl.find_opt syms "main" with
        | Some a -> a
        | None -> text_base)
  in
  let addrs =
    Tea_util.Vec.to_array (Tea_util.Vec.map (fun (a, _) -> a) placed)
  in
  Array.sort Int.compare addrs;
  {
    entry = entry_addr;
    code;
    sizes;
    addrs;
    syms;
    data_init;
    code_bytes = text_hi - text_base;
    text_lo = text_base;
    text_hi;
  }

let entry t = t.entry

let fetch t a = Hashtbl.find_opt t.code a

let size_at t a =
  match Hashtbl.find_opt t.sizes a with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Image.size_at: 0x%x" a)

let next_addr t a = a + size_at t a

let symbol_opt t s = Hashtbl.find_opt t.syms s

let symbol t s =
  match symbol_opt t s with Some a -> a | None -> raise (Unknown_label s)

let symbols t =
  Hashtbl.fold (fun s a acc -> (s, a) :: acc) t.syms []
  |> List.sort (fun (_, a) (_, b) -> Int.compare a b)

let initial_data t = t.data_init

let code_addresses t = t.addrs

let code_bytes t = t.code_bytes

let instruction_count t = Array.length t.addrs

let text_bounds t = (t.text_lo, t.text_hi)

let in_text t a = a >= t.text_lo && a < t.text_hi

let pp_listing fmt t =
  let by_addr = Hashtbl.create 64 in
  Hashtbl.iter
    (fun s a ->
      let existing = Option.value (Hashtbl.find_opt by_addr a) ~default:[] in
      Hashtbl.replace by_addr a (s :: existing))
    t.syms;
  Array.iter
    (fun a ->
      (match Hashtbl.find_opt by_addr a with
      | Some labels ->
          List.iter (fun s -> Format.fprintf fmt "%s:@." s) (List.sort compare labels)
      | None -> ());
      match fetch t a with
      | Some i -> Format.fprintf fmt "  0x%08x  %a@." a Insn.pp i
      | None -> ())
    t.addrs
