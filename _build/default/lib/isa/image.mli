(** A laid-out, resolved program image.

    The assembler performs a single layout pass (every relative branch uses
    its near form, so instruction lengths do not depend on displacement
    values), resolves label targets to absolute addresses, and materializes
    the initial data words. The interpreter and the DBT frontends only ever
    see resolved images. *)

type t

exception Unknown_label of string

val assemble :
  ?text_base:int -> ?data_base:int -> ?entry:string -> Asm.program -> t
(** [assemble p] lays out [p.text] at [text_base] (default
    {!Asm.default_text_base}) and [p.data] at [data_base] (default
    {!Asm.default_data_base}). [entry] names the entry label (default:
    ["main"] if defined, else the first instruction).
    @raise Unknown_label on an unresolved branch target or [Word_ref]
    @raise Invalid_argument on duplicate labels or overlapping sections. *)

val entry : t -> int

val fetch : t -> int -> Insn.t option
(** Instruction at an exact address, or [None] (unmapped / misaligned into
    the middle of an instruction). *)

val size_at : t -> int -> int
(** Encoded size of the instruction at an address.
    @raise Invalid_argument if no instruction starts there. *)

val next_addr : t -> int -> int
(** Address of the sequentially following instruction. *)

val symbol : t -> string -> int
(** Address of a label (text or data). @raise Unknown_label. *)

val symbol_opt : t -> string -> int option

val symbols : t -> (string * int) list
(** All symbols, sorted by address. *)

val initial_data : t -> (int * int) list
(** Initialized data words as (address, value) pairs. *)

val code_addresses : t -> int array
(** Every instruction start address, sorted ascending. *)

val code_bytes : t -> int
(** Total text-section size in bytes. *)

val instruction_count : t -> int
(** Number of static instructions. *)

val text_bounds : t -> int * int
(** [lo, hi) address range of the text section. *)

val in_text : t -> int -> bool

val pp_listing : Format.formatter -> t -> unit
(** Disassembly listing with addresses and symbols. *)
