type target =
  | Abs of int
  | Lbl of string

type alu_op = Add | Sub | And | Or | Xor

type shift_op = Shl | Shr | Sar

type t =
  | Nop
  | Cpuid
  | Halt
  | Mov of Operand.t * Operand.t
  | Lea of Reg.t * Operand.mem
  | Alu of alu_op * Operand.t * Operand.t
  | Inc of Operand.t
  | Dec of Operand.t
  | Neg of Operand.t
  | Imul of Reg.t * Operand.t
  | Shift of shift_op * Operand.t * int
  | Cmp of Operand.t * Operand.t
  | Test of Operand.t * Operand.t
  | Jmp of target
  | Jmp_ind of Operand.t
  | Jcc of Cond.t * target
  | Call of target
  | Call_ind of Operand.t
  | Ret
  | Push of Operand.t
  | Pop of Operand.t
  | Rep_movs
  | Rep_stos
  | Sys of int

(* Encoded lengths follow common IA-32 shapes: opcode (1) + modrm (1) +
   operand extras; relative branches always use the near (rel32) form so a
   single layout pass suffices. *)
let length = function
  | Nop -> 1
  | Cpuid -> 2
  | Halt -> 1
  | Mov (dst, src) -> 2 + Operand.encoding_bytes dst + Operand.encoding_bytes src
  | Lea (_, m) -> 2 + Operand.mem_encoding_bytes m
  | Alu (_, dst, src) -> 2 + Operand.encoding_bytes dst + Operand.encoding_bytes src
  | Inc (Operand.Reg _) | Dec (Operand.Reg _) -> 1
  | Inc op | Dec op | Neg op -> 2 + Operand.encoding_bytes op
  | Imul (_, src) -> 3 + Operand.encoding_bytes src
  | Shift (_, dst, _) -> 3 + Operand.encoding_bytes dst
  | Cmp (a, b) | Test (a, b) -> 2 + Operand.encoding_bytes a + Operand.encoding_bytes b
  | Jmp _ -> 5
  | Jmp_ind op -> 2 + Operand.encoding_bytes op
  | Jcc (_, _) -> 6
  | Call _ -> 5
  | Call_ind op -> 2 + Operand.encoding_bytes op
  | Ret -> 1
  | Push (Operand.Reg _) | Pop (Operand.Reg _) -> 1
  | Push (Operand.Imm _) -> 5
  | Push op | Pop op -> 2 + Operand.encoding_bytes op
  | Rep_movs | Rep_stos -> 2
  | Sys _ -> 2

let is_branch = function
  | Jmp _ | Jmp_ind _ | Jcc _ | Call _ | Call_ind _ | Ret | Halt | Sys _ -> true
  | Nop | Cpuid | Mov _ | Lea _ | Alu _ | Inc _ | Dec _ | Neg _ | Imul _
  | Shift _ | Cmp _ | Test _ | Push _ | Pop _ | Rep_movs | Rep_stos -> false

let is_conditional = function
  | Jcc _ -> true
  | Nop | Cpuid | Halt | Mov _ | Lea _ | Alu _ | Inc _ | Dec _ | Neg _
  | Imul _ | Shift _ | Cmp _ | Test _ | Jmp _ | Jmp_ind _ | Call _
  | Call_ind _ | Ret | Push _ | Pop _ | Rep_movs | Rep_stos | Sys _ -> false

let is_indirect = function
  | Jmp_ind _ | Call_ind _ | Ret -> true
  | Nop | Cpuid | Halt | Mov _ | Lea _ | Alu _ | Inc _ | Dec _ | Neg _
  | Imul _ | Shift _ | Cmp _ | Test _ | Jmp _ | Jcc _ | Call _ | Push _
  | Pop _ | Rep_movs | Rep_stos | Sys _ -> false

let writes_control = is_branch

let direct_target = function
  | Jmp (Abs a) | Jcc (_, Abs a) | Call (Abs a) -> Some a
  | Jmp (Lbl _) | Jcc (_, Lbl _) | Call (Lbl _) -> None
  | Nop | Cpuid | Halt | Mov _ | Lea _ | Alu _ | Inc _ | Dec _ | Neg _
  | Imul _ | Shift _ | Cmp _ | Test _ | Jmp_ind _ | Call_ind _ | Ret
  | Push _ | Pop _ | Rep_movs | Rep_stos | Sys _ -> None

let fallthrough_continues = function
  | Jmp _ | Jmp_ind _ | Ret | Halt -> false
  | Sys 0 -> false
  | Sys _ -> true
  | Jcc _ | Call _ | Call_ind _ -> true
  | Nop | Cpuid | Mov _ | Lea _ | Alu _ | Inc _ | Dec _ | Neg _ | Imul _
  | Shift _ | Cmp _ | Test _ | Push _ | Pop _ | Rep_movs | Rep_stos -> true

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"

let shift_name = function Shl -> "shl" | Shr -> "shr" | Sar -> "sar"

let pp_target fmt = function
  | Abs a -> Format.fprintf fmt "0x%x" a
  | Lbl s -> Format.fprintf fmt "%s" s

let pp fmt = function
  | Nop -> Format.fprintf fmt "nop"
  | Cpuid -> Format.fprintf fmt "cpuid"
  | Halt -> Format.fprintf fmt "hlt"
  | Mov (d, s) -> Format.fprintf fmt "mov %a, %a" Operand.pp d Operand.pp s
  | Lea (r, m) ->
      Format.fprintf fmt "lea %a, %a" Reg.pp r Operand.pp (Operand.Mem m)
  | Alu (op, d, s) ->
      Format.fprintf fmt "%s %a, %a" (alu_name op) Operand.pp d Operand.pp s
  | Inc op -> Format.fprintf fmt "inc %a" Operand.pp op
  | Dec op -> Format.fprintf fmt "dec %a" Operand.pp op
  | Neg op -> Format.fprintf fmt "neg %a" Operand.pp op
  | Imul (r, s) -> Format.fprintf fmt "imul %a, %a" Reg.pp r Operand.pp s
  | Shift (op, d, n) ->
      Format.fprintf fmt "%s %a, %d" (shift_name op) Operand.pp d n
  | Cmp (a, b) -> Format.fprintf fmt "cmp %a, %a" Operand.pp a Operand.pp b
  | Test (a, b) -> Format.fprintf fmt "test %a, %a" Operand.pp a Operand.pp b
  | Jmp t -> Format.fprintf fmt "jmp %a" pp_target t
  | Jmp_ind op -> Format.fprintf fmt "jmp *%a" Operand.pp op
  | Jcc (c, t) -> Format.fprintf fmt "j%s %a" (Cond.to_string c) pp_target t
  | Call t -> Format.fprintf fmt "call %a" pp_target t
  | Call_ind op -> Format.fprintf fmt "call *%a" Operand.pp op
  | Ret -> Format.fprintf fmt "ret"
  | Push op -> Format.fprintf fmt "push %a" Operand.pp op
  | Pop op -> Format.fprintf fmt "pop %a" Operand.pp op
  | Rep_movs -> Format.fprintf fmt "rep movsd"
  | Rep_stos -> Format.fprintf fmt "rep stosd"
  | Sys n -> Format.fprintf fmt "int 0x%x" n

let to_string i = Format.asprintf "%a" pp i

let equal (a : t) (b : t) = a = b
