(** Instructions of the synthetic IA-32-like ISA.

    The set is small but covers everything the paper's machinery cares
    about: ALU and memory traffic, direct and indirect control flow, calls
    and returns, REP-prefixed string operations (whose dynamic expansion is
    where StarDBT and Pin disagree, §4.1 of the paper) and [cpuid]-style
    instructions on which Pin forcibly ends a dynamic basic block.

    Branch targets are symbolic ([Lbl]) in assembler input and absolute
    ([Abs]) once the image is laid out; the interpreter only accepts
    resolved instructions. *)

type target =
  | Abs of int      (** resolved absolute address *)
  | Lbl of string   (** unresolved assembler label *)

type alu_op = Add | Sub | And | Or | Xor

type shift_op = Shl | Shr | Sar

type t =
  | Nop
  | Cpuid              (** serializing instruction; Pin splits blocks here *)
  | Halt               (** stops the machine (test harness convenience) *)
  | Mov of Operand.t * Operand.t          (** [Mov (dst, src)] *)
  | Lea of Reg.t * Operand.mem
  | Alu of alu_op * Operand.t * Operand.t (** [Alu (op, dst, src)] *)
  | Inc of Operand.t
  | Dec of Operand.t
  | Neg of Operand.t
  | Imul of Reg.t * Operand.t
  | Shift of shift_op * Operand.t * int
  | Cmp of Operand.t * Operand.t
  | Test of Operand.t * Operand.t
  | Jmp of target
  | Jmp_ind of Operand.t                  (** indirect jump (switch tables) *)
  | Jcc of Cond.t * target
  | Call of target
  | Call_ind of Operand.t
  | Ret
  | Push of Operand.t
  | Pop of Operand.t
  | Rep_movs   (** copy ECX words from [ESI] to [EDI]; one x86 instruction *)
  | Rep_stos   (** store EAX into ECX words at [EDI] *)
  | Sys of int (** software interrupt: 0 = exit(EAX), 1 = emit EAX *)

val length : t -> int
(** Encoded length in bytes, following typical IA-32 encodings (near form
    for all relative branches so layout is single-pass). Lengths feed both
    image layout and Table 1's code-replication accounting. *)

val is_branch : t -> bool
(** True for every control-transfer instruction (jumps, calls, returns,
    [Sys], [Halt]). These end a StarDBT dynamic basic block. *)

val is_conditional : t -> bool

val is_indirect : t -> bool
(** True when the dynamic target cannot be read off the encoding. *)

val writes_control : t -> bool
(** Alias of {!is_branch}; kept for call sites reading better with it. *)

val direct_target : t -> int option
(** Resolved target of a direct jump/call/conditional, if any. *)

val fallthrough_continues : t -> bool
(** Whether execution can continue at the next sequential address
    (conditional branches and calls do; [Jmp], [Ret], [Halt] do not). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool
