type mem = {
  base : Reg.t option;
  index : (Reg.t * int) option;
  disp : int;
}

type t =
  | Reg of Reg.t
  | Imm of int
  | Mem of mem

let valid_scale = function 1 | 2 | 4 | 8 -> true | _ -> false

let mem ?base ?index disp =
  (match index with
  | Some (_, s) when not (valid_scale s) ->
      invalid_arg (Printf.sprintf "Operand.mem: invalid scale %d" s)
  | Some _ | None -> ());
  Mem { base; index; disp }

let reg r = Reg r
let imm n = Imm n

let is_mem = function Mem _ -> true | Reg _ | Imm _ -> false

let disp_bytes d = if d = 0 then 0 else if d >= -128 && d <= 127 then 1 else 4

let mem_encoding_bytes m =
  let sib = match m.index with Some _ -> 1 | None -> 0 in
  let disp =
    match m.base with
    | None -> 4 (* absolute address needs a full displacement *)
    | Some _ -> disp_bytes m.disp
  in
  sib + disp

let encoding_bytes = function
  | Reg _ -> 0
  | Imm _ -> 4
  | Mem m -> mem_encoding_bytes m

let pp_mem fmt m =
  let open Format in
  fprintf fmt "[";
  let printed = ref false in
  (match m.base with
  | Some b ->
      Reg.pp fmt b;
      printed := true
  | None -> ());
  (match m.index with
  | Some (r, s) ->
      if !printed then fprintf fmt "+";
      fprintf fmt "%a*%d" Reg.pp r s;
      printed := true
  | None -> ());
  if m.disp <> 0 || not !printed then begin
    if !printed && m.disp >= 0 then fprintf fmt "+";
    fprintf fmt "%s"
      (if m.disp >= 0 && not !printed then Printf.sprintf "0x%x" m.disp
       else string_of_int m.disp)
  end;
  fprintf fmt "]"

let pp fmt = function
  | Reg r -> Reg.pp fmt r
  | Imm n -> Format.fprintf fmt "%d" n
  | Mem m -> pp_mem fmt m

let to_string op = Format.asprintf "%a" pp op

let equal (a : t) (b : t) = a = b
