(** Instruction operands: register, immediate, or memory reference.

    Memory references follow the IA-32 base + index*scale + displacement
    addressing form. Displacements may be symbolic until the image is laid
    out, so they are expressed as {!Asm_expr.t}-free plain ints here; symbol
    resolution happens in the assembler before operands reach the
    interpreter. *)

type mem = {
  base : Reg.t option;
  index : (Reg.t * int) option;  (** register and scale in {1,2,4,8} *)
  disp : int;
}

type t =
  | Reg of Reg.t
  | Imm of int
  | Mem of mem

val mem : ?base:Reg.t -> ?index:Reg.t * int -> int -> t
(** [mem ?base ?index disp] builds a memory operand.
    @raise Invalid_argument if the scale is not 1, 2, 4 or 8. *)

val reg : Reg.t -> t
val imm : int -> t

val is_mem : t -> bool

val mem_encoding_bytes : mem -> int
(** Extra encoding bytes an x86-style memory operand contributes:
    SIB byte when an index is present, plus 0/1/4 displacement bytes. *)

val encoding_bytes : t -> int
(** Extra bytes this operand contributes beyond the opcode+modrm baseline:
    0 for registers, 4 for immediates, {!mem_encoding_bytes} for memory. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool
