type t = EAX | EBX | ECX | EDX | ESI | EDI | EBP | ESP

let all = [ EAX; EBX; ECX; EDX; ESI; EDI; EBP; ESP ]

let count = List.length all

let index = function
  | EAX -> 0
  | EBX -> 1
  | ECX -> 2
  | EDX -> 3
  | ESI -> 4
  | EDI -> 5
  | EBP -> 6
  | ESP -> 7

let of_index = function
  | 0 -> EAX
  | 1 -> EBX
  | 2 -> ECX
  | 3 -> EDX
  | 4 -> ESI
  | 5 -> EDI
  | 6 -> EBP
  | 7 -> ESP
  | n -> invalid_arg (Printf.sprintf "Reg.of_index: %d" n)

let to_string = function
  | EAX -> "eax"
  | EBX -> "ebx"
  | ECX -> "ecx"
  | EDX -> "edx"
  | ESI -> "esi"
  | EDI -> "edi"
  | EBP -> "ebp"
  | ESP -> "esp"

let pp fmt r = Format.pp_print_string fmt (to_string r)

let equal (a : t) (b : t) = a = b

let compare a b = Int.compare (index a) (index b)
