(** General-purpose registers of the synthetic IA-32-like ISA. *)

type t = EAX | EBX | ECX | EDX | ESI | EDI | EBP | ESP

val all : t list
(** Every register, in encoding order. *)

val count : int
(** Number of registers. *)

val index : t -> int
(** Encoding index in [0, count). *)

val of_index : int -> t
(** Inverse of {!index}. @raise Invalid_argument when out of range. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val compare : t -> t -> int
