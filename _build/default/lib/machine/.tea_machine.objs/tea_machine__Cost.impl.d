lib/machine/cost.ml: Insn Operand Tea_isa
