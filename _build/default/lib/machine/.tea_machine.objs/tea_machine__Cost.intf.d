lib/machine/cost.mli: Tea_isa
