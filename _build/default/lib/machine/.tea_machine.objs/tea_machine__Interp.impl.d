lib/machine/interp.ml: Array Cond Cost Image Insn List Memory Operand Printf Reg Tea_isa Tea_util
