lib/machine/interp.mli: Memory Tea_isa
