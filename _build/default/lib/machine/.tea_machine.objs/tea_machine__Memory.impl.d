lib/machine/memory.ml: Hashtbl List Tea_util
