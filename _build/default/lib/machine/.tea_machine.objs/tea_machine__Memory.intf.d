lib/machine/memory.mli:
