open Tea_isa

let operand_extra = function
  | Operand.Mem _ -> 2 (* load/store latency *)
  | Operand.Reg _ | Operand.Imm _ -> 0

let insn i ~reps =
  match i with
  | Insn.Nop -> 1
  | Insn.Cpuid -> 60 (* serializing *)
  | Insn.Halt -> 1
  | Insn.Mov (d, s) -> 1 + operand_extra d + operand_extra s
  | Insn.Lea _ -> 1
  | Insn.Alu (_, d, s) -> 1 + operand_extra d + operand_extra s
  | Insn.Inc op | Insn.Dec op | Insn.Neg op -> 1 + (2 * operand_extra op)
  | Insn.Imul (_, s) -> 3 + operand_extra s
  | Insn.Shift (_, d, _) -> 1 + operand_extra d
  | Insn.Cmp (a, b) | Insn.Test (a, b) -> 1 + operand_extra a + operand_extra b
  | Insn.Jmp _ -> 1
  | Insn.Jmp_ind op -> 3 + operand_extra op
  | Insn.Jcc _ -> 2
  | Insn.Call _ -> 3
  | Insn.Call_ind op -> 4 + operand_extra op
  | Insn.Ret -> 3
  | Insn.Push _ | Insn.Pop _ -> 2
  | Insn.Rep_movs -> 3 + (2 * reps)
  | Insn.Rep_stos -> 3 + reps
  | Insn.Sys _ -> 50
