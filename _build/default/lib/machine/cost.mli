(** Cycle cost model for native execution.

    The paper reports wall-clock times on a Core i7; we have no hardware, so
    every "time" in the reproduction is simulated cycles from this model
    (see DESIGN.md, "Timing model"). Costs are coarse single-issue
    approximations — what matters downstream is that they are *consistent*
    across native runs, DBT runs and instrumented runs, so slowdown ratios
    are meaningful. *)

val insn : Tea_isa.Insn.t -> reps:int -> int
(** Cycles to execute one instruction; [reps] is the dynamic iteration count
    of a REP-prefixed instruction (1 otherwise). *)
