open Tea_isa
module W = Tea_util.Word32

type t = {
  image : Image.t;
  regs : int array;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable ovf : bool;
  mem : Memory.t;
  mutable pc : int;
  mutable out_rev : int list;
  mutable n_instrs : int;
  mutable n_expanded : int;
  mutable n_cycles : int;
}

type event = {
  pc : int;
  insn : Insn.t;
  reps : int;
  next_pc : int;
}

type outcome =
  | Exited of int
  | Halted
  | Fuel_exhausted
  | Fault of string

type stop = { outcome : outcome; at_pc : int }

exception Stop_exec of outcome

let create ?(stack_base = 0x0BFFFFF0) image =
  let mem = Memory.create () in
  Memory.load_words mem (Image.initial_data image);
  let regs = Array.make Reg.count 0 in
  regs.(Reg.index Reg.ESP) <- stack_base;
  {
    image;
    regs;
    zf = false;
    sf = false;
    cf = false;
    ovf = false;
    mem;
    pc = Image.entry image;
    out_rev = [];
    n_instrs = 0;
    n_expanded = 0;
    n_cycles = 0;
  }

let reg t r = t.regs.(Reg.index r)

let set_reg t r v = t.regs.(Reg.index r) <- W.norm v

let memory t = t.mem

let pc (t : t) = t.pc

let output t = List.rev t.out_rev

let dyn_instrs t = t.n_instrs

let dyn_instrs_expanded t = t.n_expanded

let cycles t = t.n_cycles

let effective_addr t (m : Operand.mem) =
  let base = match m.base with Some r -> reg t r | None -> 0 in
  let idx = match m.index with Some (r, s) -> reg t r * s | None -> 0 in
  (base + idx + m.disp) land 0xFFFFFFFF

let read_operand t = function
  | Operand.Reg r -> reg t r
  | Operand.Imm n -> W.norm n
  | Operand.Mem m -> Memory.read t.mem (effective_addr t m)

let write_operand t op v =
  match op with
  | Operand.Reg r -> set_reg t r v
  | Operand.Mem m -> Memory.write t.mem (effective_addr t m) v
  | Operand.Imm _ -> raise (Stop_exec (Fault "write to immediate operand"))

let set_flags_result t r =
  t.zf <- r = 0;
  t.sf <- W.norm r < 0

let set_flags_logic t r =
  set_flags_result t r;
  t.cf <- false;
  t.ovf <- false

let set_flags_add t a b =
  set_flags_result t (W.add a b);
  t.cf <- W.carry_add a b;
  t.ovf <- W.overflow_add a b

let set_flags_sub t a b =
  set_flags_result t (W.sub a b);
  t.cf <- W.borrow_sub a b;
  t.ovf <- W.overflow_sub a b

let cond_holds t = function
  | Cond.E -> t.zf
  | Cond.NE -> not t.zf
  | Cond.L -> t.sf <> t.ovf
  | Cond.LE -> t.zf || t.sf <> t.ovf
  | Cond.G -> (not t.zf) && t.sf = t.ovf
  | Cond.GE -> t.sf = t.ovf
  | Cond.B -> t.cf
  | Cond.BE -> t.cf || t.zf
  | Cond.A -> (not t.cf) && not t.zf
  | Cond.AE -> not t.cf
  | Cond.S -> t.sf
  | Cond.NS -> not t.sf

let target_addr = function
  | Insn.Abs a -> a
  | Insn.Lbl s -> raise (Stop_exec (Fault ("unresolved label " ^ s)))

let push t v =
  let sp = reg t Reg.ESP - 4 in
  set_reg t Reg.ESP sp;
  Memory.write t.mem sp v

let pop t =
  let sp = reg t Reg.ESP in
  let v = Memory.read t.mem sp in
  set_reg t Reg.ESP (sp + 4);
  v

let alu_apply op a b =
  match op with
  | Insn.Add -> W.add a b
  | Insn.Sub -> W.sub a b
  | Insn.And -> W.logand a b
  | Insn.Or -> W.logor a b
  | Insn.Xor -> W.logxor a b

(* Executes [insn] at [addr]; returns (next_pc, reps). *)
let exec (t : t) addr insn =
  let fall = Image.next_addr t.image addr in
  match insn with
  | Insn.Nop | Insn.Cpuid -> (fall, 1)
  | Insn.Halt -> raise (Stop_exec Halted)
  | Insn.Mov (d, s) ->
      write_operand t d (read_operand t s);
      (fall, 1)
  | Insn.Lea (r, m) ->
      set_reg t r (effective_addr t m);
      (fall, 1)
  | Insn.Alu (op, d, s) ->
      let a = read_operand t d and b = read_operand t s in
      let r = alu_apply op a b in
      (match op with
      | Insn.Add -> set_flags_add t a b
      | Insn.Sub -> set_flags_sub t a b
      | Insn.And | Insn.Or | Insn.Xor -> set_flags_logic t r);
      write_operand t d r;
      (fall, 1)
  | Insn.Inc d ->
      let keep_cf = t.cf in
      let a = read_operand t d in
      set_flags_add t a 1;
      t.cf <- keep_cf;
      write_operand t d (W.add a 1);
      (fall, 1)
  | Insn.Dec d ->
      let keep_cf = t.cf in
      let a = read_operand t d in
      set_flags_sub t a 1;
      t.cf <- keep_cf;
      write_operand t d (W.sub a 1);
      (fall, 1)
  | Insn.Neg d ->
      let a = read_operand t d in
      set_flags_sub t 0 a;
      write_operand t d (W.neg a);
      (fall, 1)
  | Insn.Imul (r, s) ->
      let a = reg t r and b = read_operand t s in
      let v = W.mul a b in
      set_flags_result t v;
      t.cf <- a * b <> v;
      t.ovf <- t.cf;
      set_reg t r v;
      (fall, 1)
  | Insn.Shift (op, d, n) ->
      let a = read_operand t d in
      let r =
        match op with
        | Insn.Shl -> W.shl a n
        | Insn.Shr -> W.shr a n
        | Insn.Sar -> W.sar a n
      in
      set_flags_logic t r;
      write_operand t d r;
      (fall, 1)
  | Insn.Cmp (a, b) ->
      set_flags_sub t (read_operand t a) (read_operand t b);
      (fall, 1)
  | Insn.Test (a, b) ->
      set_flags_logic t (W.logand (read_operand t a) (read_operand t b));
      (fall, 1)
  | Insn.Jmp tg -> (target_addr tg, 1)
  | Insn.Jmp_ind op -> (W.unsigned (read_operand t op), 1)
  | Insn.Jcc (c, tg) ->
      if cond_holds t c then (target_addr tg, 1) else (fall, 1)
  | Insn.Call tg ->
      push t fall;
      (target_addr tg, 1)
  | Insn.Call_ind op ->
      let dst = W.unsigned (read_operand t op) in
      push t fall;
      (dst, 1)
  | Insn.Ret -> (W.unsigned (pop t), 1)
  | Insn.Push op ->
      push t (read_operand t op);
      (fall, 1)
  | Insn.Pop op ->
      write_operand t op (pop t);
      (fall, 1)
  | Insn.Rep_movs ->
      let count = max 0 (reg t Reg.ECX) in
      let src = ref (W.unsigned (reg t Reg.ESI)) in
      let dst = ref (W.unsigned (reg t Reg.EDI)) in
      for _ = 1 to count do
        Memory.write t.mem !dst (Memory.read t.mem !src);
        src := !src + 4;
        dst := !dst + 4
      done;
      set_reg t Reg.ESI !src;
      set_reg t Reg.EDI !dst;
      set_reg t Reg.ECX 0;
      (fall, max 1 count)
  | Insn.Rep_stos ->
      let count = max 0 (reg t Reg.ECX) in
      let v = reg t Reg.EAX in
      let dst = ref (W.unsigned (reg t Reg.EDI)) in
      for _ = 1 to count do
        Memory.write t.mem !dst v;
        dst := !dst + 4
      done;
      set_reg t Reg.EDI !dst;
      set_reg t Reg.ECX 0;
      (fall, max 1 count)
  | Insn.Sys 0 -> raise (Stop_exec (Exited (reg t Reg.EAX)))
  | Insn.Sys 1 ->
      t.out_rev <- reg t Reg.EAX :: t.out_rev;
      (fall, 1)
  | Insn.Sys _ -> (fall, 1)

let step (t : t) =
  let addr = t.pc in
  match Image.fetch t.image addr with
  | None ->
      Error { outcome = Fault (Printf.sprintf "bad fetch at 0x%x" addr); at_pc = addr }
  | Some insn -> (
      match exec t addr insn with
      | next_pc, reps ->
          t.pc <- next_pc;
          t.n_instrs <- t.n_instrs + 1;
          t.n_expanded <- t.n_expanded + reps;
          t.n_cycles <- t.n_cycles + Cost.insn insn ~reps;
          Ok { pc = addr; insn; reps; next_pc }
      | exception Stop_exec outcome ->
          t.n_instrs <- t.n_instrs + 1;
          t.n_expanded <- t.n_expanded + 1;
          t.n_cycles <- t.n_cycles + Cost.insn insn ~reps:1;
          Error { outcome; at_pc = addr })

let resume ?(fuel = 50_000_000) ?(on_event = fun _ -> ()) (t : t) =
  let rec loop remaining =
    if remaining <= 0 then { outcome = Fuel_exhausted; at_pc = t.pc }
    else
      match step t with
      | Ok ev ->
          on_event ev;
          loop (remaining - 1)
      | Error stop -> stop
  in
  loop fuel

let run ?fuel ?on_event image =
  let t = create image in
  let stop = resume ?fuel ?on_event t in
  (t, stop)
