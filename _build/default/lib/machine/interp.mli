(** Single-step interpreter for the synthetic ISA.

    This is the "native machine" of the reproduction: every frontend
    (StarDBT-like, Pin-like) observes the same architectural execution
    through the per-instruction event returned by {!step}, and differs only
    in how it groups instructions into dynamic basic blocks and what
    overhead it charges. *)

type t

type event = {
  pc : int;
  insn : Tea_isa.Insn.t;
  reps : int;
      (** Dynamic iteration count of a REP-prefixed instruction, 1 for all
          others. StarDBT counts such an instruction once; Pin expands it
          into [reps] dynamic instructions (paper §4.1). *)
  next_pc : int;  (** where control went after this instruction *)
}

type outcome =
  | Exited of int           (** [Sys 0] with the code in EAX *)
  | Halted                  (** [Halt] *)
  | Fuel_exhausted
  | Fault of string         (** bad fetch, bad target, stack underflow... *)

type stop = { outcome : outcome; at_pc : int }

val create : ?stack_base:int -> Tea_isa.Image.t -> t
(** Fresh machine: registers zeroed, ESP at [stack_base] (default
    0x0BFF_FFF0), data section loaded. *)

val step : t -> (event, stop) result
(** Execute one instruction. *)

val run :
  ?fuel:int ->
  ?on_event:(event -> unit) ->
  Tea_isa.Image.t ->
  t * stop
(** Run a fresh machine to completion (or [fuel] instructions, default 50
    million), feeding every event to [on_event]; returns the final machine
    (for counters and output) and the stop reason. *)

val resume : ?fuel:int -> ?on_event:(event -> unit) -> t -> stop
(** Continue stepping an existing machine. *)

val pc : t -> int
val reg : t -> Tea_isa.Reg.t -> int
val set_reg : t -> Tea_isa.Reg.t -> int -> unit
val memory : t -> Memory.t

val output : t -> int list
(** Values emitted via [Sys 1], in emission order. Deterministic workload
    checksums for the tests. *)

val dyn_instrs : t -> int
(** Executed instructions, counting a REP instruction once (StarDBT rule). *)

val dyn_instrs_expanded : t -> int
(** Executed instructions counting each REP iteration (Pin rule). *)

val cycles : t -> int
(** Accumulated native cycles per {!Cost}. *)
