type access_kind = Load | Store

type t = {
  cells : (int, int) Hashtbl.t;
  mutable tracer : (access_kind -> int -> unit) option;
}

let create () = { cells = Hashtbl.create 1024; tracer = None }

let set_tracer t tracer = t.tracer <- tracer

let write t addr v =
  let addr = addr land 0xFFFFFFFF in
  (match t.tracer with Some f -> f Store addr | None -> ());
  Hashtbl.replace t.cells addr (Tea_util.Word32.norm v)

let load_words t pairs =
  let saved = t.tracer in
  t.tracer <- None;
  List.iter (fun (a, v) -> write t a v) pairs;
  t.tracer <- saved

let read t addr =
  let addr = addr land 0xFFFFFFFF in
  (match t.tracer with Some f -> f Load addr | None -> ());
  match Hashtbl.find_opt t.cells addr with Some v -> v | None -> 0

let footprint t = Hashtbl.length t.cells

let copy t = { cells = Hashtbl.copy t.cells; tracer = None }
