(** Sparse word-addressed data memory.

    The synthetic machine is word-oriented: every access reads or writes an
    aligned 32-bit word. Unwritten locations read as zero, which keeps
    workload images small. *)

type t

val create : unit -> t

val load_words : t -> (int * int) list -> unit
(** Install initial data (address, value) pairs, e.g. {!Tea_isa.Image.initial_data}. *)

val read : t -> int -> int
(** [read m addr] is the word at [addr] (zero if never written). *)

val write : t -> int -> int -> unit

val footprint : t -> int
(** Number of distinct words ever written. *)

val copy : t -> t
(** The copy carries no tracer. *)

type access_kind = Load | Store

val set_tracer : t -> (access_kind -> int -> unit) option -> unit
(** Observe every subsequent {!read}/{!write} with its address — the hook
    the cache-simulator substrate uses to collect a data-access trace.
    [None] removes the tracer. Initial-data loading ({!load_words}) is not
    traced even if a tracer is installed first. *)
