lib/opt/opt.ml: Array Buffer Fun Hashtbl Insn List Operand Option Printf Reg Tea_cfg Tea_core Tea_isa Tea_machine Tea_traces
