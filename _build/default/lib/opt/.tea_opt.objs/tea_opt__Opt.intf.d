lib/opt/opt.mli: Tea_core Tea_traces
