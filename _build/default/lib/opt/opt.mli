(** Profile-guided trace-optimization analysis.

    The paper's whole motivation is that a runtime "aggressively optimizes
    traces" using profile information that TEA can collect before any trace
    code exists. This module closes that loop: it finds classic superblock
    optimization opportunities in a recorded trace — strength reduction,
    immediate combining, redundant-load elimination, dead stores — and
    weights each by the TEA replay profile, yielding the expected cycle
    savings an optimizer would bank by compiling this trace.

    Everything is a conservative *analysis* (no code is rewritten): kills
    follow the coarsest alias model (any store or call invalidates all
    remembered loads) and flag liveness is respected when replacing
    flag-writing instructions. Opportunities spanning TBB boundaries are
    only reported along unconditional chain edges of superblock traces —
    the cross-block scope that makes traces worth optimizing at all. *)

type kind =
  | Strength_reduction  (** [imul r, 2^k] -> [shl r, k] *)
  | Combine_immediates  (** adjacent add/sub immediates on one register *)
  | Redundant_load      (** reload of a provably-unchanged memory word *)
  | Dead_store          (** store overwritten before any possible read *)

val kind_name : kind -> string

type finding = {
  kind : kind;
  tbb_index : int;
  insn_index : int;     (** within the TBB *)
  saved_cycles : int;   (** per execution of that TBB *)
  note : string;
}

val analyze : Tea_traces.Trace.t -> finding list
(** All opportunities, in path order. *)

type savings = {
  findings : (finding * int) list;  (** finding, executions of its TBB *)
  static_cycles : int;      (** per one full trace pass, unweighted *)
  expected_cycles : int;    (** profile-weighted: sum over findings of
                                saved_cycles * executions *)
}

val weighted : Tea_core.Replayer.t -> Tea_traces.Trace.t -> savings
(** Weight {!analyze} by the replayed per-TBB execution counts. *)

val render : Tea_traces.Trace.t -> savings -> string
