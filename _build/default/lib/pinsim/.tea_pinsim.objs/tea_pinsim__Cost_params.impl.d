lib/pinsim/cost_params.ml:
