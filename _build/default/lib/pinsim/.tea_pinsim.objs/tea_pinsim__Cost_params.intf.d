lib/pinsim/cost_params.mli:
