lib/pinsim/edge_filter.ml: Array Hashtbl List Tea_cfg
