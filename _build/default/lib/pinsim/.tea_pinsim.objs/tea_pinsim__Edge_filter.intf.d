lib/pinsim/edge_filter.mli: Tea_cfg
