lib/pinsim/overhead.ml: Cost_params Pin Pintool_replay Tea_core
