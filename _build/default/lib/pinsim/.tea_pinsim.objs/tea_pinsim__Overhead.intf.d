lib/pinsim/overhead.mli: Cost_params Tea_isa Tea_traces
