lib/pinsim/pin.ml: Cost_params Hashtbl Tea_cfg Tea_machine
