lib/pinsim/pin.mli: Cost_params Tea_cfg Tea_isa Tea_machine
