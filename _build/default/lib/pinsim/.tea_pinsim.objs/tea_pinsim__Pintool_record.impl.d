lib/pinsim/pintool_record.ml: Cost_params Edge_filter Pin Tea_core Tea_traces
