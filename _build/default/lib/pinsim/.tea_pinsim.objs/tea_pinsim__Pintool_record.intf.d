lib/pinsim/pintool_record.mli: Cost_params Tea_core Tea_isa Tea_traces
