lib/pinsim/pintool_replay.ml: Cost_params Edge_filter Pin Tea_cfg Tea_core
