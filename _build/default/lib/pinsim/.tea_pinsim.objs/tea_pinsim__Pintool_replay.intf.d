lib/pinsim/pintool_replay.mli: Cost_params Tea_core Tea_isa Tea_traces
