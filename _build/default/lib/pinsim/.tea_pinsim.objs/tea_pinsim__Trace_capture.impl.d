lib/pinsim/trace_capture.ml: Edge_filter Fun Pin Tea_cfg Tea_core
