lib/pinsim/trace_capture.mli: Tea_isa
