type t = {
  jit_per_insn : int;
  dispatch_per_block : int;
  analysis_call : int;
  nte_side_work : int;
}

let default =
  { jit_per_insn = 350; dispatch_per_block = 2; analysis_call = 150; nte_side_work = 85 }
