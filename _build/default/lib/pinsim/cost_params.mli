(** Cost parameters of the Pin-like frontend (simulated cycles).

    The paper attributes TEA's replay overhead to two sources (§4): the way
    Pin inserts *function calls* to the pintool's analysis routines on every
    instrumented edge, and the transition function's lookups. The
    transition-function side lives in {!Tea_core.Transition}; this module
    prices the framework itself. Values are order-of-magnitude figures for
    Pin circa 2009 on a Core i7, chosen so the reproduced Table 4 lands in
    the paper's regime (geomean "Without Pintool" ≈ 1.5×, "Empty" ≈ 25×):

    - JIT: Pin recompiles every executed block once, with heavyweight
      instrumentation-capable codegen — hundreds of cycles per instruction.
      Benchmarks with a large executed footprint (gcc, crafty, eon,
      perlbmk) pay it visibly; tight FP loops amortize it to ≈ 1.0×.
    - Dispatch: executing an already-jitted block costs a small constant
      (Pin chains blocks).
    - Analysis call: register spill + call + argument setup + return around
      the pintool routine, on *every* block-to-block edge.
    - NTE-side work: the pintool's cold-code bookkeeping (per edge whose
      transition lands in NTE) — on top of the container miss cost already
      charged by the transition function. *)

type t = {
  jit_per_insn : int;
  dispatch_per_block : int;
  analysis_call : int;
  nte_side_work : int;
}

val default : t
(** [{jit_per_insn = 350; dispatch_per_block = 2; analysis_call = 150;
     nte_side_work = 85}] *)
