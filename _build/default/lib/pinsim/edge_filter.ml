module Block = Tea_cfg.Block

type t = {
  emit : Block.t -> expanded:int -> unit;
  merged : (int, Block.t) Hashtbl.t;  (* logical block cache by start *)
  mutable frags_rev : Block.t list;   (* fragments of the pending block *)
  mutable expanded : int;
}

let create ~emit = { emit; merged = Hashtbl.create 256; frags_rev = []; expanded = 0 }

(* Concatenate the pending fragments into one logical block. Repeated
   fragments (REP iterations re-executing the same start) contribute their
   instructions once to the static body. *)
let seal t =
  match List.rev t.frags_rev with
  | [] -> None
  | first :: _ as frags ->
      let start = first.Block.start in
      let block =
        match Hashtbl.find_opt t.merged start with
        | Some b -> b
        | None ->
            let insns =
              let seen = Hashtbl.create 8 in
              List.concat_map
                (fun (f : Block.t) ->
                  if Hashtbl.mem seen f.Block.start then []
                  else begin
                    Hashtbl.replace seen f.Block.start ();
                    Array.to_list f.Block.insns
                  end)
                frags
            in
            let last = List.nth frags (List.length frags - 1) in
            let b = Block.make last.Block.end_kind insns in
            Hashtbl.replace t.merged start b;
            b
      in
      let expanded = t.expanded in
      t.frags_rev <- [];
      t.expanded <- 0;
      Some (block, expanded)

let on_block t (b : Block.t) =
  t.frags_rev <- b :: t.frags_rev;
  t.expanded <- t.expanded + Block.n_insns b;
  match b.Block.end_kind with
  | Block.Branch -> (
      match seal t with
      | Some (block, expanded) -> t.emit block ~expanded
      | None -> assert false)
  | Block.Policy_split -> ()

let callbacks t =
  {
    Tea_cfg.Discovery.on_block = on_block t;
    Tea_cfg.Discovery.on_edge = (fun _ _ -> ());
  }

let flush t =
  match seal t with
  | Some (block, expanded) -> t.emit block ~expanded
  | None -> ()
