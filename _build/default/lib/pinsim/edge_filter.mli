(** The §4.1 fix: instrument edges, not Pin block starts.

    Pin's discovery policy splits dynamic blocks at REP-prefixed
    instructions (one fragment per iteration) and after [cpuid]; StarDBT
    does not. A pintool that stepped the TEA at every *Pin* block boundary
    would therefore see transitions StarDBT never recorded and fall out of
    every trace that contains such an instruction. The paper's solution is
    to insert instrumentation on the taken and fall-through edges instead,
    guaranteeing the pintool sees the same transitions StarDBT saw.

    This adapter consumes the Pin-policy fragment stream and re-emits
    logical blocks delimited by real control transfers: consecutive
    [Policy_split] fragments (including repeated REP iterations) merge into
    the enclosing block. Emitted blocks carry both the merged static
    instruction list (REP counted once — StarDBT's counting) and the
    expanded dynamic count (each REP iteration counted — Pin's counting),
    which is precisely why Tables 2/3 report coverage rather than
    instruction counts. *)

type t

val create : emit:(Tea_cfg.Block.t -> expanded:int -> unit) -> t

val callbacks : t -> Tea_cfg.Discovery.callbacks

val flush : t -> unit
(** Emit a trailing partial logical block, if any. *)
