module Block = Tea_cfg.Block
module Discovery = Tea_cfg.Discovery
module Interp = Tea_machine.Interp

type stats = {
  native_cycles : int;
  jit_cycles : int;
  dispatch_cycles : int;
  framework_cycles : int;
  blocks_jitted : int;
  block_execs : int;
  edge_execs : int;
  total_insns : int;
  stop : Interp.stop;
  output : int list;
}

let run ?(params = Cost_params.default) ?fuel ?tool image =
  let jitted = Hashtbl.create 512 in
  let jit = ref 0 in
  let dispatch = ref 0 in
  let execs = ref 0 in
  let edges = ref 0 in
  let insns = ref 0 in
  let framework =
    {
      Discovery.on_block =
        (fun b ->
          if not (Hashtbl.mem jitted b.Block.start) then begin
            Hashtbl.replace jitted b.Block.start ();
            jit := !jit + (params.Cost_params.jit_per_insn * Block.n_insns b)
          end;
          dispatch := !dispatch + params.Cost_params.dispatch_per_block;
          incr execs;
          insns := !insns + Block.n_insns b);
      Discovery.on_edge = (fun _ _ -> incr edges);
    }
  in
  let callbacks =
    match tool with
    | None -> framework
    | Some t -> Tea_cfg.Dcfg.tee framework t
  in
  let machine, stop, _disc = Discovery.run ~policy:Discovery.Pin ?fuel image callbacks in
  let native = Interp.cycles machine in
  {
    native_cycles = native;
    jit_cycles = !jit;
    dispatch_cycles = !dispatch;
    framework_cycles = native + !jit + !dispatch;
    blocks_jitted = Hashtbl.length jitted;
    block_execs = !execs;
    edge_execs = !edges;
    total_insns = !insns;
    stop;
    output = Interp.output machine;
  }

let native_cycles ?fuel image =
  let machine, _stop = Interp.run ?fuel image in
  Interp.cycles machine
