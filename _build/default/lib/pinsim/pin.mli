(** The Pin-like runner: executes a program under the Pin block-discovery
    policy, charges framework costs (JIT + dispatch), and hands the
    block/edge stream to an optional tool. *)

type stats = {
  native_cycles : int;
  jit_cycles : int;
  dispatch_cycles : int;
  framework_cycles : int;  (** native + jit + dispatch *)
  blocks_jitted : int;
  block_execs : int;
  edge_execs : int;
  total_insns : int;       (** Pin-expanded dynamic instruction count *)
  stop : Tea_machine.Interp.stop;
  output : int list;
}

val run :
  ?params:Cost_params.t ->
  ?fuel:int ->
  ?tool:Tea_cfg.Discovery.callbacks ->
  Tea_isa.Image.t ->
  stats

val native_cycles : ?fuel:int -> Tea_isa.Image.t -> int
(** Cycles of a plain native run (Table 4's normalization baseline). *)
