module Transition = Tea_core.Transition
module Online = Tea_core.Online

type result = {
  coverage : float;
  covered_insns : int;
  total_insns : int;
  native_cycles : int;
  framework_cycles : int;
  tool_cycles : int;
  total_cycles : int;
  slowdown : float;
  traces : Tea_traces.Trace.t list;
  automaton_bytes : int;
  transition_stats : Transition.stats;
}

let record ?(params = Cost_params.default) ?config
    ?(transition = Transition.config_global_local) ?fuel ~strategy image =
  let online = Online.create ?config ~transition strategy in
  (* §4.1: record over taken/fall-through edges so the traces use the same
     block boundaries StarDBT would. *)
  let analysis_calls = ref 0 in
  let filter =
    Edge_filter.create ~emit:(fun block ~expanded:_ ->
        incr analysis_calls;
        Online.feed online block)
  in
  let stats = Pin.run ~params ?fuel ~tool:(Edge_filter.callbacks filter) image in
  Edge_filter.flush filter;
  Online.finish online;
  let trans = Online.transition online in
  let st = Transition.stats trans in
  let tool_cycles =
    (params.Cost_params.analysis_call * !analysis_calls)
    + Transition.cycles trans
    + (params.Cost_params.nte_side_work * st.Transition.global_misses)
  in
  let total_cycles = stats.Pin.framework_cycles + tool_cycles in
  let native = stats.Pin.native_cycles in
  ( {
      coverage = Online.coverage online;
      covered_insns = Online.covered_insns online;
      total_insns = Online.total_insns online;
      native_cycles = native;
      framework_cycles = stats.Pin.framework_cycles;
      tool_cycles;
      total_cycles;
      slowdown =
        (if native = 0 then 0.0
         else float_of_int total_cycles /. float_of_int native);
      traces = Online.traces online;
      automaton_bytes = Tea_core.Automaton.byte_size (Online.automaton online);
      transition_stats = st;
    },
    online )
