(** The trace-recording pintool (paper §4, Table 3): TEA used as the trace
    recording mechanism itself, via Algorithm 2, inside the instrumentation
    frontend. The paper records MRET traces this way. *)

type result = {
  coverage : float;
  covered_insns : int;
  total_insns : int;
  native_cycles : int;
  framework_cycles : int;
  tool_cycles : int;
  total_cycles : int;
  slowdown : float;
  traces : Tea_traces.Trace.t list;
  automaton_bytes : int;
  transition_stats : Tea_core.Transition.stats;
}

val record :
  ?params:Cost_params.t ->
  ?config:Tea_traces.Recorder.config ->
  ?transition:Tea_core.Transition.config ->
  ?fuel:int ->
  strategy:Tea_traces.Recorder.strategy ->
  Tea_isa.Image.t ->
  result * Tea_core.Online.t
