lib/report/ablations.ml: List Option Printf Stats Table Tea_core Tea_dbt Tea_pinsim Tea_traces Tea_workloads
