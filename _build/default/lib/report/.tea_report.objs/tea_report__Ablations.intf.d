lib/report/ablations.mli:
