lib/report/experiments.ml: List Printf Stats String Table Tea_core Tea_dbt Tea_isa Tea_pinsim Tea_traces Tea_workloads
