lib/report/experiments.mli: Tea_dbt Tea_isa Tea_pinsim Tea_traces Tea_workloads
