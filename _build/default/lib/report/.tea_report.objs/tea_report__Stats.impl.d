lib/report/stats.ml: List Printf
