lib/report/stats.mli:
