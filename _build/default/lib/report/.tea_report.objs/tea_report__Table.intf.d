lib/report/table.mli:
