module Spec = Tea_workloads.Spec2000
module Stardbt = Tea_dbt.Stardbt
module Trace_set = Tea_traces.Trace_set
module Registry = Tea_traces.Registry
module Automaton = Tea_core.Automaton
module Builder = Tea_core.Builder
module Transition = Tea_core.Transition

let image_of name =
  match Spec.by_name name with
  | Some p -> Spec.image p
  | None -> invalid_arg (Printf.sprintf "Ablations: unknown benchmark %s" name)

(* ---------------- strategies ---------------- *)

type strategy_row = {
  s_benchmark : string;
  s_strategy : string;
  n_traces : int;
  n_tbbs : int;
  dbt_bytes : int;
  tea_bytes : int;
  saving : float;
  coverage : float;
}

let default_benchmarks = [ "171.swim"; "164.gzip"; "176.gcc"; "181.mcf" ]

let strategies ?(benchmarks = default_benchmarks) () =
  List.concat_map
    (fun bench ->
      let image = image_of bench in
      List.map
        (fun (s_strategy, strategy) ->
          let r = Stardbt.record ~strategy image in
          let set = r.Stardbt.set in
          let dbt_bytes = Trace_set.dbt_bytes set image in
          let tea_bytes = Automaton.byte_size (Builder.of_set set) in
          {
            s_benchmark = bench;
            s_strategy;
            n_traces = Trace_set.n_traces set;
            n_tbbs = Trace_set.n_tbbs set;
            dbt_bytes;
            tea_bytes;
            saving = Stats.savings ~dbt:dbt_bytes ~tea:tea_bytes;
            coverage = r.Stardbt.coverage;
          })
        Registry.extended)
    benchmarks

let render_strategies rows =
  let header =
    [ "benchmark"; "strategy"; "traces"; "TBBs"; "DBT B"; "TEA B"; "savings"; "coverage" ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.s_benchmark; r.s_strategy; string_of_int r.n_traces;
          string_of_int r.n_tbbs; string_of_int r.dbt_bytes;
          string_of_int r.tea_bytes; Stats.percent r.saving;
          Stats.percent1 r.coverage;
        ])
      rows
  in
  "Ablation: selection strategies (including MFET)\n" ^ Table.render ~header body

(* ---------------- cache slots ---------------- *)

type cache_row = { slots : int; slowdown : float; hit_rate : float }

let cache_slots ?(benchmark = "176.gcc") ?(slots = [ 1; 2; 4; 8; 16; 32 ]) () =
  let image = image_of benchmark in
  let strategy = Option.get (Registry.by_name "mret") in
  let r = Stardbt.record ~strategy image in
  let traces = Trace_set.to_list r.Stardbt.set in
  let native = Tea_pinsim.Pin.native_cycles image in
  List.map
    (fun n ->
      let transition =
        { Transition.config_global_local with Transition.cache_slots = n }
      in
      let result, _ = Tea_pinsim.Pintool_replay.replay ~transition ~traces image in
      let st = result.Tea_pinsim.Pintool_replay.transition_stats in
      let lookups =
        st.Transition.cache_hits + st.Transition.global_hits
        + st.Transition.global_misses
      in
      {
        slots = n;
        slowdown =
          float_of_int result.Tea_pinsim.Pintool_replay.total_cycles
          /. float_of_int native;
        hit_rate =
          (if lookups = 0 then 0.0
           else float_of_int st.Transition.cache_hits /. float_of_int lookups);
      })
    slots

let render_cache_slots rows =
  let header = [ "cache slots"; "slowdown"; "cache hit rate" ] in
  let body =
    List.map
      (fun r ->
        [ string_of_int r.slots; Stats.ratio r.slowdown; Stats.percent1 r.hit_rate ])
      rows
  in
  "Ablation: per-state local-cache size (Global/Local replay)\n"
  ^ Table.render ~header body

(* ---------------- hot threshold ---------------- *)

type threshold_row = {
  threshold : int;
  t_traces : int;
  t_coverage : float;
  t_tea_bytes : int;
}

let hot_threshold ?(benchmark = "181.mcf") ?(thresholds = [ 10; 25; 50; 100; 250; 1000 ])
    () =
  let image = image_of benchmark in
  let strategy = Option.get (Registry.by_name "mret") in
  List.map
    (fun threshold ->
      let config =
        { Tea_traces.Recorder.default_config with
          Tea_traces.Recorder.hot_threshold = threshold }
      in
      let r = Stardbt.record ~config ~strategy image in
      {
        threshold;
        t_traces = Trace_set.n_traces r.Stardbt.set;
        t_coverage = r.Stardbt.coverage;
        t_tea_bytes = Automaton.byte_size (Builder.of_set r.Stardbt.set);
      })
    thresholds

let render_hot_threshold rows =
  let header = [ "hot threshold"; "traces"; "coverage"; "TEA bytes" ] in
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.threshold; string_of_int r.t_traces;
          Stats.percent1 r.t_coverage; string_of_int r.t_tea_bytes;
        ])
      rows
  in
  "Ablation: MRET hot threshold (trace count vs coverage)\n"
  ^ Table.render ~header body
