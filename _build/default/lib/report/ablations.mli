(** Ablation studies for the reproduction's design choices.

    Not tables from the paper — these sweep the knobs the paper's §4.2
    discussion identifies as mattering (the lookup structures) plus the
    recording parameters our DESIGN.md calls out, so their effect is
    measured rather than asserted. *)

(** Strategy ablation: Table-1-style sizes for every registered strategy,
    including the extended set (MFET). *)
type strategy_row = {
  s_benchmark : string;
  s_strategy : string;
  n_traces : int;
  n_tbbs : int;
  dbt_bytes : int;
  tea_bytes : int;
  saving : float;
  coverage : float;
}

val strategies :
  ?benchmarks:string list -> unit -> strategy_row list

val render_strategies : strategy_row list -> string

(** Local-cache size sweep: Global/Local slowdown as the per-state cache
    shrinks or grows. *)
type cache_row = { slots : int; slowdown : float; hit_rate : float }

val cache_slots :
  ?benchmark:string -> ?slots:int list -> unit -> cache_row list

val render_cache_slots : cache_row list -> string

(** Hot-threshold sweep: how the recording threshold trades trace-set size
    against coverage. *)
type threshold_row = {
  threshold : int;
  t_traces : int;
  t_coverage : float;
  t_tea_bytes : int;
}

val hot_threshold :
  ?benchmark:string -> ?thresholds:int list -> unit -> threshold_row list

val render_hot_threshold : threshold_row list -> string
