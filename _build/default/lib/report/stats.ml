let geomean xs =
  let xs = List.filter (fun x -> x > 0.0) xs in
  match xs with
  | [] -> 0.0
  | _ ->
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percent f = Printf.sprintf "%.0f%%" (100.0 *. f)

let percent1 f = Printf.sprintf "%.1f%%" (100.0 *. f)

let ratio f = Printf.sprintf "%.2f" f

let kb bytes = max 1 ((bytes + 1023) / 1024)

let savings ~dbt ~tea =
  if dbt <= 0 then 0.0 else 1.0 -. (float_of_int tea /. float_of_int dbt)
