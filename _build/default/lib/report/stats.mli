(** Small statistics helpers used by the experiment tables. *)

val geomean : float list -> float
(** Geometric mean; zero/negative entries are skipped (the paper's tables
    never contain them). Returns 0 on an empty list. *)

val mean : float list -> float

val percent : float -> string
(** ["77%"] style, rounded to the nearest integer. *)

val percent1 : float -> string
(** ["99.8%"] style, one decimal. *)

val ratio : float -> string
(** ["13.53"] style, two decimals. *)

val kb : int -> int
(** Bytes to whole KB, rounding up (sizes under 1 KB still show as 1). *)

val savings : dbt:int -> tea:int -> float
(** [1 - tea/dbt], the Table 1 "Savings" fraction. *)
