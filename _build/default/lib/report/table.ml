type align = Left | Right

let render ?align ~header rows =
  let ncols = List.length header in
  let aligns =
    match align with
    | Some a ->
        if List.length a <> ncols then invalid_arg "Table.render: align arity";
        Array.of_list a
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.make ncols 0 in
  let note row =
    List.iteri
      (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  note header;
  List.iter
    (fun row ->
      if List.length row <> ncols then invalid_arg "Table.render: row arity";
      note row)
    rows;
  let pad i cell =
    let w = widths.(i) in
    match aligns.(i) with
    | Left -> Printf.sprintf "%-*s" w cell
    | Right -> Printf.sprintf "%*s" w cell
  in
  let line row = String.concat "  " (List.mapi pad row) in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" ((line header :: rule :: List.map line rows) @ [ "" ])
