(** Minimal aligned ASCII-table rendering for the experiment reports. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** Column-aligned table with a header rule. [align] defaults to [Left] for
    the first column and [Right] for the rest. *)
