lib/traces/hotness.ml: Hashtbl Option Tea_cfg
