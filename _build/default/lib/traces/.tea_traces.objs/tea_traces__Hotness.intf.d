lib/traces/hotness.mli: Tea_cfg
