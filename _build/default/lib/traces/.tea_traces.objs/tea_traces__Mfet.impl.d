lib/traces/mfet.ml: Array Hashtbl Hotness List Option Recorder Tea_cfg Trace
