lib/traces/mfet.mli: Recorder
