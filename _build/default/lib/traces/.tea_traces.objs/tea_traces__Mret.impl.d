lib/traces/mret.ml: Array Hashtbl Hotness List Recorder Tea_cfg Trace
