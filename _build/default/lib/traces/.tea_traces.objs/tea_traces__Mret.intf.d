lib/traces/mret.mli: Recorder
