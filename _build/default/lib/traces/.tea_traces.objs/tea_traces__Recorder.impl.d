lib/traces/recorder.ml: Tea_cfg Trace
