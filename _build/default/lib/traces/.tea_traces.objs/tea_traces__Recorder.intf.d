lib/traces/recorder.mli: Tea_cfg Trace
