lib/traces/registry.ml: List Mfet Mret Recorder Tree_strategy
