lib/traces/registry.mli: Recorder
