lib/traces/serialize.ml: Array Buffer Fun Image Insn List Printf String Tbb Tea_cfg Tea_isa Trace
