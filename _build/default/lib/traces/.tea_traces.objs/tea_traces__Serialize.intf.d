lib/traces/serialize.mli: Tea_cfg Tea_isa Trace
