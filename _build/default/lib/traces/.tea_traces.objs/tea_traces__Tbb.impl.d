lib/traces/tbb.ml: Format Tea_cfg
