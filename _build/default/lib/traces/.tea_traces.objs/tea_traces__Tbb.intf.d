lib/traces/tbb.mli: Format Tea_cfg
