lib/traces/trace.ml: Array Format Hashtbl List Printf String Tbb Tea_cfg
