lib/traces/trace.mli: Format Tbb Tea_cfg Tea_isa
