lib/traces/trace_set.ml: Hashtbl List Option Trace
