lib/traces/trace_set.mli: Tea_isa Trace
