lib/traces/tree_strategy.ml: Array Hashtbl Hotness List Option Recorder Tea_cfg Tea_util Trace
