lib/traces/tree_strategy.mli: Recorder
