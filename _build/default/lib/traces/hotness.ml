type 'k t = {
  threshold : int;
  counts : ('k, int) Hashtbl.t;
}

let create ~threshold =
  if threshold < 1 then invalid_arg "Hotness.create: threshold must be >= 1";
  { threshold; counts = Hashtbl.create 256 }

let threshold t = t.threshold

let bump t key =
  let c = 1 + Option.value (Hashtbl.find_opt t.counts key) ~default:0 in
  if c >= t.threshold then begin
    Hashtbl.replace t.counts key 0;
    true
  end
  else begin
    Hashtbl.replace t.counts key c;
    false
  end

let count t key = Option.value (Hashtbl.find_opt t.counts key) ~default:0

let reset t key = Hashtbl.remove t.counts key

let is_backward ~src ~dst = dst <= src.Tea_cfg.Block.start
