(** Execution counters with a hotness threshold.

    All three recording strategies detect hot code the same way the
    MRET/NET family does: count executions of candidate trace heads
    (targets of backward control transfers) and fire once a counter crosses
    the threshold. Counters reset on firing so a strategy can re-arm a
    candidate (e.g. side-exit counters in trace trees, keyed by
    (trace, node, target) tuples — hence the polymorphic key). *)

type 'k t

val create : threshold:int -> 'k t

val threshold : 'k t -> int

val bump : 'k t -> 'k -> bool
(** [bump t key] increments [key]'s counter and returns [true] exactly when
    the counter *reaches* the threshold (once per crossing; the counter is
    reset so it can fire again later). *)

val count : 'k t -> 'k -> int

val reset : 'k t -> 'k -> unit

val is_backward : src:Tea_cfg.Block.t -> dst:int -> bool
(** The backward-transfer heuristic: the destination starts at or before
    the source block. Targets of such transfers are loop-header
    candidates. *)
