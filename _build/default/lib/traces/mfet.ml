module Block = Tea_cfg.Block

type t = {
  cfg : Recorder.config;
  heads : int Hotness.t;
  entries : (int, unit) Hashtbl.t;
  edges : (int * int, int) Hashtbl.t;      (* (src, dst) -> frequency *)
  blocks : (int, Block.t) Hashtbl.t;       (* every block ever observed *)
  mutable next_id : int;
  mutable completed_rev : Trace.t list;
  mutable pending : Trace.t option;        (* trace built at trigger time *)
}

let name = "mfet"

let create cfg =
  {
    cfg;
    heads = Hotness.create ~threshold:cfg.Recorder.hot_threshold;
    entries = Hashtbl.create 64;
    edges = Hashtbl.create 1024;
    blocks = Hashtbl.create 512;
    next_id = 0;
    completed_rev = [];
    pending = None;
  }

let edge_count t ~src ~dst =
  Option.value (Hashtbl.find_opt t.edges (src, dst)) ~default:0

let profile_edge t ~src ~dst =
  Hashtbl.replace t.edges (src, dst) (1 + edge_count t ~src ~dst)

(* The most frequent successor of a block, with its count. *)
let best_successor t src =
  Hashtbl.fold
    (fun (s, d) c acc ->
      if s <> src then acc
      else match acc with Some (_, c') when c' >= c -> acc | _ -> Some (d, c))
    t.edges None

(* Follow the profile's hottest edges from [entry] into a superblock. The
   walk stops at a revisited block, another trace's entry, a cold edge
   (below half the head's heat), or the length cap. *)
let build_trace t entry =
  let min_heat = max 1 (t.cfg.Recorder.hot_threshold / 2) in
  let index_of = Hashtbl.create 16 in
  let rec walk addr acc n =
    match Hashtbl.find_opt t.blocks addr with
    | None -> (List.rev acc, None)
    | Some block -> (
        Hashtbl.replace index_of addr n;
        let acc = block :: acc in
        if n + 1 >= t.cfg.Recorder.max_blocks then (List.rev acc, None)
        else
          match best_successor t addr with
          | Some (next, c) when c >= min_heat -> (
              match Hashtbl.find_opt index_of next with
              | Some k -> (List.rev acc, Some k)  (* cycle found *)
              | None ->
                  if Hashtbl.mem t.entries next then (List.rev acc, None)
                  else walk next acc (n + 1))
          | Some _ | None -> (List.rev acc, None))
  in
  let blocks, cycle_to = walk entry [] 0 in
  match blocks with
  | [] -> None
  | _ ->
      let arr = Array.of_list blocks in
      let n = Array.length arr in
      let succs =
        Array.init n (fun i ->
            if i + 1 < n then [ i + 1 ]
            else match cycle_to with Some k -> [ k ] | None -> [])
      in
      let id = t.next_id in
      t.next_id <- id + 1;
      Some (Trace.make ~id ~kind:name arr succs)

let trigger t ~current ~next =
  Hashtbl.replace t.blocks next.Block.start next;
  match current with
  | None -> false
  | Some src ->
      let dst = next.Block.start in
      profile_edge t ~src:src.Block.start ~dst;
      if Hashtbl.mem t.entries dst then false
      else if Hotness.is_backward ~src ~dst && Hotness.bump t.heads dst then begin
        match build_trace t dst with
        | Some trace ->
            t.pending <- Some trace;
            true
        | None -> false
      end
      else false

let start t ~current:_ ~next:_ =
  match t.pending with
  | Some _ -> ()
  | None -> invalid_arg "Mfet.start: no pending trace"

(* The trace was fully constructed from the edge profile at trigger time;
   the first [add] call publishes it. *)
let add t ~current:_ ~next:_ =
  match t.pending with
  | None -> invalid_arg "Mfet.add: not recording"
  | Some trace ->
      t.pending <- None;
      Hashtbl.replace t.entries (Trace.entry trace) ();
      t.completed_rev <- trace :: t.completed_rev;
      `Done (Some trace)

let abort t =
  match t.pending with
  | None -> None
  | Some trace ->
      t.pending <- None;
      Hashtbl.replace t.entries (Trace.entry trace) ();
      t.completed_rev <- trace :: t.completed_rev;
      Some trace

let traces t = List.rev t.completed_rev
