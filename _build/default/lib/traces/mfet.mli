(** MFET — Most Frequently Executed Tail (ref [5] of the paper; the
    edge-profiling counterpart of MRET discussed in Duesterwald & Bala's
    "less is more").

    Where MRET speculates that the *next* executed tail is the hot one,
    MFET continuously profiles every block-to-block edge and, when a trace
    head becomes hot, *constructs* the trace by following the most
    frequent successor edge from each block — paying permanent edge
    instrumentation overhead for better path selection.

    Not part of the paper's Table 1 strategy set (see
    {!Registry.all}), but registered in {!Registry.extended} and exercised
    by the ablation benchmarks: TEA's memory savings are insensitive to the
    selection strategy, and a fourth strategy makes that point stronger. *)

include Recorder.STRATEGY

val edge_count : t -> src:int -> dst:int -> int
(** Profiled frequency of an edge (exposed for tests). *)
