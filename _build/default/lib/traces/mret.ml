module Block = Tea_cfg.Block

type recording = {
  entry : int;
  mutable blocks_rev : Block.t list;
  mutable len : int;
  index_of : (int, int) Hashtbl.t;  (* block start -> position in recording *)
}

type t = {
  cfg : Recorder.config;
  heads : int Hotness.t;
  entries : (int, unit) Hashtbl.t;
  members : (int, unit) Hashtbl.t;  (* start addrs of blocks inside traces *)
  mutable next_id : int;
  mutable completed_rev : Trace.t list;
  mutable recording : recording option;
}

let name = "mret"

let create cfg =
  {
    cfg;
    heads = Hotness.create ~threshold:cfg.Recorder.hot_threshold;
    entries = Hashtbl.create 64;
    members = Hashtbl.create 256;
    next_id = 0;
    completed_rev = [];
    recording = None;
  }

let is_trace_entry t addr = Hashtbl.mem t.entries addr

(* NET/Dynamo counts two kinds of trace-head candidates: targets of backward
   transfers (loop headers) and targets of exits from existing traces. *)
let trigger t ~current ~next =
  match current with
  | None -> false
  | Some src ->
      let dst = next.Block.start in
      if is_trace_entry t dst then false
      else
        let candidate =
          Hotness.is_backward ~src ~dst
          || (Hashtbl.mem t.members src.Block.start
              && not (Hashtbl.mem t.members dst))
        in
        candidate && Hotness.bump t.heads dst

let start t ~current:_ ~next =
  assert (t.recording = None);
  let index_of = Hashtbl.create 16 in
  Hashtbl.replace index_of next.Block.start 0;
  t.recording <-
    Some { entry = next.Block.start; blocks_rev = [ next ]; len = 1; index_of }

(* Close the current recording with an optional back edge to position
   [cycle_to]. *)
let finish t r ~cycle_to =
  let blocks = Array.of_list (List.rev r.blocks_rev) in
  let n = Array.length blocks in
  let succs =
    Array.init n (fun i ->
        if i + 1 < n then [ i + 1 ]
        else match cycle_to with Some k -> [ k ] | None -> [])
  in
  let id = t.next_id in
  t.next_id <- id + 1;
  let trace = Trace.make ~id ~kind:name blocks succs in
  Hashtbl.replace t.entries r.entry ();
  Array.iter (fun b -> Hashtbl.replace t.members b.Block.start ()) blocks;
  t.completed_rev <- trace :: t.completed_rev;
  t.recording <- None;
  trace

let add t ~current ~next =
  match t.recording with
  | None -> invalid_arg "Mret.add: not recording"
  | Some r ->
      let dst = next.Block.start in
      if dst = r.entry then `Done (Some (finish t r ~cycle_to:(Some 0)))
      else if is_trace_entry t dst then `Done (Some (finish t r ~cycle_to:None))
      else begin
        match Hashtbl.find_opt r.index_of dst with
        | Some k -> `Done (Some (finish t r ~cycle_to:(Some k)))
        | None ->
            if Hotness.is_backward ~src:current ~dst then
              `Done (Some (finish t r ~cycle_to:None))
            else if r.len >= t.cfg.Recorder.max_blocks then
              `Done (Some (finish t r ~cycle_to:None))
            else begin
              Hashtbl.replace r.index_of dst r.len;
              r.blocks_rev <- next :: r.blocks_rev;
              r.len <- r.len + 1;
              `Continue
            end
      end

let abort t =
  match t.recording with
  | None -> None
  | Some r ->
      if r.len >= 2 then Some (finish t r ~cycle_to:None)
      else begin
        t.recording <- None;
        None
      end

let traces t = List.rev t.completed_rev
