(** MRET (Most Recently Executed Tail, a.k.a. NET — Dynamo's strategy,
    refs [1, 7] of the paper).

    Execution counters sit on targets of backward control transfers (loop
    headers). When a counter crosses the threshold, the blocks executed
    next are recorded verbatim into a superblock until the recording takes
    a backward transfer, reaches the head again (producing a cyclic trace),
    runs into another trace's entry, revisits a block already in the
    recording, or hits the length cap. *)

include Recorder.STRATEGY

val is_trace_entry : t -> int -> bool
(** Whether a completed trace starts at this address (exposed for tests). *)
