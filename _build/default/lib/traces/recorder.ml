type config = {
  hot_threshold : int;
  exit_threshold : int;
  max_blocks : int;
  max_path_blocks : int;
  max_inner_unroll : int;
  max_tree_nodes : int;
}

let default_config =
  {
    hot_threshold = 50;
    exit_threshold = 4;
    max_blocks = 64;
    max_path_blocks = 768;
    max_inner_unroll = 10;
    max_tree_nodes = 4096;
  }

module type STRATEGY = sig
  type t

  val name : string

  val create : config -> t

  val trigger : t -> current:Tea_cfg.Block.t option -> next:Tea_cfg.Block.t -> bool

  val start : t -> current:Tea_cfg.Block.t option -> next:Tea_cfg.Block.t -> unit

  val add :
    t ->
    current:Tea_cfg.Block.t ->
    next:Tea_cfg.Block.t ->
    [ `Continue | `Done of Trace.t option ]

  val abort : t -> Trace.t option

  val traces : t -> Trace.t list
end

type strategy = (module STRATEGY)
