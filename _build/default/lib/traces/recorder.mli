(** The trace-selection strategy interface.

    Algorithm 2 of the paper factors online trace recording into a
    three-state machine (Initial / Executing / Creating) that delegates the
    strategy-specific decisions to four hooks: [TriggerTraceRecording],
    [StartCreatingTrace], [AddTBBToTrace] and [DoneTraceRecording]. This
    signature is those hooks. Both drivers — the StarDBT-like runtime
    ({!Tea_dbt}) and TEA's own online recorder — run any strategy
    implementing it, which is how the paper records MRET traces both under
    StarDBT and under the pintool.

    A strategy is fed the executed-block stream as (current, next) pairs:
    [trigger] on every transition while no trace is being recorded (and must
    use those calls to shadow execution through its own traces, e.g. to spot
    hot side exits of a trace tree), and [add] on every transition while
    recording. [add] returns a finished trace when the strategy decides
    recording is done; tree strategies may return an *updated* trace
    carrying a previously-returned id, which replaces the old version. *)

type config = {
  hot_threshold : int;   (** head counter threshold (the paper uses ~50) *)
  exit_threshold : int;  (** side-exit counter threshold for tree growth *)
  max_blocks : int;      (** superblock length cap (MRET) *)
  max_path_blocks : int; (** tree-path length cap — much larger than
                             [max_blocks]: a tree path anchored at an inner
                             loop must be able to go all the way around the
                             enclosing loop *)
  max_inner_unroll : int;
      (** trace trees unroll inner loops into the recorded path; abort the
          path once it crosses the same non-anchor backward target more
          than this many times (the unroll bound every tracing JIT
          applies). Short data-dependent inner loops stay under it —
          that is exactly the gzip/bzip2 tree explosion of Table 1 —
          while long counted FP inner loops exceed it, keeping TT lean
          where the paper's Table 1 shows TT smaller than CTT *)
  max_tree_nodes : int;  (** total TBB cap per trace tree *)
}

val default_config : config
(** [{hot_threshold = 50; exit_threshold = 4; max_blocks = 64;
     max_path_blocks = 768; max_inner_unroll = 10; max_tree_nodes = 4096}] *)

module type STRATEGY = sig
  type t

  val name : string

  val create : config -> t

  val trigger : t -> current:Tea_cfg.Block.t option -> next:Tea_cfg.Block.t -> bool
  (** Executing state: should recording start, with [next] as the first
      TBB? [current] is [None] only for the program's first block. *)

  val start : t -> current:Tea_cfg.Block.t option -> next:Tea_cfg.Block.t -> unit
  (** Recording begins; [next] is the trace head. Only called immediately
      after [trigger] returned [true] for the same pair. *)

  val add :
    t ->
    current:Tea_cfg.Block.t ->
    next:Tea_cfg.Block.t ->
    [ `Continue | `Done of Trace.t option ]
  (** Creating state: [next] is about to execute. [`Done (Some trace)] when
      the trace finished (possibly *without* having added [next] — e.g. the
      trace ended because [next] is another trace's head); [`Done None] when
      the recording was abandoned (e.g. a tree path overran its cap). A
      returned trace whose id matches an earlier one *replaces* it. *)

  val abort : t -> Trace.t option
  (** The program ended while recording; salvage a trace if the partial
      recording is viable, else drop it. *)

  val traces : t -> Trace.t list
  (** Latest version of every trace completed so far, in creation order. *)
end

type strategy = (module STRATEGY)
(** First-class strategy; see {!Registry} for the name-indexed list. *)
