let all : (string * Recorder.strategy) list =
  [
    ("mret", (module Mret : Recorder.STRATEGY));
    ("ctt", (module Tree_strategy.Ctt));
    ("tt", (module Tree_strategy.Tt));
  ]

let extended = all @ [ ("mfet", (module Mfet : Recorder.STRATEGY)) ]

let by_name name = List.assoc_opt name extended

let names = List.map fst all

let extended_names = List.map fst extended
