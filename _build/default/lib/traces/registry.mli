(** Name-indexed registry of the recording strategies the paper evaluates
    (Table 1: MRET, CTT, TT). *)

val by_name : string -> Recorder.strategy option
(** Resolves over {!extended}. *)

val all : (string * Recorder.strategy) list
(** The paper's Table 1 strategies, in column order: mret, ctt, tt. *)

val extended : (string * Recorder.strategy) list
(** [all] plus strategies beyond the paper's evaluation (mfet). *)

val names : string list
(** Names of {!all}. *)

val extended_names : string list
