open Tea_isa

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let magic = "TEA-TRACES 1"

let decode_block image ~start ~n =
  if n <= 0 then parse_error "block at 0x%x: non-positive size %d" start n;
  let rec walk addr k acc =
    if k = 0 then List.rev acc
    else
      match Image.fetch image addr with
      | None -> parse_error "block at 0x%x: no instruction at 0x%x" start addr
      | Some insn -> walk (addr + Insn.length insn) (k - 1) ((addr, insn) :: acc)
  in
  let insns = walk start n [] in
  let _, last = List.nth insns (n - 1) in
  let end_kind =
    if Insn.is_branch last then Tea_cfg.Block.Branch else Tea_cfg.Block.Policy_split
  in
  Tea_cfg.Block.make end_kind insns

let to_string traces =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  List.iter
    (fun (tr : Trace.t) ->
      Buffer.add_string buf
        (Printf.sprintf "trace %d %s %d\n" tr.Trace.id tr.Trace.kind
           (Trace.n_tbbs tr));
      Array.iter
        (fun tb ->
          Buffer.add_string buf
            (Printf.sprintf "tbb 0x%x %d\n" (Tbb.start tb) (Tbb.n_insns tb)))
        tr.Trace.tbbs;
      Array.iteri
        (fun i succs ->
          if succs <> [] then
            Buffer.add_string buf
              (Printf.sprintf "succ %d %s\n" i
                 (String.concat " " (List.map string_of_int succs))))
        tr.Trace.succs;
      Buffer.add_string buf "end\n")
    traces;
  Buffer.contents buf

type parse_state = {
  mutable id : int;
  mutable kind : string;
  mutable expect_tbbs : int;
  mutable blocks_rev : Tea_cfg.Block.t list;
  mutable succs : (int * int list) list;
}

let of_string image s =
  let lines = String.split_on_char '\n' s in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  (match lines with
  | first :: _ when String.trim first = magic -> ()
  | _ -> parse_error "missing %S header" magic);
  let traces = ref [] in
  let cur = ref None in
  let finish () =
    match !cur with
    | None -> parse_error "'end' without 'trace'"
    | Some st ->
        let blocks = Array.of_list (List.rev st.blocks_rev) in
        if Array.length blocks <> st.expect_tbbs then
          parse_error "trace %d: expected %d tbbs, found %d" st.id st.expect_tbbs
            (Array.length blocks);
        let succs = Array.make (Array.length blocks) [] in
        List.iter
          (fun (i, ss) ->
            if i < 0 || i >= Array.length succs then
              parse_error "trace %d: succ index %d out of range" st.id i;
            succs.(i) <- ss)
          st.succs;
        (try traces := Trace.make ~id:st.id ~kind:st.kind blocks succs :: !traces
         with Trace.Ill_formed m -> parse_error "%s" m);
        cur := None
  in
  let ints_of words = List.map int_of_string words in
  List.iteri
    (fun lineno line ->
      if lineno = 0 then ()
      else
        let words =
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun w -> w <> "")
        in
        try
          match (words, !cur) with
          | "trace" :: id :: kind :: ntbbs :: [], None ->
              cur :=
                Some
                  {
                    id = int_of_string id;
                    kind;
                    expect_tbbs = int_of_string ntbbs;
                    blocks_rev = [];
                    succs = [];
                  }
          | "trace" :: _, Some _ -> parse_error "nested 'trace'"
          | "tbb" :: start :: n :: [], Some st ->
              let start = int_of_string start and n = int_of_string n in
              st.blocks_rev <- decode_block image ~start ~n :: st.blocks_rev
          | "succ" :: i :: rest, Some st ->
              st.succs <- (int_of_string i, ints_of rest) :: st.succs
          | [ "end" ], Some _ -> finish ()
          | _, _ -> parse_error "line %d: cannot parse %S" (lineno + 1) line
        with Failure _ ->
          parse_error "line %d: bad integer in %S" (lineno + 1) line)
    lines;
  if !cur <> None then parse_error "unterminated trace";
  List.rev !traces

let save path traces =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string traces))

let load image path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      of_string image s)
