(** Trace-set serialization — the cross-system use case.

    The paper's headline workflow records traces under StarDBT, writes them
    to a file, and loads them into a pintool on a different system for
    replay. Blocks are stored as (start address, instruction count) and
    re-decoded against the program image at load time, exactly as a real
    tool would re-decode the unmodified executable. *)

exception Parse_error of string

val decode_block :
  Tea_isa.Image.t -> start:int -> n:int -> Tea_cfg.Block.t
(** Re-decode a block by walking [n] instructions from [start].
    @raise Parse_error if an address does not hold an instruction. *)

val to_string : Trace.t list -> string

val of_string : Tea_isa.Image.t -> string -> Trace.t list
(** @raise Parse_error on malformed input. *)

val save : string -> Trace.t list -> unit
(** Write to a file path. *)

val load : Tea_isa.Image.t -> string -> Trace.t list
(** Read from a file path. *)
