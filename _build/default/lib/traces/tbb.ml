type t = {
  index : int;
  block : Tea_cfg.Block.t;
}

let make ~index block =
  if index < 0 then invalid_arg "Tbb.make: negative index";
  { index; block }

let start t = t.block.Tea_cfg.Block.start

let n_insns t = Tea_cfg.Block.n_insns t.block

let byte_len t = t.block.Tea_cfg.Block.byte_len

let pp fmt t = Format.fprintf fmt "tbb#%d@@0x%x" t.index (start t)
