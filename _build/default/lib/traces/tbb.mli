(** Trace Basic Blocks (Definition 2 of the paper): an *instance* of a basic
    block inside a trace. The same block may occur in many traces — and,
    for trace trees, several times within one trace — and every occurrence
    is a distinct TBB. A TBB is identified by its position (index) inside
    its owning trace. *)

type t = {
  index : int;              (** position within the owning trace; 0 = head *)
  block : Tea_cfg.Block.t;  (** the underlying basic block *)
}

val make : index:int -> Tea_cfg.Block.t -> t

val start : t -> int
(** Start address of the underlying block — the DFA transition label that
    leads *into* this TBB. *)

val n_insns : t -> int

val byte_len : t -> int

val pp : Format.formatter -> t -> unit
