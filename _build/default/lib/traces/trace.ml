type t = {
  id : int;
  kind : string;
  tbbs : Tbb.t array;
  succs : int list array;
}

exception Ill_formed of string

let ill fmt = Printf.ksprintf (fun s -> raise (Ill_formed s)) fmt

let make ~id ~kind blocks succs =
  let n = Array.length blocks in
  if n = 0 then ill "trace %d: no blocks" id;
  if Array.length succs <> n then
    ill "trace %d: %d blocks but %d successor lists" id n (Array.length succs);
  let tbbs = Array.mapi (fun index b -> Tbb.make ~index b) blocks in
  Array.iteri
    (fun i ss ->
      let seen = Hashtbl.create 4 in
      List.iter
        (fun s ->
          if s < 0 || s >= n then ill "trace %d: successor %d out of range" id s;
          let label = Tbb.start tbbs.(s) in
          if Hashtbl.mem seen label then
            ill "trace %d: TBB %d has two successors labelled 0x%x" id i label;
          Hashtbl.add seen label ())
        ss)
    succs;
  { id; kind; tbbs; succs }

let linear ~id ~kind ?(cycle = false) blocks =
  let arr = Array.of_list blocks in
  let n = Array.length arr in
  let succs =
    Array.init n (fun i ->
        if i + 1 < n then [ i + 1 ] else if cycle && n > 0 then [ 0 ] else [])
  in
  make ~id ~kind arr succs

let entry t = Tbb.start t.tbbs.(0)

let n_tbbs t = Array.length t.tbbs

let n_insns t = Array.fold_left (fun acc tb -> acc + Tbb.n_insns tb) 0 t.tbbs

let code_bytes t = Array.fold_left (fun acc tb -> acc + Tbb.byte_len tb) 0 t.tbbs

let tbb t i = t.tbbs.(i)

let successors t i = t.succs.(i)

let successor_on t i addr =
  List.find_opt (fun s -> Tbb.start t.tbbs.(s) = addr) t.succs.(i)

let distinct_blocks t =
  let seen = Hashtbl.create 16 in
  Array.iter (fun tb -> Hashtbl.replace seen (Tbb.start tb) ()) t.tbbs;
  Hashtbl.length seen

let side_exit_count t image =
  let total = ref 0 in
  Array.iteri
    (fun i tb ->
      let static = Tea_cfg.Block.exit_count tb.Tbb.block image in
      let internal = List.length t.succs.(i) in
      total := !total + max 0 (static - internal))
    t.tbbs;
  !total

let with_id t id = { t with id }

let pp fmt t =
  Format.fprintf fmt "trace %d (%s) entry=0x%x tbbs=%d" t.id t.kind (entry t)
    (n_tbbs t)

let pp_full fmt t =
  pp fmt t;
  Format.fprintf fmt "@.";
  Array.iteri
    (fun i tb ->
      Format.fprintf fmt "  %a -> [%s]@." Tbb.pp tb
        (String.concat "; "
           (List.map
              (fun s -> Printf.sprintf "#%d@0x%x" s (Tbb.start t.tbbs.(s)))
              t.succs.(i))))
    t.tbbs
