(** Traces (Definition 3 of the paper): a collection of TBBs plus the
    control-flow edges between them. The definition deliberately spans
    shapes — MRET superblocks are chains (possibly with a back edge to the
    head), trace trees are trees whose leaves branch back to the anchor,
    compact trace trees additionally carry back edges to inner loop
    headers. *)

type t = private {
  id : int;
  kind : string;                 (** recording strategy: "mret"/"tt"/"ctt" *)
  tbbs : Tbb.t array;            (** index 0 is the trace head *)
  succs : int list array;        (** in-trace successor TBB indices, per TBB *)
}

exception Ill_formed of string

val make : id:int -> kind:string -> Tea_cfg.Block.t array -> int list array -> t
(** [make ~id ~kind blocks succs] builds a trace whose [i]-th TBB wraps
    [blocks.(i)] and has in-trace successors [succs.(i)].
    @raise Ill_formed when empty, when arrays disagree in length, when a
    successor index is out of range, or when determinism is violated (two
    successors of one TBB starting at the same address — the DFA transition
    label could not distinguish them). *)

val linear : id:int -> kind:string -> ?cycle:bool -> Tea_cfg.Block.t list -> t
(** A superblock: TBB [i] flows to TBB [i+1]; with [cycle] the last TBB
    loops back to the head. *)

val entry : t -> int
(** Start address of the head TBB — the label of the NTE → head transition. *)

val n_tbbs : t -> int

val n_insns : t -> int
(** Static instructions summed over TBBs (with multiplicity). *)

val code_bytes : t -> int
(** Bytes of code that a replicating DBT would emit for this trace's body. *)

val tbb : t -> int -> Tbb.t

val successors : t -> int -> int list

val successor_on : t -> int -> int -> int option
(** [successor_on t i addr] is the in-trace successor of TBB [i] whose block
    starts at [addr], if any — the trace-level transition function. *)

val distinct_blocks : t -> int
(** Number of distinct underlying block start addresses (duplication
    diagnostics: [n_tbbs t - distinct_blocks t] instances are copies). *)

val side_exit_count : t -> Tea_isa.Image.t -> int
(** Static exit points that leave the trace (drive exit-stub accounting). *)

val with_id : t -> int -> t

val pp : Format.formatter -> t -> unit

val pp_full : Format.formatter -> t -> unit
