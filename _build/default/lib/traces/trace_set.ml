type t = {
  traces : (int, Trace.t) Hashtbl.t;
  by_entry : (int, int) Hashtbl.t;
  mutable order_rev : int list;
}

let create () =
  { traces = Hashtbl.create 64; by_entry = Hashtbl.create 64; order_rev = [] }

let add t (trace : Trace.t) =
  let id = trace.Trace.id in
  if not (Hashtbl.mem t.traces id) then t.order_rev <- id :: t.order_rev;
  Hashtbl.replace t.traces id trace;
  Hashtbl.replace t.by_entry (Trace.entry trace) id

let of_list l =
  let t = create () in
  List.iter (add t) l;
  t

let to_list t =
  List.rev_map (fun id -> Hashtbl.find t.traces id) t.order_rev

let find_by_id t id = Hashtbl.find_opt t.traces id

let find_by_entry t addr =
  Option.bind (Hashtbl.find_opt t.by_entry addr) (find_by_id t)

let entries t = List.rev_map (fun id -> Trace.entry (Hashtbl.find t.traces id)) t.order_rev

let n_traces t = Hashtbl.length t.traces

let n_tbbs t = List.fold_left (fun acc tr -> acc + Trace.n_tbbs tr) 0 (to_list t)

let total_insns t = List.fold_left (fun acc tr -> acc + Trace.n_insns tr) 0 (to_list t)

type dbt_cost_model = {
  stub_bytes : int;
  entry_patch_bytes : int;
  metadata_bytes : int;
}

(* A StarDBT exit stub spills the register context to the spill area
   (8 × 4-byte stores ≈ 24 B encoded), jumps to the dispatcher (5 B) and
   carries a 4-byte link record — ~32 B per static side exit. *)
let default_dbt_cost = { stub_bytes = 32; entry_patch_bytes = 5; metadata_bytes = 16 }

let dbt_bytes_of_trace ?(model = default_dbt_cost) trace image =
  Trace.code_bytes trace
  + (model.stub_bytes * Trace.side_exit_count trace image)
  + model.entry_patch_bytes + model.metadata_bytes

let dbt_bytes ?model t image =
  List.fold_left (fun acc tr -> acc + dbt_bytes_of_trace ?model tr image) 0 (to_list t)
