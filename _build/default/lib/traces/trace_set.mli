(** A program's set of recorded traces, plus the baseline memory accounting
    for Table 1's "DBT" columns.

    The baseline cost is what a code-replicating DBT (StarDBT) pays to
    *represent* the traces: every TBB's instructions are copied into the
    code cache, every exit that leaves the trace needs an exit stub
    (context spill + jump to dispatcher), plus an entry patch in the
    original code and per-trace metadata. TEA's competing cost is
    {!Tea_core.Automaton.byte_size}. *)

type t

val create : unit -> t

val add : t -> Trace.t -> unit
(** Insert, or replace the previous version carrying the same id (tree
    strategies re-emit grown trees). *)

val of_list : Trace.t list -> t

val to_list : t -> Trace.t list
(** Latest versions, in first-creation order. *)

val find_by_entry : t -> int -> Trace.t option

val find_by_id : t -> int -> Trace.t option

val entries : t -> int list
(** Trace entry addresses, in creation order. *)

val n_traces : t -> int

val n_tbbs : t -> int

val total_insns : t -> int

(** Cost model for the replicating representation. Defaults are realistic
    IA-32/StarDBT figures: a 32-byte exit stub (context spill, dispatcher jump and
    link record), a 5-byte entry patch (near jmp), 16 bytes of per-trace
    metadata. *)
type dbt_cost_model = {
  stub_bytes : int;
  entry_patch_bytes : int;
  metadata_bytes : int;
}

val default_dbt_cost : dbt_cost_model

val dbt_bytes : ?model:dbt_cost_model -> t -> Tea_isa.Image.t -> int
(** Total bytes the replicating representation needs for the whole set. *)

val dbt_bytes_of_trace :
  ?model:dbt_cost_model -> Trace.t -> Tea_isa.Image.t -> int
