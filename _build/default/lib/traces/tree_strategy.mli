(** Trace Trees (TT, Gal & Franz — ref [13]) and Compact Trace Trees
    (CTT, Porto et al. — ref [17]).

    A tree is anchored at a hot loop header. The first recorded path (the
    trunk) runs from the anchor back to itself. Afterwards the strategy
    shadows execution through the tree; when a side exit becomes hot, it
    records a new path from the exit point back to the anchor and grafts it
    onto the tree — duplicating every block along the way (tail
    duplication). That duplication is what makes TT trace sets blow up on
    programs with branchy inner loops (paper Table 1: gzip, bzip2).

    CTT differs in one rule: a recorded path may also end at any *loop
    header* already on the current root path, closing an inner loop with a
    back edge instead of unrolling it into duplicated paths. *)

(** Process-wide growth diagnostics (shared by all instances; reset before
    a run when measuring). *)
module Diag : sig
  val trunks_started : int ref
  val extends_started : int ref
  val paths_completed : int ref
  val paths_aborted : int ref
  val exits_seen : int ref
  val abort_lens : int list ref
  val abort_info : (int * int * bool) list ref
  val abort_why : (string * int * int) list ref
  val trig_in : int ref
  val trig_out : int ref
  val reset : unit -> unit
end

module Make (_ : sig
  val name : string
  val compact : bool
end) : Recorder.STRATEGY

module Tt : Recorder.STRATEGY
(** Trace Trees ([compact = false]). *)

module Ctt : Recorder.STRATEGY
(** Compact Trace Trees ([compact = true]). *)
