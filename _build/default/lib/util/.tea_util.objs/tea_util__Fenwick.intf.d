lib/util/fenwick.mli:
