lib/util/splitmix.mli:
