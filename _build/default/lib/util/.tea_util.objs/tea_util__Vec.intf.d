lib/util/vec.mli:
