lib/util/word32.ml:
