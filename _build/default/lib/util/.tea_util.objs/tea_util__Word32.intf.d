lib/util/word32.mli:
