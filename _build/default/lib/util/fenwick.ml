type t = {
  mutable tree : int array;  (* 1-based internally *)
  mutable n : int;           (* capacity (positions 0..n-1) *)
  mutable sum : int;
}

let create () = { tree = Array.make 16 0; n = 15; sum = 0 }

let grow t needed =
  let n' =
    let rec go n = if n > needed then n else go (n * 2) in
    go (t.n + 1)
  in
  (* rebuild by re-adding raw values: recover them via prefix differences *)
  let raw = Array.make (t.n + 1) 0 in
  let prefix i =
    let rec go i acc = if i <= 0 then acc else go (i - (i land -i)) (acc + t.tree.(i)) in
    go i 0
  in
  for i = 1 to t.n do
    raw.(i) <- prefix i - prefix (i - 1)
  done;
  let tree' = Array.make (n' + 1) 0 in
  let old_n = t.n in
  t.tree <- tree';
  t.n <- n';
  for i = 1 to old_n do
    if raw.(i) <> 0 then begin
      let delta = raw.(i) in
      let rec bump j =
        if j <= t.n then begin
          t.tree.(j) <- t.tree.(j) + delta;
          bump (j + (j land -j))
        end
      in
      bump i
    end
  done

let add t i delta =
  if i < 0 then invalid_arg "Fenwick.add: negative position";
  let i = i + 1 in
  if i > t.n then grow t i;
  t.sum <- t.sum + delta;
  let rec bump j =
    if j <= t.n then begin
      t.tree.(j) <- t.tree.(j) + delta;
      bump (j + (j land -j))
    end
  in
  bump i

let prefix_sum t i =
  let i = min (i + 1) t.n in
  let rec go j acc = if j <= 0 then acc else go (j - (j land -j)) (acc + t.tree.(j)) in
  if i <= 0 then 0 else go i 0

let range_sum t lo hi = if hi < lo then 0 else prefix_sum t hi - prefix_sum t (lo - 1)

let total t = t.sum
