(** Fenwick (binary-indexed) tree over 0-based positions.

    Supports point updates and prefix sums in O(log n), growing on demand.
    Used by the reuse-distance profiler to count distinct cache lines
    between two accesses in O(log n) instead of walking an LRU stack. *)

type t

val create : unit -> t

val add : t -> int -> int -> unit
(** [add t i delta] adds [delta] at position [i] (non-negative). *)

val prefix_sum : t -> int -> int
(** [prefix_sum t i] is the sum over positions [0..i] (inclusive); 0 when
    [i < 0]. Positions never written count as 0. *)

val range_sum : t -> int -> int -> int
(** [range_sum t lo hi] sums positions [lo..hi] inclusive (0 when empty). *)

val total : t -> int
