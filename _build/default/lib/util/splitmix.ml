type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* SplitMix64 finalizer (Steele, Lea & Flood, OOPSLA'14). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let int g bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Keep 62 bits so the value stays non-negative in OCaml's 63-bit int. *)
  let r = Int64.to_int (Int64.shift_right_logical (next g) 2) in
  r mod bound

let int_in g lo hi =
  if hi < lo then invalid_arg "Splitmix.int_in: empty range";
  lo + int g (hi - lo + 1)

let bool g = Int64.logand (next g) 1L = 1L

let float g =
  let bits53 = Int64.to_int (Int64.shift_right_logical (next g) 11) in
  float_of_int bits53 *. (1.0 /. 9007199254740992.0)

let chance g p = float g < p

let choose g = function
  | [] -> invalid_arg "Splitmix.choose: empty list"
  | l -> List.nth l (int g (List.length l))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split g = { state = next g }
