(** Deterministic pseudo-random number generator (SplitMix64).

    Workload synthesis must be reproducible across runs and machines, so all
    randomness in the repository flows through this seeded generator rather
    than [Random]. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance g p] is [true] with probability [p]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list. @raise Invalid_argument on []. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** [split g] derives an independent generator, advancing [g]. *)
