(** Growable arrays.

    OCaml 5.1 has no [Dynarray] (it arrived in 5.2), and several parts of the
    system — automaton state tables, trace sets, block streams — need an
    append-only random-access container. This is a minimal, safe subset of
    the 5.2 API. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty vector. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element. @raise Invalid_argument when out of
    bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit
(** [push v x] appends [x] at the end of [v]. *)

val pop : 'a t -> 'a option
(** [pop v] removes and returns the last element, or [None] if empty. *)

val last : 'a t -> 'a option

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val find_opt : ('a -> bool) -> 'a t -> 'a option

val find_index : ('a -> bool) -> 'a t -> int option

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array

val of_list : 'a list -> 'a t

val map : ('a -> 'b) -> 'a t -> 'b t
