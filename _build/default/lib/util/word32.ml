let mask = 0xFFFFFFFF

let norm x =
  let low = x land mask in
  if low land 0x80000000 <> 0 then low - 0x100000000 else low

let unsigned x = x land mask

let add a b = norm (a + b)
let sub a b = norm (a - b)
let mul a b = norm (a * b)
let logand a b = norm (a land b)
let logor a b = norm (a lor b)
let logxor a b = norm (a lxor b)
let lognot a = norm (lnot a)
let neg a = norm (-a)

let shl a n = norm (a lsl (n land 31))
let shr a n = norm ((a land mask) lsr (n land 31))
let sar a n = norm (norm a asr (n land 31))

let carry_add a b = unsigned a + unsigned b > mask
let borrow_sub a b = unsigned a < unsigned b

let overflow_add a b =
  let r = add a b in
  let a = norm a and b = norm b in
  (a >= 0 && b >= 0 && r < 0) || (a < 0 && b < 0 && r >= 0)

let overflow_sub a b =
  let r = sub a b in
  let a = norm a and b = norm b in
  (a >= 0 && b < 0 && r < 0) || (a < 0 && b >= 0 && r >= 0)
