(** 32-bit machine-word arithmetic on native [int].

    The interpreter models an IA-32-like machine, so all register and memory
    values are kept normalized to signed 32-bit range. OCaml's 63-bit [int]
    hosts them; every arithmetic result goes through {!norm}. *)

val norm : int -> int
(** Truncate to 32 bits and sign-extend. *)

val unsigned : int -> int
(** The value reinterpreted as an unsigned 32-bit quantity (in [0, 2^32)). *)

val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int
val logand : int -> int -> int
val logor : int -> int -> int
val logxor : int -> int -> int
val lognot : int -> int
val neg : int -> int

val shl : int -> int -> int
(** Shift count is masked to 5 bits, as on IA-32. *)

val shr : int -> int -> int
(** Logical right shift. *)

val sar : int -> int -> int
(** Arithmetic right shift. *)

val carry_add : int -> int -> bool
(** Unsigned carry out of a 32-bit addition. *)

val borrow_sub : int -> int -> bool
(** Unsigned borrow of a 32-bit subtraction. *)

val overflow_add : int -> int -> bool
(** Signed overflow of a 32-bit addition. *)

val overflow_sub : int -> int -> bool
(** Signed overflow of a 32-bit subtraction. *)
