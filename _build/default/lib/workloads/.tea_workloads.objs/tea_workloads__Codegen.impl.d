lib/workloads/codegen.ml: Asm Image Insn List Printf Tea_isa
