lib/workloads/codegen.mli: Tea_isa
