lib/workloads/micro.ml: Array Asm Codegen Cond Fun Insn List Operand Printf Reg Tea_isa Tea_util
