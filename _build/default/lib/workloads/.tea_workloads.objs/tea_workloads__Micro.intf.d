lib/workloads/micro.mli: Tea_isa
