lib/workloads/proggen.ml: Array Asm Codegen Cond Hashtbl Insn List Operand Printf Reg Tea_isa Tea_util
