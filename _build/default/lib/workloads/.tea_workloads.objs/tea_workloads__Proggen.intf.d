lib/workloads/proggen.mli: Tea_isa
