lib/workloads/spec2000.ml: Hashtbl List Proggen Tea_isa
