lib/workloads/spec2000.mli: Proggen Tea_isa
