open Tea_isa

type t = {
  mutable text_rev : Asm.item list;
  mutable data_rev : Asm.data_item list;
  mutable next_data : int;
  mutable counter : int;
  mutable text_bytes : int;
  mutable finalized : bool;
}

let create () =
  {
    text_rev = [];
    data_rev = [];
    next_data = Asm.default_data_base;
    counter = 0;
    text_bytes = 0;
    finalized = false;
  }

let check t = if t.finalized then invalid_arg "Codegen: context already finalized"

let fresh_label t stem =
  check t;
  let n = t.counter in
  t.counter <- n + 1;
  Printf.sprintf "%s_%d" stem n

let place t lbl =
  check t;
  t.text_rev <- Asm.Label lbl :: t.text_rev

let emit t insn =
  check t;
  t.text_bytes <- t.text_bytes + Insn.length insn;
  t.text_rev <- Asm.Ins insn :: t.text_rev

let emit_all t insns = List.iter (emit t) insns

let alloc_word t ?label v =
  check t;
  (match label with
  | Some l -> t.data_rev <- Asm.Dlabel l :: t.data_rev
  | None -> ());
  let addr = t.next_data in
  t.data_rev <- Asm.Word v :: t.data_rev;
  t.next_data <- addr + 4;
  addr

let alloc_words t vs =
  check t;
  let addr = t.next_data in
  List.iter (fun v -> ignore (alloc_word t v)) vs;
  addr

let alloc_space t n =
  check t;
  let addr = t.next_data in
  t.data_rev <- Asm.Space n :: t.data_rev;
  t.next_data <- addr + (4 * n);
  addr

let alloc_ref_table t labels =
  check t;
  let addr = t.next_data in
  List.iter (fun l -> t.data_rev <- Asm.Word_ref l :: t.data_rev) labels;
  t.next_data <- addr + (4 * List.length labels);
  addr

let text_offset t = t.text_bytes

let align_text t alignment =
  check t;
  if alignment < 1 then invalid_arg "Codegen.align_text: bad alignment";
  while (Asm.default_text_base + t.text_bytes) mod alignment <> 0 do
    emit t Insn.Nop
  done

let program t =
  check t;
  t.finalized <- true;
  { Asm.text = List.rev t.text_rev; Asm.data = List.rev t.data_rev }

let assemble t = Image.assemble (program t)
