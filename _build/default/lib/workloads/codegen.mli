(** Imperative code-generation context for synthetic workloads.

    Wraps an {!Tea_isa.Asm} program under construction: emits instructions
    and labels into the text section and allocates words in the data
    section. Because the data section lives at a fixed base and is laid out
    sequentially, every allocation's absolute address is known immediately —
    so generated code can carry resolved memory operands while branch
    targets stay symbolic. *)

type t

val create : unit -> t

val fresh_label : t -> string -> string
(** [fresh_label t stem] is a unique label ["<stem>_<n>"] (not yet placed). *)

val place : t -> string -> unit
(** Place a label at the current text position. *)

val emit : t -> Tea_isa.Insn.t -> unit

val emit_all : t -> Tea_isa.Insn.t list -> unit

val alloc_word : t -> ?label:string -> int -> int
(** Allocate one initialized word; returns its absolute address. *)

val alloc_words : t -> int list -> int
(** Allocate consecutive initialized words; returns the first address. *)

val alloc_space : t -> int -> int
(** Allocate [n] zeroed words; returns the first address. *)

val alloc_ref_table : t -> string list -> int
(** Allocate a table of label addresses (jump/call tables); returns the
    table's base address. Labels are resolved at assembly. *)

val text_offset : t -> int
(** Bytes of text emitted so far. *)

val align_text : t -> int -> unit
(** Pad with [nop]s until the next instruction's address (at the default
    text base) is a multiple of the alignment. *)

val program : t -> Tea_isa.Asm.program
(** Finalize. The context must not be reused afterwards. *)

val assemble : t -> Tea_isa.Image.t
(** [Image.assemble (program t)] with defaults. *)
