open Tea_isa
module I = Insn
module O = Operand

let reg r = O.Reg r
let imm n = O.Imm n
let mem_abs a = O.mem a
let mem_base r off = O.mem ~base:r off

(* A counted loop over a data-slot counter: init, body, dec-jnz. *)
let counted_loop cg ~iters ~stem body =
  let slot = Codegen.alloc_word cg 0 in
  let top = Codegen.fresh_label cg stem in
  Codegen.emit cg (I.Mov (mem_abs slot, imm iters));
  Codegen.place cg top;
  body ();
  Codegen.emit cg (I.Dec (mem_abs slot));
  Codegen.emit cg (I.Jcc (Cond.NE, I.Lbl top))

let epilogue cg =
  Codegen.emit cg (I.Sys 1);
  Codegen.emit cg (I.Mov (reg Reg.EAX, imm 0));
  Codegen.emit cg (I.Sys 0)

let copy_loop ?(words = 100) ?(passes = 20) () =
  let cg = Codegen.create () in
  let src = Codegen.alloc_words cg (List.init words (fun i -> i * 3)) in
  let dst = Codegen.alloc_space cg words in
  Codegen.place cg "main";
  let pass () =
    (* Figure 1(a): the optimized copy loop. *)
    Codegen.emit_all cg
      [
        I.Mov (reg Reg.ESI, imm src);
        I.Mov (reg Reg.EDI, imm dst);
        I.Mov (reg Reg.ECX, imm words);
      ];
    let top = Codegen.fresh_label cg "copy" in
    Codegen.place cg top;
    Codegen.emit_all cg
      [
        I.Mov (reg Reg.EAX, mem_base Reg.ESI 0);
        I.Mov (mem_base Reg.EDI 0, reg Reg.EAX);
        I.Alu (I.Add, reg Reg.ESI, imm 4);
        I.Alu (I.Add, reg Reg.EDI, imm 4);
        I.Dec (reg Reg.ECX);
        I.Jcc (Cond.NE, I.Lbl top);
      ]
  in
  counted_loop cg ~iters:passes ~stem:"pass" pass;
  Codegen.emit cg (I.Mov (reg Reg.EAX, mem_abs (dst + (4 * (words - 1)))));
  epilogue cg;
  Codegen.assemble cg

let list_scan ?(nodes = 2000) ?(match_every = 2) ?(passes = 5) () =
  if nodes < 1 then invalid_arg "Micro.list_scan: need at least one node";
  let cg = Codegen.create () in
  let target = 7777 in
  (* Node layout: [next; value]. Chained in address order, last next = 0;
     the region's base address is the data cursor before allocation. *)
  let head = Asm.default_data_base in
  let node i = head + (8 * i) in
  let init_words =
    List.concat
      (List.init nodes (fun i ->
           let next = if i + 1 < nodes then node (i + 1) else 0 in
           let value = if (i + 1) mod match_every = 0 then target else i in
           [ next; value ]))
  in
  let head' = Codegen.alloc_words cg init_words in
  assert (head' = head);
  Codegen.place cg "main";
  let pass () =
    Codegen.emit_all cg
      [
        I.Mov (reg Reg.EDX, imm (node 0));
        I.Mov (reg Reg.ECX, imm target);
      ];
    (* Figure 2(a): $$begin / $$header / $$inc / $$next / $$end. *)
    let begin_l = Codegen.fresh_label cg "begin" in
    let next_l = Codegen.fresh_label cg "next" in
    let end_l = Codegen.fresh_label cg "end" in
    Codegen.place cg begin_l;
    Codegen.emit_all cg
      [ I.Test (reg Reg.EDX, reg Reg.EDX); I.Jcc (Cond.E, I.Lbl end_l) ];
    Codegen.emit_all cg
      [ I.Cmp (reg Reg.ECX, mem_base Reg.EDX 4); I.Jcc (Cond.NE, I.Lbl next_l) ];
    Codegen.emit cg (I.Inc (reg Reg.EAX));
    Codegen.place cg next_l;
    Codegen.emit_all cg
      [ I.Mov (reg Reg.EDX, mem_base Reg.EDX 0); I.Jmp (I.Lbl begin_l) ];
    Codegen.place cg end_l
  in
  Codegen.emit cg (I.Mov (reg Reg.EAX, imm 0));
  counted_loop cg ~iters:passes ~stem:"pass" pass;
  epilogue cg;
  Codegen.assemble cg

let nested_loop ?(outer = 100) ?(inner = 100) () =
  let cg = Codegen.create () in
  Codegen.place cg "main";
  Codegen.emit cg (I.Mov (reg Reg.EAX, imm 0));
  counted_loop cg ~iters:outer ~stem:"outer" (fun () ->
      counted_loop cg ~iters:inner ~stem:"inner" (fun () ->
          Codegen.emit_all cg
            [
              I.Alu (I.Add, reg Reg.EAX, imm 3);
              I.Alu (I.Xor, reg Reg.EAX, imm 0x55);
            ]));
  epilogue cg;
  Codegen.assemble cg

let branchy_loop ?(iters = 2000) ?(mask = 7) () =
  let cg = Codegen.create () in
  Codegen.place cg "main";
  Codegen.emit_all cg
    [ I.Mov (reg Reg.EAX, imm 0); I.Mov (reg Reg.EBX, imm 12345) ];
  counted_loop cg ~iters ~stem:"loop" (fun () ->
      (* LCG step, then a biased diamond. *)
      Codegen.emit_all cg
        [
          I.Imul (Reg.EBX, imm 1103515245);
          I.Alu (I.Add, reg Reg.EBX, imm 12345);
          I.Test (reg Reg.EBX, imm mask);
        ];
      let rare = Codegen.fresh_label cg "rare" in
      let join = Codegen.fresh_label cg "join" in
      Codegen.emit cg (I.Jcc (Cond.E, I.Lbl rare));
      Codegen.emit cg (I.Alu (I.Add, reg Reg.EAX, imm 1));
      Codegen.emit cg (I.Jmp (I.Lbl join));
      Codegen.place cg rare;
      Codegen.emit_all cg
        [ I.Alu (I.Add, reg Reg.EAX, imm 100); I.Alu (I.Xor, reg Reg.EAX, imm 0xFF) ];
      Codegen.place cg join);
  epilogue cg;
  Codegen.assemble cg

let rep_copy ?(words = 64) ?(passes = 200) () =
  let cg = Codegen.create () in
  let src = Codegen.alloc_words cg (List.init words (fun i -> i + 1)) in
  let dst = Codegen.alloc_space cg words in
  Codegen.place cg "main";
  counted_loop cg ~iters:passes ~stem:"pass" (fun () ->
      Codegen.emit_all cg
        [
          I.Mov (reg Reg.ESI, imm src);
          I.Mov (reg Reg.EDI, imm dst);
          I.Mov (reg Reg.ECX, imm words);
          I.Rep_movs;
        ]);
  Codegen.emit cg (I.Mov (reg Reg.EAX, mem_abs (dst + (4 * (words - 1)))));
  epilogue cg;
  Codegen.assemble cg

let two_phase ?(phase_iters = 3000) ?(gap_blocks = 400) () =
  let cg = Codegen.create () in
  Codegen.place cg "main";
  Codegen.emit_all cg
    [ I.Mov (reg Reg.EAX, imm 0); I.Mov (reg Reg.EBX, imm 31) ];
  (* Phase A: a tight hot loop. *)
  counted_loop cg ~iters:phase_iters ~stem:"phase_a" (fun () ->
      Codegen.emit_all cg
        [
          I.Alu (I.Add, reg Reg.EAX, imm 1);
          I.Alu (I.Xor, reg Reg.EAX, imm 0x21);
        ]);
  (* The gap: a long stretch of one-shot blocks (each ends in a jump to the
     next so they stay distinct basic blocks, and none ever gets hot). *)
  for i = 0 to gap_blocks - 1 do
    let next = Printf.sprintf "gap_%d" i in
    Codegen.emit_all cg
      [
        I.Alu (I.Add, reg Reg.EAX, imm i);
        I.Shift (I.Shl, reg Reg.EAX, 1);
        I.Alu (I.Xor, reg Reg.EAX, imm 5);
        I.Jmp (I.Lbl next);
      ];
    Codegen.place cg next
  done;
  (* Phase B: a different hot loop. *)
  counted_loop cg ~iters:phase_iters ~stem:"phase_b" (fun () ->
      Codegen.emit_all cg
        [
          I.Alu (I.Sub, reg Reg.EAX, imm 2);
          I.Alu (I.Or, reg Reg.EAX, reg Reg.EBX);
          I.Imul (Reg.EBX, imm 17);
        ]);
  epilogue cg;
  Codegen.assemble cg

let stream ?(words = 32768) ?(passes = 4) () =
  let cg = Codegen.create () in
  let base = Codegen.alloc_space cg words in
  Codegen.place cg "main";
  Codegen.emit cg (I.Mov (reg Reg.EAX, imm 0));
  counted_loop cg ~iters:passes ~stem:"pass" (fun () ->
      Codegen.emit_all cg
        [ I.Mov (reg Reg.ESI, imm base); I.Mov (reg Reg.ECX, imm words) ];
      let top = Codegen.fresh_label cg "stream" in
      Codegen.place cg top;
      Codegen.emit_all cg
        [
          I.Alu (I.Add, reg Reg.EAX, mem_base Reg.ESI 0);
          I.Alu (I.Add, reg Reg.ESI, imm 4);
          I.Dec (reg Reg.ECX);
          I.Jcc (Cond.NE, I.Lbl top);
        ]);
  epilogue cg;
  Codegen.assemble cg

let big_chase ?(nodes = 16384) ?(steps = 100000) () =
  (* A pseudo-random permutation ring over a footprint far beyond L1:
     every hop is a fresh cache line. *)
  let cg = Codegen.create () in
  let rng = Tea_util.Splitmix.create 0xC0FFEE in
  let order = Array.init nodes Fun.id in
  Tea_util.Splitmix.shuffle rng order;
  let base = Asm.default_data_base in
  (* node i occupies a 16-byte slot; word 0 holds the address of the next
     node in the shuffled ring *)
  let addr i = base + (16 * i) in
  let next = Array.make nodes 0 in
  Array.iteri (fun k i -> next.(i) <- order.((k + 1) mod nodes)) order;
  let words =
    List.concat (List.init nodes (fun i -> [ addr next.(i); i land 0xFF; 0; 0 ]))
  in
  let base' = Codegen.alloc_words cg words in
  assert (base' = base);
  Codegen.place cg "main";
  Codegen.emit_all cg
    [ I.Mov (reg Reg.EAX, imm 0); I.Mov (reg Reg.EDX, imm (addr order.(0))) ];
  counted_loop cg ~iters:steps ~stem:"chase" (fun () ->
      Codegen.emit_all cg
        [
          I.Alu (I.Add, reg Reg.EAX, mem_base Reg.EDX 4);
          I.Mov (reg Reg.EDX, mem_base Reg.EDX 0);
        ]);
  epilogue cg;
  Codegen.assemble cg

let scattered ?(fragments = 6) ?(frag_insns = 18) ?(alignment = 4096)
    ?(iters = 3000) () =
  (* One hot loop whose body hops across [fragments] code fragments, each
     aligned to a multiple of [alignment]: with the alignment equal to a
     small I-cache's size, every fragment aliases the same sets and
     thrashes it, while a packed trace cache holds the whole loop. The nop
     filler between fragments is never executed. *)
  let cg = Codegen.create () in
  Codegen.place cg "main";
  Codegen.emit cg (I.Mov (reg Reg.EAX, imm 0));
  let slot = Codegen.alloc_word cg 0 in
  Codegen.emit cg (I.Mov (mem_abs slot, imm iters));
  Codegen.place cg "loop";
  Codegen.emit cg (I.Jmp (I.Lbl "frag_0"));
  for f = 0 to fragments - 1 do
    Codegen.align_text cg alignment;
    Codegen.place cg (Printf.sprintf "frag_%d" f);
    for k = 1 to frag_insns do
      Codegen.emit cg (I.Alu (I.Add, reg Reg.EAX, imm (f + k)))
    done;
    if f + 1 < fragments then
      Codegen.emit cg (I.Jmp (I.Lbl (Printf.sprintf "frag_%d" (f + 1))))
    else begin
      Codegen.emit cg (I.Dec (mem_abs slot));
      Codegen.emit cg (I.Jcc (Cond.NE, I.Lbl "loop"))
    end
  done;
  epilogue cg;
  Codegen.assemble cg
