(** The paper's worked examples and a few small calibration workloads.

    {!copy_loop} is Figure 1(a): an optimized word-copy loop whose trace an
    optimizer might unroll — the motivation for trace *duplication* and
    per-copy profile replay. {!list_scan} is Figure 2(a): the linked-list
    scan whose MRET traces T1/T2 and their TEA (Figure 3) the paper walks
    through. *)

val copy_loop : ?words:int -> ?passes:int -> unit -> Tea_isa.Image.t
(** Copies [words] (default 100) words from one array to another, [passes]
    (default 20) times. The copy loop is the only hot code. *)

val list_scan :
  ?nodes:int -> ?match_every:int -> ?passes:int -> unit -> Tea_isa.Image.t
(** Scans a [nodes]-long (default 2000) linked list counting occurrences of
    a target value that appears in every [match_every]-th node (default 2 —
    both loop paths hot, so MRET records both T1 and T2); [passes] scans
    (default 5). The program emits the match count via [Sys 1]. *)

val nested_loop : ?outer:int -> ?inner:int -> unit -> Tea_isa.Image.t
(** Two-level counted loop nest with small ALU bodies. *)

val branchy_loop : ?iters:int -> ?mask:int -> unit -> Tea_isa.Image.t
(** A hot loop containing a data-dependent diamond (taken with probability
    [1/(mask+1)], default mask 7) — the minimal trace-tree duplication
    trigger. *)

val rep_copy : ?words:int -> ?passes:int -> unit -> Tea_isa.Image.t
(** A loop around a REP-prefixed block copy — exercises the StarDBT/Pin
    block-boundary disagreement of §4.1. *)

val stream : ?words:int -> ?passes:int -> unit -> Tea_isa.Image.t
(** Sequentially sums a [words]-long array [passes] times — a streaming
    data footprint well beyond L1, for the cache-simulator use case. *)

val big_chase : ?nodes:int -> ?steps:int -> unit -> Tea_isa.Image.t
(** Chases a pseudo-randomly permuted ring of [nodes] 16-byte slots for
    [steps] hops: every hop lands on a fresh line — worst-case data
    locality in one hot trace. *)

val scattered :
  ?fragments:int ->
  ?frag_insns:int ->
  ?alignment:int ->
  ?iters:int ->
  unit ->
  Tea_isa.Image.t
(** A hot loop hopping across distant code fragments that alias the same
    sets of a small instruction cache — the workload where packing traces
    contiguously (a trace cache) wins; see {!Tea_cachesim.Layout}. *)

val two_phase :
  ?phase_iters:int -> ?gap_blocks:int -> unit -> Tea_isa.Image.t
(** Two distinct hot loops separated by a long once-executed straight-line
    stretch ([gap_blocks] one-shot basic blocks). The TEA replay stays
    inside traces during each loop and falls to NTE across the gap — the
    canonical input for {!Tea_core.Phases}-style phase detection. *)
