open Tea_isa
module I = Insn
module O = Operand
module Rng = Tea_util.Splitmix

type profile = {
  name : string;
  seed : int;
  hot_funcs : int;
  cold_funcs : int;
  func_budget : int;
  body_len : int * int;
  nest_depth : int;
  outer_iters : int * int;
  inner_iters : int * int;
  cold_elements : int * int;
  cold_iters : int * int;
  p_loop : float;
  p_diamond : float;
  p_switch : float;
  p_call : float;
  p_list : float;
  p_rep : float;
  mask_bits : int * int;
  switch_ways : int;
  phases : int;
  phase_iters : int;
  calls_per_iter : int;
  p_var_trip : float;
      (* probability a nested loop has a data-dependent trip count *)
}

let default =
  {
    name = "default";
    seed = 1;
    hot_funcs = 8;
    cold_funcs = 10;
    func_budget = 600;
    body_len = (3, 8);
    nest_depth = 2;
    outer_iters = (60, 120);
    inner_iters = (4, 10);
    cold_elements = (4, 10);
    cold_iters = (12, 35);
    p_loop = 0.35;
    p_diamond = 0.25;
    p_switch = 0.05;
    p_call = 0.1;
    p_list = 0.05;
    p_rep = 0.03;
    mask_bits = (2, 4);
    switch_ways = 4;
    phases = 3;
    phase_iters = 120;
    calls_per_iter = 2;
    p_var_trip = 0.0;
  }

let reg r = O.Reg r
let imm n = O.Imm n
let mem_abs a = O.mem a
let mem_base r off = O.mem ~base:r off

type ctx = {
  p : profile;
  rng : Rng.t;
  cg : Codegen.t;
  list_head : int;   (* ring linked list base *)
  buf_src : int;
  buf_dst : int;
  buf_words : int;
}

let avg (lo, hi) = (lo + hi) / 2

let range ctx (lo, hi) = Rng.int_in ctx.rng lo hi

(* x86-flavoured LCG step on EBX: branch entropy source. *)
let lcg_step ctx =
  Codegen.emit_all ctx.cg
    [
      I.Imul (Reg.EBX, imm 1103515245);
      I.Alu (I.Add, reg Reg.EBX, imm 12345);
    ]

let scratch ctx = Codegen.alloc_word ctx.cg 0

(* A few straight-line instructions mixing ALU and memory traffic. *)
let straight_line ctx n =
  let slot = scratch ctx in
  for _ = 1 to n do
    let insn =
      match Rng.int ctx.rng 8 with
      | 0 -> I.Alu (I.Add, reg Reg.EAX, imm (Rng.int ctx.rng 1000))
      | 1 -> I.Alu (I.Xor, reg Reg.EAX, imm (Rng.int ctx.rng 255))
      | 2 -> I.Alu (I.Sub, reg Reg.EAX, imm (Rng.int ctx.rng 100))
      | 3 -> I.Shift (I.Shl, reg Reg.EAX, 1 + Rng.int ctx.rng 3)
      | 4 -> I.Mov (mem_abs slot, reg Reg.EAX)
      | 5 -> I.Alu (I.Add, reg Reg.EAX, mem_abs slot)
      | 6 -> I.Lea (Reg.EBP, { O.base = Some Reg.EAX; index = None; disp = 12 })
      | _ -> I.Alu (I.Or, reg Reg.EAX, reg Reg.EBP)
    in
    Codegen.emit ctx.cg insn
  done;
  n

(* A loop whose trip count is 1 + (lcg & mask) + base: data-dependent, so
   trace trees record a distinct unrolled path per trip count while compact
   trace trees close all of them with one back edge. *)
let variable_loop ctx ~base ~mask body =
  let slot = scratch ctx in
  let top = Codegen.fresh_label ctx.cg "V" in
  lcg_step ctx;
  Codegen.emit_all ctx.cg
    [
      I.Mov (reg Reg.EBP, reg Reg.EBX);
      I.Alu (I.And, reg Reg.EBP, imm mask);
      I.Alu (I.Add, reg Reg.EBP, imm (max 1 base));
      I.Mov (mem_abs slot, reg Reg.EBP);
    ];
  Codegen.place ctx.cg top;
  let body_cost = body () in
  Codegen.emit ctx.cg (I.Dec (mem_abs slot));
  Codegen.emit ctx.cg (I.Jcc (Cond.NE, I.Lbl top));
  let avg_iters = max 1 base + (mask / 2) in
  6 + (avg_iters * (body_cost + 2))

let counted_loop ctx ~iters body =
  let slot = scratch ctx in
  let top = Codegen.fresh_label ctx.cg "L" in
  Codegen.emit ctx.cg (I.Mov (mem_abs slot, imm iters));
  Codegen.place ctx.cg top;
  let body_cost = body () in
  Codegen.emit ctx.cg (I.Dec (mem_abs slot));
  Codegen.emit ctx.cg (I.Jcc (Cond.NE, I.Lbl top));
  1 + (iters * (body_cost + 2))

let diamond ctx ~inner =
  let bits = range ctx ctx.p.mask_bits in
  let mask = (1 lsl bits) - 1 in
  lcg_step ctx;
  Codegen.emit ctx.cg (I.Test (reg Reg.EBX, imm mask));
  let rare = Codegen.fresh_label ctx.cg "rare" in
  let join = Codegen.fresh_label ctx.cg "join" in
  Codegen.emit ctx.cg (I.Jcc (Cond.E, I.Lbl rare));
  let c1 = inner () in
  Codegen.emit ctx.cg (I.Jmp (I.Lbl join));
  Codegen.place ctx.cg rare;
  let c2 = inner () in
  Codegen.place ctx.cg join;
  3 + ((c1 + c2) / 2) + 1

let switch ctx ~inner =
  let ways = ctx.p.switch_ways in
  assert (ways land (ways - 1) = 0);
  lcg_step ctx;
  let join = Codegen.fresh_label ctx.cg "sjoin" in
  let cases = List.init ways (fun _ -> Codegen.fresh_label ctx.cg "case") in
  let table = Codegen.alloc_ref_table ctx.cg cases in
  Codegen.emit_all ctx.cg
    [
      I.Mov (reg Reg.EBP, reg Reg.EBX);
      I.Alu (I.And, reg Reg.EBP, imm (ways - 1));
      I.Mov (reg Reg.EBP, O.mem ~index:(Reg.EBP, 4) table);
      I.Jmp_ind (reg Reg.EBP);
    ];
  let cost = ref 0 in
  List.iter
    (fun c ->
      Codegen.place ctx.cg c;
      cost := !cost + inner ();
      Codegen.emit ctx.cg (I.Jmp (I.Lbl join)))
    cases;
  Codegen.place ctx.cg join;
  6 + (!cost / ways) + 1

let list_chase ctx =
  let iters = 8 + Rng.int ctx.rng 24 in
  Codegen.emit ctx.cg (I.Mov (reg Reg.EDX, imm ctx.list_head));
  let cost =
    counted_loop ctx ~iters (fun () ->
        Codegen.emit_all ctx.cg
          [
            I.Alu (I.Add, reg Reg.EAX, mem_base Reg.EDX 4);
            I.Mov (reg Reg.EDX, mem_base Reg.EDX 0);
          ];
        2)
  in
  cost + 1

let rep_copy ctx =
  let words = 8 + Rng.int ctx.rng (ctx.buf_words - 8) in
  Codegen.emit_all ctx.cg
    [
      I.Mov (reg Reg.ESI, imm ctx.buf_src);
      I.Mov (reg Reg.EDI, imm ctx.buf_dst);
      I.Mov (reg Reg.ECX, imm words);
      I.Rep_movs;
    ];
  4

let straight_capped ctx ~budget =
  straight_line ctx (max 1 (min (range ctx ctx.p.body_len) budget))

(* One element of a hot function body at loop depth [d], spending at most
   roughly [budget] dynamic instructions per execution; returns the actual
   estimated cost. [callees] pair labels with their known per-call cost. *)
let rec element ctx ~d ~budget ~callees =
  let p = ctx.p in
  let pick = Rng.float ctx.rng in
  let thresholds =
    [
      (p.p_loop, `Loop); (p.p_diamond, `Diamond); (p.p_switch, `Switch);
      (p.p_call, `Call); (p.p_list, `List); (p.p_rep, `Rep);
    ]
  in
  let rec choose acc = function
    | [] -> `Straight
    | (pr, kind) :: rest -> if pick < acc +. pr then kind else choose (acc +. pr) rest
  in
  match choose 0.0 thresholds with
  | `Loop when d < p.nest_depth && budget >= 16 ->
      let iters = if d = 0 then range ctx p.outer_iters else range ctx p.inner_iters in
      (* Split the budget across iterations so nesting stays bounded. *)
      let body_budget = max 3 (budget / iters) in
      (* Fill the body with elements until its budget is spent (bounded
         element count) — several diamonds/switches per iteration is what
         gives trace trees a real path space to unroll. *)
      let body () =
        let total = ref 0 in
        let n = ref 0 in
        while !total < body_budget && !n < 12 do
          incr n;
          total := !total + element ctx ~d:(d + 1) ~budget:(body_budget - !total) ~callees
        done;
        !total
      in
      if d > 0 && Rng.chance ctx.rng p.p_var_trip then
        let lo, hi = p.inner_iters in
        let mask = if hi - lo >= 4 then 7 else 3 in
        variable_loop ctx ~base:lo ~mask body
      else counted_loop ctx ~iters body
  | `Loop | `Straight -> straight_capped ctx ~budget
  | `Diamond ->
      diamond ctx ~inner:(fun () ->
          if d < p.nest_depth && budget >= 16 && Rng.chance ctx.rng 0.3 then
            element ctx ~d:(d + 1) ~budget:(budget - 4) ~callees
          else straight_capped ctx ~budget)
  | `Switch when budget >= 8 ->
      switch ctx ~inner:(fun () -> straight_capped ctx ~budget:(budget - 6))
  | `Switch -> straight_capped ctx ~budget
  | `Call -> (
      (* Callees are generated before callers, so their cost is known and
         counts against this budget — whole-program cost stays linear. *)
      match List.filter (fun (_, c) -> c <= budget) callees with
      | [] -> straight_capped ctx ~budget
      | affordable ->
          let lbl, callee_cost = Rng.choose ctx.rng affordable in
          Codegen.emit ctx.cg (I.Call (I.Lbl lbl));
          1 + callee_cost)
  | `List when budget >= 24 -> list_chase ctx
  | `List -> straight_capped ctx ~budget
  | `Rep -> rep_copy ctx

(* A hot function: elements until the dynamic budget is spent; returns the
   estimated per-call cost. *)
let hot_function ctx ~lbl ~callees =
  Codegen.place ctx.cg lbl;
  let budget = ctx.p.func_budget in
  let spent = ref 0 in
  while !spent < budget do
    spent := !spent + element ctx ~d:0 ~budget:(budget - !spent) ~callees
  done;
  Codegen.emit ctx.cg I.Ret;
  !spent + 2

let cold_function ctx ~lbl =
  Codegen.place ctx.cg lbl;
  let n = range ctx ctx.p.cold_elements in
  for _ = 1 to n do
    if Rng.chance ctx.rng 0.4 then
      ignore
        (counted_loop ctx ~iters:(range ctx ctx.p.cold_iters) (fun () ->
             straight_line ctx (range ctx ctx.p.body_len)))
    else ignore (straight_line ctx (range ctx ctx.p.body_len))
  done;
  Codegen.emit ctx.cg I.Ret

let generate p =
  let rng = Rng.create p.seed in
  let cg = Codegen.create () in
  (* Shared data: a 64-node ring list ([next; value] pairs) and copy
     buffers. *)
  let nodes = 64 in
  let list_head = Asm.default_data_base in
  let ring =
    List.concat
      (List.init nodes (fun i ->
           let next = if i + 1 < nodes then list_head + (8 * (i + 1)) else list_head in
           [ next; (i * 17) land 0xFF ]))
  in
  let list_head' = Codegen.alloc_words cg ring in
  assert (list_head' = list_head);
  let buf_words = 64 in
  let buf_src = Codegen.alloc_words cg (List.init buf_words (fun i -> i)) in
  let buf_dst = Codegen.alloc_space cg buf_words in
  let ctx = { p; rng; cg; list_head; buf_src; buf_dst; buf_words } in
  let hot_labels = List.init p.hot_funcs (fun i -> Printf.sprintf "hot_%d" i) in
  let cold_labels = List.init p.cold_funcs (fun i -> Printf.sprintf "cold_%d" i) in
  (* main first so entry sits at the text base. *)
  Codegen.place cg "main";
  Codegen.emit_all cg
    [
      I.Mov (reg Reg.EAX, imm 0);
      I.Mov (reg Reg.EBX, imm (p.seed lor 1));
      I.Cpuid;
    ];
  let cold_queue = ref cold_labels in
  let take_cold n =
    let rec go n acc =
      if n = 0 then List.rev acc
      else
        match !cold_queue with
        | [] -> List.rev acc
        | c :: rest ->
            cold_queue := rest;
            go (n - 1) (c :: acc)
    in
    go n []
  in
  let per_phase = max 1 ((p.cold_funcs + p.phases - 1) / max 1 p.phases) in
  for _phase = 1 to p.phases do
    (* Sprawl: once-called cold functions. *)
    List.iter
      (fun c -> Codegen.emit cg (I.Call (I.Lbl c)))
      (take_cold per_phase);
    (* The phase's hot loop. *)
    let targets =
      List.init p.calls_per_iter (fun _ -> Rng.choose rng hot_labels)
    in
    ignore
      (counted_loop ctx ~iters:p.phase_iters (fun () ->
           List.iter (fun t -> Codegen.emit cg (I.Call (I.Lbl t))) targets;
           p.calls_per_iter * (1 + p.func_budget)))
  done;
  (* Drain any cold functions left over by rounding. *)
  List.iter (fun c -> Codegen.emit cg (I.Call (I.Lbl c))) !cold_queue;
  Codegen.emit cg (I.Sys 1);
  Codegen.emit_all cg [ I.Mov (reg Reg.EAX, imm 0); I.Sys 0 ];
  (* Function bodies, highest index first so callee costs are known. *)
  let hot_arr = Array.of_list hot_labels in
  let costs = Hashtbl.create 16 in
  for index = Array.length hot_arr - 1 downto 0 do
    let callees =
      List.init
        (min 2 (Array.length hot_arr - 1 - index))
        (fun k ->
          let l = hot_arr.(index + 1 + k) in
          (l, Hashtbl.find costs l))
    in
    Hashtbl.replace costs hot_arr.(index)
      (hot_function ctx ~lbl:hot_arr.(index) ~callees)
  done;
  List.iter (fun lbl -> cold_function ctx ~lbl) cold_labels;
  Codegen.assemble cg

let estimated_dynamic_insns p =
  let hot = p.phases * p.phase_iters * p.calls_per_iter * p.func_budget in
  let cold =
    p.cold_funcs * avg p.cold_elements
    * ((avg p.cold_iters * avg p.body_len / 2) + avg p.body_len)
  in
  hot + cold
