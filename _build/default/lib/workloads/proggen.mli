(** Parameterized synthetic-program generator.

    Generates deterministic, terminating programs whose dynamic control-flow
    character is dialed by a {!profile}: hot functions full of loops,
    diamonds, switches, list chases and REP copies, called from per-phase
    main loops; plus once-called "sprawl" functions that execute real work
    but never cross the hotness threshold (they set a benchmark's trace
    coverage ceiling). Branch outcomes come from an in-program LCG, so runs
    are bit-for-bit reproducible.

    The knobs map to the paper's benchmark behaviours (see {!Spec2000}):
    deep counted loop nests → high coverage and small trace sets (SPEC FP);
    even-odds diamonds and small inner loops inside hot loops → trace-tree
    path explosion (gzip, bzip2); many functions and phases → large trace
    sets and heavy JIT footprint (gcc, perlbmk). *)

type profile = {
  name : string;
  seed : int;
  hot_funcs : int;
  cold_funcs : int;        (** once-called sprawl functions *)
  func_budget : int;       (** target dynamic instructions per hot call *)
  body_len : int * int;    (** straight-line element length range *)
  nest_depth : int;        (** max loop nesting inside a function *)
  outer_iters : int * int; (** iterations of depth-0 loops *)
  inner_iters : int * int; (** iterations of nested loops *)
  cold_elements : int * int;
  cold_iters : int * int;  (** sprawl loops; keep below the hot threshold *)
  p_loop : float;
  p_diamond : float;
  p_switch : float;
  p_call : float;
  p_list : float;
  p_rep : float;
  mask_bits : int * int;   (** diamond bias: taken with prob 2^-bits *)
  switch_ways : int;       (** must be a power of two *)
  phases : int;
  phase_iters : int;
  calls_per_iter : int;
  p_var_trip : float;
      (** probability a nested loop's trip count is data-dependent — the
          trace-tree unrolling trigger (gzip/bzip2 in Table 1) *)
}

val default : profile
(** A mid-sized template to derive profiles from. *)

val generate : profile -> Tea_isa.Image.t
(** Deterministic in [profile] (including [seed]). *)

val estimated_dynamic_insns : profile -> int
(** Coarse a-priori estimate used to sanity-check profile scaling. *)
