(** The 26 synthetic SPEC CPU2000 stand-ins.

    We cannot run the real SPEC suite (no x86 frontend, no SPEC sources),
    so each benchmark is a {!Proggen.profile} whose control-flow character
    is chosen to reproduce the *relative* behaviour the paper's tables show
    for that program:

    - CFP2000 (wupwise..apsi): loop-nest dominated, high trace coverage,
      small trace sets;
    - gzip/bzip2: even-odds diamonds inside hot loops — the trace-tree
      path-explosion cases of Table 1;
    - gcc: many functions, many phases — the largest MRET/CTT sets and the
      heaviest JIT footprint (Table 4's 3.9× "Without Pintool");
    - mcf: pointer chasing, small code;
    - crafty/perlbmk/eon/gap: large once-executed code sprawl — the
      sub-95% coverage rows of Tables 2/3;
    - vortex: call-heavy with big code but high coverage.

    All profiles are deterministic; [image] memoizes generated programs. *)

val all : Proggen.profile list
(** In the paper's Table 1 row order (14 CFP2000, then 12 CINT2000). *)

val names : string list

val by_name : string -> Proggen.profile option

val image : Proggen.profile -> Tea_isa.Image.t
(** Generate (memoized by profile name). *)

val is_fp : string -> bool
(** Whether the benchmark belongs to the CFP2000 half of the table. *)
