test/test_bpred.ml: Alcotest List Option QCheck QCheck_alcotest String Tea_bpred Tea_dbt Tea_traces Tea_workloads
