test/test_bpred.mli:
