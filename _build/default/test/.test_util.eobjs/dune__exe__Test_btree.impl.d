test/test_btree.ml: Alcotest Int List Map QCheck QCheck_alcotest Tea_btree
