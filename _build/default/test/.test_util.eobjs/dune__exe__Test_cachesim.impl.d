test/test_cachesim.ml: Alcotest Array Hashtbl List Option QCheck QCheck_alcotest String Tea_cachesim Tea_dbt Tea_machine Tea_traces Tea_workloads
