test/test_cfg.ml: Alcotest Array Asm Cond Image Insn List Operand Reg String Tea_cfg Tea_isa Tea_machine Tea_workloads
