test/test_core.ml: Alcotest Array Filename Insn List Option QCheck QCheck_alcotest String Sys Tea_cfg Tea_core Tea_dbt Tea_isa Tea_pinsim Tea_traces Tea_workloads Unix
