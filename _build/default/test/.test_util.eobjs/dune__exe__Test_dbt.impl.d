test/test_dbt.ml: Alcotest List Option Tea_cfg Tea_dbt Tea_isa Tea_machine Tea_traces Tea_workloads
