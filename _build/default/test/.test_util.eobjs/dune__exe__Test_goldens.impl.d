test/test_goldens.ml: Alcotest List Option Tea_core Tea_dbt Tea_machine Tea_pinsim Tea_traces Tea_workloads
