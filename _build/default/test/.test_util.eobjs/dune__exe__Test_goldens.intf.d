test/test_goldens.mli:
