test/test_integration.ml: Alcotest Filename List Option Sys Tea_cfg Tea_core Tea_dbt Tea_machine Tea_pinsim Tea_traces Tea_workloads
