test/test_isa.ml: Alcotest Array Asm Cond Encode Format Image Insn List Operand Option QCheck QCheck_alcotest Reg String Tea_isa
