test/test_machine.ml: Alcotest Asm Cond Image Insn List Operand QCheck QCheck_alcotest Reg Tea_isa Tea_machine Tea_util Tea_workloads
