test/test_opt.ml: Alcotest Cond Insn List Operand Reg String Tea_cfg Tea_core Tea_isa Tea_opt Tea_traces
