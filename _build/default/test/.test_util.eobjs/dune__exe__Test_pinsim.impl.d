test/test_pinsim.ml: Alcotest List Option Tea_cfg Tea_dbt Tea_isa Tea_machine Tea_pinsim Tea_traces Tea_workloads
