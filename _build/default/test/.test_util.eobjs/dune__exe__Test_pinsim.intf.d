test/test_pinsim.mli:
