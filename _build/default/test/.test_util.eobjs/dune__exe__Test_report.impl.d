test/test_report.ml: Alcotest Lazy List String Tea_pinsim Tea_report
