test/test_strategy_protocol.ml: Alcotest Cond Insn List Option Tea_cfg Tea_core Tea_isa Tea_traces
