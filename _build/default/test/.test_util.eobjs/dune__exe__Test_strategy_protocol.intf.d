test/test_strategy_protocol.mli:
