test/test_traces.ml: Alcotest Array Asm Cond Filename Image Insn List Operand Option QCheck QCheck_alcotest String Sys Tea_cfg Tea_dbt Tea_isa Tea_traces Tea_workloads
