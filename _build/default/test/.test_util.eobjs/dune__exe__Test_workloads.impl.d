test/test_workloads.ml: Alcotest Format List Option Printf Tea_dbt Tea_isa Tea_machine Tea_traces Tea_workloads
