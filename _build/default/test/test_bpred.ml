module Predictor = Tea_bpred.Predictor
module Collector = Tea_bpred.Collector

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------------- Predictors ---------------- *)

let test_always_taken () =
  let p = Predictor.create Predictor.Always_taken in
  check Alcotest.bool "predicts taken" true (Predictor.predict p ~pc:0x100 ~target:0x50);
  ignore (Predictor.record p ~pc:0x100 ~target:0x50 ~taken:false);
  ignore (Predictor.record p ~pc:0x100 ~target:0x50 ~taken:true);
  check Alcotest.int "one miss" 1 (Predictor.mispredictions p);
  check Alcotest.int "two predictions" 2 (Predictor.predictions p)

let test_btfn () =
  let p = Predictor.create Predictor.Btfn in
  check Alcotest.bool "backward taken" true (Predictor.predict p ~pc:0x100 ~target:0x50);
  check Alcotest.bool "forward not" false (Predictor.predict p ~pc:0x100 ~target:0x200)

let test_bimodal_learns () =
  let p = Predictor.create (Predictor.Bimodal 10) in
  (* initial state is weakly taken; train not-taken *)
  for _ = 1 to 4 do
    ignore (Predictor.record p ~pc:0x40 ~target:0x10 ~taken:false)
  done;
  check Alcotest.bool "learned not-taken" false (Predictor.predict p ~pc:0x40 ~target:0x10);
  (* hysteresis: one taken outcome does not flip a saturated counter *)
  ignore (Predictor.record p ~pc:0x40 ~target:0x10 ~taken:true);
  check Alcotest.bool "still not-taken" false (Predictor.predict p ~pc:0x40 ~target:0x10)

let test_bimodal_per_pc () =
  let p = Predictor.create (Predictor.Bimodal 10) in
  for _ = 1 to 4 do
    ignore (Predictor.record p ~pc:0x40 ~target:0x10 ~taken:false)
  done;
  (* a different branch keeps the default prediction *)
  check Alcotest.bool "independent entry" true (Predictor.predict p ~pc:0x48 ~target:0x10)

let test_gshare_learns_pattern () =
  (* an alternating branch is hopeless for bimodal but trivial for gshare *)
  let run kind =
    let p = Predictor.create kind in
    let taken = ref false in
    for _ = 1 to 2000 do
      taken := not !taken;
      ignore (Predictor.record p ~pc:0x80 ~target:0x10 ~taken:!taken)
    done;
    Predictor.miss_rate p
  in
  let bimodal = run (Predictor.Bimodal 12) in
  let gshare = run (Predictor.Gshare 12) in
  check Alcotest.bool "gshare learns alternation" true (gshare < 0.05);
  check Alcotest.bool "bimodal cannot" true (bimodal > 0.3)

let test_biased_branch_predictable () =
  (* a 100%-taken loop branch converges to ~0 misses for every dynamic
     predictor *)
  List.iter
    (fun kind ->
      let p = Predictor.create kind in
      for _ = 1 to 500 do
        ignore (Predictor.record p ~pc:0x90 ~target:0x10 ~taken:true)
      done;
      check Alcotest.bool (Predictor.kind_name kind) true (Predictor.miss_rate p < 0.02))
    [ Predictor.Always_taken; Predictor.Bimodal 10; Predictor.Gshare 10 ]

let test_bad_bits () =
  Alcotest.check_raises "bimodal" (Invalid_argument "Predictor.create: bimodal bits")
    (fun () -> ignore (Predictor.create (Predictor.Bimodal 0)));
  Alcotest.check_raises "gshare" (Invalid_argument "Predictor.create: gshare bits")
    (fun () -> ignore (Predictor.create (Predictor.Gshare 30)))

let test_reset_stats () =
  let p = Predictor.create (Predictor.Bimodal 8) in
  ignore (Predictor.record p ~pc:0 ~target:0 ~taken:false);
  Predictor.reset_stats p;
  check Alcotest.int "reset" 0 (Predictor.predictions p)

let prop_stats_bounds =
  QCheck.Test.make ~name:"prediction stats stay consistent" ~count:200
    QCheck.(list (pair (int_range 0 1024) bool))
    (fun branches ->
      let p = Predictor.create (Predictor.Gshare 8) in
      List.iter
        (fun (pc, taken) -> ignore (Predictor.record p ~pc ~target:0 ~taken))
        branches;
      Predictor.predictions p = List.length branches
      && Predictor.mispredictions p <= Predictor.predictions p
      && Predictor.miss_rate p >= 0.0
      && Predictor.miss_rate p <= 1.0)

(* record's return value agrees with predict-before-update *)
let prop_record_consistent =
  QCheck.Test.make ~name:"record = predict; update" ~count:100
    QCheck.(list (pair (int_range 0 255) bool))
    (fun branches ->
      let a = Predictor.create (Predictor.Bimodal 6) in
      let b = Predictor.create (Predictor.Bimodal 6) in
      List.for_all
        (fun (pc, taken) ->
          let predicted = Predictor.predict b ~pc ~target:0 in
          Predictor.update b ~pc ~target:0 ~taken;
          Predictor.record a ~pc ~target:0 ~taken = (predicted = taken))
        branches)

(* ---------------- Collector ---------------- *)

let mret = Option.get (Tea_traces.Registry.by_name "mret")

let collect ?kind image =
  let dbt = Tea_dbt.Stardbt.record ~strategy:mret image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  Collector.profile ?kind ~traces image

let test_collector_counts_branches () =
  (* branchy_loop: one conditional per iteration plus the loop branch *)
  let image = Tea_workloads.Micro.branchy_loop ~iters:2000 ~mask:7 () in
  let report = collect image in
  let total_branches =
    List.fold_left
      (fun acc r -> acc + r.Collector.branches)
      report.Collector.cold.Collector.branches report.Collector.rows
  in
  check Alcotest.int "all branches attributed"
    (Predictor.predictions report.Collector.total)
    total_branches;
  (* 2000 iterations, two conditional branches each (diamond + loop) *)
  check Alcotest.bool "plausible volume" true
    (total_branches >= 3800 && total_branches <= 4200)

let test_collector_hot_trace_owns_branches () =
  (* use the static predictor: the diamond's LCG bit alternates, so half
     its resolutions defeat always-taken — a dynamic predictor would learn
     the period-2 pattern *)
  let image = Tea_workloads.Micro.branchy_loop ~iters:3000 ~mask:1 () in
  let report = collect ~kind:Predictor.Always_taken image in
  match report.Collector.rows with
  | hot :: _ ->
      check Alcotest.bool "hot trace has most branches" true
        (hot.Collector.branches * 2 > Predictor.predictions report.Collector.total);
      check Alcotest.bool "mispredictions surface" true (hot.Collector.miss_rate > 0.05)
  | [] -> Alcotest.fail "no rows"

let test_collector_biased_loop_is_easy () =
  let image = Tea_workloads.Micro.nested_loop ~outer:50 ~inner:80 () in
  let report = collect image in
  check Alcotest.bool "loop branches predictable" true
    (Predictor.miss_rate report.Collector.total < 0.1)

let test_collector_predictor_choice_matters () =
  let image = Tea_workloads.Micro.branchy_loop ~iters:3000 ~mask:1 () in
  let gshare = collect ~kind:(Predictor.Gshare 12) image in
  let static = collect ~kind:Predictor.Always_taken image in
  check Alcotest.bool "gshare beats always-taken" true
    (Predictor.miss_rate gshare.Collector.total
    < Predictor.miss_rate static.Collector.total)

let test_collector_render () =
  let image = Tea_workloads.Micro.branchy_loop () in
  let report = collect image in
  let s = Collector.render report in
  check Alcotest.bool "has overall line" true
    (let rec go i =
       i + 7 <= String.length s && (String.sub s i 7 = "overall" || go (i + 1))
     in
     go 0)

let () =
  Alcotest.run "tea_bpred"
    [
      ( "predictors",
        [
          Alcotest.test_case "always taken" `Quick test_always_taken;
          Alcotest.test_case "btfn" `Quick test_btfn;
          Alcotest.test_case "bimodal learns" `Quick test_bimodal_learns;
          Alcotest.test_case "bimodal per pc" `Quick test_bimodal_per_pc;
          Alcotest.test_case "gshare pattern" `Quick test_gshare_learns_pattern;
          Alcotest.test_case "biased branch" `Quick test_biased_branch_predictable;
          Alcotest.test_case "bad bits" `Quick test_bad_bits;
          Alcotest.test_case "reset" `Quick test_reset_stats;
          qtest prop_stats_bounds;
          qtest prop_record_consistent;
        ] );
      ( "collector",
        [
          Alcotest.test_case "counts branches" `Quick test_collector_counts_branches;
          Alcotest.test_case "hot trace owns branches" `Quick
            test_collector_hot_trace_owns_branches;
          Alcotest.test_case "biased loop easy" `Quick test_collector_biased_loop_is_easy;
          Alcotest.test_case "predictor choice" `Quick test_collector_predictor_choice_matters;
          Alcotest.test_case "render" `Quick test_collector_render;
        ] );
    ]
