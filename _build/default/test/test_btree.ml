module Btree = Tea_btree.Btree

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let assert_ok t =
  match Btree.check_invariants t with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("invariants: " ^ m)

let test_empty () =
  let t : int Btree.t = Btree.create () in
  check Alcotest.int "length" 0 (Btree.length t);
  check Alcotest.bool "is_empty" true (Btree.is_empty t);
  check Alcotest.(option int) "find" None (Btree.find t 5);
  check Alcotest.int "height" 0 (Btree.height t);
  check Alcotest.(option (pair int int)) "min" None (Btree.min_binding t);
  assert_ok t

let test_insert_find () =
  let t = Btree.create () in
  Btree.insert t 5 "five";
  Btree.insert t 3 "three";
  Btree.insert t 9 "nine";
  check Alcotest.(option string) "find 3" (Some "three") (Btree.find t 3);
  check Alcotest.(option string) "find 9" (Some "nine") (Btree.find t 9);
  check Alcotest.(option string) "miss" None (Btree.find t 4);
  check Alcotest.int "length" 3 (Btree.length t);
  assert_ok t

let test_replace () =
  let t = Btree.create () in
  Btree.insert t 1 "a";
  Btree.insert t 1 "b";
  check Alcotest.int "length stays 1" 1 (Btree.length t);
  check Alcotest.(option string) "replaced" (Some "b") (Btree.find t 1);
  assert_ok t

let test_bad_order () =
  Alcotest.check_raises "order 1" (Invalid_argument "Btree.create: order must be >= 2")
    (fun () -> ignore (Btree.create ~order:1 ()))

let test_split_growth () =
  let t = Btree.create ~order:2 () in
  for i = 1 to 100 do
    Btree.insert t i i;
    assert_ok t
  done;
  check Alcotest.int "length" 100 (Btree.length t);
  check Alcotest.bool "height grew" true (Btree.height t >= 3);
  for i = 1 to 100 do
    check Alcotest.(option int) "find all" (Some i) (Btree.find t i)
  done

let test_reverse_insertion () =
  let t = Btree.create ~order:2 () in
  for i = 100 downto 1 do
    Btree.insert t i (i * 2)
  done;
  assert_ok t;
  check Alcotest.(option int) "find 37" (Some 74) (Btree.find t 37)

let test_sorted_iteration () =
  let t = Btree.create ~order:3 () in
  List.iter (fun k -> Btree.insert t k ()) [ 42; 7; 99; 1; 55; 23; 8 ];
  let keys = List.map fst (Btree.to_list t) in
  check Alcotest.(list int) "sorted" [ 1; 7; 8; 23; 42; 55; 99 ] keys

let test_min_max () =
  let t = Btree.of_list [ (5, "e"); (1, "a"); (9, "i") ] in
  check Alcotest.(option (pair int string)) "min" (Some (1, "a")) (Btree.min_binding t);
  check Alcotest.(option (pair int string)) "max" (Some (9, "i")) (Btree.max_binding t)

let test_negative_keys () =
  let t = Btree.of_list [ (-5, "a"); (0, "b"); (5, "c") ] in
  check Alcotest.(option string) "negative" (Some "a") (Btree.find t (-5));
  check Alcotest.(list int) "sorted with negatives" [ -5; 0; 5 ]
    (List.map fst (Btree.to_list t));
  assert_ok t

let test_find_count_cost () =
  let t = Btree.create ~order:4 () in
  for i = 1 to 1000 do
    Btree.insert t (i * 3) i
  done;
  let _, comparisons = Btree.find_count t 1500 in
  (* log2(1000) * a few comparisons per node: must be far below linear *)
  check Alcotest.bool "logarithmic probes" true (comparisons > 0 && comparisons < 60);
  let v, _ = Btree.find_count t 999 in
  check Alcotest.(option int) "found via find_count" (Some 333) v

let test_mem () =
  let t = Btree.of_list [ (1, ()); (2, ()) ] in
  check Alcotest.bool "mem" true (Btree.mem t 1);
  check Alcotest.bool "not mem" false (Btree.mem t 3)

(* Reference-model property test: a B+ tree behaves exactly like Map over
   any insertion sequence. *)
let prop_vs_map =
  let gen = QCheck.(list (pair (int_range (-200) 200) small_int)) in
  QCheck.Test.make ~name:"btree agrees with Map reference" ~count:300 gen
    (fun pairs ->
      let module IM = Map.Make (Int) in
      let t = Btree.create ~order:2 () in
      let reference =
        List.fold_left
          (fun m (k, v) ->
            Btree.insert t k v;
            IM.add k v m)
          IM.empty pairs
      in
      Btree.check_invariants t = Ok ()
      && Btree.length t = IM.cardinal reference
      && Btree.to_list t = IM.bindings reference
      && List.for_all
           (fun (k, _) -> Btree.find t k = IM.find_opt k reference)
           pairs
      && Btree.find t 999 = None)

let prop_invariants_random_order =
  QCheck.Test.make ~name:"invariants hold for random orders" ~count:100
    QCheck.(pair (int_range 2 6) (list (int_range 0 10000)))
    (fun (order, keys) ->
      let t = Btree.create ~order () in
      List.iter (fun k -> Btree.insert t k k) keys;
      Btree.check_invariants t = Ok ())

let prop_iter_matches_to_list =
  QCheck.Test.make ~name:"iter visits to_list order" ~count:100
    QCheck.(list (int_range 0 1000))
    (fun keys ->
      let t = Btree.create ~order:3 () in
      List.iter (fun k -> Btree.insert t k (k * 7)) keys;
      let via_iter = ref [] in
      Btree.iter (fun k v -> via_iter := (k, v) :: !via_iter) t;
      List.rev !via_iter = Btree.to_list t)

let () =
  Alcotest.run "tea_btree"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert/find" `Quick test_insert_find;
          Alcotest.test_case "replace" `Quick test_replace;
          Alcotest.test_case "bad order" `Quick test_bad_order;
          Alcotest.test_case "split growth" `Quick test_split_growth;
          Alcotest.test_case "reverse insertion" `Quick test_reverse_insertion;
          Alcotest.test_case "sorted iteration" `Quick test_sorted_iteration;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "negative keys" `Quick test_negative_keys;
          Alcotest.test_case "find_count cost" `Quick test_find_count_cost;
          Alcotest.test_case "mem" `Quick test_mem;
        ] );
      ( "property",
        [ qtest prop_vs_map; qtest prop_invariants_random_order; qtest prop_iter_matches_to_list ]
      );
    ]
