module Cache = Tea_cachesim.Cache
module Hierarchy = Tea_cachesim.Hierarchy
module Collector = Tea_cachesim.Collector

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* a tiny direct-mapped cache: 4 sets x 16B lines *)
let tiny_dm = Cache.config ~size_bytes:64 ~line_bytes:16 ~ways:1

(* 2-way with 2 sets *)
let tiny_2w = Cache.config ~size_bytes:64 ~line_bytes:16 ~ways:2

(* ---------------- Cache ---------------- *)

let test_config_validation () =
  Alcotest.check_raises "size" (Invalid_argument "Cache.config: size not a power of two")
    (fun () -> ignore (Cache.config ~size_bytes:100 ~line_bytes:16 ~ways:1));
  Alcotest.check_raises "line" (Invalid_argument "Cache.config: bad line size")
    (fun () -> ignore (Cache.config ~size_bytes:64 ~line_bytes:3 ~ways:1));
  Alcotest.check_raises "ways" (Invalid_argument "Cache.config: ways must be >= 1")
    (fun () -> ignore (Cache.config ~size_bytes:64 ~line_bytes:16 ~ways:0));
  check Alcotest.int "sets" 4 (Cache.n_sets tiny_dm);
  check Alcotest.int "2w sets" 2 (Cache.n_sets tiny_2w)

let test_cold_miss_then_hit () =
  let c = Cache.create tiny_dm in
  check Alcotest.bool "cold miss" true (Cache.access c 0x100 = Cache.Miss);
  check Alcotest.bool "then hit" true (Cache.access c 0x100 = Cache.Hit);
  (* same line, different word *)
  check Alcotest.bool "same line" true (Cache.access c 0x10C = Cache.Hit);
  (* next line *)
  check Alcotest.bool "next line misses" true (Cache.access c 0x110 = Cache.Miss);
  check Alcotest.int "accesses" 4 (Cache.accesses c);
  check Alcotest.int "misses" 2 (Cache.misses c)

let test_direct_mapped_conflict () =
  let c = Cache.create tiny_dm in
  (* 0x000 and 0x040 map to set 0 in a 4-set/16B cache *)
  ignore (Cache.access c 0x000);
  ignore (Cache.access c 0x040);  (* evicts 0x000 *)
  check Alcotest.bool "conflict evicted" true (Cache.access c 0x000 = Cache.Miss);
  (* ...and bringing 0x000 back evicted 0x040 in turn *)
  check Alcotest.int "evictions" 2 (Cache.evictions c)

let test_two_way_no_conflict () =
  let c = Cache.create tiny_2w in
  (* 2 sets x 16B: 0x000 and 0x040 share a set but fit in two ways *)
  ignore (Cache.access c 0x000);
  ignore (Cache.access c 0x040);
  check Alcotest.bool "both resident" true (Cache.access c 0x000 = Cache.Hit);
  check Alcotest.bool "both resident 2" true (Cache.access c 0x040 = Cache.Hit);
  check Alcotest.int "no evictions" 0 (Cache.evictions c)

let test_lru_replacement () =
  let c = Cache.create tiny_2w in
  (* set 0 lines: 0x000, 0x040, 0x080 -- third must evict the LRU (0x000) *)
  ignore (Cache.access c 0x000);
  ignore (Cache.access c 0x040);
  ignore (Cache.access c 0x000);  (* 0x040 becomes LRU *)
  ignore (Cache.access c 0x080);  (* evicts 0x040 *)
  check Alcotest.bool "mru survives" true (Cache.probe c 0x000);
  check Alcotest.bool "lru evicted" false (Cache.probe c 0x040);
  check Alcotest.bool "newcomer resident" true (Cache.probe c 0x080)

let test_probe_nondestructive () =
  let c = Cache.create tiny_dm in
  check Alcotest.bool "probe miss" false (Cache.probe c 0x123);
  check Alcotest.int "no access counted" 0 (Cache.accesses c);
  ignore (Cache.access c 0x123);
  check Alcotest.bool "probe hit" true (Cache.probe c 0x123)

let test_flush_and_reset () =
  let c = Cache.create tiny_dm in
  ignore (Cache.access c 0x0);
  Cache.flush c;
  check Alcotest.bool "flushed" false (Cache.probe c 0x0);
  check Alcotest.int "stats kept" 1 (Cache.misses c);
  Cache.reset_stats c;
  check Alcotest.int "stats reset" 0 (Cache.misses c)

let test_capacity_behaviour () =
  (* streaming a footprint 2x the cache size misses every line, every pass *)
  let c = Cache.create (Cache.config ~size_bytes:1024 ~line_bytes:64 ~ways:2) in
  for _pass = 1 to 3 do
    let a = ref 0 in
    while !a < 2048 do
      ignore (Cache.access c !a);
      a := !a + 64
    done
  done;
  check Alcotest.int "every access misses" (Cache.accesses c) (Cache.misses c)

let test_working_set_fits () =
  (* a footprint half the cache size misses once per line, then always hits *)
  let c = Cache.create (Cache.config ~size_bytes:1024 ~line_bytes:64 ~ways:2) in
  for _pass = 1 to 4 do
    let a = ref 0 in
    while !a < 512 do
      ignore (Cache.access c !a);
      a := !a + 64
    done
  done;
  check Alcotest.int "compulsory misses only" 8 (Cache.misses c);
  check Alcotest.int "accesses" 32 (Cache.accesses c)

let prop_fully_associative_lru =
  (* a fully-associative LRU cache of capacity k hits iff the address's line
     was touched within the last k distinct lines — checked against a naive
     reference implementation *)
  QCheck.Test.make ~name:"fully-assoc LRU matches reference" ~count:200
    QCheck.(list (int_range 0 15))
    (fun lines ->
      let k = 4 in
      let c =
        Cache.create (Cache.config ~size_bytes:(k * 16) ~line_bytes:16 ~ways:k)
      in
      let reference = ref [] in
      List.for_all
        (fun line ->
          let addr = line * 16 in
          let expect_hit = List.mem line !reference in
          (* update reference LRU list *)
          reference := line :: List.filter (fun l -> l <> line) !reference;
          if List.length !reference > k then
            reference := List.filteri (fun i _ -> i < k) !reference;
          Cache.access c addr = if expect_hit then Cache.Hit else Cache.Miss)
        lines)

let prop_stats_consistent =
  QCheck.Test.make ~name:"cache stats are consistent" ~count:200
    QCheck.(list (int_range 0 4096))
    (fun addrs ->
      let c = Cache.create tiny_2w in
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      Cache.accesses c = List.length addrs
      && Cache.misses c <= Cache.accesses c
      && Cache.evictions c <= Cache.misses c
      && Cache.miss_rate c >= 0.0
      && Cache.miss_rate c <= 1.0)

(* ---------------- Hierarchy ---------------- *)

let test_hierarchy_latencies () =
  let h = Hierarchy.create Hierarchy.default_config in
  let cfg = Hierarchy.default_config in
  let cold = Hierarchy.fetch h 0x1000 in
  check Alcotest.int "cold fetch misses both levels"
    (cfg.Hierarchy.l1_hit_cycles + cfg.Hierarchy.l2_hit_cycles + cfg.Hierarchy.memory_cycles)
    cold;
  let warm = Hierarchy.fetch h 0x1000 in
  check Alcotest.int "warm fetch hits L1" cfg.Hierarchy.l1_hit_cycles warm;
  check Alcotest.int "cycles accumulate" (cold + warm) (Hierarchy.total_cycles h)

let test_hierarchy_l2_catches_l1_evictions () =
  (* thrash L1I with a footprint that fits L2: L2 hit latency, not memory *)
  let cfg = Hierarchy.default_config in
  let h = Hierarchy.create cfg in
  let footprint = 64 * 1024 in
  (* two passes: second pass misses L1 (16K) but hits L2 (256K) *)
  let a = ref 0 in
  while !a < footprint do
    ignore (Hierarchy.fetch h !a);
    a := !a + 64
  done;
  let second_pass = Hierarchy.fetch h 0 in
  check Alcotest.int "L2 hit"
    (cfg.Hierarchy.l1_hit_cycles + cfg.Hierarchy.l2_hit_cycles)
    second_pass

let test_hierarchy_split_l1 () =
  let h = Hierarchy.create Hierarchy.default_config in
  ignore (Hierarchy.fetch h 0x4000);
  (* the same address through the D side still cold-misses: split caches *)
  let d = Hierarchy.data h Tea_machine.Memory.Load 0x4000 in
  check Alcotest.bool "split caches" true
    (d > Hierarchy.default_config.Hierarchy.l1_hit_cycles);
  check Alcotest.int "stats split" 1 (Hierarchy.l1i_stats h).Hierarchy.accesses

let test_hierarchy_no_l2 () =
  let cfg = { Hierarchy.default_config with Hierarchy.l2 = None } in
  let h = Hierarchy.create cfg in
  let cold = Hierarchy.data h Tea_machine.Memory.Store 0x0 in
  check Alcotest.int "straight to memory"
    (cfg.Hierarchy.l1_hit_cycles + cfg.Hierarchy.memory_cycles)
    cold;
  check Alcotest.bool "no l2 stats" true (Hierarchy.l2_stats h = None)

(* ---------------- Collector ---------------- *)

let mret = Option.get (Tea_traces.Registry.by_name "mret")

let collect image =
  let dbt = Tea_dbt.Stardbt.record ~strategy:mret image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  Collector.profile ~traces image

let test_collector_attribution_totals () =
  let image = Tea_workloads.Micro.stream ~words:8192 ~passes:2 () in
  let report = collect image in
  (* all fetches/data accesses land somewhere: rows + cold = hierarchy *)
  let all = report.Collector.cold :: report.Collector.rows in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 all in
  check Alcotest.int "ifetch attributed"
    (Hierarchy.l1i_stats report.Collector.hierarchy).Hierarchy.accesses
    (sum (fun r -> r.Collector.i_accesses));
  check Alcotest.int "data attributed"
    (Hierarchy.l1d_stats report.Collector.hierarchy).Hierarchy.accesses
    (sum (fun r -> r.Collector.d_accesses));
  check Alcotest.int "cycles attributed"
    (Hierarchy.total_cycles report.Collector.hierarchy)
    (sum (fun r -> r.Collector.access_cycles))

let test_collector_hot_trace_owns_misses () =
  let image = Tea_workloads.Micro.big_chase ~nodes:8192 ~steps:60000 () in
  let report = collect image in
  check Alcotest.bool "replay covered" true (report.Collector.replay_coverage > 0.9);
  match report.Collector.rows with
  | hot :: _ ->
      (* the chase trace owns nearly all D-misses *)
      let total_d =
        (Hierarchy.l1d_stats report.Collector.hierarchy).Hierarchy.misses
      in
      check Alcotest.bool "hot trace dominates misses" true
        (hot.Collector.d_misses * 10 >= total_d * 9);
      check Alcotest.bool "substantial miss rate" true
        (float_of_int hot.Collector.d_misses
         /. float_of_int (max 1 hot.Collector.d_accesses)
        > 0.1)
  | [] -> Alcotest.fail "no traces attributed"

let test_collector_stream_vs_resident () =
  (* a streaming footprint (beyond L1) has a much higher D-miss rate than a
     cache-resident one *)
  let rate image =
    let report = collect image in
    let s = Hierarchy.l1d_stats report.Collector.hierarchy in
    s.Hierarchy.miss_rate
  in
  let streaming = rate (Tea_workloads.Micro.stream ~words:32768 ~passes:2 ()) in
  let resident = rate (Tea_workloads.Micro.stream ~words:512 ~passes:64 ()) in
  check Alcotest.bool "locality visible" true (streaming > 4.0 *. resident)

let test_collector_render () =
  let image = Tea_workloads.Micro.stream ~words:2048 ~passes:2 () in
  let report = collect image in
  let s = Collector.render report in
  check Alcotest.bool "has header" true (String.length s > 50);
  check Alcotest.bool "mentions cold" true
    (let rec go i =
       i + 4 <= String.length s && (String.sub s i 4 = "cold" || go (i + 1))
     in
     go 0)

(* ---------------- Layout study ---------------- *)

module Layout = Tea_cachesim.Layout

let layout_of image =
  let dbt = Tea_dbt.Stardbt.record ~strategy:mret image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  Layout.study ~traces image

let test_layout_scattered_wins () =
  (* fragments aligned to the cache size thrash the original layout; the
     packed trace cache holds the whole loop *)
  let r = layout_of (Tea_workloads.Micro.scattered ()) in
  check Alcotest.bool "original thrashes" true (r.Layout.original_rate > 0.5);
  check Alcotest.bool "packed fits" true (r.Layout.packed_rate < 0.01);
  check Alcotest.bool "big improvement" true (r.Layout.improvement > 0.9)

let test_layout_compact_code_no_benefit () =
  (* when the hot code already fits the cache, packing cannot help (and the
     duplication can hurt slightly) — the crossover the study exposes *)
  let r = layout_of (Tea_workloads.Micro.nested_loop ~outer:100 ~inner:100 ()) in
  check Alcotest.bool "already cached" true (r.Layout.original_rate < 0.01);
  check Alcotest.bool "no big win available" true (r.Layout.improvement < 0.5)

let test_layout_accounting () =
  let r = layout_of (Tea_workloads.Micro.branchy_loop ()) in
  check Alcotest.bool "accesses counted" true (r.Layout.accesses > 0);
  check Alcotest.bool "misses bounded" true
    (r.Layout.original_misses <= r.Layout.accesses
    && r.Layout.packed_misses <= r.Layout.accesses);
  check Alcotest.bool "trace cache sized" true (r.Layout.trace_cache_bytes > 0)

let test_layout_render () =
  let r = layout_of (Tea_workloads.Micro.branchy_loop ()) in
  let s = Layout.render r in
  check Alcotest.bool "mentions reduction" true
    (let needle = "reduction" in
     let nh = String.length s and nn = String.length needle in
     let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
     go 0)

(* ---------------- Reuse distance ---------------- *)

module Reuse = Tea_cachesim.Reuse

let test_reuse_simple_pattern () =
  let r = Reuse.create ~line_bytes:64 () in
  (* A B A: A's second access has distance 1 (only B in between) *)
  Reuse.touch r 0x000;
  Reuse.touch r 0x040;
  Reuse.touch r 0x000;
  let h = Reuse.histogram r in
  check Alcotest.int "two cold" 2 h.Reuse.cold;
  check Alcotest.int "total" 3 h.Reuse.total;
  check Alcotest.int "distinct" 2 h.Reuse.distinct_lines;
  (* distance 1 lands in the "< 2" bucket *)
  let count_lt2 =
    Array.fold_left (fun acc (ub, n) -> if ub = 2 then acc + n else acc) 0 h.Reuse.buckets
  in
  check Alcotest.int "distance 1" 1 count_lt2

let test_reuse_zero_distance () =
  let r = Reuse.create () in
  Reuse.touch r 0x100;
  Reuse.touch r 0x104;  (* same line: distance 0 *)
  let h = Reuse.histogram r in
  let count_lt1 =
    Array.fold_left (fun acc (ub, n) -> if ub = 1 then acc + n else acc) 0 h.Reuse.buckets
  in
  check Alcotest.int "distance 0" 1 count_lt1

(* brute-force LRU-stack reference on random small streams *)
let prop_reuse_matches_reference =
  QCheck.Test.make ~name:"reuse distance matches stack reference" ~count:200
    QCheck.(list (int_range 0 20))
    (fun lines ->
      (* bucket index of a distance: 0 for d=0, else 1 + floor(log2 d) *)
      let bucket_of d =
        let rec go b x = if x = 0 then b else go (b + 1) (x lsr 1) in
        go 0 d
      in
      let expected = Hashtbl.create 8 in
      let expected_cold = ref 0 in
      let stack = ref [] in
      List.iter
        (fun line ->
          (match
             let rec find i = function
               | [] -> None
               | l :: _ when l = line -> Some i
               | _ :: rest -> find (i + 1) rest
             in
             find 0 !stack
           with
          | Some d ->
              let b = bucket_of d in
              Hashtbl.replace expected b
                (1 + Option.value (Hashtbl.find_opt expected b) ~default:0)
          | None -> incr expected_cold);
          stack := line :: List.filter (fun l -> l <> line) !stack)
        lines;
      let r = Reuse.create ~line_bytes:64 () in
      List.iter (fun line -> Reuse.touch r (line * 64)) lines;
      let h = Reuse.histogram r in
      let measured = Hashtbl.create 8 in
      Array.iteri
        (fun b (_ub, n) -> if n > 0 then Hashtbl.replace measured b n)
        h.Reuse.buckets;
      h.Reuse.cold = !expected_cold
      && Hashtbl.length measured = Hashtbl.length expected
      && Hashtbl.fold
           (fun b n ok -> ok && Hashtbl.find_opt measured b = Some n)
           expected true)

let test_reuse_streaming_vs_resident () =
  let streaming =
    Reuse.profile_data_stream (Tea_workloads.Micro.stream ~words:16384 ~passes:2 ())
  in
  let resident =
    Reuse.profile_data_stream (Tea_workloads.Micro.stream ~words:64 ~passes:64 ())
  in
  (* word-granularity accesses enjoy intra-line locality everywhere; the
     *cross-pass* reuse of the big stream only becomes hits once the cache
     holds its whole footprint *)
  check Alcotest.bool "resident loop fits a tiny cache" true
    (Reuse.hit_rate_for resident 64 > 0.95);
  let small = Reuse.hit_rate_for streaming 64 in
  let big = Reuse.hit_rate_for streaming 2048 in
  check Alcotest.bool "capacity knee visible" true (big > small +. 0.02);
  check Alcotest.bool "small-cache rate is intra-line only" true (small < 0.96)

let test_reuse_render () =
  let h = Reuse.profile_data_stream (Tea_workloads.Micro.branchy_loop ()) in
  let s = Reuse.render h in
  check Alcotest.bool "has cold line" true
    (let needle = "cold" in
     let nh = String.length s and nn = String.length needle in
     let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
     go 0)

let () =
  Alcotest.run "tea_cachesim"
    [
      ( "cache",
        [
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
          Alcotest.test_case "direct-mapped conflict" `Quick test_direct_mapped_conflict;
          Alcotest.test_case "two-way no conflict" `Quick test_two_way_no_conflict;
          Alcotest.test_case "LRU replacement" `Quick test_lru_replacement;
          Alcotest.test_case "probe" `Quick test_probe_nondestructive;
          Alcotest.test_case "flush/reset" `Quick test_flush_and_reset;
          Alcotest.test_case "capacity behaviour" `Quick test_capacity_behaviour;
          Alcotest.test_case "working set fits" `Quick test_working_set_fits;
          qtest prop_fully_associative_lru;
          qtest prop_stats_consistent;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "latencies" `Quick test_hierarchy_latencies;
          Alcotest.test_case "L2 catches evictions" `Quick test_hierarchy_l2_catches_l1_evictions;
          Alcotest.test_case "split L1" `Quick test_hierarchy_split_l1;
          Alcotest.test_case "no L2" `Quick test_hierarchy_no_l2;
        ] );
      ( "collector",
        [
          Alcotest.test_case "attribution totals" `Quick test_collector_attribution_totals;
          Alcotest.test_case "hot trace owns misses" `Quick test_collector_hot_trace_owns_misses;
          Alcotest.test_case "stream vs resident" `Quick test_collector_stream_vs_resident;
          Alcotest.test_case "render" `Quick test_collector_render;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "simple pattern" `Quick test_reuse_simple_pattern;
          Alcotest.test_case "zero distance" `Quick test_reuse_zero_distance;
          QCheck_alcotest.to_alcotest prop_reuse_matches_reference;
          Alcotest.test_case "streaming vs resident" `Quick test_reuse_streaming_vs_resident;
          Alcotest.test_case "render" `Quick test_reuse_render;
        ] );
      ( "layout",
        [
          Alcotest.test_case "scattered wins" `Quick test_layout_scattered_wins;
          Alcotest.test_case "compact code crossover" `Quick test_layout_compact_code_no_benefit;
          Alcotest.test_case "accounting" `Quick test_layout_accounting;
          Alcotest.test_case "render" `Quick test_layout_render;
        ] );
    ]
