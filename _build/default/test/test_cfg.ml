open Tea_isa
module I = Insn
module O = Operand
module Block = Tea_cfg.Block
module Discovery = Tea_cfg.Discovery
module Dcfg = Tea_cfg.Dcfg
module Interp = Tea_machine.Interp

let check = Alcotest.check

let reg r = O.Reg r
let imm n = O.Imm n

(* ---------------- Block ---------------- *)

let block_of insns = Block.make Block.Branch (List.mapi (fun i x -> (0x100 + i, x)) insns)

let test_block_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Block.make: empty instruction list")
    (fun () -> ignore (Block.make Block.Branch []))

let test_block_basics () =
  let b =
    Block.make Block.Branch
      [ (0x100, I.Mov (reg Reg.EAX, imm 1)); (0x106, I.Jmp (I.Abs 0x200)) ]
  in
  check Alcotest.int "start" 0x100 b.Block.start;
  check Alcotest.int "n_insns" 2 (Block.n_insns b);
  check Alcotest.int "byte_len" 11 b.Block.byte_len;
  check Alcotest.int "end_addr" 0x10B (Block.end_addr b);
  check Alcotest.bool "terminator" true (I.is_branch (Block.terminator b))

let dummy_image = Image.assemble (Asm.program [ Asm.Label "main"; Asm.Ins (I.Sys 0) ])

let test_block_successors () =
  let jcc = block_of [ I.Cmp (reg Reg.EAX, imm 0); I.Jcc (Cond.E, I.Abs 0x500) ] in
  let succs = Block.static_successors jcc dummy_image in
  check Alcotest.bool "taken" true (List.mem 0x500 succs);
  check Alcotest.int "two successors" 2 (List.length succs);
  let jmp = block_of [ I.Jmp (I.Abs 0x500) ] in
  check Alcotest.(list int) "jmp one" [ 0x500 ] (Block.static_successors jmp dummy_image);
  let ret = block_of [ I.Ret ] in
  check Alcotest.(list int) "ret none" [] (Block.static_successors ret dummy_image);
  check Alcotest.bool "ret indirect" true (Block.has_indirect_exit ret);
  check Alcotest.int "ret exit count" 1 (Block.exit_count ret dummy_image);
  check Alcotest.int "jcc exit count" 2 (Block.exit_count jcc dummy_image)

(* ---------------- Discovery ---------------- *)

type recorded = { blocks : Block.t list; edges : (int * int) list }

let discover ?policy image =
  let blocks = ref [] and edges = ref [] in
  let cb =
    {
      Discovery.on_block = (fun b -> blocks := b :: !blocks);
      Discovery.on_edge = (fun src dst -> edges := (src.Block.start, dst) :: !edges);
    }
  in
  let _m, stop, disc = Discovery.run ?policy image cb in
  (match stop.Interp.outcome with
  | Interp.Exited _ | Interp.Halted -> ()
  | _ -> Alcotest.fail "workload did not finish");
  ({ blocks = List.rev !blocks; edges = List.rev !edges }, disc)

let loop_image =
  (* main: eax=3; loop: dec eax; jnz loop; sys1; eax=0; sys0 *)
  Image.assemble
    (Asm.program
       [
         Asm.Label "main";
         Asm.Ins (I.Mov (reg Reg.EAX, imm 3));
         Asm.Label "loop";
         Asm.Ins (I.Dec (reg Reg.EAX));
         Asm.Ins (I.Jcc (Cond.NE, I.Lbl "loop"));
         Asm.Ins (I.Sys 1);
         Asm.Ins (I.Mov (reg Reg.EAX, imm 0));
         Asm.Ins (I.Sys 0);
       ])

let test_discovery_blocks_end_at_branches () =
  let r, _ = discover loop_image in
  List.iter
    (fun b ->
      match b.Block.end_kind with
      | Block.Branch -> check Alcotest.bool "ends in branch" true (I.is_branch (Block.terminator b))
      | Block.Policy_split -> ())
    r.blocks

let test_discovery_loop_structure () =
  let r, disc = discover loop_image in
  (* first block: [mov; dec; jne], then loop iterations [dec; jne] x2, then tail *)
  let main = Image.entry loop_image in
  let loop_addr = Image.symbol loop_image "loop" in
  (match r.blocks with
  | b0 :: b1 :: b2 :: _ ->
      check Alcotest.int "first at main" main b0.Block.start;
      check Alcotest.int "first spans into loop" 3 (Block.n_insns b0);
      check Alcotest.int "second at loop" loop_addr b1.Block.start;
      check Alcotest.int "loop body size" 2 (Block.n_insns b1);
      check Alcotest.bool "same cached block" true (b1 == b2)
  | _ -> Alcotest.fail "expected at least 3 blocks");
  check Alcotest.bool "block_at" true (Discovery.block_at disc loop_addr <> None)

let test_discovery_edges_chain () =
  let r, _ = discover loop_image in
  (* every edge's destination is the start of the following block *)
  let starts = List.map (fun b -> b.Block.start) r.blocks in
  let rec verify edges starts =
    match (edges, starts) with
    | (_, dst) :: es, _ :: (next :: _ as rest) ->
        check Alcotest.int "edge matches next block" next dst;
        verify es rest
    | _ -> ()
  in
  verify r.edges starts

let test_discovery_insn_totals () =
  let img = Tea_workloads.Micro.nested_loop ~outer:4 ~inner:6 () in
  let total = ref 0 in
  let cb =
    {
      Discovery.on_block = (fun b -> total := !total + Block.n_insns b);
      Discovery.on_edge = (fun _ _ -> ());
    }
  in
  let m, _, _ = Discovery.run ~policy:Discovery.Stardbt img cb in
  (* The exiting instruction stops the machine before its event is emitted,
     so blocks account for every dynamic instruction except that one. *)
  check Alcotest.int "sum of blocks = dynamic instructions - exit"
    (Interp.dyn_instrs m - 1) !total

let rep_image = Tea_workloads.Micro.rep_copy ~words:8 ~passes:3 ()

let test_policy_rep_handling () =
  let stardbt, _ = discover ~policy:Discovery.Stardbt rep_image in
  let pin, _ = discover ~policy:Discovery.Pin rep_image in
  (* Pin splits REP into its own block executed once per iteration, so it
     must see strictly more block executions. *)
  check Alcotest.bool "pin sees more blocks" true
    (List.length pin.blocks > List.length stardbt.blocks);
  (* the rep block exists under Pin and is a policy split *)
  let has_rep_split =
    List.exists
      (fun b ->
        b.Block.end_kind = Block.Policy_split
        && Block.n_insns b = 1
        && match Block.terminator b with I.Rep_movs -> true | _ -> false)
      pin.blocks
  in
  check Alcotest.bool "rep split block" true has_rep_split;
  (* under StarDBT the rep stays inside a larger block *)
  let rep_inside =
    List.exists
      (fun b ->
        Block.n_insns b > 1
        && Array.exists (fun (_, i) -> i = I.Rep_movs) b.Block.insns)
      stardbt.blocks
  in
  check Alcotest.bool "rep inside stardbt block" true rep_inside

let test_policy_rep_self_edges () =
  let pin, _ = discover ~policy:Discovery.Pin rep_image in
  let self_edges = List.filter (fun (s, d) -> s = d) pin.edges in
  (* 8-word copy: 7 self edges per pass, 3 passes *)
  check Alcotest.int "self edges" 21 (List.length self_edges)

let cpuid_image =
  Image.assemble
    (Asm.program
       [
         Asm.Label "main";
         Asm.Ins (I.Mov (reg Reg.EAX, imm 1));
         Asm.Ins I.Cpuid;
         Asm.Ins (I.Alu (I.Add, reg Reg.EAX, imm 2));
         Asm.Ins (I.Sys 1);
         Asm.Ins (I.Mov (reg Reg.EAX, imm 0));
         Asm.Ins (I.Sys 0);
       ])

let test_policy_cpuid_split () =
  let stardbt, _ = discover ~policy:Discovery.Stardbt cpuid_image in
  let pin, _ = discover ~policy:Discovery.Pin cpuid_image in
  check Alcotest.int "stardbt: one block to sys1" 1
    (List.length (List.filter (fun b -> Block.n_insns b >= 4) stardbt.blocks));
  (* pin ends the block right after cpuid *)
  let split =
    List.exists
      (fun b ->
        b.Block.end_kind = Block.Policy_split
        && match Block.terminator b with I.Cpuid -> true | _ -> false)
      pin.blocks
  in
  check Alcotest.bool "cpuid split under pin" true split

let test_flush_partial_block () =
  (* a program ending via fuel leaves a partial block that flush emits *)
  let img =
    Image.assemble
      (Asm.program
         [ Asm.Label "main"; Asm.Ins (I.Mov (reg Reg.EAX, imm 1)); Asm.Ins I.Halt ])
  in
  let got = ref [] in
  let cb =
    {
      Discovery.on_block = (fun b -> got := b :: !got);
      Discovery.on_edge = (fun _ _ -> ());
    }
  in
  let disc = Discovery.create img cb in
  let m = Interp.create img in
  (match Interp.step m with Ok ev -> Discovery.feed disc ev | Error _ -> ());
  check Alcotest.int "nothing before flush" 0 (List.length !got);
  Discovery.flush disc;
  check Alcotest.int "flushed partial" 1 (List.length !got)

(* ---------------- Dcfg ---------------- *)

let test_dcfg_counts () =
  let d = Dcfg.create () in
  let _, _, _ = Discovery.run loop_image (Dcfg.callbacks d) in
  let loop_addr = Image.symbol loop_image "loop" in
  check Alcotest.int "loop body x2" 2 (Dcfg.block_count d loop_addr);
  check Alcotest.int "self edge x1" 1 (Dcfg.edge_count d ~src:loop_addr ~dst:loop_addr);
  check Alcotest.bool "totals" true (Dcfg.total_insns d >= 7);
  check Alcotest.bool "execs" true (Dcfg.total_block_execs d >= 3)

let test_dcfg_tee () =
  let d1 = Dcfg.create () and d2 = Dcfg.create () in
  let _ = Discovery.run loop_image (Dcfg.tee (Dcfg.callbacks d1) (Dcfg.callbacks d2)) in
  check Alcotest.int "both sides saw everything" (Dcfg.total_block_execs d1)
    (Dcfg.total_block_execs d2)

let test_dcfg_dot () =
  let d = Dcfg.create () in
  let _ = Discovery.run loop_image (Dcfg.callbacks d) in
  let dot = Dcfg.to_dot d in
  check Alcotest.bool "digraph" true (String.length dot > 20 && String.sub dot 0 7 = "digraph")

let () =
  Alcotest.run "tea_cfg"
    [
      ( "block",
        [
          Alcotest.test_case "empty" `Quick test_block_empty;
          Alcotest.test_case "basics" `Quick test_block_basics;
          Alcotest.test_case "successors" `Quick test_block_successors;
        ] );
      ( "discovery",
        [
          Alcotest.test_case "branch-terminated" `Quick test_discovery_blocks_end_at_branches;
          Alcotest.test_case "loop structure" `Quick test_discovery_loop_structure;
          Alcotest.test_case "edge chain" `Quick test_discovery_edges_chain;
          Alcotest.test_case "insn totals" `Quick test_discovery_insn_totals;
          Alcotest.test_case "rep policies" `Quick test_policy_rep_handling;
          Alcotest.test_case "rep self edges" `Quick test_policy_rep_self_edges;
          Alcotest.test_case "cpuid split" `Quick test_policy_cpuid_split;
          Alcotest.test_case "flush partial" `Quick test_flush_partial_block;
        ] );
      ( "dcfg",
        [
          Alcotest.test_case "counts" `Quick test_dcfg_counts;
          Alcotest.test_case "tee" `Quick test_dcfg_tee;
          Alcotest.test_case "dot" `Quick test_dcfg_dot;
        ] );
    ]
