module Stardbt = Tea_dbt.Stardbt
module Code_cache = Tea_dbt.Code_cache
module Trace_set = Tea_traces.Trace_set
module Trace = Tea_traces.Trace
module Interp = Tea_machine.Interp

let check = Alcotest.check

let mret = Option.get (Tea_traces.Registry.by_name "mret")

let record ?config image = Stardbt.record ?config ~strategy:mret image

(* ---------------- Code cache ---------------- *)

let block_at addr =
  Tea_cfg.Block.make Tea_cfg.Block.Branch [ (addr, Tea_isa.Insn.Jmp (Tea_isa.Insn.Abs 0)) ]

let dummy_image =
  Tea_isa.Image.assemble
    (Tea_isa.Asm.program [ Tea_isa.Asm.Label "main"; Tea_isa.Asm.Ins (Tea_isa.Insn.Sys 0) ])

let test_cache_install () =
  let cache = Code_cache.create dummy_image in
  let t = Trace.linear ~id:0 ~kind:"t" [ block_at 0x100; block_at 0x200 ] in
  let layout = Code_cache.install cache t in
  check Alcotest.int "trace id" 0 layout.Code_cache.trace_id;
  check Alcotest.int "code bytes" (Trace.code_bytes t) layout.Code_cache.code_bytes;
  check Alcotest.int "installed" 1 (Code_cache.n_installed cache);
  check Alcotest.bool "layout_of" true (Code_cache.layout_of cache 0 <> None)

let test_cache_total_matches_model () =
  let cache = Code_cache.create dummy_image in
  let set = Trace_set.create () in
  List.iter
    (fun t ->
      Trace_set.add set t;
      ignore (Code_cache.install cache t))
    [
      Trace.linear ~id:0 ~kind:"t" [ block_at 0x100 ];
      Trace.linear ~id:1 ~kind:"t" ~cycle:true [ block_at 0x200; block_at 0x300 ];
    ];
  check Alcotest.int "cache = accounting model"
    (Trace_set.dbt_bytes set dummy_image)
    (Code_cache.total_bytes cache)

let test_cache_reinstall_replaces () =
  let cache = Code_cache.create dummy_image in
  let t = Trace.linear ~id:0 ~kind:"t" [ block_at 0x100 ] in
  let t' = Trace.linear ~id:0 ~kind:"t" [ block_at 0x100; block_at 0x200 ] in
  ignore (Code_cache.install cache t);
  let before = Code_cache.total_bytes cache in
  ignore (Code_cache.install cache t');
  check Alcotest.int "still one" 1 (Code_cache.n_installed cache);
  check Alcotest.bool "live bytes grew" true (Code_cache.total_bytes cache > before)

let test_cache_layouts_disjoint () =
  let cache = Code_cache.create dummy_image in
  ignore (Code_cache.install cache (Trace.linear ~id:0 ~kind:"t" [ block_at 0x1 ]));
  ignore (Code_cache.install cache (Trace.linear ~id:1 ~kind:"t" [ block_at 0x2 ]));
  match Code_cache.layouts cache with
  | [ a; b ] ->
      check Alcotest.bool "non-overlapping regions" true
        (a.Code_cache.stub_offset + a.Code_cache.stub_bytes <= b.Code_cache.code_offset)
  | _ -> Alcotest.fail "expected two layouts"

(* ---------------- StarDBT runtime ---------------- *)

let test_record_produces_traces () =
  let img = Tea_workloads.Micro.nested_loop ~outer:40 ~inner:50 () in
  let r = record img in
  check Alcotest.bool "traces" true (Trace_set.n_traces r.Stardbt.set > 0);
  check Alcotest.bool "coverage sane" true
    (r.Stardbt.coverage > 0.0 && r.Stardbt.coverage <= 1.0);
  check Alcotest.bool "translated" true (r.Stardbt.blocks_translated > 0)

let test_record_preserves_program_behaviour () =
  (* Running under the DBT must not change the program's output. *)
  let img = Tea_workloads.Micro.branchy_loop () in
  let native, _ = Interp.run img in
  let r = record img in
  check Alcotest.(list int) "same output" (Interp.output native) r.Stardbt.output

let test_record_cycles_ordering () =
  let img = Tea_workloads.Micro.branchy_loop () in
  let r = record img in
  check Alcotest.bool "dbt >= native" true (r.Stardbt.dbt_cycles >= r.Stardbt.native_cycles);
  check Alcotest.bool "native positive" true (r.Stardbt.native_cycles > 0)

let test_record_cache_consistency () =
  let img = Tea_workloads.Micro.list_scan () in
  let r = record img in
  check Alcotest.int "cache bytes = model bytes"
    (Trace_set.dbt_bytes r.Stardbt.set
       ~model:Trace_set.default_dbt_cost img)
    (Code_cache.total_bytes r.Stardbt.cache)

let test_no_hot_code_no_traces () =
  let img = Tea_workloads.Micro.nested_loop ~outer:2 ~inner:2 () in
  let r = record img in
  check Alcotest.int "no traces" 0 (Trace_set.n_traces r.Stardbt.set);
  check Alcotest.int "no coverage" 0 r.Stardbt.covered_insns

let test_coverage_counts_only_after_creation () =
  (* one long loop: the first ~threshold iterations are cold, so coverage
     is strictly below 100% but above, say, 80% for 1000 iterations *)
  let img = Tea_workloads.Micro.nested_loop ~outer:1 ~inner:1000 () in
  let r = record img in
  check Alcotest.bool "partial coverage" true
    (r.Stardbt.coverage > 0.5 && r.Stardbt.coverage < 1.0)

let test_higher_threshold_lowers_coverage () =
  let img = Tea_workloads.Micro.nested_loop ~outer:1 ~inner:1000 () in
  let low = record ~config:{ Tea_traces.Recorder.default_config with hot_threshold = 20 } img in
  let high =
    record ~config:{ Tea_traces.Recorder.default_config with hot_threshold = 500 } img
  in
  check Alcotest.bool "later traces, less coverage" true
    (high.Stardbt.coverage < low.Stardbt.coverage)

let test_all_strategies_run () =
  let img = Tea_workloads.Micro.branchy_loop () in
  List.iter
    (fun (name, strategy) ->
      let r = Stardbt.record ~strategy img in
      check Alcotest.bool (name ^ " coverage") true (r.Stardbt.coverage >= 0.0);
      check Alcotest.bool (name ^ " stops") true
        (match r.Stardbt.stop.Interp.outcome with
        | Interp.Exited 0 -> true
        | _ -> false))
    Tea_traces.Registry.all

let () =
  Alcotest.run "tea_dbt"
    [
      ( "code-cache",
        [
          Alcotest.test_case "install" `Quick test_cache_install;
          Alcotest.test_case "total = model" `Quick test_cache_total_matches_model;
          Alcotest.test_case "reinstall" `Quick test_cache_reinstall_replaces;
          Alcotest.test_case "disjoint layouts" `Quick test_cache_layouts_disjoint;
        ] );
      ( "stardbt",
        [
          Alcotest.test_case "produces traces" `Quick test_record_produces_traces;
          Alcotest.test_case "behaviour preserved" `Quick test_record_preserves_program_behaviour;
          Alcotest.test_case "cycle ordering" `Quick test_record_cycles_ordering;
          Alcotest.test_case "cache consistency" `Quick test_record_cache_consistency;
          Alcotest.test_case "cold program" `Quick test_no_hot_code_no_traces;
          Alcotest.test_case "warmup not covered" `Quick test_coverage_counts_only_after_creation;
          Alcotest.test_case "threshold vs coverage" `Quick test_higher_threshold_lowers_coverage;
          Alcotest.test_case "all strategies" `Quick test_all_strategies_run;
        ] );
    ]
