(* Golden regression values: the whole pipeline is deterministic (seeded
   workload synthesis, no wall clock anywhere in the measurement path), so
   these exact numbers must reproduce on every run and every machine. Any
   change here means an intentional behaviour change in the workload
   generator, a recorder, the cost models or the accounting — update the
   goldens together with EXPERIMENTS.md when that happens. *)

let check = Alcotest.check

(* (dyn instrs, native cycles, mret traces, DBT bytes, TEA bytes,
   replay total cycles) *)
let goldens =
  [
    ("168.wupwise", (1809950, 3801009, 21, 3851, 525, 40977808));
    ("164.gzip", (3304839, 5473176, 38, 12746, 2249, 66840346));
    ("181.mcf", (4066096, 11987674, 30, 4200, 766, 158753249));
    ("253.perlbmk", (1357845, 3309323, 41, 8820, 1766, 44174136));
  ]

let mret = Option.get (Tea_traces.Registry.by_name "mret")

let measure name =
  let p = Option.get (Tea_workloads.Spec2000.by_name name) in
  let img = Tea_workloads.Spec2000.image p in
  let m, _ = Tea_machine.Interp.run img in
  let r = Tea_dbt.Stardbt.record ~strategy:mret img in
  let set = r.Tea_dbt.Stardbt.set in
  let auto = Tea_core.Builder.of_set set in
  let rep, _ =
    Tea_pinsim.Pintool_replay.replay ~traces:(Tea_traces.Trace_set.to_list set) img
  in
  ( Tea_machine.Interp.dyn_instrs m,
    Tea_machine.Interp.cycles m,
    Tea_traces.Trace_set.n_traces set,
    Tea_traces.Trace_set.dbt_bytes set img,
    Tea_core.Automaton.byte_size auto,
    rep.Tea_pinsim.Pintool_replay.total_cycles )

let test_golden (name, expected) () =
  let dyn, cyc, traces, dbt, tea, replay = measure name in
  let edyn, ecyc, etraces, edbt, etea, ereplay = expected in
  check Alcotest.int (name ^ " dynamic instructions") edyn dyn;
  check Alcotest.int (name ^ " native cycles") ecyc cyc;
  check Alcotest.int (name ^ " mret traces") etraces traces;
  check Alcotest.int (name ^ " DBT bytes") edbt dbt;
  check Alcotest.int (name ^ " TEA bytes") etea tea;
  check Alcotest.int (name ^ " replay cycles") ereplay replay

let () =
  Alcotest.run "tea_goldens"
    [
      ( "pipeline",
        List.map
          (fun ((name, _) as g) -> Alcotest.test_case name `Slow (test_golden g))
          goldens );
    ]
