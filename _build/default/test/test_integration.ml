(* Cross-library integration: the full paper workflows end to end. *)

module Interp = Tea_machine.Interp
module Trace = Tea_traces.Trace
module Trace_set = Tea_traces.Trace_set
module Stardbt = Tea_dbt.Stardbt
module Builder = Tea_core.Builder
module Automaton = Tea_core.Automaton
module Transition = Tea_core.Transition
module Replayer = Tea_core.Replayer
module Pintool_replay = Tea_pinsim.Pintool_replay
module Pintool_record = Tea_pinsim.Pintool_record

let check = Alcotest.check

let mret = Option.get (Tea_traces.Registry.by_name "mret")

(* 1. Record under DBT -> serialize -> load -> replay under Pin: the
   headline cross-system workflow. *)
let test_cross_system_workflow () =
  let img = Tea_workloads.Spec2000.(image (Option.get (by_name "177.mesa"))) in
  let dbt = Stardbt.record ~strategy:mret img in
  let traces = Trace_set.to_list dbt.Stardbt.set in
  let path = Filename.temp_file "tea_integration" ".traces" in
  Tea_traces.Serialize.save path traces;
  let loaded = Tea_traces.Serialize.load img path in
  Sys.remove path;
  let direct, _ = Pintool_replay.replay ~traces img in
  let via_file, _ = Pintool_replay.replay ~traces:loaded img in
  check (Alcotest.float 0.0001) "identical coverage through the file"
    direct.Pintool_replay.coverage via_file.Pintool_replay.coverage;
  check Alcotest.bool "replay >= record" true
    (via_file.Pintool_replay.coverage >= dbt.Stardbt.coverage -. 0.02)

(* 2. The TEA serialized as an automaton also replays identically. *)
let test_automaton_file_replay () =
  let img = Tea_workloads.Micro.list_scan () in
  let dbt = Stardbt.record ~strategy:mret img in
  let auto = Builder.of_set dbt.Stardbt.set in
  let path = Filename.temp_file "tea_auto" ".tea" in
  Tea_core.Serialize.save path auto;
  let loaded = Tea_core.Serialize.load img path in
  Sys.remove path;
  let replay a =
    let trans = Transition.create Transition.config_global_local a in
    let rep = Replayer.create trans in
    let filter =
      Tea_pinsim.Edge_filter.create ~emit:(fun b ~expanded ->
          Replayer.feed_addr rep ~insns:expanded b.Tea_cfg.Block.start)
    in
    let _ = Tea_pinsim.Pin.run ~tool:(Tea_pinsim.Edge_filter.callbacks filter) img in
    Tea_pinsim.Edge_filter.flush filter;
    (Replayer.coverage rep, Replayer.trace_enters rep)
  in
  let c1, e1 = replay auto in
  let c2, e2 = replay loaded in
  check (Alcotest.float 0.0001) "same coverage" c1 c2;
  check Alcotest.int "same entries" e1 e2

(* 3. Replay profiles are consistent: per-state counts sum to the number
   of non-NTE steps. *)
let test_profile_accounting () =
  let img = Tea_workloads.Micro.branchy_loop () in
  let dbt = Stardbt.record ~strategy:mret img in
  let auto = Builder.of_set dbt.Stardbt.set in
  let trans = Transition.create Transition.config_global_local auto in
  let rep = Replayer.create trans in
  let filter =
    Tea_pinsim.Edge_filter.create ~emit:(fun b ~expanded ->
        Replayer.feed_addr rep ~insns:expanded b.Tea_cfg.Block.start)
  in
  let _ = Tea_pinsim.Pin.run ~tool:(Tea_pinsim.Edge_filter.callbacks filter) img in
  Tea_pinsim.Edge_filter.flush filter;
  let stats = Transition.stats trans in
  let profile_total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Replayer.tbb_counts rep)
  in
  let non_nte_steps =
    stats.Transition.in_trace_hits + stats.Transition.cache_hits
    + stats.Transition.global_hits
  in
  check Alcotest.int "profile sums to non-NTE steps" non_nte_steps profile_total

(* 4. Online (Algorithm 2) and the DBT recorder agree on MRET traces, and
   the online automaton replays with comparable coverage. *)
let test_online_then_replay () =
  let img = Tea_workloads.Micro.list_scan () in
  let result, online = Pintool_record.record ~strategy:mret img in
  let traces = Tea_core.Online.traces online in
  let replayed, _ = Pintool_replay.replay ~traces img in
  check Alcotest.bool "replay >= online record coverage" true
    (replayed.Pintool_replay.coverage >= result.Pintool_record.coverage -. 0.02)

(* 5. Duplicated-trace replay (Figure 1) preserves total counts: the sum of
   per-copy counts equals the original trace's count. *)
let test_duplication_preserves_totals () =
  let img = Tea_workloads.Micro.copy_loop ~words:100 ~passes:10 () in
  let dbt = Stardbt.record ~strategy:mret img in
  let cyclic =
    List.find
      (fun t -> Trace.successors t (Trace.n_tbbs t - 1) <> [])
      (Trace_set.to_list dbt.Stardbt.set)
  in
  let replay_counts traces id =
    let auto = Builder.build traces in
    let trans = Transition.create Transition.config_global_local auto in
    let rep = Replayer.create trans in
    let filter =
      Tea_pinsim.Edge_filter.create ~emit:(fun b ~expanded ->
          Replayer.feed_addr rep ~insns:expanded b.Tea_cfg.Block.start)
    in
    let _ = Tea_pinsim.Pin.run ~tool:(Tea_pinsim.Edge_filter.callbacks filter) img in
    Tea_pinsim.Edge_filter.flush filter;
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Replayer.trace_profile rep id)
  in
  let original = replay_counts [ cyclic ] cyclic.Trace.id in
  let dup = Builder.duplicate_trace ~factor:2 cyclic in
  let duplicated = replay_counts [ dup ] dup.Trace.id in
  check Alcotest.int "totals preserved" original duplicated

(* 6. All three strategies drive the full pipeline on a real benchmark. *)
let test_all_strategies_full_pipeline () =
  let img = Tea_workloads.Spec2000.(image (Option.get (by_name "181.mcf"))) in
  List.iter
    (fun (name, strategy) ->
      let dbt = Stardbt.record ~strategy img in
      let traces = Trace_set.to_list dbt.Stardbt.set in
      let auto = Builder.build traces in
      (match Automaton.check_deterministic auto with
      | Ok () -> ()
      | Error m -> Alcotest.fail (name ^ ": " ^ m));
      let replayed, _ = Pintool_replay.replay ~traces img in
      check Alcotest.bool (name ^ " coverage sane") true
        (replayed.Pintool_replay.coverage > 0.3);
      check Alcotest.bool (name ^ " memory saved") true
        (Automaton.byte_size auto < Trace_set.dbt_bytes dbt.Stardbt.set img))
    Tea_traces.Registry.all

(* 7. Determinism across the whole pipeline: identical runs, identical
   numbers. *)
let test_pipeline_determinism () =
  let run () =
    let img = Tea_workloads.Spec2000.(image (Option.get (by_name "183.equake"))) in
    let dbt = Stardbt.record ~strategy:mret img in
    let traces = Trace_set.to_list dbt.Stardbt.set in
    let r, _ = Pintool_replay.replay ~traces img in
    (dbt.Stardbt.coverage, r.Pintool_replay.coverage, r.Pintool_replay.total_cycles)
  in
  let a = run () and b = run () in
  check Alcotest.bool "bit-identical" true (a = b)

(* 8. The NTE invariant: replaying a program against an empty TEA never
   leaves NTE and covers nothing. *)
let test_empty_tea_stays_nte () =
  let img = Tea_workloads.Micro.branchy_loop () in
  let auto = Automaton.create () in
  let trans = Transition.create Transition.config_global_no_local auto in
  let rep = Replayer.create trans in
  let cb =
    {
      Tea_cfg.Discovery.on_block = (fun b -> Replayer.feed rep b);
      Tea_cfg.Discovery.on_edge = (fun _ _ -> ());
    }
  in
  let _ = Tea_cfg.Discovery.run img cb in
  check Alcotest.int "always NTE" Automaton.nte (Replayer.state rep);
  check Alcotest.int "nothing covered" 0 (Replayer.covered_insns rep);
  let stats = Transition.stats trans in
  check Alcotest.int "every step missed" stats.Transition.steps
    stats.Transition.global_misses

let () =
  Alcotest.run "tea_integration"
    [
      ( "workflows",
        [
          Alcotest.test_case "cross-system" `Slow test_cross_system_workflow;
          Alcotest.test_case "automaton file replay" `Quick test_automaton_file_replay;
          Alcotest.test_case "profile accounting" `Quick test_profile_accounting;
          Alcotest.test_case "online then replay" `Quick test_online_then_replay;
          Alcotest.test_case "duplication totals" `Quick test_duplication_preserves_totals;
          Alcotest.test_case "all strategies" `Slow test_all_strategies_full_pipeline;
          Alcotest.test_case "determinism" `Slow test_pipeline_determinism;
          Alcotest.test_case "empty TEA" `Quick test_empty_tea_stays_nte;
        ] );
    ]
