open Tea_isa
module I = Insn
module O = Operand

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---------------- Reg / Cond ---------------- *)

let test_reg_roundtrip () =
  List.iter
    (fun r -> check Alcotest.bool "roundtrip" true (Reg.equal r (Reg.of_index (Reg.index r))))
    Reg.all;
  check Alcotest.int "count" 8 Reg.count

let test_reg_bad_index () =
  Alcotest.check_raises "of_index 8" (Invalid_argument "Reg.of_index: 8") (fun () ->
      ignore (Reg.of_index 8))

let test_cond_negate_involutive () =
  List.iter
    (fun c ->
      check Alcotest.bool "involutive" true (Cond.equal c (Cond.negate (Cond.negate c)));
      check Alcotest.bool "differs" false (Cond.equal c (Cond.negate c)))
    Cond.all

let test_cond_names_unique () =
  let names = List.map Cond.to_string Cond.all in
  check Alcotest.int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

(* ---------------- Operand ---------------- *)

let test_operand_scale_validation () =
  Alcotest.check_raises "scale 3" (Invalid_argument "Operand.mem: invalid scale 3")
    (fun () -> ignore (O.mem ~index:(Reg.EAX, 3) 0));
  List.iter
    (fun s -> ignore (O.mem ~index:(Reg.EAX, s) 0))
    [ 1; 2; 4; 8 ]

let test_operand_encoding_bytes () =
  check Alcotest.int "reg" 0 (O.encoding_bytes (O.Reg Reg.EAX));
  check Alcotest.int "imm" 4 (O.encoding_bytes (O.Imm 5));
  (* absolute address always needs 4 displacement bytes *)
  check Alcotest.int "abs mem" 4 (O.encoding_bytes (O.mem 0x1000));
  (* base + zero disp: no displacement byte *)
  check Alcotest.int "base only" 0 (O.encoding_bytes (O.mem ~base:Reg.EAX 0));
  (* base + short disp: one byte *)
  check Alcotest.int "short disp" 1 (O.encoding_bytes (O.mem ~base:Reg.EAX 8));
  (* base + long disp: four bytes *)
  check Alcotest.int "long disp" 4 (O.encoding_bytes (O.mem ~base:Reg.EAX 1000));
  (* index adds a SIB byte *)
  check Alcotest.int "sib" 1 (O.encoding_bytes (O.mem ~base:Reg.EAX ~index:(Reg.EBX, 4) 0))

let test_operand_pp () =
  check Alcotest.string "reg" "eax" (O.to_string (O.Reg Reg.EAX));
  check Alcotest.string "imm" "42" (O.to_string (O.Imm 42));
  check Alcotest.string "mem" "[eax+ebx*4+8]"
    (O.to_string (O.mem ~base:Reg.EAX ~index:(Reg.EBX, 4) 8))

(* ---------------- Insn ---------------- *)

let sample_insns =
  [
    I.Nop; I.Cpuid; I.Halt;
    I.Mov (O.Reg Reg.EAX, O.Imm 5);
    I.Lea (Reg.EBX, { O.base = Some Reg.EAX; index = None; disp = 4 });
    I.Alu (I.Add, O.Reg Reg.EAX, O.Reg Reg.EBX);
    I.Inc (O.Reg Reg.ECX); I.Dec (O.mem 0x1000); I.Neg (O.Reg Reg.EDX);
    I.Imul (Reg.EAX, O.Imm 3);
    I.Shift (I.Shl, O.Reg Reg.EAX, 2);
    I.Cmp (O.Reg Reg.EAX, O.Imm 0); I.Test (O.Reg Reg.EAX, O.Reg Reg.EAX);
    I.Jmp (I.Abs 0x100); I.Jmp_ind (O.Reg Reg.EAX);
    I.Jcc (Cond.E, I.Abs 0x100);
    I.Call (I.Abs 0x100); I.Call_ind (O.Reg Reg.EBX); I.Ret;
    I.Push (O.Reg Reg.EAX); I.Pop (O.Reg Reg.EAX);
    I.Rep_movs; I.Rep_stos; I.Sys 0;
  ]

let test_insn_lengths_positive () =
  List.iter
    (fun i ->
      check Alcotest.bool (I.to_string i) true (I.length i > 0 && I.length i <= 16))
    sample_insns

let test_insn_x86_lengths () =
  check Alcotest.int "nop" 1 (I.length I.Nop);
  check Alcotest.int "inc reg" 1 (I.length (I.Inc (O.Reg Reg.EAX)));
  check Alcotest.int "mov reg,imm" 6 (I.length (I.Mov (O.Reg Reg.EAX, O.Imm 5)));
  check Alcotest.int "jmp" 5 (I.length (I.Jmp (I.Abs 0)));
  check Alcotest.int "jcc" 6 (I.length (I.Jcc (Cond.E, I.Abs 0)));
  check Alcotest.int "ret" 1 (I.length I.Ret);
  check Alcotest.int "push reg" 1 (I.length (I.Push (O.Reg Reg.EAX)))

let test_insn_branch_classification () =
  let branches = [ I.Jmp (I.Abs 0); I.Jmp_ind (O.Reg Reg.EAX); I.Jcc (Cond.E, I.Abs 0);
                   I.Call (I.Abs 0); I.Call_ind (O.Reg Reg.EAX); I.Ret; I.Halt; I.Sys 0 ] in
  List.iter (fun i -> check Alcotest.bool (I.to_string i) true (I.is_branch i)) branches;
  let non = [ I.Nop; I.Cpuid; I.Rep_movs; I.Mov (O.Reg Reg.EAX, O.Imm 1) ] in
  List.iter (fun i -> check Alcotest.bool (I.to_string i) false (I.is_branch i)) non

let test_insn_direct_target () =
  check Alcotest.(option int) "jmp" (Some 0x42) (I.direct_target (I.Jmp (I.Abs 0x42)));
  check Alcotest.(option int) "jcc" (Some 0x42)
    (I.direct_target (I.Jcc (Cond.NE, I.Abs 0x42)));
  check Alcotest.(option int) "ret" None (I.direct_target I.Ret);
  check Alcotest.(option int) "ind" None (I.direct_target (I.Jmp_ind (O.Reg Reg.EAX)))

let test_insn_fallthrough () =
  check Alcotest.bool "jmp" false (I.fallthrough_continues (I.Jmp (I.Abs 0)));
  check Alcotest.bool "ret" false (I.fallthrough_continues I.Ret);
  check Alcotest.bool "halt" false (I.fallthrough_continues I.Halt);
  check Alcotest.bool "exit" false (I.fallthrough_continues (I.Sys 0));
  check Alcotest.bool "sys1" true (I.fallthrough_continues (I.Sys 1));
  check Alcotest.bool "jcc" true (I.fallthrough_continues (I.Jcc (Cond.E, I.Abs 0)));
  check Alcotest.bool "call" true (I.fallthrough_continues (I.Call (I.Abs 0)))

let test_insn_indirect () =
  check Alcotest.bool "jmp_ind" true (I.is_indirect (I.Jmp_ind (O.Reg Reg.EAX)));
  check Alcotest.bool "ret" true (I.is_indirect I.Ret);
  check Alcotest.bool "jmp" false (I.is_indirect (I.Jmp (I.Abs 0)))

let test_insn_pp_distinct () =
  let strings = List.map I.to_string sample_insns in
  check Alcotest.int "distinct" (List.length strings)
    (List.length (List.sort_uniq compare strings))

(* ---------------- Asm ---------------- *)

let test_layout_data () =
  let syms, size =
    Asm.layout_data ~base:0x1000
      [ Asm.Dlabel "a"; Asm.Word 1; Asm.Word 2; Asm.Dlabel "b"; Asm.Space 3; Asm.Word_ref "a" ]
  in
  check Alcotest.(list (pair string int)) "symbols" [ ("a", 0x1000); ("b", 0x1008) ] syms;
  check Alcotest.int "size" 24 size

let test_layout_data_duplicate () =
  Alcotest.check_raises "dup" (Invalid_argument "Asm.layout_data: duplicate label x")
    (fun () -> ignore (Asm.layout_data [ Asm.Dlabel "x"; Asm.Dlabel "x" ]))

let test_text_labels () =
  check Alcotest.(list string) "labels" [ "a"; "b" ]
    (Asm.text_labels [ Asm.Label "a"; Asm.Ins I.Nop; Asm.Label "b" ])

(* ---------------- Image ---------------- *)

let tiny_program =
  Asm.program
    ~data:[ Asm.Dlabel "table"; Asm.Word 7; Asm.Word_ref "main" ]
    [
      Asm.Label "main";
      Asm.Ins (I.Mov (O.Reg Reg.EAX, O.Imm 1));
      Asm.Label "loop";
      Asm.Ins (I.Dec (O.Reg Reg.EAX));
      Asm.Ins (I.Jcc (Cond.NE, I.Lbl "loop"));
      Asm.Ins (I.Sys 0);
    ]

let test_image_entry_and_symbols () =
  let img = Image.assemble tiny_program in
  check Alcotest.int "entry is main" (Image.symbol img "main") (Image.entry img);
  check Alcotest.bool "loop after main" true
    (Image.symbol img "loop" > Image.symbol img "main");
  check Alcotest.int "table at data base" Asm.default_data_base
    (Image.symbol img "table")

let test_image_fetch_chain () =
  let img = Image.assemble tiny_program in
  let a0 = Image.entry img in
  (match Image.fetch img a0 with
  | Some (I.Mov _) -> ()
  | _ -> Alcotest.fail "expected mov at entry");
  let a1 = Image.next_addr img a0 in
  (match Image.fetch img a1 with
  | Some (I.Dec _) -> ()
  | _ -> Alcotest.fail "expected dec next");
  check Alcotest.bool "mid-instruction fetch is None" true
    (Image.fetch img (a0 + 1) = None)

let test_image_target_resolution () =
  let img = Image.assemble tiny_program in
  let loop_addr = Image.symbol img "loop" in
  let jcc_addr = Image.next_addr img loop_addr in
  match Image.fetch img jcc_addr with
  | Some (I.Jcc (Cond.NE, I.Abs t)) -> check Alcotest.int "resolved" loop_addr t
  | _ -> Alcotest.fail "expected resolved jcc"

let test_image_data_ref () =
  let img = Image.assemble tiny_program in
  let table = Image.symbol img "table" in
  match Image.initial_data img with
  | [ (a1, 7); (a2, m) ] ->
      check Alcotest.int "first word" table a1;
      check Alcotest.int "second addr" (table + 4) a2;
      check Alcotest.int "ref resolved" (Image.symbol img "main") m
  | _ -> Alcotest.fail "unexpected data layout"

let test_image_unknown_label () =
  let p = Asm.program [ Asm.Ins (I.Jmp (I.Lbl "nowhere")) ] in
  Alcotest.check_raises "unknown" (Image.Unknown_label "nowhere") (fun () ->
      ignore (Image.assemble p))

let test_image_duplicate_label () =
  let p = Asm.program [ Asm.Label "a"; Asm.Ins I.Nop; Asm.Label "a" ] in
  Alcotest.check_raises "dup" (Invalid_argument "Image.assemble: duplicate label a")
    (fun () -> ignore (Image.assemble p))

let test_image_bounds_and_bytes () =
  let img = Image.assemble tiny_program in
  let lo, hi = Image.text_bounds img in
  check Alcotest.int "code bytes" (hi - lo) (Image.code_bytes img);
  check Alcotest.bool "entry in text" true (Image.in_text img (Image.entry img));
  check Alcotest.bool "data not in text" false
    (Image.in_text img Asm.default_data_base);
  check Alcotest.int "instruction count" 4 (Image.instruction_count img)

let test_image_listing () =
  let img = Image.assemble tiny_program in
  let listing = Format.asprintf "%a" Image.pp_listing img in
  check Alcotest.bool "has main" true (contains listing "main:");
  check Alcotest.bool "has dec" true (contains listing "dec eax")

(* Addresses are consecutive: each instruction starts where the previous
   one ends. *)
let prop_image_layout =
  let insn_gen =
    QCheck.Gen.oneofl
      [ I.Nop; I.Mov (O.Reg Reg.EAX, O.Imm 1); I.Inc (O.Reg Reg.EBX);
        I.Cmp (O.Reg Reg.EAX, O.Imm 0); I.Push (O.Reg Reg.ECX); I.Ret ]
  in
  QCheck.Test.make ~name:"image layout is gap-free" ~count:100
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 40) insn_gen))
    (fun insns ->
      let p = Asm.program (List.map (fun i -> Asm.Ins i) insns) in
      let img = Image.assemble p in
      let addrs = Image.code_addresses img in
      let ok = ref (Array.length addrs = List.length insns) in
      for i = 0 to Array.length addrs - 2 do
        if Image.next_addr img addrs.(i) <> addrs.(i + 1) then ok := false
      done;
      !ok)

(* ---------------- Encode ---------------- *)

let test_encode_samples () =
  List.iter
    (fun i ->
      check Alcotest.int (I.to_string i) (I.length i)
        (String.length (Encode.insn (match i with
           | I.Jmp (I.Lbl _) -> I.Jmp (I.Abs 0)
           | other -> other))))
    sample_insns

let test_encode_unresolved () =
  Alcotest.check_raises "label" (Invalid_argument "Encode.insn: unresolved label x")
    (fun () -> ignore (Encode.insn (I.Jmp (I.Lbl "x"))))

let test_encode_image_text () =
  let img = Image.assemble tiny_program in
  check Alcotest.int "text bytes ground truth" (Image.code_bytes img)
    (String.length (Encode.image_text img))

let test_encode_distinct () =
  (* encodings of distinct sample instructions differ *)
  let encs =
    List.map
      (fun i ->
        Encode.insn (match i with I.Jmp (I.Lbl _) -> I.Jmp (I.Abs 0) | o -> o))
      sample_insns
  in
  check Alcotest.int "unique encodings" (List.length encs)
    (List.length (List.sort_uniq compare encs))

(* exhaustive-ish generator over the operand space *)
let prop_encode_length_agrees =
  let open QCheck.Gen in
  let reg_gen = oneofl Reg.all in
  let operand_gen =
    oneof
      [
        map (fun r -> O.Reg r) reg_gen;
        map (fun v -> O.Imm v) (int_range (-100000) 100000);
        (* memory operands across all displacement/index shapes *)
        map3
          (fun base index disp ->
            let index = Option.map (fun r -> (r, 4)) index in
            match base with
            | Some _ -> O.mem ?base ?index disp
            | None -> O.mem ?index (abs disp))
          (opt reg_gen) (opt reg_gen)
          (oneof [ return 0; int_range (-120) 120; int_range 1000 100000 ]);
      ]
  in
  let insn_gen =
    oneof
      [
        return I.Nop; return I.Cpuid; return I.Halt; return I.Ret;
        return I.Rep_movs; return I.Rep_stos;
        map (fun n -> I.Sys n) (int_range 0 3);
        map2 (fun d s -> I.Mov (d, s)) operand_gen operand_gen;
        map2 (fun a b -> I.Cmp (a, b)) operand_gen operand_gen;
        map2 (fun a b -> I.Test (a, b)) operand_gen operand_gen;
        map3 (fun op d s -> I.Alu (op, d, s))
          (oneofl [ I.Add; I.Sub; I.And; I.Or; I.Xor ])
          operand_gen operand_gen;
        map (fun d -> I.Inc d) operand_gen;
        map (fun d -> I.Dec d) operand_gen;
        map (fun d -> I.Neg d) operand_gen;
        map2 (fun r s -> I.Imul (r, s)) reg_gen operand_gen;
        map3 (fun op d n -> I.Shift (op, d, n))
          (oneofl [ I.Shl; I.Shr; I.Sar ]) operand_gen (int_range 0 31);
        map (fun a -> I.Jmp (I.Abs a)) (int_range 0 0xFFFFFF);
        map (fun op -> I.Jmp_ind op) operand_gen;
        map2 (fun c a -> I.Jcc (c, I.Abs a)) (oneofl Cond.all) (int_range 0 0xFFFFFF);
        map (fun a -> I.Call (I.Abs a)) (int_range 0 0xFFFFFF);
        map (fun op -> I.Call_ind op) operand_gen;
        map (fun op -> I.Push op) operand_gen;
        map (fun op -> I.Pop op) operand_gen;
      ]
  in
  QCheck.Test.make ~name:"encoded size equals Insn.length" ~count:2000
    (QCheck.make insn_gen)
    (fun i ->
      match i with
      | I.Mov (O.Imm _, _) | I.Pop (O.Imm _) ->
          (* writes to immediates are rejected by the interpreter, but the
             encoder still sizes them consistently *)
          String.length (Encode.insn i) = I.length i
      | _ -> String.length (Encode.insn i) = I.length i)

let () =
  Alcotest.run "tea_isa"
    [
      ( "reg-cond",
        [
          Alcotest.test_case "reg roundtrip" `Quick test_reg_roundtrip;
          Alcotest.test_case "reg bad index" `Quick test_reg_bad_index;
          Alcotest.test_case "cond negate" `Quick test_cond_negate_involutive;
          Alcotest.test_case "cond names" `Quick test_cond_names_unique;
        ] );
      ( "operand",
        [
          Alcotest.test_case "scale validation" `Quick test_operand_scale_validation;
          Alcotest.test_case "encoding bytes" `Quick test_operand_encoding_bytes;
          Alcotest.test_case "pp" `Quick test_operand_pp;
        ] );
      ( "insn",
        [
          Alcotest.test_case "lengths positive" `Quick test_insn_lengths_positive;
          Alcotest.test_case "x86 lengths" `Quick test_insn_x86_lengths;
          Alcotest.test_case "branch classification" `Quick test_insn_branch_classification;
          Alcotest.test_case "direct target" `Quick test_insn_direct_target;
          Alcotest.test_case "fallthrough" `Quick test_insn_fallthrough;
          Alcotest.test_case "indirect" `Quick test_insn_indirect;
          Alcotest.test_case "pp distinct" `Quick test_insn_pp_distinct;
        ] );
      ( "asm",
        [
          Alcotest.test_case "layout data" `Quick test_layout_data;
          Alcotest.test_case "duplicate data label" `Quick test_layout_data_duplicate;
          Alcotest.test_case "text labels" `Quick test_text_labels;
        ] );
      ( "image",
        [
          Alcotest.test_case "entry/symbols" `Quick test_image_entry_and_symbols;
          Alcotest.test_case "fetch chain" `Quick test_image_fetch_chain;
          Alcotest.test_case "target resolution" `Quick test_image_target_resolution;
          Alcotest.test_case "data refs" `Quick test_image_data_ref;
          Alcotest.test_case "unknown label" `Quick test_image_unknown_label;
          Alcotest.test_case "duplicate label" `Quick test_image_duplicate_label;
          Alcotest.test_case "bounds/bytes" `Quick test_image_bounds_and_bytes;
          Alcotest.test_case "listing" `Quick test_image_listing;
          qtest prop_image_layout;
        ] );
      ( "encode",
        [
          Alcotest.test_case "samples" `Quick test_encode_samples;
          Alcotest.test_case "unresolved" `Quick test_encode_unresolved;
          Alcotest.test_case "image text" `Quick test_encode_image_text;
          Alcotest.test_case "distinct" `Quick test_encode_distinct;
          qtest prop_encode_length_agrees;
        ] );
    ]
