open Tea_isa
module I = Insn
module O = Operand
module Memory = Tea_machine.Memory
module Cost = Tea_machine.Cost
module Interp = Tea_machine.Interp

let check = Alcotest.check

let reg r = O.Reg r
let imm n = O.Imm n

(* Assemble a raw instruction list ending in exit and run it. *)
let run_insns ?fuel insns =
  let text = List.map (fun i -> Asm.Ins i) insns in
  let img = Image.assemble (Asm.program (Asm.Label "main" :: text)) in
  Interp.run ?fuel img

let exit_insns = [ I.Sys 1; I.Mov (reg Reg.EAX, imm 0); I.Sys 0 ]

(* Run a computation that leaves its result in EAX; return the emitted value. *)
let compute insns =
  let machine, stop = run_insns (insns @ exit_insns) in
  (match stop.Interp.outcome with
  | Interp.Exited 0 -> ()
  | _ -> Alcotest.fail "program did not exit cleanly");
  match Interp.output machine with
  | [ v ] -> v
  | _ -> Alcotest.fail "expected exactly one output"

(* ---------------- Memory ---------------- *)

let test_memory_default_zero () =
  let m = Memory.create () in
  check Alcotest.int "unwritten" 0 (Memory.read m 0x1234);
  check Alcotest.int "footprint" 0 (Memory.footprint m)

let test_memory_write_read () =
  let m = Memory.create () in
  Memory.write m 0x1000 42;
  Memory.write m 0x1004 (-7);
  check Alcotest.int "read" 42 (Memory.read m 0x1000);
  check Alcotest.int "negative" (-7) (Memory.read m 0x1004);
  check Alcotest.int "footprint" 2 (Memory.footprint m)

let test_memory_copy_independent () =
  let m = Memory.create () in
  Memory.write m 0 1;
  let c = Memory.copy m in
  Memory.write c 0 2;
  check Alcotest.int "original unchanged" 1 (Memory.read m 0)

let test_memory_word_normalized () =
  let m = Memory.create () in
  Memory.write m 0 0xFFFFFFFF;
  check Alcotest.int "sign extended" (-1) (Memory.read m 0)

(* ---------------- Cost ---------------- *)

let test_cost_positive () =
  List.iter
    (fun i -> check Alcotest.bool (I.to_string i) true (Cost.insn i ~reps:1 > 0))
    [ I.Nop; I.Ret; I.Rep_movs; I.Cpuid; I.Sys 0; I.Mov (reg Reg.EAX, imm 1) ]

let test_cost_rep_scales () =
  let c1 = Cost.insn I.Rep_movs ~reps:1 in
  let c100 = Cost.insn I.Rep_movs ~reps:100 in
  check Alcotest.bool "rep scales" true (c100 > c1 + 150)

let test_cost_mem_traffic () =
  let reg_cost = Cost.insn (I.Mov (reg Reg.EAX, reg Reg.EBX)) ~reps:1 in
  let mem_cost = Cost.insn (I.Mov (reg Reg.EAX, O.mem 0x1000)) ~reps:1 in
  check Alcotest.bool "mem costs more" true (mem_cost > reg_cost)

(* ---------------- Interp: data movement and ALU ---------------- *)

let test_mov_imm () =
  check Alcotest.int "mov" 7 (compute [ I.Mov (reg Reg.EAX, imm 7) ])

let test_alu_ops () =
  check Alcotest.int "add" 12
    (compute [ I.Mov (reg Reg.EAX, imm 5); I.Alu (I.Add, reg Reg.EAX, imm 7) ]);
  check Alcotest.int "sub" (-2)
    (compute [ I.Mov (reg Reg.EAX, imm 5); I.Alu (I.Sub, reg Reg.EAX, imm 7) ]);
  check Alcotest.int "and" 4
    (compute [ I.Mov (reg Reg.EAX, imm 6); I.Alu (I.And, reg Reg.EAX, imm 12) ]);
  check Alcotest.int "or" 14
    (compute [ I.Mov (reg Reg.EAX, imm 6); I.Alu (I.Or, reg Reg.EAX, imm 12) ]);
  check Alcotest.int "xor" 10
    (compute [ I.Mov (reg Reg.EAX, imm 6); I.Alu (I.Xor, reg Reg.EAX, imm 12) ])

let test_inc_dec_neg () =
  check Alcotest.int "inc" 6 (compute [ I.Mov (reg Reg.EAX, imm 5); I.Inc (reg Reg.EAX) ]);
  check Alcotest.int "dec" 4 (compute [ I.Mov (reg Reg.EAX, imm 5); I.Dec (reg Reg.EAX) ]);
  check Alcotest.int "neg" (-5) (compute [ I.Mov (reg Reg.EAX, imm 5); I.Neg (reg Reg.EAX) ])

let test_imul_shifts () =
  check Alcotest.int "imul" 35
    (compute [ I.Mov (reg Reg.EAX, imm 5); I.Imul (Reg.EAX, imm 7) ]);
  check Alcotest.int "shl" 40
    (compute [ I.Mov (reg Reg.EAX, imm 5); I.Shift (I.Shl, reg Reg.EAX, 3) ]);
  check Alcotest.int "sar" (-3)
    (compute [ I.Mov (reg Reg.EAX, imm (-5)); I.Shift (I.Sar, reg Reg.EAX, 1) ]);
  check Alcotest.int "shr"
    0x7FFFFFFD
    (compute [ I.Mov (reg Reg.EAX, imm (-5)); I.Shift (I.Shr, reg Reg.EAX, 1) ])

let test_lea () =
  check Alcotest.int "lea" 0x10C
    (compute
       [
         I.Mov (reg Reg.EBX, imm 0x100);
         I.Mov (reg Reg.ECX, imm 3);
         I.Lea (Reg.EAX, { O.base = Some Reg.EBX; index = Some (Reg.ECX, 4); disp = 0 });
       ])

let test_wraparound () =
  check Alcotest.int "32-bit wrap" (-2147483648)
    (compute [ I.Mov (reg Reg.EAX, imm 0x7FFFFFFF); I.Inc (reg Reg.EAX) ])

(* ---------------- Interp: memory operands, stack ---------------- *)

let test_memory_operands () =
  let img =
    Image.assemble
      (Asm.program
         ~data:[ Asm.Dlabel "cell"; Asm.Word 31 ]
         ([ Asm.Label "main";
            Asm.Ins (I.Mov (reg Reg.EAX, O.mem Asm.default_data_base));
            Asm.Ins (I.Alu (I.Add, O.mem Asm.default_data_base, imm 11));
            Asm.Ins (I.Alu (I.Add, reg Reg.EAX, O.mem Asm.default_data_base)) ]
         @ List.map (fun i -> Asm.Ins i) exit_insns))
  in
  let machine, _ = Interp.run img in
  check Alcotest.(list int) "31 + 42" [ 73 ] (Interp.output machine)

let test_push_pop () =
  check Alcotest.int "push/pop" 9
    (compute
       [
         I.Mov (reg Reg.EBX, imm 9); I.Push (reg Reg.EBX);
         I.Mov (reg Reg.EBX, imm 1); I.Pop (reg Reg.EAX);
       ])

(* ---------------- Interp: control flow ---------------- *)

let branch_program cond_setup cond =
  (* EAX = 1 if branch taken else 2 *)
  let text =
    [ Asm.Label "main" ]
    @ List.map (fun i -> Asm.Ins i) cond_setup
    @ [
        Asm.Ins (I.Jcc (cond, I.Lbl "taken"));
        Asm.Ins (I.Mov (reg Reg.EAX, imm 2));
        Asm.Ins (I.Jmp (I.Lbl "done"));
        Asm.Label "taken";
        Asm.Ins (I.Mov (reg Reg.EAX, imm 1));
        Asm.Label "done";
      ]
    @ List.map (fun i -> Asm.Ins i) exit_insns
  in
  let machine, _ = Interp.run (Image.assemble (Asm.program text)) in
  match Interp.output machine with [ v ] -> v | _ -> Alcotest.fail "no output"

let test_conditions_signed () =
  let cmp a b = [ I.Mov (reg Reg.EBX, imm a); I.Cmp (reg Reg.EBX, imm b) ] in
  check Alcotest.int "e taken" 1 (branch_program (cmp 5 5) Cond.E);
  check Alcotest.int "e not" 2 (branch_program (cmp 5 6) Cond.E);
  check Alcotest.int "ne" 1 (branch_program (cmp 5 6) Cond.NE);
  check Alcotest.int "l" 1 (branch_program (cmp (-1) 0) Cond.L);
  check Alcotest.int "l not" 2 (branch_program (cmp 0 (-1)) Cond.L);
  check Alcotest.int "le eq" 1 (branch_program (cmp 3 3) Cond.LE);
  check Alcotest.int "g" 1 (branch_program (cmp 4 3) Cond.G);
  check Alcotest.int "ge" 1 (branch_program (cmp 3 3) Cond.GE)

let test_conditions_unsigned () =
  let cmp a b = [ I.Mov (reg Reg.EBX, imm a); I.Cmp (reg Reg.EBX, imm b) ] in
  (* -1 is 0xFFFFFFFF unsigned: above everything *)
  check Alcotest.int "b" 1 (branch_program (cmp 0 (-1)) Cond.B);
  check Alcotest.int "a" 1 (branch_program (cmp (-1) 0) Cond.A);
  check Alcotest.int "ae eq" 1 (branch_program (cmp 7 7) Cond.AE);
  check Alcotest.int "be" 1 (branch_program (cmp 6 7) Cond.BE)

let test_conditions_sign_flag () =
  let setup = [ I.Mov (reg Reg.EBX, imm (-5)); I.Test (reg Reg.EBX, reg Reg.EBX) ] in
  check Alcotest.int "s" 1 (branch_program setup Cond.S);
  let setup' = [ I.Mov (reg Reg.EBX, imm 5); I.Test (reg Reg.EBX, reg Reg.EBX) ] in
  check Alcotest.int "ns" 1 (branch_program setup' Cond.NS)

let test_inc_preserves_carry () =
  (* cmp 0,1 sets CF; inc must not clear it; jb then takes. *)
  let setup =
    [
      I.Mov (reg Reg.EBX, imm 0); I.Cmp (reg Reg.EBX, imm 1);
      I.Inc (reg Reg.EBX);
    ]
  in
  check Alcotest.int "carry preserved" 1 (branch_program setup Cond.B)

let test_call_ret () =
  let text =
    [
      Asm.Label "main";
      Asm.Ins (I.Mov (reg Reg.EAX, imm 10));
      Asm.Ins (I.Call (I.Lbl "f"));
      Asm.Ins (I.Alu (I.Add, reg Reg.EAX, imm 1));
    ]
    @ List.map (fun i -> Asm.Ins i) exit_insns
    @ [ Asm.Label "f"; Asm.Ins (I.Imul (Reg.EAX, imm 3)); Asm.Ins I.Ret ]
  in
  let machine, _ = Interp.run (Image.assemble (Asm.program text)) in
  check Alcotest.(list int) "call/ret" [ 31 ] (Interp.output machine)

let test_indirect_jump_table () =
  let text =
    [
      Asm.Label "main";
      Asm.Ins (I.Mov (reg Reg.EBX, O.mem (Asm.default_data_base + 4)));
      Asm.Ins (I.Jmp_ind (reg Reg.EBX));
      Asm.Ins I.Halt;
      Asm.Label "target";
      Asm.Ins (I.Mov (reg Reg.EAX, imm 77));
    ]
    @ List.map (fun i -> Asm.Ins i) exit_insns
  in
  let data = [ Asm.Dlabel "table"; Asm.Word 0; Asm.Word_ref "target" ] in
  let machine, _ = Interp.run (Image.assemble (Asm.program ~data text)) in
  check Alcotest.(list int) "indirect" [ 77 ] (Interp.output machine)

(* ---------------- Interp: REP, syscalls, stops ---------------- *)

let test_rep_movs () =
  let src = Asm.default_data_base in
  let n = 5 in
  let data = List.init n (fun i -> Asm.Word (i + 1)) in
  let dst = src + (4 * n) in
  let text =
    [
      Asm.Label "main";
      Asm.Ins (I.Mov (reg Reg.ESI, imm src));
      Asm.Ins (I.Mov (reg Reg.EDI, imm dst));
      Asm.Ins (I.Mov (reg Reg.ECX, imm n));
      Asm.Ins I.Rep_movs;
      Asm.Ins (I.Mov (reg Reg.EAX, O.mem (dst + 8)));
    ]
    @ List.map (fun i -> Asm.Ins i) exit_insns
  in
  let machine, _ = Interp.run (Image.assemble (Asm.program ~data text)) in
  check Alcotest.(list int) "copied third word" [ 3 ] (Interp.output machine);
  (* StarDBT counts the REP once; Pin counts each iteration. *)
  check Alcotest.int "dbt count" 8 (Interp.dyn_instrs machine);
  check Alcotest.int "pin count counts iterations" (8 + n - 1)
    (Interp.dyn_instrs_expanded machine)

let test_rep_stos () =
  let dst = Asm.default_data_base in
  let text =
    [
      Asm.Label "main";
      Asm.Ins (I.Mov (reg Reg.EAX, imm 9));
      Asm.Ins (I.Mov (reg Reg.EDI, imm dst));
      Asm.Ins (I.Mov (reg Reg.ECX, imm 3));
      Asm.Ins I.Rep_stos;
      Asm.Ins (I.Mov (reg Reg.EAX, O.mem (dst + 8)));
    ]
    @ List.map (fun i -> Asm.Ins i) exit_insns
  in
  let machine, _ = Interp.run (Image.assemble (Asm.program text)) in
  check Alcotest.(list int) "stored" [ 9 ] (Interp.output machine)

let test_exit_code () =
  let _, stop = run_insns [ I.Mov (reg Reg.EAX, imm 3); I.Sys 0 ] in
  match stop.Interp.outcome with
  | Interp.Exited 3 -> ()
  | _ -> Alcotest.fail "expected exit 3"

let test_halt () =
  let _, stop = run_insns [ I.Halt ] in
  match stop.Interp.outcome with
  | Interp.Halted -> ()
  | _ -> Alcotest.fail "expected halt"

let test_fuel () =
  let _, stop =
    run_insns ~fuel:10 [ I.Mov (reg Reg.EAX, imm 1); I.Jmp (I.Abs Asm.default_text_base) ]
  in
  match stop.Interp.outcome with
  | Interp.Fuel_exhausted -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_fault_bad_fetch () =
  let _, stop = run_insns [ I.Jmp (I.Abs 0x42) ] in
  match stop.Interp.outcome with
  | Interp.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault"

let test_determinism () =
  let img = Tea_workloads.Micro.branchy_loop () in
  let m1, _ = Interp.run img in
  let m2, _ = Interp.run img in
  check Alcotest.(list int) "same output" (Interp.output m1) (Interp.output m2);
  check Alcotest.int "same cycles" (Interp.cycles m1) (Interp.cycles m2);
  check Alcotest.int "same counts" (Interp.dyn_instrs m1) (Interp.dyn_instrs m2)

let test_step_matches_run () =
  let img = Tea_workloads.Micro.nested_loop ~outer:5 ~inner:5 () in
  let m = Interp.create img in
  let rec loop () = match Interp.step m with Ok _ -> loop () | Error s -> s in
  let stop = loop () in
  let m', stop' = Interp.run img in
  check Alcotest.int "same instrs" (Interp.dyn_instrs m') (Interp.dyn_instrs m);
  check Alcotest.bool "same outcome" true (stop.Interp.outcome = stop'.Interp.outcome)

let test_event_stream_consistent () =
  let img = Tea_workloads.Micro.nested_loop ~outer:3 ~inner:4 () in
  let prev_next = ref None in
  let violations = ref 0 in
  let _ =
    Interp.run
      ~on_event:(fun ev ->
        (match !prev_next with
        | Some expected when expected <> ev.Interp.pc -> incr violations
        | _ -> ());
        prev_next := Some ev.Interp.next_pc)
      img
  in
  check Alcotest.int "event chain has no gaps" 0 !violations

(* Reference-model property: random straight-line ALU programs on EAX
   compute the same result as a direct OCaml evaluation. *)
let prop_alu_reference =
  let module W = Tea_util.Word32 in
  let op_gen =
    QCheck.Gen.(
      oneof
        [
          map (fun n -> `Add n) (int_range 0 10000);
          map (fun n -> `Sub n) (int_range 0 10000);
          map (fun n -> `Xor n) (int_range 0 0xFFFF);
          map (fun n -> `And n) (int_range 0 0xFFFF);
          map (fun n -> `Or n) (int_range 0 0xFFFF);
          map (fun n -> `Shl n) (int_range 0 4);
          map (fun n -> `Mul n) (int_range 0 50);
          return `Inc;
          return `Dec;
          return `Neg;
        ])
  in
  let gen =
    QCheck.make
      QCheck.Gen.(
        pair (int_range (-1000) 1000) (list_size (int_range 1 30) op_gen))
  in
  QCheck.Test.make ~name:"ALU agrees with reference evaluation" ~count:200 gen
    (fun (init, ops) ->
      let insn_of = function
        | `Add n -> I.Alu (I.Add, reg Reg.EAX, imm n)
        | `Sub n -> I.Alu (I.Sub, reg Reg.EAX, imm n)
        | `Xor n -> I.Alu (I.Xor, reg Reg.EAX, imm n)
        | `And n -> I.Alu (I.And, reg Reg.EAX, imm n)
        | `Or n -> I.Alu (I.Or, reg Reg.EAX, imm n)
        | `Shl n -> I.Shift (I.Shl, reg Reg.EAX, n)
        | `Mul n -> I.Imul (Reg.EAX, imm n)
        | `Inc -> I.Inc (reg Reg.EAX)
        | `Dec -> I.Dec (reg Reg.EAX)
        | `Neg -> I.Neg (reg Reg.EAX)
      in
      let model acc = function
        | `Add n -> W.add acc n
        | `Sub n -> W.sub acc n
        | `Xor n -> W.logxor acc n
        | `And n -> W.logand acc n
        | `Or n -> W.logor acc n
        | `Shl n -> W.shl acc n
        | `Mul n -> W.mul acc n
        | `Inc -> W.add acc 1
        | `Dec -> W.sub acc 1
        | `Neg -> W.neg acc
      in
      let expected = List.fold_left model (W.norm init) ops in
      let actual =
        compute ((I.Mov (reg Reg.EAX, imm init) :: List.map insn_of ops))
      in
      actual = expected)

let () =
  Alcotest.run "tea_machine"
    [
      ( "memory",
        [
          Alcotest.test_case "default zero" `Quick test_memory_default_zero;
          Alcotest.test_case "write/read" `Quick test_memory_write_read;
          Alcotest.test_case "copy" `Quick test_memory_copy_independent;
          Alcotest.test_case "normalization" `Quick test_memory_word_normalized;
        ] );
      ( "cost",
        [
          Alcotest.test_case "positive" `Quick test_cost_positive;
          Alcotest.test_case "rep scales" `Quick test_cost_rep_scales;
          Alcotest.test_case "memory traffic" `Quick test_cost_mem_traffic;
        ] );
      ( "alu",
        [
          Alcotest.test_case "mov" `Quick test_mov_imm;
          Alcotest.test_case "alu ops" `Quick test_alu_ops;
          Alcotest.test_case "inc/dec/neg" `Quick test_inc_dec_neg;
          Alcotest.test_case "imul/shifts" `Quick test_imul_shifts;
          Alcotest.test_case "lea" `Quick test_lea;
          Alcotest.test_case "wraparound" `Quick test_wraparound;
        ] );
      ( "memory-ops",
        [
          Alcotest.test_case "memory operands" `Quick test_memory_operands;
          Alcotest.test_case "push/pop" `Quick test_push_pop;
        ] );
      ( "control",
        [
          Alcotest.test_case "signed conditions" `Quick test_conditions_signed;
          Alcotest.test_case "unsigned conditions" `Quick test_conditions_unsigned;
          Alcotest.test_case "sign flag" `Quick test_conditions_sign_flag;
          Alcotest.test_case "inc preserves carry" `Quick test_inc_preserves_carry;
          Alcotest.test_case "call/ret" `Quick test_call_ret;
          Alcotest.test_case "indirect jump" `Quick test_indirect_jump_table;
        ] );
      ( "system",
        [
          Alcotest.test_case "rep movs" `Quick test_rep_movs;
          Alcotest.test_case "rep stos" `Quick test_rep_stos;
          Alcotest.test_case "exit code" `Quick test_exit_code;
          Alcotest.test_case "halt" `Quick test_halt;
          Alcotest.test_case "fuel" `Quick test_fuel;
          Alcotest.test_case "fault" `Quick test_fault_bad_fetch;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "step = run" `Quick test_step_matches_run;
          Alcotest.test_case "event stream" `Quick test_event_stream_consistent;
          QCheck_alcotest.to_alcotest prop_alu_reference;
        ] );
    ]
