open Tea_isa
module I = Insn
module O = Operand
module Block = Tea_cfg.Block
module Trace = Tea_traces.Trace
module Opt = Tea_opt.Opt

let check = Alcotest.check

let reg r = O.Reg r
let imm n = O.Imm n
let mem a = O.mem a

(* Build a single-TBB trace from an instruction list (terminated by jmp). *)
let trace_of insns =
  let all = insns @ [ I.Jmp (I.Abs 0x100) ] in
  let block = Block.make Block.Branch (List.mapi (fun i x -> (0x100 + i, x)) all) in
  Trace.make ~id:0 ~kind:"test" [| block |] [| [] |]

(* A two-TBB chain. *)
let chain_of insns1 insns2 =
  let b1 =
    Block.make Block.Branch
      (List.mapi (fun i x -> (0x100 + i, x)) (insns1 @ [ I.Jcc (Cond.E, I.Abs 0x300) ]))
  in
  let b2 =
    Block.make Block.Branch
      (List.mapi (fun i x -> (0x200 + i, x)) (insns2 @ [ I.Jmp (I.Abs 0x100) ]))
  in
  Trace.make ~id:0 ~kind:"test" [| b1; b2 |] [| [ 1 ]; [] |]

let kinds trace = List.map (fun f -> f.Opt.kind) (Opt.analyze trace)

(* ---------------- strength reduction ---------------- *)

let test_strength_reduction () =
  let t = trace_of [ I.Imul (Reg.EAX, imm 8); I.Alu (I.Add, reg Reg.EAX, imm 1) ] in
  check Alcotest.bool "found" true (List.mem Opt.Strength_reduction (kinds t))

let test_strength_reduction_non_power () =
  let t = trace_of [ I.Imul (Reg.EAX, imm 6); I.Alu (I.Add, reg Reg.EAX, imm 1) ] in
  check Alcotest.bool "not found" false (List.mem Opt.Strength_reduction (kinds t))

let test_strength_reduction_blocked_by_live_flags () =
  (* the jcc right after the imul reads its flags: no rewrite *)
  let t = trace_of [ I.Imul (Reg.EAX, imm 8) ] in
  check Alcotest.bool "flags live" false
    (List.mem Opt.Strength_reduction
       (List.map (fun f -> f.Opt.kind)
          (Opt.analyze
             (let b =
                Block.make Block.Branch
                  [ (0x100, I.Imul (Reg.EAX, imm 8)); (0x104, I.Jcc (Cond.E, I.Abs 0x100)) ]
              in
              Trace.make ~id:0 ~kind:"t" [| b |] [| [] |]))));
  (* ...but with a flag-writer in between it is fine *)
  check Alcotest.bool "flags dead" true (List.mem Opt.Strength_reduction (kinds t))

(* ---------------- combine immediates ---------------- *)

let test_combine_adjacent () =
  let t =
    trace_of [ I.Alu (I.Add, reg Reg.EAX, imm 3); I.Alu (I.Add, reg Reg.EAX, imm 4) ]
  in
  check Alcotest.bool "found" true (List.mem Opt.Combine_immediates (kinds t))

let test_combine_different_regs () =
  let t =
    trace_of [ I.Alu (I.Add, reg Reg.EAX, imm 3); I.Alu (I.Add, reg Reg.EBX, imm 4) ]
  in
  check Alcotest.bool "different registers" false
    (List.mem Opt.Combine_immediates (kinds t))

let test_combine_interrupted () =
  let t =
    trace_of
      [
        I.Alu (I.Add, reg Reg.EAX, imm 3);
        I.Mov (reg Reg.EAX, imm 9);
        I.Alu (I.Add, reg Reg.EAX, imm 4);
      ]
  in
  check Alcotest.bool "clobbered between" false
    (List.mem Opt.Combine_immediates (kinds t))

(* ---------------- redundant load ---------------- *)

let test_redundant_load () =
  let t =
    trace_of
      [
        I.Mov (reg Reg.EBX, mem 0x9000);
        I.Alu (I.Add, reg Reg.EAX, reg Reg.EBX);
        I.Mov (reg Reg.ECX, mem 0x9000);
      ]
  in
  let fs = Opt.analyze t in
  (match List.find_opt (fun f -> f.Opt.kind = Opt.Redundant_load) fs with
  | Some f ->
      check Alcotest.int "at the reload" 2 f.Opt.insn_index;
      check Alcotest.bool "positive savings" true (f.Opt.saved_cycles > 0)
  | None -> Alcotest.fail "expected redundant load")

let test_redundant_load_killed_by_store () =
  let t =
    trace_of
      [
        I.Mov (reg Reg.EBX, mem 0x9000);
        I.Mov (mem 0x9100, reg Reg.EAX);   (* may alias: kills *)
        I.Mov (reg Reg.ECX, mem 0x9000);
      ]
  in
  check Alcotest.bool "store kills" false (List.mem Opt.Redundant_load (kinds t))

let test_redundant_load_killed_by_reg_write () =
  let t =
    trace_of
      [
        I.Mov (reg Reg.EBX, mem 0x9000);
        I.Mov (reg Reg.EBX, imm 1);         (* value register clobbered *)
        I.Mov (reg Reg.ECX, mem 0x9000);
      ]
  in
  check Alcotest.bool "reg write kills" false (List.mem Opt.Redundant_load (kinds t))

let test_redundant_load_killed_by_addr_reg_write () =
  let m = O.mem ~base:Reg.ESI 0 in
  let t =
    trace_of
      [
        I.Mov (reg Reg.EBX, m);
        I.Alu (I.Add, reg Reg.ESI, imm 4);  (* address register changed *)
        I.Mov (reg Reg.ECX, m);
      ]
  in
  check Alcotest.bool "address change kills" false
    (List.mem Opt.Redundant_load (kinds t))

let test_redundant_load_killed_by_call () =
  let t =
    trace_of
      [
        I.Mov (reg Reg.EBX, mem 0x9000);
        I.Call (I.Abs 0x5000);
        I.Mov (reg Reg.ECX, mem 0x9000);
      ]
  in
  check Alcotest.bool "call is a barrier" false (List.mem Opt.Redundant_load (kinds t))

let test_redundant_load_across_chain () =
  (* superblock scope: the reload sits in the next TBB of the chain *)
  let t =
    chain_of
      [ I.Mov (reg Reg.EBX, mem 0x9000); I.Test (reg Reg.EBX, reg Reg.EBX) ]
      [ I.Mov (reg Reg.ECX, mem 0x9000) ]
  in
  let fs = Opt.analyze t in
  match List.find_opt (fun f -> f.Opt.kind = Opt.Redundant_load) fs with
  | Some f -> check Alcotest.int "in second TBB" 1 f.Opt.tbb_index
  | None -> Alcotest.fail "expected cross-TBB redundant load"

let test_store_establishes_mapping () =
  (* mov [m], ebx then mov ecx, [m] is redundant (value still in ebx) *)
  let t =
    trace_of [ I.Mov (mem 0x9000, reg Reg.EBX); I.Mov (reg Reg.ECX, mem 0x9000) ]
  in
  check Alcotest.bool "store-to-load forwarding" true
    (List.mem Opt.Redundant_load (kinds t))

(* ---------------- dead store ---------------- *)

let test_dead_store () =
  let t =
    trace_of [ I.Mov (mem 0x9000, reg Reg.EAX); I.Mov (mem 0x9000, reg Reg.EBX) ]
  in
  let fs = Opt.analyze t in
  (match List.find_opt (fun f -> f.Opt.kind = Opt.Dead_store) fs with
  | Some f -> check Alcotest.int "first store flagged" 0 f.Opt.insn_index
  | None -> Alcotest.fail "expected dead store")

let test_store_not_dead_if_read () =
  let t =
    trace_of
      [
        I.Mov (mem 0x9000, reg Reg.EAX);
        I.Alu (I.Add, reg Reg.ECX, mem 0x9100);  (* some read in between *)
        I.Mov (mem 0x9000, reg Reg.EBX);
      ]
  in
  check Alcotest.bool "read intervenes" false (List.mem Opt.Dead_store (kinds t))

let test_store_not_dead_other_address () =
  let t =
    trace_of [ I.Mov (mem 0x9000, reg Reg.EAX); I.Mov (mem 0x9004, reg Reg.EBX) ]
  in
  check Alcotest.bool "different word" false (List.mem Opt.Dead_store (kinds t))

(* ---------------- weighting ---------------- *)

let test_weighted_savings () =
  (* a loop trace with one opportunity, replayed a known number of times *)
  let t =
    let insns =
      [
        (0x100, I.Imul (Reg.EAX, imm 4));
        (0x104, I.Alu (I.Add, reg Reg.EAX, imm 1));
        (0x108, I.Jcc (Cond.NE, I.Abs 0x100));
      ]
    in
    let b = Block.make Block.Branch insns in
    Trace.make ~id:0 ~kind:"t" [| b |] [| [ 0 ] |]
  in
  let auto = Tea_core.Builder.build [ t ] in
  let trans = Tea_core.Transition.create Tea_core.Transition.config_global_local auto in
  let rep = Tea_core.Replayer.create trans in
  for _ = 1 to 10 do
    Tea_core.Replayer.feed_addr rep ~insns:3 0x100
  done;
  let savings = Opt.weighted rep t in
  check Alcotest.bool "found something" true (savings.Opt.findings <> []);
  check Alcotest.int "weighted = static x execs"
    (savings.Opt.static_cycles * 10)
    savings.Opt.expected_cycles

let test_render () =
  let t = trace_of [ I.Imul (Reg.EAX, imm 8); I.Alu (I.Add, reg Reg.EAX, imm 1) ] in
  let auto = Tea_core.Builder.build [ t ] in
  let trans = Tea_core.Transition.create Tea_core.Transition.config_global_local auto in
  let rep = Tea_core.Replayer.create trans in
  let s = Opt.render t (Opt.weighted rep t) in
  check Alcotest.bool "mentions the pass" true
    (let needle = "strength-reduction" in
     let nh = String.length s and nn = String.length needle in
     let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
     go 0)

let () =
  Alcotest.run "tea_opt"
    [
      ( "strength",
        [
          Alcotest.test_case "power of two" `Quick test_strength_reduction;
          Alcotest.test_case "non power" `Quick test_strength_reduction_non_power;
          Alcotest.test_case "flag liveness" `Quick test_strength_reduction_blocked_by_live_flags;
        ] );
      ( "combine",
        [
          Alcotest.test_case "adjacent" `Quick test_combine_adjacent;
          Alcotest.test_case "different regs" `Quick test_combine_different_regs;
          Alcotest.test_case "interrupted" `Quick test_combine_interrupted;
        ] );
      ( "redundant-load",
        [
          Alcotest.test_case "basic" `Quick test_redundant_load;
          Alcotest.test_case "store kills" `Quick test_redundant_load_killed_by_store;
          Alcotest.test_case "reg write kills" `Quick test_redundant_load_killed_by_reg_write;
          Alcotest.test_case "addr reg kills" `Quick test_redundant_load_killed_by_addr_reg_write;
          Alcotest.test_case "call barrier" `Quick test_redundant_load_killed_by_call;
          Alcotest.test_case "across chain" `Quick test_redundant_load_across_chain;
          Alcotest.test_case "store forwarding" `Quick test_store_establishes_mapping;
        ] );
      ( "dead-store",
        [
          Alcotest.test_case "basic" `Quick test_dead_store;
          Alcotest.test_case "read intervenes" `Quick test_store_not_dead_if_read;
          Alcotest.test_case "other address" `Quick test_store_not_dead_other_address;
        ] );
      ( "weighting",
        [
          Alcotest.test_case "weighted savings" `Quick test_weighted_savings;
          Alcotest.test_case "render" `Quick test_render;
        ] );
    ]
