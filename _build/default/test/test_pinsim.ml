module Pin = Tea_pinsim.Pin
module Edge_filter = Tea_pinsim.Edge_filter
module Pintool_replay = Tea_pinsim.Pintool_replay
module Pintool_record = Tea_pinsim.Pintool_record
module Overhead = Tea_pinsim.Overhead
module Cost_params = Tea_pinsim.Cost_params
module Block = Tea_cfg.Block
module Interp = Tea_machine.Interp
module Trace_set = Tea_traces.Trace_set

let check = Alcotest.check

let mret = Option.get (Tea_traces.Registry.by_name "mret")

let mret_traces image =
  let r = Tea_dbt.Stardbt.record ~strategy:mret image in
  (Trace_set.to_list r.Tea_dbt.Stardbt.set, r)

(* ---------------- Pin runner ---------------- *)

let test_pin_framework_costs () =
  let img = Tea_workloads.Micro.branchy_loop () in
  let stats = Pin.run img in
  check Alcotest.bool "jit > 0" true (stats.Pin.jit_cycles > 0);
  check Alcotest.bool "framework >= native" true
    (stats.Pin.framework_cycles >= stats.Pin.native_cycles);
  check Alcotest.bool "jitted blocks" true (stats.Pin.blocks_jitted > 0);
  check Alcotest.bool "edges ~ blocks" true
    (abs (stats.Pin.edge_execs - stats.Pin.block_execs) <= 1)

let test_pin_native_matches_interp () =
  let img = Tea_workloads.Micro.nested_loop () in
  let stats = Pin.run img in
  let m, _ = Interp.run img in
  check Alcotest.int "same native cycles" (Interp.cycles m) stats.Pin.native_cycles;
  check Alcotest.int "native_cycles helper" (Interp.cycles m) (Pin.native_cycles img)

let test_pin_jit_once_per_block () =
  let img = Tea_workloads.Micro.nested_loop () in
  let s1 = Pin.run img in
  let s2 = Pin.run img in
  check Alcotest.int "deterministic jit" s1.Pin.jit_cycles s2.Pin.jit_cycles;
  (* jit cost bounded by static footprint *)
  let static = Tea_isa.Image.instruction_count img in
  check Alcotest.bool "jit bounded" true
    (s1.Pin.jit_cycles <= Cost_params.default.Cost_params.jit_per_insn * static * 2)

let test_pin_expanded_counting () =
  let img = Tea_workloads.Micro.rep_copy ~words:16 ~passes:5 () in
  let stats = Pin.run img in
  let m, _ = Interp.run img in
  (* Pin counts each REP iteration *)
  check Alcotest.bool "pin >= dbt count" true
    (stats.Pin.total_insns > Interp.dyn_instrs m)

(* ---------------- Edge filter (§4.1) ---------------- *)

let logical_stream image =
  let out = ref [] in
  let filter =
    Edge_filter.create ~emit:(fun b ~expanded -> out := (b.Block.start, expanded) :: !out)
  in
  let _ = Pin.run ~tool:(Edge_filter.callbacks filter) image in
  Edge_filter.flush filter;
  List.rev !out

let stardbt_stream image =
  let out = ref [] in
  let cb =
    {
      Tea_cfg.Discovery.on_block =
        (fun b -> out := (b.Block.start, Block.n_insns b) :: !out);
      Tea_cfg.Discovery.on_edge = (fun _ _ -> ());
    }
  in
  let _ = Tea_cfg.Discovery.run ~policy:Tea_cfg.Discovery.Stardbt image cb in
  List.rev !out

let test_edge_filter_matches_stardbt_boundaries () =
  (* THE §4.1 guarantee: on a REP-heavy program, the merged Pin stream sees
     exactly the block starts StarDBT saw. *)
  let img = Tea_workloads.Micro.rep_copy ~words:16 ~passes:5 () in
  let pin_starts = List.map fst (logical_stream img) in
  let dbt_starts = List.map fst (stardbt_stream img) in
  check Alcotest.(list int) "same transition sequence" dbt_starts pin_starts

let test_edge_filter_expanded_counts () =
  let img = Tea_workloads.Micro.rep_copy ~words:16 ~passes:2 () in
  let pin = logical_stream img in
  let dbt = stardbt_stream img in
  let sum l = List.fold_left (fun a (_, n) -> a + n) 0 l in
  (* Pin's expanded counts exceed StarDBT's (REP iterations), with equal
     block sequences — why the paper reports coverage, not counts *)
  check Alcotest.bool "expanded bigger" true (sum pin > sum dbt)

let test_edge_filter_plain_program_identity () =
  (* without REP/cpuid the two streams are identical in counts too *)
  let img = Tea_workloads.Micro.branchy_loop () in
  check Alcotest.bool "identical" true (logical_stream img = stardbt_stream img)

(* ---------------- Replay pintool ---------------- *)

let test_replay_coverage_exceeds_dbt () =
  let img = Tea_workloads.Micro.list_scan () in
  let traces, dbt = mret_traces img in
  let result, _ = Pintool_replay.replay ~traces img in
  check Alcotest.bool "replay >= record coverage" true
    (result.Pintool_replay.coverage >= dbt.Tea_dbt.Stardbt.coverage);
  check Alcotest.bool "slowdown > 1" true (result.Pintool_replay.slowdown > 1.0)

let test_replay_empty_traces () =
  let img = Tea_workloads.Micro.branchy_loop () in
  let result, _ = Pintool_replay.replay ~traces:[] img in
  check Alcotest.(float 0.0001) "zero coverage" 0.0 result.Pintool_replay.coverage;
  check Alcotest.int "no enters" 0 result.Pintool_replay.trace_enters;
  check Alcotest.bool "still slow (the Empty anomaly)" true
    (result.Pintool_replay.slowdown > 2.0)

let test_replay_cost_decomposition () =
  let img = Tea_workloads.Micro.branchy_loop () in
  let traces, _ = mret_traces img in
  let r, _ = Pintool_replay.replay ~traces img in
  check Alcotest.int "total = framework + tool"
    r.Pintool_replay.total_cycles
    (r.Pintool_replay.framework_cycles + r.Pintool_replay.tool_cycles)

(* ---------------- Record pintool ---------------- *)

let test_record_under_pin () =
  let img = Tea_workloads.Micro.nested_loop ~outer:40 ~inner:50 () in
  let r, _ = Pintool_record.record ~strategy:mret img in
  check Alcotest.bool "traces" true (List.length r.Pintool_record.traces > 0);
  check Alcotest.bool "coverage" true (r.Pintool_record.coverage > 0.5);
  check Alcotest.bool "automaton bytes" true (r.Pintool_record.automaton_bytes > 16)

let test_record_vs_replay_coverage_close () =
  (* recording discovers traces as it goes; replaying them afterwards can
     only do better *)
  let img = Tea_workloads.Micro.list_scan () in
  let rec_result, _ = Pintool_record.record ~strategy:mret img in
  let rep_result, _ =
    Pintool_replay.replay ~traces:rec_result.Pintool_record.traces img
  in
  check Alcotest.bool "replay >= record" true
    (rep_result.Pintool_replay.coverage >= rec_result.Pintool_record.coverage -. 0.001)

(* ---------------- Overhead (Table 4 shapes) ---------------- *)

let test_overhead_row_shape () =
  let img = Tea_workloads.Spec2000.(image (Option.get (by_name "181.mcf"))) in
  let traces, _ = mret_traces img in
  let row = Overhead.measure ~traces img in
  check Alcotest.(float 0.001) "native = 1" 1.0 row.Overhead.native;
  check Alcotest.bool "without pintool smallest" true
    (row.Overhead.without_pintool < row.Overhead.global_local);
  check Alcotest.bool "without pintool > 1" true (row.Overhead.without_pintool > 1.0);
  (* the §4.2 counter-intuitive result: Empty is slower than replaying *)
  check Alcotest.bool "Empty anomaly" true
    (row.Overhead.empty > row.Overhead.global_local);
  check Alcotest.bool "all configs slower than bare pin" true
    (row.Overhead.no_global_local > row.Overhead.without_pintool
    && row.Overhead.global_no_local > row.Overhead.without_pintool
    && row.Overhead.global_local > row.Overhead.without_pintool)

let test_overhead_local_cache_helps () =
  (* with the B+ tree fixed, adding the local cache must not hurt *)
  let img = Tea_workloads.Spec2000.(image (Option.get (by_name "181.mcf"))) in
  let traces, _ = mret_traces img in
  let row = Overhead.measure ~traces img in
  check Alcotest.bool "cache <= no cache" true
    (row.Overhead.global_local <= row.Overhead.global_no_local +. 0.01)

let () =
  Alcotest.run "tea_pinsim"
    [
      ( "pin",
        [
          Alcotest.test_case "framework costs" `Quick test_pin_framework_costs;
          Alcotest.test_case "native cycles" `Quick test_pin_native_matches_interp;
          Alcotest.test_case "jit once" `Quick test_pin_jit_once_per_block;
          Alcotest.test_case "expanded counting" `Quick test_pin_expanded_counting;
        ] );
      ( "edge-filter",
        [
          Alcotest.test_case "matches stardbt" `Quick test_edge_filter_matches_stardbt_boundaries;
          Alcotest.test_case "expanded counts" `Quick test_edge_filter_expanded_counts;
          Alcotest.test_case "identity without splits" `Quick
            test_edge_filter_plain_program_identity;
        ] );
      ( "replay",
        [
          Alcotest.test_case "coverage >= dbt" `Quick test_replay_coverage_exceeds_dbt;
          Alcotest.test_case "empty traces" `Quick test_replay_empty_traces;
          Alcotest.test_case "cost decomposition" `Quick test_replay_cost_decomposition;
        ] );
      ( "record",
        [
          Alcotest.test_case "records" `Quick test_record_under_pin;
          Alcotest.test_case "record vs replay" `Quick test_record_vs_replay_coverage_close;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "row shape" `Quick test_overhead_row_shape;
          Alcotest.test_case "cache helps" `Quick test_overhead_local_cache_helps;
        ] );
    ]
