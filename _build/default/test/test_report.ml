module Stats = Tea_report.Stats
module Table = Tea_report.Table
module Experiments = Tea_report.Experiments
module Overhead = Tea_pinsim.Overhead

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---------------- Stats ---------------- *)

let test_geomean () =
  check Alcotest.(float 0.0001) "identity" 4.0 (Stats.geomean [ 4.0 ]);
  check Alcotest.(float 0.0001) "2 and 8" 4.0 (Stats.geomean [ 2.0; 8.0 ]);
  check Alcotest.(float 0.0001) "empty" 0.0 (Stats.geomean []);
  check Alcotest.(float 0.0001) "skips zeros" 4.0 (Stats.geomean [ 0.0; 2.0; 8.0 ])

let test_mean () =
  check Alcotest.(float 0.0001) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check Alcotest.(float 0.0001) "empty" 0.0 (Stats.mean [])

let test_formatting () =
  check Alcotest.string "percent" "77%" (Stats.percent 0.771);
  check Alcotest.string "percent1" "99.8%" (Stats.percent1 0.998);
  check Alcotest.string "ratio" "13.53" (Stats.ratio 13.529)

let test_kb () =
  check Alcotest.int "rounds up" 1 (Stats.kb 1);
  check Alcotest.int "exact" 1 (Stats.kb 1024);
  check Alcotest.int "over" 2 (Stats.kb 1025)

let test_savings () =
  check Alcotest.(float 0.0001) "80%" 0.8 (Stats.savings ~dbt:100 ~tea:20);
  check Alcotest.(float 0.0001) "degenerate" 0.0 (Stats.savings ~dbt:0 ~tea:5)

(* ---------------- Table ---------------- *)

let test_table_render () =
  let s = Table.render ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "bb"; "22" ] ] in
  check Alcotest.bool "header" true (contains s "name");
  check Alcotest.bool "rule" true (contains s "----");
  (* right-aligned numeric column *)
  check Alcotest.bool "alignment" true (contains s " 1")

let test_table_arity () =
  Alcotest.check_raises "row arity" (Invalid_argument "Table.render: row arity")
    (fun () -> ignore (Table.render ~header:[ "a"; "b" ] [ [ "only" ] ]))

(* ---------------- Experiments (reduced subset) ---------------- *)

let benches =
  lazy (Experiments.prepare ~benchmarks:[ "171.swim"; "181.mcf" ] ())

let test_table1_shape () =
  let rows = Experiments.table1 (Lazy.force benches) in
  check Alcotest.int "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      check Alcotest.int "three strategies" 3 (List.length r.Experiments.cells);
      List.iter
        (fun (name, c) ->
          check Alcotest.bool (name ^ " dbt > tea") true
            (c.Experiments.dbt_bytes > c.Experiments.tea_bytes);
          check Alcotest.bool
            (name ^ " savings in band")
            true
            (c.Experiments.saving > 0.5 && c.Experiments.saving < 0.95))
        r.Experiments.cells)
    rows

let test_table2_shape () =
  let rows = Experiments.table2 (Lazy.force benches) in
  List.iter
    (fun r ->
      check Alcotest.bool "tea coverage >= dbt" true
        (r.Experiments.tea_coverage >= r.Experiments.dbt_coverage -. 0.02);
      check Alcotest.bool "tea slower than dbt" true
        (r.Experiments.tea_mcycles > r.Experiments.dbt_mcycles))
    rows

let test_table3_shape () =
  let rows = Experiments.table3 (Lazy.force benches) in
  List.iter
    (fun r ->
      check Alcotest.bool "recorded traces" true (r.Experiments.n_traces > 0);
      check Alcotest.bool "coverage sane" true
        (r.Experiments.pin_coverage > 0.3 && r.Experiments.pin_coverage <= 1.0))
    rows

let test_table4_shape () =
  let rows = Experiments.table4 (Lazy.force benches) in
  List.iter
    (fun r ->
      let row = r.Experiments.row in
      check Alcotest.bool "empty > global/local" true
        (row.Overhead.empty > row.Overhead.global_local);
      check Alcotest.bool "pintool costs" true
        (row.Overhead.global_local > row.Overhead.without_pintool))
    rows

let test_renderings () =
  let b = Lazy.force benches in
  let t1 = Experiments.render_table1 (Experiments.table1 b) in
  check Alcotest.bool "geomean row" true (contains t1 "GeoMean");
  check Alcotest.bool "savings column" true (contains t1 "Savings");
  let t2 = Experiments.render_table2 (Experiments.table2 b) in
  check Alcotest.bool "replaying title" true (contains t2 "Replaying");
  let t3 = Experiments.render_table3 (Experiments.table3 b) in
  check Alcotest.bool "recording title" true (contains t3 "Recording");
  let t4 = Experiments.render_table4 (Experiments.table4 b) in
  check Alcotest.bool "config columns" true (contains t4 "Global / Local")

(* ---------------- Ablations ---------------- *)

module Ablations = Tea_report.Ablations

let test_ablation_strategies () =
  let rows = Ablations.strategies ~benchmarks:[ "181.mcf" ] () in
  (* four strategies including mfet *)
  check Alcotest.int "four strategies" 4 (List.length rows);
  List.iter
    (fun r ->
      check Alcotest.bool (r.Ablations.s_strategy ^ " saves memory") true
        (r.Ablations.tea_bytes < r.Ablations.dbt_bytes))
    rows;
  check Alcotest.bool "mfet present" true
    (List.exists (fun r -> r.Ablations.s_strategy = "mfet") rows)

let test_ablation_cache_slots () =
  let rows = Ablations.cache_slots ~benchmark:"181.mcf" ~slots:[ 1; 8 ] () in
  match rows with
  | [ small; big ] ->
      check Alcotest.bool "bigger cache, better hit rate" true
        (big.Ablations.hit_rate >= small.Ablations.hit_rate -. 0.001);
      check Alcotest.bool "bigger cache not slower" true
        (big.Ablations.slowdown <= small.Ablations.slowdown +. 0.01)
  | _ -> Alcotest.fail "expected two rows"

let test_ablation_threshold () =
  let rows = Ablations.hot_threshold ~benchmark:"181.mcf" ~thresholds:[ 25; 1000 ] () in
  match rows with
  | [ low; high ] ->
      check Alcotest.bool "higher threshold, fewer traces" true
        (high.Ablations.t_traces <= low.Ablations.t_traces);
      check Alcotest.bool "higher threshold, less coverage" true
        (high.Ablations.t_coverage <= low.Ablations.t_coverage +. 0.001)
  | _ -> Alcotest.fail "expected two rows"

let test_ablation_renderings () =
  let s = Ablations.render_strategies (Ablations.strategies ~benchmarks:[ "181.mcf" ] ()) in
  check Alcotest.bool "has mfet" true (contains s "mfet")

let test_prepare_unknown_benchmark () =
  Alcotest.check_raises "unknown" (Invalid_argument "Experiments.prepare: 999.x")
    (fun () -> ignore (Experiments.prepare ~benchmarks:[ "999.x" ] ()))

let () =
  Alcotest.run "tea_report"
    [
      ( "stats",
        [
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "formatting" `Quick test_formatting;
          Alcotest.test_case "kb" `Quick test_kb;
          Alcotest.test_case "savings" `Quick test_savings;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table1" `Slow test_table1_shape;
          Alcotest.test_case "table2" `Slow test_table2_shape;
          Alcotest.test_case "table3" `Slow test_table3_shape;
          Alcotest.test_case "table4" `Slow test_table4_shape;
          Alcotest.test_case "renderings" `Slow test_renderings;
          Alcotest.test_case "unknown benchmark" `Quick test_prepare_unknown_benchmark;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "strategies" `Slow test_ablation_strategies;
          Alcotest.test_case "cache slots" `Slow test_ablation_cache_slots;
          Alcotest.test_case "hot threshold" `Slow test_ablation_threshold;
          Alcotest.test_case "renderings" `Slow test_ablation_renderings;
        ] );
    ]
