(* Protocol-level tests: drive the Recorder.STRATEGY hooks directly with a
   synthetic block universe, independent of any interpreter run. This pins
   down the Algorithm 2 contract each strategy implements. *)

open Tea_isa
module I = Insn
module Block = Tea_cfg.Block
module Recorder = Tea_traces.Recorder
module Trace = Tea_traces.Trace

let check = Alcotest.check

(* A loop universe: A(0x100) -> B(0x200) -> A, with side exit B -> C(0x300)
   and C -> A. Blocks end in branches whose exact targets don't matter for
   the strategy protocol. *)
let blk addr =
  Block.make Block.Branch [ (addr, I.Jcc (Cond.E, I.Abs 0x100)) ]

let a = blk 0x100
let b = blk 0x200
let c = blk 0x300

let config threshold =
  { Recorder.default_config with Recorder.hot_threshold = threshold }

(* ---------------- MRET protocol ---------------- *)

module Mret = Tea_traces.Mret

let test_mret_trigger_threshold () =
  let m = Mret.create (config 3) in
  (* backward edge B -> A bumps A's counter; fires on the 3rd *)
  check Alcotest.bool "1" false (Mret.trigger m ~current:(Some b) ~next:a);
  check Alcotest.bool "2" false (Mret.trigger m ~current:(Some b) ~next:a);
  check Alcotest.bool "3 fires" true (Mret.trigger m ~current:(Some b) ~next:a)

let test_mret_forward_edge_never_triggers () =
  let m = Mret.create (config 1) in
  (* A -> B is a forward edge: no candidate, no matter how often *)
  for _ = 1 to 10 do
    check Alcotest.bool "forward" false (Mret.trigger m ~current:(Some a) ~next:b)
  done

let test_mret_first_block_never_triggers () =
  let m = Mret.create (config 1) in
  check Alcotest.bool "no current" false (Mret.trigger m ~current:None ~next:a)

let test_mret_records_cycle () =
  let m = Mret.create (config 1) in
  check Alcotest.bool "fires" true (Mret.trigger m ~current:(Some b) ~next:a);
  Mret.start m ~current:(Some b) ~next:a;
  (* executes A, then B, then back to A: cycle completes the trace *)
  (match Mret.add m ~current:a ~next:b with
  | `Continue -> ()
  | `Done _ -> Alcotest.fail "should continue");
  match Mret.add m ~current:b ~next:a with
  | `Done (Some trace) ->
      check Alcotest.int "two TBBs" 2 (Trace.n_tbbs trace);
      check Alcotest.int "entry A" 0x100 (Trace.entry trace);
      check Alcotest.(list int) "cycle back edge" [ 0 ]
        (Trace.successors trace (Trace.n_tbbs trace - 1));
      check Alcotest.bool "entry registered" true (Mret.is_trace_entry m 0x100)
  | _ -> Alcotest.fail "expected completed trace"

let test_mret_stops_at_existing_entry () =
  let m = Mret.create (config 1) in
  (* record a trace at A first *)
  ignore (Mret.trigger m ~current:(Some b) ~next:a);
  Mret.start m ~current:(Some b) ~next:a;
  ignore (Mret.add m ~current:a ~next:b);
  ignore (Mret.add m ~current:b ~next:a);
  (* a second trace from C must end when it reaches A (an entry) *)
  ignore (Mret.trigger m ~current:(Some b) ~next:c);
  ignore (Mret.trigger m ~current:(Some b) ~next:c);
  (* C is a forward target of B? 0x300 > 0x200, so use a backward source *)
  let d = blk 0x400 in
  check Alcotest.bool "c hot" true (Mret.trigger m ~current:(Some d) ~next:c);
  Mret.start m ~current:(Some d) ~next:c;
  match Mret.add m ~current:c ~next:a with
  | `Done (Some trace) ->
      check Alcotest.int "stopped before A" 1 (Trace.n_tbbs trace);
      check Alcotest.(list int) "no dangling edge" []
        (Trace.successors trace 0)
  | _ -> Alcotest.fail "expected completion at existing entry"

let test_mret_never_retriggers_entry () =
  let m = Mret.create (config 1) in
  ignore (Mret.trigger m ~current:(Some b) ~next:a);
  Mret.start m ~current:(Some b) ~next:a;
  ignore (Mret.add m ~current:a ~next:b);
  ignore (Mret.add m ~current:b ~next:a);
  (* A is now a trace entry: backward edges to it no longer trigger *)
  for _ = 1 to 5 do
    check Alcotest.bool "entry suppressed" false
      (Mret.trigger m ~current:(Some b) ~next:a)
  done

let test_mret_abort_salvages_two_blocks () =
  let m = Mret.create (config 1) in
  ignore (Mret.trigger m ~current:(Some b) ~next:a);
  Mret.start m ~current:(Some b) ~next:a;
  ignore (Mret.add m ~current:a ~next:b);
  (match Mret.abort m with
  | Some trace -> check Alcotest.int "salvaged" 2 (Trace.n_tbbs trace)
  | None -> Alcotest.fail "expected salvage");
  (* a single-block recording is dropped *)
  let m2 = Mret.create (config 1) in
  ignore (Mret.trigger m2 ~current:(Some b) ~next:a);
  Mret.start m2 ~current:(Some b) ~next:a;
  check Alcotest.bool "dropped" true (Mret.abort m2 = None)

(* ---------------- Tree strategy protocol ---------------- *)

module Tt = Tea_traces.Tree_strategy.Tt

let test_tt_trunk_protocol () =
  let t = Tt.create (config 1) in
  check Alcotest.bool "trunk fires" true (Tt.trigger t ~current:(Some b) ~next:a);
  Tt.start t ~current:(Some b) ~next:a;
  (match Tt.add t ~current:a ~next:b with
  | `Continue -> ()
  | `Done _ -> Alcotest.fail "trunk should continue");
  match Tt.add t ~current:b ~next:a with
  | `Done (Some trace) ->
      check Alcotest.int "root + path" 2 (Trace.n_tbbs trace);
      (* leaf loops back to the root *)
      check Alcotest.(list int) "back to anchor" [ 0 ] (Trace.successors trace 1)
  | _ -> Alcotest.fail "expected trunk completion"

let test_tt_extension_grows_same_id () =
  let t = Tt.create { (config 1) with Recorder.exit_threshold = 1 } in
  (* trunk A -> B -> A *)
  ignore (Tt.trigger t ~current:(Some b) ~next:a);
  Tt.start t ~current:(Some b) ~next:a;
  ignore (Tt.add t ~current:a ~next:b);
  let first =
    match Tt.add t ~current:b ~next:a with
    | `Done (Some tr) -> tr
    | _ -> Alcotest.fail "trunk"
  in
  (* shadow-follow: A (enter at root), then side exit A -> C *)
  check Alcotest.bool "follow trunk" false (Tt.trigger t ~current:(Some a) ~next:b);
  check Alcotest.bool "side exit fires" true (Tt.trigger t ~current:(Some b) ~next:c);
  Tt.start t ~current:(Some b) ~next:c;
  (match Tt.add t ~current:c ~next:a with
  | `Done (Some grown) ->
      check Alcotest.int "same trace id" first.Trace.id grown.Trace.id;
      check Alcotest.int "grew" 3 (Trace.n_tbbs grown)
  | _ -> Alcotest.fail "extension should complete at anchor");
  check Alcotest.int "one tree" 1 (List.length (Tt.traces t))

let test_tt_path_abort_on_unroll_bound () =
  let t =
    Tt.create { (config 1) with Recorder.exit_threshold = 1; max_inner_unroll = 2 }
  in
  ignore (Tt.trigger t ~current:(Some b) ~next:a);
  Tt.start t ~current:(Some b) ~next:a;
  ignore (Tt.add t ~current:a ~next:b);
  (* B -> D backward edges repeated: D is an inner loop crossed > 2 times *)
  let d = blk 0x180 in
  ignore (Tt.add t ~current:b ~next:d);
  ignore (Tt.add t ~current:d ~next:d);
  (match Tt.add t ~current:d ~next:d with
  | `Done None -> ()
  | `Done (Some _) -> Alcotest.fail "should not complete"
  | `Continue -> Alcotest.fail "unroll bound should abort");
  check Alcotest.int "trunk died with the path" 0 (List.length (Tt.traces t))

module Ctt = Tea_traces.Tree_strategy.Ctt

let test_ctt_closes_at_inner_header () =
  let t = Ctt.create (config 1) in
  (* make D a known loop header: D -> D backward edge observed while idle *)
  let d = blk 0x180 in
  ignore (Ctt.trigger t ~current:(Some d) ~next:d);
  (* now trunk at A; path walks D once, then sees D again: close at D *)
  ignore (Ctt.trigger t ~current:(Some b) ~next:a);
  Ctt.start t ~current:(Some b) ~next:a;
  ignore (Ctt.add t ~current:a ~next:d);
  match Ctt.add t ~current:d ~next:d with
  | `Done (Some trace) ->
      check Alcotest.int "A + D" 2 (Trace.n_tbbs trace);
      (* D's TBB (index 1) carries the back edge to itself *)
      check Alcotest.(list int) "inner back edge" [ 1 ] (Trace.successors trace 1)
  | _ -> Alcotest.fail "CTT should close at the inner header"

(* ---------------- MFET protocol ---------------- *)

module Mfet = Tea_traces.Mfet

let test_mfet_builds_from_profile () =
  let m = Mfet.create (config 2) in
  (* warm the edge profile: A -> B (x3), B -> A (x3); A -> C once *)
  for _ = 1 to 3 do
    ignore (Mfet.trigger m ~current:(Some a) ~next:b);
    ignore (Mfet.trigger m ~current:(Some b) ~next:a)
  done;
  ignore (Mfet.trigger m ~current:(Some a) ~next:c);
  check Alcotest.int "edge profile" 3 (Mfet.edge_count m ~src:0x100 ~dst:0x200);
  (* next backward B -> A crosses the threshold: trace built from profile *)
  let fired = Mfet.trigger m ~current:(Some b) ~next:a in
  check Alcotest.bool "fires" true fired;
  Mfet.start m ~current:(Some b) ~next:a;
  match Mfet.add m ~current:a ~next:b with
  | `Done (Some trace) ->
      check Alcotest.int "hot path A->B" 2 (Trace.n_tbbs trace);
      check Alcotest.(list int) "cyclic" [ 0 ] (Trace.successors trace 1)
  | _ -> Alcotest.fail "mfet publishes on first add"

(* ---------------- Online (Algorithm 2) protocol ---------------- *)

module Online = Tea_core.Online

let test_online_phase_machine () =
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let online =
    Online.create ~config:(config 2) strategy
  in
  check Alcotest.bool "starts executing" true (Online.phase online = Online.Executing);
  (* two B -> A backward transitions heat A; recording then starts *)
  Online.feed online b;
  Online.feed online a;
  Online.feed online b;
  Online.feed online a;   (* trigger fires here: phase -> Creating *)
  check Alcotest.bool "creating" true (Online.phase online = Online.Creating);
  Online.feed online b;   (* A..B recorded *)
  Online.feed online a;   (* cycle: trace done -> Executing *)
  check Alcotest.bool "back to executing" true (Online.phase online = Online.Executing);
  check Alcotest.int "one trace" 1 (List.length (Online.traces online));
  (* the automaton is live: the next A lands in the trace *)
  Online.feed online b;
  Online.feed online a;
  check Alcotest.bool "tea state in trace" true
    (Online.tea_state online <> Tea_core.Automaton.nte)

let () =
  Alcotest.run "tea_strategy_protocol"
    [
      ( "mret",
        [
          Alcotest.test_case "trigger threshold" `Quick test_mret_trigger_threshold;
          Alcotest.test_case "forward never triggers" `Quick
            test_mret_forward_edge_never_triggers;
          Alcotest.test_case "first block" `Quick test_mret_first_block_never_triggers;
          Alcotest.test_case "records cycle" `Quick test_mret_records_cycle;
          Alcotest.test_case "stops at entry" `Quick test_mret_stops_at_existing_entry;
          Alcotest.test_case "entry suppressed" `Quick test_mret_never_retriggers_entry;
          Alcotest.test_case "abort salvage" `Quick test_mret_abort_salvages_two_blocks;
        ] );
      ( "trees",
        [
          Alcotest.test_case "tt trunk" `Quick test_tt_trunk_protocol;
          Alcotest.test_case "tt extension" `Quick test_tt_extension_grows_same_id;
          Alcotest.test_case "tt unroll abort" `Quick test_tt_path_abort_on_unroll_bound;
          Alcotest.test_case "ctt inner close" `Quick test_ctt_closes_at_inner_header;
        ] );
      ( "mfet",
        [ Alcotest.test_case "profile build" `Quick test_mfet_builds_from_profile ] );
      ( "online",
        [ Alcotest.test_case "phase machine" `Quick test_online_phase_machine ] );
    ]
