open Tea_isa
module I = Insn
module O = Operand
module Block = Tea_cfg.Block
module Tbb = Tea_traces.Tbb
module Trace = Tea_traces.Trace
module Hotness = Tea_traces.Hotness
module Trace_set = Tea_traces.Trace_set
module Recorder = Tea_traces.Recorder
module Registry = Tea_traces.Registry
module Serialize = Tea_traces.Serialize
module Stardbt = Tea_dbt.Stardbt

let check = Alcotest.check

let block_at addr insns = Block.make Block.Branch (List.mapi (fun i x -> (addr + i, x)) insns)

let simple_block addr = block_at addr [ I.Jmp (I.Abs 0) ]

(* ---------------- Tbb ---------------- *)

let test_tbb () =
  let b = simple_block 0x100 in
  let tb = Tbb.make ~index:3 b in
  check Alcotest.int "start" 0x100 (Tbb.start tb);
  check Alcotest.int "n_insns" 1 (Tbb.n_insns tb);
  check Alcotest.int "bytes" 5 (Tbb.byte_len tb);
  Alcotest.check_raises "negative" (Invalid_argument "Tbb.make: negative index")
    (fun () -> ignore (Tbb.make ~index:(-1) b))

(* ---------------- Trace ---------------- *)

let test_trace_linear () =
  let blocks = [ simple_block 0x100; simple_block 0x200; simple_block 0x300 ] in
  let t = Trace.linear ~id:1 ~kind:"test" blocks in
  check Alcotest.int "entry" 0x100 (Trace.entry t);
  check Alcotest.int "n_tbbs" 3 (Trace.n_tbbs t);
  check Alcotest.(list int) "chain" [ 1 ] (Trace.successors t 0);
  check Alcotest.(list int) "last open" [] (Trace.successors t 2)

let test_trace_cycle () =
  let t = Trace.linear ~id:1 ~kind:"t" ~cycle:true [ simple_block 0x1; simple_block 0x10 ] in
  check Alcotest.(list int) "back edge" [ 0 ] (Trace.successors t 1);
  check Alcotest.(option int) "successor_on entry" (Some 0) (Trace.successor_on t 1 0x1);
  check Alcotest.(option int) "successor_on miss" None (Trace.successor_on t 1 0x99)

let test_trace_validation () =
  let b = simple_block 0x100 in
  (try
     ignore (Trace.make ~id:1 ~kind:"t" [||] [||]);
     Alcotest.fail "empty should raise"
   with Trace.Ill_formed _ -> ());
  (try
     ignore (Trace.make ~id:1 ~kind:"t" [| b |] [| [ 5 ] |]);
     Alcotest.fail "bad index should raise"
   with Trace.Ill_formed _ -> ());
  (* two successors with the same start address: nondeterministic DFA *)
  try
    ignore
      (Trace.make ~id:1 ~kind:"t"
         [| b; simple_block 0x200; simple_block 0x200 |]
         [| [ 1; 2 ]; []; [] |]);
    Alcotest.fail "ambiguous labels should raise"
  with Trace.Ill_formed _ -> ()

let test_trace_duplication_stats () =
  let b1 = simple_block 0x100 and b2 = simple_block 0x200 in
  let t = Trace.make ~id:0 ~kind:"t" [| b1; b2; b1 |] [| [ 1 ]; [ 2 ]; [] |] in
  check Alcotest.int "3 tbbs" 3 (Trace.n_tbbs t);
  check Alcotest.int "2 distinct" 2 (Trace.distinct_blocks t)

let test_trace_side_exits () =
  (* a conditional block inside a chain has one in-trace successor and one
     side exit *)
  let cond = block_at 0x100 [ I.Jcc (Cond.E, I.Abs 0x200) ] in
  let t = Trace.make ~id:0 ~kind:"t" [| cond; simple_block 0x200 |] [| [ 1 ]; [] |] in
  let img = Image.assemble (Asm.program [ Asm.Label "main"; Asm.Ins (I.Sys 0) ]) in
  (* cond has 2 static exits, 1 internal; jmp block has 1 exit, 0 internal *)
  check Alcotest.int "side exits" 2 (Trace.side_exit_count t img)

let test_trace_code_bytes () =
  let t = Trace.linear ~id:0 ~kind:"t" [ simple_block 0x1; simple_block 0x10 ] in
  check Alcotest.int "bytes" 10 (Trace.code_bytes t);
  check Alcotest.int "insns" 2 (Trace.n_insns t)

(* ---------------- Hotness ---------------- *)

let test_hotness_fires_at_threshold () =
  let h = Hotness.create ~threshold:3 in
  check Alcotest.bool "1" false (Hotness.bump h 7);
  check Alcotest.bool "2" false (Hotness.bump h 7);
  check Alcotest.bool "3 fires" true (Hotness.bump h 7);
  (* counter reset: fires again after another three *)
  check Alcotest.bool "4" false (Hotness.bump h 7);
  check Alcotest.int "count" 1 (Hotness.count h 7)

let test_hotness_independent_keys () =
  let h = Hotness.create ~threshold:2 in
  ignore (Hotness.bump h 1);
  check Alcotest.bool "other key unaffected" false (Hotness.bump h 2);
  check Alcotest.bool "first fires" true (Hotness.bump h 1)

let test_hotness_polymorphic_keys () =
  let h = Hotness.create ~threshold:2 in
  ignore (Hotness.bump h (1, 2, 3));
  check Alcotest.bool "tuple key" true (Hotness.bump h (1, 2, 3))

let test_hotness_backward () =
  let src = block_at 0x200 [ I.Jmp (I.Abs 0x100) ] in
  check Alcotest.bool "backward" true (Hotness.is_backward ~src ~dst:0x100);
  check Alcotest.bool "forward" false (Hotness.is_backward ~src ~dst:0x300)

(* ---------------- Trace_set ---------------- *)

let test_trace_set_add_replace () =
  let s = Trace_set.create () in
  let t1 = Trace.linear ~id:5 ~kind:"a" [ simple_block 0x100 ] in
  let t2 = Trace.linear ~id:5 ~kind:"a" [ simple_block 0x100; simple_block 0x200 ] in
  Trace_set.add s t1;
  Trace_set.add s t2;
  check Alcotest.int "one trace" 1 (Trace_set.n_traces s);
  check Alcotest.int "latest version" 2 (Trace_set.n_tbbs s);
  check Alcotest.bool "find_by_entry" true (Trace_set.find_by_entry s 0x100 <> None);
  check Alcotest.bool "find_by_id" true (Trace_set.find_by_id s 5 <> None)

let test_trace_set_order () =
  let s = Trace_set.create () in
  Trace_set.add s (Trace.linear ~id:2 ~kind:"a" [ simple_block 0x200 ]);
  Trace_set.add s (Trace.linear ~id:1 ~kind:"a" [ simple_block 0x100 ]);
  check Alcotest.(list int) "creation order" [ 0x200; 0x100 ] (Trace_set.entries s)

let test_dbt_bytes_model () =
  let img = Image.assemble (Asm.program [ Asm.Label "main"; Asm.Ins (I.Sys 0) ]) in
  let t = Trace.linear ~id:0 ~kind:"t" [ simple_block 0x100 ] in
  let s = Trace_set.of_list [ t ] in
  let model = Trace_set.default_dbt_cost in
  let expected =
    Trace.code_bytes t
    + (model.Trace_set.stub_bytes * Trace.side_exit_count t img)
    + model.Trace_set.entry_patch_bytes + model.Trace_set.metadata_bytes
  in
  check Alcotest.int "model" expected (Trace_set.dbt_bytes s img)

(* ---------------- MRET recording ---------------- *)

let record_with name image =
  let strategy = Option.get (Registry.by_name name) in
  Stardbt.record ~strategy image

let test_mret_on_simple_loop () =
  let img = Tea_workloads.Micro.nested_loop ~outer:30 ~inner:60 () in
  let r = record_with "mret" img in
  let traces = Trace_set.to_list r.Stardbt.set in
  check Alcotest.bool "recorded" true (List.length traces >= 1);
  (* the inner loop trace is cyclic: its last TBB flows back in-trace *)
  let cyclic =
    List.exists (fun t -> Trace.successors t (Trace.n_tbbs t - 1) <> []) traces
  in
  check Alcotest.bool "cyclic trace" true cyclic;
  check Alcotest.bool "high coverage" true (r.Stardbt.coverage > 0.8)

let test_mret_trace_entries_unique () =
  let img = Tea_workloads.Micro.branchy_loop () in
  let r = record_with "mret" img in
  let entries = List.map Trace.entry (Trace_set.to_list r.Stardbt.set) in
  check Alcotest.int "unique entries" (List.length entries)
    (List.length (List.sort_uniq compare entries))

let test_mret_respects_max_blocks () =
  let img = Tea_workloads.Spec2000.(image (Option.get (by_name "181.mcf"))) in
  let config = { Recorder.default_config with Recorder.max_blocks = 4 } in
  let strategy = Option.get (Registry.by_name "mret") in
  let r = Stardbt.record ~config ~strategy img in
  List.iter
    (fun t -> check Alcotest.bool "bounded" true (Trace.n_tbbs t <= 4))
    (Trace_set.to_list r.Stardbt.set)

let test_mret_exit_trace_formation () =
  (* list_scan with every other node matching: both loop paths hot; the
     second trace forms at the exit of the first (the paper's T2). *)
  let img = Tea_workloads.Micro.list_scan ~nodes:2000 ~match_every:2 () in
  let r = record_with "mret" img in
  check Alcotest.bool "at least two traces" true (Trace_set.n_traces r.Stardbt.set >= 2)

let test_mret_threshold_gates_recording () =
  (* loops that never reach the threshold produce no traces *)
  let img = Tea_workloads.Micro.nested_loop ~outer:2 ~inner:3 () in
  let config = { Recorder.default_config with Recorder.hot_threshold = 1000 } in
  let strategy = Option.get (Registry.by_name "mret") in
  let r = Stardbt.record ~config ~strategy img in
  check Alcotest.int "no traces" 0 (Trace_set.n_traces r.Stardbt.set)

(* ---------------- Tree strategies ---------------- *)

let test_tt_records_both_arms () =
  let img = Tea_workloads.Micro.branchy_loop ~iters:4000 ~mask:3 () in
  let r = record_with "tt" img in
  let traces = Trace_set.to_list r.Stardbt.set in
  check Alcotest.bool "tree exists" true (List.length traces >= 1);
  let tree = List.hd traces in
  (* both diamond arms present: some TBB has two in-trace successors *)
  let branching =
    Array.exists (fun succs -> List.length succs >= 2) tree.Trace.succs
  in
  check Alcotest.bool "branching tree" true branching;
  (* leaves flow back to the root *)
  let back_to_root = Array.exists (fun succs -> List.mem 0 succs) tree.Trace.succs in
  check Alcotest.bool "back edges to anchor" true back_to_root

let test_tree_growth_replaces_id () =
  let img = Tea_workloads.Micro.branchy_loop ~iters:4000 ~mask:3 () in
  let r = record_with "tt" img in
  (* the trace set holds one latest version per id, and its id maps back *)
  let traces = Trace_set.to_list r.Stardbt.set in
  List.iter
    (fun t ->
      match Trace_set.find_by_id r.Stardbt.set t.Trace.id with
      | Some t' -> check Alcotest.int "same tbbs" (Trace.n_tbbs t) (Trace.n_tbbs t')
      | None -> Alcotest.fail "id lost")
    traces

let test_ctt_compact_on_nested () =
  (* nested loops: CTT closes the inner loop with a back edge; TT unrolls
     or aborts. CTT must not be bigger than TT on this shape and must
     contain a back edge to a non-root TBB. *)
  let img = Tea_workloads.Micro.nested_loop ~outer:200 ~inner:9 () in
  let ctt = record_with "ctt" img in
  let traces = Trace_set.to_list ctt.Stardbt.set in
  check Alcotest.bool "ctt recorded" true (List.length traces >= 1);
  let has_inner_back_edge =
    List.exists
      (fun t ->
        Array.exists
          (fun succs -> List.exists (fun s -> s <> 0) succs)
          t.Trace.succs
        && Trace.n_tbbs t > 1)
      traces
  in
  check Alcotest.bool "inner back edge" true has_inner_back_edge

let test_tree_traces_well_formed () =
  (* Trace.make validates determinism; just building the set across all
     strategies on a gnarly workload must not raise. *)
  let img = Tea_workloads.Spec2000.(image (Option.get (by_name "164.gzip"))) in
  List.iter
    (fun (name, _) ->
      let r = record_with name img in
      check Alcotest.bool (name ^ " nonempty") true (Trace_set.n_traces r.Stardbt.set > 0))
    Registry.all

let test_registry () =
  check Alcotest.(list string) "names" [ "mret"; "ctt"; "tt" ] Registry.names;
  check Alcotest.(list string) "extended" [ "mret"; "ctt"; "tt"; "mfet" ]
    Registry.extended_names;
  check Alcotest.bool "mfet resolvable" true (Registry.by_name "mfet" <> None);
  check Alcotest.bool "unknown" true (Registry.by_name "nope" = None)

(* ---------------- MFET ---------------- *)

let test_mfet_records_hot_path () =
  let img = Tea_workloads.Micro.branchy_loop ~iters:4000 ~mask:7 () in
  let r = record_with "mfet" img in
  let traces = Trace_set.to_list r.Stardbt.set in
  check Alcotest.bool "recorded" true (List.length traces >= 1);
  (* the constructed superblock follows the frequent (not-taken) arm and is
     cyclic *)
  let cyclic =
    List.exists (fun t -> Trace.successors t (Trace.n_tbbs t - 1) <> []) traces
  in
  check Alcotest.bool "cyclic hot path" true cyclic;
  check Alcotest.bool "coverage" true (r.Stardbt.coverage > 0.5)

let test_mfet_picks_frequent_arm () =
  (* with a 1/8 rare arm, the profile-built trace must include the common
     arm's block and not the rare one. MRET could capture either (it takes
     whatever ran next); MFET must take the frequent one. *)
  let img = Tea_workloads.Micro.branchy_loop ~iters:4000 ~mask:7 () in
  let r = record_with "mfet" img in
  let traces = Trace_set.to_list r.Stardbt.set in
  (* find the trace containing the diamond head (it has the test+jcc) *)
  let has_branchy_trace =
    List.exists
      (fun t ->
        Trace.n_tbbs t >= 2
        && Array.exists
             (fun tb ->
               Tea_isa.Insn.is_conditional (Tea_cfg.Block.terminator tb.Tbb.block))
             t.Trace.tbbs)
      traces
  in
  check Alcotest.bool "trace spans the diamond" true has_branchy_trace

let test_mfet_edge_profile () =
  let img = Tea_workloads.Micro.nested_loop ~outer:10 ~inner:20 () in
  let strategy = Option.get (Registry.by_name "mfet") in
  let r = Stardbt.record ~strategy img in
  ignore r;
  (* drive the strategy directly to check its edge counters *)
  let module M = Tea_traces.Mfet in
  let cfg = Recorder.default_config in
  let m = M.create cfg in
  let b1 = block_at 0x100 [ Tea_isa.Insn.Jmp (Tea_isa.Insn.Abs 0x200) ] in
  let b2 = block_at 0x200 [ Tea_isa.Insn.Jmp (Tea_isa.Insn.Abs 0x100) ] in
  ignore (M.trigger m ~current:(Some b1) ~next:b2);
  ignore (M.trigger m ~current:(Some b1) ~next:b2);
  check Alcotest.int "edge counted" 2 (M.edge_count m ~src:0x100 ~dst:0x200);
  check Alcotest.int "other edge zero" 0 (M.edge_count m ~src:0x200 ~dst:0x100)

(* ---------------- Serialization ---------------- *)

let roundtrip_image = Tea_workloads.Micro.list_scan ()

let test_serialize_roundtrip () =
  let r = record_with "mret" roundtrip_image in
  let traces = Trace_set.to_list r.Stardbt.set in
  let loaded = Serialize.of_string roundtrip_image (Serialize.to_string traces) in
  check Alcotest.int "same count" (List.length traces) (List.length loaded);
  List.iter2
    (fun a b ->
      check Alcotest.int "id" a.Trace.id b.Trace.id;
      check Alcotest.string "kind" a.Trace.kind b.Trace.kind;
      check Alcotest.int "entry" (Trace.entry a) (Trace.entry b);
      check Alcotest.int "tbbs" (Trace.n_tbbs a) (Trace.n_tbbs b);
      Array.iteri
        (fun i succs -> check Alcotest.(list int) "succs" succs b.Trace.succs.(i))
        a.Trace.succs)
    traces loaded

let test_serialize_file_roundtrip () =
  let r = record_with "tt" roundtrip_image in
  let traces = Trace_set.to_list r.Stardbt.set in
  let path = Filename.temp_file "tea_test" ".traces" in
  Serialize.save path traces;
  let loaded = Serialize.load roundtrip_image path in
  Sys.remove path;
  check Alcotest.int "same count" (List.length traces) (List.length loaded)

let test_serialize_bad_magic () =
  try
    ignore (Serialize.of_string roundtrip_image "BOGUS\n");
    Alcotest.fail "should raise"
  with Serialize.Parse_error _ -> ()

let test_serialize_bad_block () =
  let s = "TEA-TRACES 1\ntrace 0 mret 1\ntbb 0x42 3\nend\n" in
  try
    ignore (Serialize.of_string roundtrip_image s);
    Alcotest.fail "should raise"
  with Serialize.Parse_error _ -> ()

let test_serialize_truncated () =
  let s = "TEA-TRACES 1\ntrace 0 mret 1\n" in
  try
    ignore (Serialize.of_string roundtrip_image s);
    Alcotest.fail "should raise"
  with Serialize.Parse_error _ -> ()

(* Fuzz: random line-level mutations of a valid trace file must either
   parse to *some* well-formed trace set or raise Parse_error / Ill_formed —
   never crash with an unexpected exception. *)
let prop_serialize_fuzz =
  let base =
    let r = record_with "mret" roundtrip_image in
    Serialize.to_string (Trace_set.to_list r.Stardbt.set)
  in
  let lines = String.split_on_char '\n' base in
  let n_lines = List.length lines in
  let gen = QCheck.(pair (int_range 0 (n_lines - 1)) (int_range 0 3)) in
  QCheck.Test.make ~name:"serializer survives line mutations" ~count:200 gen
    (fun (victim, kind) ->
      let mutated =
        List.concat
          (List.mapi
             (fun i line ->
               if i <> victim then [ line ]
               else
                 match kind with
                 | 0 -> []                                  (* drop the line *)
                 | 1 -> [ line; line ]                      (* duplicate it *)
                 | 2 -> [ "garbage tokens here" ]           (* corrupt it *)
                 | _ -> [ String.uppercase_ascii line ])    (* case-mangle *)
             lines)
        |> String.concat "\n"
      in
      match Serialize.of_string roundtrip_image mutated with
      | _traces -> true
      | exception Serialize.Parse_error _ -> true
      | exception Trace.Ill_formed _ -> true)

let test_decode_block () =
  let entry = Image.entry roundtrip_image in
  let b = Serialize.decode_block roundtrip_image ~start:entry ~n:2 in
  check Alcotest.int "start" entry b.Block.start;
  check Alcotest.int "n" 2 (Block.n_insns b)

let () =
  Alcotest.run "tea_traces"
    [
      ( "tbb-trace",
        [
          Alcotest.test_case "tbb" `Quick test_tbb;
          Alcotest.test_case "linear" `Quick test_trace_linear;
          Alcotest.test_case "cycle" `Quick test_trace_cycle;
          Alcotest.test_case "validation" `Quick test_trace_validation;
          Alcotest.test_case "duplication stats" `Quick test_trace_duplication_stats;
          Alcotest.test_case "side exits" `Quick test_trace_side_exits;
          Alcotest.test_case "code bytes" `Quick test_trace_code_bytes;
        ] );
      ( "hotness",
        [
          Alcotest.test_case "threshold" `Quick test_hotness_fires_at_threshold;
          Alcotest.test_case "independent keys" `Quick test_hotness_independent_keys;
          Alcotest.test_case "polymorphic keys" `Quick test_hotness_polymorphic_keys;
          Alcotest.test_case "backward" `Quick test_hotness_backward;
        ] );
      ( "trace-set",
        [
          Alcotest.test_case "add/replace" `Quick test_trace_set_add_replace;
          Alcotest.test_case "order" `Quick test_trace_set_order;
          Alcotest.test_case "dbt bytes" `Quick test_dbt_bytes_model;
        ] );
      ( "mret",
        [
          Alcotest.test_case "simple loop" `Quick test_mret_on_simple_loop;
          Alcotest.test_case "unique entries" `Quick test_mret_trace_entries_unique;
          Alcotest.test_case "max blocks" `Quick test_mret_respects_max_blocks;
          Alcotest.test_case "exit trace (T2)" `Quick test_mret_exit_trace_formation;
          Alcotest.test_case "threshold gates" `Quick test_mret_threshold_gates_recording;
        ] );
      ( "trees",
        [
          Alcotest.test_case "tt both arms" `Quick test_tt_records_both_arms;
          Alcotest.test_case "growth replaces id" `Quick test_tree_growth_replaces_id;
          Alcotest.test_case "ctt compact" `Quick test_ctt_compact_on_nested;
          Alcotest.test_case "well-formed" `Quick test_tree_traces_well_formed;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "mfet hot path" `Quick test_mfet_records_hot_path;
          Alcotest.test_case "mfet frequent arm" `Quick test_mfet_picks_frequent_arm;
          Alcotest.test_case "mfet edge profile" `Quick test_mfet_edge_profile;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "roundtrip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_serialize_file_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_serialize_bad_magic;
          Alcotest.test_case "bad block" `Quick test_serialize_bad_block;
          Alcotest.test_case "truncated" `Quick test_serialize_truncated;
          Alcotest.test_case "decode block" `Quick test_decode_block;
          QCheck_alcotest.to_alcotest prop_serialize_fuzz;
        ] );
    ]
