module Vec = Tea_util.Vec
module Rng = Tea_util.Splitmix
module W = Tea_util.Word32

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------------- Vec ---------------- *)

let test_vec_empty () =
  let v = Vec.create () in
  check Alcotest.int "length" 0 (Vec.length v);
  check Alcotest.bool "is_empty" true (Vec.is_empty v);
  check Alcotest.(option int) "pop" None (Vec.pop v);
  check Alcotest.(option int) "last" None (Vec.last v)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  check Alcotest.int "get 7" 49 (Vec.get v 7);
  check Alcotest.(option int) "last" (Some (99 * 99)) (Vec.last v)

let test_vec_set () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Vec.set v 1 42;
  check Alcotest.(list int) "after set" [ 1; 42; 3 ] (Vec.to_list v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index 1 out of bounds [0,1)")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "negative" (Invalid_argument "Vec: index -1 out of bounds [0,1)")
    (fun () -> ignore (Vec.get v (-1)))

let test_vec_pop_lifo () =
  let v = Vec.create () in
  Vec.push v 1;
  Vec.push v 2;
  check Alcotest.(option int) "pop 2" (Some 2) (Vec.pop v);
  check Alcotest.(option int) "pop 1" (Some 1) (Vec.pop v);
  check Alcotest.(option int) "pop empty" None (Vec.pop v)

let test_vec_clear () =
  let v = Vec.of_list [ 1; 2 ] in
  Vec.clear v;
  check Alcotest.int "cleared" 0 (Vec.length v);
  Vec.push v 9;
  check Alcotest.(list int) "reusable" [ 9 ] (Vec.to_list v)

let test_vec_iterators () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  let sum = Vec.fold_left ( + ) 0 v in
  check Alcotest.int "fold" 10 sum;
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check Alcotest.int "iteri count" 4 (List.length !acc);
  check Alcotest.bool "exists" true (Vec.exists (fun x -> x = 3) v);
  check Alcotest.bool "not exists" false (Vec.exists (fun x -> x = 9) v);
  check Alcotest.(option int) "find" (Some 2) (Vec.find_opt (fun x -> x mod 2 = 0) v);
  check Alcotest.(option int) "find_index" (Some 1) (Vec.find_index (fun x -> x = 2) v)

let test_vec_make_map () =
  let v = Vec.make 3 7 in
  check Alcotest.(list int) "make" [ 7; 7; 7 ] (Vec.to_list v);
  let doubled = Vec.map (fun x -> x * 2) v in
  check Alcotest.(list int) "map" [ 14; 14; 14 ] (Vec.to_list doubled)

let prop_vec_roundtrip =
  QCheck.Test.make ~name:"vec of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun l -> Vec.to_list (Vec.of_list l) = l)

let prop_vec_array =
  QCheck.Test.make ~name:"vec to_array agrees with to_list" ~count:200
    QCheck.(list int)
    (fun l ->
      let v = Vec.of_list l in
      Array.to_list (Vec.to_array v) = Vec.to_list v)

(* ---------------- Splitmix ---------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 50 do
    check Alcotest.int64 "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 20 do
    if Rng.next a = Rng.next b then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 3)

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.next a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.next a) (Rng.next b)

let test_rng_int_in () =
  let g = Rng.create 3 in
  for _ = 1 to 200 do
    let v = Rng.int_in g 5 9 in
    check Alcotest.bool "in range" true (v >= 5 && v <= 9)
  done

let test_rng_bad_bounds () =
  let g = Rng.create 1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Splitmix.int: bound must be positive")
    (fun () -> ignore (Rng.int g 0));
  Alcotest.check_raises "empty range" (Invalid_argument "Splitmix.int_in: empty range")
    (fun () -> ignore (Rng.int_in g 5 4));
  Alcotest.check_raises "choose []" (Invalid_argument "Splitmix.choose: empty list")
    (fun () -> ignore (Rng.choose g []))

let test_rng_chance_extremes () =
  let g = Rng.create 11 in
  for _ = 1 to 50 do
    check Alcotest.bool "p=1 fires" true (Rng.chance g 1.0)
  done;
  for _ = 1 to 50 do
    check Alcotest.bool "p=0 never" false (Rng.chance g 0.0)
  done

let test_rng_shuffle_permutation () =
  let g = Rng.create 5 in
  let a = Array.init 30 Fun.id in
  let orig = Array.copy a in
  Rng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "multiset preserved" orig sorted

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"splitmix int in [0,bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Rng.create seed in
      let v = Rng.int g bound in
      v >= 0 && v < bound)

let prop_rng_float_unit =
  QCheck.Test.make ~name:"splitmix float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let g = Rng.create seed in
      let f = Rng.float g in
      f >= 0.0 && f < 1.0)

(* ---------------- Fenwick ---------------- *)

module Fenwick = Tea_util.Fenwick

let test_fenwick_basics () =
  let t = Fenwick.create () in
  Fenwick.add t 0 5;
  Fenwick.add t 3 2;
  Fenwick.add t 10 1;
  check Alcotest.int "prefix 0" 5 (Fenwick.prefix_sum t 0);
  check Alcotest.int "prefix 3" 7 (Fenwick.prefix_sum t 3);
  check Alcotest.int "prefix big" 8 (Fenwick.prefix_sum t 100);
  check Alcotest.int "range" 3 (Fenwick.range_sum t 1 10);
  check Alcotest.int "empty range" 0 (Fenwick.range_sum t 5 4);
  check Alcotest.int "negative prefix" 0 (Fenwick.prefix_sum t (-1));
  check Alcotest.int "total" 8 (Fenwick.total t)

let test_fenwick_growth () =
  let t = Fenwick.create () in
  Fenwick.add t 2 1;
  Fenwick.add t 5000 3;   (* forces growth, must preserve earlier values *)
  check Alcotest.int "old value kept" 1 (Fenwick.prefix_sum t 2);
  check Alcotest.int "new value" 4 (Fenwick.prefix_sum t 5000)

let prop_fenwick_vs_array =
  QCheck.Test.make ~name:"fenwick matches array reference" ~count:200
    QCheck.(list (pair (int_range 0 300) (int_range (-5) 5)))
    (fun updates ->
      let t = Fenwick.create () in
      let reference = Array.make 301 0 in
      List.iter
        (fun (i, d) ->
          Fenwick.add t i d;
          reference.(i) <- reference.(i) + d)
        updates;
      let ok = ref true in
      for i = 0 to 300 do
        let expect = ref 0 in
        for j = 0 to i do
          expect := !expect + reference.(j)
        done;
        if Fenwick.prefix_sum t i <> !expect then ok := false
      done;
      !ok)

(* ---------------- Word32 ---------------- *)

let test_word_norm () =
  check Alcotest.int "positive" 5 (W.norm 5);
  check Alcotest.int "wrap" (-2147483648) (W.norm 0x80000000);
  check Alcotest.int "truncate" 0 (W.norm 0x100000000);
  check Alcotest.int "negative" (-1) (W.norm 0xFFFFFFFF)

let test_word_arith () =
  check Alcotest.int "add wrap" (-2147483648) (W.add 0x7FFFFFFF 1);
  check Alcotest.int "sub" (-1) (W.sub 0 1);
  check Alcotest.int "mul wrap" 0 (W.mul 0x10000 0x10000);
  check Alcotest.int "neg" (-5) (W.neg 5)

let test_word_flags () =
  check Alcotest.bool "carry" true (W.carry_add 0xFFFFFFFF 1);
  check Alcotest.bool "no carry" false (W.carry_add 1 1);
  check Alcotest.bool "borrow" true (W.borrow_sub 0 1);
  check Alcotest.bool "overflow add" true (W.overflow_add 0x7FFFFFFF 1);
  check Alcotest.bool "no overflow" false (W.overflow_add 1 1);
  check Alcotest.bool "overflow sub" true (W.overflow_sub (-2147483648) 1)

let test_word_shifts () =
  check Alcotest.int "shl" 8 (W.shl 1 3);
  check Alcotest.int "shl mask" 2 (W.shl 1 33);
  check Alcotest.int "shr" 0x7FFFFFFF (W.shr (-1) 1);
  check Alcotest.int "sar" (-1) (W.sar (-1) 1);
  check Alcotest.int "sar positive" 2 (W.sar 8 2)

let prop_word_norm_idempotent =
  QCheck.Test.make ~name:"norm idempotent" ~count:500 QCheck.int (fun x ->
      W.norm (W.norm x) = W.norm x)

let prop_word_add_commutes =
  QCheck.Test.make ~name:"add commutes" ~count:500 QCheck.(pair int int)
    (fun (a, b) -> W.add a b = W.add b a)

let prop_word_unsigned_range =
  QCheck.Test.make ~name:"unsigned in [0, 2^32)" ~count:500 QCheck.int (fun x ->
      let u = W.unsigned x in
      u >= 0 && u < 0x100000000)

let prop_word_sub_add =
  QCheck.Test.make ~name:"a - b + b = norm a" ~count:500 QCheck.(pair int int)
    (fun (a, b) -> W.add (W.sub a b) b = W.norm a)

let () =
  Alcotest.run "tea_util"
    [
      ( "vec",
        [
          Alcotest.test_case "empty" `Quick test_vec_empty;
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "set" `Quick test_vec_set;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "pop lifo" `Quick test_vec_pop_lifo;
          Alcotest.test_case "clear" `Quick test_vec_clear;
          Alcotest.test_case "iterators" `Quick test_vec_iterators;
          Alcotest.test_case "make/map" `Quick test_vec_make_map;
          qtest prop_vec_roundtrip;
          qtest prop_vec_array;
        ] );
      ( "splitmix",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "int_in range" `Quick test_rng_int_in;
          Alcotest.test_case "bad bounds" `Quick test_rng_bad_bounds;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          qtest prop_rng_int_bounds;
          qtest prop_rng_float_unit;
        ] );
      ( "fenwick",
        [
          Alcotest.test_case "basics" `Quick test_fenwick_basics;
          Alcotest.test_case "growth" `Quick test_fenwick_growth;
          qtest prop_fenwick_vs_array;
        ] );
      ( "word32",
        [
          Alcotest.test_case "norm" `Quick test_word_norm;
          Alcotest.test_case "arith" `Quick test_word_arith;
          Alcotest.test_case "flags" `Quick test_word_flags;
          Alcotest.test_case "shifts" `Quick test_word_shifts;
          qtest prop_word_norm_idempotent;
          qtest prop_word_add_commutes;
          qtest prop_word_unsigned_range;
          qtest prop_word_sub_add;
        ] );
    ]
