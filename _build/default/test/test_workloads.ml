module Codegen = Tea_workloads.Codegen
module Micro = Tea_workloads.Micro
module Proggen = Tea_workloads.Proggen
module Spec = Tea_workloads.Spec2000
module Interp = Tea_machine.Interp
module Image = Tea_isa.Image
module I = Tea_isa.Insn
module O = Tea_isa.Operand

let check = Alcotest.check

let run image = Interp.run image

let assert_exits_zero name (machine, stop) =
  (match stop.Interp.outcome with
  | Interp.Exited 0 -> ()
  | Interp.Exited n -> Alcotest.fail (Printf.sprintf "%s exited %d" name n)
  | Interp.Halted -> Alcotest.fail (name ^ " halted")
  | Interp.Fuel_exhausted -> Alcotest.fail (name ^ " ran out of fuel")
  | Interp.Fault m -> Alcotest.fail (name ^ " faulted: " ^ m));
  machine

(* ---------------- Codegen ---------------- *)

let test_codegen_labels_unique () =
  let cg = Codegen.create () in
  let a = Codegen.fresh_label cg "x" in
  let b = Codegen.fresh_label cg "x" in
  check Alcotest.bool "distinct" true (a <> b)

let test_codegen_data_addresses () =
  let cg = Codegen.create () in
  let a = Codegen.alloc_word cg 1 in
  let b = Codegen.alloc_words cg [ 2; 3 ] in
  let c = Codegen.alloc_space cg 4 in
  let d = Codegen.alloc_word cg 9 in
  check Alcotest.int "first at base" Tea_isa.Asm.default_data_base a;
  check Alcotest.int "second" (a + 4) b;
  check Alcotest.int "after words" (b + 8) c;
  check Alcotest.int "after space" (c + 16) d

let test_codegen_addresses_match_layout () =
  (* the addresses the generator hands out must equal what the assembler
     actually places *)
  let cg = Codegen.create () in
  let a = Codegen.alloc_word cg ~label:"cell" 123 in
  Codegen.place cg "main";
  Codegen.emit cg (I.Mov (O.Reg Tea_isa.Reg.EAX, O.mem a));
  Codegen.emit cg (I.Sys 1);
  Codegen.emit cg (I.Mov (O.Reg Tea_isa.Reg.EAX, O.Imm 0));
  Codegen.emit cg (I.Sys 0);
  let img = Codegen.assemble cg in
  check Alcotest.int "symbol matches handed-out address" a (Image.symbol img "cell");
  let m = assert_exits_zero "codegen" (run img) in
  check Alcotest.(list int) "reads initialized data" [ 123 ] (Interp.output m)

let test_codegen_ref_table () =
  let cg = Codegen.create () in
  let table = Codegen.alloc_ref_table cg [ "main" ] in
  Codegen.place cg "main";
  Codegen.emit cg (I.Mov (O.Reg Tea_isa.Reg.EAX, O.Imm 0));
  Codegen.emit cg (I.Sys 0);
  let img = Codegen.assemble cg in
  match Image.initial_data img with
  | [ (addr, v) ] ->
      check Alcotest.int "table addr" table addr;
      check Alcotest.int "resolved ref" (Image.entry img) v
  | _ -> Alcotest.fail "expected one data word"

let test_codegen_finalized () =
  let cg = Codegen.create () in
  Codegen.place cg "main";
  Codegen.emit cg (I.Sys 0);
  ignore (Codegen.program cg);
  Alcotest.check_raises "reuse" (Invalid_argument "Codegen: context already finalized")
    (fun () -> Codegen.emit cg I.Nop)

let test_codegen_align () =
  let cg = Codegen.create () in
  Codegen.place cg "main";
  Codegen.emit cg I.Nop;
  Codegen.align_text cg 64;
  check Alcotest.int "aligned offset" 0
    ((Tea_isa.Asm.default_text_base + Codegen.text_offset cg) mod 64);
  Codegen.place cg "aligned";
  Codegen.emit cg (I.Mov (O.Reg Tea_isa.Reg.EAX, O.Imm 0));
  Codegen.emit cg (I.Sys 0);
  let img = Codegen.assemble cg in
  check Alcotest.int "label lands aligned" 0 (Image.symbol img "aligned" mod 64)

(* ---------------- Micro workloads ---------------- *)

let test_copy_loop_checksum () =
  let m = assert_exits_zero "copy" (run (Micro.copy_loop ~words:10 ~passes:2 ())) in
  (* last word of src is 9*3 = 27, copied to dst *)
  check Alcotest.(list int) "checksum" [ 27 ] (Interp.output m)

let test_list_scan_count () =
  let m = assert_exits_zero "list" (run (Micro.list_scan ~nodes:100 ~match_every:4 ~passes:3 ())) in
  (* 25 matches per pass, 3 passes *)
  check Alcotest.(list int) "match count" [ 75 ] (Interp.output m)

let test_list_scan_every_node () =
  let m = assert_exits_zero "list" (run (Micro.list_scan ~nodes:50 ~match_every:1 ~passes:1 ())) in
  check Alcotest.(list int) "all match" [ 50 ] (Interp.output m)

let test_nested_loop_work () =
  let m = assert_exits_zero "nest" (run (Micro.nested_loop ~outer:7 ~inner:11 ())) in
  check Alcotest.bool "iterations happened" true (Interp.dyn_instrs m > 7 * 11 * 2)

let test_branchy_deterministic () =
  let m1 = assert_exits_zero "b1" (run (Micro.branchy_loop ())) in
  let m2 = assert_exits_zero "b2" (run (Micro.branchy_loop ())) in
  check Alcotest.(list int) "same output" (Interp.output m1) (Interp.output m2)

let test_scattered_and_two_phase_run () =
  ignore (assert_exits_zero "scattered" (run (Tea_workloads.Micro.scattered ())));
  ignore (assert_exits_zero "two_phase" (run (Tea_workloads.Micro.two_phase ())));
  ignore (assert_exits_zero "stream" (run (Tea_workloads.Micro.stream ~words:1024 ~passes:2 ())));
  ignore (assert_exits_zero "chase" (run (Tea_workloads.Micro.big_chase ~nodes:1024 ~steps:5000 ())))

let test_rep_copy_result () =
  let m = assert_exits_zero "rep" (run (Micro.rep_copy ~words:32 ~passes:2 ())) in
  check Alcotest.(list int) "last word" [ 32 ] (Interp.output m)

(* ---------------- Proggen ---------------- *)

let test_proggen_deterministic () =
  let p = { Proggen.default with Proggen.seed = 123 } in
  let l1 = Format.asprintf "%a" Image.pp_listing (Proggen.generate p) in
  let l2 = Format.asprintf "%a" Image.pp_listing (Proggen.generate p) in
  check Alcotest.bool "identical images" true (l1 = l2)

let test_proggen_seed_changes_program () =
  let base = Proggen.default in
  let a = Proggen.generate { base with Proggen.seed = 1 } in
  let b = Proggen.generate { base with Proggen.seed = 2 } in
  check Alcotest.bool "different programs" true
    (Format.asprintf "%a" Image.pp_listing a <> Format.asprintf "%a" Image.pp_listing b)

let test_proggen_terminates () =
  let m = assert_exits_zero "default" (run (Proggen.generate Proggen.default)) in
  check Alcotest.bool "ran real work" true (Interp.dyn_instrs m > 100_000);
  check Alcotest.bool "bounded" true (Interp.dyn_instrs m < 20_000_000)

let test_proggen_estimate_order_of_magnitude () =
  let p = Proggen.default in
  let m = assert_exits_zero "est" (run (Proggen.generate p)) in
  let est = Proggen.estimated_dynamic_insns p in
  let actual = Interp.dyn_instrs m in
  check Alcotest.bool "estimate within 10x" true
    (actual / 10 <= est && est <= actual * 10)

let test_proggen_var_trip () =
  let p =
    { Proggen.default with Proggen.p_var_trip = 1.0; seed = 9; nest_depth = 2 }
  in
  let img = Proggen.generate p in
  ignore (assert_exits_zero "var-trip" (run img))

(* ---------------- Spec2000 suite ---------------- *)

let test_spec_names () =
  check Alcotest.int "26 benchmarks" 26 (List.length Spec.all);
  check Alcotest.bool "gcc present" true (Spec.by_name "176.gcc" <> None);
  check Alcotest.bool "unknown absent" true (Spec.by_name "999.nope" = None);
  check Alcotest.int "14 fp" 14
    (List.length (List.filter (fun n -> Spec.is_fp n) Spec.names))

let test_spec_all_assemble () =
  List.iter
    (fun p ->
      let img = Spec.image p in
      check Alcotest.bool (p.Proggen.name ^ " nonempty") true
        (Image.instruction_count img > 50))
    Spec.all

let test_spec_image_memoized () =
  let p = List.hd Spec.all in
  check Alcotest.bool "same physical image" true (Spec.image p == Spec.image p)

let test_spec_sample_runs () =
  List.iter
    (fun name ->
      let p = Option.get (Spec.by_name name) in
      let m = assert_exits_zero name (run (Spec.image p)) in
      check Alcotest.bool (name ^ " sized sanely") true
        (Interp.dyn_instrs m > 200_000 && Interp.dyn_instrs m < 30_000_000))
    [ "168.wupwise"; "176.gcc"; "181.mcf" ]

let test_spec_footprints_differ () =
  (* gcc's static footprint dwarfs mcf's — the Table 4 JIT story *)
  let gcc = Spec.image (Option.get (Spec.by_name "176.gcc")) in
  let mcf = Spec.image (Option.get (Spec.by_name "181.mcf")) in
  check Alcotest.bool "gcc much bigger" true
    (Image.instruction_count gcc > 5 * Image.instruction_count mcf)

let test_spec_sprawl_lowers_coverage () =
  (* perlbmk's once-run sprawl must show up as lower trace coverage than
     swim's loop nest *)
  let record name =
    let p = Option.get (Spec.by_name name) in
    let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
    (Tea_dbt.Stardbt.record ~strategy (Spec.image p)).Tea_dbt.Stardbt.coverage
  in
  check Alcotest.bool "perlbmk < swim" true (record "253.perlbmk" < record "171.swim")

let () =
  Alcotest.run "tea_workloads"
    [
      ( "codegen",
        [
          Alcotest.test_case "labels unique" `Quick test_codegen_labels_unique;
          Alcotest.test_case "data addresses" `Quick test_codegen_data_addresses;
          Alcotest.test_case "addresses match layout" `Quick test_codegen_addresses_match_layout;
          Alcotest.test_case "ref table" `Quick test_codegen_ref_table;
          Alcotest.test_case "finalized" `Quick test_codegen_finalized;
          Alcotest.test_case "align" `Quick test_codegen_align;
        ] );
      ( "micro",
        [
          Alcotest.test_case "copy checksum" `Quick test_copy_loop_checksum;
          Alcotest.test_case "list count" `Quick test_list_scan_count;
          Alcotest.test_case "list all match" `Quick test_list_scan_every_node;
          Alcotest.test_case "nested work" `Quick test_nested_loop_work;
          Alcotest.test_case "branchy deterministic" `Quick test_branchy_deterministic;
          Alcotest.test_case "rep copy" `Quick test_rep_copy_result;
          Alcotest.test_case "new micros run" `Quick test_scattered_and_two_phase_run;
        ] );
      ( "proggen",
        [
          Alcotest.test_case "deterministic" `Quick test_proggen_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_proggen_seed_changes_program;
          Alcotest.test_case "terminates" `Quick test_proggen_terminates;
          Alcotest.test_case "estimate" `Quick test_proggen_estimate_order_of_magnitude;
          Alcotest.test_case "var trip" `Quick test_proggen_var_trip;
        ] );
      ( "spec2000",
        [
          Alcotest.test_case "names" `Quick test_spec_names;
          Alcotest.test_case "all assemble" `Quick test_spec_all_assemble;
          Alcotest.test_case "memoized" `Quick test_spec_image_memoized;
          Alcotest.test_case "samples run" `Slow test_spec_sample_runs;
          Alcotest.test_case "footprints differ" `Quick test_spec_footprints_differ;
          Alcotest.test_case "sprawl lowers coverage" `Slow test_spec_sprawl_lowers_coverage;
        ] );
    ]
