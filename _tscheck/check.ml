module T = Tea_core.Tierstat
let () =
  T.install ();
  (match T.tally () with
   | None -> assert false
   | Some a ->
       (* bump state 42, tier 0 only: idx = 252 < 256, no grow *)
       T.bump a ~tier:T.t_ic ~state:42);
  let s = T.uninstall () in
  Printf.printf "total=%d rows=%d\n" (T.total s) (List.length s.T.ts_states)
