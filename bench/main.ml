(* Benchmark harness: regenerates every table of the paper's evaluation
   (default mode) and runs Bechamel microbenchmarks of the operations each
   table stresses (mode "micro").

   Usage:
     dune exec bench/main.exe                 # all 26 benchmarks, Tables 1-4
     dune exec bench/main.exe -- quick        # 8-benchmark subset
     dune exec bench/main.exe -- micro        # Bechamel microbenchmarks
     dune exec bench/main.exe -- table1 ...   # a single table *)

module Experiments = Tea_report.Experiments

let quick_set =
  [
    "171.swim"; "172.mgrid"; "177.mesa"; "164.gzip"; "176.gcc"; "181.mcf";
    "253.perlbmk"; "256.bzip2";
  ]

let progress fmt = Printf.eprintf (fmt ^^ "\n%!")

(* --quiet suppresses the per-domain pool counter dumps on stderr. *)
let quiet = ref false

let run_tables ~benchmarks ~which =
  progress "[bench] preparing %d benchmarks (recording mret/ctt/tt under the DBT)..."
    (List.length benchmarks);
  let t0 = Unix.gettimeofday () in
  let benches = Experiments.prepare ~benchmarks () in
  progress "[bench] prepare done in %.1fs" (Unix.gettimeofday () -. t0);
  let wants t = which = [] || List.mem t which in
  if wants "table1" then begin
    progress "[bench] table 1 (size savings)...";
    print_string (Experiments.render_table1 (Experiments.table1 benches));
    print_newline ()
  end;
  if wants "table2" then begin
    progress "[bench] table 2 (replaying)...";
    print_string (Experiments.render_table2 (Experiments.table2 benches));
    print_newline ()
  end;
  if wants "table3" then begin
    progress "[bench] table 3 (recording)...";
    print_string (Experiments.render_table3 (Experiments.table3 benches));
    print_newline ()
  end;
  if wants "table4" then begin
    progress "[bench] table 4 (overhead ablation)...";
    print_string (Experiments.render_table4 (Experiments.table4 benches));
    print_newline ()
  end;
  progress "[bench] total %.1fs" (Unix.gettimeofday () -. t0)

(* ---- Bechamel microbenchmarks: the hot operation behind each table ---- *)

let micro_env () =
  (* A mid-sized workload and its MRET traces as a shared fixture. *)
  let profile = Option.get (Tea_workloads.Spec2000.by_name "176.gcc") in
  let image = Tea_workloads.Spec2000.image profile in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let result = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list result.Tea_dbt.Stardbt.set in
  (image, traces)

let benchmarks () =
  let open Bechamel in
  let image, traces = micro_env () in
  let auto = Tea_core.Builder.build traces in
  let heads = Tea_core.Automaton.heads auto in
  let addrs = Array.of_list (List.map fst heads) in
  let n = Array.length addrs in
  (* Table 1's core cost: building the automaton from a trace set and
     measuring its serialized size. *)
  let table1 =
    Test.make ~name:"table1/algorithm1-build"
      (Staged.stage (fun () ->
           let a = Tea_core.Builder.build traces in
           Sys.opaque_identity (Tea_core.Automaton.byte_size a)))
  in
  (* Table 2's core cost: one replay transition step (Global/Local). *)
  let step_test name config =
    let trans = Tea_core.Transition.create config auto in
    let i = ref 0 in
    Test.make ~name
      (Staged.stage (fun () ->
           incr i;
           let pc = addrs.(!i mod n) in
           Sys.opaque_identity (Tea_core.Transition.step trans Tea_core.Automaton.nte pc)))
  in
  (* Table 3's core cost: the Algorithm 2 state machine on a block stream. *)
  let blocks =
    let acc = ref [] in
    let cb =
      {
        Tea_cfg.Discovery.on_block = (fun b -> if List.length !acc < 4096 then acc := b :: !acc);
        Tea_cfg.Discovery.on_edge = (fun _ _ -> ());
      }
    in
    let _ = Tea_cfg.Discovery.run ~fuel:200_000 image cb in
    Array.of_list (List.rev !acc)
  in
  let table3 =
    let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
    let online = ref (Tea_core.Online.create strategy) in
    let i = ref 0 in
    Test.make ~name:"table3/algorithm2-feed"
      (Staged.stage (fun () ->
           if !i mod 100_000 = 0 then online := Tea_core.Online.create strategy;
           incr i;
           Tea_core.Online.feed !online blocks.(!i mod Array.length blocks)))
  in
  (* The packed engine's version of the same cross-trace step. *)
  let step_packed =
    let packed = Tea_core.Packed.freeze auto in
    let i = ref 0 in
    Test.make ~name:"table4/step-packed"
      (Staged.stage (fun () ->
           incr i;
           let pc = addrs.(!i mod n) in
           Sys.opaque_identity (Tea_core.Packed.step packed Tea_core.Automaton.nte pc)))
  in
  [
    table1;
    step_test "table2/replay-step-global-local" Tea_core.Transition.config_global_local;
    table3;
    step_test "table4/step-no-global-local" Tea_core.Transition.config_no_global_local;
    step_test "table4/step-global-no-local" Tea_core.Transition.config_global_no_local;
    step_test "table4/step-global-local" Tea_core.Transition.config_global_local;
    step_packed;
  ]

let run_micro () =
  let open Bechamel in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-40s %12.1f ns/op\n%!" name est
          | Some _ | None -> Printf.printf "%-40s (no estimate)\n%!" name)
        ols)
    (benchmarks ())

(* Head-to-head replay throughput: the packed engine vs the three Table 4
   reference configurations on the list-scan micro's full PC stream. The
   ISSUE target is packed >= 5x the Global/Local reference engine. *)
let run_packed_compare () =
  let image = Tea_workloads.Micro.list_scan () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  let auto = Tea_core.Builder.build traces in
  (* Capture the block stream once and decode it once: both engines replay
     the identical pre-decoded (starts, insns) arrays. *)
  let path = Filename.temp_file "tea_bench" ".trc" in
  let n_blocks = Tea_pinsim.Trace_capture.record image path in
  let starts = Array.make n_blocks 0 and insns = Array.make n_blocks 0 in
  let i = ref 0 in
  Tea_core.Pc_trace.fold path () (fun () ~start ~insns:n ->
      starts.(!i) <- start;
      insns.(!i) <- n;
      incr i);
  Sys.remove path;
  progress "[bench] packed head-to-head: %d blocks from micro:listscan" n_blocks;
  let time_replay mk_rep =
    (* best of 5, one warmup *)
    let best = ref infinity in
    let last = ref None in
    for round = 0 to 5 do
      let rep = mk_rep () in
      let t0 = Unix.gettimeofday () in
      Tea_core.Replayer.feed_run rep ~insns starts ~len:n_blocks;
      let dt = Unix.gettimeofday () -. t0 in
      if round > 0 && dt < !best then best := dt;
      last := Some rep
    done;
    (!best, Option.get !last)
  in
  let reference name config =
    let dt, rep =
      time_replay (fun () ->
          Tea_core.Replayer.create (Tea_core.Transition.create config auto))
    in
    (name, dt, rep)
  in
  let packed_dt, packed_rep =
    time_replay (fun () ->
        Tea_core.Replayer.create_packed (Tea_core.Packed.freeze auto))
  in
  let rows =
    [
      reference "no-global/local" Tea_core.Transition.config_no_global_local;
      reference "global/no-local" Tea_core.Transition.config_global_no_local;
      reference "global/local" Tea_core.Transition.config_global_local;
      ("packed", packed_dt, packed_rep);
    ]
  in
  List.iter
    (fun (name, dt, rep) ->
      Printf.printf "%-16s %8.1f ns/block  (coverage %.1f%%, %d enters)\n" name
        (1e9 *. dt /. float_of_int n_blocks)
        (100.0 *. Tea_core.Replayer.coverage rep)
        (Tea_core.Replayer.trace_enters rep))
    rows;
  let gl_dt =
    let _, dt, _ = List.nth rows 2 in
    dt
  in
  Printf.printf "packed speedup vs global/local: %.1fx (target >= 5x)\n"
    (gl_dt /. packed_dt);
  (* the engines must agree bit-for-bit on what they replayed *)
  let gl_rep = match List.nth rows 2 with _, _, r -> r in
  if
    Tea_core.Replayer.coverage gl_rep <> Tea_core.Replayer.coverage packed_rep
    || Tea_core.Replayer.trace_enters gl_rep
       <> Tea_core.Replayer.trace_enters packed_rep
    || Tea_core.Replayer.tbb_counts gl_rep
       <> Tea_core.Replayer.tbb_counts packed_rep
  then begin
    prerr_endline "[bench] ERROR: packed and reference engines disagree";
    exit 1
  end

(* The parallel driver, measured: the full table sweep at --jobs 1/2/4
   (asserting byte-identical tables), then the sharded PC-trace replay on
   a captured stream (asserting profile equality). Speedup is bounded by
   the machine's cores; the byte-identity checks hold everywhere. *)
let run_parallel_compare ~benchmarks =
  let module Pool = Tea_parallel.Pool in
  (* warm the generated-image cache so the sequential baseline doesn't
     pay one-time generation the parallel runs then get for free *)
  List.iter
    (fun n ->
      match Tea_workloads.Spec2000.by_name n with
      | Some p -> ignore (Tea_workloads.Spec2000.image p)
      | None -> ())
    benchmarks;
  let sweep pool =
    let benches = Experiments.prepare ?pool ~benchmarks () in
    String.concat "\n"
      [
        Experiments.render_table1 (Experiments.table1 ?pool benches);
        Experiments.render_table2 (Experiments.table2 ?pool benches);
        Experiments.render_table3 (Experiments.table3 ?pool benches);
        Experiments.render_table4 (Experiments.table4 ?pool benches);
      ]
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  progress "[bench] parallel table sweep: %d benchmarks, jobs 1 vs 2 vs 4..."
    (List.length benchmarks);
  let seq_out, seq_dt = time (fun () -> sweep None) in
  Printf.printf "table sweep, jobs 1: %6.1fs (baseline)\n%!" seq_dt;
  List.iter
    (fun jobs ->
      let out, dt =
        time (fun () ->
            Pool.with_pool ~jobs (fun pool ->
                let out = sweep (Some pool) in
                if not !quiet then
                  prerr_string
                    (Tea_report.Stats.render ~title:"pool domains"
                       (Pool.metrics_snapshot pool));
                out))
      in
      if out <> seq_out then begin
        prerr_endline "[bench] ERROR: parallel sweep differs from sequential";
        exit 1
      end;
      Printf.printf "table sweep, jobs %d: %6.1fs  speedup %.2fx  (byte-identical)\n%!"
        jobs dt (seq_dt /. dt))
    [ 2; 4 ];
  (* sharded offline replay on a real captured stream *)
  let image = Tea_workloads.Micro.list_scan () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  let packed = Tea_core.Packed.freeze (Tea_core.Builder.build traces) in
  let path = Filename.temp_file "tea_bench" ".trc" in
  let n_blocks = Tea_pinsim.Trace_capture.record image path in
  let starts, insns, len = Tea_parallel.Shard.load_pc_trace path in
  Sys.remove path;
  progress "[bench] sharded pc-trace replay: %d blocks from micro:listscan"
    n_blocks;
  let replay_at jobs =
    Pool.with_pool ~jobs (fun pool ->
        (* best of 5, one warmup *)
        let best = ref infinity and last = ref None in
        for round = 0 to 5 do
          let p, dt =
            time (fun () ->
                Tea_parallel.Shard.replay_arrays pool packed ~insns starts ~len)
          in
          if round > 0 && dt < !best then best := dt;
          last := Some p
        done;
        (Option.get !last, !best))
  in
  let seq_profile, seq_replay_dt = replay_at 1 in
  List.iter
    (fun jobs ->
      let profile, dt = replay_at jobs in
      if not (Tea_parallel.Profile.equal profile seq_profile) then begin
        prerr_endline "[bench] ERROR: sharded replay profile differs";
        exit 1
      end;
      Printf.printf
        "replay, jobs %d: %8.1f ns/block  %.1f Mcycles simulated  speedup \
         %.2fx  (profile identical)\n"
        jobs
        (1e9 *. dt /. float_of_int len)
        (float_of_int profile.Tea_parallel.Profile.cycles /. 1e6)
        (seq_replay_dt /. dt))
    [ 1; 2; 4 ];
  Printf.printf
    "note: wall-clock speedup is bounded by available cores (this machine \
     recommends %d domains)\n"
    (Domain.recommended_domain_count ())

let run_ablations () =
  progress "[bench] ablation: selection strategies (incl. MFET)...";
  print_string (Tea_report.Ablations.(render_strategies (strategies ())));
  print_newline ();
  progress "[bench] ablation: local-cache size sweep...";
  print_string (Tea_report.Ablations.(render_cache_slots (cache_slots ())));
  print_newline ();
  progress "[bench] ablation: hot-threshold sweep...";
  print_string (Tea_report.Ablations.(render_hot_threshold (hot_threshold ())))

(* Extension studies: the simulator-side use cases of §1, exercised on a
   few benchmarks so the bench output demonstrates them end to end. *)
let run_extensions () =
  let mret = Option.get (Tea_traces.Registry.by_name "mret") in
  let with_traces name f =
    match Tea_workloads.Spec2000.by_name name with
    | None -> ()
    | Some p ->
        let image = Tea_workloads.Spec2000.image p in
        let dbt = Tea_dbt.Stardbt.record ~strategy:mret image in
        f image (Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set)
  in
  progress "[bench] extension: per-trace cache attribution (181.mcf)...";
  with_traces "181.mcf" (fun image traces ->
      let report = Tea_cachesim.Collector.profile ~traces image in
      print_string (Tea_cachesim.Collector.render report);
      print_newline ());
  progress "[bench] extension: per-trace branch prediction (186.crafty)...";
  with_traces "186.crafty" (fun image traces ->
      let report = Tea_bpred.Collector.profile ~traces image in
      print_string (Tea_bpred.Collector.render report);
      print_newline ());
  progress "[bench] extension: trace-cache layout study (scattered micro)...";
  let scattered = Tea_workloads.Micro.scattered () in
  let dbt = Tea_dbt.Stardbt.record ~strategy:mret scattered in
  let r =
    Tea_cachesim.Layout.study
      ~traces:(Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set)
      scattered
  in
  print_string (Tea_cachesim.Layout.render r);
  print_newline ();
  progress "[bench] extension: profile-weighted optimization (171.swim)...";
  with_traces "171.swim" (fun image traces ->
      let auto = Tea_core.Builder.build traces in
      let trans =
        Tea_core.Transition.create Tea_core.Transition.config_global_local auto
      in
      let rep = Tea_core.Replayer.create trans in
      let filter =
        Tea_pinsim.Edge_filter.create ~emit:(fun b ~expanded ->
            Tea_core.Replayer.feed_addr rep ~insns:expanded b.Tea_cfg.Block.start)
      in
      let _ = Tea_pinsim.Pin.run ~tool:(Tea_pinsim.Edge_filter.callbacks filter) image in
      Tea_pinsim.Edge_filter.flush filter;
      let total =
        List.fold_left
          (fun acc t -> acc + (Tea_opt.Opt.weighted rep t).Tea_opt.Opt.expected_cycles)
          0 traces
      in
      Printf.printf
        "expected cycles recovered by optimizing swim's traces: %d (of %d native)\n"
        total (Tea_pinsim.Pin.native_cycles image))

(* ---- telemetry overhead gate ----

   The probes compiled into the hot paths must cost nothing when nothing
   is installed: the disabled entry point is one atomic load and a
   branch. This mode pins that down empirically on the packed replay of
   micro:listscan's full PC stream — two independent best-of-N series
   with telemetry disabled must agree within 2% (any systematic probe
   cost would show up as much more than scheduler noise on this loop),
   and the telemetry-enabled series is reported alongside for scale. *)
let run_telemetry () =
  let image = Tea_workloads.Micro.list_scan () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  let packed = Tea_core.Packed.freeze (Tea_core.Builder.build traces) in
  let path = Filename.temp_file "tea_bench" ".trc" in
  let n_blocks = Tea_pinsim.Trace_capture.record image path in
  let starts, insns, len = Tea_parallel.Shard.load_pc_trace path in
  Sys.remove path;
  progress "[bench] telemetry overhead gate: %d blocks from micro:listscan"
    n_blocks;
  (* one replay of the stream is ~100us — far too short to time against
     gettimeofday noise, so each sample times [reps] back-to-back replays
     (tens of ms) and a series keeps the best of 8 samples plus a warmup *)
  let reps = 100 in
  let ns_per_block dt = 1e9 *. dt /. float_of_int (reps * len) in
  let sample () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      let rep = Tea_core.Replayer.create_packed packed in
      Tea_core.Replayer.feed_run rep ~insns starts ~len
    done;
    Unix.gettimeofday () -. t0
  in
  let series () =
    let best = ref infinity in
    for round = 0 to 8 do
      let dt = sample () in
      if round > 0 && dt < !best then best := dt
    done;
    !best
  in
  (* the two disabled series are interleaved sample-by-sample so slow
     machine drift (frequency scaling, neighbours) hits both equally;
     what remains is per-sample noise, which best-of-8 suppresses *)
  let disabled_pair () =
    let best_a = ref infinity and best_b = ref infinity in
    for round = 0 to 8 do
      let a = sample () in
      let b = sample () in
      if round > 0 then begin
        if a < !best_a then best_a := a;
        if b < !best_b then best_b := b
      end
    done;
    (!best_a, !best_b)
  in
  let rec measure attempts =
    let a, b = disabled_pair () in
    let drift = abs_float (a -. b) /. min a b in
    if drift <= 0.02 || attempts <= 1 then (a, b, drift)
    else begin
      progress "[bench] drift %.2f%% > 2%%, re-measuring (%d attempts left)"
        (100.0 *. drift) (attempts - 1);
      measure (attempts - 1)
    end
  in
  let a, b, drift = measure 3 in
  Printf.printf
    "telemetry disabled: %8.1f ns/block vs %8.1f ns/block  (drift %.2f%%, \
     gate 2%%)\n"
    (ns_per_block a) (ns_per_block b) (100.0 *. drift);
  if drift > 0.02 then begin
    prerr_endline
      "[bench] ERROR: disabled-telemetry replay drifts more than 2% — the \
       no-op probe path is not free";
    exit 1
  end;
  Tea_telemetry.Probe.install ();
  let e = series () in
  let snap = Tea_telemetry.Probe.uninstall () in
  Printf.printf "telemetry enabled:  %8.1f ns/block  (+%.1f%% vs best disabled)\n"
    (ns_per_block e)
    (100.0 *. ((e /. min a b) -. 1.0));
  let steps =
    match
      List.assoc_opt "replayer.steps" snap.Tea_telemetry.Metrics.s_counters
    with
    | Some n -> n
    | None -> 0
  in
  Printf.printf "probe counters collected while enabled: replayer.steps=%d\n"
    steps;
  if steps <> 9 * reps * len then begin
    prerr_endline "[bench] ERROR: enabled-telemetry run missed replay steps";
    exit 1
  end

(* ---- profile-guided repacking: the BENCH_repack.json trajectory ----

   For every workload: record traces, freeze the flat image, capture the
   PC stream once, collect a profile on that stream, repack, then time
   flat vs repacked replay of the identical stream. Two hard gates per
   workload (exit 1, not report lines): the TBB mappings must be
   byte-identical, and the repacked image must never charge more
   simulated cycles than the flat one on its own profiling stream — the
   per-state argmin always has the source layout as a candidate, so a
   violation is a bug, not a tuning miss.

   Traces are recorded with the condition-tree strategy: MRET superblocks
   give every state at most one in-trace successor, so there is no edge
   span to reorder and the only repacking lever is the inline cache; tree
   traces produce the branching spans (2-4 edges) whose dispatch cost the
   pass exists to cut. Wall-clock numbers are machine-dependent and are
   reported, not gated. *)

let repack_micro_set =
  (* the listscan-class hot-loop workloads behind the geomean gate *)
  [
    ("micro:listscan", fun () -> Tea_workloads.Micro.list_scan ());
    ("micro:copy", fun () -> Tea_workloads.Micro.copy_loop ());
    ("micro:nested", fun () -> Tea_workloads.Micro.nested_loop ());
    ("micro:branchy", fun () -> Tea_workloads.Micro.branchy_loop ());
  ]

let repack_image name =
  match List.assoc_opt name repack_micro_set with
  | Some f -> f ()
  | None -> (
      match Tea_workloads.Spec2000.by_name name with
      | Some p -> Tea_workloads.Spec2000.image p
      | None -> invalid_arg ("bench repack: unknown workload " ^ name))

type repack_row = {
  rr_name : string;
  rr_hot : bool;
  rr_blocks : int;
  rr_base_ns : float;  (** full replay, ns/block, flat image *)
  rr_base_step_ns : float;  (** bare {!Tea_core.Packed.step}, ns/step *)
  rr_base_cycles : int;
  rr_tuned_ns : float;
  rr_tuned_step_ns : float;
  rr_tuned_cycles : int;
  rr_ic_rate : float;
  rr_hot_edges : int;
  rr_moved : int;
}

let run_repack_one ~strategy name =
  let image = repack_image name in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  let flat = Tea_core.Packed.freeze (Tea_core.Builder.build traces) in
  let path = Filename.temp_file "tea_bench" ".trc" in
  let _ = Tea_pinsim.Trace_capture.record image path in
  let starts, insns, len = Tea_parallel.Shard.load_pc_trace path in
  Sys.remove path;
  let profile = Tea_opt.Repack.collect flat starts ~len in
  let tuned = Tea_opt.Repack.repack flat profile in
  let run_once img =
    let rep = Tea_core.Replayer.create_packed img in
    Tea_core.Replayer.feed_run rep ~insns starts ~len;
    rep
  in
  let base_rep = run_once flat and tuned_rep = run_once tuned in
  if
    Tea_core.Replayer.tbb_counts base_rep
    <> Tea_core.Replayer.tbb_counts tuned_rep
  then begin
    Printf.eprintf "[bench] ERROR: %s: repacked TBB mapping differs\n" name;
    exit 1
  end;
  let base_cycles = Tea_core.Replayer.cycles base_rep in
  let tuned_cycles = Tea_core.Replayer.cycles tuned_rep in
  if tuned_cycles > base_cycles then begin
    Printf.eprintf
      "[bench] ERROR: %s: repacked charges more simulated cycles (%d > %d)\n"
      name tuned_cycles base_cycles;
    exit 1
  end;
  (* One replay of a short stream is microseconds — far below timer
     resolution — so each sample times [reps] back-to-back replays
     (milliseconds). The two layouts are sampled interleaved so machine
     drift hits both equally; best of 5 rounds after one warmup. Two
     series per layout: the full replay (fused loop plus per-block
     accounting, the end-to-end number) and the bare transition function
     ({!Tea_core.Packed.step} on the same stream, the dispatch cost the
     pass actually targets — the per-block replay accounting is identical
     either way and dilutes the ratio on tiny automata). *)
  let reps = 1 + (2_000_000 / max 1 len) in
  let sample img =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      let rep = Tea_core.Replayer.create_packed img in
      Tea_core.Replayer.feed_run rep ~insns starts ~len
    done;
    Unix.gettimeofday () -. t0
  in
  let sample_step img =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      let s = ref Tea_core.Automaton.nte in
      for i = 0 to len - 1 do
        s := Tea_core.Packed.step img !s (Array.unsafe_get starts i)
      done;
      ignore (Sys.opaque_identity !s)
    done;
    Unix.gettimeofday () -. t0
  in
  let interleaved f =
    let best_b = ref infinity and best_t = ref infinity in
    for round = 0 to 5 do
      let b = f flat in
      let t = f tuned in
      if round > 0 then begin
        if b < !best_b then best_b := b;
        if t < !best_t then best_t := t
      end
    done;
    (!best_b, !best_t)
  in
  let best_b, best_t = interleaved sample in
  let step_b, step_t = interleaved sample_step in
  let ns dt = 1e9 *. dt /. float_of_int (reps * len) in
  let hits = Tea_core.Packed.ic_hits tuned
  and misses = Tea_core.Packed.ic_misses tuned in
  {
    rr_name = name;
    rr_hot = List.mem_assoc name repack_micro_set;
    rr_blocks = len;
    rr_base_ns = ns best_b;
    rr_base_step_ns = ns step_b;
    rr_base_cycles = base_cycles;
    rr_tuned_ns = ns best_t;
    rr_tuned_step_ns = ns step_t;
    rr_tuned_cycles = tuned_cycles;
    rr_ic_rate =
      (if hits + misses = 0 then 0.0
       else float_of_int hits /. float_of_int (hits + misses));
    rr_hot_edges = Tea_core.Packed.hot_edges tuned;
    rr_moved = Tea_opt.Repack.moved_states tuned;
  }

let repack_json ~smoke ~strategy rows ~geo_replay ~geo_step ~geo_hot
    ~geo_cycles =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.bprintf buf fmt in
  add "{\n";
  add "  \"bench\": \"repack\",\n";
  add "  \"smoke\": %b,\n" smoke;
  add "  \"strategy\": %S,\n" strategy;
  add "  \"hot_prefix_cap\": %d,\n" Tea_opt.Repack.default_hot_prefix;
  add "  \"workloads\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      add "    {\"name\": %S, \"hot\": %b, \"blocks\": %d,\n" r.rr_name
        r.rr_hot r.rr_blocks;
      add
        "     \"baseline\": {\"replay_ns_per_block\": %.2f, \"step_ns\": \
         %.2f, \"sim_cycles\": %d},\n"
        r.rr_base_ns r.rr_base_step_ns r.rr_base_cycles;
      add
        "     \"repacked\": {\"replay_ns_per_block\": %.2f, \"step_ns\": \
         %.2f, \"sim_cycles\": %d, \"ic_hit_rate\": %.4f, \"hot_edges\": \
         %d, \"moved_states\": %d},\n"
        r.rr_tuned_ns r.rr_tuned_step_ns r.rr_tuned_cycles r.rr_ic_rate
        r.rr_hot_edges r.rr_moved;
      add
        "     \"replay_speedup\": %.3f, \"step_speedup\": %.3f, \
         \"cycle_ratio\": %.4f}%s\n"
        (r.rr_base_ns /. r.rr_tuned_ns)
        (r.rr_base_step_ns /. r.rr_tuned_step_ns)
        (float_of_int r.rr_tuned_cycles /. float_of_int r.rr_base_cycles)
        (if i = n - 1 then "" else ","))
    rows;
  add "  ],\n";
  add "  \"geomean_replay_speedup_all\": %.3f,\n" geo_replay;
  add "  \"geomean_step_speedup_all\": %.3f,\n" geo_step;
  add "  \"geomean_step_speedup_hot\": %.3f,\n" geo_hot;
  add "  \"geomean_cycle_ratio\": %.4f\n" geo_cycles;
  Buffer.contents buf ^ "}\n"

let run_repack ~smoke =
  let strategy_name = "ctt" in
  let strategy = Option.get (Tea_traces.Registry.by_name strategy_name) in
  let names =
    if smoke then [ "micro:listscan"; "181.mcf" ]
    else List.map fst repack_micro_set @ Tea_workloads.Spec2000.names
  in
  progress "[bench] repack: %d workloads, %s traces, profile-guided layout..."
    (List.length names) strategy_name;
  let rows =
    List.map
      (fun name ->
        let r = run_repack_one ~strategy name in
        Printf.printf
          "%-16s replay %5.1f -> %5.1f ns (%.2fx)  step %5.1f -> %5.1f ns \
           (%.2fx)  cycles %.3fx  ic %5.1f%%  %d hot edges, %d moved\n%!"
          r.rr_name r.rr_base_ns r.rr_tuned_ns
          (r.rr_base_ns /. r.rr_tuned_ns)
          r.rr_base_step_ns r.rr_tuned_step_ns
          (r.rr_base_step_ns /. r.rr_tuned_step_ns)
          (float_of_int r.rr_tuned_cycles /. float_of_int r.rr_base_cycles)
          (100.0 *. r.rr_ic_rate) r.rr_hot_edges r.rr_moved;
        r)
      names
  in
  let geo f = Tea_report.Stats.geomean (List.map f rows) in
  let step_speedup r = r.rr_base_step_ns /. r.rr_tuned_step_ns in
  let geo_replay = geo (fun r -> r.rr_base_ns /. r.rr_tuned_ns) in
  let geo_step = geo step_speedup in
  let geo_hot =
    Tea_report.Stats.geomean
      (List.filter_map
         (fun r -> if r.rr_hot then Some (step_speedup r) else None)
         rows)
  in
  let geo_cycles =
    geo (fun r ->
        float_of_int r.rr_tuned_cycles /. float_of_int r.rr_base_cycles)
  in
  Printf.printf
    "geomean replay speedup %.2fx; step speedup %.2fx all, %.2fx hot-loop \
     (target >= 1.2x); cycle ratio %.3fx\n"
    geo_replay geo_step geo_hot geo_cycles;
  let json =
    repack_json ~smoke ~strategy:strategy_name rows ~geo_replay ~geo_step
      ~geo_hot ~geo_cycles
  in
  let oc = open_out "BENCH_repack.json" in
  output_string oc json;
  close_out oc;
  progress "[bench] wrote BENCH_repack.json (%d workloads)" (List.length rows)

(* ---- superstate fusion: the BENCH_fuse.json trajectory ----

   For every workload: record MRET traces (superblocks give every state at
   most one in-trace successor — the chain-rich shape fusion targets),
   freeze, profile-repack on the captured stream (the PR 4 engine is the
   baseline), fuse the repacked image, then time baseline vs fused replay
   of the identical stream. One hard gate per workload (exit 1): the full
   replay snapshot — per-TBB counts, coverage, enters/exits, transition
   stats and simulated cycles — must be bit-identical between the two
   engines. Fusion is a pure dispatch-cost optimization; any observable
   difference is a bug.

   The speedup target is scoped to loop-dominated workloads: the hot-loop
   micros plus every workload whose replay stream spends >= 50% of its
   steps inside fused chains (measured with the probe counters on one
   extra fused run). Straight-line or cold-dominated workloads fall back
   to the verbatim one-step path and are expected near 1.0x; they are
   reported and floor-checked, not geomean-gated. *)

type fuse_row = {
  fu_name : string;
  fu_loopy : bool;
  fu_blocks : int;
  fu_fraction : float;  (** share of replay steps handled inside chains *)
  fu_chains : int;
  fu_cyclic : int;
  fu_states : int;  (** states covered by chains *)
  fu_base_ns : float;  (** PGO-repacked replay, ns/block *)
  fu_fused_ns : float;
  fu_cycles : int;  (** identical for both engines, by gate *)
}

let run_fuse_one ~strategy name =
  let image = repack_image name in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  let flat = Tea_core.Packed.freeze (Tea_core.Builder.build traces) in
  let path = Filename.temp_file "tea_bench" ".trc" in
  let _ = Tea_pinsim.Trace_capture.record image path in
  let starts, insns, len = Tea_parallel.Shard.load_pc_trace path in
  Sys.remove path;
  (* baseline: PR 4's best engine — profile-guided repacked *)
  let baseline =
    Tea_opt.Repack.repack flat (Tea_opt.Repack.collect flat starts ~len)
  in
  (* profile-aware fusion: re-collect over the repacked layout so chain
     selection sees this stream's continuation fractions *)
  let profile = Tea_opt.Repack.collect baseline starts ~len in
  let fused = Tea_opt.Fuse.fuse ~profile baseline in
  let run_once img =
    let rep = Tea_core.Replayer.create_packed img in
    Tea_core.Replayer.feed_run rep ~insns starts ~len;
    rep
  in
  let base_rep = run_once baseline and fused_rep = run_once fused in
  if
    not
      (Tea_parallel.Profile.equal
         (Tea_parallel.Profile.of_replayer base_rep)
         (Tea_parallel.Profile.of_replayer fused_rep))
  then begin
    Printf.eprintf
      "[bench] ERROR: %s: fused replay diverged from the repacked baseline\n"
      name;
    exit 1
  end;
  (* chain coverage of the stream, from the probe counters (skipped when
     the harness itself runs under --telemetry/--metrics — the probe set
     is already installed and owned by the driver) *)
  let fraction =
    if Tea_telemetry.Probe.enabled () then 0.0
    else begin
      Tea_telemetry.Probe.install ();
      ignore (run_once fused);
      let snap = Tea_telemetry.Probe.uninstall () in
      let c k =
        Option.value
          (List.assoc_opt k snap.Tea_telemetry.Metrics.s_counters)
          ~default:0
      in
      let steps = c "replayer.steps" in
      if steps = 0 then 0.0
      else float_of_int (c "packed.fused_steps") /. float_of_int steps
    end
  in
  (* interleaved best-of-5 timing after one warmup, as in the repack
     bench: one replay of a short stream is microseconds, so each sample
     times [reps] back-to-back replays *)
  let reps = 1 + (2_000_000 / max 1 len) in
  let sample img =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      let rep = Tea_core.Replayer.create_packed img in
      Tea_core.Replayer.feed_run rep ~insns starts ~len
    done;
    Unix.gettimeofday () -. t0
  in
  let best_b = ref infinity and best_f = ref infinity in
  for round = 0 to 5 do
    let b = sample baseline in
    let f = sample fused in
    if round > 0 then begin
      if b < !best_b then best_b := b;
      if f < !best_f then best_f := f
    end
  done;
  let ns dt = 1e9 *. dt /. float_of_int (reps * len) in
  {
    fu_name = name;
    fu_loopy = List.mem_assoc name repack_micro_set || fraction >= 0.5;
    fu_blocks = len;
    fu_fraction = fraction;
    fu_chains = Tea_core.Packed.n_chains fused;
    fu_cyclic = Tea_core.Packed.n_cyclic_chains fused;
    fu_states = Tea_core.Packed.fused_edges fused;
    fu_base_ns = ns !best_b;
    fu_fused_ns = ns !best_f;
    fu_cycles = Tea_core.Replayer.cycles fused_rep;
  }

let fuse_json ~smoke ~strategy rows ~geo_all ~geo_loopy ~floor =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.bprintf buf fmt in
  add "{\n";
  add "  \"bench\": \"fuse\",\n";
  add "  \"smoke\": %b,\n" smoke;
  add "  \"strategy\": %S,\n" strategy;
  add "  \"min_chain\": %d,\n" Tea_opt.Fuse.default_min_chain;
  add "  \"min_expected_run\": %.1f,\n" Tea_opt.Fuse.default_min_expected_run;
  add "  \"min_coverage\": %.2f,\n" Tea_opt.Fuse.default_min_coverage;
  add "  \"workloads\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      add
        "    {\"name\": %S, \"loopy\": %b, \"blocks\": %d, \
         \"fused_step_fraction\": %.4f,\n"
        r.fu_name r.fu_loopy r.fu_blocks r.fu_fraction;
      add
        "     \"chains\": %d, \"cyclic_chains\": %d, \"fused_states\": %d, \
         \"sim_cycles\": %d,\n"
        r.fu_chains r.fu_cyclic r.fu_states r.fu_cycles;
      add
        "     \"baseline_replay_ns_per_block\": %.2f, \
         \"fused_replay_ns_per_block\": %.2f, \"replay_speedup\": %.3f}%s\n"
        r.fu_base_ns r.fu_fused_ns
        (r.fu_base_ns /. r.fu_fused_ns)
        (if i = n - 1 then "" else ","))
    rows;
  add "  ],\n";
  add "  \"geomean_replay_speedup_all\": %.3f,\n" geo_all;
  add "  \"geomean_replay_speedup_loopy\": %.3f,\n" geo_loopy;
  add "  \"min_replay_speedup\": %.3f\n" floor;
  Buffer.contents buf ^ "}\n"

let run_fuse ~smoke =
  let strategy_name = "mret" in
  let strategy = Option.get (Tea_traces.Registry.by_name strategy_name) in
  let names =
    if smoke then [ "micro:listscan"; "181.mcf" ]
    else List.map fst repack_micro_set @ Tea_workloads.Spec2000.names
  in
  progress "[bench] fuse: %d workloads, %s traces, superstate fusion over the repacked engine..."
    (List.length names) strategy_name;
  let rows =
    List.map
      (fun name ->
        let r = run_fuse_one ~strategy name in
        Printf.printf
          "%-16s replay %5.1f -> %5.1f ns (%.2fx)  %d chains (%d cyclic, %d \
           states)  %4.1f%% fused steps%s\n%!"
          r.fu_name r.fu_base_ns r.fu_fused_ns
          (r.fu_base_ns /. r.fu_fused_ns)
          r.fu_chains r.fu_cyclic r.fu_states
          (100.0 *. r.fu_fraction)
          (if r.fu_loopy then "  [loopy]" else "");
        r)
      names
  in
  let speedup r = r.fu_base_ns /. r.fu_fused_ns in
  let geo_all = Tea_report.Stats.geomean (List.map speedup rows) in
  let loopy = List.filter (fun r -> r.fu_loopy) rows in
  let geo_loopy =
    Tea_report.Stats.geomean (List.map speedup (if loopy = [] then rows else loopy))
  in
  let floor = List.fold_left (fun m r -> min m (speedup r)) infinity rows in
  Printf.printf
    "geomean replay speedup: %.2fx all, %.2fx loop-dominated (target >= \
     1.3x); slowest workload %.2fx (floor 0.95x)\n"
    geo_all geo_loopy floor;
  if floor < 0.95 then
    progress "[bench] WARNING: a workload regressed below the 0.95x floor";
  let json = fuse_json ~smoke ~strategy:strategy_name rows ~geo_all ~geo_loopy ~floor in
  let oc = open_out "BENCH_fuse.json" in
  output_string oc json;
  close_out oc;
  progress "[bench] wrote BENCH_fuse.json (%d workloads)" (List.length rows)

(* ---- closure-threaded dispatch: the BENCH_compile.json trajectory ----

   For every workload: record condition-tree traces (branching spans are
   the dispatch shapes closure compilation specializes), freeze,
   profile-repack and fuse on the captured stream (the PR 5+6 engine is
   the baseline — compilation composes over both passes), compile the
   tuned image, then time interpreted vs compiled replay of the
   identical stream. Three hard gates per workload (exit 1): the
   compiled TBB mapping must match the reference transition engine's on
   the raw automaton, and the full profile and the simulated cycles must
   be bit-identical to the interpreted tuned engine. Compilation is a
   pure wall-clock optimization — the per-step charges are captured from
   the same cost tables at build time, so any observable drift is a bug.

   The speedup target is scoped to branchy workloads: streams spending
   < 50% of their steps inside fused chains, so interpreted dispatch
   actually walks spans per step — the shape the straight-line compares
   replace. Chain-dominated streams already replay through bulk
   accounting on both engines and are floor-checked, not geomean-gated. *)

type compile_row = {
  co_name : string;
  co_branchy : bool;  (** fused-step fraction < 0.5 — span-walk dominated *)
  co_blocks : int;
  co_fraction : float;  (** share of replay steps handled inside chains *)
  co_closures : int;
  co_fallback : int;  (** minihash-fallback states (fan-out > scan_cap) *)
  co_chained : int;  (** fused-chain matcher closures *)
  co_base_ns : float;  (** repacked+fused interpreted replay, ns/block *)
  co_compiled_ns : float;
  co_cycles : int;  (** identical across all three engines, by gate *)
}

let run_compile_one ~strategy name =
  let image = repack_image name in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  let auto = Tea_core.Builder.build traces in
  let flat = Tea_core.Packed.freeze auto in
  let path = Filename.temp_file "tea_bench" ".trc" in
  let _ = Tea_pinsim.Trace_capture.record image path in
  let starts, insns, len = Tea_parallel.Shard.load_pc_trace path in
  Sys.remove path;
  (* baseline: the full PR 5+6 pipeline — profile-guided repack, then
     profile-aware fusion over the repacked layout *)
  let repacked =
    Tea_opt.Repack.repack flat (Tea_opt.Repack.collect flat starts ~len)
  in
  let profile = Tea_opt.Repack.collect repacked starts ~len in
  let fused = Tea_opt.Fuse.fuse ~profile repacked in
  let run_packed img =
    let rep = Tea_core.Replayer.create_packed img in
    Tea_core.Replayer.feed_run rep ~insns starts ~len;
    rep
  in
  let base_rep = run_packed fused in
  let compiled = Tea_opt.Compile.compile (Tea_core.Packed.dup fused) in
  let comp_rep = Tea_core.Replayer.create_compiled compiled in
  Tea_core.Replayer.feed_run comp_rep ~insns starts ~len;
  (* gate 1: TBB mapping vs the paper-faithful reference engine on the
     raw automaton — compilation must not even depend on the layout *)
  let ref_rep =
    Tea_core.Replayer.create
      (Tea_core.Transition.create Tea_core.Transition.config_global_local auto)
  in
  Tea_core.Replayer.feed_run ref_rep ~insns starts ~len;
  if Tea_core.Replayer.tbb_counts ref_rep <> Tea_core.Replayer.tbb_counts comp_rep
  then begin
    Printf.eprintf
      "[bench] ERROR: %s: compiled TBB mapping diverged from the reference \
       engine\n"
      name;
    exit 1
  end;
  (* gates 2+3: full profile and simulated cycles vs the interpreted
     tuned engine *)
  if
    not
      (Tea_parallel.Profile.equal
         (Tea_parallel.Profile.of_replayer base_rep)
         (Tea_parallel.Profile.of_replayer comp_rep))
  then begin
    Printf.eprintf
      "[bench] ERROR: %s: compiled replay profile diverged from the \
       interpreted engine\n"
      name;
    exit 1
  end;
  if Tea_core.Replayer.cycles comp_rep <> Tea_core.Replayer.cycles base_rep
  then begin
    Printf.eprintf
      "[bench] ERROR: %s: compiled replay charges different simulated \
       cycles (%d <> %d)\n"
      name
      (Tea_core.Replayer.cycles comp_rep)
      (Tea_core.Replayer.cycles base_rep);
    exit 1
  end;
  (* chain coverage of the stream, as in the fuse bench (skipped when the
     driver itself owns the probe set) *)
  let fraction =
    if Tea_telemetry.Probe.enabled () then 0.0
    else begin
      Tea_telemetry.Probe.install ();
      ignore (run_packed fused);
      let snap = Tea_telemetry.Probe.uninstall () in
      let c k =
        Option.value
          (List.assoc_opt k snap.Tea_telemetry.Metrics.s_counters)
          ~default:0
      in
      let steps = c "replayer.steps" in
      if steps = 0 then 0.0
      else float_of_int (c "packed.fused_steps") /. float_of_int steps
    end
  in
  (* interleaved best-of-5 timing after one warmup; the compiled image is
     built once outside the loop — of_packed is O(states), a one-time
     cost amortized over the whole replay fleet, not a per-replay one *)
  let timed = Tea_opt.Compile.compile (Tea_core.Packed.dup fused) in
  let reps = 1 + (2_000_000 / max 1 len) in
  let sample_interp () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      let rep = Tea_core.Replayer.create_packed fused in
      Tea_core.Replayer.feed_run rep ~insns starts ~len
    done;
    Unix.gettimeofday () -. t0
  in
  let sample_compiled () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      let rep = Tea_core.Replayer.create_compiled timed in
      Tea_core.Replayer.feed_run rep ~insns starts ~len
    done;
    Unix.gettimeofday () -. t0
  in
  let best_i = ref infinity and best_c = ref infinity in
  for round = 0 to 5 do
    let i = sample_interp () in
    let c = sample_compiled () in
    if round > 0 then begin
      if i < !best_i then best_i := i;
      if c < !best_c then best_c := c
    end
  done;
  let ns dt = 1e9 *. dt /. float_of_int (reps * len) in
  {
    co_name = name;
    co_branchy = fraction < 0.5;
    co_blocks = len;
    co_fraction = fraction;
    co_closures = Tea_core.Compiled.n_closures compiled;
    co_fallback = Tea_core.Compiled.fallback_states compiled;
    co_chained = Tea_core.Compiled.chained_states compiled;
    co_base_ns = ns !best_i;
    co_compiled_ns = ns !best_c;
    co_cycles = Tea_core.Replayer.cycles comp_rep;
  }

let compile_json ~smoke ~strategy rows ~geo_all ~geo_branchy ~floor =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.bprintf buf fmt in
  add "{\n";
  add "  \"bench\": \"compile\",\n";
  add "  \"smoke\": %b,\n" smoke;
  add "  \"strategy\": %S,\n" strategy;
  add "  \"scan_cap\": %d,\n" Tea_core.Compiled.scan_cap;
  add "  \"workloads\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      add
        "    {\"name\": %S, \"branchy\": %b, \"blocks\": %d, \
         \"fused_step_fraction\": %.4f,\n"
        r.co_name r.co_branchy r.co_blocks r.co_fraction;
      add
        "     \"closures\": %d, \"minihash_fallback_states\": %d, \
         \"chain_matchers\": %d, \"sim_cycles\": %d,\n"
        r.co_closures r.co_fallback r.co_chained r.co_cycles;
      add
        "     \"fused_replay_ns_per_block\": %.2f, \
         \"compiled_replay_ns_per_block\": %.2f, \"replay_speedup\": %.3f}%s\n"
        r.co_base_ns r.co_compiled_ns
        (r.co_base_ns /. r.co_compiled_ns)
        (if i = n - 1 then "" else ","))
    rows;
  add "  ],\n";
  add "  \"geomean_replay_speedup_all\": %.3f,\n" geo_all;
  add "  \"geomean_replay_speedup_branchy\": %.3f,\n" geo_branchy;
  add "  \"min_replay_speedup\": %.3f\n" floor;
  Buffer.contents buf ^ "}\n"

let run_compile ~smoke =
  let strategy_name = "ctt" in
  let strategy = Option.get (Tea_traces.Registry.by_name strategy_name) in
  let names =
    if smoke then [ "micro:listscan"; "181.mcf" ]
    else List.map fst repack_micro_set @ Tea_workloads.Spec2000.names
  in
  progress
    "[bench] compile: %d workloads, %s traces, closure-threaded dispatch \
     over the repacked+fused engine..."
    (List.length names) strategy_name;
  let rows =
    List.map
      (fun name ->
        let r = run_compile_one ~strategy name in
        Printf.printf
          "%-16s replay %5.1f -> %5.1f ns (%.2fx)  %d closures (%d minihash, \
           %d chain matchers)  %4.1f%% fused steps%s\n%!"
          r.co_name r.co_base_ns r.co_compiled_ns
          (r.co_base_ns /. r.co_compiled_ns)
          r.co_closures r.co_fallback r.co_chained
          (100.0 *. r.co_fraction)
          (if r.co_branchy then "  [branchy]" else "");
        r)
      names
  in
  let speedup r = r.co_base_ns /. r.co_compiled_ns in
  let geo_all = Tea_report.Stats.geomean (List.map speedup rows) in
  let branchy = List.filter (fun r -> r.co_branchy) rows in
  let geo_branchy =
    Tea_report.Stats.geomean
      (List.map speedup (if branchy = [] then rows else branchy))
  in
  let floor = List.fold_left (fun m r -> min m (speedup r)) infinity rows in
  Printf.printf
    "geomean replay speedup: %.2fx all, %.2fx branchy (target >= 1.15x); \
     slowest workload %.2fx (floor 0.98x)\n"
    geo_all geo_branchy floor;
  if geo_branchy < 1.15 then
    progress
      "[bench] WARNING: branchy geomean %.2fx below the 1.15x target"
      geo_branchy;
  if floor < 0.98 then
    progress "[bench] WARNING: a workload regressed below the 0.98x floor";
  let json =
    compile_json ~smoke ~strategy:strategy_name rows ~geo_all ~geo_branchy
      ~floor
  in
  let oc = open_out "BENCH_compile.json" in
  output_string oc json;
  close_out oc;
  progress "[bench] wrote BENCH_compile.json (%d workloads, identity gates \
            passed)"
    (List.length rows)

(* ---- adversarial scenarios: the BENCH_scenario.json trajectory ----

   Rows cover the three hazard classes over >= 3 base workloads:
   multi-asid interleaving (round-robin and seeded-random schedules over
   all bases at once), self-modifying code (periodic invalidation per
   base) and mid-trace interrupts (a periodic signal per base). Every row
   enforces the PR's hard gate before it is timed — demuxed replay
   (sequential [Multi_replayer] AND demux-first sharding at jobs 2 and 4,
   over flat AND repack+fuse-tuned per-asid images) must produce per-asid
   Profile snapshots equal to replaying each asid's projection in
   isolation; any divergence exits 1. Timing is the sequential demuxed
   replay of the synthesized event file (decode included), best-of-5
   after one warmup. *)

module Scenario = Tea_workloads.Scenario

type scn_prep = {
  sp_stream : Scenario.stream;
  sp_flat : Tea_core.Packed.t;
  sp_tuned : Tea_core.Packed.t;  (** repacked then fused on its own stream *)
}

let scn_prep ~strategy asid name =
  let image = repack_image name in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  let flat = Tea_core.Packed.freeze (Tea_core.Builder.build traces) in
  let path = Filename.temp_file "tea_bench" ".trc" in
  let _ = Tea_pinsim.Trace_capture.record image path in
  let stream = Scenario.load_stream ~asid ~name path in
  Sys.remove path;
  let starts = stream.Scenario.starts and len = stream.Scenario.len in
  let repacked =
    Tea_opt.Repack.repack flat (Tea_opt.Repack.collect flat starts ~len)
  in
  let tuned =
    Tea_opt.Fuse.fuse
      ~profile:(Tea_opt.Repack.collect repacked starts ~len)
      repacked
  in
  { sp_stream = stream; sp_flat = flat; sp_tuned = tuned }

type scenario_row = {
  sc_label : string;
  sc_kind : string;
  sc_asids : int;
  sc_events : int;
  sc_blocks : int;
  sc_runs : int;  (** per-asid NTE-entry runs after invalidation/interrupt cuts *)
  sc_ns : float;  (** sequential demuxed replay, ns/event, decode included *)
}

let scn_snap_eq a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x, p) (y, q) -> x = y && Tea_parallel.Profile.equal p q)
       a b

let run_scenario_row ~label ~kind (preps : scn_prep array) scn =
  let file = Filename.temp_file "tea_scn" ".trc" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  let n_events = Scenario.write_file file scn in
  let gate engine img_for =
    let make a =
      Tea_core.Replayer.create_packed (Tea_core.Packed.dup (img_for a))
    in
    let isolated = Tea_core.Multi_replayer.replay_isolated make file in
    let check how demuxed =
      if not (scn_snap_eq demuxed isolated) then begin
        Printf.eprintf
          "[bench] ERROR: %s: %s demuxed replay (%s) diverged from isolated \
           per-asid replay\n"
          label engine how;
        exit 1
      end
    in
    check "sequential"
      (Tea_core.Multi_replayer.snapshots
         (Tea_core.Multi_replayer.replay_events make file));
    List.iter
      (fun jobs ->
        Tea_parallel.Pool.with_pool ~jobs (fun pool ->
            check
              (Printf.sprintf "jobs %d" jobs)
              (Tea_parallel.Shard.replay_events pool img_for file)))
      [ 2; 4 ]
  in
  gate "flat" (fun a -> preps.(a).sp_flat);
  gate "repack+fuse" (fun a -> preps.(a).sp_tuned);
  let runs = Tea_parallel.Shard.load_events file in
  let blocks =
    List.fold_left
      (fun acc (_, rs) ->
        List.fold_left (fun acc r -> acc + r.Tea_parallel.Shard.len) acc rs)
      0 runs
  in
  let n_runs = List.fold_left (fun acc (_, rs) -> acc + List.length rs) 0 runs in
  let make_flat a =
    Tea_core.Replayer.create_packed (Tea_core.Packed.dup preps.(a).sp_flat)
  in
  let reps = 1 + (500_000 / max 1 n_events) in
  let sample () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Tea_core.Multi_replayer.replay_events make_flat file)
    done;
    Unix.gettimeofday () -. t0
  in
  let best = ref infinity in
  for round = 0 to 5 do
    let dt = sample () in
    if round > 0 && dt < !best then best := dt
  done;
  {
    sc_label = label;
    sc_kind = kind;
    sc_asids = List.length runs;
    sc_events = n_events;
    sc_blocks = blocks;
    sc_runs = n_runs;
    sc_ns = 1e9 *. !best /. float_of_int (reps * n_events);
  }

let scenario_json ~smoke ~strategy ~bases rows =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.bprintf buf fmt in
  add "{\n";
  add "  \"bench\": \"scenario\",\n";
  add "  \"smoke\": %b,\n" smoke;
  add "  \"strategy\": %S,\n" strategy;
  add "  \"bases\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "%S") bases));
  add "  \"jobs_gated\": [1, 2, 4],\n";
  add "  \"engines_gated\": [\"flat\", \"repack+fuse\"],\n";
  add "  \"gate\": \"demuxed == isolated per-asid Profile equality\",\n";
  add "  \"rows\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      add
        "    {\"name\": %S, \"kind\": %S, \"asids\": %d, \"events\": %d, \
         \"blocks\": %d, \"runs\": %d, \"replay_ns_per_event\": %.2f}%s\n"
        r.sc_label r.sc_kind r.sc_asids r.sc_events r.sc_blocks r.sc_runs
        r.sc_ns
        (if i = n - 1 then "" else ","))
    rows;
  add "  ]\n";
  Buffer.contents buf ^ "}\n"

let run_scenario ~smoke =
  let strategy_name = "mret" in
  let strategy = Option.get (Tea_traces.Registry.by_name strategy_name) in
  let bases =
    if smoke then [ "micro:listscan"; "micro:copy"; "181.mcf" ]
    else [ "micro:listscan"; "micro:copy"; "micro:branchy"; "181.mcf"; "164.gzip" ]
  in
  progress
    "[bench] scenario: %d bases, %s traces, gating demuxed vs isolated at \
     jobs 1/2/4, flat and repack+fuse..."
    (List.length bases) strategy_name;
  let preps =
    Array.of_list (List.mapi (fun i n -> scn_prep ~strategy i n) bases)
  in
  let streams = Array.to_list (Array.map (fun p -> p.sp_stream) preps) in
  let interrupt_every s = max 32 (s.Scenario.len / 8) in
  let rows =
    [ ("interleave-rr", "interleave",
       Scenario.interleave ~quantum:8 ~schedule:Scenario.Round_robin streams);
      ("interleave-rand", "interleave",
       Scenario.interleave ~quantum:8 ~schedule:(Scenario.Random_sched 42)
         streams) ]
    @ List.map
        (fun s ->
          ("smc:" ^ s.Scenario.name, "smc", Scenario.smc ~period:64 s))
        streams
    @ List.map
        (fun s ->
          ( "interrupt:" ^ s.Scenario.name, "interrupt",
            Scenario.interrupt ~every:(interrupt_every s) s ))
        streams
  in
  let rows =
    List.map
      (fun (label, kind, scn) ->
        let r = run_scenario_row ~label ~kind preps scn in
        Printf.printf
          "%-24s %d asids  %7d events  %7d blocks in %3d runs  %6.1f ns/event  \
           [gate ok]\n%!"
          r.sc_label r.sc_asids r.sc_events r.sc_blocks r.sc_runs r.sc_ns;
        r)
      rows
  in
  let json = scenario_json ~smoke ~strategy:strategy_name ~bases rows in
  let oc = open_out "BENCH_scenario.json" in
  output_string oc json;
  close_out oc;
  progress "[bench] wrote BENCH_scenario.json (%d rows, all gates passed)"
    (List.length rows)

(* ---- replay-as-a-service: the BENCH_serve.json trajectory ----

   Rows measure daemon ingest throughput: 8 concurrent client domains
   stream a workload's captured PC-trace over a unix socket (half as raw
   v2, half re-encoded as a 2-asid v3 event stream), plus one adversarial
   mid-stream disconnect, into a single shared packed image at jobs
   1/2/4. Every row enforces the daemon gate before it is reported: the
   fleet profile folded from the concurrent sessions must equal the
   sequential offline replay of the same streams; any divergence exits
   1. *)

type serve_row = {
  sv_base : string;
  sv_jobs : int;
  sv_sessions : int;
  sv_blocks : int;  (** total across completed sessions *)
  sv_bytes : int;  (** trace bytes ingested *)
  sv_wall_ms : float;
  sv_ns : float;  (** wall ns per replayed block *)
}

let serve_session_streams captured_path ~sessions =
  let v2 = Tea_core.Pc_trace.read_all captured_path in
  (* the v3 variant: the same block stream cut into 64-block quanta
     alternating between two asids — the daemon demuxes it per session *)
  let v3 =
    let tmp = Filename.temp_file "tea_bench_v3" ".trc" in
    let w = Tea_core.Pc_trace.open_writer ~format:Tea_core.Pc_trace.V3 tmp in
    let i = ref 0 in
    Tea_core.Pc_trace.fold_events captured_path () (fun () ~asid:_ ev ->
        (match ev with
        | Tea_core.Pc_trace.Block _ ->
            if !i mod 64 = 0 then
              Tea_core.Pc_trace.switch_asid w (!i / 64 mod 2);
            incr i
        | _ -> ());
        Tea_core.Pc_trace.write_event w ev);
    Tea_core.Pc_trace.close_writer w;
    let s = Tea_core.Pc_trace.read_all tmp in
    Sys.remove tmp;
    s
  in
  List.init sessions (fun i -> if i mod 2 = 0 then v2 else v3)

let run_serve_row ~base ~jobs ~streams image =
  let sock = Filename.temp_file "tea_bench_serve" ".sock" in
  Sys.remove sock;
  let srv =
    Tea_serve.Server.create ~offline_check:true ~jobs ~image
      (Tea_serve.Frame.Unix_sock sock)
  in
  Fun.protect ~finally:(fun () -> Tea_serve.Server.close srv) @@ fun () ->
  let addr = Tea_serve.Server.addr srv in
  let n = List.length streams in
  let driver =
    Domain.spawn (fun () -> Tea_serve.Server.run ~until_sessions:(n + 1) srv)
  in
  let t0 = Unix.gettimeofday () in
  let clients =
    List.map
      (fun s ->
        Domain.spawn (fun () ->
            ignore (Tea_serve.Client.replay_string ~chunk:8192 addr s)))
      streams
  in
  (* the rude client: a prefix of a stream, then a close with no end *)
  let fd = Tea_serve.Frame.connect addr in
  Tea_serve.Frame.send fd Tea_serve.Frame.tag_data
    (String.sub (List.hd streams) 0 100);
  Unix.close fd;
  List.iter Domain.join clients;
  Domain.join driver;
  let wall = Unix.gettimeofday () -. t0 in
  let fleet = Tea_serve.Server.fleet_profile srv in
  let offline = Tea_serve.Server.offline_profile srv in
  if not (Tea_parallel.Profile.equal fleet offline) then begin
    Printf.eprintf
      "[bench] ERROR: serve %s jobs %d: fleet profile diverged from \
       sequential offline replay\n"
      base jobs;
    exit 1
  end;
  if Tea_serve.Server.disconnected srv <> 1 then begin
    Printf.eprintf
      "[bench] ERROR: serve %s jobs %d: expected exactly 1 disconnect, got \
       %d\n"
      base jobs
      (Tea_serve.Server.disconnected srv);
    exit 1
  end;
  let blocks = fleet.Tea_parallel.Profile.steps in
  let bytes = List.fold_left (fun a s -> a + String.length s) 0 streams in
  {
    sv_base = base;
    sv_jobs = jobs;
    sv_sessions = n;
    sv_blocks = blocks;
    sv_bytes = bytes;
    sv_wall_ms = 1e3 *. wall;
    sv_ns = 1e9 *. wall /. float_of_int (max 1 blocks);
  }

let serve_json ~smoke rows =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.bprintf buf fmt in
  add "{\n";
  add "  \"bench\": \"serve\",\n";
  add "  \"smoke\": %b,\n" smoke;
  add "  \"gate\": \"fleet profile == sequential offline replay, 1 rude \
       disconnect tolerated\",\n";
  add "  \"rows\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      add
        "    {\"base\": %S, \"jobs\": %d, \"sessions\": %d, \"blocks\": %d, \
         \"bytes\": %d, \"wall_ms\": %.2f, \"ingest_ns_per_block\": %.2f}%s\n"
        r.sv_base r.sv_jobs r.sv_sessions r.sv_blocks r.sv_bytes r.sv_wall_ms
        r.sv_ns
        (if i = n - 1 then "" else ","))
    rows;
  add "  ]\n";
  Buffer.contents buf ^ "}\n"

let run_serve ~smoke =
  let bases =
    if smoke then [ "micro:listscan" ] else [ "micro:listscan"; "181.mcf" ]
  in
  let sessions = 8 in
  progress
    "[bench] serve: %d bases, %d concurrent sessions + 1 disconnect, gating \
     fleet vs offline at jobs 1/2/4..."
    (List.length bases) sessions;
  let rows =
    List.concat_map
      (fun base ->
        let image = repack_image base in
        let path = Filename.temp_file "tea_bench_serve" ".trc" in
        Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
        let _ = Tea_pinsim.Trace_capture.record image path in
        let packed =
          let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
          let dbt = Tea_dbt.Stardbt.record ~strategy image in
          Tea_core.Packed.freeze
            (Tea_core.Builder.build
               (Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set))
        in
        let streams = serve_session_streams path ~sessions in
        List.map
          (fun jobs ->
            let r = run_serve_row ~base ~jobs ~streams packed in
            Printf.printf
              "serve %-16s jobs %d  %d sessions  %8d blocks  %7.1f ms  \
               %6.1f ns/block  [gate ok]\n%!"
              r.sv_base r.sv_jobs r.sv_sessions r.sv_blocks r.sv_wall_ms
              r.sv_ns;
            r)
          [ 1; 2; 4 ])
      bases
  in
  let json = serve_json ~smoke rows in
  let oc = open_out "BENCH_serve.json" in
  output_string oc json;
  close_out oc;
  progress "[bench] wrote BENCH_serve.json (%d rows, all gates passed)"
    (List.length rows)

(* ---- closed-loop continuous PGO: the BENCH_retune.json trajectory ----

   A phase-shift workload: the automaton has two long fusible chains, A
   and B; the daemon boots on an image repacked+fused for chain A while
   every client session replays chain B — the image is mistuned for the
   traffic it actually gets. The no-retune daemon stays mistuned
   forever; the --retune daemon detects the drift, rebuilds in the
   background and hot-swaps to a B-tuned image. Rows report replay-only
   ns/block (Server.drain_totals deltas: pool busy time over completed
   sessions, excluding socket I/O and decode) before the swap, after the
   swap, and on the baseline daemon over the same windows, plus the
   measured swap pause. Hard gates: fleet == offline across the swap on
   both daemons, and post-swap steady-state throughput >= 1.15x the
   no-retune daemon. *)

type retune_row = {
  rt_jobs : int;
  rt_sessions : int;  (** per daemon, measurement sessions (post warmup) *)
  rt_swaps : int;
  rt_baseline_ns : float;  (** no-retune daemon, post window *)
  rt_pre_ns : float;  (** retune daemon, before the swap landed *)
  rt_post_ns : float;  (** retune daemon, after the swap *)
  rt_speedup : float;  (** baseline_ns / post_ns — the gated number *)
  rt_pause_ms : float;  (** cumulative wall time inside swaps *)
}

let retune_fixture () =
  let block_at addr =
    Tea_cfg.Block.make Tea_cfg.Block.Branch
      [ (addr, Tea_isa.Insn.Jmp (Tea_isa.Insn.Abs 0)) ]
  in
  (* two recorded loops: n forced states whose last edge re-enters the
     head — each is one cyclic fusible chain, and profile-aware fusion
     keeps only the one the guiding stream actually spins in *)
  let loop ~id base n =
    Tea_traces.Trace.make ~id ~kind:"bench"
      (Array.init n (fun i -> block_at (base + (16 * i))))
      (Array.init n (fun i -> [ (i + 1) mod n ]))
  in
  (* 24-state loops: small enough that the drift gauge's top-K support
     window sees the whole automaton, so a phase shift moves the whole
     distribution *)
  let n = 24 in
  let flat =
    Tea_core.Packed.freeze
      (Tea_core.Builder.build
         [ loop ~id:0 0x10000 n; loop ~id:1 0x80000 n ])
  in
  let cycle base reps =
    Array.init (n * reps) (fun i -> base + (16 * (i mod n)))
  in
  (flat, cycle 0x10000 2000, cycle 0x80000 2000)

let retune_session_bytes starts =
  let tmp = Filename.temp_file "tea_bench_retune" ".trc" in
  let w = Tea_core.Pc_trace.open_writer ~format:Tea_core.Pc_trace.V2 tmp in
  Array.iter
    (fun start ->
      Tea_core.Pc_trace.write_event w (Tea_core.Pc_trace.Block { start; insns = 1 }))
    starts;
  Tea_core.Pc_trace.close_writer w;
  let s = Tea_core.Pc_trace.read_all tmp in
  Sys.remove tmp;
  s

let retune_epoch_of_scrape text =
  List.find_map
    (fun line ->
      match String.split_on_char ' ' line with
      | [ "tea_image_epoch"; v ] -> int_of_string_opt v
      | _ -> None)
    (String.split_on_char '\n' text)

(* Drive one daemon through the phase shift: [warm] phase-A sessions
   (matching both the image's tuning and the drift reference, so the
   trigger stays quiet), then phase-B sessions. With [retune] the pre
   window runs B sessions until the scrape shows the epoch bumped (the
   swap landed); without, it runs [pre] B sessions so both daemons see
   the same traffic schedule. Returns ns/block over the pre and post
   windows plus swap stats; enforces the fleet == offline gate. *)
let run_retune_daemon ~jobs ~retune ~drift_ref ~base ~image ~warm ~session
    ~pre ~post =
  let sock = Filename.temp_file "tea_bench_retune" ".sock" in
  Sys.remove sock;
  let srv =
    if retune then
      Tea_serve.Server.create ~offline_check:true
        ~drift:(Tea_observe.Drift.create drift_ref)
        ~base
        ~retune:
          (* fire on the first over-threshold session; the long cooldown
             keeps later B sessions (still far from the phase-A drift
             reference) from churning out redundant rebuilds inside the
             measurement window *)
          { Tea_serve.Server.default_retune with up = 1; cooldown = 1000 }
        ~jobs ~image
        (Tea_serve.Frame.Unix_sock sock)
    else
      Tea_serve.Server.create ~offline_check:true ~jobs ~image
        (Tea_serve.Frame.Unix_sock sock)
  in
  Fun.protect ~finally:(fun () -> Tea_serve.Server.close srv) @@ fun () ->
  let addr = Tea_serve.Server.addr srv in
  let driver = Domain.spawn (fun () -> Tea_serve.Server.run srv) in
  let send () = ignore (Tea_serve.Client.replay_string addr session) in
  (* phase A: warmup sessions, outside both windows *)
  for _ = 1 to 2 do
    ignore (Tea_serve.Client.replay_string addr warm)
  done;
  (* phase shift: from here every session replays chain B *)
  let ns0, blk0 = Tea_serve.Server.drain_totals srv in
  let pre_sessions = ref 0 in
  if retune then begin
    let swapped = ref false in
    while (not !swapped) && !pre_sessions < 100 do
      send ();
      incr pre_sessions;
      match retune_epoch_of_scrape (Tea_serve.Client.scrape addr) with
      | Some e when e >= 1 -> swapped := true
      | _ -> ()
    done;
    if not !swapped then begin
      Printf.eprintf
        "[bench] ERROR: retune jobs %d: daemon never swapped its image\n" jobs;
      exit 1
    end
  end
  else
    for _ = 1 to pre do
      send ();
      incr pre_sessions
    done;
  let ns1, blk1 = Tea_serve.Server.drain_totals srv in
  for _ = 1 to post do
    send ()
  done;
  let ns2, blk2 = Tea_serve.Server.drain_totals srv in
  Tea_serve.Server.stop srv;
  Domain.join driver;
  let fleet = Tea_serve.Server.fleet_profile srv in
  if not (Tea_parallel.Profile.equal fleet (Tea_serve.Server.offline_profile srv))
  then begin
    Printf.eprintf
      "[bench] ERROR: retune jobs %d (%s): fleet profile diverged from \
       sequential offline replay\n"
      jobs
      (if retune then "retune" else "baseline");
    exit 1
  end;
  let window ns ns' blk blk' =
    float_of_int (ns' - ns) /. float_of_int (max 1 (blk' - blk))
  in
  ( window ns0 ns1 blk0 blk1,
    window ns1 ns2 blk1 blk2,
    !pre_sessions,
    Tea_serve.Server.epoch srv,
    Tea_serve.Server.swap_pause_ns srv )

let retune_json ~smoke rows =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.bprintf buf fmt in
  add "{\n";
  add "  \"bench\": \"retune\",\n";
  add "  \"smoke\": %b,\n" smoke;
  add
    "  \"gate\": \"fleet == offline across the swap; post-swap throughput \
     >= 1.15x the no-retune daemon\",\n";
  add "  \"floor\": 1.15,\n";
  add "  \"rows\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      add
        "    {\"jobs\": %d, \"sessions\": %d, \"swaps\": %d, \
         \"baseline_ns_per_block\": %.2f, \"pre_swap_ns_per_block\": %.2f, \
         \"post_swap_ns_per_block\": %.2f, \"speedup_post\": %.3f, \
         \"swap_pause_ms\": %.3f}%s\n"
        r.rt_jobs r.rt_sessions r.rt_swaps r.rt_baseline_ns r.rt_pre_ns
        r.rt_post_ns r.rt_speedup r.rt_pause_ms
        (if i = n - 1 then "" else ","))
    rows;
  add "  ]\n";
  Buffer.contents buf ^ "}\n"

let run_retune ~smoke =
  let flat, a_starts, b_starts = retune_fixture () in
  (* cold-start mistuning: the daemon boots on the untuned flat image
     with a stale drift reference (yesterday's phase-A profile); the
     profile-aware rebuild can only come from live traffic *)
  let mistuned = flat in
  let drift_ref =
    let prof =
      Tea_opt.Repack.collect flat a_starts ~len:(Array.length a_starts)
    in
    List.filter
      (fun (_, v) -> v > 0)
      (Array.to_list (Array.mapi (fun i v -> (i, v)) prof.Tea_opt.Repack.visits))
  in
  let warm = retune_session_bytes a_starts in
  let session = retune_session_bytes b_starts in
  let jobs_list = if smoke then [ 1 ] else [ 1; 2 ] in
  let post = if smoke then 3 else 6 in
  progress
    "[bench] retune: phase-shift fixture (image tuned on chain A, traffic \
     on chain B), gating post-swap vs no-retune at 1.15x...";
  let rows =
    List.map
      (fun jobs ->
        (* cross-daemon wall-clock noise is the dominant error term, so
           run the daemon pair twice and keep the better round — the
           best-of discipline the repack/fuse benches use *)
        let round () =
          let pre_r, post_r, pre_sessions, swaps, pause_ns =
            run_retune_daemon ~jobs ~retune:true ~drift_ref ~base:flat
              ~image:mistuned ~warm ~session ~pre:0 ~post
          in
          let _, post_b, _, _, _ =
            run_retune_daemon ~jobs ~retune:false ~drift_ref ~base:flat
              ~image:mistuned ~warm ~session ~pre:pre_sessions ~post
          in
          (pre_r, post_r, pre_sessions, swaps, pause_ns, post_b)
        in
        let r1 = round () and r2 = round () in
        let speedup_of (_, post_r, _, _, _, post_b) = post_b /. post_r in
        let pre_r, post_r, pre_sessions, swaps, pause_ns, post_b =
          if speedup_of r1 >= speedup_of r2 then r1 else r2
        in
        let speedup = post_b /. post_r in
        let r =
          {
            rt_jobs = jobs;
            rt_sessions = pre_sessions + post;
            rt_swaps = swaps;
            rt_baseline_ns = post_b;
            rt_pre_ns = pre_r;
            rt_post_ns = post_r;
            rt_speedup = speedup;
            rt_pause_ms = 1e-6 *. float_of_int pause_ns;
          }
        in
        Printf.printf
          "retune jobs %d  %2d sessions  %d swap(s)  baseline %6.1f \
           ns/block  post-swap %6.1f ns/block  %.2fx  pause %.3f ms\n%!"
          r.rt_jobs r.rt_sessions r.rt_swaps r.rt_baseline_ns r.rt_post_ns
          r.rt_speedup r.rt_pause_ms;
        if speedup < 1.15 then begin
          Printf.eprintf
            "[bench] ERROR: retune jobs %d: post-swap speedup %.3fx below \
             the 1.15x floor — the hot swap did not pay for itself\n"
            jobs speedup;
          exit 1
        end;
        r)
      jobs_list
  in
  let json = retune_json ~smoke rows in
  let oc = open_out "BENCH_retune.json" in
  output_string oc json;
  close_out oc;
  progress "[bench] wrote BENCH_retune.json (%d rows, all gates passed)"
    (List.length rows)

(* ---- observability plane: the BENCH_observe.json trajectory ----

   Two measurements. (1) Dispatch-tier profiler cost on the packed replay
   of micro:listscan's stream, per engine tier (flat, repacked,
   repacked+fused): a disabled series and an enabled series, sampled
   interleaved so machine drift hits both, with the enabled run's hard
   gate that the tier counters sum exactly to the blocks replayed —
   attribution is total, never sampled-ish. (2) Scrape latency against a
   live daemon: sessions stream while tea_serve answers exposition
   scrapes; each scrape is timed round-trip and the format is sanity
   checked. Overhead numbers are machine-dependent and reported, not
   gated (CI re-gates the disabled path via `bench telemetry`). *)

type observe_engine_row = {
  oe_name : string;
  oe_disabled_ns : float;
  oe_enabled_ns : float;
  oe_blocks : int;  (** blocks attributed while enabled, across all reps *)
  oe_tiers : Tea_core.Tierstat.snapshot;
}

let run_observe_engine ~name img ~starts ~insns ~len =
  let reps = 1 + (2_000_000 / max 1 len) in
  let run_once () =
    let rep = Tea_core.Replayer.create_packed (Tea_core.Packed.dup img) in
    Tea_core.Replayer.feed_run rep ~insns starts ~len
  in
  let sample () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      run_once ()
    done;
    Unix.gettimeofday () -. t0
  in
  (* interleaved: a disabled sample then an enabled sample per round, so
     machine drift hits both series equally; best of 5 after one warmup *)
  let best_d = ref infinity and best_e = ref infinity in
  for round = 0 to 5 do
    let d = sample () in
    Tea_core.Tierstat.install ();
    let e = sample () in
    ignore (Tea_core.Tierstat.uninstall ());
    if round > 0 then begin
      if d < !best_d then best_d := d;
      if e < !best_e then best_e := e
    end
  done;
  (* one final instrumented replay whose snapshot we keep for the gate
     and the report (per-run counts, not accumulated) *)
  Tea_core.Tierstat.install ();
  run_once ();
  let snap = Tea_core.Tierstat.uninstall () in
  if Tea_core.Tierstat.total snap <> len then begin
    Printf.eprintf
      "[bench] ERROR: %s: tier counters sum to %d, expected %d blocks — \
       dispatch attribution is not total\n"
      name
      (Tea_core.Tierstat.total snap)
      len;
    exit 1
  end;
  let ns dt = 1e9 *. dt /. float_of_int (reps * len) in
  {
    oe_name = name;
    oe_disabled_ns = ns !best_d;
    oe_enabled_ns = ns !best_e;
    oe_blocks = len;
    oe_tiers = snap;
  }

type observe_scrape = {
  os_sessions : int;
  os_scrapes : int;
  os_bytes : int;  (** exposition payload size of the last scrape *)
  os_best_us : float;
  os_mean_us : float;
}

let run_observe_scrape ~jobs image streams =
  let sock = Filename.temp_file "tea_bench_observe" ".sock" in
  Sys.remove sock;
  let srv =
    Tea_serve.Server.create ~jobs ~image (Tea_serve.Frame.Unix_sock sock)
  in
  Fun.protect ~finally:(fun () -> Tea_serve.Server.close srv) @@ fun () ->
  let addr = Tea_serve.Server.addr srv in
  let driver = Domain.spawn (fun () -> Tea_serve.Server.run srv) in
  let clients =
    List.map
      (fun s ->
        Domain.spawn (fun () ->
            ignore (Tea_serve.Client.replay_string ~chunk:8192 addr s)))
      streams
  in
  (* scrape while the fleet is streaming: time each round trip *)
  let n_scrapes = 32 in
  let best = ref infinity and sum = ref 0.0 and last = ref "" in
  for _ = 1 to n_scrapes do
    let t0 = Unix.gettimeofday () in
    let text = Tea_serve.Client.scrape addr in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    sum := !sum +. dt;
    last := text
  done;
  List.iter Domain.join clients;
  Tea_serve.Server.stop srv;
  Domain.join driver;
  (* sanity: the exposition carries the observability families *)
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  if not (contains "tea_dispatch_tier_total" !last && contains "tea_counter" !last)
  then begin
    prerr_endline
      "[bench] ERROR: scraped exposition is missing expected families";
    exit 1
  end;
  {
    os_sessions = List.length streams;
    os_scrapes = n_scrapes;
    os_bytes = String.length !last;
    os_best_us = 1e6 *. !best;
    os_mean_us = 1e6 *. !sum /. float_of_int n_scrapes;
  }

let observe_json ~smoke rows scrape =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.bprintf buf fmt in
  add "{\n";
  add "  \"bench\": \"observe\",\n";
  add "  \"smoke\": %b,\n" smoke;
  add "  \"gate\": \"tier counters sum to blocks replayed; exposition \
       carries tier/counter families\",\n";
  add "  \"engines\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      let tiers =
        String.concat ", "
          (List.init Tea_core.Tierstat.n_tiers (fun t ->
               Printf.sprintf "\"%s\": %d"
                 (Tea_core.Tierstat.tier_name t)
                 r.oe_tiers.Tea_core.Tierstat.ts_totals.(t)))
      in
      add
        "    {\"name\": %S, \"blocks\": %d, \"disabled_ns_per_block\": %.2f, \
         \"enabled_ns_per_block\": %.2f, \"overhead_pct\": %.2f,\n"
        r.oe_name r.oe_blocks r.oe_disabled_ns r.oe_enabled_ns
        (100.0 *. ((r.oe_enabled_ns /. r.oe_disabled_ns) -. 1.0));
      add "     \"tiers\": {%s}}%s\n" tiers (if i = n - 1 then "" else ","))
    rows;
  add "  ],\n";
  add
    "  \"scrape\": {\"sessions\": %d, \"scrapes\": %d, \"exposition_bytes\": \
     %d, \"best_us\": %.1f, \"mean_us\": %.1f}\n"
    scrape.os_sessions scrape.os_scrapes scrape.os_bytes scrape.os_best_us
    scrape.os_mean_us;
  Buffer.contents buf ^ "}\n"

let run_observe ~smoke =
  let image = Tea_workloads.Micro.list_scan () in
  let strategy = Option.get (Tea_traces.Registry.by_name "mret") in
  let dbt = Tea_dbt.Stardbt.record ~strategy image in
  let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
  let flat = Tea_core.Packed.freeze (Tea_core.Builder.build traces) in
  let path = Filename.temp_file "tea_bench" ".trc" in
  let n_blocks = Tea_pinsim.Trace_capture.record image path in
  let starts, insns, len = Tea_parallel.Shard.load_pc_trace path in
  let stream = Tea_core.Pc_trace.read_all path in
  Sys.remove path;
  progress
    "[bench] observe: %d blocks from micro:listscan; tier-profiler overhead \
     per engine, then live scrape latency..."
    n_blocks;
  let repacked =
    Tea_opt.Repack.repack flat (Tea_opt.Repack.collect flat starts ~len)
  in
  let fused =
    Tea_opt.Fuse.fuse
      ~profile:(Tea_opt.Repack.collect repacked starts ~len)
      repacked
  in
  (* listscan never fuses a chain, so the fused tier would stay silent;
     a fourth row replays micro:nested (whose inner loop fuses at ~97%
     of steps) on its own tuned image to exercise that tier too *)
  let loop_img, loop_starts, loop_insns, loop_len =
    let image = Tea_workloads.Micro.nested_loop () in
    let dbt = Tea_dbt.Stardbt.record ~strategy image in
    let traces = Tea_traces.Trace_set.to_list dbt.Tea_dbt.Stardbt.set in
    let flat = Tea_core.Packed.freeze (Tea_core.Builder.build traces) in
    let path = Filename.temp_file "tea_bench" ".trc" in
    ignore (Tea_pinsim.Trace_capture.record image path);
    let starts, insns, len = Tea_parallel.Shard.load_pc_trace path in
    Sys.remove path;
    let repacked =
      Tea_opt.Repack.repack flat (Tea_opt.Repack.collect flat starts ~len)
    in
    let fused =
      Tea_opt.Fuse.fuse
        ~profile:(Tea_opt.Repack.collect repacked starts ~len)
        repacked
    in
    (fused, starts, insns, len)
  in
  let rows =
    List.map
      (fun (name, img, starts, insns, len) ->
        let r = run_observe_engine ~name img ~starts ~insns ~len in
        Printf.printf
          "%-9s tierstat off %6.1f ns/block, on %6.1f ns/block (+%.1f%%)  \
           [tier sum == %d blocks]\n%!"
          r.oe_name r.oe_disabled_ns r.oe_enabled_ns
          (100.0 *. ((r.oe_enabled_ns /. r.oe_disabled_ns) -. 1.0))
          r.oe_blocks;
        r)
      [ ("flat", flat, starts, insns, len);
        ("repack", repacked, starts, insns, len);
        ("fuse", fused, starts, insns, len);
        ("fuse-loop", loop_img, loop_starts, loop_insns, loop_len) ]
  in
  (* the fuse-loop row exists to prove the fused tier fires: hard gate *)
  (match List.rev rows with
  | last :: _
    when last.oe_tiers.Tea_core.Tierstat.ts_totals.(Tea_core.Tierstat.t_fused)
         = 0 ->
      Printf.eprintf
        "[bench] ERROR: fuse-loop replay attributed no blocks to the fused \
         tier\n";
      exit 1
  | _ -> ());
  let sessions = if smoke then 4 else 8 in
  let scrape =
    run_observe_scrape ~jobs:2 flat (List.init sessions (fun _ -> stream))
  in
  Printf.printf
    "scrape: %d scrapes against %d streaming sessions, %d bytes exposition, \
     best %.0f us, mean %.0f us\n"
    scrape.os_scrapes scrape.os_sessions scrape.os_bytes scrape.os_best_us
    scrape.os_mean_us;
  let json = observe_json ~smoke rows scrape in
  let oc = open_out "BENCH_observe.json" in
  output_string oc json;
  close_out oc;
  progress "[bench] wrote BENCH_observe.json (%d engines, all gates passed)"
    (List.length rows)

(* Same observability surface as tea_tool: --telemetry FILE writes a
   Chrome trace (or JSONL for a .jsonl suffix), --metrics dumps the probe
   counters after the run. With neither flag nothing is installed and
   stdout is byte-identical to a probe-free build. *)
let with_obs ~trace_out ~metrics name f =
  if trace_out = None && not metrics then f ()
  else begin
    let sink = Option.map (fun _ -> Tea_telemetry.Span.create ()) trace_out in
    Tea_telemetry.Probe.install ?spans:sink ();
    Fun.protect
      ~finally:(fun () ->
        (match (trace_out, sink) with
        | Some path, Some sink ->
            let out =
              if Filename.check_suffix path ".jsonl" then
                Tea_telemetry.Span.to_jsonl sink
              else Tea_telemetry.Span.to_chrome_json sink
            in
            let oc = open_out path in
            output_string oc out;
            close_out oc
        | _ -> ());
        let snap = Tea_telemetry.Probe.uninstall () in
        if metrics then
          print_string (Tea_report.Stats.render ~title:"telemetry" snap))
      (fun () -> Tea_telemetry.Probe.with_span name f)
  end

(* `--smoke' shrinks any table run to a small benchmark subset — the CI
   smoke target is `main.exe -- table4 --smoke'. *)
let smoke_set = [ "168.wupwise"; "181.mcf"; "253.perlbmk" ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let smoke = List.mem "--smoke" args in
  let rec parse acc trace_out metrics = function
    | [] -> (List.rev acc, trace_out, metrics)
    | "--telemetry" :: file :: rest -> parse acc (Some file) metrics rest
    | "--metrics" :: rest -> parse acc trace_out true rest
    | ("--quiet" | "-q") :: rest ->
        quiet := true;
        parse acc trace_out metrics rest
    | "--smoke" :: rest -> parse acc trace_out metrics rest
    | a :: rest -> parse (a :: acc) trace_out metrics rest
  in
  let args, trace_out, metrics = parse [] None false args in
  let table_benchmarks =
    if smoke then smoke_set else Tea_workloads.Spec2000.names
  in
  let root = "bench." ^ match args with [] -> "all" | a :: _ -> a in
  let dispatch () =
    match args with
    | [ "micro" ] -> run_micro ()
    | [ "packed" ] -> run_packed_compare ()
    | [ "repack" ] -> run_repack ~smoke
    | [ "fuse" ] -> run_fuse ~smoke
    | [ "compile" ] -> run_compile ~smoke
    | [ "scenario" ] -> run_scenario ~smoke
    | [ "serve" ] -> run_serve ~smoke
    | [ "retune" ] -> run_retune ~smoke
    | [ "observe" ] -> run_observe ~smoke
    | [ "parallel" ] -> run_parallel_compare ~benchmarks:table_benchmarks
    | [ "quick" ] -> run_tables ~benchmarks:quick_set ~which:[]
    | [ "ablation" ] -> run_ablations ()
    | [ "extensions" ] -> run_extensions ()
    | [] ->
        run_tables ~benchmarks:table_benchmarks ~which:[];
        print_newline ();
        run_ablations ();
        print_newline ();
        run_extensions ()
    | which
      when List.for_all
             (fun a -> String.length a > 5 && String.sub a 0 5 = "table")
             which ->
        run_tables ~benchmarks:table_benchmarks ~which
    | _ ->
        prerr_endline
          "usage: main.exe [quick | micro | packed | repack | fuse | \
           compile | scenario | serve | retune | observe | parallel | telemetry | \
           ablation | extensions | table1 table2 table3 table4] [--smoke] \
           [--telemetry FILE] [--metrics] [--quiet]";
        exit 2
  in
  match args with
  | [ "telemetry" ] ->
      (* installs/uninstalls the probe set itself — not wrapped in
         [with_obs], which would double-install *)
      run_telemetry ()
  | _ -> with_obs ~trace_out ~metrics root dispatch
