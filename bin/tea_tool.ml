(* tea_tool: command-line front door to the TEA reproduction.

   Workloads are named either after the synthetic SPEC 2000 profiles
   (e.g. 176.gcc) or micro workloads (micro:listscan, micro:copy,
   micro:nested, micro:branchy, micro:rep). *)

open Cmdliner

let resolve_workload name =
  match name with
  | "micro:listscan" -> Ok (Tea_workloads.Micro.list_scan ())
  | "micro:copy" -> Ok (Tea_workloads.Micro.copy_loop ())
  | "micro:nested" -> Ok (Tea_workloads.Micro.nested_loop ())
  | "micro:branchy" -> Ok (Tea_workloads.Micro.branchy_loop ())
  | "micro:rep" -> Ok (Tea_workloads.Micro.rep_copy ())
  | "micro:stream" -> Ok (Tea_workloads.Micro.stream ())
  | "micro:chase" -> Ok (Tea_workloads.Micro.big_chase ())
  | "micro:twophase" -> Ok (Tea_workloads.Micro.two_phase ())
  | "micro:scattered" -> Ok (Tea_workloads.Micro.scattered ())
  | _ -> (
      match Tea_workloads.Spec2000.by_name name with
      | Some p -> Ok (Tea_workloads.Spec2000.image p)
      | None -> Error (Printf.sprintf "unknown workload %S (try `tea_tool list')" name))

let workload_arg =
  let doc = "Workload name (a SPEC profile like 176.gcc, or micro:listscan)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let strategy_arg =
  let doc = "Trace selection strategy: mret, ctt or tt." in
  Arg.(value & opt string "mret" & info [ "s"; "strategy" ] ~docv:"STRATEGY" ~doc)

let resolve_strategy name =
  match Tea_traces.Registry.by_name name with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "unknown strategy %S (mret/ctt/tt)" name)

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("tea_tool: " ^ msg);
      exit 1

(* An edge profile's per-state visits as the (id, count) pairs the drift
   comparator consumes. Ids are the slots of the image the profile was
   collected over — automaton ids when that image was flat. *)
let visits_counts (prof : Tea_opt.Repack.profile) =
  List.filter
    (fun (_, v) -> v > 0)
    (Array.to_list (Array.mapi (fun i v -> (i, v)) prof.Tea_opt.Repack.visits))

(* ---- observability ----

   Every data-producing subcommand takes the same three flags. With none
   of them given nothing is installed and stdout is byte-identical to a
   build without telemetry — the probes are static no-ops. *)

module Probe = Tea_telemetry.Probe
module Span = Tea_telemetry.Span

type obs = { trace_out : string option; metrics : bool; quiet : bool }

let obs_term =
  let telemetry =
    let doc =
      "Write a span trace of this run to $(docv) — Chrome trace-event \
       JSON (load it in chrome://tracing or Perfetto), or JSONL when \
       $(docv) ends in .jsonl. Spans carry wall-clock and, where \
       available, simulated-cycle stamps. Stdout is unchanged."
    in
    Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE" ~doc)
  in
  let metrics =
    let doc =
      "After the command output, print the probe counters and histograms \
       (transition lookups per axis, replayer steps and NTE crossings, \
       recorder decisions) as a text dump."
    in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let quiet =
    let doc = "Suppress the per-domain pool counters printed to stderr." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  Term.(
    const (fun trace_out metrics quiet -> { trace_out; metrics; quiet })
    $ telemetry $ metrics $ quiet)

(* Run a subcommand body under the requested observability: install the
   probe set (with a span sink if --telemetry was given), wrap the body in
   a root span named after the subcommand, and on the way out write the
   trace file and/or print the metrics dump. *)
let with_obs obs name f =
  if obs.trace_out = None && not obs.metrics then f ()
  else begin
    let sink = Option.map (fun _ -> Span.create ()) obs.trace_out in
    Probe.install ?spans:sink ();
    Fun.protect
      ~finally:(fun () ->
        (match (obs.trace_out, sink) with
        | Some path, Some sink ->
            let out =
              if Filename.check_suffix path ".jsonl" then Span.to_jsonl sink
              else Span.to_chrome_json sink
            in
            let oc = open_out path in
            output_string oc out;
            close_out oc
        | _ -> ());
        let snap = Probe.uninstall () in
        if obs.metrics then
          print_string (Tea_report.Stats.render ~title:"telemetry" snap))
      (fun () -> Probe.with_span name f)
  end

(* ---- list ---- *)

let list_cmd =
  let run () =
    print_endline "SPEC 2000 synthetic workloads:";
    List.iter
      (fun p ->
        Printf.printf "  %-14s %s\n" p.Tea_workloads.Proggen.name
          (if Tea_workloads.Spec2000.is_fp p.Tea_workloads.Proggen.name then "CFP2000"
           else "CINT2000"))
      Tea_workloads.Spec2000.all;
    print_endline "micro workloads:";
    List.iter
      (fun m -> Printf.printf "  micro:%s\n" m)
      [ "listscan"; "copy"; "nested"; "branchy"; "rep"; "stream"; "chase"; "twophase"; "scattered" ]
  in
  Cmd.v (Cmd.info "list" ~doc:"List available workloads")
    Term.(const run $ const ())

(* ---- run ---- *)

let run_cmd =
  let run name =
    let image = or_die (resolve_workload name) in
    let machine, stop = Tea_machine.Interp.run image in
    let outcome =
      match stop.Tea_machine.Interp.outcome with
      | Tea_machine.Interp.Exited n -> Printf.sprintf "exited %d" n
      | Tea_machine.Interp.Halted -> "halted"
      | Tea_machine.Interp.Fuel_exhausted -> "fuel exhausted"
      | Tea_machine.Interp.Fault m -> "fault: " ^ m
    in
    Printf.printf
      "%s: %s\nstatic insns: %d\ndynamic insns: %d (Pin counting: %d)\ncycles: %d\noutput: %s\n"
      name outcome
      (Tea_isa.Image.instruction_count image)
      (Tea_machine.Interp.dyn_instrs machine)
      (Tea_machine.Interp.dyn_instrs_expanded machine)
      (Tea_machine.Interp.cycles machine)
      (String.concat ", " (List.map string_of_int (Tea_machine.Interp.output machine)))
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a workload natively")
    Term.(const run $ workload_arg)

(* ---- record ---- *)

let out_arg =
  let doc = "Output file for the recorded traces." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let record_cmd =
  let run name strategy_name out obs =
    with_obs obs "record" @@ fun () ->
    let image = or_die (resolve_workload name) in
    let strategy = or_die (resolve_strategy strategy_name) in
    let r = Tea_dbt.Stardbt.record ~strategy image in
    let set = r.Tea_dbt.Stardbt.set in
    let traces = Tea_traces.Trace_set.to_list set in
    let auto = Tea_core.Builder.build traces in
    Printf.printf
      "recorded %d traces, %d TBBs (coverage %.1f%%)\n\
       DBT bytes %d, TEA bytes %d (savings %.0f%%)\n"
      (Tea_traces.Trace_set.n_traces set)
      (Tea_traces.Trace_set.n_tbbs set)
      (100.0 *. r.Tea_dbt.Stardbt.coverage)
      (Tea_traces.Trace_set.dbt_bytes set image)
      (Tea_core.Automaton.byte_size auto)
      (100.0
      *. Tea_report.Stats.savings
           ~dbt:(Tea_traces.Trace_set.dbt_bytes set image)
           ~tea:(Tea_core.Automaton.byte_size auto));
    match out with
    | Some path ->
        Tea_traces.Serialize.save path traces;
        Printf.printf "traces written to %s\n" path
    | None -> ()
  in
  Cmd.v (Cmd.info "record" ~doc:"Record traces under the StarDBT-like runtime")
    Term.(const run $ workload_arg $ strategy_arg $ out_arg $ obs_term)

(* ---- replay ---- *)

let traces_arg =
  let doc = "Trace file produced by `record -o' (records in-process if absent)." in
  Arg.(value & opt (some string) None & info [ "t"; "traces" ] ~docv:"FILE" ~doc)

let pc_trace_arg =
  let doc =
    "Replay against a captured PC-trace file instead of re-executing \
     (use $(b,-) to stream the trace from standard input)."
  in
  Arg.(value & opt (some string) None & info [ "pc-trace" ] ~docv:"FILE" ~doc)

(* An enumerated conv, not a free string resolved later: unknown
   configs are usage errors at the command line, listing the valid
   values, never a late exit mid-run. *)
let config_arg =
  let doc = "Lookup configuration: global-local, global-no-local, no-global-local." in
  Arg.(
    value
    & opt
        (enum
           [ ("global-local", Tea_core.Transition.config_global_local);
             ("global-no-local", Tea_core.Transition.config_global_no_local);
             ("no-global-local", Tea_core.Transition.config_no_global_local) ])
        Tea_core.Transition.config_global_local
    & info [ "c"; "config" ] ~docv:"CONFIG" ~doc)

(* One constructor for the --engine flag. [values] picks which engines a
   command accepts — serve never runs the reference engine, so it passes
   the packed/compiled subset and unknown engines stay usage errors. *)
let engine_arg_of ~doc values default =
  Arg.(
    value & opt (enum values) default
    & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc)

let engine_name = function
  | `Reference -> "reference"
  | `Packed -> "packed"
  | `Compiled -> "compiled"

let engine_arg =
  engine_arg_of
    ~doc:
      "Transition engine: reference (paper-faithful edge lists + B+ tree, \
       honours --config), packed (flat-array fast path) or compiled \
       (closure-threaded dispatch specialized from the packed image; \
       identical observables, fastest host replay)."
    [ ("reference", `Reference); ("packed", `Packed); ("compiled", `Compiled) ]
    `Reference

(* --jobs validates through the pool's own parser: 0, negatives and
   non-integers are usage errors at the command line, never a silent
   fall-through to the sequential path. *)
let jobs_conv =
  let parse s =
    match Tea_parallel.Pool.parse_jobs s with
    | Ok n -> Ok n
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let jobs_arg =
  let doc =
    "Worker domains to shard the work across (1 = plain sequential path; \
     must be >= 1). Stdout is byte-identical whatever $(docv) is; the \
     per-domain observability counters go to stderr."
  in
  Arg.(value & opt jobs_conv 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let pgo_arg =
  let doc =
    "Profile-guided repacking: collect a replay profile first, repack the \
     packed image on it (hot states cache-dense, hot edges linear-scan \
     first, per-state inline caches), then replay through the repacked \
     engine. Requires --engine=packed or compiled. TBB mappings and \
     coverage are identical to the unrepacked replay."
  in
  Arg.(value & flag & info [ "pgo" ] ~doc)

let hot_prefix_arg =
  let doc = "Per-state hot-prefix length cap for repacking." in
  Arg.(
    value
    & opt int Tea_opt.Repack.default_hot_prefix
    & info [ "hot-prefix" ] ~docv:"K" ~doc)

let fuse_arg =
  let doc =
    "Superstate fusion: collapse single-successor TBB chains into \
     superstates and fast-forward monomorphic cycles, then replay through \
     the fused engine. Requires --engine=packed or compiled; composes \
     with --pgo (repack first, fuse the repacked image). TBB mappings, \
     coverage and simulated cycles are identical to the unfused replay."
  in
  Arg.(value & flag & info [ "fuse" ] ~doc)

let tiers_arg =
  let doc =
    "Install the dispatch-tier profiler for the replay and print the \
     hotness report (tier mix, fusion coverage, top states) afterwards. \
     Requires --engine=packed or compiled."
  in
  Arg.(value & flag & info [ "tiers" ] ~doc)

let retune_arg =
  let doc =
    "Closed-loop PGO, offline: replay the first half of the PC trace on \
     the flat image, rebuild the repack+fuse ladder from the edge profile \
     observed so far, hot-swap the image mid-stream (entry state carried \
     across through the orig-id translation) and finish on the tuned \
     image. The replay summary line is identical to a plain replay at any \
     --jobs — the swap is observationally invisible. Requires \
     --engine=packed or compiled and --pc-trace; mutually exclusive with \
     --pgo/--fuse (it rebuilds its own tuning)."
  in
  Arg.(value & flag & info [ "retune" ] ~doc)

(* Run [f] with [Some pool] (dumping the pool's per-domain counters on
   stderr afterwards, unless --quiet) or with [None] for the sequential
   path. *)
let with_jobs ?(quiet = false) jobs f =
  if jobs < 1 then or_die (Error "--jobs must be >= 1")
  else if jobs = 1 then f None
  else
    Tea_parallel.Pool.with_pool ~jobs (fun pool ->
        let r = f (Some pool) in
        if not quiet then
          prerr_string
            (Tea_report.Stats.render ~title:"pool domains"
               (Tea_parallel.Pool.metrics_snapshot pool));
        r)

(* One deterministic summary line for any --pgo replay. Everything on it
   (layout shape, simulated cycles) is shard-invariant, keeping stdout
   byte-identical across --jobs values; the IC hit split is chunk-local,
   so it goes to --metrics instead. *)
let print_pgo_line packed ~cycles =
  Printf.printf "pgo: moved %d/%d states, %d hot-prefix edges, %d sim cycles\n"
    (Tea_opt.Repack.moved_states packed)
    (Tea_core.Packed.n_slots packed)
    (Tea_core.Packed.hot_edges packed)
    cycles

(* The fusion summary is a pure function of the image, so it is
   shard-invariant like the pgo line. CI strips it (`grep -v '^fuse:'`)
   when byte-diffing fused stdout against unfused. *)
let print_fuse_line packed =
  Printf.printf "fuse: %d chains (%d cyclic) covering %d states\n"
    (Tea_core.Packed.n_chains packed)
    (Tea_core.Packed.n_cyclic_chains packed)
    (Tea_core.Packed.fused_edges packed)

(* Every number on the retune line is a pure function of the trace prefix
   the rebuild profiled, so it is jobs-invariant like the pgo line. *)
let print_retune_line tuned ~mid ~len =
  Printf.printf
    "retune: swapped at block %d/%d -> moved %d/%d states, %d chains\n" mid len
    (Tea_opt.Repack.moved_states tuned)
    (Tea_core.Packed.n_slots tuned)
    (Tea_core.Packed.n_chains tuned)

(* ---- shared image plumbing ----

   replay, scenario, repack, fuse, compile and serve all want the same
   pipeline: record the workload and freeze its automaton into a flat
   packed image, capture the workload's own block stream as the tuning
   input, walk the --pgo/--fuse ladder over it, and hand sharded or
   serving paths a fresh-replayer factory. One definition of each step
   instead of a copy per subcommand. *)

(* record + freeze: workload name -> (binary image, flat packed image) *)
let freeze_workload name strategy_name =
  let image = or_die (resolve_workload name) in
  let traces =
    Probe.with_span "record_traces" @@ fun () ->
    let strategy = or_die (resolve_strategy strategy_name) in
    let r = Tea_dbt.Stardbt.record ~strategy image in
    Tea_traces.Trace_set.to_list r.Tea_dbt.Stardbt.set
  in
  let auto =
    Probe.with_span "build_automaton" (fun () -> Tea_core.Builder.build traces)
  in
  (image, Tea_core.Packed.freeze auto)

(* capture the workload's own block stream into a temp PC-trace file that
   never outlives [f] *)
let with_captured_trace image f =
  let tmp = Filename.temp_file "tea_capture" ".pctrace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let _ =
        Probe.with_span "trace_capture" (fun () ->
            Tea_pinsim.Trace_capture.record image tmp)
      in
      f tmp)

let capture_stream image = with_captured_trace image Tea_parallel.Shard.load_pc_trace

(* the --pgo/--fuse tuning ladder over a profiling stream: repack on the
   flat-image profile, then fuse gated by a profile re-collected over the
   repacked layout (so chain selection sees the layout it will fuse).
   Identity when both flags are off. *)
let tune_image ?hot_prefix ~pgo ~fuse packed starts ~len =
  let img =
    if not pgo then packed
    else
      Probe.with_span "pgo_repack" @@ fun () ->
      Tea_opt.Repack.repack ?hot_prefix packed
        (Tea_opt.Repack.collect packed starts ~len)
  in
  if not fuse then img
  else
    Probe.with_span "fuse" @@ fun () ->
    if not pgo then Tea_opt.Fuse.fuse img
    else
      let profile = Tea_opt.Repack.collect img starts ~len in
      Tea_opt.Fuse.fuse ~profile img

(* one fresh replayer over a private dup of a shared image — the factory
   every sharded and serving path passes down *)
let make_replayer engine img =
  match engine with
  | `Packed -> Tea_core.Replayer.create_packed (Tea_core.Packed.dup img)
  | `Compiled ->
      Tea_core.Replayer.create_compiled
        (Tea_core.Compiled.of_packed (Tea_core.Packed.dup img))

(* the engine value Replayer.rebind swaps in: a private dup of [img]
   behind the same dispatch tier the session was created with *)
let swap_engine engine img =
  match engine with
  | `Packed -> Tea_core.Replayer.Packed (Tea_core.Packed.dup img)
  | `Compiled ->
      Tea_core.Replayer.Compiled
        (Tea_core.Compiled.of_packed (Tea_core.Packed.dup img))

(* ---- scenario mode ----

   Adversarial replay scenarios: interleaved multi-asid streams,
   self-modifying code (periodic invalidation), mid-trace interrupts.
   The scenario is synthesized into a temporary PCTR3 event file, the
   demuxed replay (sequential Multi_replayer at --jobs 1, demux-first
   sharding at --jobs > 1) is gated against replaying each asid's
   projection in isolation — full per-asid Profile equality, the PR's
   hard gate — and one deterministic, jobs-invariant summary is
   printed. *)

let scenario_arg =
  let doc =
    "Adversarial replay scenario: interleave (round-robin/random schedule \
     over this workload and every --with workload, one asid each), smc \
     (periodic code-patch invalidation), or interrupt (signal cutting the \
     trace body). Requires --engine=packed; composes with --pgo/--fuse \
     (each asid's image tuned on its own stream) and --jobs."
  in
  Arg.(
    value
    & opt
        (some
           (enum
              [ ("interleave", `Interleave); ("smc", `Smc);
                ("interrupt", `Interrupt) ]))
        None
    & info [ "scenario" ] ~docv:"KIND" ~doc)

let with_arg =
  let doc =
    "Additional workload for --scenario=interleave (repeatable; asids are \
     assigned in argument order, the positional workload is asid 0)."
  in
  Arg.(value & opt_all string [] & info [ "with" ] ~docv:"WORKLOAD" ~doc)

let quantum_arg =
  let doc = "Scheduling quantum in blocks for --scenario=interleave." in
  Arg.(value & opt int 8 & info [ "quantum" ] ~docv:"N" ~doc)

let schedule_arg =
  let doc = "Interleave schedule: rr (round-robin) or random (seeded)." in
  Arg.(
    value
    & opt (enum [ ("rr", `Rr); ("random", `Random) ]) `Rr
    & info [ "schedule" ] ~docv:"SCHED" ~doc)

let scenario_seed_arg =
  let doc = "Seed for --schedule=random." in
  Arg.(value & opt int 1 & info [ "scenario-seed" ] ~docv:"SEED" ~doc)

let period_arg =
  let doc = "Blocks between invalidations for --scenario=smc." in
  Arg.(value & opt int 64 & info [ "period" ] ~docv:"N" ~doc)

let at_arg =
  let doc =
    "Block offset of the interrupt for --scenario=interrupt (default: \
     half the stream)."
  in
  Arg.(value & opt (some int) None & info [ "at" ] ~docv:"N" ~doc)

let every_arg =
  let doc =
    "Interrupt after every $(docv) blocks for --scenario=interrupt \
     (overrides --at)."
  in
  Arg.(value & opt (some int) None & info [ "every" ] ~docv:"N" ~doc)

let run_scenario ~kind ~name ~withs ~strategy_name ~engine ~jobs ~pgo ~fuse
    ~quantum ~schedule ~seed ~period ~at ~every obs =
  let module Scenario = Tea_workloads.Scenario in
  let kind_name =
    match kind with
    | `Interleave -> "interleave"
    | `Smc -> "smc"
    | `Interrupt -> "interrupt"
  in
  let names = name :: withs in
  (* scenario knobs are validated here, as usage errors — never left to
     surface as a raw Invalid_argument out of the scenario generators *)
  (match kind with
  | `Interleave ->
      if List.length names < 2 then
        or_die (Error "--scenario=interleave needs at least one --with workload");
      if quantum < 1 then or_die (Error "--quantum must be >= 1")
  | `Smc | `Interrupt ->
      if withs <> [] then
        or_die (Error "--with applies only to --scenario=interleave"));
  (match kind with
  | `Smc -> if period < 1 then or_die (Error "--period must be >= 1")
  | `Interleave | `Interrupt ->
      ignore period (* fixed default; never reaches the generator *));
  (match kind with
  | `Interrupt ->
      (match at with
      | Some n when n < 0 -> or_die (Error "--at must be >= 0")
      | _ -> ());
      (match every with
      | Some n when n < 1 -> or_die (Error "--every must be >= 1")
      | _ -> ())
  | `Interleave | `Smc ->
      if at <> None then
        or_die (Error "--at applies only to --scenario=interrupt");
      if every <> None then
        or_die (Error "--every applies only to --scenario=interrupt"));
  (* Per-asid pipeline: record traces, freeze the packed image, capture
     the workload's own block stream, and tune (--pgo/--fuse) on that
     stream — the same image then backs both the demuxed and the isolated
     replay, so tuning cannot break the gate. *)
  let prep asid wname =
    let image, packed = freeze_workload wname strategy_name in
    let stream =
      with_captured_trace image (fun tmp ->
          Scenario.load_stream ~asid ~name:wname tmp)
    in
    let packed =
      tune_image ~pgo ~fuse packed stream.Scenario.starts
        ~len:stream.Scenario.len
    in
    (stream, packed)
  in
  let prepared =
    Probe.with_span "scenario_prep" @@ fun () -> List.mapi prep names
  in
  let streams = List.map fst prepared in
  let images = Array.of_list (List.map snd prepared) in
  let img_for a = images.(a) in
  let mk_rep img = make_replayer engine img in
  let make a = mk_rep (img_for a) in
  let scn =
    match kind with
    | `Interleave ->
        let schedule =
          match schedule with
          | `Rr -> Scenario.Round_robin
          | `Random -> Scenario.Random_sched seed
        in
        Scenario.interleave ~quantum ~schedule streams
    | `Smc -> Scenario.smc ~period (List.hd streams)
    | `Interrupt -> Scenario.interrupt ?at ?every (List.hd streams)
  in
  let file = Filename.temp_file "tea_scenario" ".trc" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  let n_events = Scenario.write_file file scn in
  let demuxed =
    Probe.with_span "scenario_demuxed" @@ fun () ->
    with_jobs ~quiet:obs.quiet jobs (function
      | None ->
          Tea_core.Multi_replayer.snapshots
            (Tea_core.Multi_replayer.replay_events make file)
      | Some pool ->
          Tea_parallel.Shard.replay_events pool img_for ~make:mk_rep file)
  in
  let isolated =
    Probe.with_span "scenario_isolated" @@ fun () ->
    Tea_core.Multi_replayer.replay_isolated make file
  in
  (* the hard gate: full per-asid snapshot equality, at any --jobs *)
  if
    List.length demuxed <> List.length isolated
    || not
         (List.for_all2
            (fun (a1, p1) (a2, p2) ->
              a1 = a2 && Tea_parallel.Profile.equal p1 p2)
            demuxed isolated)
  then
    or_die
      (Error "scenario gate failed: demuxed replay diverged from isolated \
              per-asid replay");
  (* Everything printed is a pure function of the scenario and the tuned
     images — byte-identical whatever --jobs is. *)
  let runs = Tea_parallel.Shard.load_events file in
  Printf.printf "scenario %s (%s engine%s%s): %d streams, %d events\n"
    kind_name
    (match engine with `Packed -> "packed" | `Compiled -> "compiled")
    (if pgo then " +pgo" else "")
    (if fuse then " +fuse" else "")
    (List.length streams) n_events;
  List.iter
    (fun (asid, profile) ->
      let wname = List.nth names asid in
      let segs = match List.assoc_opt asid runs with Some l -> l | None -> [] in
      let blocks =
        List.fold_left (fun acc r -> acc + r.Tea_parallel.Shard.len) 0 segs
      in
      Printf.printf
        "  asid %d %s: %d blocks in %d runs, coverage %.1f%%, %d enters, %d \
         exits, %d sim cycles\n"
        asid wname blocks (List.length segs)
        (100.0 *. Tea_parallel.Profile.coverage profile)
        profile.Tea_parallel.Profile.enters profile.Tea_parallel.Profile.exits
        profile.Tea_parallel.Profile.cycles)
    demuxed;
  Printf.printf "scenario gate: demuxed == isolated for %d asids\n"
    (List.length demuxed)

let replay_cmd =
  let rec run name strategy_name traces_file config_name pc_trace engine jobs
      pgo fuse retune tiers scenario withs quantum schedule seed period at
      every obs =
    with_obs obs "replay" @@ fun () ->
    if pgo && engine = `Reference then
      or_die (Error "--pgo requires --engine=packed or compiled");
    if fuse && engine = `Reference then
      or_die (Error "--fuse requires --engine=packed or compiled");
    if tiers && engine = `Reference then
      or_die (Error "--tiers requires --engine=packed or compiled");
    if retune then begin
      if engine = `Reference then
        or_die (Error "--retune requires --engine=packed or compiled");
      if pgo || fuse then
        or_die (Error "--retune rebuilds its own tuning; drop --pgo/--fuse");
      if pc_trace = None then or_die (Error "--retune requires --pc-trace");
      if scenario <> None then
        or_die (Error "--retune applies only to plain replay; drop --scenario")
    end;
    (match scenario with
    | Some _ -> ()
    | None ->
        (* scenario-only knobs without --scenario are usage errors, not
           silently dead flags *)
        if withs <> [] then or_die (Error "--with requires --scenario");
        if at <> None then or_die (Error "--at requires --scenario=interrupt");
        if every <> None then
          or_die (Error "--every requires --scenario=interrupt"));
    match scenario with
    | Some kind ->
        let engine =
          match engine with
          | `Reference ->
              or_die (Error "--scenario requires --engine=packed or compiled")
          | (`Packed | `Compiled) as e -> e
        in
        if tiers then
          or_die (Error "--tiers applies only to plain replay; drop --scenario");
        if pc_trace <> None then
          or_die (Error "--scenario synthesizes its own stream; drop --pc-trace");
        if traces_file <> None then
          or_die (Error "--scenario records its own traces; drop --traces");
        ignore config_name;
        run_scenario ~kind ~name ~withs ~strategy_name ~engine ~jobs ~pgo
          ~fuse ~quantum ~schedule ~seed ~period ~at ~every obs
    | None ->
        let body () =
          run_replay name strategy_name traces_file config_name pc_trace
            engine jobs pgo fuse retune obs
        in
        if not tiers then ignore (body ())
        else begin
          Tea_core.Tierstat.install ();
          match body () with
          | image ->
              let snap = Tea_core.Tierstat.uninstall () in
              print_string (Tea_report.Hotness.render ?image snap)
          | exception e ->
              ignore (Tea_core.Tierstat.uninstall ());
              raise e
        end
  and run_replay name strategy_name traces_file config_name pc_trace engine
      jobs pgo fuse retune obs =
    (* `--pc-trace -' and other non-seekable inputs: the replay paths read
       the file several times (length, PGO collection, replay), so a
       stream — stdin, a FIFO, /dev/stdin — is spooled to a temp file
       once and replayed from there *)
    let needs_spool = function
      | "-" -> true
      | path -> (
          match (Unix.stat path).Unix.st_kind with
          | Unix.S_REG -> false
          | _ -> true
          | exception Unix.Unix_error _ -> false (* let open_in report it *))
    in
    let pc_trace, cleanup_spool =
      match pc_trace with
      | Some path when needs_spool path ->
          let tmp = Filename.temp_file "tea_stdin" ".pctrace" in
          let oc = open_out_bin tmp in
          output_string oc (Tea_core.Pc_trace.read_all path);
          close_out oc;
          (Some tmp, fun () -> try Sys.remove tmp with Sys_error _ -> ())
      | p -> (p, fun () -> ())
    in
    Fun.protect ~finally:cleanup_spool @@ fun () ->
    let image = or_die (resolve_workload name) in
    let config = config_name in
    let traces =
      Probe.with_span "acquire_traces" @@ fun () ->
      match traces_file with
      | Some path -> Tea_traces.Serialize.load image path
      | None ->
          let strategy = or_die (resolve_strategy strategy_name) in
          let r = Tea_dbt.Stardbt.record ~strategy image in
          Tea_traces.Trace_set.to_list r.Tea_dbt.Stardbt.set
    in
    let engine_name = engine_name engine in
    match pc_trace with
    | Some path when jobs > 1 ->
        (* sharded offline replay: chunk the decoded trace across domains
           with entry-state stitching; the merged profile (and this line)
           is bit-identical to the sequential replay *)
        (match engine with
        | `Reference ->
            or_die
              (Error
                 "--jobs > 1 requires --engine=packed or compiled for \
                  --pc-trace replay")
        | (`Packed | `Compiled) as engine ->
            let auto =
              Probe.with_span "build_automaton" (fun () ->
                  Tea_core.Builder.build traces)
            in
            let packed = Tea_core.Packed.freeze auto in
            let packed =
              if not (pgo || fuse) then packed
              else
                let starts, _, len = Tea_parallel.Shard.load_pc_trace path in
                tune_image ~pgo ~fuse packed starts ~len
            in
            let make = make_replayer engine in
            let profile, blocks, swapped =
              Probe.with_span "replay_pc_trace" @@ fun () ->
              with_jobs ~quiet:obs.quiet jobs (function
                | None -> assert false (* jobs > 1 *)
                | Some pool ->
                    if not retune then
                      let profile, blocks =
                        Tea_parallel.Shard.replay_pc_trace pool packed ~make
                          path
                      in
                      (profile, blocks, None)
                    else begin
                      (* segmented sharded replay: first half on the flat
                         image, rebuild, second half on the tuned image
                         entered through the orig-id translated exit
                         state — the merged profile equals the sequential
                         swapped run bit-for-bit *)
                      let starts, insns, len =
                        Tea_parallel.Shard.load_pc_trace path
                      in
                      let mid = len / 2 in
                      let prof1, exit1 =
                        Tea_parallel.Shard.replay_span pool packed ~make
                          ~insns starts ~off:0 ~len:mid
                      in
                      let tuned, _prof =
                        Probe.with_span "retune_build" @@ fun () ->
                        Tea_opt.Retune.build ~src:packed
                          ~profile_of:(fun img ->
                            Tea_opt.Repack.collect img starts ~len:mid)
                          ()
                      in
                      let entry =
                        if exit1 = Tea_core.Automaton.nte then exit1
                        else
                          Tea_core.Packed.slot_of_state tuned
                            (Tea_core.Packed.orig_state packed exit1)
                      in
                      let prof2, _ =
                        Tea_parallel.Shard.replay_span pool tuned ~make ~entry
                          ~insns starts ~off:mid ~len:(len - mid)
                      in
                      ( Tea_parallel.Profile.merge_all [ prof1; prof2 ],
                        len,
                        Some (tuned, mid, len) )
                    end)
            in
            Printf.printf
              "offline replay of %s (%s engine): %d blocks, coverage %.1f%%, \
               %d trace entries\n"
              path engine_name blocks
              (100.0 *. Tea_parallel.Profile.coverage profile)
              profile.Tea_parallel.Profile.enters;
            if pgo then
              print_pgo_line packed
                ~cycles:profile.Tea_parallel.Profile.cycles;
            if fuse then print_fuse_line packed;
            (match swapped with
            | Some (tuned, mid, len) ->
                print_retune_line tuned ~mid ~len;
                Some tuned
            | None -> Some packed))
    | Some path ->
        (* fully offline: no program execution, just the trace file *)
        let auto =
          Probe.with_span "build_automaton" (fun () ->
              Tea_core.Builder.build traces)
        in
        let swapped = ref None in
        let rep =
          Probe.with_span "replay_pc_trace"
            ~post:(fun rep ->
              [ ("sim_cycles", string_of_int (Tea_core.Replayer.cycles rep)) ])
          @@ fun () ->
          match engine with
          | `Reference ->
              Tea_core.Pc_trace.replay (Tea_core.Transition.create config auto) path
          | (`Packed | `Compiled) as eng ->
              let packed = Tea_core.Packed.freeze auto in
              if retune then begin
                (* the sequential reference for the sharded swap path:
                   replay half, rebuild from what was seen, rebind the
                   live replayer in place, finish on the tuned image *)
                let starts, insns, len =
                  Tea_parallel.Shard.load_pc_trace path
                in
                let mid = len / 2 in
                let rep = make_replayer eng packed in
                Tea_core.Replayer.feed_run rep ~insns starts ~len:mid;
                let tuned, _prof =
                  Probe.with_span "retune_build" @@ fun () ->
                  Tea_opt.Retune.build ~src:packed
                    ~profile_of:(fun img ->
                      Tea_opt.Repack.collect img starts ~len:mid)
                    ()
                in
                Tea_core.Replayer.rebind rep (swap_engine eng tuned);
                Tea_core.Replayer.feed_run rep ~off:mid ~insns starts
                  ~len:(len - mid);
                swapped := Some (tuned, mid, len);
                rep
              end
              else if eng = `Packed && not (pgo || fuse) then
                Tea_core.Pc_trace.replay_packed packed path
              else begin
                let starts, insns, len =
                  Tea_parallel.Shard.load_pc_trace path
                in
                let img = tune_image ~pgo ~fuse packed starts ~len in
                let tuned = make_replayer eng img in
                Tea_core.Replayer.feed_run tuned ~insns starts ~len;
                tuned
              end
        in
        Printf.printf
          "offline replay of %s (%s engine): %d blocks, coverage %.1f%%, %d \
           trace entries\n"
          path engine_name
          (Tea_core.Pc_trace.length path)
          (100.0 *. Tea_core.Replayer.coverage rep)
          (Tea_core.Replayer.trace_enters rep);
        (match !swapped with
        | Some (tuned, mid, len) -> print_retune_line tuned ~mid ~len
        | None -> ());
        (match Tea_core.Replayer.engine rep with
        | Tea_core.Replayer.Packed p ->
            if pgo then print_pgo_line p ~cycles:(Tea_core.Replayer.cycles rep);
            if fuse then print_fuse_line p;
            Some p
        | Tea_core.Replayer.Compiled c ->
            let p = Tea_core.Compiled.base c in
            if pgo then print_pgo_line p ~cycles:(Tea_core.Replayer.cycles rep);
            if fuse then print_fuse_line p;
            Some p
        | Tea_core.Replayer.Reference _ -> None)
    | None ->
        if jobs > 1 then
          or_die (Error "--jobs > 1 applies only to --pc-trace offline replay");
        let result, rep =
          Probe.with_span "pintool_replay"
            ~post:(fun (r, _) ->
              [ ("sim_cycles",
                 string_of_int r.Tea_pinsim.Pintool_replay.total_cycles) ])
          @@ fun () ->
          Tea_pinsim.Pintool_replay.replay ~transition:config ~engine ~pgo
            ~fuse ~traces image
        in
        let st = result.Tea_pinsim.Pintool_replay.transition_stats in
        Printf.printf
          "replayed %d traces (%s engine)\ncoverage: %.1f%%\nslowdown vs native: %.2fx\n\
           transition stats: %d steps, %d in-trace, %d cache hits, %d container \
           hits, %d NTE\n"
          (List.length traces) engine_name
          (100.0 *. result.Tea_pinsim.Pintool_replay.coverage)
          result.Tea_pinsim.Pintool_replay.slowdown
          st.Tea_core.Transition.steps st.Tea_core.Transition.in_trace_hits
          st.Tea_core.Transition.cache_hits st.Tea_core.Transition.global_hits
          st.Tea_core.Transition.global_misses;
        (match Tea_core.Replayer.engine rep with
        | Tea_core.Replayer.Packed p ->
            if pgo then print_pgo_line p ~cycles:(Tea_core.Replayer.cycles rep);
            if fuse then print_fuse_line p;
            Some p
        | Tea_core.Replayer.Compiled c ->
            let p = Tea_core.Compiled.base c in
            if pgo then print_pgo_line p ~cycles:(Tea_core.Replayer.cycles rep);
            if fuse then print_fuse_line p;
            Some p
        | Tea_core.Replayer.Reference _ -> None)
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay traces through the TEA under the Pin-like frontend")
    Term.(
      const run $ workload_arg $ strategy_arg $ traces_arg $ config_arg
      $ pc_trace_arg $ engine_arg $ jobs_arg $ pgo_arg $ fuse_arg
      $ retune_arg $ tiers_arg $ scenario_arg $ with_arg $ quantum_arg
      $ schedule_arg $ scenario_seed_arg $ period_arg $ at_arg $ every_arg
      $ obs_term)

let capture_cmd =
  let out_required =
    let doc = "Output PC-trace file." in
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let format_arg =
    let doc = "Trace encoding: v1, v2 (default) or v3." in
    Arg.(
      value
      & opt
          (enum
             [ ("v1", Tea_core.Pc_trace.V1); ("v2", Tea_core.Pc_trace.V2);
               ("v3", Tea_core.Pc_trace.V3) ])
          Tea_core.Pc_trace.V2
      & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let run name out format obs =
    with_obs obs "capture" @@ fun () ->
    let image = or_die (resolve_workload name) in
    let n =
      Probe.with_span "trace_capture" (fun () ->
          Tea_pinsim.Trace_capture.record ~format image out)
    in
    Printf.printf "captured %d blocks to %s (%d bytes)\n" n out
      (Unix.stat out).Unix.st_size
  in
  Cmd.v
    (Cmd.info "capture" ~doc:"Capture an execution's block stream to a PC-trace file")
    Term.(const run $ workload_arg $ out_required $ format_arg $ obs_term)

(* ---- dot ---- *)

let dot_cmd =
  let run name strategy_name out =
    let image = or_die (resolve_workload name) in
    let strategy = or_die (resolve_strategy strategy_name) in
    let r = Tea_dbt.Stardbt.record ~strategy image in
    let auto = Tea_core.Builder.of_set r.Tea_dbt.Stardbt.set in
    let dot = Tea_core.Dot.of_automaton ~title:name auto in
    match out with
    | Some path ->
        let oc = open_out path in
        output_string oc dot;
        close_out oc;
        Printf.printf "wrote %s\n" path
    | None -> print_string dot
  in
  Cmd.v (Cmd.info "dot" ~doc:"Emit the TEA as Graphviz")
    Term.(const run $ workload_arg $ strategy_arg $ out_arg)

(* ---- analyze ---- *)

let replay_with_detector image traces =
  let auto = Tea_core.Builder.build traces in
  let trans =
    Tea_core.Transition.create Tea_core.Transition.config_global_local auto
  in
  let replayer = Tea_core.Replayer.create trans in
  let detector = Tea_core.Phases.create () in
  let filter =
    Tea_pinsim.Edge_filter.create ~emit:(fun block ~expanded ->
        Tea_core.Replayer.feed_addr replayer ~insns:expanded
          block.Tea_cfg.Block.start;
        Tea_core.Phases.feed detector (Tea_core.Replayer.state replayer))
  in
  let _ = Tea_pinsim.Pin.run ~tool:(Tea_pinsim.Edge_filter.callbacks filter) image in
  Tea_pinsim.Edge_filter.flush filter;
  Tea_core.Phases.finish detector;
  (replayer, detector)

let record_traces image strategy_name =
  let strategy = or_die (resolve_strategy strategy_name) in
  let r = Tea_dbt.Stardbt.record ~strategy image in
  Tea_traces.Trace_set.to_list r.Tea_dbt.Stardbt.set

(* ---- repack ---- *)

let repack_cmd =
  let save_profile_arg =
    let doc =
      "Also write the collected edge profile (per-state visits, per-edge \
       taken counts, per-state scan misses over the flat image) as a \
       TEAEP1 file — the drift-monitor reference for `serve \
       --drift-profile' and `info --baseline'."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "save-profile" ] ~docv:"FILE" ~doc)
  in
  let run name strategy_name hot_prefix out save_profile obs =
    with_obs obs "repack" @@ fun () ->
    let image, packed = freeze_workload name strategy_name in
    (* profile stream: the block trace of one native run of the workload *)
    let starts, insns, len = capture_stream image in
    let repacked, baseline, tuned =
      Probe.with_span "pgo_replay" @@ fun () ->
      Tea_opt.Repack.pgo_replay ~hot_prefix packed ~insns starts ~len
    in
    if
      Tea_core.Replayer.tbb_counts baseline
      <> Tea_core.Replayer.tbb_counts tuned
    then or_die (Error "repacked TBB mapping diverged from the baseline");
    let base_cycles = Tea_core.Replayer.cycles baseline in
    let tuned_cycles = Tea_core.Replayer.cycles tuned in
    let steps = (Tea_core.Replayer.stats tuned).Tea_core.Transition.steps in
    let hits = Tea_core.Packed.ic_hits repacked in
    Printf.printf "repacked %s: %d blocks replayed, tbb mapping identical\n"
      name len;
    Printf.printf "layout: moved %d/%d states, %d hot-prefix edges (cap %d)\n"
      (Tea_opt.Repack.moved_states repacked)
      (Tea_core.Packed.n_slots repacked)
      (Tea_core.Packed.hot_edges repacked)
      hot_prefix;
    Printf.printf "sim cycles: %d -> %d (%.3fx)\n" base_cycles tuned_cycles
      (if tuned_cycles = 0 then 1.0
       else float_of_int base_cycles /. float_of_int tuned_cycles);
    Printf.printf "inline cache: %d/%d hits (%.1f%%)\n" hits steps
      (if steps = 0 then 0.0 else 100.0 *. float_of_int hits /. float_of_int steps);
    (match save_profile with
    | Some path ->
        Tea_opt.Repack.save_profile path
          (Tea_opt.Repack.collect packed starts ~len);
        Printf.printf "wrote %s (TEAEP1 edge profile)\n" path
    | None -> ());
    match out with
    | Some path ->
        Tea_core.Serialize.save_packed path repacked;
        Printf.printf "wrote %s (TEAPK2, %d bytes)\n" path
          (Unix.stat path).Unix.st_size
    | None -> ()
  in
  Cmd.v
    (Cmd.info "repack"
       ~doc:
         "Profile-guided repacking: record, profile one run, repack the \
          packed image and compare against the baseline replay")
    Term.(
      const run $ workload_arg $ strategy_arg $ hot_prefix_arg $ out_arg
      $ save_profile_arg $ obs_term)

(* ---- fuse ---- *)

let fuse_cmd =
  let run name strategy_name pgo hot_prefix out obs =
    with_obs obs "fuse" @@ fun () ->
    let image, packed = freeze_workload name strategy_name in
    let starts, insns, len = capture_stream image in
    let src = tune_image ~hot_prefix ~pgo ~fuse:false packed starts ~len in
    let fused, baseline, tuned =
      Probe.with_span "fused_replay" @@ fun () ->
      (* with --pgo the profiling stream also gates chain selection,
         re-collected over the repacked layout *)
      let profile =
        if pgo then Some (Tea_opt.Repack.collect src starts ~len) else None
      in
      Tea_opt.Fuse.fused_replay ?profile src ~insns starts ~len
    in
    (* hard gates: fusion must be observationally invisible *)
    if
      Tea_core.Replayer.tbb_counts baseline
      <> Tea_core.Replayer.tbb_counts tuned
    then or_die (Error "fused TBB mapping diverged from the baseline");
    if Tea_core.Replayer.cycles baseline <> Tea_core.Replayer.cycles tuned then
      or_die (Error "fused simulated cycles diverged from the baseline");
    Printf.printf "fused %s: %d blocks replayed, tbb mapping identical\n" name
      len;
    if pgo then
      print_pgo_line src ~cycles:(Tea_core.Replayer.cycles tuned);
    print_fuse_line fused;
    Printf.printf "sim cycles: %d (identical to unfused)\n"
      (Tea_core.Replayer.cycles tuned);
    match out with
    | Some path ->
        Tea_core.Serialize.save_packed path fused;
        Printf.printf "wrote %s (TEAPK%d, %d bytes)\n" path
          (Tea_core.Serialize.packed_version fused)
          (Unix.stat path).Unix.st_size
    | None -> ()
  in
  Cmd.v
    (Cmd.info "fuse"
       ~doc:
         "Superstate fusion: record, fuse single-successor chains and \
          monomorphic cycles in the packed image (optionally after --pgo \
          repacking), and verify the fused replay is identical")
    Term.(
      const run $ workload_arg $ strategy_arg $ pgo_arg $ hot_prefix_arg
      $ out_arg $ obs_term)

(* ---- compile ---- *)

let compile_cmd =
  let run name strategy_name pgo fuse hot_prefix out obs =
    with_obs obs "compile" @@ fun () ->
    let image, packed = freeze_workload name strategy_name in
    let starts, insns, len = capture_stream image in
    (* the compiler consumes any layout, so --pgo/--fuse stack the same
       way they do under `replay': tune first, then specialize *)
    let src = tune_image ~hot_prefix ~pgo ~fuse packed starts ~len in
    let compiled, baseline, tuned =
      Probe.with_span "compiled_replay" @@ fun () ->
      Tea_opt.Compile.compiled_replay src ~insns starts ~len
    in
    (* hard gates: compilation must be observationally invisible *)
    if
      Tea_core.Replayer.tbb_counts baseline
      <> Tea_core.Replayer.tbb_counts tuned
    then or_die (Error "compiled TBB mapping diverged from the baseline");
    if Tea_core.Replayer.cycles baseline <> Tea_core.Replayer.cycles tuned then
      or_die (Error "compiled simulated cycles diverged from the baseline");
    Printf.printf "compiled %s: %d blocks replayed, tbb mapping identical\n"
      name len;
    if pgo then print_pgo_line src ~cycles:(Tea_core.Replayer.cycles tuned);
    if fuse then print_fuse_line src;
    print_string (Tea_opt.Compile.describe compiled);
    Printf.printf "sim cycles: %d (identical to interpreted)\n"
      (Tea_core.Replayer.cycles tuned);
    match out with
    | Some path ->
        (* closures don't serialize; the artifact is the source image,
           re-specialized on load by `replay --engine=compiled' *)
        Tea_core.Serialize.save_packed path src;
        Printf.printf "wrote %s (TEAPK%d, %d bytes; dispatch recompiles on load)\n"
          path
          (Tea_core.Serialize.packed_version src)
          (Unix.stat path).Unix.st_size
    | None -> ()
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Closure-threaded compilation: record, specialize the packed \
          image's dispatch into preapplied closures (optionally after \
          --pgo repacking and --fuse chain fusion), and verify the \
          compiled replay is identical")
    Term.(
      const run $ workload_arg $ strategy_arg $ pgo_arg $ fuse_arg
      $ hot_prefix_arg $ out_arg $ obs_term)

(* ---- info ---- *)

let info_cmd =
  let image_arg =
    let doc = "Packed image file (TEAPK1/TEAPK2/TEAPK3, see `repack -o' and `fuse -o')." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"IMAGE" ~doc)
  in
  let profile_arg =
    let doc =
      "TEAEP1 edge profile collected over this image's layout (see \
       `repack --save-profile'): print its static dispatch-tier mix \
       through the image's hot prefixes and its drift distance from the \
       reference."
    in
    Arg.(
      value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)
  in
  let baseline_arg =
    let doc =
      "Drift reference: a second TEAEP1 profile to measure --profile \
       against. Without it, a repacked image's own hotness ranking (its \
       slot order) is the reference; a flat image has none."
    in
    Arg.(
      value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let load_teaep path =
    match Tea_opt.Repack.load_profile path with
    | prof -> prof
    | exception Failure msg ->
        or_die (Error (Printf.sprintf "%s: %s" path msg))
  in
  (* Static tier mix: push the profile's per-edge taken counts through the
     image's dispatch layout. Edges inside a state's hot prefix resolve by
     linear scan ("hot"), the tail by binary search ("search"); per-state
     span misses fall through to the trace-head hash ("hash/miss" — the
     split needs the stream, not just counts). IC hits depend on repeat
     patterns the profile doesn't record, so they land in their underlying
     scan tier here. *)
  let print_profile_mix packed (prof : Tea_opt.Repack.profile) =
    let raw = Tea_core.Packed.to_raw packed in
    let n_slots = Tea_core.Packed.n_slots packed in
    if
      Array.length prof.Tea_opt.Repack.visits <> n_slots
      || Array.length prof.Tea_opt.Repack.taken
         <> Tea_core.Packed.n_edges packed
    then
      or_die
        (Error
           "profile shape does not match the image (collected over a \
            different layout?)");
    (* TEAEP profiles are indexed in original automaton-id space (the
       flat layout `repack --save-profile' collects over — the same
       space serve's fleet counts live in), so a repacked image's spans
       are walked through the orig_of translation: slot [s] holds the
       same edge set as original state [orig_of.(s)], and sorting the
       span by label recovers the flat edge order. Identity on flat
       images. *)
    let flat_off = Array.make (n_slots + 1) 0 in
    for s = 0 to n_slots - 1 do
      let o = raw.Tea_core.Packed.orig_of.(s) in
      flat_off.(o + 1) <-
        raw.Tea_core.Packed.offsets.(s + 1) - raw.Tea_core.Packed.offsets.(s)
    done;
    for o = 0 to n_slots - 1 do
      flat_off.(o + 1) <- flat_off.(o) + flat_off.(o + 1)
    done;
    let hot = ref 0 and search = ref 0 and fallthrough = ref 0 in
    for s = 0 to n_slots - 1 do
      let lo = raw.Tea_core.Packed.offsets.(s)
      and hi = raw.Tea_core.Packed.offsets.(s + 1) in
      let k = raw.Tea_core.Packed.hot_len.(s) in
      let o = raw.Tea_core.Packed.orig_of.(s) in
      let span = Array.init (hi - lo) (fun i -> lo + i) in
      Array.sort
        (fun a b ->
          Int.compare raw.Tea_core.Packed.labels.(a)
            raw.Tea_core.Packed.labels.(b))
        span;
      Array.iteri
        (fun i e ->
          let n = prof.Tea_opt.Repack.taken.(flat_off.(o) + i) in
          if e < lo + k then hot := !hot + n else search := !search + n)
        span;
      fallthrough := !fallthrough + prof.Tea_opt.Repack.misses.(o)
    done;
    let total = !hot + !search + !fallthrough in
    let pct n =
      Tea_report.Stats.percent1
        (float_of_int n /. float_of_int (max 1 total))
    in
    Printf.printf
      "profile: %d resolutions  hot=%s search=%s hash/miss=%s\n" total
      (pct !hot) (pct !search) (pct !fallthrough)
  in
  let run path profile baseline =
    let packed =
      try Tea_core.Serialize.load_packed path
      with Tea_core.Serialize.Parse_error msg ->
        or_die (Error (Printf.sprintf "%s: %s" path msg))
    in
    print_string (Tea_core.Serialize.describe_packed packed);
    (* what `replay --engine=compiled' would specialize this image into:
       pure function of the arrays, cheap enough to build on the spot *)
    print_string (Tea_opt.Compile.describe (Tea_opt.Compile.compile packed));
    match profile with
    | None ->
        if baseline <> None then
          or_die (Error "--baseline needs --profile to measure against")
    | Some ppath ->
        let prof = load_teaep ppath in
        print_profile_mix packed prof;
        let live = visits_counts prof in
        let ref_counts =
          match baseline with
          | Some bpath -> Some (visits_counts (load_teaep bpath), live)
          | None ->
              (* A repacked image's slot order IS its baked hotness
                 ranking (hotness-descending renumbering, NTE pinned at
                 0) — the only trace of the tuning profile a TEAPK2/3
                 file carries. Re-assigning the live profile's own
                 sorted masses along that slot order builds a reference
                 that scores exactly 0 when the live hotness ranking
                 still matches the baked one, and moves mass (keyed by
                 original state id, the profile's space) when it does
                 not. NTE carries no layout decision, so it is dropped
                 from both sides. *)
              if Tea_core.Packed.is_repacked packed then begin
                let hot = List.filter (fun (id, _) -> id <> 0) live in
                let sorted =
                  List.sort (fun a b -> Int.compare b a) (List.map snd hot)
                in
                let n = Tea_core.Packed.n_slots packed in
                let rec assign slot counts acc =
                  match counts with
                  | [] -> List.rev acc
                  | c :: rest ->
                      if slot >= n then List.rev acc
                      else
                        assign (slot + 1) rest
                          ((Tea_core.Packed.orig_state packed slot, c) :: acc)
                in
                Some (assign 1 sorted [], hot)
              end
              else None
        in
        (match ref_counts with
        | None ->
            print_endline
              "drift: no reference (flat image bakes no ranking; pass \
               --baseline)"
        | Some (counts, live) ->
            let d = Tea_observe.Drift.create counts in
            let dist = Tea_observe.Drift.measure d live in
            Printf.printf "drift: l1=%.4f threshold=%.2f (%s%s)\n" dist
              (Tea_observe.Drift.threshold d)
              (if Tea_observe.Drift.exceeded d dist then "exceeded"
               else "ok")
              (if baseline = None then ", vs layout ranking" else ""))
  in
  Cmd.v
    (Cmd.info "info"
       ~doc:
         "Describe a serialized packed image (optionally with an edge \
          profile's tier mix and drift)")
    Term.(const run $ image_arg $ profile_arg $ baseline_arg)

let analyze_cmd =
  let run name strategy_name obs =
    with_obs obs "analyze" @@ fun () ->
    let image = or_die (resolve_workload name) in
    let traces =
      Probe.with_span "record_traces" (fun () ->
          record_traces image strategy_name)
    in
    let replayer, _ =
      Probe.with_span "replay" (fun () -> replay_with_detector image traces)
    in
    print_endline (Tea_core.Analysis.coverage_summary replayer);
    print_endline "hottest traces:";
    List.iter
      (fun s -> Format.printf "  %a@." Tea_core.Analysis.pp_trace_stats s)
      (Tea_core.Analysis.hottest ~n:10 replayer);
    match Tea_core.Analysis.side_exit_candidates ~n:5 replayer with
    | [] -> ()
    | sites ->
        print_endline "hot open TBBs (side-exit / extension candidates):";
        List.iter
          (fun site ->
            Printf.printf "  trace %d tbb %d @0x%x: %d executions\n"
              site.Tea_core.Analysis.site_trace site.Tea_core.Analysis.site_tbb
              site.Tea_core.Analysis.block_start site.Tea_core.Analysis.executions)
          sites
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Replay and print trace-quality analytics")
    Term.(const run $ workload_arg $ strategy_arg $ obs_term)

(* ---- phases ---- *)

let phases_cmd =
  let run name strategy_name =
    let image = or_die (resolve_workload name) in
    let traces = record_traces image strategy_name in
    let _, detector = replay_with_detector image traces in
    Format.printf "%a" Tea_core.Phases.pp detector
  in
  Cmd.v
    (Cmd.info "phases" ~doc:"Detect program phases from trace stability (§5, [22])")
    Term.(const run $ workload_arg $ strategy_arg)

(* ---- cachesim ---- *)

let cachesim_cmd =
  let run name strategy_name =
    let image = or_die (resolve_workload name) in
    let traces = record_traces image strategy_name in
    let report = Tea_cachesim.Collector.profile ~traces image in
    print_string (Tea_cachesim.Collector.render report)
  in
  Cmd.v
    (Cmd.info "cachesim"
       ~doc:"Replay traces on the cache simulator with per-trace attribution")
    Term.(const run $ workload_arg $ strategy_arg)

(* ---- bpred ---- *)

let bpred_cmd =
  let kind_arg =
    let doc = "Predictor: always-taken, btfn, bimodal, gshare." in
    Arg.(value & opt string "gshare" & info [ "p"; "predictor" ] ~docv:"KIND" ~doc)
  in
  let resolve_kind = function
    | "always-taken" -> Ok Tea_bpred.Predictor.Always_taken
    | "btfn" -> Ok Tea_bpred.Predictor.Btfn
    | "bimodal" -> Ok (Tea_bpred.Predictor.Bimodal 12)
    | "gshare" -> Ok (Tea_bpred.Predictor.Gshare 12)
    | k -> Error (Printf.sprintf "unknown predictor %S" k)
  in
  let run name strategy_name kind_name =
    let image = or_die (resolve_workload name) in
    let kind = or_die (resolve_kind kind_name) in
    let traces = record_traces image strategy_name in
    let report = Tea_bpred.Collector.profile ~kind ~traces image in
    print_string (Tea_bpred.Collector.render report)
  in
  Cmd.v
    (Cmd.info "bpred"
       ~doc:"Replay traces with per-trace branch-prediction attribution")
    Term.(const run $ workload_arg $ strategy_arg $ kind_arg)

(* ---- inspect ---- *)

let inspect_cmd =
  let id_arg =
    let doc = "Trace id to inspect (default: the hottest by replay)." in
    Arg.(value & opt (some int) None & info [ "i"; "id" ] ~docv:"ID" ~doc)
  in
  let run name strategy_name id =
    let image = or_die (resolve_workload name) in
    let traces = record_traces image strategy_name in
    let replayer, _ = replay_with_detector image traces in
    let target_id =
      match id with
      | Some i -> i
      | None -> (
          match Tea_core.Analysis.hottest ~n:1 replayer with
          | [ t ] -> t.Tea_core.Analysis.trace_id
          | _ ->
              prerr_endline "tea_tool: no trace executed";
              exit 1)
    in
    match List.find_opt (fun t -> t.Tea_traces.Trace.id = target_id) traces with
    | None ->
        prerr_endline (Printf.sprintf "tea_tool: no trace with id %d" target_id);
        exit 1
    | Some trace ->
        let profile = Tea_core.Replayer.trace_profile replayer target_id in
        Format.printf "%a@." Tea_traces.Trace.pp trace;
        Array.iteri
          (fun i tb ->
            let count =
              Option.value (List.assoc_opt i profile) ~default:0
            in
            Printf.printf "tbb #%d (executed %d times) -> [%s]
" i count
              (String.concat "; "
                 (List.map string_of_int (Tea_traces.Trace.successors trace i)));
            Array.iter
              (fun (a, insn) ->
                Printf.printf "    0x%08x  %s
" a (Tea_isa.Insn.to_string insn))
              tb.Tea_traces.Tbb.block.Tea_cfg.Block.insns)
          trace.Tea_traces.Trace.tbbs
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:"Disassemble one trace with its replayed per-TBB profile")
    Term.(const run $ workload_arg $ strategy_arg $ id_arg)

(* ---- characterize ---- *)

let characterize_cmd =
  let run name =
    let image = or_die (resolve_workload name) in
    let dc = Tea_cfg.Dcfg.create () in
    let machine, _stop, _disc =
      Tea_cfg.Discovery.run ~policy:Tea_cfg.Discovery.Stardbt image
        (Tea_cfg.Dcfg.callbacks dc)
    in
    let blocks = Tea_cfg.Dcfg.blocks dc in
    let execs = Tea_cfg.Dcfg.total_block_execs dc in
    let insns = Tea_cfg.Dcfg.total_insns dc in
    let weighted_block_size = float_of_int insns /. float_of_int (max 1 execs) in
    let conditional =
      List.fold_left
        (fun acc (b, n) ->
          if Tea_isa.Insn.is_conditional (Tea_cfg.Block.terminator b) then acc + n
          else acc)
        0 blocks
    in
    let indirect =
      List.fold_left
        (fun acc (b, n) -> if Tea_cfg.Block.has_indirect_exit b then acc + n else acc)
        0 blocks
    in
    Printf.printf
      "%s:
      \  static instructions: %d (%d bytes)
      \  dynamic instructions: %d (%d cycles)
      \  distinct dynamic blocks: %d
      \  block executions: %d (mean dynamic block size %.2f insns)
      \  conditional-branch block endings: %.1f%%
      \  indirect block endings: %.1f%%
"
      name
      (Tea_isa.Image.instruction_count image)
      (Tea_isa.Image.code_bytes image)
      (Tea_machine.Interp.dyn_instrs machine)
      (Tea_machine.Interp.cycles machine)
      (List.length blocks) execs weighted_block_size
      (100.0 *. float_of_int conditional /. float_of_int (max 1 execs))
      (100.0 *. float_of_int indirect /. float_of_int (max 1 execs))
  in
  Cmd.v
    (Cmd.info "characterize" ~doc:"Dynamic control-flow characteristics of a workload")
    Term.(const run $ workload_arg)

(* ---- optimize ---- *)

let optimize_cmd =
  let run name strategy_name =
    let image = or_die (resolve_workload name) in
    let traces = record_traces image strategy_name in
    let replayer, _ = replay_with_detector image traces in
    let total = ref 0 in
    List.iter
      (fun trace ->
        let savings = Tea_opt.Opt.weighted replayer trace in
        total := !total + savings.Tea_opt.Opt.expected_cycles;
        if savings.Tea_opt.Opt.findings <> [] then
          print_string (Tea_opt.Opt.render trace savings))
      traces;
    let native = Tea_pinsim.Pin.native_cycles image in
    Printf.printf "expected improvement from optimizing all traces: %d / %d cycles (%.2f%%)
"
      !total native
      (100.0 *. float_of_int !total /. float_of_int (max 1 native))
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Profile-weighted trace-optimization opportunities from TEA replay")
    Term.(const run $ workload_arg $ strategy_arg)

(* ---- layout ---- *)

let layout_cmd =
  let run name strategy_name =
    let image = or_die (resolve_workload name) in
    let traces = record_traces image strategy_name in
    let r = Tea_cachesim.Layout.study ~traces image in
    print_string (Tea_cachesim.Layout.render r)
  in
  Cmd.v
    (Cmd.info "layout"
       ~doc:"I-cache comparison: original code layout vs packed trace cache")
    Term.(const run $ workload_arg $ strategy_arg)

(* ---- reuse ---- *)

let reuse_cmd =
  let run name =
    let image = or_die (resolve_workload name) in
    let h = Tea_cachesim.Reuse.profile_data_stream image in
    print_string (Tea_cachesim.Reuse.render h);
    List.iter
      (fun k ->
        Printf.printf "  fully-assoc LRU with %5d lines would hit %.1f%%\n" k
          (100.0 *. Tea_cachesim.Reuse.hit_rate_for h k))
      [ 64; 256; 1024; 4096 ]
  in
  Cmd.v
    (Cmd.info "reuse" ~doc:"Exact LRU reuse-distance histogram of the data stream")
    Term.(const run $ workload_arg)

(* ---- tables ---- *)

let benchmarks_arg =
  let doc = "Benchmarks to include (default: all 26)." in
  Arg.(value & opt_all string [] & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)

let all_benchmarks = function
  | [] -> Tea_workloads.Spec2000.names
  | benchmarks -> benchmarks

let table_pgo_arg =
  let doc =
    "Profile-repack the packed engine on each benchmark's own stream \
     before measuring the Table 4 Packed column."
  in
  Arg.(value & flag & info [ "pgo" ] ~doc)

let table_fuse_arg =
  let doc =
    "Superstate-fuse the Table 4 Packed column's engine (after --pgo \
     repacking when both are given) before measuring."
  in
  Arg.(value & flag & info [ "fuse" ] ~doc)

let tables_cmd =
  let run benchmarks jobs pgo fuse obs =
    with_obs obs "tables" @@ fun () ->
    let benchmarks = all_benchmarks benchmarks in
    with_jobs ~quiet:obs.quiet jobs (fun pool ->
        let open Tea_report.Experiments in
        let benches = prepare ?pool ~benchmarks () in
        print_string (render_table1 (table1 ?pool benches));
        print_newline ();
        print_string (render_table2 (table2 ?pool benches));
        print_newline ();
        print_string (render_table3 (table3 ?pool benches));
        print_newline ();
        print_string (render_table4 (table4 ?pool ~pgo ~fuse benches)))
  in
  Cmd.v (Cmd.info "tables" ~doc:"Render the paper's Tables 1-4")
    Term.(
      const run $ benchmarks_arg $ jobs_arg $ table_pgo_arg $ table_fuse_arg
      $ obs_term)

let table1_cmd =
  let run benchmarks jobs obs =
    with_obs obs "table1" @@ fun () ->
    let benchmarks = all_benchmarks benchmarks in
    with_jobs ~quiet:obs.quiet jobs (fun pool ->
        let open Tea_report.Experiments in
        let benches = prepare ?pool ~benchmarks () in
        print_string (render_table1 (table1 ?pool benches)))
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Render Table 1 (size savings), sharded with --jobs")
    Term.(const run $ benchmarks_arg $ jobs_arg $ obs_term)

let table4_cmd =
  let run benchmarks jobs pgo fuse obs =
    with_obs obs "table4" @@ fun () ->
    let benchmarks = all_benchmarks benchmarks in
    with_jobs ~quiet:obs.quiet jobs (fun pool ->
        let open Tea_report.Experiments in
        let benches = prepare ?pool ~benchmarks () in
        print_string (render_table4 (table4 ?pool ~pgo ~fuse benches)))
  in
  Cmd.v
    (Cmd.info "table4"
       ~doc:"Render Table 4 (overhead ablation), sharded with --jobs")
    Term.(
      const run $ benchmarks_arg $ jobs_arg $ table_pgo_arg $ table_fuse_arg
      $ obs_term)

(* ---- serve / client ---- *)

let addr_conv : Tea_serve.Frame.addr Arg.conv =
  let parse s =
    if String.length s > 5 && String.sub s 0 5 = "unix:" then
      Ok (Tea_serve.Frame.Unix_sock (String.sub s 5 (String.length s - 5)))
    else if String.length s > 4 && String.sub s 0 4 = "tcp:" then
      let rest = String.sub s 4 (String.length s - 4) in
      match String.rindex_opt rest ':' with
      | None -> Error (`Msg "tcp address must be tcp:HOST:PORT")
      | Some i -> (
          let host = String.sub rest 0 i in
          let port = String.sub rest (i + 1) (String.length rest - i - 1) in
          match int_of_string_opt port with
          | Some p when p >= 0 && p < 65536 -> Ok (Tea_serve.Frame.Tcp (host, p))
          | _ -> Error (`Msg (Printf.sprintf "bad port %S" port)))
    else Error (`Msg "address must be unix:PATH or tcp:HOST:PORT")
  in
  Arg.conv
    ( (fun s -> parse s),
      fun ppf a -> Format.pp_print_string ppf (Tea_serve.Frame.pp_addr a) )

(* The daemon's image prep mirrors offline `replay --pc-trace`: freeze the
   workload's automaton, then tune (--pgo/--fuse) on the workload's own
   captured block stream — sessions then replay arbitrary client streams
   against that shared image. Alongside the image, the prep returns the
   flat base image (the source every closed-loop rebuild starts from)
   and, when tuned, the tuning profile's per-state visit counts
   (collected on the flat base, so the ids are automaton ids) as the
   drift-monitor reference: "what the image's layout was tuned for". *)
let prepare_serve_image name strategy_name pgo fuse =
  let image, packed = freeze_workload name strategy_name in
  if not (pgo || fuse) then (packed, packed, None)
  else begin
    let starts, _, len = capture_stream image in
    let ref_counts =
      visits_counts (Tea_opt.Repack.collect packed starts ~len)
    in
    (tune_image ~pgo ~fuse packed starts ~len, packed, Some ref_counts)
  end

let serve_cmd =
  let listen_arg =
    let doc = "Address to listen on: unix:PATH or tcp:HOST:PORT (port 0 \
               picks an ephemeral port, printed on startup)." in
    Arg.(
      value
      & opt addr_conv (Tea_serve.Frame.Unix_sock "/tmp/tea_serve.sock")
      & info [ "listen" ] ~docv:"ADDR" ~doc)
  in
  let sessions_arg =
    let doc = "Exit after serving $(docv) sessions (runs forever without it)." in
    Arg.(value & opt (some int) None & info [ "sessions" ] ~docv:"N" ~doc)
  in
  let queue_cap_arg =
    let doc = "Per-session decoded-event queue bound (backpressure knob)." in
    Arg.(value & opt int 16384 & info [ "queue-cap" ] ~docv:"N" ~doc)
  in
  let offline_check_arg =
    let doc =
      "Retain every completed session's bytes and, on exit, verify the \
       fleet profile against a sequential offline replay of them."
    in
    Arg.(value & flag & info [ "offline-check" ] ~doc)
  in
  let events_arg =
    let doc =
      "Append structured JSONL events (session open/close/abort, \
       drift-threshold crossings, pool stalls) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)
  in
  let drift_profile_arg =
    let doc =
      "Drift-monitor reference: a TEAEP1 edge profile (see `repack \
       --save-profile'). Without it, --pgo/--fuse preps use their own \
       tuning profile as the reference."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "drift-profile" ] ~docv:"FILE" ~doc)
  in
  let drift_threshold_arg =
    let doc = "Drift threshold: L1 distance that fires a drift event." in
    Arg.(
      value
      & opt float Tea_observe.Drift.default_threshold
      & info [ "drift-threshold" ] ~docv:"D" ~doc)
  in
  let serve_engine_arg =
    engine_arg_of
      ~doc:
        "Session replay engine: packed (flat-array dispatch) or compiled \
         (closure-threaded dispatch; each session compiles its own dup of \
         the shared image). The fleet profile and the --offline-check gate \
         are engine-invariant."
      [ ("packed", `Packed); ("compiled", `Compiled) ]
      `Packed
  in
  let serve_retune_arg =
    let doc =
      "Closed-loop continuous PGO: when the drift gauge stays over \
       threshold, rebuild the repack+fuse ladder from the traffic seen so \
       far in a background domain and hot-swap the image between two \
       drain cycles, bumping the [tea_image_epoch] gauge and emitting a \
       `swap' event. Needs a drift reference (--drift-profile or \
       --pgo/--fuse)."
    in
    Arg.(value & flag & info [ "retune" ] ~doc)
  in
  let retune_cooldown_arg =
    let doc =
      "Completed sessions the retune trigger ignores after a swap \
       (hysteresis; with --retune)."
    in
    Arg.(
      value
      & opt int Tea_observe.Trigger.default_cooldown
      & info [ "retune-cooldown" ] ~docv:"N" ~doc)
  in
  let save_fleet_arg =
    let doc =
      "On shutdown, write the whole fleet's traffic as a TEAEP1 edge \
       profile over the flat base image — feed it back as the next \
       boot's `--drift-profile' (or `repack' input) to close the loop \
       across restarts."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "save-fleet-profile" ] ~docv:"FILE" ~doc)
  in
  let run name strategy_name listen engine jobs pgo fuse sessions queue_cap
      offline_check events_path drift_profile drift_threshold retune
      retune_cooldown save_fleet obs =
    with_obs obs "serve" @@ fun () ->
    let image, base, tuning_ref =
      Probe.with_span "serve_prep" @@ fun () ->
      prepare_serve_image name strategy_name pgo fuse
    in
    let drift_ref =
      match drift_profile with
      | Some path -> (
          match Tea_opt.Repack.load_profile path with
          | prof -> Some (visits_counts prof)
          | exception Failure msg ->
              or_die (Error (Printf.sprintf "%s: %s" path msg)))
      | None -> tuning_ref
    in
    let drift =
      Option.map
        (fun counts ->
          Tea_observe.Drift.create ~threshold:drift_threshold counts)
        drift_ref
    in
    if retune && Option.is_none drift then
      or_die
        (Error
           "--retune needs a drift reference: give --drift-profile or tune \
            with --pgo/--fuse");
    if retune_cooldown < 0 then
      or_die (Error "--retune-cooldown must be >= 0");
    let retune_cfg =
      if not retune then None
      else
        Some
          { Tea_serve.Server.default_retune with
            cooldown = retune_cooldown;
            fuse = true }
    in
    let events = Option.map Tea_observe.Events.open_file events_path in
    Fun.protect
      ~finally:(fun () -> Option.iter Tea_observe.Events.close events)
    @@ fun () ->
    (* the dispatch-tier profiler is always on in the daemon: scrapes
       must see tier counters without a restart *)
    Tea_core.Tierstat.install ();
    let finish_tiers () = Tea_core.Tierstat.uninstall () in
    match
      let srv =
        Tea_serve.Server.create ~queue_cap ~offline_check ~engine
          ~retain:(save_fleet <> None) ?events ?drift ~base
          ?retune:retune_cfg ~jobs ~image listen
      in
      Fun.protect ~finally:(fun () -> Tea_serve.Server.close srv) @@ fun () ->
      (* clients wait for this line before connecting *)
      Printf.printf "serving %s on %s (%s engine%s%s%s, jobs %d)\n%!" name
        (Tea_serve.Frame.pp_addr (Tea_serve.Server.addr srv))
        (engine_name engine)
        (if pgo then " +pgo" else "")
        (if fuse then " +fuse" else "")
        (if retune then " +retune" else "")
        jobs;
      Probe.with_span "serve_run" (fun () ->
          Tea_serve.Server.run ?until_sessions:sessions srv);
      let fleet = Tea_serve.Server.fleet_profile srv in
      Printf.printf "served %d sessions (%d disconnected)\n"
        (Tea_serve.Server.completed srv)
        (Tea_serve.Server.disconnected srv);
      Printf.printf "fleet: %s\n"
        (Format.asprintf "%a" Tea_parallel.Profile.pp fleet);
      (match Tea_serve.Server.drift_distance srv with
      | Some (d, thr) ->
          Printf.printf "drift: l1=%.4f threshold=%.2f (%s)\n" d thr
            (if d > thr then "exceeded" else "ok")
      | None -> ());
      if retune then
        Printf.printf "retune: %d hot swaps (%d ns paused)\n"
          (Tea_serve.Server.epoch srv)
          (Tea_serve.Server.swap_pause_ns srv);
      (match save_fleet with
      | Some path ->
          Tea_opt.Repack.save_profile path
            (Tea_serve.Server.fleet_edge_profile srv);
          Printf.printf "wrote %s (TEAEP1 fleet edge profile)\n" path
      | None -> ());
      if obs.metrics then
        print_string
          (Tea_report.Stats.render ~title:"serve" (Tea_serve.Server.metrics srv));
      if offline_check then
        let offline =
          Probe.with_span "serve_offline_check" @@ fun () ->
          Tea_serve.Server.offline_profile srv
        in
        if Tea_parallel.Profile.equal fleet offline then
          print_endline "serve gate: fleet == offline"
        else begin
          Printf.printf "offline: %s\n"
            (Format.asprintf "%a" Tea_parallel.Profile.pp offline);
          or_die
            (Error
               "serve gate failed: fleet profile diverged from sequential \
                offline replay")
        end
    with
    | () ->
        let snap = finish_tiers () in
        if obs.metrics then
          print_string (Tea_report.Hotness.render ~image snap)
    | exception e ->
        ignore (finish_tiers ());
        raise e
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the replay-as-a-service daemon over a shared packed image")
    Term.(
      const run $ workload_arg $ strategy_arg $ listen_arg $ serve_engine_arg
      $ jobs_arg $ pgo_arg $ fuse_arg $ sessions_arg $ queue_cap_arg
      $ offline_check_arg $ events_arg $ drift_profile_arg
      $ drift_threshold_arg $ serve_retune_arg $ retune_cooldown_arg
      $ save_fleet_arg $ obs_term)

let client_cmd =
  let connect_arg =
    let doc = "Server address: unix:PATH or tcp:HOST:PORT." in
    Arg.(
      required
      & opt (some addr_conv) None
      & info [ "connect" ] ~docv:"ADDR" ~doc)
  in
  let trace_arg =
    let doc = "PC-trace file to stream ($(b,-) for standard input)." in
    Arg.(
      required & opt (some string) None & info [ "pc-trace" ] ~docv:"FILE" ~doc)
  in
  let chunk_arg =
    let doc =
      "Data-frame payload size in bytes; small values deliberately split \
       trace records across frames."
    in
    Arg.(value & opt int 65536 & info [ "chunk" ] ~docv:"BYTES" ~doc)
  in
  let abort_arg =
    let doc =
      "Adversarial mode: send only the first $(docv) bytes, then \
       disconnect without an end-of-stream frame."
    in
    Arg.(value & opt (some int) None & info [ "abort-bytes" ] ~docv:"N" ~doc)
  in
  let retries_arg =
    let doc =
      "Retry the connect up to $(docv) times when the server is not up \
       yet (ECONNREFUSED / missing socket), with bounded exponential \
       backoff; errors after the connection is up never retry."
    in
    Arg.(value & opt int 5 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let backoff_arg =
    let doc = "Seconds before the first connect retry (doubles each time)." in
    Arg.(value & opt float 0.05 & info [ "backoff" ] ~docv:"SECONDS" ~doc)
  in
  let run connect trace chunk abort_bytes retries backoff =
    if retries < 0 then or_die (Error "--retries must be >= 0");
    if backoff <= 0.0 then or_die (Error "--backoff must be positive");
    match abort_bytes with
    | Some bytes_sent ->
        (try Tea_serve.Client.abort ~bytes_sent connect trace
         with Unix.Unix_error (e, _, _) ->
           or_die (Error ("connect failed: " ^ Unix.error_message e)));
        Printf.printf "aborted session after %d bytes\n" bytes_sent
    | None -> (
        match
          Tea_serve.Client.replay ~retries ~backoff ~chunk connect trace
        with
        | profile ->
            Printf.printf "profile: %s\n"
              (Format.asprintf "%a" Tea_parallel.Profile.pp profile)
        | exception Tea_serve.Client.Server_error msg ->
            or_die (Error ("server rejected session: " ^ msg))
        | exception Unix.Unix_error (e, _, _) ->
            or_die (Error ("connect failed: " ^ Unix.error_message e)))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Stream a PC-trace to a running tea_tool serve daemon")
    Term.(
      const run $ connect_arg $ trace_arg $ chunk_arg $ abort_arg
      $ retries_arg $ backoff_arg)

let observe_cmd =
  let connect_arg =
    let doc = "Server address: unix:PATH or tcp:HOST:PORT." in
    Arg.(
      required
      & opt (some addr_conv) None
      & info [ "connect" ] ~docv:"ADDR" ~doc)
  in
  let dump_arg =
    let doc = "Write the exposition to $(docv) instead of standard output." in
    Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"FILE" ~doc)
  in
  let run connect dump =
    match Tea_serve.Client.scrape connect with
    | text -> (
        match dump with
        | Some path ->
            let oc = open_out path in
            output_string oc text;
            close_out oc;
            Printf.printf "wrote %s (%d bytes)\n" path (String.length text)
        | None -> print_string text)
    | exception Tea_serve.Client.Server_error msg ->
        or_die (Error ("server rejected scrape: " ^ msg))
    | exception Unix.Unix_error (e, _, _) ->
        or_die (Error ("connect failed: " ^ Unix.error_message e))
  in
  Cmd.v
    (Cmd.info "observe"
       ~doc:
         "Scrape the Prometheus-style metrics exposition from a running \
          tea_tool serve daemon")
    Term.(const run $ connect_arg $ dump_arg)

let () =
  let doc = "Trace Execution Automata: record, replay and inspect traces" in
  let info = Cmd.info "tea_tool" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; record_cmd; replay_cmd; repack_cmd; fuse_cmd;
            compile_cmd; info_cmd; capture_cmd; dot_cmd; analyze_cmd;
            phases_cmd; cachesim_cmd; bpred_cmd; inspect_cmd; characterize_cmd;
            optimize_cmd; layout_cmd; reuse_cmd; tables_cmd; table1_cmd;
            table4_cmd; serve_cmd; client_cmd; observe_cmd;
          ]))
