type trace_stats = {
  trace_id : int;
  entries : int;
  tbb_executions : int;
  insns_executed : int;
  completion_ratio : float;
}

(* Per-trace analytics need the automaton's state metadata; a packed image
   reconstituted from bytes has none, so analyses degrade to empty. *)
let automaton_of rep = Replayer.automaton rep

let per_trace rep =
  match automaton_of rep with
  | None -> []
  | Some auto ->
  List.filter_map
    (fun id ->
      let states = Automaton.states_of_trace auto id in
      let live = List.filter (Automaton.is_live auto) states in
      let n_tbbs = List.length live in
      if n_tbbs = 0 then None
      else begin
        let entries = ref 0 and execs = ref 0 and insns = ref 0 in
        List.iter
          (fun s ->
            let c = Replayer.count_of_state rep s in
            execs := !execs + c;
            (match Automaton.state_info auto s with
            | Some info ->
                insns := !insns + (c * info.Automaton.n_insns);
                if info.Automaton.tbb_index = 0 then entries := !entries + c
            | None -> ()))
          live;
        if !execs = 0 then None
        else
          let completion_ratio =
            if !entries = 0 then 0.0
            else
              float_of_int !execs /. (float_of_int !entries *. float_of_int n_tbbs)
          in
          Some
            {
              trace_id = id;
              entries = !entries;
              tbb_executions = !execs;
              insns_executed = !insns;
              completion_ratio;
            }
      end)
    (Automaton.trace_ids auto)
  |> List.sort (fun a b -> Int.compare b.insns_executed a.insns_executed)

let hottest ?(n = 10) rep =
  let all = per_trace rep in
  List.filteri (fun i _ -> i < n) all

type exit_site = {
  state : Automaton.state;
  site_trace : int;
  site_tbb : int;
  block_start : int;
  executions : int;
  out_edges : int;
}

let side_exit_candidates ?(n = 10) rep =
  match automaton_of rep with
  | None -> []
  | Some auto ->
  let sites = ref [] in
  Automaton.iter_live
    (fun s info ->
      let out_edges = List.length (Automaton.edges_of auto s) in
      if out_edges = 0 then
        let executions = Replayer.count_of_state rep s in
        if executions > 0 then
          sites :=
            {
              state = s;
              site_trace = info.Automaton.trace_id;
              site_tbb = info.Automaton.tbb_index;
              block_start = info.Automaton.block_start;
              executions;
              out_edges;
            }
            :: !sites)
    auto;
  List.sort (fun a b -> Int.compare b.executions a.executions) !sites
  |> List.filteri (fun i _ -> i < n)

let coverage_summary rep =
  let top = hottest ~n:1 rep in
  Printf.sprintf "coverage %.1f%%, %d trace entries, %d exits%s"
    (100.0 *. Replayer.coverage rep)
    (Replayer.trace_enters rep) (Replayer.trace_exits rep)
    (match top with
    | [ t ] ->
        Printf.sprintf ", hottest trace %d (%d insns, completion %.2f)"
          t.trace_id t.insns_executed t.completion_ratio
    | _ -> "")

let pp_trace_stats fmt t =
  Format.fprintf fmt
    "trace %d: %d entries, %d TBB execs, %d insns, completion %.2f" t.trace_id
    t.entries t.tbb_executions t.insns_executed t.completion_ratio
