(* Closure-threaded compiled dispatch: every packed state specialized
   into a preapplied OCaml closure that tests its successor PCs with
   straight-line compares and tail-calls the successor's closure
   directly — no slot lookup, no tier ladder, no per-step image
   indirection.

   The compiled image is a pure function of the packed image it was
   built from (any TEAPK1/2/3 layout), and replay through it is
   observationally identical to the interpreted loops in {!Replayer}:
   the per-step simulated-cycle charges are captured into each closure
   at build time from the same tables the interpreter consults (the
   flat binary-search charge, the repacked [edge_cost]/[miss_cost]
   tables, the fusion overlay's [fecost]), so cycles stay a pure
   function of the replayed stream. The inline cache is the one
   mechanism deliberately skipped: on repacked images an IC hit charges
   exactly what the scan that filled it charged ([ic_cost] =
   [edge_cost] of the cached edge), so dispatching without it cannot
   move a single cycle — only the ic_hits/ic_misses split, which is
   already excluded from {!Replayer.snapshot} as chunk-local.

   The batch-loop state the interpreted loops keep in registers —
   cursor, batch bound, cycle accumulator, plus the two loop-invariant
   arrays — is threaded through every closure as arguments
   [(addrs, counts, i, stop, cycles)], so the fast paths touch no
   mutable record at all. The remaining accounting is derived:
   [total] is the batch's instruction sum (a pure prefix sum computed
   once per [run]), [covered] is [total] minus the instructions of the
   rare steps that land in NTE (accumulated only on the hash-miss and
   NTE-edge paths), and enters/exits only move on those same NTE
   boundaries. Threading keeps every per-step quantity in registers at
   the cost of one arity check per indirect jump.

   Batch bounding: every closure's first act is [i >= stop], and chain
   matchers never compare past [stop], so a run that would cross a
   batch boundary halts at it and resumes (from the carried state) on
   the next [run] — exactly the property that keeps sharded replay
   bit-identical to sequential at any job count.

   A compiled image owns one mutable rare-path context shared by all
   its closures, so a [t] must not be run from two domains at once;
   sharded replay builds one per worker (over a {!Packed.dup}
   sibling). *)

(* Rare-path accumulators and batch-return slots; the hot paths never
   touch this record. *)
type ctx = {
  mutable ins : int array; (* read only on NTE-landing steps *)
  mutable halt : int; (* final slot, written when i >= stop *)
  mutable halt_cycles : int; (* threaded cycle sum, written at halt *)
  mutable uncovered : int; (* insns of steps that landed in NTE *)
  mutable enters : int;
  mutable exits : int;
  mutable g_hits : int;
  mutable g_miss : int;
  mutable fused_steps : int;
  mutable tly : Tierstat.tally option;
  mutable hprobe : Tea_telemetry.Metrics.histogram option;
}

type node = int array -> int array -> int -> int -> int -> unit
(* addrs -> counts -> i -> stop -> cycles *)

type t = {
  base : Packed.t;
  nodes : node array; (* one dispatch closure per slot *)
  ctx : ctx;
  n_closures : int;
  degree_hist : (int * int) list; (* (fan-out degree, states), sorted *)
  fallback_states : int; (* degree > scan_cap: minihash fallback *)
  chained_states : int; (* states fronted by a fused-chain matcher *)
  region_states : int; (* states compiled into the straight-line region *)
}

(* Everything one batch accumulated, as integer deltas the replayer
   folds into its own totals (the same additive algebra snapshots
   merge by). *)
type delta = {
  d_state : int;
  d_covered : int;
  d_total : int;
  d_enters : int;
  d_exits : int;
  d_g_hits : int;
  d_g_miss : int;
  d_fused_steps : int;
  d_cycles : int;
}

(* Degrees up to this are dispatched by inline compares / a short
   linear scan; beyond it a per-state open-addressing minihash keyed on
   the successor PC finds the edge in O(1) compares. The simulated
   charge is the edge's either way — the minihash is a wall-clock
   optimization, invisible to the cost model. *)
let scan_cap = 8

let base t = t.base
let n_closures t = t.n_closures
let degree_histogram t = t.degree_hist
let fallback_states t = t.fallback_states
let chained_states t = t.chained_states
let region_states t = t.region_states

let of_packed packed =
  let raw = Packed.to_raw packed in
  let offsets = raw.Packed.offsets in
  let labels = raw.Packed.labels in
  let targets = raw.Packed.targets in
  let keys = raw.Packed.hash_keys in
  let vals = raw.Packed.hash_vals in
  let mask = Array.length keys - 1 in
  let n_slots = Array.length offsets - 1 in
  let nte = Automaton.nte in
  let repacked = Packed.is_repacked packed in
  let edge_cost, miss_cost =
    if repacked then
      let v = Packed.hot_view packed in
      (v.Packed.v_edge_cost, v.Packed.v_miss_cost)
    else ([||], [||])
  in
  (* The interpreted flat loop charges (halvings m + 1) search steps
     for any lookup in a state with span size m >= 1 — hit or miss —
     and nothing on an empty span. *)
  let flat_span_cost m =
    if m = 0 then 0 else (Packed.halvings m + 1) * Packed.cost_search_step
  in
  let cost_of_edge s e =
    if repacked then edge_cost.(e)
    else flat_span_cost (offsets.(s + 1) - offsets.(s))
  in
  let cost_of_miss s =
    if repacked then miss_cost.(s)
    else flat_span_cost (offsets.(s + 1) - offsets.(s))
  in
  let ctx =
    {
      ins = [||];
      halt = nte;
      halt_cycles = 0;
      uncovered = 0;
      enters = 0;
      exits = 0;
      g_hits = 0;
      g_miss = 0;
      fused_steps = 0;
      tly = None;
      hprobe = None;
    }
  in
  let nodes : node array =
    Array.make (max 1 n_slots) (fun _ _ _ _ _ -> ())
  in
  (* Shared cross-trace dispatch: the span missed (or was empty), so
     probe the global trace-head hash — the same fall-back tier the
     interpreted loops end in, with the same charges. All the
     NTE-boundary accounting (uncovered, enters, exits) lives here and
     in the NTE-edge actions; the hot paths never touch [ctx]. *)
  let dispatch_hash prev miss_extra pc addrs counts i stop cycles =
    let cycles = cycles + miss_extra + Packed.cost_hash_base in
    let idx = ref (Packed.hash_pc mask pc) in
    let found = ref (-2) in
    let probes = ref 0 in
    while !found = -2 do
      incr probes;
      let k = Array.unsafe_get keys !idx in
      if k = pc then found := Array.unsafe_get vals !idx
      else if k < 0 then found := -1
      else idx := (!idx + 1) land mask
    done;
    let cycles = cycles + (!probes * Packed.cost_hash_probe) in
    (match ctx.hprobe with
    | None -> ()
    | Some h -> Tea_telemetry.Metrics.observe h !probes);
    (match ctx.tly with
    | None -> ()
    | Some a ->
        let tier = if !found >= 0 then Tierstat.t_hash else Tierstat.t_miss in
        Tierstat.bump a ~tier ~state:prev);
    if !found >= 0 then begin
      let next = !found in
      ctx.g_hits <- ctx.g_hits + 1;
      if prev = nte then ctx.enters <- ctx.enters + 1;
      Array.unsafe_set counts next (1 + Array.unsafe_get counts next);
      (Array.unsafe_get nodes next) addrs counts (i + 1) stop cycles
    end
    else begin
      ctx.g_miss <- ctx.g_miss + 1;
      ctx.uncovered <- ctx.uncovered + Array.unsafe_get ctx.ins i;
      if prev <> nte then ctx.exits <- ctx.exits + 1;
      (Array.unsafe_get nodes nte) addrs counts (i + 1) stop
        (cycles + Transition.cost_nte_miss)
    end
  in
  (* One resolved in-span edge: account (source, target and cost are
     all compile-time constants of the closure) and jump to the
     target's closure. Specialized on the NTE-ness of both ends so the
     common in-trace edge touches no rare-path state. *)
  let edge_action src tgt cost : int array -> int array -> int -> int -> int -> unit =
    if tgt <> nte then
      if src <> nte then fun addrs counts i stop cycles ->
        (match ctx.tly with
        | None -> ()
        | Some a -> Tierstat.bump a ~tier:Tierstat.t_compiled ~state:src);
        Array.unsafe_set counts tgt (1 + Array.unsafe_get counts tgt);
        (Array.unsafe_get nodes tgt) addrs counts (i + 1) stop (cycles + cost)
      else fun addrs counts i stop cycles ->
        (match ctx.tly with
        | None -> ()
        | Some a -> Tierstat.bump a ~tier:Tierstat.t_compiled ~state:src);
        ctx.enters <- ctx.enters + 1;
        Array.unsafe_set counts tgt (1 + Array.unsafe_get counts tgt);
        (Array.unsafe_get nodes tgt) addrs counts (i + 1) stop (cycles + cost)
    else fun addrs counts i stop cycles ->
      (match ctx.tly with
      | None -> ()
      | Some a -> Tierstat.bump a ~tier:Tierstat.t_compiled ~state:src);
      ctx.uncovered <- ctx.uncovered + Array.unsafe_get ctx.ins i;
      if src <> nte then ctx.exits <- ctx.exits + 1;
      (Array.unsafe_get nodes tgt) addrs counts (i + 1) stop (cycles + cost)
  in
  let n_closures = ref 0 in
  let deg_hist = Hashtbl.create 16 in
  let fallback = ref 0 in
  (* Per-degree dispatch shapes. Span order is the interpreted probe
     order — hot-prefix-first on repacked images, label-sorted on flat
     ones — so the compare chain tests the profile-hot successor
     first. *)
  let make_base s : node =
    incr n_closures;
    let lo = offsets.(s) and hi = offsets.(s + 1) in
    let deg = hi - lo in
    let mc = cost_of_miss s in
    let miss pc addrs counts i stop cycles =
      dispatch_hash s mc pc addrs counts i stop cycles
    in
    if deg = 0 then fun addrs counts i stop cycles ->
      if i >= stop then begin
        ctx.halt <- s;
        ctx.halt_cycles <- cycles
      end
      else begin
        let pc = Array.unsafe_get addrs i in
        miss pc addrs counts i stop cycles
      end
    else if deg = 1 && s <> nte && targets.(lo) <> nte then begin
      (* the common monomorphic shape, fully inlined *)
      let l0 = labels.(lo) and t0 = targets.(lo) in
      let c0 = cost_of_edge s lo in
      fun addrs counts i stop cycles ->
        if i >= stop then begin
          ctx.halt <- s;
          ctx.halt_cycles <- cycles
        end
        else begin
          let pc = Array.unsafe_get addrs i in
          if pc = l0 then begin
            (match ctx.tly with
            | None -> ()
            | Some a -> Tierstat.bump a ~tier:Tierstat.t_compiled ~state:s);
            Array.unsafe_set counts t0 (1 + Array.unsafe_get counts t0);
            (Array.unsafe_get nodes t0) addrs counts (i + 1) stop (cycles + c0)
          end
          else miss pc addrs counts i stop cycles
        end
    end
    else if deg = 2 && s <> nte && targets.(lo) <> nte && targets.(lo + 1) <> nte
    then begin
      (* the bimodal branchy shape fusion cannot chain: two immediate
         compares, profile-hot successor first *)
      let l0 = labels.(lo) and t0 = targets.(lo) in
      let l1 = labels.(lo + 1) and t1 = targets.(lo + 1) in
      let c0 = cost_of_edge s lo and c1 = cost_of_edge s (lo + 1) in
      fun addrs counts i stop cycles ->
        if i >= stop then begin
          ctx.halt <- s;
          ctx.halt_cycles <- cycles
        end
        else begin
          let pc = Array.unsafe_get addrs i in
          if pc = l0 then begin
            (match ctx.tly with
            | None -> ()
            | Some a -> Tierstat.bump a ~tier:Tierstat.t_compiled ~state:s);
            Array.unsafe_set counts t0 (1 + Array.unsafe_get counts t0);
            (Array.unsafe_get nodes t0) addrs counts (i + 1) stop (cycles + c0)
          end
          else if pc = l1 then begin
            (match ctx.tly with
            | None -> ()
            | Some a -> Tierstat.bump a ~tier:Tierstat.t_compiled ~state:s);
            Array.unsafe_set counts t1 (1 + Array.unsafe_get counts t1);
            (Array.unsafe_get nodes t1) addrs counts (i + 1) stop (cycles + c1)
          end
          else miss pc addrs counts i stop cycles
        end
    end
    else if deg <= scan_cap then begin
      (* short linear scan over captured span copies, in span (profile)
         order; also the low-degree shape when NTE is involved *)
      let labs = Array.sub labels lo deg in
      let acts =
        Array.init deg (fun k ->
            edge_action s targets.(lo + k) (cost_of_edge s (lo + k)))
      in
      fun addrs counts i stop cycles ->
        if i >= stop then begin
          ctx.halt <- s;
          ctx.halt_cycles <- cycles
        end
        else begin
          let pc = Array.unsafe_get addrs i in
          let k = ref 0 in
          while !k < deg && Array.unsafe_get labs !k <> pc do incr k done;
          if !k < deg then (Array.unsafe_get acts !k) addrs counts i stop cycles
          else miss pc addrs counts i stop cycles
        end
    end
    else begin
      (* high fan-out: per-state minihash over (label -> edge index),
         first occurrence wins so the hot prefix keeps priority *)
      incr fallback;
      let seen = Hashtbl.create (2 * deg) in
      for k = deg - 1 downto 0 do
        (* walked backwards so earlier span positions overwrite later
           ones: on a duplicate label the first occurrence (the hot
           prefix) wins, matching the linear-scan order *)
        Hashtbl.replace seen labels.(lo + k) k
      done;
      let pairs =
        Hashtbl.fold (fun l k acc -> (l, k) :: acc) seen []
        |> List.sort (fun (_, a) (_, b) -> Int.compare a b)
      in
      let hkeys, hvals = Packed.build_hash pairs deg in
      let hmask = Array.length hkeys - 1 in
      let acts =
        Array.init deg (fun k ->
            edge_action s targets.(lo + k) (cost_of_edge s (lo + k)))
      in
      fun addrs counts i stop cycles ->
        if i >= stop then begin
          ctx.halt <- s;
          ctx.halt_cycles <- cycles
        end
        else begin
          let pc = Array.unsafe_get addrs i in
          let idx = ref (Packed.hash_pc hmask pc) in
          let found = ref (-2) in
          while !found = -2 do
            let k = Array.unsafe_get hkeys !idx in
            if k = pc then found := Array.unsafe_get hvals !idx
            else if k < 0 then found := -1
            else idx := (!idx + 1) land hmask
          done;
          if !found >= 0 then
            (Array.unsafe_get acts !found) addrs counts i stop cycles
          else miss pc addrs counts i stop cycles
        end
    end
  in
  let fchain =
    match Packed.fusion_of packed with
    | Some f -> f.Packed.fchain
    | None -> [||]
  in
  (* Straight-line region compilation. The subgraph of in-trace states
     with fan-out 1 or 2 whose successors are all in-trace — the
     monomorphic and bimodal-branch shapes — is flattened into shared
     tables (one or two label/target/cost triples per slot; [npc] marks
     slots outside the region), and every member state's closure is a
     region runner: a tight loop that tests the current PC against the
     slot's successor labels with straight-line compares and steps
     through the tables, keeping cursor, slot and cycle sum in
     registers. Control leaves the region only at genuine boundaries —
     a PC neither label matches (straight to the trace-head hash: the
     whole span was just compared), a higher-fan-out or chain-fronted
     slot (one indirect jump to its closure), or the batch bound. A
     bimodal state that alternates successors (the listscan pattern)
     stays in the loop on both arms, where a matcher betting on one
     static hot path would mispredict and pay an indirect jump every
     other step. *)
  let npc = min_int in
  let r_l0 = Array.make (max 1 n_slots) npc in
  let r_t0 = Array.make (max 1 n_slots) 0 in
  let r_c0 = Array.make (max 1 n_slots) 0 in
  let r_l1 = Array.make (max 1 n_slots) npc in
  let r_t1 = Array.make (max 1 n_slots) 0 in
  let r_c1 = Array.make (max 1 n_slots) 0 in
  let missc = Array.make (max 1 n_slots) 0 in
  let region_members = ref 0 in
  for s = 0 to n_slots - 1 do
    missc.(s) <- cost_of_miss s;
    let lo = offsets.(s) and hi = offsets.(s + 1) in
    let deg = hi - lo in
    let chainf = Array.length fchain > 0 && fchain.(s) >= 0 in
    if
      s <> nte
      && (not chainf)
      && deg >= 1
      && deg <= 2
      && targets.(lo) <> nte
      && labels.(lo) <> npc
      && (deg = 1 || (targets.(lo + 1) <> nte && labels.(lo + 1) <> npc))
    then begin
      incr region_members;
      r_l0.(s) <- labels.(lo);
      r_t0.(s) <- targets.(lo);
      r_c0.(s) <- cost_of_edge s lo;
      if deg = 2 then begin
        r_l1.(s) <- labels.(lo + 1);
        r_t1.(s) <- targets.(lo + 1);
        r_c1.(s) <- cost_of_edge s (lo + 1)
      end
    end
  done;
  let make_region s : node =
    incr n_closures;
    fun addrs counts i stop cycles ->
      let tly = ctx.tly in
      let cur = ref s and j = ref i and cy = ref cycles in
      let live = ref true in
      while !live && !j < stop do
        let c = !cur in
        let pc = Array.unsafe_get addrs !j in
        if pc = Array.unsafe_get r_l0 c then begin
          (match tly with
          | None -> ()
          | Some a -> Tierstat.bump a ~tier:Tierstat.t_compiled ~state:c);
          cy := !cy + Array.unsafe_get r_c0 c;
          let t0 = Array.unsafe_get r_t0 c in
          Array.unsafe_set counts t0 (1 + Array.unsafe_get counts t0);
          cur := t0;
          incr j
        end
        else if pc = Array.unsafe_get r_l1 c then begin
          (match tly with
          | None -> ()
          | Some a -> Tierstat.bump a ~tier:Tierstat.t_compiled ~state:c);
          cy := !cy + Array.unsafe_get r_c1 c;
          let t1 = Array.unsafe_get r_t1 c in
          Array.unsafe_set counts t1 (1 + Array.unsafe_get counts t1);
          cur := t1;
          incr j
        end
        else live := false
      done;
      if !j >= stop then begin
        ctx.halt <- !cur;
        ctx.halt_cycles <- !cy
      end
      else begin
        let c = !cur in
        let pc = Array.unsafe_get addrs !j in
        if Array.unsafe_get r_l0 c <> npc then
          (* a region slot whose whole span just missed: exactly the
             interpreted span miss — on to the trace-head hash *)
          dispatch_hash c (Array.unsafe_get missc c) pc addrs counts !j stop
            !cy
        else (Array.unsafe_get nodes c) addrs counts !j stop !cy
      end
  in
  let chained = ref 0 in
  (* Fused chains compile to a single matcher closure per member state:
     the incoming PC run is compared against the chain signature and
     accounted in bulk (cyclic chains fast-forward whole iterations at
     O(cycle length)); a zero-length match falls through to the state's
     ordinary compiled dispatch. Chain targets are all in-trace by the
     fusion overlay's validation, so matched runs add nothing to the
     NTE-boundary accounting — only counts, cycles and the fused-step
     probe move. *)
  let make_chain s c (base_run : node) : node =
    incr n_closures;
    incr chained;
    match Packed.fusion_of packed with
    | None -> assert false
    | Some f ->
        let foff = f.Packed.foff in
        let fcyc = f.Packed.fcyc in
        let fsig = f.Packed.fsig in
        let ftgt = f.Packed.ftgt in
        let fecost = f.Packed.fecost in
        let lo = foff.(c) and hi = foff.(c + 1) in
        let p = f.Packed.fpos.(s) in
        if fcyc.(c) = 1 then begin
          let csum = ref 0 in
          for e = lo to hi - 1 do
            csum := !csum + fecost.(e)
          done;
          let csum = !csum in
          fun addrs counts i stop cycles ->
            if i >= stop then begin
              ctx.halt <- s;
              ctx.halt_cycles <- cycles
            end
            else begin
              let j = ref i and q = ref (lo + p) in
              while
                !j < stop
                && Array.unsafe_get addrs !j = Array.unsafe_get fsig !q
              do
                incr j;
                incr q;
                if !q = hi then q := lo
              done;
              let m = !j - i in
              if m = 0 then base_run addrs counts i stop cycles
              else begin
                let cycles = ref cycles in
                let l = hi - lo in
                let full =
                  if m < l then 0 else if m - l < l then 1 else m / l
                in
                let rem = m - (full * l) in
                if full > 0 then begin
                  cycles := !cycles + (full * csum);
                  for e = lo to hi - 1 do
                    let tgt = Array.unsafe_get ftgt e in
                    Array.unsafe_set counts tgt
                      (full + Array.unsafe_get counts tgt)
                  done
                end;
                let e = ref (lo + p) in
                for _ = 1 to rem do
                  cycles := !cycles + Array.unsafe_get fecost !e;
                  let tgt = Array.unsafe_get ftgt !e in
                  Array.unsafe_set counts tgt (1 + Array.unsafe_get counts tgt);
                  incr e;
                  if !e = hi then e := lo
                done;
                (match ctx.tly with
                | None -> ()
                | Some a ->
                    (* fixed-source attribution: the source of the edge
                       at ring position e is the previous position's
                       target, a property of the cycle — independent of
                       how the match splits across batches *)
                    if full > 0 then
                      for e = lo to hi - 1 do
                        let src =
                          Array.unsafe_get ftgt
                            (if e = lo then hi - 1 else e - 1)
                        in
                        Tierstat.bump_n a ~tier:Tierstat.t_compiled ~state:src
                          full
                      done;
                    let e = ref (lo + p) in
                    for _ = 1 to rem do
                      let src =
                        Array.unsafe_get ftgt
                          (if !e = lo then hi - 1 else !e - 1)
                      in
                      Tierstat.bump a ~tier:Tierstat.t_compiled ~state:src;
                      incr e;
                      if !e = hi then e := lo
                    done);
                ctx.fused_steps <- ctx.fused_steps + m;
                let last = if !q = lo then hi - 1 else !q - 1 in
                (Array.unsafe_get nodes (Array.unsafe_get ftgt last))
                  addrs counts !j stop !cycles
              end
            end
        end
        else
          fun addrs counts i stop cycles ->
            if i >= stop then begin
              ctx.halt <- s;
              ctx.halt_cycles <- cycles
            end
            else begin
              let j = ref i and q = ref (lo + p) in
              while
                !q < hi && !j < stop
                && Array.unsafe_get addrs !j = Array.unsafe_get fsig !q
              do
                incr j;
                incr q
              done;
              let m = !j - i in
              if m = 0 then base_run addrs counts i stop cycles
              else begin
                let cycles = ref cycles in
                for e = lo + p to lo + p + m - 1 do
                  cycles := !cycles + Array.unsafe_get fecost e;
                  let tgt = Array.unsafe_get ftgt e in
                  Array.unsafe_set counts tgt (1 + Array.unsafe_get counts tgt)
                done;
                (match ctx.tly with
                | None -> ()
                | Some a ->
                    (* entry state sources the first matched edge; each
                       later edge's source is the previous target *)
                    let src = ref s in
                    for e = lo + p to lo + p + m - 1 do
                      Tierstat.bump a ~tier:Tierstat.t_compiled ~state:!src;
                      src := Array.unsafe_get ftgt e
                    done);
                ctx.fused_steps <- ctx.fused_steps + m;
                (Array.unsafe_get nodes
                   (Array.unsafe_get ftgt (lo + p + m - 1)))
                  addrs counts !j stop !cycles
              end
            end
  in
  for s = 0 to n_slots - 1 do
    let deg = offsets.(s + 1) - offsets.(s) in
    Hashtbl.replace deg_hist deg
      (1 + Option.value ~default:0 (Hashtbl.find_opt deg_hist deg));
    nodes.(s) <-
      (if Array.length fchain > 0 && fchain.(s) >= 0 then
         make_chain s fchain.(s) (make_base s)
       else if r_l0.(s) <> npc then make_region s
       else make_base s)
  done;
  let degree_hist =
    Hashtbl.fold (fun d n acc -> (d, n) :: acc) deg_hist []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  {
    base = packed;
    nodes;
    ctx;
    n_closures = !n_closures;
    degree_hist;
    fallback_states = !fallback;
    chained_states = !chained;
    region_states = !region_members;
  }

let run t ~state ~counts ?(off = 0) addrs ins ~len =
  let c = t.ctx in
  c.ins <- ins;
  c.halt <- state;
  c.halt_cycles <- 0;
  c.uncovered <- 0;
  c.enters <- 0;
  c.exits <- 0;
  c.g_hits <- 0;
  c.g_miss <- 0;
  c.fused_steps <- 0;
  c.tly <- Tierstat.tally ();
  (c.hprobe <-
     (match Tea_telemetry.Probe.metrics () with
     | None -> None
     | Some m ->
         Some (Tea_telemetry.Metrics.histogram m "packed.hash_probe_len")));
  (* the batch's instruction sum: [total] outright, and the base
     [covered] the NTE-landing steps subtract from *)
  let total = ref 0 in
  for k = off to off + len - 1 do
    total := !total + Array.unsafe_get ins k
  done;
  let total = !total in
  (Array.unsafe_get t.nodes state) addrs counts off (off + len) 0;
  let d =
    {
      d_state = c.halt;
      d_covered = total - c.uncovered;
      d_total = total;
      d_enters = c.enters;
      d_exits = c.exits;
      d_g_hits = c.g_hits;
      d_g_miss = c.g_miss;
      d_fused_steps = c.fused_steps;
      d_cycles = c.halt_cycles;
    }
  in
  (* drop batch references so the context never pins a caller's arrays *)
  c.ins <- [||];
  c.tly <- None;
  c.hprobe <- None;
  d
