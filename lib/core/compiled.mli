(** Closure-threaded compiled dispatch over a packed image.

    [of_packed] specializes every state of a {!Packed} image (any
    TEAPK1/2/3 layout — it composes with repacking and fusion) into a
    preapplied OCaml closure that tests its successor PCs with
    straight-line compares in span (profile) order and tail-calls the
    successor's closure directly: no slot lookup, no tier ladder, no
    per-step image indirection. Shapes by fan-out degree:

    - degree 0: straight to the global trace-head hash;
    - degree 1 / 2: fully inlined immediate compares (the monomorphic
      and bimodal-branch shapes), accounting specialized at build time;
    - degree 3..8: a short linear scan over captured span copies;
    - degree > 8: a per-state O(1) minihash finds the edge (wall-clock
      only — the simulated charge is still the edge's);
    - fused-chain members: a single matcher closure that compares the
      incoming PC run against the chain signature and accounts in bulk,
      falling through to the state's ordinary closure on a mismatch;
    - degree-1/2 states whose successors are all in-trace: compiled
      together into a straight-line region (see {!region_states}) — a
      register-resident compare loop over shared flat tables that
      crosses whole stretches of monomorphic and bimodal states
      without a single indirect jump.

    Replay through the compiled image is observationally identical to
    the interpreted {!Replayer} loops — TBB mapping, coverage,
    enter/exit counters, stats and simulated cycles (the per-step
    charges are captured from the same cost tables at build time), so
    cycles remain a pure function of the replayed stream. The only
    divergence is the inline-cache hit/miss split (compiled dispatch
    consults no IC; an IC hit charges exactly its underlying scan, so
    no cycle moves) — the same chunk-local exception already excluded
    from {!Replayer.snapshot}.

    The batch-loop state (cursor, bound, cycle accumulator and the two
    loop-invariant arrays) is threaded through the closures as
    arguments, so the hot paths keep it in registers; every closure is
    bounded by the threaded [stop], so sharded replay over a compiled
    image is bit-identical to sequential at any job count. A [t] owns
    one mutable rare-path context shared by its closures: it must not
    be run from two domains concurrently — build one per worker over a
    {!Packed.dup} sibling. *)

type t

val of_packed : Packed.t -> t
(** Compile a packed image. O(states + edges); the packed image is
    retained as {!base} (stats and cycle counters keep accumulating
    there). *)

val base : t -> Packed.t

(** {2 Batch replay} *)

type delta = {
  d_state : int;  (** slot the batch halted in *)
  d_covered : int;
  d_total : int;
  d_enters : int;
  d_exits : int;
  d_g_hits : int;
  d_g_miss : int;
  d_fused_steps : int;
  d_cycles : int;
}
(** One batch's accumulations, as integer deltas — the additive algebra
    {!Replayer.snapshot} merges by. In-trace hits are derivable as
    [len - d_g_hits - d_g_miss]: every step resolves in-span / on-chain,
    in the global hash, or not at all. *)

val run :
  t ->
  state:int ->
  counts:int array ->
  ?off:int ->
  int array ->
  int array ->
  len:int ->
  delta
(** [run t ~state ~counts ~off addrs ins ~len] replays
    [addrs.(off..off+len-1)] (with parallel per-block instruction
    counts [ins]) starting in slot [state], bumping per-slot execution
    counts directly into [counts] (caller-grown to at least
    {!Packed.n_slots} [base]). The caller validates [state], [off] and
    [len] ({!Replayer.feed_run} does). Dispatch-tier attribution: every
    compiled-resolved step bumps the [compiled] tier; hash resolutions
    bump [hash]/[miss] — a total partition of the batch. *)

(** {2 Image statistics} *)

val scan_cap : int
(** Largest fan-out dispatched by inline compares / linear scan; above
    it states fall back to the minihash shape. *)

val n_closures : t -> int
(** Dispatch closures built: one per state, plus one chain matcher per
    fused-chain member. *)

val degree_histogram : t -> (int * int) list
(** [(fan-out degree, number of states)], sorted by degree. *)

val fallback_states : t -> int
(** States with degree > {!scan_cap} (minihash fallback shape). *)

val chained_states : t -> int
(** States fronted by a fused-chain matcher closure. *)

val region_states : t -> int
(** States compiled into the straight-line region: in-trace fan-out-1/2
    states whose successors are all in-trace (and that no fused-chain
    matcher fronts). Their closures run a shared tight loop that tests
    each PC against the current slot's one or two successor labels and
    steps within flat tables — cursor, slot and cycle sum stay in
    registers, and control leaves only at a span miss (straight to the
    trace-head hash), a slot outside the region, or the batch bound.
    Since the loop compares exactly the span the interpreted scan
    would, at exactly its cost, observables are untouched. *)
