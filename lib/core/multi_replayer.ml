type entry = {
  rep : Replayer.t;
  mutable invalidations : int;
  mutable interrupts : int;
}

type t = {
  mutable make : int -> Replayer.t; (* replaced in place by [rebind] *)
  table : (int, entry) Hashtbl.t;
  mutable cur_asid : int;
  mutable cur : entry option; (* cache: table binding of [cur_asid] *)
  mutable switches : int;
}

let create make =
  { make; table = Hashtbl.create 8; cur_asid = 0; cur = None; switches = 0 }

(* The per-block path: one equality test when the stream stays in the same
   address space, one hash probe on a context switch. Entries are created
   lazily on the first {e block} of an asid — switch/invalidate/interrupt
   records alone never materialize an automaton, so the asid set a stream
   produces is exactly the set of asids that executed code (and matches
   what isolated per-asid replay produces). *)
let entry_for t asid =
  match t.cur with
  | Some e when asid = t.cur_asid -> e
  | _ ->
      let e =
        match Hashtbl.find_opt t.table asid with
        | Some e -> e
        | None ->
            let e = { rep = t.make asid; invalidations = 0; interrupts = 0 } in
            Hashtbl.add t.table asid e;
            e
      in
      t.cur_asid <- asid;
      t.cur <- Some e;
      e

(* Hot image swap across the whole address-space table. Every live
   replayer is rebound in place — entries, the [cur] cache and any
   feeder holding an entry stay valid — and the factory is replaced so
   asids that first appear after the swap are built over the new image.
   The factory builds a whole replayer per asid only to donate its
   engine; the throwaway is cheap next to the rebuild that precedes a
   swap. *)
let rebind t make =
  t.make <- make;
  Hashtbl.iter
    (fun asid e -> Replayer.rebind e.rep (Replayer.engine (make asid)))
    t.table

(* A cut models losing the translated-code context: the automaton drops to
   NTE with {e no} accounting ([Replayer.set_state] bumps nothing), so a
   forced eviction is never confused with an organic trace exit and
   coverage totals stay exact. *)
let cut e = Replayer.set_state e.rep Automaton.nte

let feed t ~asid ev =
  match (ev : Pc_trace.event) with
  | Block { start; insns } -> Replayer.feed_addr (entry_for t asid).rep ~insns start
  | Switch { asid = a } ->
      if a <> t.cur_asid || t.cur = None then begin
        t.cur_asid <- a;
        t.cur <- Hashtbl.find_opt t.table a
      end;
      t.switches <- t.switches + 1
  | Invalidate { asid = target } -> (
      match Hashtbl.find_opt t.table target with
      | None -> () (* nothing translated for that asid yet *)
      | Some e ->
          cut e;
          e.invalidations <- e.invalidations + 1)
  | Interrupt -> (
      match Hashtbl.find_opt t.table asid with
      | None -> ()
      | Some e ->
          cut e;
          e.interrupts <- e.interrupts + 1)

let feed_run_buf = 4096

(* Incremental batching front-end: buffers consecutive same-asid block
   runs and flushes them through {!Replayer.feed_run}, so event-at-a-time
   producers (the serve daemon's drain cycles, file replay) all take the
   {e batched} engine loops — the same dispatch path, and therefore the
   same dispatch-tier attribution, as offline replay. Equivalence with
   event-at-a-time [feed] is the feed_run == feed_addr property. *)
type feeder = {
  f_t : t;
  f_starts : int array;
  f_insns : int array;
  mutable f_fill : int;
  mutable f_for : entry option;
}

let feeder ?(buf = feed_run_buf) t =
  if buf < 1 then invalid_arg "Multi_replayer.feeder: buf must be >= 1";
  {
    f_t = t;
    f_starts = Array.make buf 0;
    f_insns = Array.make buf 0;
    f_fill = 0;
    f_for = None;
  }

let feeder_flush f =
  (match f.f_for with
  | Some e when f.f_fill > 0 ->
      Replayer.feed_run e.rep ~insns:f.f_insns f.f_starts ~len:f.f_fill
  | _ -> ());
  f.f_fill <- 0

(* The allocation-free hot path: producers that already hold the block's
   fields as ints (the daemon's unboxed event queue) feed them straight
   into the run buffer without ever re-boxing a [Pc_trace.event]. *)
let feeder_block f ~asid ~start ~insns =
  let e = entry_for f.f_t asid in
  (match f.f_for with
  | Some e' when e' == e -> ()
  | _ ->
      feeder_flush f;
      f.f_for <- Some e);
  f.f_starts.(f.f_fill) <- start;
  f.f_insns.(f.f_fill) <- insns;
  f.f_fill <- f.f_fill + 1;
  if f.f_fill = Array.length f.f_starts then feeder_flush f

let feeder_feed f ~asid ev =
  match (ev : Pc_trace.event) with
  | Block { start; insns } -> feeder_block f ~asid ~start ~insns
  | ev ->
      feeder_flush f;
      f.f_for <- None;
      feed f.f_t ~asid ev

let replay_file t path =
  let f = feeder t in
  Pc_trace.fold_events path () (fun () ~asid ev -> feeder_feed f ~asid ev);
  feeder_flush f

let replay_events make path =
  let t = create make in
  replay_file t path;
  t

let asids t =
  Hashtbl.fold (fun a _ acc -> a :: acc) t.table [] |> List.sort compare

let replayer t asid =
  Option.map (fun e -> e.rep) (Hashtbl.find_opt t.table asid)

let cur_asid t = t.cur_asid

let switches t = t.switches

let invalidations t asid =
  match Hashtbl.find_opt t.table asid with Some e -> e.invalidations | None -> 0

let interrupts t asid =
  match Hashtbl.find_opt t.table asid with Some e -> e.interrupts | None -> 0

let snapshots t =
  asids t
  |> List.map (fun a ->
         let e = Hashtbl.find t.table a in
         (a, Replayer.snapshot e.rep))

(* Per-asid projection of an interleaved file: asid [a] keeps its blocks
   and interrupts in stream order plus every invalidation {e targeting}
   it (wherever in the interleaving it was issued). Switches vanish —
   they carry no per-asid observable. Replaying each projection in
   isolation is the reference the demuxed replay is gated against. *)
let project path =
  let buckets : (int, Pc_trace.event list ref) Hashtbl.t = Hashtbl.create 8 in
  let bucket a =
    match Hashtbl.find_opt buckets a with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add buckets a r;
        r
  in
  Pc_trace.fold_events path () (fun () ~asid ev ->
      match ev with
      | Pc_trace.Block _ | Pc_trace.Interrupt ->
          let r = bucket asid in
          r := ev :: !r
      | Pc_trace.Invalidate { asid = target } ->
          let r = bucket target in
          r := ev :: !r
      | Pc_trace.Switch _ -> ());
  Hashtbl.fold (fun a r acc -> (a, List.rev !r) :: acc) buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let replay_isolated make path =
  project path
  |> List.filter_map (fun (a, evs) ->
         let t = create make in
         List.iter (fun ev -> feed t ~asid:a ev) evs;
         match replayer t a with
         | None -> None (* no blocks: the asid never executed code *)
         | Some rep -> Some (a, Replayer.snapshot rep))
