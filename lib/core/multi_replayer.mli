(** Demultiplexing an interleaved multi-process stream onto per-asid TEAs.

    Real DBT traffic is not one clean PC stream: blocks from several
    address spaces interleave under the scheduler, self-modifying code
    invalidates an asid's translations, and asynchronous signals cut a
    trace body mid-flight. A [Multi_replayer] routes a {!Pc_trace} v3
    event stream onto one {!Replayer} per asid:

    - {b context switch} is O(1) — a cached current-entry pointer, one
      hash probe on switch, one equality test per block;
    - {b lazy creation} — an asid's automaton materializes on its first
      block, never on a bare switch/invalidate/interrupt, so the asid set
      equals the set of address spaces that executed code;
    - {b invalidation} ([Pc_trace.Invalidate]) models self-modifying
      code: the target asid's automaton state is forced to NTE with no
      accounting (as {!Replayer.set_state} — no spurious exit, coverage
      untouched), so its traces re-enter from their heads afterwards;
    - {b interrupt} ([Pc_trace.Interrupt]) cuts the current asid's trace
      body the same way: drop to NTE, resume matching at the next block.

    The gate this module is built around: demuxed replay of an
    interleaved stream is {e observationally identical} — full
    {!Replayer.snapshot} equality per asid — to replaying each asid's
    {!project}ion in isolation, because blocks of different asids touch
    disjoint replayers and a cut is a pure state overwrite. *)

type t

val create : (int -> Replayer.t) -> t
(** [create make]: [make asid] builds the replayer for an asid on its
    first block (e.g. [fun a -> Replayer.create_packed (Packed.dup
    (image_for a))] — pass each asid a {e dup} when images are shared:
    packed stats and cycles live on the image). *)

val rebind : t -> (int -> Replayer.t) -> unit
(** [rebind t make] hot-swaps every live per-asid replayer onto the
    image the new factory builds — {!Replayer.rebind} in place, so
    counts, states, stats and cycles carry across and any {!feeder}
    stays valid — and installs [make] for asids that first appear later.
    Call only at a batch boundary (after {!feeder_flush}); like
    {!create}, the factory must hand each asid a private dup.
    @raise Invalid_argument if any engine involved is [Reference] or the
    images disagree on slot count. *)

val feed : t -> asid:int -> Pc_trace.event -> unit
(** Route one event. [~asid] is the address space the event lands on
    (wire directly to {!Pc_trace.fold_events}); a block whose [~asid]
    differs from the current one performs an implicit switch. *)

type feeder
(** An incremental batching front-end over one {!t}: buffers consecutive
    same-asid block runs and flushes them through {!Replayer.feed_run}.
    Event-at-a-time producers (the serve daemon, streaming decoders) use
    a feeder so they take the same batched engine loops — and the same
    {!Tierstat} dispatch-tier attribution — as offline file replay.
    Equivalent to folding {!feed} (the feed_run == feed_addr property),
    except that on a fused image batched dispatch resolves chains through
    the fused tier. Not thread-safe: one feeder per producer. *)

val feeder : ?buf:int -> t -> feeder
(** [buf] is the run-buffer capacity in blocks (default 4096).
    @raise Invalid_argument if [buf < 1]. *)

val feeder_feed : feeder -> asid:int -> Pc_trace.event -> unit
(** Buffer one event. Non-block events and asid changes flush the
    pending run first, preserving stream order. *)

val feeder_block : feeder -> asid:int -> start:int -> insns:int -> unit
(** [feeder_feed f ~asid (Block { start; insns })] without constructing
    the event — the allocation-free path for producers that hold the
    fields unboxed (the daemon's drain cycle). *)

val feeder_flush : feeder -> unit
(** Replay any buffered run now. Call at batch boundaries (end of a
    drain cycle, end of stream) — a feeder holds no state besides the
    pending run, so flushing is always safe. *)

val replay_file : t -> string -> unit
(** Replay a trace file of any {!Pc_trace.format}, batching consecutive
    same-asid block runs through {!Replayer.feed_run} (a {!feeder}).
    Equivalent to folding {!feed} over {!Pc_trace.fold_events}.
    @raise Pc_trace.Corrupt on bad framing. *)

val replay_events : (int -> Replayer.t) -> string -> t
(** [create] + [replay_file]. *)

val asids : t -> int list
(** Asids that executed at least one block, sorted. *)

val replayer : t -> int -> Replayer.t option

val cur_asid : t -> int

val switches : t -> int
(** Switch records routed (including self-switches). *)

val invalidations : t -> int -> int
(** Invalidations that landed on an existing asid ([0] for unknown). *)

val interrupts : t -> int -> int

val snapshots : t -> (int * Replayer.snapshot) list
(** Per-asid profile snapshots, sorted by asid — the demuxed side of the
    demuxed-vs-isolated gate. *)

val project : string -> (int * Pc_trace.event list) list
(** Per-asid projection of a trace file, sorted by asid: each asid keeps
    its blocks and interrupts in stream order plus every invalidation
    targeting it; switches are dropped. Asids that only ever appear as a
    switch target (no block, interrupt or invalidation) do not appear. *)

val replay_isolated : (int -> Replayer.t) -> string -> (int * Replayer.snapshot) list
(** Replay each asid's {!project}ion through a fresh replayer, in
    isolation; per-asid snapshots for asids that executed blocks, sorted.
    The reference side of the gate: must equal {!snapshots} of a demuxed
    {!replay_events} over the same file and factory (with the factory
    handing out independent replayers, e.g. fresh [Packed.dup]s). *)
