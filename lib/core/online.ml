module Block = Tea_cfg.Block
module Recorder = Tea_traces.Recorder
module Trace_set = Tea_traces.Trace_set

type phase = Executing | Creating

type packed =
  | Packed : (module Recorder.STRATEGY with type t = 'a) * 'a -> packed

type t = {
  packed : packed;
  auto : Automaton.t;
  trans : Transition.t;
  set : Trace_set.t;
  mutable ph : phase;
  mutable state : Automaton.state;
  mutable prev : Block.t option;
  mutable covered : int;
  mutable total : int;
}

let create ?(config = Recorder.default_config)
    ?(transition = Transition.config_global_local)
    (strategy : Recorder.strategy) =
  let (module S : Recorder.STRATEGY) = strategy in
  let auto = Automaton.create () in
  {
    packed = Packed ((module S), S.create config);
    auto;
    trans = Transition.create transition auto;
    set = Trace_set.create ();
    ph = Executing;
    state = Automaton.nte;
    prev = None;
    covered = 0;
    total = 0;
  }

let account t next =
  t.total <- t.total + Block.n_insns next;
  if t.state <> Automaton.nte then t.covered <- t.covered + Block.n_insns next

let install t trace =
  Trace_set.add t.set trace;
  Automaton.add_trace t.auto trace;
  Transition.refresh t.trans

let feed t next =
  let (Packed ((module S), s)) = t.packed in
  let current = t.prev in
  (match t.ph with
  | Executing ->
      (* ChangeState, then TriggerTraceRecording. *)
      t.state <- Transition.step t.trans t.state next.Block.start;
      account t next;
      if S.trigger s ~current ~next then begin
        S.start s ~current ~next;
        (* Executing -> Creating: recording begins at [next]. *)
        Tea_telemetry.Probe.count "recorder.triggered" 1;
        t.ph <- Creating;
        (* Blocks recorded from here on execute cold, so the TEA must
           actually sit at NTE — otherwise, when recording triggers while
           the state is inside an installed trace (e.g. right at a trace
           exit), [account] keeps crediting the recorded blocks to
           [covered]. The `Done branch re-steps from NTE, which picks up
           the freshly installed trace's head. *)
        t.state <- Automaton.nte
      end
  | Creating -> (
      match current with
      | None -> assert false (* Creating implies at least one prior block *)
      | Some cur -> (
          match S.add s ~current:cur ~next with
          | `Continue ->
              (* Blocks being recorded execute cold; the TEA stays at NTE. *)
              account t next
          | `Done completed ->
              (* Creating -> Executing: either a trace was produced or the
                 recording was abandoned by the strategy. *)
              (match completed with
              | Some tr ->
                  Tea_telemetry.Probe.count "recorder.trace_installed" 1;
                  install t tr
              | None -> Tea_telemetry.Probe.count "recorder.abandoned" 1);
              t.ph <- Executing;
              t.state <- Transition.step t.trans t.state next.Block.start;
              account t next)));
  t.prev <- Some next

let finish t =
  let (Packed ((module S), s)) = t.packed in
  if t.ph = Creating then Tea_telemetry.Probe.count "recorder.abort_at_eof" 1;
  match S.abort s with
  | Some tr ->
      Tea_telemetry.Probe.count "recorder.abort_salvaged" 1;
      install t tr;
      t.ph <- Executing
  | None -> t.ph <- Executing

let phase t = t.ph

let tea_state t = t.state

let automaton t = t.auto

let transition t = t.trans

let traces t = Trace_set.to_list t.set

let trace_set t = t.set

let covered_insns t = t.covered

let total_insns t = t.total

let coverage t =
  if t.total = 0 then 0.0 else float_of_int t.covered /. float_of_int t.total
