type raw = {
  offsets : int array;
  labels : int array;
  targets : int array;
  state_trace : int array;
  state_tbb : int array;
  state_start : int array;
  state_insns : int array;
  hash_keys : int array;
  hash_vals : int array;
  hot_len : int array;
  orig_of : int array;
}

(* Chain-fusion overlay ({!Tea_opt.Fuse}): single-successor runs of the
   DFA collapsed into superstates. A slot [s] with [fchain.(s) = c >= 0]
   sits at position [fpos.(s)] of chain [c], whose expansion table is the
   pooled slice [foff.(c) .. foff.(c+1)) of [fsig] (the PC each forced
   step must see), [ftgt] (the state it lands in) and [fecost] (the
   simulated cycles the ordinary dispatch would charge for that exact
   resolution). [fcyc.(c) = 1] marks a chain whose last edge re-enters
   its first state — a loop the replayer may fast-forward through. The
   overlay is purely descriptive: {!step} ignores it, and
   {!with_fusion} validates that every chain edge restates an existing
   1-edge span verbatim, so a fused image can never replay differently
   from its unfused source. *)
type fusion = {
  fchain : int array;
  fpos : int array;
  foff : int array;
  fcyc : int array;
  fsig : int array;
  ftgt : int array;
  fecost : int array;
}

(* The arrays live directly in [t] (rather than behind a nested [raw]
   record) so the step path loads each one with a single indirection.

   A repacked image ([repacked = true]) additionally carries:
   - [hot_len]: per-slot length of the most-taken-first linear prefix of
     the span (the remainder stays label-sorted for binary search);
   - [edge_cost] / [miss_cost]: the simulated cycles the scan path would
     charge to resolve each edge / to miss the whole span, precomputed
     from the layout so the inline cache can charge them without scanning;
   - [orig_of] / [slot_of]: the slot <-> original-state-id permutation
     (reporting translates at the boundary; replay runs in slot space);
   - [ic_label]/[ic_target]/[ic_cost]: the per-state monomorphic inline
     cache, the packed analogue of DBT trace chaining. These three arrays
     are the only flat arrays mutated during replay, so {!dup} gives each
     sibling its own copies. *)
type t = {
  offsets : int array;
  labels : int array;
  targets : int array;
  state_trace : int array;
  state_tbb : int array;
  state_start : int array;
  state_insns : int array;
  hash_keys : int array;
  hash_vals : int array;
  hot_len : int array;
  orig_of : int array;
  slot_of : int array;
  edge_cost : int array; (* [||] unless repacked *)
  miss_cost : int array; (* [||] unless repacked *)
  ic_label : int array; (* [||] unless repacked; min_int = empty *)
  ic_target : int array;
  ic_cost : int array;
  fusion : fusion option; (* immutable overlay; shared by {!dup} *)
  repacked : bool;
  mask : int; (* Array.length hash_keys - 1 *)
  auto : Automaton.t option;
  st : Transition.stats;
  mutable total_cycles : int;
  mutable ic_hit_count : int;
  mutable ic_miss_count : int;
}

(* Cost constants. A binary-search halving is a compare plus a conditional
   move on cache-resident arrays (~1); the hash path pays the multiply +
   mask (~2) plus one probe compare per slot examined; an NTE miss does the
   same cold-code bookkeeping as the reference engine. A hot-prefix probe
   is the same compare as a halving, so it also costs [cost_search_step]. *)
let cost_search_step = 1

let cost_hash_base = 2

let cost_hash_probe = 1

(* The inline cache never fires on this label: real PCs are non-negative
   and -1 is the hash tombstone, so the empty IC slot sits below both. *)
let ic_empty = min_int

(* Fibonacci multiplicative hashing; the constant is SplitMix64's golden
   gamma truncated to OCaml's int range. Exported so every probe loop —
   insertion here, {!step}, {!head_of} and the fused batch loop in
   {!Replayer.feed_run} — shares the one definition. *)
let[@inline] hash_pc mask pc = ((pc * 0x2545F4914F6CDD1D) lsr 24) land mask

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let insert_head keys vals mask addr state =
  let rec go i =
    if keys.(i) < 0 || keys.(i) = addr then begin
      keys.(i) <- addr;
      vals.(i) <- state
    end
    else go ((i + 1) land mask)
  in
  go (hash_pc mask addr)

(* Dedupe repeated head addresses before sizing the table: the last value
   wins (matching [insert_head]'s overwrite semantics) but insertion keeps
   first-occurrence order, so the probe-chain layout is independent of how
   many times an address was re-inserted. Sizing from the raw list length
   would over-size on duplicates — and under-fill relative to the load
   factor the size was chosen for. *)
let build_hash heads n_slots =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (addr, s) ->
      if addr < 0 then invalid_arg "Packed: negative head address";
      if s < 0 || s >= n_slots then invalid_arg "Packed: head out of range";
      if not (Hashtbl.mem tbl addr) then order := addr :: !order;
      Hashtbl.replace tbl addr s)
    heads;
  let distinct = List.rev !order in
  let size = pow2_at_least (max 8 (2 * List.length distinct)) 8 in
  let keys = Array.make size (-1) and vals = Array.make size 0 in
  List.iter
    (fun addr -> insert_head keys vals (size - 1) addr (Hashtbl.find tbl addr))
    distinct;
  (keys, vals)

(* Iterations of the branchless lower-bound loop over [m] labels: len
   shrinks by [len lsr 1] until it reaches 1 (= ceil(log2 m)). *)
let halvings m =
  let rec go len acc = if len <= 1 then acc else go (len - (len lsr 1)) (acc + 1) in
  go m 0

(* Precompute what the scan path charges so the inline cache (and the
   fused batch loop) can charge a resolution with one table load:
   - a hot-prefix edge at position j costs its j+1 linear probes;
   - a tail edge costs the whole prefix (k probes) plus the binary search
     over the m tail labels (halvings m + 1);
   - a span miss costs the same full scan (prefix + search), after which
     the hash path charges its own costs on top. *)
let derive_costs offsets hot_len =
  let n_slots = Array.length offsets - 1 in
  let edge_cost = Array.make offsets.(n_slots) 0 in
  let miss_cost = Array.make n_slots 0 in
  for s = 0 to n_slots - 1 do
    let lo = offsets.(s) and hi = offsets.(s + 1) in
    let k = hot_len.(s) in
    let m = hi - lo - k in
    let tail = if m > 0 then halvings m + 1 else 0 in
    for j = 0 to k - 1 do
      edge_cost.(lo + j) <- (j + 1) * cost_search_step
    done;
    for e = lo + k to hi - 1 do
      edge_cost.(e) <- (k + tail) * cost_search_step
    done;
    miss_cost.(s) <- (k + tail) * cost_search_step
  done;
  (edge_cost, miss_cost)

let identity n = Array.init n (fun i -> i)

let make_t ~offsets ~labels ~targets ~state_trace ~state_tbb ~state_start
    ~state_insns ~hash_keys ~hash_vals ~hot_len ~orig_of ~auto ~repacked =
  let n_slots = Array.length offsets - 1 in
  let slot_of =
    if repacked then begin
      let a = Array.make n_slots 0 in
      Array.iteri (fun slot orig -> a.(orig) <- slot) orig_of;
      a
    end
    else orig_of (* identity; never mutated, safe to share *)
  in
  let edge_cost, miss_cost =
    if repacked then derive_costs offsets hot_len else ([||], [||])
  in
  {
    offsets;
    labels;
    targets;
    state_trace;
    state_tbb;
    state_start;
    state_insns;
    hash_keys;
    hash_vals;
    hot_len;
    orig_of;
    slot_of;
    edge_cost;
    miss_cost;
    ic_label = (if repacked then Array.make n_slots ic_empty else [||]);
    ic_target = (if repacked then Array.make n_slots (-1) else [||]);
    ic_cost = (if repacked then Array.make n_slots 0 else [||]);
    fusion = None;
    repacked;
    mask = Array.length hash_keys - 1;
    auto;
    st = Transition.fresh_stats ();
    total_cycles = 0;
    ic_hit_count = 0;
    ic_miss_count = 0;
  }

let freeze auto =
  let max_id = ref 0 in
  Automaton.iter_live (fun s _ -> if s > !max_id then max_id := s) auto;
  let n_slots = !max_id + 1 in
  let state_trace = Array.make n_slots (-1) in
  let state_tbb = Array.make n_slots 0 in
  let state_start = Array.make n_slots 0 in
  let state_insns = Array.make n_slots 0 in
  let offsets = Array.make (n_slots + 1) 0 in
  (* Single traversal: sort each state's edges once, cache the sorted
     lists, and reuse them for both the offsets count and the fill. *)
  let sorted_edges = Array.make n_slots [] in
  Automaton.iter_live
    (fun s info ->
      state_trace.(s) <- info.Automaton.trace_id;
      state_tbb.(s) <- info.Automaton.tbb_index;
      state_start.(s) <- info.Automaton.block_start;
      state_insns.(s) <- info.Automaton.n_insns;
      let edges =
        List.sort
          (fun (a, _) (b, _) -> Int.compare a b)
          (Automaton.edges_of auto s)
      in
      sorted_edges.(s) <- edges;
      offsets.(s + 1) <- List.length edges)
    auto;
  for i = 1 to n_slots do
    offsets.(i) <- offsets.(i) + offsets.(i - 1)
  done;
  let n_edges = offsets.(n_slots) in
  let labels = Array.make n_edges 0 and targets = Array.make n_edges 0 in
  Array.iteri
    (fun s edges ->
      List.iteri
        (fun i (label, dst) ->
          labels.(offsets.(s) + i) <- label;
          targets.(offsets.(s) + i) <- dst)
        edges)
    sorted_edges;
  let hash_keys, hash_vals = build_hash (Automaton.heads auto) n_slots in
  make_t ~offsets ~labels ~targets ~state_trace ~state_tbb ~state_start
    ~state_insns ~hash_keys ~hash_vals ~hot_len:(Array.make n_slots 0)
    ~orig_of:(identity n_slots) ~auto:(Some auto) ~repacked:false

(* The flat arrays are immutable after freeze; only the counter block —
   and, for repacked images, the inline-cache arrays — mutate during
   replay. Sharing those across domains would race, so a parallel driver
   gives each worker its own counters (and IC) over the same layout. *)
let dup t =
  {
    t with
    st = Transition.fresh_stats ();
    total_cycles = 0;
    ic_hit_count = 0;
    ic_miss_count = 0;
    ic_label =
      (if t.repacked then Array.make (Array.length t.ic_label) ic_empty
       else t.ic_label);
    ic_target =
      (if t.repacked then Array.make (Array.length t.ic_target) (-1)
       else t.ic_target);
    ic_cost =
      (if t.repacked then Array.make (Array.length t.ic_cost) 0 else t.ic_cost);
  }

let n_slots t = Array.length t.offsets - 1

let n_states t =
  Array.fold_left (fun acc tr -> if tr >= 0 then acc + 1 else acc) 0 t.state_trace

let n_edges t = Array.length t.labels

let n_heads t =
  Array.fold_left (fun acc k -> if k >= 0 then acc + 1 else acc) 0 t.hash_keys

let automaton t = t.auto

let stats t = t.st

let cycles t = t.total_cycles

let add_cycles t n = t.total_cycles <- t.total_cycles + n

let is_repacked t = t.repacked

let hot_edges t = Array.fold_left ( + ) 0 t.hot_len

let orig_state t s =
  if s >= 0 && s < Array.length t.orig_of then t.orig_of.(s) else s

let slot_of_state t s =
  if s >= 0 && s < Array.length t.slot_of then t.slot_of.(s) else s

let ic_hits t = t.ic_hit_count

let ic_misses t = t.ic_miss_count

let add_ic t ~hits ~misses =
  t.ic_hit_count <- t.ic_hit_count + hits;
  t.ic_miss_count <- t.ic_miss_count + misses

let reset_counters t =
  t.total_cycles <- 0;
  t.ic_hit_count <- 0;
  t.ic_miss_count <- 0;
  if t.repacked then begin
    Array.fill t.ic_label 0 (Array.length t.ic_label) ic_empty;
    Array.fill t.ic_target 0 (Array.length t.ic_target) (-1);
    Array.fill t.ic_cost 0 (Array.length t.ic_cost) 0
  end;
  let st = t.st in
  st.Transition.steps <- 0;
  st.Transition.in_trace_hits <- 0;
  st.Transition.cache_hits <- 0;
  st.Transition.global_hits <- 0;
  st.Transition.global_misses <- 0

let state_insns t s =
  if s >= 0 && s < n_slots t then t.state_insns.(s) else 0

(* Pure lookup used by tests/tools; [step] inlines its own probe loop so
   the hot path charges costs without an option allocation. *)
let head_of t pc =
  let keys = t.hash_keys and mask = t.mask in
  let rec go i =
    let k = Array.unsafe_get keys i in
    if k = pc then Some (Array.unsafe_get t.hash_vals i)
    else if k < 0 then None
    else go ((i + 1) land mask)
  in
  if pc < 0 then None else go (hash_pc mask pc)

(* The hot path is written with tail-recursive helpers carrying their
   accumulators in arguments: without flambda a [ref] is a minor-heap
   allocation, and five of those per step cost more than the search itself.
   Each helper charges its simulated cycles into [total_cycles] at its
   terminal case, so the accounting is identical to the obvious loop. *)

(* Branchless lower-bound over a sorted span; charges one
   [cost_search_step] per halving plus one for the final compare. *)
let rec lower_bound t labels pc base len cost =
  if len <= 1 then begin
    t.total_cycles <- t.total_cycles + cost + cost_search_step;
    base
  end
  else
    let half = len lsr 1 in
    let base =
      if Array.unsafe_get labels (base + half) <= pc then base + half else base
    in
    lower_bound t labels pc base (len - half) (cost + cost_search_step)

(* Cost-free lower bound for repacked spans: the resolution cost comes
   from the precomputed [edge_cost]/[miss_cost] tables instead of being
   charged per halving. *)
let rec lower_bound_pure labels pc base len =
  if len <= 1 then base
  else
    let half = len lsr 1 in
    let base =
      if Array.unsafe_get labels (base + half) <= pc then base + half else base
    in
    lower_bound_pure labels pc base (len - half)

let rec scan_prefix labels pc i stop =
  if i >= stop then -1
  else if Array.unsafe_get labels i = pc then i
  else scan_prefix labels pc (i + 1) stop

(* Open-addressing probe; returns the head state or -1, charging one
   [cost_hash_probe] per slot examined (terminal slot included). *)
let rec probe t keys vals mask pc i cost =
  let k = Array.unsafe_get keys i in
  if k = pc then begin
    t.total_cycles <- t.total_cycles + cost;
    Array.unsafe_get vals i
  end
  else if k < 0 then begin
    t.total_cycles <- t.total_cycles + cost;
    -1
  end
  else probe t keys vals mask pc ((i + 1) land mask) (cost + cost_hash_probe)

(* Shared cold tail: hash the PC and probe for a trace head, charging the
   hash-path costs and bumping the cross-trace counters. [state] is the
   dispatch source, only used for tier attribution ([a]). *)
let step_hash t m a ~state pc =
  let st = t.st in
  t.total_cycles <- t.total_cycles + cost_hash_base;
  let c0 = t.total_cycles in
  let found =
    probe t t.hash_keys t.hash_vals t.mask pc (hash_pc t.mask pc)
      cost_hash_probe
  in
  (* [probe] charges [cost_hash_probe] (= 1) per slot examined, so the
     cycles delta is exactly the probe length. *)
  (match m with
  | None -> ()
  | Some m ->
      Tea_telemetry.Metrics.observe_value m "packed.hash_probe_len"
        ((t.total_cycles - c0) / cost_hash_probe));
  if found >= 0 then begin
    st.Transition.global_hits <- st.Transition.global_hits + 1;
    (match m with
    | None -> ()
    | Some m -> Tea_telemetry.Metrics.count m "packed.global_hit" 1);
    (match a with
    | None -> ()
    | Some a -> Tierstat.bump a ~tier:Tierstat.t_hash ~state);
    found
  end
  else begin
    st.Transition.global_misses <- st.Transition.global_misses + 1;
    (match m with
    | None -> ()
    | Some m -> Tea_telemetry.Metrics.count m "packed.global_miss" 1);
    (match a with
    | None -> ()
    | Some a -> Tierstat.bump a ~tier:Tierstat.t_miss ~state);
    t.total_cycles <- t.total_cycles + Transition.cost_nte_miss;
    Automaton.nte
  end

let step_flat t state pc =
  let st = t.st in
  st.Transition.steps <- st.Transition.steps + 1;
  let lo = Array.unsafe_get t.offsets state in
  let hi = Array.unsafe_get t.offsets (state + 1) in
  (* In-trace transition: lower-bound over the state's sorted span, then
     one equality check. *)
  let hit =
    if hi > lo then begin
      let b = lower_bound t t.labels pc lo (hi - lo) 0 in
      if Array.unsafe_get t.labels b = pc then Array.unsafe_get t.targets b
      else -1
    end
    else -1
  in
  (* [m] is [None] whenever telemetry is off, so the disabled per-step
     cost is one atomic load and the option matches below; same deal for
     the tier tally [a]. *)
  let m = Tea_telemetry.Probe.metrics () in
  let a = Tierstat.tally () in
  if hit >= 0 then begin
    st.Transition.in_trace_hits <- st.Transition.in_trace_hits + 1;
    (match m with
    | None -> ()
    | Some m -> Tea_telemetry.Metrics.count m "packed.in_trace_hit" 1);
    (match a with
    | None -> ()
    | Some a -> Tierstat.bump a ~tier:Tierstat.t_search ~state);
    hit
  end
  else step_hash t m a ~state pc

(* Repacked dispatch: monomorphic inline cache, then the most-taken-first
   linear prefix, then binary search over the sorted tail, then the hash
   path. An IC hit charges exactly the [edge_cost] the scan charged when
   the entry was filled — for a fixed layout that cost is a function of
   (state, pc) alone, so simulated cycles are independent of IC history
   and sharded replay stays bit-identical to sequential. Only the
   [ic_hit]/[ic_miss] telemetry split observes the cache itself. *)
let step_hot t state pc =
  let st = t.st in
  st.Transition.steps <- st.Transition.steps + 1;
  let m = Tea_telemetry.Probe.metrics () in
  let a = Tierstat.tally () in
  if Array.unsafe_get t.ic_label state = pc then begin
    st.Transition.in_trace_hits <- st.Transition.in_trace_hits + 1;
    t.ic_hit_count <- t.ic_hit_count + 1;
    t.total_cycles <- t.total_cycles + Array.unsafe_get t.ic_cost state;
    (match m with
    | None -> ()
    | Some m ->
        Tea_telemetry.Metrics.count m "packed.ic_hit" 1;
        Tea_telemetry.Metrics.count m "packed.in_trace_hit" 1);
    (match a with
    | None -> ()
    | Some a -> Tierstat.bump a ~tier:Tierstat.t_ic ~state);
    Array.unsafe_get t.ic_target state
  end
  else begin
    t.ic_miss_count <- t.ic_miss_count + 1;
    (match m with
    | None -> ()
    | Some m -> Tea_telemetry.Metrics.count m "packed.ic_miss" 1);
    let lo = Array.unsafe_get t.offsets state in
    let hi = Array.unsafe_get t.offsets (state + 1) in
    let k = Array.unsafe_get t.hot_len state in
    let e =
      let e = scan_prefix t.labels pc lo (lo + k) in
      if e >= 0 then e
      else begin
        let tl = lo + k in
        if hi <= tl then -1
        else
          let b = lower_bound_pure t.labels pc tl (hi - tl) in
          if Array.unsafe_get t.labels b = pc then b else -1
      end
    in
    if e >= 0 then begin
      st.Transition.in_trace_hits <- st.Transition.in_trace_hits + 1;
      let c = Array.unsafe_get t.edge_cost e in
      t.total_cycles <- t.total_cycles + c;
      let tgt = Array.unsafe_get t.targets e in
      Array.unsafe_set t.ic_label state pc;
      Array.unsafe_set t.ic_target state tgt;
      Array.unsafe_set t.ic_cost state c;
      (match m with
      | None -> ()
      | Some m -> Tea_telemetry.Metrics.count m "packed.in_trace_hit" 1);
      (match a with
      | None -> ()
      | Some a ->
          (* [e < lo + k] identifies the hot prefix; the tail is binary
             search. *)
          let tier = if e < lo + k then Tierstat.t_hot else Tierstat.t_search in
          Tierstat.bump a ~tier ~state);
      tgt
    end
    else begin
      t.total_cycles <- t.total_cycles + Array.unsafe_get t.miss_cost state;
      step_hash t m a ~state pc
    end
  end

let step t state pc =
  if state < 0 || state + 1 >= Array.length t.offsets then
    invalid_arg "Packed.step: state id outside the frozen image";
  if t.repacked then step_hot t state pc else step_flat t state pc

(* Read-only view of every array the fused batch loop in
   {!Replayer.run_packed} needs for the repacked dispatch, bundled so the
   loop hoists each into a local with one record load. The IC arrays are
   the live (mutable) ones — the loop fills them in place. *)
type hot_view = {
  v_offsets : int array;
  v_labels : int array;
  v_targets : int array;
  v_hot_len : int array;
  v_edge_cost : int array;
  v_miss_cost : int array;
  v_ic_label : int array;
  v_ic_target : int array;
  v_ic_cost : int array;
  v_hash_keys : int array;
  v_hash_vals : int array;
}

let hot_view t =
  if not t.repacked then invalid_arg "Packed.hot_view: image is not repacked";
  {
    v_offsets = t.offsets;
    v_labels = t.labels;
    v_targets = t.targets;
    v_hot_len = t.hot_len;
    v_edge_cost = t.edge_cost;
    v_miss_cost = t.miss_cost;
    v_ic_label = t.ic_label;
    v_ic_target = t.ic_target;
    v_ic_cost = t.ic_cost;
    v_hash_keys = t.hash_keys;
    v_hash_vals = t.hash_vals;
  }

let to_raw t : raw =
  {
    offsets = t.offsets;
    labels = t.labels;
    targets = t.targets;
    state_trace = t.state_trace;
    state_tbb = t.state_tbb;
    state_start = t.state_start;
    state_insns = t.state_insns;
    hash_keys = t.hash_keys;
    hash_vals = t.hash_vals;
    hot_len = t.hot_len;
    orig_of = t.orig_of;
  }

let of_raw ?auto ?(repacked = false) (r : raw) =
  let fail fmt = Printf.ksprintf invalid_arg ("Packed.of_raw: " ^^ fmt) in
  let n_slots = Array.length r.offsets - 1 in
  if n_slots < 0 then fail "empty offsets array";
  if r.offsets.(0) <> 0 then fail "offsets must start at 0";
  for i = 0 to n_slots - 1 do
    if r.offsets.(i + 1) < r.offsets.(i) then fail "offsets must be monotone"
  done;
  let n_edges = Array.length r.labels in
  if Array.length r.targets <> n_edges then fail "labels/targets length mismatch";
  if r.offsets.(n_slots) <> n_edges then fail "offsets do not cover the edge array";
  Array.iter
    (fun d -> if d < 0 || d >= n_slots then fail "edge target out of range")
    r.targets;
  if Array.length r.hot_len <> n_slots then fail "hot_len length mismatch";
  if Array.length r.orig_of <> n_slots then fail "orig_of length mismatch";
  if repacked then begin
    (* Each span splits into a hot prefix (pairwise-distinct labels, any
       order) and a strictly increasing tail, with no label in both. *)
    for s = 0 to n_slots - 1 do
      let lo = r.offsets.(s) and hi = r.offsets.(s + 1) in
      let k = r.hot_len.(s) in
      if k < 0 || k > hi - lo then fail "hot prefix exceeds its span";
      for i = lo to lo + k - 1 do
        for j = i + 1 to lo + k - 1 do
          if r.labels.(i) = r.labels.(j) then
            fail "duplicate label in hot prefix"
        done;
        for j = lo + k to hi - 1 do
          if r.labels.(i) = r.labels.(j) then
            fail "hot prefix label repeated in tail"
        done
      done;
      for i = lo + k + 1 to hi - 1 do
        if r.labels.(i) <= r.labels.(i - 1) then
          fail "span tail labels must be strictly increasing"
      done
    done;
    let seen = Array.make (max n_slots 1) false in
    Array.iter
      (fun o ->
        if o < 0 || o >= n_slots then fail "orig_of out of range"
        else if seen.(o) then fail "orig_of is not a permutation"
        else seen.(o) <- true)
      r.orig_of;
    if n_slots > 0 && r.orig_of.(0) <> 0 then
      fail "orig_of must pin NTE at slot 0"
  end
  else begin
    Array.iter
      (fun k -> if k <> 0 then fail "hot_len must be zero in a flat image")
      r.hot_len;
    Array.iteri
      (fun i o ->
        if o <> i then fail "orig_of must be the identity in a flat image")
      r.orig_of;
    for s = 0 to n_slots - 1 do
      for i = r.offsets.(s) + 1 to r.offsets.(s + 1) - 1 do
        if r.labels.(i) <= r.labels.(i - 1) then
          fail "span labels must be strictly increasing"
      done
    done
  end;
  List.iter
    (fun a ->
      if Array.length a <> n_slots then fail "state array length mismatch")
    [ r.state_trace; r.state_tbb; r.state_start; r.state_insns ];
  let hsize = Array.length r.hash_keys in
  if hsize < 1 || hsize land (hsize - 1) <> 0 then
    fail "hash size must be a power of two";
  if Array.length r.hash_vals <> hsize then fail "hash array length mismatch";
  Array.iteri
    (fun i k ->
      if k >= 0 && (r.hash_vals.(i) < 0 || r.hash_vals.(i) >= n_slots) then
        fail "hash value out of range")
    r.hash_keys;
  make_t ~offsets:r.offsets ~labels:r.labels ~targets:r.targets
    ~state_trace:r.state_trace ~state_tbb:r.state_tbb
    ~state_start:r.state_start ~state_insns:r.state_insns
    ~hash_keys:r.hash_keys ~hash_vals:r.hash_vals ~hot_len:r.hot_len
    ~orig_of:r.orig_of ~auto ~repacked

(* Attach a fusion overlay, re-validating it against the image it claims
   to describe. The checks are deliberately redundant with how
   {!Tea_opt.Fuse} builds the overlay: a fused image loaded from bytes
   ({!Serialize}, TEAPK3) goes through the same gate, so a corrupt or
   hand-forged overlay can never make the fused replay loop follow an
   edge the plain dispatch would not. *)
let with_fusion t (f : fusion) =
  let fail fmt = Printf.ksprintf invalid_arg ("Packed.with_fusion: " ^^ fmt) in
  let n = n_slots t in
  if Array.length f.fchain <> n then fail "fchain length mismatch";
  if Array.length f.fpos <> n then fail "fpos length mismatch";
  let n_chains = Array.length f.foff - 1 in
  if n_chains < 0 then fail "empty foff array";
  if Array.length f.fcyc <> n_chains then fail "fcyc length mismatch";
  if f.foff.(0) <> 0 then fail "foff must start at 0";
  for c = 0 to n_chains - 1 do
    if f.foff.(c + 1) <= f.foff.(c) then
      fail "foff must be strictly monotone (no empty chains)"
  done;
  let n_fedges = f.foff.(n_chains) in
  if Array.length f.fsig <> n_fedges then fail "fsig length mismatch";
  if Array.length f.ftgt <> n_fedges then fail "ftgt length mismatch";
  if Array.length f.fecost <> n_fedges then fail "fecost length mismatch";
  Array.iter
    (fun c -> if c <> 0 && c <> 1 then fail "fcyc entries must be 0 or 1")
    f.fcyc;
  (* Owner map: position p of chain c is held by exactly one slot. *)
  let owner = Array.make (max n_fedges 1) (-1) in
  for s = 0 to n - 1 do
    let c = f.fchain.(s) in
    if c < -1 || c >= n_chains then fail "fchain id out of range (slot %d)" s;
    if c = -1 then begin
      if f.fpos.(s) <> 0 then fail "unchained slot %d has nonzero fpos" s
    end
    else begin
      if s = 0 then fail "NTE (slot 0) may not join a chain";
      let lo = f.foff.(c) and hi = f.foff.(c + 1) in
      let p = f.fpos.(s) in
      if p < 0 || p >= hi - lo then
        fail "fpos out of range for slot %d (chain %d)" s c;
      if owner.(lo + p) >= 0 then
        fail "chain %d position %d claimed by two slots" c p;
      owner.(lo + p) <- s
    end
  done;
  for e = 0 to n_fedges - 1 do
    if owner.(e) < 0 then fail "chain position %d has no owning slot" e
  done;
  (* Every chain edge must restate an existing 1-edge span verbatim, with
     the exact simulated cost the ordinary dispatch charges to resolve it
     (a 1-edge span costs one search step under binary search, hot-prefix
     scan and IC hit alike, or its precomputed edge_cost when repacked). *)
  for e = 0 to n_fedges - 1 do
    let s = owner.(e) in
    let lo = t.offsets.(s) and hi = t.offsets.(s + 1) in
    if hi - lo <> 1 then fail "chained slot %d does not have exactly 1 edge" s;
    if t.labels.(lo) <> f.fsig.(e) then
      fail "fsig mismatch at slot %d (chain edge %d)" s e;
    if t.targets.(lo) <> f.ftgt.(e) then
      fail "ftgt mismatch at slot %d (chain edge %d)" s e;
    if f.ftgt.(e) = 0 then fail "chain edge %d targets NTE" e;
    let expect =
      if t.repacked then t.edge_cost.(lo) else cost_search_step
    in
    if f.fecost.(e) <> expect then
      fail "fecost mismatch at chain edge %d (%d, dispatch charges %d)" e
        f.fecost.(e) expect
  done;
  (* Linkage: following a chain's edges walks its member slots in
     position order; a cyclic chain's last edge re-enters position 0. *)
  for c = 0 to n_chains - 1 do
    let lo = f.foff.(c) and hi = f.foff.(c + 1) in
    for e = lo to hi - 2 do
      if f.ftgt.(e) <> owner.(e + 1) then
        fail "chain %d edge %d does not link to the next member" c (e - lo)
    done;
    if f.fcyc.(c) = 1 && f.ftgt.(hi - 1) <> owner.(lo) then
      fail "cyclic chain %d does not close on its first member" c
  done;
  (* A fresh sibling (as {!dup}: own counters, own IC) carrying the
     overlay, so attaching fusion never aliases live mutable state. *)
  { (dup t) with fusion = Some f }

let fusion_of t = t.fusion

let is_fused t = t.fusion <> None

let n_chains t =
  match t.fusion with None -> 0 | Some f -> Array.length f.foff - 1

let fused_edges t =
  match t.fusion with
  | None -> 0
  | Some f -> f.foff.(Array.length f.foff - 1)

let n_cyclic_chains t =
  match t.fusion with
  | None -> 0
  | Some f -> Array.fold_left ( + ) 0 f.fcyc

let chain_lengths t =
  match t.fusion with
  | None -> [||]
  | Some f ->
      Array.init
        (Array.length f.foff - 1)
        (fun c -> f.foff.(c + 1) - f.foff.(c))

let check t auto =
  let fresh = freeze auto in
  let a = to_raw t and b = to_raw fresh in
  if
    a.offsets = b.offsets && a.labels = b.labels && a.targets = b.targets
    && a.state_trace = b.state_trace
    && a.state_tbb = b.state_tbb
    && a.state_start = b.state_start
    && a.state_insns = b.state_insns
    && a.hash_keys = b.hash_keys && a.hash_vals = b.hash_vals
    && a.hot_len = b.hot_len && a.orig_of = b.orig_of
  then Ok ()
  else Error "packed image is stale: the automaton changed since freeze"
