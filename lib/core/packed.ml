type raw = {
  offsets : int array;
  labels : int array;
  targets : int array;
  state_trace : int array;
  state_tbb : int array;
  state_start : int array;
  state_insns : int array;
  hash_keys : int array;
  hash_vals : int array;
}

(* The arrays live directly in [t] (rather than behind a nested [raw]
   record) so the step path loads each one with a single indirection. *)
type t = {
  offsets : int array;
  labels : int array;
  targets : int array;
  state_trace : int array;
  state_tbb : int array;
  state_start : int array;
  state_insns : int array;
  hash_keys : int array;
  hash_vals : int array;
  mask : int; (* Array.length hash_keys - 1 *)
  auto : Automaton.t option;
  st : Transition.stats;
  mutable total_cycles : int;
}

(* Cost constants. A binary-search halving is a compare plus a conditional
   move on cache-resident arrays (~1); the hash path pays the multiply +
   mask (~2) plus one probe compare per slot examined; an NTE miss does the
   same cold-code bookkeeping as the reference engine. *)
let cost_search_step = 1

let cost_hash_base = 2

let cost_hash_probe = 1

(* Fibonacci multiplicative hashing; the constant is SplitMix64's golden
   gamma truncated to OCaml's int range. Exported so every probe loop —
   insertion here, {!step}, {!head_of} and the fused batch loop in
   {!Replayer.feed_run} — shares the one definition. *)
let[@inline] hash_pc mask pc = ((pc * 0x2545F4914F6CDD1D) lsr 24) land mask

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let insert_head keys vals mask addr state =
  let rec go i =
    if keys.(i) < 0 || keys.(i) = addr then begin
      keys.(i) <- addr;
      vals.(i) <- state
    end
    else go ((i + 1) land mask)
  in
  go (hash_pc mask addr)

let build_hash heads n_slots =
  let n_heads = List.length heads in
  let size = pow2_at_least (max 8 (2 * n_heads)) 8 in
  let keys = Array.make size (-1) and vals = Array.make size 0 in
  List.iter
    (fun (addr, s) ->
      if addr < 0 then invalid_arg "Packed: negative head address";
      if s < 0 || s >= n_slots then invalid_arg "Packed: head out of range";
      insert_head keys vals (size - 1) addr s)
    heads;
  (keys, vals)

let freeze auto =
  let max_id = ref 0 in
  Automaton.iter_live (fun s _ -> if s > !max_id then max_id := s) auto;
  let n_slots = !max_id + 1 in
  let state_trace = Array.make n_slots (-1) in
  let state_tbb = Array.make n_slots 0 in
  let state_start = Array.make n_slots 0 in
  let state_insns = Array.make n_slots 0 in
  let offsets = Array.make (n_slots + 1) 0 in
  Automaton.iter_live
    (fun s info ->
      state_trace.(s) <- info.Automaton.trace_id;
      state_tbb.(s) <- info.Automaton.tbb_index;
      state_start.(s) <- info.Automaton.block_start;
      state_insns.(s) <- info.Automaton.n_insns;
      offsets.(s + 1) <- List.length (Automaton.edges_of auto s))
    auto;
  for i = 1 to n_slots do
    offsets.(i) <- offsets.(i) + offsets.(i - 1)
  done;
  let n_edges = offsets.(n_slots) in
  let labels = Array.make n_edges 0 and targets = Array.make n_edges 0 in
  Automaton.iter_live
    (fun s _ ->
      let edges =
        List.sort
          (fun (a, _) (b, _) -> Int.compare a b)
          (Automaton.edges_of auto s)
      in
      List.iteri
        (fun i (label, dst) ->
          labels.(offsets.(s) + i) <- label;
          targets.(offsets.(s) + i) <- dst)
        edges)
    auto;
  let hash_keys, hash_vals = build_hash (Automaton.heads auto) n_slots in
  {
    offsets;
    labels;
    targets;
    state_trace;
    state_tbb;
    state_start;
    state_insns;
    hash_keys;
    hash_vals;
    mask = Array.length hash_keys - 1;
    auto = Some auto;
    st = Transition.fresh_stats ();
    total_cycles = 0;
  }

(* The flat arrays are immutable after freeze; only [st] and
   [total_cycles] mutate during replay. Sharing those across domains would
   race, so a parallel driver gives each worker its own counter block over
   the same arrays. *)
let dup t = { t with st = Transition.fresh_stats (); total_cycles = 0 }

let n_slots t = Array.length t.offsets - 1

let n_states t =
  Array.fold_left (fun acc tr -> if tr >= 0 then acc + 1 else acc) 0 t.state_trace

let n_edges t = Array.length t.labels

let n_heads t =
  Array.fold_left (fun acc k -> if k >= 0 then acc + 1 else acc) 0 t.hash_keys

let automaton t = t.auto

let stats t = t.st

let cycles t = t.total_cycles

let add_cycles t n = t.total_cycles <- t.total_cycles + n

let reset_counters t =
  t.total_cycles <- 0;
  let st = t.st in
  st.Transition.steps <- 0;
  st.Transition.in_trace_hits <- 0;
  st.Transition.cache_hits <- 0;
  st.Transition.global_hits <- 0;
  st.Transition.global_misses <- 0

let state_insns t s =
  if s >= 0 && s < n_slots t then t.state_insns.(s) else 0

(* Pure lookup used by tests/tools; [step] inlines its own probe loop so
   the hot path charges costs without an option allocation. *)
let head_of t pc =
  let keys = t.hash_keys and mask = t.mask in
  let rec go i =
    let k = Array.unsafe_get keys i in
    if k = pc then Some (Array.unsafe_get t.hash_vals i)
    else if k < 0 then None
    else go ((i + 1) land mask)
  in
  if pc < 0 then None else go (hash_pc mask pc)

(* The hot path is written with tail-recursive helpers carrying their
   accumulators in arguments: without flambda a [ref] is a minor-heap
   allocation, and five of those per step cost more than the search itself.
   Each helper charges its simulated cycles into [total_cycles] at its
   terminal case, so the accounting is identical to the obvious loop. *)

(* Branchless lower-bound over a sorted span; charges one
   [cost_search_step] per halving plus one for the final compare. *)
let rec lower_bound t labels pc base len cost =
  if len <= 1 then begin
    t.total_cycles <- t.total_cycles + cost + cost_search_step;
    base
  end
  else
    let half = len lsr 1 in
    let base =
      if Array.unsafe_get labels (base + half) <= pc then base + half else base
    in
    lower_bound t labels pc base (len - half) (cost + cost_search_step)

(* Open-addressing probe; returns the head state or -1, charging one
   [cost_hash_probe] per slot examined (terminal slot included). *)
let rec probe t keys vals mask pc i cost =
  let k = Array.unsafe_get keys i in
  if k = pc then begin
    t.total_cycles <- t.total_cycles + cost;
    Array.unsafe_get vals i
  end
  else if k < 0 then begin
    t.total_cycles <- t.total_cycles + cost;
    -1
  end
  else probe t keys vals mask pc ((i + 1) land mask) (cost + cost_hash_probe)

let step t state pc =
  if state < 0 || state + 1 >= Array.length t.offsets then
    invalid_arg "Packed.step: state id outside the frozen image";
  let st = t.st in
  st.Transition.steps <- st.Transition.steps + 1;
  let lo = Array.unsafe_get t.offsets state in
  let hi = Array.unsafe_get t.offsets (state + 1) in
  (* In-trace transition: lower-bound over the state's sorted span, then
     one equality check. *)
  let hit =
    if hi > lo then begin
      let b = lower_bound t t.labels pc lo (hi - lo) 0 in
      if Array.unsafe_get t.labels b = pc then Array.unsafe_get t.targets b
      else -1
    end
    else -1
  in
  (* [m] is [None] whenever telemetry is off, so the disabled per-step
     cost is one atomic load and the option matches below. *)
  let m = Tea_telemetry.Probe.metrics () in
  if hit >= 0 then begin
    st.Transition.in_trace_hits <- st.Transition.in_trace_hits + 1;
    (match m with
    | None -> ()
    | Some m -> Tea_telemetry.Metrics.count m "packed.in_trace_hit" 1);
    hit
  end
  else begin
    (* Cross-trace / cold path: hash the PC and probe for a trace head. *)
    t.total_cycles <- t.total_cycles + cost_hash_base;
    let c0 = t.total_cycles in
    let found =
      probe t t.hash_keys t.hash_vals t.mask pc (hash_pc t.mask pc)
        cost_hash_probe
    in
    (* [probe] charges [cost_hash_probe] (= 1) per slot examined, so the
       cycles delta is exactly the probe length. *)
    (match m with
    | None -> ()
    | Some m ->
        Tea_telemetry.Metrics.observe_value m "packed.hash_probe_len"
          ((t.total_cycles - c0) / cost_hash_probe));
    if found >= 0 then begin
      st.Transition.global_hits <- st.Transition.global_hits + 1;
      (match m with
      | None -> ()
      | Some m -> Tea_telemetry.Metrics.count m "packed.global_hit" 1);
      found
    end
    else begin
      st.Transition.global_misses <- st.Transition.global_misses + 1;
      (match m with
      | None -> ()
      | Some m -> Tea_telemetry.Metrics.count m "packed.global_miss" 1);
      t.total_cycles <- t.total_cycles + Transition.cost_nte_miss;
      Automaton.nte
    end
  end

let to_raw t : raw =
  {
    offsets = t.offsets;
    labels = t.labels;
    targets = t.targets;
    state_trace = t.state_trace;
    state_tbb = t.state_tbb;
    state_start = t.state_start;
    state_insns = t.state_insns;
    hash_keys = t.hash_keys;
    hash_vals = t.hash_vals;
  }

let of_raw (r : raw) =
  let fail fmt = Printf.ksprintf invalid_arg ("Packed.of_raw: " ^^ fmt) in
  let n_slots = Array.length r.offsets - 1 in
  if n_slots < 0 then fail "empty offsets array";
  if r.offsets.(0) <> 0 then fail "offsets must start at 0";
  for i = 0 to n_slots - 1 do
    if r.offsets.(i + 1) < r.offsets.(i) then fail "offsets must be monotone"
  done;
  let n_edges = Array.length r.labels in
  if Array.length r.targets <> n_edges then fail "labels/targets length mismatch";
  if r.offsets.(n_slots) <> n_edges then fail "offsets do not cover the edge array";
  Array.iter
    (fun d -> if d < 0 || d >= n_slots then fail "edge target out of range")
    r.targets;
  for s = 0 to n_slots - 1 do
    for i = r.offsets.(s) + 1 to r.offsets.(s + 1) - 1 do
      if r.labels.(i) <= r.labels.(i - 1) then
        fail "span labels must be strictly increasing"
    done
  done;
  List.iter
    (fun a ->
      if Array.length a <> n_slots then fail "state array length mismatch")
    [ r.state_trace; r.state_tbb; r.state_start; r.state_insns ];
  let hsize = Array.length r.hash_keys in
  if hsize < 1 || hsize land (hsize - 1) <> 0 then
    fail "hash size must be a power of two";
  if Array.length r.hash_vals <> hsize then fail "hash array length mismatch";
  Array.iteri
    (fun i k ->
      if k >= 0 && (r.hash_vals.(i) < 0 || r.hash_vals.(i) >= n_slots) then
        fail "hash value out of range")
    r.hash_keys;
  {
    offsets = r.offsets;
    labels = r.labels;
    targets = r.targets;
    state_trace = r.state_trace;
    state_tbb = r.state_tbb;
    state_start = r.state_start;
    state_insns = r.state_insns;
    hash_keys = r.hash_keys;
    hash_vals = r.hash_vals;
    mask = hsize - 1;
    auto = None;
    st = Transition.fresh_stats ();
    total_cycles = 0;
  }

let check t auto =
  let fresh = freeze auto in
  let a = to_raw t and b = to_raw fresh in
  if
    a.offsets = b.offsets && a.labels = b.labels && a.targets = b.targets
    && a.state_trace = b.state_trace
    && a.state_tbb = b.state_tbb
    && a.state_start = b.state_start
    && a.state_insns = b.state_insns
    && a.hash_keys = b.hash_keys && a.hash_vals = b.hash_vals
  then Ok ()
  else Error "packed image is stale: the automaton changed since freeze"
