(** The packed TEA replay engine: a freeze-time compilation of a built
    automaton into immutable flat int arrays.

    The reference {!Transition} engine walks per-state edge *lists* and a
    B+ tree (or linked list) on every block-to-block transfer — faithful to
    the paper's §4.2 cost discussion, but far from "as fast as the hardware
    allows". [Packed] compiles the same DFA once:

    - states stay the automaton's own dense ids (NTE = 0, tombstones keep
      empty spans), so replayed state sequences are bit-identical to the
      reference engine's;
    - every state's in-trace transitions become a sorted (label, target)
      span inside one shared pair of arrays, resolved by a branchless
      binary search;
    - the NTE / cross-trace path replaces the B+ tree walk with a global
      open-addressing hash from trace-head PC to entry state.

    Freezing is legal whenever the automaton is quiescent: a frozen image
    does NOT observe later {!Automaton.add_trace} / [remove_trace] calls
    (use {!check} to detect staleness, or re-{!freeze}). This mirrors the
    reference engine's own [Transition.refresh] contract.

    Counters use the same {!Transition.stats} record so the Table 2–4
    drivers run unchanged on either engine. The packed engine has no local
    caches: resolutions the reference engine splits between [cache_hits]
    and [global_hits] all land in [global_hits] here ([cache_hits] stays
    0); [steps], [in_trace_hits] and [global_misses] match the reference
    engine exactly.

    {2 Repacked images}

    {!Tea_opt.Repack} produces a second flavor of image
    ({!is_repacked} = true) from a replay profile: states renumbered
    hotness-descending (NTE pinned at slot 0), each edge span split into a
    most-taken-first linear-scan {e hot prefix} plus a label-sorted
    binary-search tail, and a per-state monomorphic {e inline cache}
    (last label/target pair — the packed analogue of DBT trace chaining)
    consulted before any scan. Replay runs in {e slot} space; the
    {!orig_state} / {!slot_of_state} permutation translates ids at
    reporting boundaries, so externally visible TBB mappings are identical
    to the flat image's. An IC hit charges the precomputed cost the scan
    would have charged ({e edge_cost}), keeping simulated cycles a pure
    function of the replayed stream — independent of IC history — which is
    what keeps sharded parallel replay bit-identical to sequential. IC
    effectiveness is observable via {!ic_hits} / {!ic_misses} and the
    [packed.ic_hit] / [packed.ic_miss] telemetry probes, and in wall
    clock.

    {2 Fused images}

    {!Tea_opt.Fuse} attaches a third, purely descriptive layer: a
    {!fusion} overlay marking maximal single-successor chains of states
    (and cycles of such chains) whose next transition is forced whenever
    the incoming PC matches the chain's signature. {!step} ignores the
    overlay entirely — only {!Replayer.feed_run}'s batch loop exploits
    it, matching a run of upcoming PCs against the signature with one
    comparison loop and charging the precomputed per-edge costs in bulk.
    {!with_fusion} re-validates the overlay against the base image
    (every chain edge must restate an existing 1-edge span verbatim,
    with the exact cost the ordinary dispatch charges), so a fused image
    — even one reconstituted from TEAPK3 bytes — can never replay
    differently from its unfused source. *)

type t

val freeze : Automaton.t -> t
(** Compile the automaton's current contents. O(states + transitions). *)

val dup : t -> t
(** A sibling image sharing the same (immutable) flat arrays but with
    fresh, zeroed {!stats} and {!cycles} counters — and, for repacked
    images, a fresh (empty) inline cache, the one mutable part of the
    layout. Siblings are safe to step concurrently from different
    domains. O(1) flat, O(states) repacked. *)

val step : t -> Automaton.state -> int -> Automaton.state
(** [step t state pc] — the DFA transition on label [pc]. Same semantics
    as {!Transition.step}: in-trace edge first, then trace-head lookup,
    else NTE. Accumulates {!cycles} and {!stats}. On a repacked image the
    in-trace resolution order is inline cache, hot prefix, sorted tail.
    @raise Invalid_argument on a state id the frozen image never
    contained. *)

val stats : t -> Transition.stats

val cycles : t -> int
(** Simulated cycles spent in the transition function (packed cost model:
    one cycle per binary-search halving or linear hot-prefix probe,
    {!cost_hash_base} plus one cycle per probe on the hash path, and the
    engine-independent {!Transition.cost_nte_miss} on misses). *)

val reset_counters : t -> unit
(** Zero {!stats}, {!cycles} and the IC counters; empty the inline cache
    of a repacked image so a re-run starts cold. *)

val add_cycles : t -> int -> unit
(** Charge simulated cycles computed outside {!step}. Used by
    {!Replayer.feed_run}, whose fused batch loop replicates the step logic
    and flushes the accumulated cost once per batch. *)

val automaton : t -> Automaton.t option
(** The automaton this image was frozen from; [None] when the image was
    reconstituted from bytes ({!Serialize.packed_of_binary}) — stepping
    and coverage work, per-trace profiles don't. *)

val n_slots : t -> int
(** Array slots (live states + tombstones + NTE); state ids are
    [0 .. n_slots - 1]. *)

val n_states : t -> int
(** Live states compiled in (tombstones excluded, NTE not counted). *)

val n_edges : t -> int
(** In-trace transitions in the shared span array. *)

val n_heads : t -> int
(** Entries in the trace-head hash. *)

val head_of : t -> int -> Automaton.state option
(** Pure hash lookup (no stats side effects), for tests and tools. *)

val hash_pc : int -> int -> int
(** [hash_pc mask pc] — the Fibonacci-multiplicative home slot of [pc] in
    a power-of-two hash of size [mask + 1]. The single definition behind
    head insertion, {!step}, {!head_of} and {!Replayer.feed_run}'s fused
    probe loop. *)

val build_hash : (int * int) list -> int -> int array * int array
(** [build_hash heads n_slots] — the open-addressing (keys, vals) pair
    for a [(addr, state)] association list. Repeated addresses are
    deduplicated before sizing (last value wins, first-occurrence
    insertion order), so the layout is independent of re-insertions.
    Exported for {!Tea_opt.Repack}, which rebuilds the hash over
    renumbered states, and for white-box tests.
    @raise Invalid_argument on a negative address or out-of-range state. *)

val state_insns : t -> Automaton.state -> int
(** Block size recorded for a state (0 for NTE / unknown ids). *)

val check : t -> Automaton.t -> (unit, string) result
(** [check t auto] — is this image still an exact compilation of [auto]?
    [Error] when the automaton changed since {!freeze} (and always for a
    repacked image, whose layout is intentionally permuted). *)

(** {2 Repacked-image accessors} *)

val is_repacked : t -> bool

val hot_edges : t -> int
(** Total edges across all hot prefixes (0 for a flat image). *)

val orig_state : t -> Automaton.state -> Automaton.state
(** Slot id → original automaton state id (identity on flat images and
    out-of-range ids). *)

val slot_of_state : t -> Automaton.state -> Automaton.state
(** Original automaton state id → slot id (inverse of {!orig_state}). *)

val ic_hits : t -> int

val ic_misses : t -> int
(** Inline-cache hit/miss split of [steps] on a repacked image (every
    step is exactly one of the two; both 0 on flat images). Telemetry
    mirrors: [packed.ic_hit] / [packed.ic_miss]. *)

val add_ic : t -> hits:int -> misses:int -> unit
(** Flush IC counters accumulated outside {!step} (the fused batch
    loop). *)

(** Everything the fused batch loop needs for the repacked dispatch, as
    one record of the live arrays (the IC arrays are mutable and filled
    in place). *)
type hot_view = {
  v_offsets : int array;
  v_labels : int array;
  v_targets : int array;
  v_hot_len : int array;
  v_edge_cost : int array;
  v_miss_cost : int array;
  v_ic_label : int array;
  v_ic_target : int array;
  v_ic_cost : int array;
  v_hash_keys : int array;
  v_hash_vals : int array;
}

val hot_view : t -> hot_view
(** @raise Invalid_argument on a flat image. *)

(** {2 Fusion overlay} *)

(** Chain-fusion expansion tables ({!Tea_opt.Fuse}). A slot [s] with
    [fchain.(s) = c >= 0] sits at position [fpos.(s)] of chain [c]; the
    chain's edges are the pooled slice [foff.(c) .. foff.(c+1)) of
    [fsig] (the PC each forced step must observe), [ftgt] (the state it
    lands in) and [fecost] (the simulated cycles the ordinary dispatch
    charges for that resolution). [fcyc.(c) = 1] marks a chain whose
    last edge re-enters its first member — a loop the batch replay loop
    fast-forwards through, charging [k x] the per-iteration cost for [k]
    verified iterations. Unchained slots have [fchain = -1], [fpos = 0]. *)
type fusion = {
  fchain : int array;  (** per-slot chain id, -1 = unchained *)
  fpos : int array;    (** per-slot position within its chain *)
  foff : int array;    (** length chains+1; chain c's edges are
                           [foff.(c) .. foff.(c+1)) *)
  fcyc : int array;    (** per-chain: 1 iff the chain closes on itself *)
  fsig : int array;    (** pooled: expected PC per chain edge *)
  ftgt : int array;    (** pooled: successor slot per chain edge *)
  fecost : int array;  (** pooled: simulated cycles per chain edge *)
}

val with_fusion : t -> fusion -> t
(** A fresh sibling of [t] (as {!dup}: own zeroed counters and inline
    cache) carrying the overlay.
    Validates the overlay against the base arrays: chain ids/positions
    in range and bijective onto pooled slots, NTE never chained, every
    chain edge an exact restatement of a 1-edge span ([fsig]/[ftgt]
    verbatim, [fecost] equal to what the dispatch charges), chain edges
    linked member-to-member, cyclic chains closed on their first member.
    @raise Invalid_argument on any violation. *)

val fusion_of : t -> fusion option

val is_fused : t -> bool

val n_chains : t -> int

val fused_edges : t -> int
(** Total pooled chain edges (= fused original states). *)

val n_cyclic_chains : t -> int

val chain_lengths : t -> int array
(** Per-chain edge count, indexed by chain id ([[||]] unfused). *)

(** {2 Raw array image}

    The exact flat arrays, for serialization ({!Serialize}) and
    white-box tests. [of_raw] validates shape invariants (offset
    monotonicity, per-span label discipline, targets and hash values in
    range, [orig_of] a permutation) and raises [Invalid_argument] on
    violation. *)

type raw = {
  offsets : int array;      (** length slots+1; state s's span is
                                [offsets.(s) .. offsets.(s+1))] *)
  labels : int array;       (** flat image: strictly increasing within
                                each span. Repacked: the span's first
                                [hot_len.(s)] labels are the hot prefix
                                (distinct, most-taken-first), the rest
                                strictly increasing. *)
  targets : int array;      (** state ids (slot ids when repacked) *)
  state_trace : int array;  (** -1 for NTE / tombstones *)
  state_tbb : int array;
  state_start : int array;
  state_insns : int array;
  hash_keys : int array;    (** power-of-two length; -1 = empty slot *)
  hash_vals : int array;
  hot_len : int array;      (** per-slot hot-prefix length; all 0 flat *)
  orig_of : int array;      (** slot → original state id; identity flat *)
}

val to_raw : t -> raw

val of_raw : ?auto:Automaton.t -> ?repacked:bool -> raw -> t
(** [repacked] (default false) selects which span discipline is validated
    and which step dispatch the image uses; [auto] re-attaches the source
    automaton (repacking preserves it so per-trace profiles keep
    working). *)

(** {2 Cost constants} (simulated cycles) *)

val cost_search_step : int
(** Per binary-search halving (branchless compare + select) and per
    hot-prefix linear probe. *)

val halvings : int -> int
(** [halvings m] — iterations of the branchless lower-bound loop over a
    span of [m] labels (= ceil(log2 m), 0 for m ≤ 1). A search therefore
    charges [(halvings m + 1) * cost_search_step]. Exported so
    {!Tea_opt.Repack}'s layout cost model is the engine's, by
    construction. *)

val cost_hash_base : int
(** Fixed cost of entering the hash path (hash computation + index). *)

val cost_hash_probe : int
(** Per open-addressing slot examined. *)
