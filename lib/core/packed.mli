(** The packed TEA replay engine: a freeze-time compilation of a built
    automaton into immutable flat int arrays.

    The reference {!Transition} engine walks per-state edge *lists* and a
    B+ tree (or linked list) on every block-to-block transfer — faithful to
    the paper's §4.2 cost discussion, but far from "as fast as the hardware
    allows". [Packed] compiles the same DFA once:

    - states stay the automaton's own dense ids (NTE = 0, tombstones keep
      empty spans), so replayed state sequences are bit-identical to the
      reference engine's;
    - every state's in-trace transitions become a sorted (label, target)
      span inside one shared pair of arrays, resolved by a branchless
      binary search;
    - the NTE / cross-trace path replaces the B+ tree walk with a global
      open-addressing hash from trace-head PC to entry state.

    Freezing is legal whenever the automaton is quiescent: a frozen image
    does NOT observe later {!Automaton.add_trace} / [remove_trace] calls
    (use {!check} to detect staleness, or re-{!freeze}). This mirrors the
    reference engine's own [Transition.refresh] contract.

    Counters use the same {!Transition.stats} record so the Table 2–4
    drivers run unchanged on either engine. The packed engine has no local
    caches: resolutions the reference engine splits between [cache_hits]
    and [global_hits] all land in [global_hits] here ([cache_hits] stays
    0); [steps], [in_trace_hits] and [global_misses] match the reference
    engine exactly. *)

type t

val freeze : Automaton.t -> t
(** Compile the automaton's current contents. O(states + transitions). *)

val dup : t -> t
(** A sibling image sharing the same (immutable) flat arrays but with
    fresh, zeroed {!stats} and {!cycles} counters. The arrays are never
    written after {!freeze}, so siblings are safe to step concurrently
    from different domains; only the counter block is per-sibling. O(1). *)

val step : t -> Automaton.state -> int -> Automaton.state
(** [step t state pc] — the DFA transition on label [pc]. Same semantics
    as {!Transition.step}: in-trace edge first, then trace-head lookup,
    else NTE. Accumulates {!cycles} and {!stats}.
    @raise Invalid_argument on a state id the frozen image never
    contained. *)

val stats : t -> Transition.stats

val cycles : t -> int
(** Simulated cycles spent in the transition function (packed cost model:
    one cycle per binary-search halving, {!cost_hash_base} plus one cycle
    per probe on the hash path, and the engine-independent
    {!Transition.cost_nte_miss} on misses). *)

val reset_counters : t -> unit

val add_cycles : t -> int -> unit
(** Charge simulated cycles computed outside {!step}. Used by
    {!Replayer.feed_run}, whose fused batch loop replicates the step logic
    and flushes the accumulated cost once per batch. *)

val automaton : t -> Automaton.t option
(** The automaton this image was frozen from; [None] when the image was
    reconstituted from bytes ({!Serialize.packed_of_binary}) — stepping
    and coverage work, per-trace profiles don't. *)

val n_states : t -> int
(** Live states compiled in (tombstones excluded, NTE not counted). *)

val n_edges : t -> int
(** In-trace transitions in the shared span array. *)

val n_heads : t -> int
(** Entries in the trace-head hash. *)

val head_of : t -> int -> Automaton.state option
(** Pure hash lookup (no stats side effects), for tests and tools. *)

val hash_pc : int -> int -> int
(** [hash_pc mask pc] — the Fibonacci-multiplicative home slot of [pc] in
    a power-of-two hash of size [mask + 1]. The single definition behind
    head insertion, {!step}, {!head_of} and {!Replayer.feed_run}'s fused
    probe loop. *)

val state_insns : t -> Automaton.state -> int
(** Block size recorded for a state (0 for NTE / unknown ids). *)

val check : t -> Automaton.t -> (unit, string) result
(** [check t auto] — is this image still an exact compilation of [auto]?
    [Error] when the automaton changed since {!freeze}. *)

(** {2 Raw array image}

    The exact flat arrays, for serialization ({!Serialize}) and
    white-box tests. [of_raw] validates shape invariants (offset
    monotonicity, sorted unique labels per span, targets and hash values
    in range) and raises [Invalid_argument] on violation. *)

type raw = {
  offsets : int array;      (** length slots+1; state s's span is
                                [offsets.(s) .. offsets.(s+1))] *)
  labels : int array;       (** strictly increasing within each span *)
  targets : int array;      (** automaton state ids *)
  state_trace : int array;  (** -1 for NTE / tombstones *)
  state_tbb : int array;
  state_start : int array;
  state_insns : int array;
  hash_keys : int array;    (** power-of-two length; -1 = empty slot *)
  hash_vals : int array;
}

val to_raw : t -> raw

val of_raw : raw -> t

(** {2 Cost constants} (simulated cycles) *)

val cost_search_step : int
(** Per binary-search halving (branchless compare + select). *)

val cost_hash_base : int
(** Fixed cost of entering the hash path (hash computation + index). *)

val cost_hash_probe : int
(** Per open-addressing slot examined. *)
