type format = V1 | V2

type writer = {
  oc : out_channel;
  format : format;
  dict : (int * int, int) Hashtbl.t; (* v2: (delta, insns) -> token *)
  mutable next_id : int;
  mutable prev : int;
  mutable closed : bool;
}

let magic = "TEAPC1\n"

let magic_v2 = "PCTR2\n"

(* Decoder memory bound: a hostile or degenerate stream registers at
   most this many dictionary pairs; later literals simply stay
   unregistered (still decodable, just not back-referenced). *)
let dict_cap = 1 lsl 20

exception Corrupt of string

let open_writer ?(format = V2) path =
  let oc = open_out_bin path in
  output_string oc (match format with V1 -> magic | V2 -> magic_v2);
  {
    oc;
    format;
    dict = Hashtbl.create 256;
    next_id = 1;
    prev = 0;
    closed = false;
  }

let zigzag v = if v >= 0 then v lsl 1 else ((-v) lsl 1) - 1

let unzigzag v = if v land 1 = 0 then v lsr 1 else -((v + 1) lsr 1)

let rec write_varint oc v =
  if v < 0x80 then output_byte oc v
  else begin
    output_byte oc (0x80 lor (v land 0x7F));
    write_varint oc (v lsr 7)
  end

let write w ~start ~insns =
  if w.closed then invalid_arg "Pc_trace.write: writer closed";
  if insns < 0 then invalid_arg "Pc_trace.write: negative instruction count";
  let delta = start - w.prev in
  (match w.format with
  | V1 ->
      write_varint w.oc (zigzag delta);
      write_varint w.oc insns
  | V2 -> (
      (* Dictionary pair-coding: a (delta, insns) pair seen before is one
         small varint token; loops replay the same few pairs over and
         over, so steady-state records cost ~1 byte instead of the
         v1 delta + count pair. Token 0 escapes to a literal record,
         which registers the pair under the next free token. *)
      match Hashtbl.find_opt w.dict (delta, insns) with
      | Some id -> write_varint w.oc id
      | None ->
          write_varint w.oc 0;
          write_varint w.oc (zigzag delta);
          write_varint w.oc insns;
          if w.next_id < dict_cap then begin
            Hashtbl.add w.dict (delta, insns) w.next_id;
            w.next_id <- w.next_id + 1
          end));
  w.prev <- start

let close_writer w =
  if not w.closed then begin
    w.closed <- true;
    close_out w.oc
  end

(* ---- decoding ----

   Both formats decode from a whole-file string: one read, then a tight
   index loop — measurably faster than the per-byte [input_byte] channel
   loop the v1 decoder used, and it makes truncation checks exact. *)

let read_varint_s s pos =
  let len = String.length s in
  let rec go shift acc =
    if !pos >= len then raise (Corrupt "truncated varint");
    let b = Char.code (String.unsafe_get s !pos) in
    incr pos;
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc
    else if shift > 56 then raise (Corrupt "varint too long")
    else go (shift + 7) acc
  in
  go 0 0

let fold path init f =
  let s =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let len = String.length s in
  let v2len = String.length magic_v2 in
  let v1len = String.length magic in
  (* Sniff: v2's shorter magic first, then v1; a file too short for
     either header is truncated, a long-enough one with neither magic is
     foreign. *)
  let version, start_pos =
    if len >= v2len && String.sub s 0 v2len = magic_v2 then (2, v2len)
    else if len < v1len then raise (Corrupt "truncated header")
    else if String.sub s 0 v1len = magic then (1, v1len)
    else raise (Corrupt "bad magic")
  in
  let pos = ref start_pos in
  if version = 1 then begin
    let rec loop acc prev =
      if !pos >= len then acc
      else begin
        let delta = unzigzag (read_varint_s s pos) in
        let insns = read_varint_s s pos in
        let start = prev + delta in
        loop (f acc ~start ~insns) start
      end
    in
    loop init 0
  end
  else begin
    (* v2: rebuild the writer's dictionary as tokens stream in *)
    let cap = ref 256 in
    let ddelta = ref (Array.make !cap 0) in
    let dinsns = ref (Array.make !cap 0) in
    let next_id = ref 1 in
    let register delta insns =
      if !next_id < dict_cap then begin
        if !next_id >= !cap then begin
          let ncap = 2 * !cap in
          let nd = Array.make ncap 0 and ni = Array.make ncap 0 in
          Array.blit !ddelta 0 nd 0 !cap;
          Array.blit !dinsns 0 ni 0 !cap;
          ddelta := nd;
          dinsns := ni;
          cap := ncap
        end;
        !ddelta.(!next_id) <- delta;
        !dinsns.(!next_id) <- insns;
        incr next_id
      end
    in
    let rec loop acc prev =
      if !pos >= len then acc
      else begin
        let token = read_varint_s s pos in
        let delta, insns =
          if token = 0 then begin
            let delta = unzigzag (read_varint_s s pos) in
            let insns = read_varint_s s pos in
            register delta insns;
            (delta, insns)
          end
          else if token < !next_id then
            ((!ddelta).(token), (!dinsns).(token))
          else raise (Corrupt "bad dictionary token")
        in
        let start = prev + delta in
        loop (f acc ~start ~insns) start
      end
    in
    loop init 0
  end

let length path = fold path 0 (fun n ~start:_ ~insns:_ -> n + 1)

let default_chunk = 4096

let iter_chunks ?(chunk = default_chunk) path f =
  if chunk <= 0 then invalid_arg "Pc_trace.iter_chunks: chunk must be positive";
  let starts = Array.make chunk 0 and insns_buf = Array.make chunk 0 in
  let fill = ref 0 in
  let flush () =
    if !fill > 0 then begin
      f ~starts ~insns:insns_buf ~len:!fill;
      fill := 0
    end
  in
  fold path () (fun () ~start ~insns ->
      starts.(!fill) <- start;
      insns_buf.(!fill) <- insns;
      incr fill;
      if !fill = chunk then flush ());
  flush ()

let replay trans path =
  let rep = Replayer.create trans in
  fold path () (fun () ~start ~insns -> Replayer.feed_addr rep ~insns start);
  rep

let replay_packed packed path =
  let rep = Replayer.create_packed packed in
  iter_chunks path (fun ~starts ~insns ~len ->
      Replayer.feed_run rep ~insns starts ~len);
  rep
