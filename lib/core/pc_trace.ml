type format = V1 | V2 | V3

type event =
  | Block of { start : int; insns : int }
  | Switch of { asid : int }
  | Invalidate of { asid : int }
  | Interrupt

type writer = {
  oc : out_channel;
  format : format;
  dict : (int * int, int) Hashtbl.t; (* v2/v3: (delta, insns) -> token *)
  mutable next_id : int;
  mutable prev : int; (* current asid's previous start address *)
  mutable cur_asid : int;
  parked : (int, int) Hashtbl.t; (* v3: prev of every non-current asid *)
  mutable closed : bool;
}

let magic = "TEAPC1\n"

let magic_v2 = "PCTR2\n"

let magic_v3 = "PCTR3\n"

(* v3 reserves the low tokens for events; dictionary ids start above
   them. v2 has no events, so only the literal escape 0 is reserved. *)
let tok_literal = 0

let tok_switch = 1

let tok_invalidate = 2

let tok_interrupt = 3

let first_dict_id = function V1 | V2 -> 1 | V3 -> tok_interrupt + 1

(* Decoder memory bound: a hostile or degenerate stream registers at
   most this many dictionary pairs; later literals simply stay
   unregistered (still decodable, just not back-referenced). *)
let dict_cap = 1 lsl 20

exception Corrupt of string

let open_writer ?(format = V2) path =
  let oc = open_out_bin path in
  output_string oc
    (match format with V1 -> magic | V2 -> magic_v2 | V3 -> magic_v3);
  {
    oc;
    format;
    dict = Hashtbl.create 256;
    next_id = first_dict_id format;
    prev = 0;
    cur_asid = 0;
    parked = Hashtbl.create 8;
    closed = false;
  }

let zigzag v = if v >= 0 then v lsl 1 else ((-v) lsl 1) - 1

let unzigzag v = if v land 1 = 0 then v lsr 1 else -((v + 1) lsr 1)

let rec write_varint oc v =
  if v < 0x80 then output_byte oc v
  else begin
    output_byte oc (0x80 lor (v land 0x7F));
    write_varint oc (v lsr 7)
  end

let write w ~start ~insns =
  if w.closed then invalid_arg "Pc_trace.write: writer closed";
  if insns < 0 then invalid_arg "Pc_trace.write: negative instruction count";
  let delta = start - w.prev in
  (match w.format with
  | V1 ->
      write_varint w.oc (zigzag delta);
      write_varint w.oc insns
  | V2 | V3 -> (
      (* Dictionary pair-coding: a (delta, insns) pair seen before is one
         small varint token; loops replay the same few pairs over and
         over, so steady-state records cost ~1 byte instead of the
         v1 delta + count pair. Token 0 escapes to a literal record,
         which registers the pair under the next free token. *)
      match Hashtbl.find_opt w.dict (delta, insns) with
      | Some id -> write_varint w.oc id
      | None ->
          write_varint w.oc tok_literal;
          write_varint w.oc (zigzag delta);
          write_varint w.oc insns;
          if w.next_id < dict_cap then begin
            Hashtbl.add w.dict (delta, insns) w.next_id;
            w.next_id <- w.next_id + 1
          end));
  w.prev <- start

let require_v3 w what =
  if w.closed then invalid_arg ("Pc_trace." ^ what ^ ": writer closed");
  if w.format <> V3 then
    invalid_arg ("Pc_trace." ^ what ^ ": events require a V3 writer")

(* Each asid runs its own delta chain — interleaving must not destroy the
   in-loop locality the dictionary coder feeds on — so a switch parks the
   outgoing asid's [prev] and restores (or zeroes) the incoming one's. *)
let switch_asid w asid =
  require_v3 w "switch_asid";
  if asid < 0 then invalid_arg "Pc_trace.switch_asid: negative asid";
  write_varint w.oc tok_switch;
  write_varint w.oc asid;
  if asid <> w.cur_asid then begin
    Hashtbl.replace w.parked w.cur_asid w.prev;
    w.prev <- (match Hashtbl.find_opt w.parked asid with Some p -> p | None -> 0);
    w.cur_asid <- asid
  end

let invalidate w asid =
  require_v3 w "invalidate";
  if asid < 0 then invalid_arg "Pc_trace.invalidate: negative asid";
  write_varint w.oc tok_invalidate;
  write_varint w.oc asid

let interrupt w =
  require_v3 w "interrupt";
  write_varint w.oc tok_interrupt

let write_event w = function
  | Block { start; insns } -> write w ~start ~insns
  | Switch { asid } -> switch_asid w asid
  | Invalidate { asid } -> invalidate w asid
  | Interrupt -> interrupt w

let close_writer w =
  if not w.closed then begin
    w.closed <- true;
    close_out w.oc
  end

(* ---- decoding ----

   All formats decode from a whole-file string: one read, then a tight
   index loop — measurably faster than the per-byte [input_byte] channel
   loop the v1 decoder used, and it makes truncation checks exact. *)

let read_varint_s s pos =
  let len = String.length s in
  let rec go shift acc =
    if !pos >= len then raise (Corrupt "truncated varint");
    let b = Char.code (String.unsafe_get s !pos) in
    incr pos;
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc
    else if shift > 56 then raise (Corrupt "varint too long")
    else go (shift + 7) acc
  in
  go 0 0

(* Whole-input slurp. [in_channel_length] only works on seekable files —
   on a pipe, FIFO, socket or tty the underlying lseek fails — so those
   fall back to chunked reads until EOF. ["-"] reads standard input. *)
let read_channel ic =
  let chunked () =
    let chunk = 65536 in
    let buf = Buffer.create chunk in
    let b = Bytes.create chunk in
    let rec go () =
      let k = input ic b 0 chunk in
      if k > 0 then begin
        Buffer.add_subbytes buf b 0 k;
        go ()
      end
    in
    go ();
    Buffer.contents buf
  in
  match in_channel_length ic with
  | exception Sys_error _ -> chunked ()
  | n when n <= 0 -> chunked ()
  | n -> really_input_string ic n

let read_all path =
  if path = "-" then begin
    set_binary_mode_in stdin true;
    read_channel stdin
  end
  else
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)

(* Magic classification, shared by the whole-file sniff and the streaming
   decoder. A prefix is [`Short] only while it could still grow into one
   of the magics — a short-but-foreign input is [Corrupt "bad magic"],
   not "truncated header". *)
let classify_magic s len =
  let matches m =
    let ml = String.length m in
    len >= ml && String.sub s 0 ml = m
  in
  let could_grow_into m =
    len < String.length m && String.sub s 0 len = String.sub m 0 len
  in
  if matches magic_v2 then `Found (2, String.length magic_v2)
  else if matches magic_v3 then `Found (3, String.length magic_v3)
  else if matches magic then `Found (1, String.length magic)
  else if could_grow_into magic_v2 || could_grow_into magic_v3
          || could_grow_into magic then `Short
  else raise (Corrupt "bad magic")

let sniff s =
  match classify_magic s (String.length s) with
  | `Found vp -> vp
  | `Short -> raise (Corrupt "truncated header")

let fold_v1 s start_pos init f =
  let len = String.length s in
  let pos = ref start_pos in
  let rec loop acc prev =
    if !pos >= len then acc
    else begin
      let delta = unzigzag (read_varint_s s pos) in
      let insns = read_varint_s s pos in
      let start = prev + delta in
      loop (f acc ~start ~insns) start
    end
  in
  loop init 0

(* Shared v2/v3 dictionary state, rebuilt as tokens stream in. *)
type dict = {
  mutable ddelta : int array;
  mutable dinsns : int array;
  mutable cap : int;
  mutable next : int;
  base : int; (* first dictionary id for this format *)
}

let dict_create base =
  { ddelta = Array.make 256 0; dinsns = Array.make 256 0; cap = 256; next = base; base }

let dict_register d delta insns =
  if d.next < dict_cap then begin
    if d.next >= d.cap then begin
      let ncap = 2 * d.cap in
      let nd = Array.make ncap 0 and ni = Array.make ncap 0 in
      Array.blit d.ddelta 0 nd 0 d.cap;
      Array.blit d.dinsns 0 ni 0 d.cap;
      d.ddelta <- nd;
      d.dinsns <- ni;
      d.cap <- ncap
    end;
    d.ddelta.(d.next) <- delta;
    d.dinsns.(d.next) <- insns;
    d.next <- d.next + 1
  end

let fold_v2 s start_pos init f =
  let len = String.length s in
  let pos = ref start_pos in
  let d = dict_create 1 in
  let rec loop acc prev =
    if !pos >= len then acc
    else begin
      let token = read_varint_s s pos in
      let delta, insns =
        if token = tok_literal then begin
          let delta = unzigzag (read_varint_s s pos) in
          let insns = read_varint_s s pos in
          dict_register d delta insns;
          (delta, insns)
        end
        else if token < d.next then (d.ddelta.(token), d.dinsns.(token))
        else raise (Corrupt "bad dictionary token")
      in
      let start = prev + delta in
      loop (f acc ~start ~insns) start
    end
  in
  loop init 0

(* v3: the v2 dictionary loop plus the event tokens and per-asid delta
   chains. [f] sees every event with the asid it lands on — for [Switch]
   that is the asid being switched {e to}. *)
let fold_v3 s start_pos init f =
  let len = String.length s in
  let pos = ref start_pos in
  let d = dict_create (first_dict_id V3) in
  let parked = Hashtbl.create 8 in
  let cur_asid = ref 0 in
  let prev = ref 0 in
  let rec loop acc =
    if !pos >= len then acc
    else begin
      let token = read_varint_s s pos in
      if token = tok_switch then begin
        let asid = read_varint_s s pos in
        if asid <> !cur_asid then begin
          Hashtbl.replace parked !cur_asid !prev;
          prev :=
            (match Hashtbl.find_opt parked asid with Some p -> p | None -> 0);
          cur_asid := asid
        end;
        loop (f acc ~asid (Switch { asid }))
      end
      else if token = tok_invalidate then begin
        let asid = read_varint_s s pos in
        loop (f acc ~asid:!cur_asid (Invalidate { asid }))
      end
      else if token = tok_interrupt then loop (f acc ~asid:!cur_asid Interrupt)
      else begin
        let delta, insns =
          if token = tok_literal then begin
            let delta = unzigzag (read_varint_s s pos) in
            let insns = read_varint_s s pos in
            dict_register d delta insns;
            (delta, insns)
          end
          else if token < d.next then (d.ddelta.(token), d.dinsns.(token))
          else raise (Corrupt "bad dictionary token")
        in
        let start = !prev + delta in
        prev := start;
        loop (f acc ~asid:!cur_asid (Block { start; insns }))
      end
    end
  in
  loop init

let fold_events path init f =
  let s = read_all path in
  let version, pos0 = sniff s in
  match version with
  | 1 ->
      fold_v1 s pos0 init (fun acc ~start ~insns ->
          f acc ~asid:0 (Block { start; insns }))
  | 2 ->
      fold_v2 s pos0 init (fun acc ~start ~insns ->
          f acc ~asid:0 (Block { start; insns }))
  | _ -> fold_v3 s pos0 init f

(* The single-stream view. A v3 file folds iff it is a plain block
   stream: any Switch/Invalidate/Interrupt means the caller would be
   silently replaying an interleaved or cut stream against one automaton,
   so it is rejected rather than mis-decoded. *)
let fold path init f =
  let s = read_all path in
  let version, pos0 = sniff s in
  match version with
  | 1 -> fold_v1 s pos0 init f
  | 2 -> fold_v2 s pos0 init f
  | _ ->
      fold_v3 s pos0 init (fun acc ~asid:_ ev ->
          match ev with
          | Block { start; insns } -> f acc ~start ~insns
          | Switch _ | Invalidate _ | Interrupt ->
              raise
                (Corrupt
                   "v3 event stream is not a single PC stream (use \
                    fold_events)"))

let length path =
  fold_events path 0 (fun n ~asid:_ ev ->
      match ev with Block _ -> n + 1 | _ -> n)

(* ---- incremental decoding ----

   The daemon path: trace bytes arrive over a socket in arbitrary chunks
   (a frame can split a varint, even the magic), so the decoder keeps the
   undecoded suffix buffered and replays each *complete* record as it
   materializes. Record parsing is transactional — all of a record's
   varints are read before any decoder state (dictionary, delta chains,
   current asid) is committed, so a chunk boundary in the middle of a
   literal simply parks the bytes until the next feed. The whole-file
   folds above stay the fast path for seekable files. *)

type decoder = {
  mutable dbuf : Bytes.t; (* buffered input; [dpos..dlen) undecoded *)
  mutable dlen : int;
  mutable dpos : int;
  mutable dversion : int; (* 0 until the magic is sniffed *)
  mutable ddict : dict;
  dparked : (int, int) Hashtbl.t;
  mutable dcur_asid : int;
  mutable dprev : int;
  mutable dfinished : bool;
}

exception Need_more

let decoder () =
  {
    dbuf = Bytes.create 4096;
    dlen = 0;
    dpos = 0;
    dversion = 0;
    ddict = dict_create 1;
    dparked = Hashtbl.create 8;
    dcur_asid = 0;
    dprev = 0;
    dfinished = false;
  }

let decoder_format d =
  match d.dversion with
  | 1 -> Some V1
  | 2 -> Some V2
  | 3 -> Some V3
  | _ -> None

let decoder_pending d = d.dlen - d.dpos

(* Append [s.[off..off+len)], compacting the consumed prefix first so the
   buffer never grows past (pending record + one feed). *)
let decoder_append d s off len =
  if d.dpos > 0 then begin
    Bytes.blit d.dbuf d.dpos d.dbuf 0 (d.dlen - d.dpos);
    d.dlen <- d.dlen - d.dpos;
    d.dpos <- 0
  end;
  let need = d.dlen + len in
  if need > Bytes.length d.dbuf then begin
    let cap = ref (2 * Bytes.length d.dbuf) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let nb = Bytes.create !cap in
    Bytes.blit d.dbuf 0 nb 0 d.dlen;
    d.dbuf <- nb
  end;
  Bytes.blit_string s off d.dbuf d.dlen len;
  d.dlen <- need

let dread_varint buf len pos =
  let rec go shift acc =
    if !pos >= len then raise Need_more;
    let b = Char.code (Bytes.unsafe_get buf !pos) in
    incr pos;
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc
    else if shift > 56 then raise (Corrupt "varint too long")
    else go (shift + 7) acc
  in
  go 0 0

(* One record, transactionally: parse fully (raising [Need_more] without
   side effects on a chunk boundary), then commit and emit. Returns false
   when the buffer holds no complete record. *)
let decoder_step d emit =
  if d.dpos >= d.dlen then false
  else begin
    let pos = ref d.dpos in
    let buf = d.dbuf and len = d.dlen in
    let action =
      try
        let v = d.dversion in
        if v = 1 then begin
          let delta = unzigzag (dread_varint buf len pos) in
          let insns = dread_varint buf len pos in
          Some (`Blk (delta, insns, false))
        end
        else begin
          let token = dread_varint buf len pos in
          if v = 3 && token = tok_switch then
            Some (`Sw (dread_varint buf len pos))
          else if v = 3 && token = tok_invalidate then
            Some (`Inv (dread_varint buf len pos))
          else if v = 3 && token = tok_interrupt then Some `Irq
          else if token = tok_literal then begin
            let delta = unzigzag (dread_varint buf len pos) in
            let insns = dread_varint buf len pos in
            Some (`Blk (delta, insns, true))
          end
          else if token < d.ddict.next then
            Some (`Blk (d.ddict.ddelta.(token), d.ddict.dinsns.(token), false))
          else raise (Corrupt "bad dictionary token")
        end
      with Need_more -> None
    in
    match action with
    | None -> false
    | Some action ->
        d.dpos <- !pos;
        (match action with
        | `Blk (delta, insns, register) ->
            if register then dict_register d.ddict delta insns;
            let start = d.dprev + delta in
            d.dprev <- start;
            emit ~asid:d.dcur_asid (Block { start; insns })
        | `Sw asid ->
            if asid <> d.dcur_asid then begin
              Hashtbl.replace d.dparked d.dcur_asid d.dprev;
              d.dprev <-
                (match Hashtbl.find_opt d.dparked asid with
                | Some p -> p
                | None -> 0);
              d.dcur_asid <- asid
            end;
            emit ~asid (Switch { asid })
        | `Inv asid -> emit ~asid:d.dcur_asid (Invalidate { asid })
        | `Irq -> emit ~asid:d.dcur_asid Interrupt);
        true
  end

let decoder_feed d ?(off = 0) ?len s emit =
  if d.dfinished then invalid_arg "Pc_trace.decoder_feed: decoder finished";
  let len = match len with Some l -> l | None -> String.length s - off in
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Pc_trace.decoder_feed: bad substring";
  decoder_append d s off len;
  if d.dversion = 0 then begin
    (* longest magic is 7 bytes; classify on what we have *)
    let hl = min d.dlen 7 in
    let head = Bytes.sub_string d.dbuf d.dpos hl in
    match classify_magic head hl with
    | `Short -> () (* keep buffering the header *)
    | `Found (v, hlen) ->
        d.dpos <- d.dpos + hlen;
        d.dversion <- v;
        d.ddict <- dict_create (first_dict_id (match v with 1 -> V1 | 2 -> V2 | _ -> V3))
  end;
  if d.dversion <> 0 then
    while decoder_step d emit do
      ()
    done

let decoder_finish d =
  if not d.dfinished then begin
    if d.dversion = 0 then raise (Corrupt "truncated header");
    if d.dpos < d.dlen then raise (Corrupt "truncated varint");
    d.dfinished <- true
  end

let default_chunk = 4096

let iter_chunks ?(chunk = default_chunk) path f =
  if chunk <= 0 then invalid_arg "Pc_trace.iter_chunks: chunk must be positive";
  let starts = Array.make chunk 0 and insns_buf = Array.make chunk 0 in
  let fill = ref 0 in
  let flush () =
    if !fill > 0 then begin
      f ~starts ~insns:insns_buf ~len:!fill;
      fill := 0
    end
  in
  fold path () (fun () ~start ~insns ->
      starts.(!fill) <- start;
      insns_buf.(!fill) <- insns;
      incr fill;
      if !fill = chunk then flush ());
  flush ()

let replay trans path =
  let rep = Replayer.create trans in
  fold path () (fun () ~start ~insns -> Replayer.feed_addr rep ~insns start);
  rep

let replay_packed packed path =
  let rep = Replayer.create_packed packed in
  iter_chunks path (fun ~starts ~insns ~len ->
      Replayer.feed_run rep ~insns starts ~len);
  rep
