type writer = {
  oc : out_channel;
  mutable prev : int;
  mutable closed : bool;
}

let magic = "TEAPC1\n"

exception Corrupt of string

let open_writer path =
  let oc = open_out_bin path in
  output_string oc magic;
  { oc; prev = 0; closed = false }

let zigzag v = if v >= 0 then v lsl 1 else ((-v) lsl 1) - 1

let unzigzag v = if v land 1 = 0 then v lsr 1 else -((v + 1) lsr 1)

let rec write_varint oc v =
  if v < 0x80 then output_byte oc v
  else begin
    output_byte oc (0x80 lor (v land 0x7F));
    write_varint oc (v lsr 7)
  end

let write w ~start ~insns =
  if w.closed then invalid_arg "Pc_trace.write: writer closed";
  if insns < 0 then invalid_arg "Pc_trace.write: negative instruction count";
  write_varint w.oc (zigzag (start - w.prev));
  write_varint w.oc insns;
  w.prev <- start

let close_writer w =
  if not w.closed then begin
    w.closed <- true;
    close_out w.oc
  end

let read_varint ic =
  let rec go shift acc =
    match input_byte ic with
    | exception End_of_file -> raise (Corrupt "truncated varint")
    | b ->
        let acc = acc lor ((b land 0x7F) lsl shift) in
        if b land 0x80 = 0 then acc
        else if shift > 56 then raise (Corrupt "varint too long")
        else go (shift + 7) acc
  in
  go 0 0

let fold path init f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header =
        try really_input_string ic (String.length magic)
        with End_of_file -> raise (Corrupt "truncated header")
      in
      if header <> magic then raise (Corrupt "bad magic");
      let rec loop acc prev =
        (* detect EOF cleanly at a record boundary *)
        match input_byte ic with
        | exception End_of_file -> acc
        | first ->
            let delta =
              if first land 0x80 = 0 then unzigzag first
              else
                let rest = read_varint ic in
                unzigzag ((first land 0x7F) lor (rest lsl 7))
            in
            let insns = read_varint ic in
            let start = prev + delta in
            loop (f acc ~start ~insns) start
      in
      loop init 0)

let length path = fold path 0 (fun n ~start:_ ~insns:_ -> n + 1)

let default_chunk = 4096

let iter_chunks ?(chunk = default_chunk) path f =
  if chunk <= 0 then invalid_arg "Pc_trace.iter_chunks: chunk must be positive";
  let starts = Array.make chunk 0 and insns_buf = Array.make chunk 0 in
  let fill = ref 0 in
  let flush () =
    if !fill > 0 then begin
      f ~starts ~insns:insns_buf ~len:!fill;
      fill := 0
    end
  in
  fold path () (fun () ~start ~insns ->
      starts.(!fill) <- start;
      insns_buf.(!fill) <- insns;
      incr fill;
      if !fill = chunk then flush ());
  flush ()

let replay trans path =
  let rep = Replayer.create trans in
  fold path () (fun () ~start ~insns -> Replayer.feed_addr rep ~insns start);
  rep

let replay_packed packed path =
  let rep = Replayer.create_packed packed in
  iter_chunks path (fun ~starts ~insns ~len ->
      Replayer.feed_run rep ~insns starts ~len);
  rep
