(** Compact program-counter trace files.

    The fully decoupled replay story: an execution's logical-block stream
    (block start address + dynamic instruction count) is written to a
    compact binary file — zig-zag delta encoding plus LEB128 varints, a few
    bits per block in loops — and the TEA can later be replayed against
    that file with no program, no interpreter and no frontend present.
    This is what shipping a trace from a production system to an analysis
    box looks like.

    Two formats, sniffed by magic on read:

    - {b v1} (magic ["TEAPC1\n"]): per block a varint-encoded zig-zag
      delta from the previous start address followed by a varint
      instruction count.
    - {b v2} (magic ["PCTR2\n"], the default written): dictionary
      pair-coding over the v1 records. Each record is one varint token:
      [0] escapes to a literal (zig-zag delta + insns varints, which
      registers that pair under the next free token, capped at 2^20
      entries), [k >= 1] repeats dictionary pair [k]. Replay streams
      revisit the same few (delta, insns) pairs in loops, so
      steady-state records compress to ~1 byte — typically 3–4x smaller
      files than v1 — and both formats now decode from a whole-file
      buffer in one tight index loop rather than per-byte channel
      reads. *)

type format = V1 | V2

type writer

val open_writer : ?format:format -> string -> writer
(** Default [V2]. [V1] keeps writing the PR 1 byte format for
    interchange with older readers. *)

val write : writer -> start:int -> insns:int -> unit

val close_writer : writer -> unit
(** @raise Sys_error on I/O failure. Idempotent. *)

exception Corrupt of string

val fold : string -> 'a -> ('a -> start:int -> insns:int -> 'a) -> 'a
(** Stream the file through a folder; v1 and v2 files both accepted.
    @raise Corrupt on bad framing (including a file too short to hold
    the magic header, and a v2 token referencing a dictionary entry the
    stream never defined). *)

val length : string -> int
(** Number of block records. *)

val iter_chunks :
  ?chunk:int ->
  string ->
  (starts:int array -> insns:int array -> len:int -> unit) ->
  unit
(** Decode the file in blocks of up to [chunk] (default 4096) records into
    reused parallel arrays; only [starts.(0..len-1)] / [insns.(0..len-1)]
    are valid per call. This is the batched front half of
    {!Replayer.feed_run}. @raise Corrupt on bad framing. *)

val replay : Transition.t -> string -> Replayer.t
(** Replay a TEA against a trace file: the offline half of the
    cross-system workflow (reference engine, record-at-a-time). *)

val replay_packed : Packed.t -> string -> Replayer.t
(** Same replay through the packed fast path: chunked decode feeding
    {!Replayer.feed_run}. Identical coverage, profiles and state sequence
    to {!replay} over the same automaton. *)
