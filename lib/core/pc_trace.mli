(** Compact program-counter trace files.

    The fully decoupled replay story: an execution's logical-block stream
    (block start address + dynamic instruction count) is written to a
    compact binary file — zig-zag delta encoding plus LEB128 varints, a few
    bits per block in loops — and the TEA can later be replayed against
    that file with no program, no interpreter and no frontend present.
    This is what shipping a trace from a production system to an analysis
    box looks like.

    Format: magic ["TEAPC1\n"], then per block a varint-encoded zig-zag
    delta from the previous start address followed by a varint instruction
    count. *)

type writer

val open_writer : string -> writer

val write : writer -> start:int -> insns:int -> unit

val close_writer : writer -> unit
(** @raise Sys_error on I/O failure. Idempotent. *)

exception Corrupt of string

val fold : string -> 'a -> ('a -> start:int -> insns:int -> 'a) -> 'a
(** Stream the file through a folder. @raise Corrupt on bad framing
    (including a file too short to hold the magic header). *)

val length : string -> int
(** Number of block records. *)

val iter_chunks :
  ?chunk:int ->
  string ->
  (starts:int array -> insns:int array -> len:int -> unit) ->
  unit
(** Decode the file in blocks of up to [chunk] (default 4096) records into
    reused parallel arrays; only [starts.(0..len-1)] / [insns.(0..len-1)]
    are valid per call. This is the batched front half of
    {!Replayer.feed_run}. @raise Corrupt on bad framing. *)

val replay : Transition.t -> string -> Replayer.t
(** Replay a TEA against a trace file: the offline half of the
    cross-system workflow (reference engine, record-at-a-time). *)

val replay_packed : Packed.t -> string -> Replayer.t
(** Same replay through the packed fast path: chunked decode feeding
    {!Replayer.feed_run}. Identical coverage, profiles and state sequence
    to {!replay} over the same automaton. *)
