(** Compact program-counter trace files.

    The fully decoupled replay story: an execution's logical-block stream
    (block start address + dynamic instruction count) is written to a
    compact binary file — zig-zag delta encoding plus LEB128 varints, a few
    bits per block in loops — and the TEA can later be replayed against
    that file with no program, no interpreter and no frontend present.
    This is what shipping a trace from a production system to an analysis
    box looks like.

    Three formats, sniffed by magic on read:

    - {b v1} (magic ["TEAPC1\n"]): per block a varint-encoded zig-zag
      delta from the previous start address followed by a varint
      instruction count.
    - {b v2} (magic ["PCTR2\n"], the default written): dictionary
      pair-coding over the v1 records. Each record is one varint token:
      [0] escapes to a literal (zig-zag delta + insns varints, which
      registers that pair under the next free token, capped at 2^20
      entries), [k >= 1] repeats dictionary pair [k]. Replay streams
      revisit the same few (delta, insns) pairs in loops, so
      steady-state records compress to ~1 byte — typically 3–4x smaller
      files than v1 — and all formats decode from a whole-file buffer in
      one tight index loop rather than per-byte channel reads.
    - {b v3} (magic ["PCTR3\n"]): the v2 coding extended to multi-process
      interleaved streams. Low tokens are reserved for events — [1]
      switches the current address-space id ([asid], varint operand),
      [2] invalidates an asid's traces (self-modifying code), [3] marks a
      mid-trace interrupt — and dictionary ids start at [4]. Each asid
      runs its own delta chain (the previous start address is parked on
      switch-out and restored on switch-in), so interleaving does not
      destroy the delta/dictionary locality the coder feeds on. A stream
      starts in asid 0. *)

type format = V1 | V2 | V3

type event =
  | Block of { start : int; insns : int }
      (** One executed logical block. *)
  | Switch of { asid : int }
      (** Context switch: subsequent blocks belong to [asid]. *)
  | Invalidate of { asid : int }
      (** [asid]'s translated code was invalidated (self-modifying code);
          its automaton states must be evicted and re-learned. *)
  | Interrupt
      (** Asynchronous signal cut the current asid's trace body; replay
          resumes at NTE. *)

type writer

val open_writer : ?format:format -> string -> writer
(** Default [V2]. [V1] keeps writing the PR 1 byte format for
    interchange with older readers; [V3] enables the event records. *)

val write : writer -> start:int -> insns:int -> unit
(** Append one block record (any format). Under [V3] it is stamped with
    the writer's current asid. *)

val switch_asid : writer -> int -> unit
(** [V3] only. Append a context-switch record; subsequent [write]s belong
    to the given asid (>= 0). @raise Invalid_argument otherwise. *)

val invalidate : writer -> int -> unit
(** [V3] only. Append a trace-invalidation record for an asid (>= 0). *)

val interrupt : writer -> unit
(** [V3] only. Append a mid-trace interrupt record for the current asid. *)

val write_event : writer -> event -> unit
(** Dispatch to [write] / [switch_asid] / [invalidate] / [interrupt]. *)

val close_writer : writer -> unit
(** @raise Sys_error on I/O failure. Idempotent. *)

exception Corrupt of string

val read_all : string -> string
(** Slurp a trace file's raw bytes. ["-"] reads standard input; pipes,
    FIFOs, sockets and other non-seekable inputs are read in chunks until
    EOF (a seekable file stays the single-read fast path). All the
    path-taking readers below go through this, so every one of them
    accepts ["-"] and non-seekable paths like [/dev/stdin] or a FIFO.
    @raise Sys_error on I/O failure. *)

val fold : string -> 'a -> ('a -> start:int -> insns:int -> 'a) -> 'a
(** Stream the file through a folder as a {e single} PC stream; v1 and v2
    files always accepted, and v3 files accepted iff they contain only
    block records. A v3 stream with switch/invalidate/interrupt events is
    rejected — folding it as one flat stream would silently replay an
    interleaved or cut stream against a single automaton — use
    {!fold_events}.
    @raise Corrupt on bad framing (including a file too short to hold
    the magic header, a token referencing a dictionary entry the stream
    never defined, or an event record under this single-stream view). *)

val fold_events : string -> 'a -> ('a -> asid:int -> event -> 'a) -> 'a
(** Stream the file through a folder as an event stream. All three
    formats accepted: v1/v2 block records arrive as [Block] with asid 0.
    [~asid] is the address space the event lands on — for [Switch] that
    is the asid being switched {e to}. @raise Corrupt on bad framing. *)

val length : string -> int
(** Number of block records (events not counted). *)

val iter_chunks :
  ?chunk:int ->
  string ->
  (starts:int array -> insns:int array -> len:int -> unit) ->
  unit
(** Decode the file in blocks of up to [chunk] (default 4096) records into
    reused parallel arrays; only [starts.(0..len-1)] / [insns.(0..len-1)]
    are valid per call. This is the batched front half of
    {!Replayer.feed_run}. Single-stream view: same acceptance rules as
    {!fold} — a v3 file with events is rejected rather than chunked with
    its asid boundaries erased (demultiplex with {!fold_events} or
    [Multi_replayer] first). @raise Corrupt on bad framing. *)

(** {2 Incremental (streaming) decoding}

    The replay-as-a-service ingestion path: trace bytes arrive over a
    socket in arbitrary chunks — a chunk boundary can split a varint, a
    dictionary literal, even the magic — so the decoder buffers the
    undecoded suffix and emits each event exactly when its record
    completes. Feeding a file's bytes in any chunking emits exactly the
    {!fold_events} sequence of that file (property-tested). The
    whole-file folds above remain the fast path for seekable files. *)

type decoder

val decoder : unit -> decoder
(** A fresh streaming decoder; the format is sniffed from the first
    bytes fed. *)

val decoder_feed :
  decoder ->
  ?off:int ->
  ?len:int ->
  string ->
  (asid:int -> event -> unit) ->
  unit
(** [decoder_feed d s emit] consumes [s.[off..off+len)] (default: all of
    [s]) and calls [emit] once per completed event, with the same asid
    stamping as {!fold_events}. Partial records are buffered until a
    later feed completes them; decoder state (dictionary, per-asid delta
    chains) commits only on complete records.
    @raise Corrupt on bad framing (foreign magic, undefined dictionary
    token, over-long varint) — the decoder is then poisoned and must be
    discarded.
    @raise Invalid_argument on a bad substring or a finished decoder. *)

val decoder_finish : decoder -> unit
(** Declare end-of-stream. Idempotent.
    @raise Corrupt if the stream ended mid-record ("truncated varint") or
    before a complete magic ("truncated header" — including the empty
    stream). *)

val decoder_format : decoder -> format option
(** The sniffed format, [None] until enough header bytes were fed. *)

val decoder_pending : decoder -> int
(** Buffered bytes not yet decoded ([0] exactly at a record boundary). *)

val replay : Transition.t -> string -> Replayer.t
(** Replay a TEA against a trace file: the offline half of the
    cross-system workflow (reference engine, record-at-a-time). *)

val replay_packed : Packed.t -> string -> Replayer.t
(** Same replay through the packed fast path: chunked decode feeding
    {!Replayer.feed_run}. Identical coverage, profiles and state sequence
    to {!replay} over the same automaton. *)
