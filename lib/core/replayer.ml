module Block = Tea_cfg.Block

type engine =
  | Reference of Transition.t
  | Packed of Packed.t
  | Compiled of Compiled.t

type t = {
  mutable engine : engine; (* swapped in place by [rebind] *)
  auto : Automaton.t option;
  mutable counts : int array; (* execution count per state id, grown on demand *)
  mutable state : Automaton.state;
  mutable covered : int;
  mutable total : int;
  mutable enters : int;
  mutable exits : int;
  mutable zeros : int array; (* cached all-zero insns batch, grown on demand *)
}

let make engine auto =
  {
    engine;
    auto;
    counts = Array.make 256 0;
    state = Automaton.nte;
    covered = 0;
    total = 0;
    enters = 0;
    exits = 0;
    zeros = [||];
  }

let create trans = make (Reference trans) (Some (Transition.automaton trans))

let create_packed packed = make (Packed packed) (Packed.automaton packed)

let create_compiled compiled =
  make (Compiled compiled) (Packed.automaton (Compiled.base compiled))

let engine t = t.engine

let grow_counts t need =
  let n = ref (Array.length t.counts) in
  while !n <= need do
    n := !n * 2
  done;
  let fresh = Array.make !n 0 in
  Array.blit t.counts 0 fresh 0 (Array.length t.counts);
  t.counts <- fresh

(* Shared per-step accounting; inlined into both the single-address and the
   batched entry points. *)
let[@inline] account t prev next insns =
  t.state <- next;
  t.total <- t.total + insns;
  if next <> Automaton.nte then begin
    t.covered <- t.covered + insns;
    if next >= Array.length t.counts then grow_counts t next;
    Array.unsafe_set t.counts next (1 + Array.unsafe_get t.counts next)
  end;
  if prev = Automaton.nte && next <> Automaton.nte then t.enters <- t.enters + 1;
  if prev <> Automaton.nte && next = Automaton.nte then t.exits <- t.exits + 1

(* Telemetry: the replayer-level counters (steps, NTE entries/exits).
   Per-step paths emit them directly; the batch paths flush one delta per
   batch so the fused loop stays call-free. *)
let probe_step prev next =
  match Tea_telemetry.Probe.metrics () with
  | None -> ()
  | Some m ->
      Tea_telemetry.Metrics.count m "replayer.steps" 1;
      if prev = Automaton.nte && next <> Automaton.nte then
        Tea_telemetry.Metrics.count m "replayer.trace_enters" 1;
      if prev <> Automaton.nte && next = Automaton.nte then
        Tea_telemetry.Metrics.count m "replayer.trace_exits" 1

let feed_addr t ?(insns = 0) addr =
  let prev = t.state in
  let next =
    match t.engine with
    | Reference trans -> Transition.step trans prev addr
    | Packed packed -> Packed.step packed prev addr
    | Compiled c ->
        (* single-step path: the base image's interpreted step is
           observationally identical (and updates the same stats), so
           the compiled closures stay batch-only *)
        Packed.step (Compiled.base c) prev addr
  in
  account t prev next insns;
  probe_step prev next

let feed t (b : Block.t) = feed_addr t ~insns:(Block.n_insns b) b.Block.start

(* Fused batch loop for the packed engine: {!Packed.step} plus the
   per-step accounting, replicated inline so the hot loop makes no calls
   and touches no heap records — everything accumulates in local cells
   allocated once per batch and is flushed at the end. The replication is
   pinned to the step-at-a-time path by the feed_run/feed_addr qcheck
   equivalence property (state sequence, coverage, stats and cycles). *)
let run_packed_flat t packed addrs ins ~off ~len =
  let raw = Packed.to_raw packed in
  let offsets = raw.Packed.offsets in
  let labels = raw.Packed.labels in
  let targets = raw.Packed.targets in
  let keys = raw.Packed.hash_keys in
  let vals = raw.Packed.hash_vals in
  let mask = Array.length keys - 1 in
  let n_slots = Array.length offsets - 1 in
  if t.state < 0 || t.state >= n_slots then
    invalid_arg "Replayer.feed_run: state id outside the frozen image";
  (* every possible next state (targets, hash values, NTE) is < n_slots,
     so growing the count array once up front removes the per-step check *)
  if Array.length t.counts < n_slots then grow_counts t (n_slots - 1);
  let counts = t.counts in
  let nte = Automaton.nte in
  let state = ref t.state in
  let covered = ref t.covered and total = ref t.total in
  let enters = ref t.enters and exits = ref t.exits in
  let in_hits = ref 0 and g_hits = ref 0 and g_miss = ref 0 in
  let cycles = ref 0 in
  (* Hoisted telemetry handle: [None] (one atomic load per batch) on the
     disabled path; when enabled, hash-probe lengths are recovered from
     the cycle deltas the loop already accumulates, so the loop body
     itself gains no bookkeeping. *)
  let hprobe =
    match Tea_telemetry.Probe.metrics () with
    | None -> None
    | Some m -> Some (Tea_telemetry.Metrics.histogram m "packed.hash_probe_len")
  in
  (* Hoisted tier tally: [None] when the dispatch profiler is off, so the
     disabled path adds one predictable branch per resolution on an
     immutable local — same budget class as [hprobe]. *)
  let tly = Tierstat.tally () in
  for i = off to off + len - 1 do
    let pc = Array.unsafe_get addrs i in
    let prev = !state in
    let lo = Array.unsafe_get offsets prev in
    let hi = Array.unsafe_get offsets (prev + 1) in
    (* in-trace: branchless lower bound over the state's sorted span *)
    let hit =
      if hi > lo then begin
        let base = ref lo and l = ref (hi - lo) in
        while !l > 1 do
          let half = !l lsr 1 in
          if Array.unsafe_get labels (!base + half) <= pc then
            base := !base + half;
          l := !l - half;
          cycles := !cycles + Packed.cost_search_step
        done;
        cycles := !cycles + Packed.cost_search_step;
        if Array.unsafe_get labels !base = pc then
          Array.unsafe_get targets !base
        else -1
      end
      else -1
    in
    let next =
      if hit >= 0 then begin
        incr in_hits;
        (match tly with
        | None -> ()
        | Some a -> Tierstat.bump a ~tier:Tierstat.t_search ~state:prev);
        hit
      end
      else begin
        (* cross-trace / cold: probe the trace-head hash *)
        cycles := !cycles + Packed.cost_hash_base;
        let c0 = !cycles in
        let idx = ref (Packed.hash_pc mask pc) in
        let found = ref (-2) in
        while !found = -2 do
          cycles := !cycles + Packed.cost_hash_probe;
          let k = Array.unsafe_get keys !idx in
          if k = pc then found := Array.unsafe_get vals !idx
          else if k < 0 then found := -1
          else idx := (!idx + 1) land mask
        done;
        (match hprobe with
        | None -> ()
        | Some h ->
            (* cost_hash_probe = 1 cycle per slot examined *)
            Tea_telemetry.Metrics.observe h
              ((!cycles - c0) / Packed.cost_hash_probe));
        (match tly with
        | None -> ()
        | Some a ->
            let tier =
              if !found >= 0 then Tierstat.t_hash else Tierstat.t_miss
            in
            Tierstat.bump a ~tier ~state:prev);
        if !found >= 0 then begin
          incr g_hits;
          !found
        end
        else begin
          incr g_miss;
          cycles := !cycles + Transition.cost_nte_miss;
          nte
        end
      end
    in
    let insns = Array.unsafe_get ins i in
    state := next;
    total := !total + insns;
    if next <> nte then begin
      covered := !covered + insns;
      Array.unsafe_set counts next (1 + Array.unsafe_get counts next)
    end;
    if prev = nte && next <> nte then incr enters;
    if prev <> nte && next = nte then incr exits
  done;
  (match Tea_telemetry.Probe.metrics () with
  | None -> ()
  | Some m ->
      let open Tea_telemetry.Metrics in
      count m "replayer.steps" len;
      count m "replayer.trace_enters" (!enters - t.enters);
      count m "replayer.trace_exits" (!exits - t.exits);
      count m "packed.in_trace_hit" !in_hits;
      count m "packed.global_hit" !g_hits;
      count m "packed.global_miss" !g_miss);
  t.state <- !state;
  t.covered <- !covered;
  t.total <- !total;
  t.enters <- !enters;
  t.exits <- !exits;
  let st = Packed.stats packed in
  st.Transition.steps <- st.Transition.steps + len;
  st.Transition.in_trace_hits <- st.Transition.in_trace_hits + !in_hits;
  st.Transition.global_hits <- st.Transition.global_hits + !g_hits;
  st.Transition.global_misses <- st.Transition.global_misses + !g_miss;
  Packed.add_cycles packed !cycles

(* The same fused loop over a repacked image: inline cache first, then
   the most-taken-first hot prefix, then binary search over the sorted
   tail, then the hash path. Resolution costs come from the precomputed
   edge_cost/miss_cost tables (an IC hit charges exactly what the scan
   charged when the entry was filled), so simulated cycles stay a pure
   function of the replayed stream — see the Packed docs for why that
   keeps sharded replay bit-identical. *)
let run_packed_hot t packed addrs ins ~off ~len =
  let v = Packed.hot_view packed in
  let offsets = v.Packed.v_offsets in
  let labels = v.Packed.v_labels in
  let targets = v.Packed.v_targets in
  let hot_len = v.Packed.v_hot_len in
  let edge_cost = v.Packed.v_edge_cost in
  let miss_cost = v.Packed.v_miss_cost in
  let ic_label = v.Packed.v_ic_label in
  let ic_target = v.Packed.v_ic_target in
  let ic_cost = v.Packed.v_ic_cost in
  let keys = v.Packed.v_hash_keys in
  let vals = v.Packed.v_hash_vals in
  let mask = Array.length keys - 1 in
  let n_slots = Array.length offsets - 1 in
  if t.state < 0 || t.state >= n_slots then
    invalid_arg "Replayer.feed_run: state id outside the frozen image";
  if Array.length t.counts < n_slots then grow_counts t (n_slots - 1);
  let counts = t.counts in
  let nte = Automaton.nte in
  let state = ref t.state in
  let covered = ref t.covered and total = ref t.total in
  let enters = ref t.enters and exits = ref t.exits in
  let in_hits = ref 0 and g_hits = ref 0 and g_miss = ref 0 in
  let ic_h = ref 0 and ic_m = ref 0 in
  let cycles = ref 0 in
  let hprobe =
    match Tea_telemetry.Probe.metrics () with
    | None -> None
    | Some m -> Some (Tea_telemetry.Metrics.histogram m "packed.hash_probe_len")
  in
  let tly = Tierstat.tally () in
  for i = off to off + len - 1 do
    let pc = Array.unsafe_get addrs i in
    let prev = !state in
    let next =
      if Array.unsafe_get ic_label prev = pc then begin
        (* monomorphic inline cache: one compare, one precomputed charge *)
        incr ic_h;
        incr in_hits;
        cycles := !cycles + Array.unsafe_get ic_cost prev;
        (match tly with
        | None -> ()
        | Some a -> Tierstat.bump a ~tier:Tierstat.t_ic ~state:prev);
        Array.unsafe_get ic_target prev
      end
      else begin
        incr ic_m;
        let lo = Array.unsafe_get offsets prev in
        let hi = Array.unsafe_get offsets (prev + 1) in
        let stop = lo + Array.unsafe_get hot_len prev in
        (* linear scan of the most-taken-first prefix *)
        let e = ref (-1) in
        let j = ref lo in
        while !e < 0 && !j < stop do
          if Array.unsafe_get labels !j = pc then e := !j else incr j
        done;
        (* binary search over the sorted tail *)
        if !e < 0 && hi > stop then begin
          let base = ref stop and l = ref (hi - stop) in
          while !l > 1 do
            let half = !l lsr 1 in
            if Array.unsafe_get labels (!base + half) <= pc then
              base := !base + half;
            l := !l - half
          done;
          if Array.unsafe_get labels !base = pc then e := !base
        end;
        if !e >= 0 then begin
          incr in_hits;
          let c = Array.unsafe_get edge_cost !e in
          cycles := !cycles + c;
          let tgt = Array.unsafe_get targets !e in
          Array.unsafe_set ic_label prev pc;
          Array.unsafe_set ic_target prev tgt;
          Array.unsafe_set ic_cost prev c;
          (match tly with
          | None -> ()
          | Some a ->
              (* [!e < stop]: the most-taken-first prefix; otherwise the
                 binary-search tail. *)
              let tier =
                if !e < stop then Tierstat.t_hot else Tierstat.t_search
              in
              Tierstat.bump a ~tier ~state:prev);
          tgt
        end
        else begin
          (* span miss: charge the full scan, then the hash path *)
          cycles :=
            !cycles + Array.unsafe_get miss_cost prev + Packed.cost_hash_base;
          let c0 = !cycles in
          let idx = ref (Packed.hash_pc mask pc) in
          let found = ref (-2) in
          while !found = -2 do
            cycles := !cycles + Packed.cost_hash_probe;
            let k = Array.unsafe_get keys !idx in
            if k = pc then found := Array.unsafe_get vals !idx
            else if k < 0 then found := -1
            else idx := (!idx + 1) land mask
          done;
          (match hprobe with
          | None -> ()
          | Some h ->
              Tea_telemetry.Metrics.observe h
                ((!cycles - c0) / Packed.cost_hash_probe));
          (match tly with
          | None -> ()
          | Some a ->
              let tier =
                if !found >= 0 then Tierstat.t_hash else Tierstat.t_miss
              in
              Tierstat.bump a ~tier ~state:prev);
          if !found >= 0 then begin
            incr g_hits;
            !found
          end
          else begin
            incr g_miss;
            cycles := !cycles + Transition.cost_nte_miss;
            nte
          end
        end
      end
    in
    let insns = Array.unsafe_get ins i in
    state := next;
    total := !total + insns;
    if next <> nte then begin
      covered := !covered + insns;
      Array.unsafe_set counts next (1 + Array.unsafe_get counts next)
    end;
    if prev = nte && next <> nte then incr enters;
    if prev <> nte && next = nte then incr exits
  done;
  (match Tea_telemetry.Probe.metrics () with
  | None -> ()
  | Some m ->
      let open Tea_telemetry.Metrics in
      count m "replayer.steps" len;
      count m "replayer.trace_enters" (!enters - t.enters);
      count m "replayer.trace_exits" (!exits - t.exits);
      count m "packed.in_trace_hit" !in_hits;
      count m "packed.global_hit" !g_hits;
      count m "packed.global_miss" !g_miss;
      count m "packed.ic_hit" !ic_h;
      count m "packed.ic_miss" !ic_m);
  t.state <- !state;
  t.covered <- !covered;
  t.total <- !total;
  t.enters <- !enters;
  t.exits <- !exits;
  let st = Packed.stats packed in
  st.Transition.steps <- st.Transition.steps + len;
  st.Transition.in_trace_hits <- st.Transition.in_trace_hits + !in_hits;
  st.Transition.global_hits <- st.Transition.global_hits + !g_hits;
  st.Transition.global_misses <- st.Transition.global_misses + !g_miss;
  Packed.add_ic packed ~hits:!ic_h ~misses:!ic_m;
  Packed.add_cycles packed !cycles

(* The fused loop over an image carrying a {!Packed.fusion} overlay: when
   the current state sits on a fused chain, a run of upcoming PCs is
   matched against the chain's signature with one comparison loop — no
   automaton dispatch — and the per-step accounting is charged in bulk
   (for a cyclic chain, [full] complete iterations cost O(cycle length)
   regardless of [full]). Observational equality with the unfused loops
   is structural: {!Packed.with_fusion} validates that each chain edge
   restates a 1-edge span with the exact cost the ordinary dispatch
   charges, every chain target is in-trace, and a mismatching or
   unchained PC falls through to a verbatim copy of the unfused
   dispatch. Only the inline-cache hit/miss {e split} can differ (chain
   steps consult no IC) — the same documented exception as the parallel
   driver's chunk-local IC; it is excluded from {!snapshot}. *)
let run_packed_fused t packed (f : Packed.fusion) addrs ins ~off ~len =
  let raw = Packed.to_raw packed in
  let offsets = raw.Packed.offsets in
  let labels = raw.Packed.labels in
  let targets = raw.Packed.targets in
  let keys = raw.Packed.hash_keys in
  let vals = raw.Packed.hash_vals in
  let hot_len = raw.Packed.hot_len in
  let repacked = Packed.is_repacked packed in
  (* Repacked-only live arrays; empty — and never read — on a flat base. *)
  let edge_cost, miss_cost, ic_label, ic_target, ic_cost =
    if repacked then
      let v = Packed.hot_view packed in
      ( v.Packed.v_edge_cost,
        v.Packed.v_miss_cost,
        v.Packed.v_ic_label,
        v.Packed.v_ic_target,
        v.Packed.v_ic_cost )
    else ([||], [||], [||], [||], [||])
  in
  let fchain = f.Packed.fchain in
  let fpos = f.Packed.fpos in
  let foff = f.Packed.foff in
  let fcyc = f.Packed.fcyc in
  let fsig = f.Packed.fsig in
  let ftgt = f.Packed.ftgt in
  let fecost = f.Packed.fecost in
  (* Per-chain cost sums, hoisted once per batch: a full cycle iteration
     charges a constant, so the fast-forward multiplies instead of
     re-summing fecost on every chain entry. *)
  let n_chains = Array.length foff - 1 in
  let csums = Array.make (max 1 n_chains) 0 in
  for c = 0 to n_chains - 1 do
    let s = ref 0 in
    for e = foff.(c) to foff.(c + 1) - 1 do
      s := !s + fecost.(e)
    done;
    csums.(c) <- !s
  done;
  let mask = Array.length keys - 1 in
  let n_slots = Array.length offsets - 1 in
  if t.state < 0 || t.state >= n_slots then
    invalid_arg "Replayer.feed_run: state id outside the frozen image";
  if Array.length t.counts < n_slots then grow_counts t (n_slots - 1);
  let counts = t.counts in
  let nte = Automaton.nte in
  let state = ref t.state in
  let covered = ref t.covered and total = ref t.total in
  let enters = ref t.enters and exits = ref t.exits in
  let in_hits = ref 0 and g_hits = ref 0 and g_miss = ref 0 in
  let ic_h = ref 0 and ic_m = ref 0 in
  let fused_steps = ref 0 in
  let cycles = ref 0 in
  let hprobe =
    match Tea_telemetry.Probe.metrics () with
    | None -> None
    | Some m -> Some (Tea_telemetry.Metrics.histogram m "packed.hash_probe_len")
  in
  let tly = Tierstat.tally () in
  let stop = off + len in
  let i = ref off in
  while !i < stop do
    let prev = !state in
    let c = Array.unsafe_get fchain prev in
    let matched =
      if c < 0 then 0
      else begin
        let lo = Array.unsafe_get foff c in
        let hi = Array.unsafe_get foff (c + 1) in
        let p = Array.unsafe_get fpos prev in
        if Array.unsafe_get fcyc c = 1 then begin
          (* Cyclic chain: match the incoming PC run against the cycle's
             signature, wrapping — one compare + one insns add per step. *)
          let j = ref !i and q = ref (lo + p) and isum = ref 0 in
          while
            !j < stop && Array.unsafe_get addrs !j = Array.unsafe_get fsig !q
          do
            isum := !isum + Array.unsafe_get ins !j;
            incr j;
            incr q;
            if !q = hi then q := lo
          done;
          let m = !j - !i in
          if m > 0 then begin
            let l = hi - lo in
            (* Short matches (the common exit-every-lap-or-two case) skip
               the division entirely; only long fast-forwards pay it, where
               it is amortized over >= 2l steps. *)
            let full =
              if m < l then 0 else if m - l < l then 1 else m / l
            in
            let rem = m - (full * l) in
            (* [full] complete iterations: every edge taken [full] times,
               the cycle cost charged as one multiply — the fast-forward. *)
            if full > 0 then begin
              cycles := !cycles + (full * Array.unsafe_get csums c);
              for e = lo to hi - 1 do
                let tgt = Array.unsafe_get ftgt e in
                Array.unsafe_set counts tgt (full + Array.unsafe_get counts tgt)
              done
            end;
            (* [rem] leftover steps from position [p], wrapping once. *)
            let e = ref (lo + p) in
            for _ = 1 to rem do
              cycles := !cycles + Array.unsafe_get fecost !e;
              let tgt = Array.unsafe_get ftgt !e in
              Array.unsafe_set counts tgt (1 + Array.unsafe_get counts tgt);
              incr e;
              if !e = hi then e := lo
            done;
            (* Tier attribution: the source of the edge at ring position
               [q] is the previous position's target — a fixed property of
               the cycle, so the charge is independent of how the match
               splits across batches. *)
            (match tly with
            | None -> ()
            | Some a ->
                if full > 0 then
                  for e = lo to hi - 1 do
                    let src =
                      Array.unsafe_get ftgt (if e = lo then hi - 1 else e - 1)
                    in
                    Tierstat.bump_n a ~tier:Tierstat.t_fused ~state:src full
                  done;
                let e = ref (lo + p) in
                for _ = 1 to rem do
                  let src =
                    Array.unsafe_get ftgt (if !e = lo then hi - 1 else !e - 1)
                  in
                  Tierstat.bump a ~tier:Tierstat.t_fused ~state:src;
                  incr e;
                  if !e = hi then e := lo
                done);
            covered := !covered + !isum;
            total := !total + !isum;
            in_hits := !in_hits + m;
            (* the edge that produced the final state sits just before the
               next expected position [!q] — no second division *)
            let last = if !q = lo then hi - 1 else !q - 1 in
            state := Array.unsafe_get ftgt last;
            i := !j
          end;
          m
        end
        else begin
          (* Straight chain: match linearly up to the chain's end. *)
          let j = ref !i and q = ref (lo + p) and isum = ref 0 in
          while
            !q < hi && !j < stop
            && Array.unsafe_get addrs !j = Array.unsafe_get fsig !q
          do
            isum := !isum + Array.unsafe_get ins !j;
            incr j;
            incr q
          done;
          let m = !j - !i in
          if m > 0 then begin
            for e = lo + p to lo + p + m - 1 do
              cycles := !cycles + Array.unsafe_get fecost e;
              let tgt = Array.unsafe_get ftgt e in
              Array.unsafe_set counts tgt (1 + Array.unsafe_get counts tgt)
            done;
            (* Entry state [prev] sources the first matched edge; each
               later edge's source is the previous edge's target. *)
            (match tly with
            | None -> ()
            | Some a ->
                let src = ref prev in
                for e = lo + p to lo + p + m - 1 do
                  Tierstat.bump a ~tier:Tierstat.t_fused ~state:!src;
                  src := Array.unsafe_get ftgt e
                done);
            covered := !covered + !isum;
            total := !total + !isum;
            in_hits := !in_hits + m;
            state := Array.unsafe_get ftgt (lo + p + m - 1);
            i := !j
          end;
          m
        end
      end
    in
    if matched = 0 then begin
      (* Unchained state, or the stream diverged from the chain signature:
         one verbatim unfused dispatch step (IC/prefix/tail/hash when
         repacked, binary search/hash when flat), so costs and counters
         stay bit-identical to the unfused loops. *)
      let pc = Array.unsafe_get addrs !i in
      let next =
        if repacked then begin
          if Array.unsafe_get ic_label prev = pc then begin
            incr ic_h;
            incr in_hits;
            cycles := !cycles + Array.unsafe_get ic_cost prev;
            (match tly with
            | None -> ()
            | Some a -> Tierstat.bump a ~tier:Tierstat.t_ic ~state:prev);
            Array.unsafe_get ic_target prev
          end
          else begin
            incr ic_m;
            let lo = Array.unsafe_get offsets prev in
            let hi = Array.unsafe_get offsets (prev + 1) in
            let hstop = lo + Array.unsafe_get hot_len prev in
            let e = ref (-1) in
            let j = ref lo in
            while !e < 0 && !j < hstop do
              if Array.unsafe_get labels !j = pc then e := !j else incr j
            done;
            if !e < 0 && hi > hstop then begin
              let base = ref hstop and l = ref (hi - hstop) in
              while !l > 1 do
                let half = !l lsr 1 in
                if Array.unsafe_get labels (!base + half) <= pc then
                  base := !base + half;
                l := !l - half
              done;
              if Array.unsafe_get labels !base = pc then e := !base
            end;
            if !e >= 0 then begin
              incr in_hits;
              let cst = Array.unsafe_get edge_cost !e in
              cycles := !cycles + cst;
              let tgt = Array.unsafe_get targets !e in
              Array.unsafe_set ic_label prev pc;
              Array.unsafe_set ic_target prev tgt;
              Array.unsafe_set ic_cost prev cst;
              (match tly with
              | None -> ()
              | Some a ->
                  let tier =
                    if !e < hstop then Tierstat.t_hot else Tierstat.t_search
                  in
                  Tierstat.bump a ~tier ~state:prev);
              tgt
            end
            else begin
              cycles :=
                !cycles + Array.unsafe_get miss_cost prev
                + Packed.cost_hash_base;
              let c0 = !cycles in
              let idx = ref (Packed.hash_pc mask pc) in
              let found = ref (-2) in
              while !found = -2 do
                cycles := !cycles + Packed.cost_hash_probe;
                let k = Array.unsafe_get keys !idx in
                if k = pc then found := Array.unsafe_get vals !idx
                else if k < 0 then found := -1
                else idx := (!idx + 1) land mask
              done;
              (match hprobe with
              | None -> ()
              | Some h ->
                  Tea_telemetry.Metrics.observe h
                    ((!cycles - c0) / Packed.cost_hash_probe));
              (match tly with
              | None -> ()
              | Some a ->
                  let tier =
                    if !found >= 0 then Tierstat.t_hash else Tierstat.t_miss
                  in
                  Tierstat.bump a ~tier ~state:prev);
              if !found >= 0 then begin
                incr g_hits;
                !found
              end
              else begin
                incr g_miss;
                cycles := !cycles + Transition.cost_nte_miss;
                nte
              end
            end
          end
        end
        else begin
          let lo = Array.unsafe_get offsets prev in
          let hi = Array.unsafe_get offsets (prev + 1) in
          let hit =
            if hi > lo then begin
              let base = ref lo and l = ref (hi - lo) in
              while !l > 1 do
                let half = !l lsr 1 in
                if Array.unsafe_get labels (!base + half) <= pc then
                  base := !base + half;
                l := !l - half;
                cycles := !cycles + Packed.cost_search_step
              done;
              cycles := !cycles + Packed.cost_search_step;
              if Array.unsafe_get labels !base = pc then
                Array.unsafe_get targets !base
              else -1
            end
            else -1
          in
          if hit >= 0 then begin
            incr in_hits;
            (match tly with
            | None -> ()
            | Some a -> Tierstat.bump a ~tier:Tierstat.t_search ~state:prev);
            hit
          end
          else begin
            cycles := !cycles + Packed.cost_hash_base;
            let c0 = !cycles in
            let idx = ref (Packed.hash_pc mask pc) in
            let found = ref (-2) in
            while !found = -2 do
              cycles := !cycles + Packed.cost_hash_probe;
              let k = Array.unsafe_get keys !idx in
              if k = pc then found := Array.unsafe_get vals !idx
              else if k < 0 then found := -1
              else idx := (!idx + 1) land mask
            done;
            (match hprobe with
            | None -> ()
            | Some h ->
                Tea_telemetry.Metrics.observe h
                  ((!cycles - c0) / Packed.cost_hash_probe));
            (match tly with
            | None -> ()
            | Some a ->
                let tier =
                  if !found >= 0 then Tierstat.t_hash else Tierstat.t_miss
                in
                Tierstat.bump a ~tier ~state:prev);
            if !found >= 0 then begin
              incr g_hits;
              !found
            end
            else begin
              incr g_miss;
              cycles := !cycles + Transition.cost_nte_miss;
              nte
            end
          end
        end
      in
      let insns = Array.unsafe_get ins !i in
      state := next;
      total := !total + insns;
      if next <> nte then begin
        covered := !covered + insns;
        Array.unsafe_set counts next (1 + Array.unsafe_get counts next)
      end;
      if prev = nte && next <> nte then incr enters;
      if prev <> nte && next = nte then incr exits;
      incr i
    end
    else fused_steps := !fused_steps + matched
  done;
  (match Tea_telemetry.Probe.metrics () with
  | None -> ()
  | Some m ->
      let open Tea_telemetry.Metrics in
      count m "replayer.steps" len;
      count m "replayer.trace_enters" (!enters - t.enters);
      count m "replayer.trace_exits" (!exits - t.exits);
      count m "packed.in_trace_hit" !in_hits;
      count m "packed.global_hit" !g_hits;
      count m "packed.global_miss" !g_miss;
      count m "packed.fused_steps" !fused_steps;
      if repacked then begin
        count m "packed.ic_hit" !ic_h;
        count m "packed.ic_miss" !ic_m
      end);
  t.state <- !state;
  t.covered <- !covered;
  t.total <- !total;
  t.enters <- !enters;
  t.exits <- !exits;
  let st = Packed.stats packed in
  st.Transition.steps <- st.Transition.steps + len;
  st.Transition.in_trace_hits <- st.Transition.in_trace_hits + !in_hits;
  st.Transition.global_hits <- st.Transition.global_hits + !g_hits;
  st.Transition.global_misses <- st.Transition.global_misses + !g_miss;
  if repacked then Packed.add_ic packed ~hits:!ic_h ~misses:!ic_m;
  Packed.add_cycles packed !cycles

let run_packed t packed addrs ins ~off ~len =
  match Packed.fusion_of packed with
  | Some f -> run_packed_fused t packed f addrs ins ~off ~len
  | None ->
      if Packed.is_repacked packed then
        run_packed_hot t packed addrs ins ~off ~len
      else run_packed_flat t packed addrs ins ~off ~len

(* Batch replay through the closure-threaded compiled image: the
   threading itself lives in {!Compiled}; this wrapper validates the
   entry state, grows the count array once (every closure writes
   straight into it), applies the batch's deltas and flushes the same
   telemetry/stats the interpreted loops flush. In-trace hits are
   derived ([len - hash hits - hash misses]): every step resolves
   in-span / on-chain, in the global hash, or not at all. *)
let run_compiled t c addrs ins ~off ~len =
  let base = Compiled.base c in
  let n_slots = Packed.n_slots base in
  if t.state < 0 || t.state >= n_slots then
    invalid_arg "Replayer.feed_run: state id outside the frozen image";
  if Array.length t.counts < n_slots then grow_counts t (n_slots - 1);
  let d = Compiled.run c ~state:t.state ~counts:t.counts ~off addrs ins ~len in
  let in_hits = len - d.Compiled.d_g_hits - d.Compiled.d_g_miss in
  (match Tea_telemetry.Probe.metrics () with
  | None -> ()
  | Some m ->
      let open Tea_telemetry.Metrics in
      count m "replayer.steps" len;
      count m "replayer.trace_enters" d.Compiled.d_enters;
      count m "replayer.trace_exits" d.Compiled.d_exits;
      count m "packed.in_trace_hit" in_hits;
      count m "packed.global_hit" d.Compiled.d_g_hits;
      count m "packed.global_miss" d.Compiled.d_g_miss;
      if Packed.is_fused base then
        count m "packed.fused_steps" d.Compiled.d_fused_steps);
  t.state <- d.Compiled.d_state;
  t.covered <- t.covered + d.Compiled.d_covered;
  t.total <- t.total + d.Compiled.d_total;
  t.enters <- t.enters + d.Compiled.d_enters;
  t.exits <- t.exits + d.Compiled.d_exits;
  let st = Packed.stats base in
  st.Transition.steps <- st.Transition.steps + len;
  st.Transition.in_trace_hits <- st.Transition.in_trace_hits + in_hits;
  st.Transition.global_hits <- st.Transition.global_hits + d.Compiled.d_g_hits;
  st.Transition.global_misses <-
    st.Transition.global_misses + d.Compiled.d_g_miss;
  Packed.add_cycles base d.Compiled.d_cycles

let no_insns = [||]

let feed_run t ?(off = 0) ?insns addrs ~len =
  if len < 0 || off < 0 || off + len > Array.length addrs then
    invalid_arg "Replayer.feed_run: len out of range";
  (match insns with
  | Some a when Array.length a < off + len ->
      invalid_arg "Replayer.feed_run: insns array shorter than len"
  | _ -> ());
  (* reuse a cached all-zero scratch instead of allocating a fresh
     array on every no-insns batch *)
  let scratch_ins () =
    match insns with
    | Some a -> a
    | None ->
        if len = 0 then no_insns
        else begin
          if Array.length t.zeros < off + len then
            t.zeros <- Array.make (off + len) 0;
          t.zeros
        end
  in
  (* The engine match is hoisted out of the loop: one branchy dispatch per
     batch, not one per block. *)
  match t.engine with
  | Packed packed -> run_packed t packed addrs (scratch_ins ()) ~off ~len
  | Compiled c -> run_compiled t c addrs (scratch_ins ()) ~off ~len
  | Reference trans ->
      let enters0 = t.enters and exits0 = t.exits in
      (match insns with
      | Some ins ->
          for i = off to off + len - 1 do
            let prev = t.state in
            let next = Transition.step trans prev (Array.unsafe_get addrs i) in
            account t prev next (Array.unsafe_get ins i)
          done
      | None ->
          for i = off to off + len - 1 do
            let prev = t.state in
            let next = Transition.step trans prev (Array.unsafe_get addrs i) in
            account t prev next 0
          done);
      (match Tea_telemetry.Probe.metrics () with
      | None -> ()
      | Some m ->
          let open Tea_telemetry.Metrics in
          count m "replayer.steps" len;
          count m "replayer.trace_enters" (t.enters - enters0);
          count m "replayer.trace_exits" (t.exits - exits0))

let set_state t s =
  if s < 0 then invalid_arg "Replayer.set_state: negative state id";
  t.state <- s

let state t = t.state

let covered_insns t = t.covered

let total_insns t = t.total

let coverage t =
  if t.total = 0 then 0.0 else float_of_int t.covered /. float_of_int t.total

let trace_enters t = t.enters

let trace_exits t = t.exits

(* Replay runs in the engine's own id space; on a repacked image that is
   the permuted slot space, so reporting translates back to original
   automaton ids here — the one boundary — keeping TBB mappings
   byte-identical to the flat engine's. *)
let repacked_of t =
  match t.engine with
  | Packed p when Packed.is_repacked p -> Some p
  | Compiled c when Packed.is_repacked (Compiled.base c) ->
      Some (Compiled.base c)
  | _ -> None

let tbb_counts t =
  let acc = ref [] in
  (match repacked_of t with
  | None ->
      for s = Array.length t.counts - 1 downto 0 do
        if t.counts.(s) > 0 then acc := (s, t.counts.(s)) :: !acc
      done
  | Some p ->
      for s = Array.length t.counts - 1 downto 0 do
        if t.counts.(s) > 0 then
          acc := (Packed.orig_state p s, t.counts.(s)) :: !acc
      done;
      acc := List.sort (fun (a, _) (b, _) -> Int.compare a b) !acc);
  !acc

let count_of_state t s =
  let s =
    match repacked_of t with None -> s | Some p -> Packed.slot_of_state p s
  in
  if s >= 0 && s < Array.length t.counts then t.counts.(s) else 0

let automaton t = t.auto

let stats t =
  match t.engine with
  | Reference trans -> Transition.stats trans
  | Packed packed -> Packed.stats packed
  | Compiled c -> Packed.stats (Compiled.base c)

let cycles t =
  match t.engine with
  | Reference trans -> Transition.cycles trans
  | Packed packed -> Packed.cycles packed
  | Compiled c -> Packed.cycles (Compiled.base c)

let trace_profile t id =
  match t.auto with
  | None -> []
  | Some auto ->
      List.filter_map
        (fun s ->
          match Automaton.state_info auto s with
          | Some info -> Some (info.Automaton.tbb_index, count_of_state t s)
          | None -> None)
        (Automaton.states_of_trace auto id)
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let transition t =
  match t.engine with
  | Reference trans -> trans
  | Packed _ -> invalid_arg "Replayer.transition: packed engine"
  | Compiled _ -> invalid_arg "Replayer.transition: compiled engine"

(* Hot image swap. Replay state lives in three places: the per-slot
   counts array and current state (slot space of the old image), and the
   engine stats/cycles (accumulated on the old image's counters). All of
   it survives a layout change through the orig-id permutation: slot
   [s] of the old image and slot [slot_of_state new (orig_state old s)]
   of the new one are the same automaton state, and NTE is pinned to
   slot 0 in every layout. Stats and cycles are carried additively onto
   the new image so a snapshot taken right after rebind equals one taken
   right before — the swap is observationally a no-op. *)
let image_of_engine who = function
  | Packed p -> p
  | Compiled c -> Compiled.base c
  | Reference _ -> invalid_arg (who ^ ": reference engine cannot be swapped")

let rebind t engine' =
  let old_img = image_of_engine "Replayer.rebind" t.engine in
  let new_img = image_of_engine "Replayer.rebind" engine' in
  if Packed.n_slots new_img <> Packed.n_slots old_img then
    invalid_arg "Replayer.rebind: images describe different automata";
  let n_slots = Packed.n_slots old_img in
  (* counts: old slot space -> orig ids -> new slot space *)
  let fresh = Array.make (max (Array.length t.counts) (max n_slots 256)) 0 in
  let limit = min (Array.length t.counts) n_slots in
  for s = 0 to limit - 1 do
    let c = Array.unsafe_get t.counts s in
    if c > 0 then begin
      let s' = Packed.slot_of_state new_img (Packed.orig_state old_img s) in
      fresh.(s') <- fresh.(s') + c
    end
  done;
  t.counts <- fresh;
  if t.state <> Automaton.nte && t.state < n_slots then
    t.state <- Packed.slot_of_state new_img (Packed.orig_state old_img t.state);
  (* carry engine-side accounting onto the new image *)
  let so = Packed.stats old_img and sn = Packed.stats new_img in
  sn.Transition.steps <- sn.Transition.steps + so.Transition.steps;
  sn.Transition.in_trace_hits <-
    sn.Transition.in_trace_hits + so.Transition.in_trace_hits;
  sn.Transition.cache_hits <- sn.Transition.cache_hits + so.Transition.cache_hits;
  sn.Transition.global_hits <-
    sn.Transition.global_hits + so.Transition.global_hits;
  sn.Transition.global_misses <-
    sn.Transition.global_misses + so.Transition.global_misses;
  Packed.add_cycles new_img (Packed.cycles old_img);
  Packed.add_ic new_img ~hits:(Packed.ic_hits old_img)
    ~misses:(Packed.ic_misses old_img);
  t.engine <- engine'

(* Everything a replayer accumulates, as one immutable value. Every field
   is an integer total (the counts list is per-state totals), so two
   snapshots of disjoint step ranges merge by pointwise addition — the
   algebra Tea_parallel.Profile builds on. *)
type snapshot = {
  counts : (Automaton.state * int) list;
  covered : int;
  total : int;
  enters : int;
  exits : int;
  steps : int;
  in_trace_hits : int;
  cache_hits : int;
  global_hits : int;
  global_misses : int;
  cycles : int;
}

let snapshot (t : t) =
  let st = stats t in
  {
    counts = tbb_counts t;
    covered = t.covered;
    total = t.total;
    enters = t.enters;
    exits = t.exits;
    steps = st.Transition.steps;
    in_trace_hits = st.Transition.in_trace_hits;
    cache_hits = st.Transition.cache_hits;
    global_hits = st.Transition.global_hits;
    global_misses = st.Transition.global_misses;
    cycles = cycles t;
  }
