(** Replaying recorded traces against an unmodified program execution.

    The replayer feeds every executed block's start address into the TEA.
    The automaton state then *is* the precise answer to "which TBB of which
    trace is executing right now" — including distinguishing the different
    instances of a duplicated block (the paper's \$\$T1.next vs \$\$T2.next
    example) — without any trace code existing. Per-state execution
    counters are the profile the paper collects this way.

    Two interchangeable transition engines drive a replayer:

    - the {b reference} engine ({!Transition}), faithful to the paper's
      per-state edge lists plus B+ tree / linked-list containers with
      their simulated-cycle cost model;
    - the {b packed} engine ({!Packed}), flat-array compiled for replay
      throughput.

    Both produce bit-identical state sequences, coverage and profiles
    (property-tested in [test_packed.ml]); they differ only in speed and
    in how cross-trace resolutions split across the stats counters. *)

type engine = Reference of Transition.t | Packed of Packed.t

type t

val create : Transition.t -> t
(** A replayer on the reference engine. *)

val create_packed : Packed.t -> t
(** A replayer on the packed fast path. *)

val engine : t -> engine

val feed : t -> Tea_cfg.Block.t -> unit
(** The block about to execute. Wire to {!Tea_cfg.Discovery} [on_block]. *)

val feed_addr : t -> ?insns:int -> int -> unit
(** Lower-level variant: a block start address and its instruction count
    (default 0 — no coverage accounting), for replaying from an externally
    recorded address stream. *)

val feed_run : t -> ?insns:int array -> int array -> len:int -> unit
(** [feed_run t ~insns addrs ~len] replays [addrs.(0..len-1)] in one
    batch: the engine dispatch is hoisted out of the loop, so PC-trace
    files decode and replay in blocks instead of one call per address.
    [insns] is a parallel per-block instruction-count array (all 0 when
    absent). Equivalent to [len] calls to {!feed_addr}.
    @raise Invalid_argument when [len] exceeds either array. *)

val state : t -> Automaton.state

val covered_insns : t -> int

val total_insns : t -> int

val coverage : t -> float

val trace_enters : t -> int
(** NTE → trace transitions taken. *)

val trace_exits : t -> int
(** Trace → NTE transitions taken. *)

val tbb_counts : t -> (Automaton.state * int) list
(** Execution count per TEA state, sorted by state id. *)

val count_of_state : t -> Automaton.state -> int

val trace_profile : t -> int -> (int * int) list
(** [trace_profile t id]: (tbb_index, executions) for one trace, sorted by
    index — the per-copy profile of the motivation example. [[]] when the
    replayer has no automaton (packed image loaded from bytes). *)

val automaton : t -> Automaton.t option
(** The automaton behind the engine; [None] only for a packed image
    reconstituted from bytes. *)

val stats : t -> Transition.stats
(** The engine's transition counters, whichever engine runs. *)

val cycles : t -> int
(** Simulated cycles spent in the engine's transition function. *)

val transition : t -> Transition.t
(** The reference engine.
    @raise Invalid_argument on a packed-engine replayer. *)
