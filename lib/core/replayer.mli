(** Replaying recorded traces against an unmodified program execution.

    The replayer feeds every executed block's start address into the TEA.
    The automaton state then *is* the precise answer to "which TBB of which
    trace is executing right now" — including distinguishing the different
    instances of a duplicated block (the paper's \$\$T1.next vs \$\$T2.next
    example) — without any trace code existing. Per-state execution
    counters are the profile the paper collects this way.

    Three interchangeable transition engines drive a replayer:

    - the {b reference} engine ({!Transition}), faithful to the paper's
      per-state edge lists plus B+ tree / linked-list containers with
      their simulated-cycle cost model;
    - the {b packed} engine ({!Packed}), flat-array compiled for replay
      throughput;
    - the {b compiled} engine ({!Compiled}), the packed image specialized
      into closure-threaded dispatch — each state a preapplied closure
      jumping straight to its successor's closure.

    All produce bit-identical state sequences, coverage and profiles
    (property-tested in [test_packed.ml] / [test_compile.ml]); they
    differ only in speed and in how cross-trace resolutions split across
    the stats counters. *)

type engine =
  | Reference of Transition.t
  | Packed of Packed.t
  | Compiled of Compiled.t

type t

val create : Transition.t -> t
(** A replayer on the reference engine. *)

val create_packed : Packed.t -> t
(** A replayer on the packed fast path. *)

val create_compiled : Compiled.t -> t
(** A replayer on the closure-threaded compiled engine. Stats and cycles
    accumulate on the underlying packed image ({!Compiled.base}). Like
    the compiled image itself, not safe to share across domains — build
    one per worker over a {!Packed.dup} sibling. *)

val engine : t -> engine

val feed : t -> Tea_cfg.Block.t -> unit
(** The block about to execute. Wire to {!Tea_cfg.Discovery} [on_block]. *)

val feed_addr : t -> ?insns:int -> int -> unit
(** Lower-level variant: a block start address and its instruction count
    (default 0 — no coverage accounting), for replaying from an externally
    recorded address stream. *)

val feed_run : t -> ?off:int -> ?insns:int array -> int array -> len:int -> unit
(** [feed_run t ~off ~insns addrs ~len] replays [addrs.(off..off+len-1)]
    in one batch: the engine dispatch is hoisted out of the loop, so
    PC-trace files decode and replay in blocks instead of one call per
    address. [insns] is a parallel per-block instruction-count array
    indexed like [addrs] (all 0 when absent — served from a scratch array
    cached on [t], no per-batch allocation). [off] defaults to 0; a
    nonzero [off] replays a suffix without an [Array.sub] copy (how the
    parallel driver hands each shard its chunk). Equivalent to [len]
    calls to {!feed_addr}.

    On an image carrying a fusion overlay ({!Packed.is_fused}) the batch
    loop dispatches through superstate chains: runs of addresses that
    match a chain's PC signature are absorbed by one comparison loop and
    charged in bulk, with every observable (mapping, coverage, counts,
    stats, simulated cycles) still exactly as if each address had been
    fed singly. Signature matching never looks past [off + len - 1] — a
    run that would continue into the next batch simply resumes matching
    on the next call, which is what keeps sharded replay over a fused
    image bit-identical to the sequential one.
    @raise Invalid_argument when [off..off+len) exceeds either array. *)

val state : t -> Automaton.state

val set_state : t -> Automaton.state -> unit
(** Overwrite the current automaton state without stepping — the parallel
    driver's entry-state stitching, and cross-execution resumption. No
    accounting happens; coverage, enter/exit counters and stats are
    untouched. The id is validated lazily: the packed batch loop rejects
    ids outside the frozen image on the next feed.
    @raise Invalid_argument on a negative id. *)

val rebind : t -> engine -> unit
(** [rebind t engine'] hot-swaps the replayer onto a different image of
    the {e same} automaton — flat, repacked, fused or compiled — without
    losing any accumulated accounting: per-state counts and the current
    state are translated through the orig-id permutation
    ({!Packed.orig_state} on the old layout, {!Packed.slot_of_state} on
    the new), and the old image's engine stats, inline-cache split and
    simulated cycles are added onto the new image's counters. A
    {!snapshot} taken immediately after [rebind] equals one taken
    immediately before; subsequent feeds dispatch through the new image.
    The caller must hand over a private image (a {!Packed.dup} sibling,
    or {!Compiled.of_packed} of one) exactly as at creation — counters
    are mutable and must not be shared.
    @raise Invalid_argument when either engine is [Reference], or the
    images disagree on slot count (different automata). *)

val covered_insns : t -> int

val total_insns : t -> int

val coverage : t -> float

val trace_enters : t -> int
(** NTE → trace transitions taken. *)

val trace_exits : t -> int
(** Trace → NTE transitions taken. *)

val tbb_counts : t -> (Automaton.state * int) list
(** Execution count per TEA state, sorted by state id. On a repacked
    packed image ({!Tea_opt.Repack}) ids are translated back to the
    original automaton's, so the mapping is byte-identical to the flat
    engine's. ({!state}/{!set_state} by contrast stay in the engine's own
    — possibly permuted — id space; the parallel driver depends on
    that.) *)

val count_of_state : t -> Automaton.state -> int
(** Count for an {e original} automaton state id (translated on repacked
    images, like {!tbb_counts}). *)

val trace_profile : t -> int -> (int * int) list
(** [trace_profile t id]: (tbb_index, executions) for one trace, sorted by
    index — the per-copy profile of the motivation example. [[]] when the
    replayer has no automaton (packed image loaded from bytes). *)

val automaton : t -> Automaton.t option
(** The automaton behind the engine; [None] only for a packed image
    reconstituted from bytes. *)

val stats : t -> Transition.stats
(** The engine's transition counters, whichever engine runs. *)

val cycles : t -> int
(** Simulated cycles spent in the engine's transition function. *)

val transition : t -> Transition.t
(** The reference engine.
    @raise Invalid_argument on a packed- or compiled-engine replayer. *)

(** {2 Snapshots}

    Everything a replayer accumulates — per-state counts, coverage,
    enter/exit counters, engine stats, simulated cycles — as one
    immutable value. Every field is an integer total, so snapshots of
    disjoint step ranges merge by pointwise addition; that additive
    algebra is what makes sharded parallel replay bit-identical to the
    sequential run ({!Tea_parallel.Profile}). *)

type snapshot = {
  counts : (Automaton.state * int) list;
      (** execution count per state, sorted by id, zero counts omitted *)
  covered : int;
  total : int;
  enters : int;
  exits : int;
  steps : int;
  in_trace_hits : int;
  cache_hits : int;
  global_hits : int;
  global_misses : int;
  cycles : int;
}

val snapshot : t -> snapshot
(** The current totals. For a reference-engine replayer the stats fields
    read the shared {!Transition.t} counters, so they cover everything
    that transition function did — not only this replayer's feeds. *)
