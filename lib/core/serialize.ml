module Trace = Tea_traces.Trace

exception Parse_error of string

exception Too_large of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let magic = "TEA-AUTOMATON 1"

(* The text format mirrors the trace-set format: each trace's states in TBB
   order with their in-trace successor indices. Loading rebuilds the traces
   and re-runs Algorithm 1. *)
let to_string auto =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  List.iter
    (fun id ->
      let states = Automaton.states_of_trace auto id in
      let live = List.filter (Automaton.is_live auto) states in
      if live <> [] then begin
        let index_of =
          let h = Hashtbl.create 16 in
          List.iteri (fun i s -> Hashtbl.replace h s i) live;
          h
        in
        Buffer.add_string buf
          (Printf.sprintf "trace %d tea %d\n" id (List.length live));
        List.iter
          (fun s ->
            match Automaton.state_info auto s with
            | Some info ->
                Buffer.add_string buf
                  (Printf.sprintf "tbb 0x%x %d\n" info.Automaton.block_start
                     info.Automaton.n_insns)
            | None -> assert false)
          live;
        List.iteri
          (fun i s ->
            let succs =
              List.filter_map
                (fun (_, dst) -> Hashtbl.find_opt index_of dst)
                (Automaton.edges_of auto s)
            in
            if succs <> [] then
              Buffer.add_string buf
                (Printf.sprintf "succ %d %s\n" i
                   (String.concat " " (List.map string_of_int succs))))
          live;
        Buffer.add_string buf "end\n"
      end)
    (Automaton.trace_ids auto);
  Buffer.contents buf

let of_string image s =
  (* Reuse the trace-set parser by swapping the magic line. *)
  match String.index_opt s '\n' with
  | None -> parse_error "missing %S header" magic
  | Some i ->
      if String.trim (String.sub s 0 i) <> magic then
        parse_error "missing %S header" magic;
      let body = String.sub s i (String.length s - i) in
      let traces =
        try
          Tea_traces.Serialize.of_string image ("TEA-TRACES 1\n" ^ body)
        with Tea_traces.Serialize.Parse_error m -> parse_error "%s" m
      in
      Builder.build traces

let save path auto =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string auto))

let load image path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string image (really_input_string ic len))

(* Binary format: see the interface. All integers little-endian. *)

let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let add_u16 buf v =
  add_u8 buf v;
  add_u8 buf (v lsr 8)

let add_u32 buf v =
  add_u16 buf (v land 0xFFFF);
  add_u16 buf ((v lsr 16) land 0xFFFF)

let to_binary auto =
  let n_states = Automaton.n_states auto in
  if n_states > 0xFFFE then
    raise (Too_large (Printf.sprintf "%d states exceed the u16 cap" n_states));
  let buf = Buffer.create (16 + (8 * n_states)) in
  Buffer.add_string buf "TEA1";
  add_u32 buf n_states;
  add_u32 buf (Automaton.n_transitions auto);
  add_u32 buf 0;
  (* Dense renumbering: NTE = 0, live states 1.. in id order. *)
  let index = Hashtbl.create (2 * n_states) in
  let next = ref 1 in
  Automaton.iter_live
    (fun s info ->
      Hashtbl.replace index s !next;
      incr next;
      if info.Automaton.trace_id > 0xFFFF then
        raise (Too_large "trace id exceeds the u16 cap");
      if info.Automaton.tbb_index > 0xFFFF then
        raise (Too_large "tbb index exceeds the u16 cap");
      add_u32 buf info.Automaton.block_start;
      add_u16 buf info.Automaton.trace_id;
      add_u16 buf info.Automaton.tbb_index)
    auto;
  (* Transitions: label is recoverable as the target's block start. *)
  Automaton.iter_live
    (fun s _ ->
      List.iter
        (fun (_, dst) ->
          add_u16 buf (Hashtbl.find index s);
          add_u16 buf (Hashtbl.find index dst);
          add_u8 buf 0)
        (Automaton.edges_of auto s))
    auto;
  List.iter
    (fun (_, head) ->
      add_u16 buf 0;
      add_u16 buf (Hashtbl.find index head);
      add_u8 buf 1)
    (Automaton.heads auto);
  Buffer.contents buf

let binary_size auto = String.length (to_binary auto)

(* ---- Packed images ----

   The flat arrays serialize verbatim (all u32 little-endian, -1 encoded as
   0xFFFFFFFF), so a load is a handful of array reads and the reconstituted
   engine replays bit-identically — including the hash probe layout. *)

let packed_magic = "TEAPK1"

let packed_magic_v2 = "TEAPK2"

let packed_magic_v3 = "TEAPK3"

let add_i32 buf v =
  if v < -1 || v > 0xFFFFFFFE then
    raise (Too_large (Printf.sprintf "%d exceeds the u32 packed cap" v));
  add_u32 buf (v land 0xFFFFFFFF)

(* A flat image serializes exactly as PR 1 wrote it (TEAPK1, nine
   arrays); a repacked image appends its two extra arrays under the
   TEAPK2 magic; an image carrying a fusion overlay writes TEAPK3 — a
   flags word (bit 0 = repacked) followed by the v1/v2 payload and the
   seven overlay arrays. Unfused images keep their v1/v2 bytes exactly,
   so fusion changes no existing on-disk artifact. The reader accepts
   all three. *)
let packed_to_binary packed =
  let r = Packed.to_raw packed in
  let repacked = Packed.is_repacked packed in
  let fusion = Packed.fusion_of packed in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (match fusion with
    | Some _ -> packed_magic_v3
    | None -> if repacked then packed_magic_v2 else packed_magic);
  let dump a =
    add_i32 buf (Array.length a);
    Array.iter (add_i32 buf) a
  in
  (match fusion with
  | Some _ -> add_i32 buf (if repacked then 1 else 0)
  | None -> ());
  dump r.Packed.offsets;
  dump r.Packed.labels;
  dump r.Packed.targets;
  dump r.Packed.state_trace;
  dump r.Packed.state_tbb;
  dump r.Packed.state_start;
  dump r.Packed.state_insns;
  dump r.Packed.hash_keys;
  dump r.Packed.hash_vals;
  if repacked then begin
    dump r.Packed.hot_len;
    dump r.Packed.orig_of
  end;
  (match fusion with
  | None -> ()
  | Some f ->
      dump f.Packed.fchain;
      dump f.Packed.fpos;
      dump f.Packed.foff;
      dump f.Packed.fcyc;
      dump f.Packed.fsig;
      dump f.Packed.ftgt;
      dump f.Packed.fecost);
  Buffer.contents buf

let packed_of_binary s =
  let pos = ref 0 in
  let len = String.length s in
  let u8 () =
    if !pos >= len then parse_error "truncated packed image";
    let b = Char.code s.[!pos] in
    incr pos;
    b
  in
  let i32 () =
    let a = u8 () in
    let b = u8 () in
    let c = u8 () in
    let d = u8 () in
    let v = a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24) in
    if v = 0xFFFFFFFF then -1 else v
  in
  let magic_len = String.length packed_magic in
  let version =
    if len >= magic_len && String.sub s 0 magic_len = packed_magic then 1
    else if len >= magic_len && String.sub s 0 magic_len = packed_magic_v2
    then 2
    else if len >= magic_len && String.sub s 0 magic_len = packed_magic_v3
    then 3
    else parse_error "missing %S header" packed_magic
  in
  pos := magic_len;
  let repacked =
    if version = 3 then begin
      let flags = i32 () in
      if flags land lnot 1 <> 0 then parse_error "unknown packed flags";
      flags land 1 = 1
    end
    else version = 2
  in
  let slurp () =
    let n = i32 () in
    if n < 0 || n > (len - !pos) / 4 then parse_error "bad packed array length";
    Array.init n (fun _ -> i32 ())
  in
  let offsets = slurp () in
  let labels = slurp () in
  let targets = slurp () in
  let state_trace = slurp () in
  let state_tbb = slurp () in
  let state_start = slurp () in
  let state_insns = slurp () in
  let hash_keys = slurp () in
  let hash_vals = slurp () in
  let n_slots = max 0 (Array.length offsets - 1) in
  let hot_len = if repacked then slurp () else Array.make n_slots 0 in
  let orig_of =
    if repacked then slurp () else Array.init n_slots (fun i -> i)
  in
  let fusion =
    if version = 3 then begin
      let fchain = slurp () in
      let fpos = slurp () in
      let foff = slurp () in
      let fcyc = slurp () in
      let fsig = slurp () in
      let ftgt = slurp () in
      let fecost = slurp () in
      Some { Packed.fchain; fpos; foff; fcyc; fsig; ftgt; fecost }
    end
    else None
  in
  if !pos <> len then parse_error "trailing bytes after packed image";
  try
    let base =
      Packed.of_raw ~repacked
        {
          Packed.offsets;
          labels;
          targets;
          state_trace;
          state_tbb;
          state_start;
          state_insns;
          hash_keys;
          hash_vals;
          hot_len;
          orig_of;
        }
    in
    (* [with_fusion] re-validates the overlay against the base arrays,
       so corrupt TEAPK3 bytes surface here as a Parse_error rather
       than as a divergent replay. *)
    match fusion with None -> base | Some f -> Packed.with_fusion base f
  with Invalid_argument m -> parse_error "%s" m

let save_packed path packed =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (packed_to_binary packed))

let load_packed path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      packed_of_binary (really_input_string ic len))

let packed_version packed =
  if Packed.is_fused packed then 3
  else if Packed.is_repacked packed then 2
  else 1

(* Human-readable stats for [tea_tool info]: everything here is a pure
   function of the image's arrays, so the rendering is byte-stable and
   golden-testable. *)
let describe_packed packed =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "format:  TEAPK%d" (packed_version packed);
  line "slots:   %d" (Packed.n_slots packed);
  line "states:  %d" (Packed.n_states packed);
  line "edges:   %d" (Packed.n_edges packed);
  line "heads:   %d" (Packed.n_heads packed);
  line "layout:  %s"
    (if Packed.is_repacked packed then "repacked (hotness-descending)"
     else "flat (freeze order)");
  if Packed.is_repacked packed then begin
    let r = Packed.to_raw packed in
    let longest = Array.fold_left max 0 r.Packed.hot_len in
    line "hot-prefix edges: %d (longest prefix %d)"
      (Packed.hot_edges packed) longest
  end;
  if Packed.is_fused packed then begin
    let lengths = Packed.chain_lengths packed in
    line "fused chains: %d (%d cyclic), covering %d states"
      (Packed.n_chains packed)
      (Packed.n_cyclic_chains packed)
      (Packed.fused_edges packed);
    (* length histogram, ascending *)
    let tbl = Hashtbl.create 16 in
    Array.iter
      (fun l ->
        Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
      lengths;
    let entries =
      List.sort compare (Hashtbl.fold (fun l n acc -> (l, n) :: acc) tbl [])
    in
    List.iter
      (fun (l, n) -> line "  chains of length %d: %d" l n)
      entries
  end
  else line "fused chains: 0";
  Buffer.contents buf
