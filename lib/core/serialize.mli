(** TEA persistence.

    Two encodings:

    - {b Text}: human-readable, loadable on another system against the same
      program image (blocks are re-decoded from the image, as the pintool
      does with the unmodified executable). Loading reconstructs the traces
      from the state table and rebuilds the automaton with Algorithm 1, so
      the result is structurally identical (state ids may be renumbered).

    - {b Binary}: the compact format whose length *is* the Table 1 "TEA"
      memory figure: a 16-byte header, 8 bytes per state (block start,
      trace id, TBB index) and 5 bytes per stored transition (source state,
      target state, flags — the transition label is recoverable as the
      target's block start). {!Automaton.byte_size} equals
      [String.length (to_binary a)] whenever the automaton fits the format
      caps (≤ 65535 states and traces). *)

exception Parse_error of string

exception Too_large of string
(** Raised by {!to_binary} when a dimension exceeds the 16-bit caps. *)

val to_string : Automaton.t -> string

val of_string : Tea_isa.Image.t -> string -> Automaton.t
(** @raise Parse_error on malformed input. *)

val save : string -> Automaton.t -> unit

val load : Tea_isa.Image.t -> string -> Automaton.t

val to_binary : Automaton.t -> string

val binary_size : Automaton.t -> int
(** [String.length (to_binary a)]. *)

(** {2 Packed engine images}

    A third encoding: the {!Packed} flat arrays verbatim (magic
    ["TEAPK1"], then each array as a u32 length + u32 little-endian
    elements, -1 as 0xFFFFFFFF). A profile-repacked image
    ({!Packed.is_repacked}) writes magic ["TEAPK2"] instead and appends
    its two extra arrays ([hot_len], [orig_of]) after the nine TEAPK1
    arrays. An image carrying a {!Packed.fusion} overlay
    ({!Packed.is_fused}) writes magic ["TEAPK3"]: a u32 flags word
    (bit 0 = repacked) followed by the v1/v2 array payload and the seven
    overlay arrays. Unfused images keep writing their v1/v2 bytes
    exactly — fusion changes no existing on-disk artifact — and the
    reader sniffs all three magics, re-validating a v3 overlay through
    {!Packed.with_fusion} so corrupt bytes fail the load rather than
    diverge a replay. Unlike the text format this needs no program
    image to load — the reconstituted engine replays bit-identically,
    including hash probe order — but it carries no {!Automaton.t}, so
    per-trace profile queries are unavailable on it. *)

val packed_to_binary : Packed.t -> string
(** @raise Too_large when a value exceeds the u32 cap. *)

val packed_of_binary : string -> Packed.t
(** @raise Parse_error on malformed input (bad framing or shape
    invariants, including a fusion overlay that does not validate
    against the base arrays). *)

val save_packed : string -> Packed.t -> unit

val load_packed : string -> Packed.t

val packed_version : Packed.t -> int
(** The TEAPK format version {!packed_to_binary} would write for this
    image: 1 flat, 2 repacked, 3 fused. *)

val describe_packed : Packed.t -> string
(** Human-readable image stats ([tea_tool info]): format version,
    slot/state/edge/head counts, layout flavor, hot-prefix totals,
    fused-chain count and length histogram. Pure function of the arrays,
    byte-stable. *)
