(* Dispatch-tier profiler for the packed replay engine.

   Mirrors Tea_telemetry.Probe's global-installation pattern: a single
   atomic installation, one tally per domain (registered lazily under a
   mutex), and a static [None] fast path so replay loops pay one branch
   on a hoisted immutable local when profiling is disabled.

   Attribution is per resolved block: exactly one tier per step, charged
   to the *source* state (slot id of the packed image) the dispatch ran
   from. Slot ids are translated back to automaton state ids at report
   boundaries via [Packed.orig_state]. *)

let n_tiers = 7
let t_ic = 0
let t_hot = 1
let t_search = 2
let t_hash = 3
let t_miss = 4
let t_fused = 5
let t_compiled = 6
let tier_names = [| "ic"; "hot"; "search"; "hash"; "miss"; "fused"; "compiled" |]
let tier_name i = tier_names.(i)

type tally = {
  totals : int array; (* length n_tiers *)
  mutable states : int array; (* flattened: state * n_tiers + tier *)
}

type installation = {
  gen : int;
  mu : Mutex.t;
  mutable tallies : tally list; (* one per domain that profiled *)
}

let state : installation option Atomic.t = Atomic.make None
let generation = ref 0

let dls : (int * tally) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let enabled () = Atomic.get state <> None

let install () =
  match Atomic.get state with
  | Some _ -> invalid_arg "Tierstat.install: already installed"
  | None ->
      incr generation;
      Atomic.set state
        (Some { gen = !generation; mu = Mutex.create (); tallies = [] })

let tally () =
  match Atomic.get state with
  | None -> None
  | Some g -> (
      match Domain.DLS.get dls with
      | Some (gen, a) when gen = g.gen -> Some a
      | _ ->
          let a =
            { totals = Array.make n_tiers 0; states = Array.make 256 0 }
          in
          Mutex.lock g.mu;
          g.tallies <- a :: g.tallies;
          Mutex.unlock g.mu;
          Domain.DLS.set dls (Some (g.gen, a));
          Some a)

let[@inline never] grow a idx =
  let n = ref (Array.length a.states) in
  while idx >= !n do
    n := !n * 2
  done;
  let fresh = Array.make !n 0 in
  Array.blit a.states 0 fresh 0 (Array.length a.states);
  a.states <- fresh

let[@inline] bump_n a ~tier ~state n =
  Array.unsafe_set a.totals tier (n + Array.unsafe_get a.totals tier);
  let idx = (state * n_tiers) + tier in
  if idx >= Array.length a.states then grow a idx;
  Array.unsafe_set a.states idx (n + Array.unsafe_get a.states idx)

let[@inline] bump a ~tier ~state = bump_n a ~tier ~state 1

(* ---- snapshots ---- *)

type snapshot = {
  ts_totals : int array; (* length n_tiers *)
  ts_states : (int * int array) list;
      (* (state, per-tier counts), sorted by state, all-zero rows omitted *)
}

let empty = { ts_totals = Array.make n_tiers 0; ts_states = [] }
let total s = Array.fold_left ( + ) 0 s.ts_totals

let snapshot_of_tally a =
  let n_states = Array.length a.states / n_tiers in
  let rows = ref [] in
  for st = n_states - 1 downto 0 do
    let any = ref false in
    for t = 0 to n_tiers - 1 do
      if a.states.((st * n_tiers) + t) <> 0 then any := true
    done;
    if !any then
      rows :=
        (st, Array.init n_tiers (fun t -> a.states.((st * n_tiers) + t)))
        :: !rows
  done;
  { ts_totals = Array.copy a.totals; ts_states = !rows }

let rec merge_rows a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (sa, va) :: ta, (sb, vb) :: tb ->
      if sa < sb then (sa, va) :: merge_rows ta b
      else if sb < sa then (sb, vb) :: merge_rows a tb
      else (sa, Array.init n_tiers (fun t -> va.(t) + vb.(t))) :: merge_rows ta tb

let merge a b =
  {
    ts_totals = Array.init n_tiers (fun t -> a.ts_totals.(t) + b.ts_totals.(t));
    ts_states = merge_rows a.ts_states b.ts_states;
  }

let merge_all = List.fold_left merge empty
let equal (a : snapshot) (b : snapshot) = a = b

let snapshot () =
  match Atomic.get state with
  | None -> empty
  | Some g ->
      Mutex.lock g.mu;
      let ts = g.tallies in
      Mutex.unlock g.mu;
      merge_all (List.map snapshot_of_tally ts)

let uninstall () =
  let final = snapshot () in
  Atomic.set state None;
  final
