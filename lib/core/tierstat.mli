(** Dispatch-tier profiler for the packed replay engine.

    When installed, the replay loops attribute every resolved block to
    exactly one dispatch tier — the mechanism that found the edge —
    charged to the source state (packed slot id) the dispatch ran from:

    - [ic]: per-state monomorphic inline-cache hit (repacked images);
    - [hot]: hot-prefix linear-scan hit (repacked images);
    - [search]: binary-search hit (the whole span on flat images, the
      tail after the hot prefix on repacked ones);
    - [hash]: global trace-head hash-table hit after the span missed;
    - [miss]: unresolved — the replayer cut to the not-in-trace state;
    - [fused]: resolved in bulk by a fused superstate chain (TEAPK3
      overlay fast-forward);
    - [compiled]: resolved by the closure-threaded compiled engine
      ({!Compiled}) — straight-line compares (or a chain matcher) jumping
      directly to the successor's closure, no tier ladder consulted.

    Same global-installation shape as {!Tea_telemetry.Probe}: one
    atomic installation, one {!tally} per domain, immutable mergeable
    {!snapshot}s. Disabled ([install] not called) the loops pay one
    predictable branch per step on a hoisted local — the same class of
    cost the telemetry probes keep under the bench-gated 2% budget.

    Per-state counts are in slot space; translate to automaton ids with
    {!Packed.orig_state} when rendering (see {!Tea_report.Hotness}). *)

val n_tiers : int

val t_ic : int
val t_hot : int
val t_search : int
val t_hash : int
val t_miss : int
val t_fused : int
val t_compiled : int

val tier_name : int -> string
(** ["ic" | "hot" | "search" | "hash" | "miss" | "fused" | "compiled"]. *)

(** {2 Installation} *)

val install : unit -> unit
(** Enable profiling globally. Raises [Invalid_argument] if already
    installed. *)

val enabled : unit -> bool

(** {2 Hot path} *)

type tally
(** A single domain's mutable tier counts. Not thread-safe; obtained
    per domain via {!tally} and hoisted out of replay loops. *)

val tally : unit -> tally option
(** [None] when profiling is disabled — hoist per batch and branch on
    the immutable local. *)

val bump : tally -> tier:int -> state:int -> unit
val bump_n : tally -> tier:int -> state:int -> int -> unit

(** {2 Snapshots} *)

type snapshot = {
  ts_totals : int array;  (** per-tier totals, length {!n_tiers} *)
  ts_states : (int * int array) list;
      (** (state, per-tier counts), sorted by state, all-zero rows
          omitted *)
}

val empty : snapshot

val snapshot : unit -> snapshot
(** Merged view of every domain's tally so far; {!empty} when disabled. *)

val uninstall : unit -> snapshot
(** Disable profiling and return the final merged snapshot. *)

val merge : snapshot -> snapshot -> snapshot
(** Pointwise sum — associative, commutative, [empty]-neutral, so
    sharded replay merges to the sequential totals. *)

val merge_all : snapshot list -> snapshot
val equal : snapshot -> snapshot -> bool
val total : snapshot -> int
(** Sum over tiers — equals total blocks resolved while enabled. *)
