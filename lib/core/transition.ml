module Btree = Tea_btree.Btree

type global_kind = Linear | Btree

type config = {
  global : global_kind;
  local_cache : bool;
  cache_slots : int;
}

let config_no_global_local = { global = Linear; local_cache = true; cache_slots = 8 }

let config_global_no_local =
  { global = Btree; local_cache = false; cache_slots = 8 }

let config_global_local = { global = Btree; local_cache = true; cache_slots = 8 }

type stats = {
  mutable steps : int;
  mutable in_trace_hits : int;
  mutable cache_hits : int;
  mutable global_hits : int;
  mutable global_misses : int;
}

type cache = {
  labels : int array;  (* -1 = empty *)
  targets : int array;
}

type t = {
  auto : Automaton.t;
  cfg : config;
  mutable linear : (int * Automaton.state) list;
  mutable btree : Automaton.state Btree.t;
  caches : (Automaton.state, cache) Hashtbl.t;
  st : stats;
  mutable total_cycles : int;
}

(* Cost constants (simulated cycles). Justification: an in-trace edge test
   is a compare plus a next-pointer load from a line-resident list (~2); a
   direct-mapped cache probe is an index computation plus tag compare (~3);
   chasing a linked-list node is a dependent load plus compare (~4); a B+
   tree lookup pays a descent setup (~6) plus ~3 per binary-search
   comparison (in-node keys are cache-resident); falling back to NTE does
   the cold-code bookkeeping the paper blames for the "Empty" anomaly. *)
let cost_edge_cmp = 2
let cost_cache_probe = 3
let cost_cache_fill = 2
let cost_linear_node = 4
let cost_btree_base = 6
let cost_btree_cmp = 3
let cost_nte_miss = 12

let fresh_stats () =
  { steps = 0; in_trace_hits = 0; cache_hits = 0; global_hits = 0; global_misses = 0 }

let rebuild t =
  let heads = Automaton.heads t.auto in
  t.linear <- heads;
  let bt = Btree.create ~order:8 () in
  List.iter (fun (addr, s) -> Btree.insert bt addr s) heads;
  t.btree <- bt;
  Hashtbl.reset t.caches

let create cfg auto =
  let t =
    {
      auto;
      cfg;
      linear = [];
      btree = Btree.create ~order:8 ();
      caches = Hashtbl.create 256;
      st = fresh_stats ();
      total_cycles = 0;
    }
  in
  rebuild t;
  t

let automaton t = t.auto

let config t = t.cfg

let refresh t = rebuild t

let cycles t = t.total_cycles

let stats t = t.st

let reset_counters t =
  t.total_cycles <- 0;
  t.st.steps <- 0;
  t.st.in_trace_hits <- 0;
  t.st.cache_hits <- 0;
  t.st.global_hits <- 0;
  t.st.global_misses <- 0

let cache_for t state =
  match Hashtbl.find_opt t.caches state with
  | Some c -> c
  | None ->
      let n = max 1 t.cfg.cache_slots in
      let c = { labels = Array.make n (-1); targets = Array.make n 0 } in
      Hashtbl.replace t.caches state c;
      c

let cache_slot t pc = (pc lsr 2) mod max 1 t.cfg.cache_slots

(* Scan the state's in-trace edges, charging per entry examined. *)
let scan_edges t state pc =
  let rec go edges visited =
    match edges with
    | [] -> (None, visited)
    | (label, target) :: rest ->
        if label = pc then (Some target, visited + 1) else go rest (visited + 1)
  in
  go (Automaton.edges_of t.auto state) 0

let global_lookup t pc =
  match t.cfg.global with
  | Linear ->
      let rec go l visited =
        match l with
        | [] -> (None, visited * cost_linear_node)
        | (addr, s) :: rest ->
            if addr = pc then (Some s, (visited + 1) * cost_linear_node)
            else go rest (visited + 1)
      in
      go t.linear 0
  | Btree ->
      let v, cmps = Btree.find_count t.btree pc in
      (v, cost_btree_base + (cost_btree_cmp * cmps))

(* Telemetry: one lookup-axis counter per step classification, plus a
   histogram of edge-list scan lengths. [m] is [None] on the default
   (disabled) path, so the only per-step cost is the option match. *)
let probe_edge_scan m visited =
  match m with
  | None -> ()
  | Some m -> Tea_telemetry.Metrics.observe_value m "transition.edge.scan_len" visited

let global_axis t =
  match t.cfg.global with
  | Linear -> "transition.global.linear"
  | Btree -> "transition.global.btree"

let step t state pc =
  t.st.steps <- t.st.steps + 1;
  let m = Tea_telemetry.Probe.metrics () in
  let probe name =
    match m with None -> () | Some m -> Tea_telemetry.Metrics.count m name 1
  in
  let cost = ref 0 in
  let result =
    (* 1. In-trace transition on the state's own edge list (the hot path). *)
    let from_edges =
      if state <> Automaton.nte && Automaton.is_live t.auto state then begin
        let found, visited = scan_edges t state pc in
        cost := !cost + (visited * cost_edge_cmp);
        probe_edge_scan m visited;
        found
      end
      else None
    in
    match from_edges with
    | Some target ->
        t.st.in_trace_hits <- t.st.in_trace_hits + 1;
        probe "transition.edge.hit";
        target
    | None -> (
        (* 2. Leaving a trace (or running cold): local cache, if enabled and
           we are inside a trace — the paper notes caches are pointless at
           NTE. *)
        let cached =
          if t.cfg.local_cache && state <> Automaton.nte then begin
            cost := !cost + cost_cache_probe;
            probe "transition.cache.probes";
            let c = cache_for t state in
            let i = cache_slot t pc in
            if c.labels.(i) = pc then Some c.targets.(i) else None
          end
          else None
        in
        match cached with
        | Some target ->
            t.st.cache_hits <- t.st.cache_hits + 1;
            probe "transition.cache.hit";
            target
        | None -> (
            (* 3. Global container search for a trace head at [pc]. *)
            let found, lookup_cost = global_lookup t pc in
            cost := !cost + lookup_cost;
            match found with
            | Some head ->
                t.st.global_hits <- t.st.global_hits + 1;
                (match m with
                | None -> ()
                | Some m ->
                    Tea_telemetry.Metrics.count m (global_axis t ^ ".hit") 1);
                if t.cfg.local_cache && state <> Automaton.nte then begin
                  cost := !cost + cost_cache_fill;
                  let c = cache_for t state in
                  let i = cache_slot t pc in
                  c.labels.(i) <- pc;
                  c.targets.(i) <- head
                end;
                head
            | None ->
                t.st.global_misses <- t.st.global_misses + 1;
                (match m with
                | None -> ()
                | Some m ->
                    Tea_telemetry.Metrics.count m (global_axis t ^ ".miss") 1);
                cost := !cost + cost_nte_miss;
                Automaton.nte))
  in
  t.total_cycles <- t.total_cycles + !cost;
  result
