(** The TEA transition function — where the paper's §4.2 performance story
    lives.

    On every block-to-block transfer the replayer asks: given the current
    automaton state and the next program counter, what is the next state?
    In-trace successors are resolved on the state's own (short) edge list;
    leaving a trace — or running in cold code — requires searching the
    global trace container for a trace starting at the new PC. The paper
    evaluates three configurations of that search (Table 4):

    - "No Global / Local": the container is a linked list, but each state
      carries a small local cache of recent cross-trace resolutions;
    - "Global / No Local": a global B+ tree, no caches;
    - "Global / Local": both (the configuration used for Tables 2 and 3).

    Costs are charged in simulated cycles; the constants are documented at
    their definitions and exposed for the benchmarks. *)

type global_kind =
  | Linear  (** traces kept in a linked list *)
  | Btree   (** the global B+ tree *)

type config = {
  global : global_kind;
  local_cache : bool;
  cache_slots : int;  (** direct-mapped entries per state (default 8) *)
}

val config_no_global_local : config
val config_global_no_local : config
val config_global_local : config
(** The three Table 4 configurations. *)

type stats = {
  mutable steps : int;
  mutable in_trace_hits : int;   (** resolved on the state's own edges *)
  mutable cache_hits : int;
  mutable global_hits : int;     (** found a trace head in the container *)
  mutable global_misses : int;   (** landed in NTE *)
}

val fresh_stats : unit -> stats
(** A zeroed counter record — shared with the {!Packed} engine so both
    report through the same stats type. *)

type t

val create : config -> Automaton.t -> t

val automaton : t -> Automaton.t

val config : t -> config

val refresh : t -> unit
(** Rebuild the lookup containers from the automaton and drop every local
    cache. Must be called after traces are added to or removed from the
    automaton (the online recorder does). *)

val step : t -> Automaton.state -> int -> Automaton.state
(** [step t state pc] — the transition on label [pc]. Accumulates cost into
    {!cycles} and counters into {!stats}. *)

val cycles : t -> int
(** Total simulated cycles spent inside the transition function. *)

val stats : t -> stats

val reset_counters : t -> unit

(** {2 Cost constants} (simulated cycles; see DESIGN.md) *)

val cost_edge_cmp : int
(** Per in-trace edge-list entry examined (compare + pointer load). *)

val cost_cache_probe : int
(** Local-cache probe (index + tag compare). *)

val cost_cache_fill : int

val cost_linear_node : int
(** Per linked-list node visited (pointer chase + compare). *)

val cost_btree_base : int
(** Fixed descent setup for a B+ tree lookup. *)

val cost_btree_cmp : int
(** Per key comparison inside B+ tree nodes. *)

val cost_nte_miss : int
(** Extra bookkeeping when the search fails and the automaton falls back
    to NTE — the reason the "Empty" configuration is *slower* than
    replaying real traces (paper §4.2). *)
