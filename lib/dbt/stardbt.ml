module Block = Tea_cfg.Block
module Discovery = Tea_cfg.Discovery
module Interp = Tea_machine.Interp
module Recorder = Tea_traces.Recorder
module Trace = Tea_traces.Trace
module Trace_set = Tea_traces.Trace_set

type cost_model = {
  translate_per_insn : int;
  trace_build_per_insn : int;
  dispatch : int;
  chained : int;
}

let default_cost =
  { translate_per_insn = 90; trace_build_per_insn = 220; dispatch = 6; chained = 1 }

type result = {
  set : Trace_set.t;
  cache : Code_cache.t;
  covered_insns : int;
  total_insns : int;
  coverage : float;
  native_cycles : int;
  dbt_cycles : int;
  blocks_translated : int;
  stop : Interp.stop;
  output : int list;
}

type phase = Executing | Creating

type 'a driver = {
  strategy : (module Recorder.STRATEGY with type t = 'a);
  sstate : 'a;
  cost : cost_model;
  set : Trace_set.t;
  cache : Code_cache.t;
  translated : (int, unit) Hashtbl.t;
  mutable phase : phase;
  mutable prev : Block.t option;
  mutable follower : (Trace.t * int) option;
  mutable covered : int;
  mutable total : int;
  mutable overhead : int;
  mutable n_translated : int;
}

let try_enter d addr =
  match Trace_set.find_by_entry d.set addr with
  | Some tr -> d.follower <- Some (tr, 0)
  | None -> d.follower <- None

(* Advance the code-cache execution model one block: either chained inside a
   trace, or dispatched (trace entry or cold block). *)
let follow d (next : Block.t) =
  let addr = next.Block.start in
  (match d.follower with
  | Some (tr, i) -> (
      match Trace.successor_on tr i addr with
      | Some j ->
          d.follower <- Some (tr, j);
          d.overhead <- d.overhead + d.cost.chained
      | None ->
          try_enter d addr;
          d.overhead <- d.overhead + d.cost.dispatch)
  | None ->
      try_enter d addr;
      d.overhead <- d.overhead + d.cost.dispatch);
  let n = Block.n_insns next in
  d.total <- d.total + n;
  if d.follower <> None then d.covered <- d.covered + n

let install d trace =
  Trace_set.add d.set trace;
  ignore (Code_cache.install d.cache trace);
  d.overhead <- d.overhead + (d.cost.trace_build_per_insn * Trace.n_insns trace)

let on_block : type a. a driver -> Block.t -> unit =
 fun d next ->
  let (module S) = d.strategy in
  (* Translation cost for first-seen blocks. *)
  if not (Hashtbl.mem d.translated next.Block.start) then begin
    Hashtbl.replace d.translated next.Block.start ();
    d.n_translated <- d.n_translated + 1;
    d.overhead <- d.overhead + (d.cost.translate_per_insn * Block.n_insns next)
  end;
  (match d.phase with
  | Executing ->
      follow d next;
      if S.trigger d.sstate ~current:d.prev ~next then begin
        S.start d.sstate ~current:d.prev ~next;
        Tea_telemetry.Probe.count "dbt.triggered" 1;
        d.phase <- Creating;
        d.follower <- None
      end
  | Creating -> (
      d.total <- d.total + Block.n_insns next;
      d.overhead <- d.overhead + d.cost.dispatch;
      match d.prev with
      | None -> assert false
      | Some current -> (
          match S.add d.sstate ~current ~next with
          | `Continue -> ()
          | `Done completed ->
              (match completed with
              | Some tr ->
                  Tea_telemetry.Probe.count "dbt.trace_installed" 1;
                  install d tr
              | None -> Tea_telemetry.Probe.count "dbt.abandoned" 1);
              d.phase <- Executing;
              try_enter d next.Block.start)));
  d.prev <- Some next

let record ?(config = Recorder.default_config) ?(cost = default_cost) ?fuel
    ~strategy image =
  let (module S : Recorder.STRATEGY) = strategy in
  let d =
    {
      strategy = (module S);
      sstate = S.create config;
      cost;
      set = Trace_set.create ();
      cache = Code_cache.create image;
      translated = Hashtbl.create 512;
      phase = Executing;
      prev = None;
      follower = None;
      covered = 0;
      total = 0;
      overhead = 0;
      n_translated = 0;
    }
  in
  let callbacks =
    { Discovery.on_block = on_block d; Discovery.on_edge = (fun _ _ -> ()) }
  in
  let machine, stop, _disc =
    Discovery.run ~policy:Discovery.Stardbt ?fuel image callbacks
  in
  (match S.abort d.sstate with
  | Some tr ->
      Tea_telemetry.Probe.count "dbt.abort_salvaged" 1;
      install d tr
  | None -> ());
  let native = Interp.cycles machine in
  {
    set = d.set;
    cache = d.cache;
    covered_insns = d.covered;
    total_insns = d.total;
    coverage =
      (if d.total = 0 then 0.0 else float_of_int d.covered /. float_of_int d.total);
    native_cycles = native;
    dbt_cycles = native + d.overhead;
    blocks_translated = d.n_translated;
    stop;
    output = Interp.output machine;
  }
