(* Profile-drift comparator: L1 distance between a normalized reference
   weight vector (the profile an image was repacked/fused against) and a
   live weight vector, restricted to the union of both top-K supports.

   Restricting to the heavy hitters keeps the metric focused on the mass
   that actually drives layout decisions: a long cold tail reshuffling
   contributes nothing, while a new hot state missing from the reference
   contributes its full normalized weight. The distance lives in [0, 2]
   (0 = identical heavy-hitter mass, 2 = disjoint). *)

type t = {
  k : int;
  threshold : float;
  ref_w : (int, float) Hashtbl.t; (* full normalized reference *)
  ref_top : int list; (* reference top-K ids *)
}

let default_k = 32
let default_threshold = 0.25

let normalize counts =
  let total =
    List.fold_left (fun acc (_, c) -> if c > 0 then acc + c else acc) 0 counts
  in
  let tbl = Hashtbl.create (List.length counts + 1) in
  if total > 0 then
    List.iter
      (fun (id, c) ->
        if c > 0 then
          Hashtbl.replace tbl id
            (float_of_int c /. float_of_int total
            +. (try Hashtbl.find tbl id with Not_found -> 0.0)))
      counts;
  tbl

let top_k k tbl =
  Hashtbl.fold (fun id w acc -> (id, w) :: acc) tbl []
  |> List.sort (fun (ia, wa) (ib, wb) ->
         let c = Float.compare wb wa in
         if c <> 0 then c else Int.compare ia ib)
  |> List.filteri (fun i _ -> i < k)
  |> List.map fst

let create ?(k = default_k) ?(threshold = default_threshold) ref_counts =
  if k < 1 then invalid_arg "Drift.create: k must be >= 1";
  let ref_w = normalize ref_counts in
  { k; threshold; ref_w; ref_top = top_k k ref_w }

let k t = t.k
let threshold t = t.threshold

let weight tbl id = try Hashtbl.find tbl id with Not_found -> 0.0

let measure t live_counts =
  let live_w = normalize live_counts in
  let support = Hashtbl.create (2 * t.k) in
  List.iter (fun id -> Hashtbl.replace support id ()) t.ref_top;
  List.iter (fun id -> Hashtbl.replace support id ()) (top_k t.k live_w);
  Hashtbl.fold
    (fun id () acc ->
      acc +. Float.abs (weight t.ref_w id -. weight live_w id))
    support 0.0

let exceeded t d = d > t.threshold
