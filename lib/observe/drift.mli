(** Profile-drift monitor: how far has the live edge/state profile moved
    from the profile an image was repacked or fused against?

    The comparator normalizes both count vectors to probability mass and
    takes the L1 distance restricted to the union of the two top-[k]
    supports — the heavy hitters that drive {!Tea_opt.Repack} layout
    decisions. The distance lives in [\[0, 2\]]: [0] when the heavy
    hitters carry identical mass, [2] when the supports are disjoint.
    This is the trigger signal the ROADMAP's closed-loop continuous-PGO
    item consumes: when the distance crosses [threshold], the image's
    hot-prefix/IC/fusion layout was tuned for a workload that is no
    longer running.

    Pure and deterministic: {!measure} is a function of the reference
    and the argument alone — callers (the serve daemon) own any
    crossing state. *)

type t

val default_k : int
(** 32. *)

val default_threshold : float
(** 0.25 — a quarter of the heavy-hitter mass displaced. *)

val create : ?k:int -> ?threshold:float -> (int * int) list -> t
(** [create ref_counts] with [ref_counts] as [(id, count)] pairs —
    state visit counts ({!Tea_opt.Repack.profile} visits, or a fleet
    profile's per-state counts). Non-positive counts are ignored;
    duplicate ids accumulate. @raise Invalid_argument if [k < 1]. *)

val measure : t -> (int * int) list -> float
(** L1 distance over the top-[k] support union, in [\[0, 2\]]. An empty
    (or all-zero) live vector scores the reference top-K mass — a fleet
    that has replayed nothing yet is maximally un-drifted only if the
    reference is empty too. *)

val exceeded : t -> float -> bool
(** [exceeded t d] = [d > threshold t]. *)

val k : t -> int

val threshold : t -> float
