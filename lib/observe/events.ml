(* Structured JSONL event log. One JSON object per line, flushed per
   event so an external tail (or the CI smoke job) sees events as they
   happen. The sink is mutexed — emission is cheap and rare (session
   lifecycle, drift crossings, stalls), never per-block — and the no-op
   default is simply "no sink constructed": call sites hold a
   [t option] and skip everything on [None]. *)

type value = S of string | I of int | F of float

type t = {
  oc : out_channel;
  clock : unit -> float;
  mu : Mutex.t;
  mutable seq : int;
  owned : bool; (* close [oc] on [close]? *)
}

let make ~owned ?clock oc =
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  { oc; clock; mu = Mutex.create (); seq = 0; owned }

let create ?clock oc = make ~owned:false ?clock oc
let open_file ?clock path = make ~owned:true ?clock (open_out path)

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let emit t kind fields =
  Mutex.lock t.mu;
  let seq = t.seq in
  t.seq <- seq + 1;
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "{\"seq\":%d,\"ts\":%.6f,\"event\":" seq (t.clock ()));
  add_json_string b kind;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ',';
      add_json_string b k;
      Buffer.add_char b ':';
      match v with
      | S s -> add_json_string b s
      | I i -> Buffer.add_string b (string_of_int i)
      | F f -> Buffer.add_string b (Printf.sprintf "%.6f" f))
    fields;
  Buffer.add_string b "}\n";
  Buffer.output_buffer t.oc b;
  flush t.oc;
  Mutex.unlock t.mu

let close t =
  Mutex.lock t.mu;
  flush t.oc;
  if t.owned then close_out t.oc;
  Mutex.unlock t.mu
