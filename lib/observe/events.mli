(** Structured event log: one JSON object per line (JSONL), flushed per
    event.

    Events are rare control-plane facts — session open/close/abort,
    drift-threshold crossings, pool stalls — never per-block, so the
    cost model is "free when absent": producers hold a [t option] and
    the disabled path is the [None] branch, preserving the telemetry
    layer's bench-gated disabled-overhead budget.

    Every line carries a monotonic ["seq"] and a ["ts"] wall-clock
    stamp from [clock] (default [Unix.gettimeofday]); tests inject a
    fixed clock to get byte-stable goldens. The sink is mutexed and
    safe to share across domains. *)

type value = S of string | I of int | F of float

type t

val create : ?clock:(unit -> float) -> out_channel -> t
(** Log to a caller-owned channel; {!close} flushes but does not close
    it. *)

val open_file : ?clock:(unit -> float) -> string -> t
(** Log to [path] (truncating); {!close} closes the file. *)

val emit : t -> string -> (string * value) list -> unit
(** [emit t kind fields] writes
    [{"seq":N,"ts":T,"event":kind, ...fields}] and flushes. Field order
    is preserved; strings are JSON-escaped. *)

val close : t -> unit
