(* Prometheus-style text exposition of a metrics snapshot, a dispatch
   tier snapshot, and a drift gauge. Deterministic: snapshots are sorted
   (Metrics sorts by name, Tierstat by state), names are sanitized and
   label values escaped through the Metrics helpers, and floats render
   with one fixed format — so equal snapshots produce byte-equal text
   and the goldens are stable. *)

module Metrics = Tea_telemetry.Metrics
module Tierstat = Tea_core.Tierstat

let fmt_float v =
  (* %.17g roundtrips doubles; trim the common integral case for
     readability ("3" not "3.0000000000000000") *)
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let quantiles = [ ("0.5", 0.5); ("0.95", 0.95); ("0.99", 0.99) ]

let render ?tiers ?translate ?drift ?epoch (s : Metrics.snapshot) =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b l) fmt in
  (* counters *)
  if s.Metrics.s_counters <> [] then begin
    line "# TYPE tea_counter counter\n";
    List.iter
      (fun (name, v) ->
        line "tea_counter{name=\"%s\"} %d\n"
          (Metrics.escape_label (Metrics.sanitize_name name))
          v)
      s.Metrics.s_counters
  end;
  (* histograms: cumulative buckets, count, sum, then the estimated
     quantiles (p50/p95/p99) *)
  if s.Metrics.s_histograms <> [] then begin
    line "# TYPE tea_histogram histogram\n";
    List.iter
      (fun (name, h) ->
        let name = Metrics.escape_label (Metrics.sanitize_name name) in
        let cum = ref 0 in
        List.iter
          (fun (bkt, n) ->
            cum := !cum + n;
            (* bucket 0 holds values <= 0; bucket k >= 1 holds
               [2^(k-1), 2^k), whose inclusive upper bound is 2^k - 1 *)
            let le = if bkt = 0 then "0" else string_of_int ((1 lsl bkt) - 1) in
            line "tea_histogram_bucket{name=\"%s\",le=\"%s\"} %d\n" name le !cum)
          h.Metrics.hs_buckets;
        line "tea_histogram_bucket{name=\"%s\",le=\"+Inf\"} %d\n" name
          h.Metrics.hs_count;
        line "tea_histogram_count{name=\"%s\"} %d\n" name h.Metrics.hs_count;
        line "tea_histogram_sum{name=\"%s\"} %d\n" name h.Metrics.hs_sum;
        List.iter
          (fun (lbl, q) ->
            line "tea_histogram_quantile{name=\"%s\",q=\"%s\"} %s\n" name lbl
              (fmt_float (Metrics.quantile h q)))
          quantiles)
      s.Metrics.s_histograms
  end;
  (* dispatch tiers: per-tier totals (all six, zeros included, so the
     scrape always answers "which tiers exist"), then per-state rows for
     states that resolved at least one block *)
  (match tiers with
  | None -> ()
  | Some (ts : Tierstat.snapshot) ->
      line "# TYPE tea_dispatch_tier_total counter\n";
      for t = 0 to Tierstat.n_tiers - 1 do
        line "tea_dispatch_tier_total{tier=\"%s\"} %d\n" (Tierstat.tier_name t)
          ts.Tierstat.ts_totals.(t)
      done;
      let rows =
        match translate with
        | None -> ts.Tierstat.ts_states
        | Some f ->
            List.map (fun (st, row) -> (f st, row)) ts.Tierstat.ts_states
            |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      if rows <> [] then begin
        line "# TYPE tea_dispatch_state_total counter\n";
        List.iter
          (fun (st, row) ->
            for t = 0 to Tierstat.n_tiers - 1 do
              if row.(t) <> 0 then
                line "tea_dispatch_state_total{state=\"%d\",tier=\"%s\"} %d\n"
                  st (Tierstat.tier_name t) row.(t)
            done)
          rows
      end);
  (* drift gauge *)
  (match drift with
  | None -> ()
  | Some (d, threshold) ->
      line "# TYPE tea_drift_l1 gauge\n";
      line "tea_drift_l1 %s\n" (fmt_float d);
      line "# TYPE tea_drift_threshold gauge\n";
      line "tea_drift_threshold %s\n" (fmt_float threshold));
  (* image epoch gauge: which generation of the hot-swapped image the
     daemon is dispatching through (0 = the image it booted with) *)
  (match epoch with
  | None -> ()
  | Some e ->
      line "# TYPE tea_image_epoch gauge\n";
      line "tea_image_epoch %d\n" e);
  Buffer.contents b
