(** Prometheus-style text exposition.

    Families:

    - [tea_counter{name="..."}] — every registry counter;
    - [tea_histogram_bucket{name="...",le="..."}] /
      [_count] / [_sum] — cumulative log2 buckets ([le] is the bucket's
      inclusive integer upper bound; ["0"] for the [<= 0] bucket;
      ["+Inf"] closes the series) plus estimated
      [tea_histogram_quantile{...,q="0.5"|"0.95"|"0.99"}] rows;
    - [tea_dispatch_tier_total{tier="..."}] — the six dispatch tiers,
      zeros included, when a {!Tea_core.Tierstat} snapshot is supplied;
      per-state [tea_dispatch_state_total{state="...",tier="..."}] rows
      follow for every state that resolved a block;
    - [tea_drift_l1] / [tea_drift_threshold] gauges when a drift
      measurement is supplied;
    - a [tea_image_epoch] gauge when an image epoch is supplied (the
      generation of the hot-swapped dispatch image; 0 = boot image).

    Deterministic: input snapshots are sorted, names go through
    {!Tea_telemetry.Metrics.sanitize_name}, label values through
    {!Tea_telemetry.Metrics.escape_label}, and floats use one fixed
    format — equal snapshots render to byte-equal text (the
    scrape-equals-offline gate builds on this). *)

val render :
  ?tiers:Tea_core.Tierstat.snapshot ->
  ?translate:(int -> int) ->
  ?drift:float * float ->
  ?epoch:int ->
  Tea_telemetry.Metrics.snapshot ->
  string
(** [translate] maps tier-snapshot state ids (packed slots) to automaton
    ids (pass [Tea_core.Packed.orig_state image] for repacked images);
    rows are re-sorted by translated id. [drift] is
    [(distance, threshold)]. [epoch] is the current image epoch. *)
