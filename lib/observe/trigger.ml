(* Hysteresis around a boolean signal. The drift gauge is noisy — a
   fleet profile hovering at the threshold flips the comparison every
   drain cycle — and a rebuild costs a repack+fuse pass, so the retune
   loop must not fire on every edge. Classic two-sided debounce: demand
   [up] consecutive over-threshold observations to fire, then hold a
   [cooldown] of observations before re-arming, during which nothing
   accumulates. Pure counters, no clocks: observations are whatever unit
   the caller deems meaningful (the serve daemon observes once per
   completed session). *)

type t = {
  up : int;
  cooldown : int;
  mutable streak : int; (* consecutive over-threshold observations *)
  mutable cool : int; (* observations left before re-arming *)
  mutable fired : int;
}

let default_up = 2
let default_cooldown = 8

let create ?(up = default_up) ?(cooldown = default_cooldown) () =
  if up < 1 then invalid_arg "Trigger.create: up must be >= 1";
  if cooldown < 0 then invalid_arg "Trigger.create: cooldown must be >= 0";
  { up; cooldown; streak = 0; cool = 0; fired = 0 }

let observe t over =
  if t.cool > 0 then begin
    t.cool <- t.cool - 1;
    t.streak <- 0;
    false
  end
  else if not over then begin
    t.streak <- 0;
    false
  end
  else begin
    t.streak <- t.streak + 1;
    if t.streak >= t.up then begin
      t.streak <- 0;
      t.cool <- t.cooldown;
      t.fired <- t.fired + 1;
      true
    end
    else false
  end

let armed t = t.cool = 0
let fired t = t.fired
let up t = t.up
let cooldown t = t.cooldown
