(** Hysteresis for the drift → retune edge.

    {!Drift} is a pure gauge and {!Exposition} a pure renderer; acting
    on the gauge needs debounce, or a profile oscillating around the
    threshold would thrash image rebuilds every drain cycle. A trigger
    fires only after [up] {e consecutive} over-threshold observations,
    then ignores the next [cooldown] observations entirely (no streak
    accumulates while cooling) before re-arming. Pure counters — the
    caller decides what one observation is; the serve daemon observes
    once per completed session, so [up]/[cooldown] are measured in
    sessions, not wall time. *)

type t

val default_up : int
(** 2 — one noisy cycle can never fire a rebuild. *)

val default_cooldown : int
(** 8 — observations ignored after a fire before re-arming. *)

val create : ?up:int -> ?cooldown:int -> unit -> t
(** @raise Invalid_argument when [up < 1] or [cooldown < 0]. *)

val observe : t -> bool -> bool
(** [observe t over] records one observation of the signal and returns
    [true] exactly when this observation completes an [up]-streak on an
    armed trigger — the moment to launch a rebuild. *)

val armed : t -> bool
(** [false] while in post-fire cooldown. *)

val fired : t -> int
(** Total fires so far. *)

val up : t -> int

val cooldown : t -> int
