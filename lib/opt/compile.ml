module Packed = Tea_core.Packed
module Compiled = Tea_core.Compiled
module Replayer = Tea_core.Replayer

let compile packed = Compiled.of_packed packed

let compiled_replay src ?insns addrs ~len =
  let baseline = Replayer.create_packed (Packed.dup src) in
  Replayer.feed_run baseline ?insns addrs ~len;
  let compiled = Compiled.of_packed (Packed.dup src) in
  let tuned = Replayer.create_compiled compiled in
  Replayer.feed_run tuned ?insns addrs ~len;
  (compiled, baseline, tuned)

let describe c =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let base = Compiled.base c in
  line "compiled dispatch: %d closures over %d slots" (Compiled.n_closures c)
    (Packed.n_slots base);
  List.iter
    (fun (deg, n) -> line "  fan-out %d: %d states" deg n)
    (Compiled.degree_histogram c);
  line "  minihash fallback states (fan-out > %d): %d" Compiled.scan_cap
    (Compiled.fallback_states c);
  line "  straight-line region states: %d" (Compiled.region_states c);
  line "  fused-chain matcher closures: %d" (Compiled.chained_states c);
  Buffer.contents buf
