(** Closure-threading compilation of a frozen {!Tea_core.Packed} image —
    the pipeline wrapper over {!Tea_core.Compiled}.

    Where {!Repack} reorders the image for locality and {!Fuse} overlays
    superstate chains, this pass leaves the image alone and specializes
    its {e dispatch}: every state becomes a preapplied OCaml closure
    testing its (span-ordered, hence profile-ordered after repacking)
    successor PCs with straight-line compares and tail-calling the
    successor's closure directly. It consumes any TEAPK1/2/3 image, so
    it composes with both other passes — compile the repacked-and-fused
    image to stack all three wins; fused chains compile into a single
    bulk-accounting matcher closure.

    Compilation is observationally the identity: TBB mappings, coverage,
    enter/exit counters, stats and simulated cycles are exactly the
    interpreted engine's (property-tested in [test_compile.ml]), with
    the usual inline-cache hit/miss-split exception (cycle-neutral; see
    {!Tea_core.Compiled}). *)

val compile : Tea_core.Packed.t -> Tea_core.Compiled.t
(** [compile packed] = {!Tea_core.Compiled.of_packed}. The compiled
    image shares [packed]'s counters; it is single-domain — workers
    compile their own {!Tea_core.Packed.dup} sibling. *)

val compiled_replay :
  Tea_core.Packed.t ->
  ?insns:int array ->
  int array ->
  len:int ->
  Tea_core.Compiled.t * Tea_core.Replayer.t * Tea_core.Replayer.t
(** [compiled_replay src addrs ~len] — side-by-side replay of one
    stream: a baseline over a {!Tea_core.Packed.dup} of [src], then the
    same stream through the compiled dispatch of another dup. Returns
    [(compiled, baseline_replayer, compiled_replayer)]; [src]'s own
    counters are untouched. The two replayers' snapshots must be equal —
    the compilation-is-identity gate the bench driver enforces. *)

val describe : Tea_core.Compiled.t -> string
(** Human-readable image statistics: closure count, fan-out-degree
    histogram, minihash-fallback and chain-matcher counts — the
    [tea_tool info] compiled section. *)
