module Packed = Tea_core.Packed
module Replayer = Tea_core.Replayer

let default_min_chain = 2

let default_min_expected_run = 4.0

let default_min_coverage = 0.5

(* A slot is a chain candidate when its next in-trace transition is
   forced: exactly one edge, landing in-trace. NTE never joins a chain
   (its span describes trace heads, not a forced path). *)
let candidates packed =
  let raw = Packed.to_raw packed in
  let offsets = raw.Packed.offsets in
  let targets = raw.Packed.targets in
  let n = Array.length offsets - 1 in
  let next = Array.make n (-1) in
  for s = 1 to n - 1 do
    if offsets.(s + 1) - offsets.(s) = 1 && targets.(offsets.(s)) <> 0 then
      next.(s) <- targets.(offsets.(s))
  done;
  next

type chain = { members : int list; cyclic : bool }

(* Maximal-chain decomposition of the candidate graph (out-degree <= 1 by
   construction). Three claiming passes cover every candidate exactly
   once:
   - self-loops become 1-member cyclic chains outright;
   - every candidate that is not the unique candidate-continuation of
     another candidate heads a straight chain, walked forward while the
     successor is an unclaimed candidate with candidate-in-degree 1;
   - what remains has in-degree exactly 1 from candidates on both ends —
     disjoint pure cycles — peeled from the lowest slot id of each.
   Claiming everything in pass order (and only filtering short straight
   chains at emission) is what makes the cycle peel terminate: a cycle
   walk can never run into an already-claimed slot. *)
let decompose next =
  let n = Array.length next in
  let indeg = Array.make n 0 in
  for s = 0 to n - 1 do
    let t = next.(s) in
    if t >= 0 && next.(t) >= 0 then indeg.(t) <- indeg.(t) + 1
  done;
  let claimed = Array.make n false in
  let chains = ref [] in
  (* self-loops *)
  for s = 0 to n - 1 do
    if next.(s) = s then begin
      claimed.(s) <- true;
      chains := { members = [ s ]; cyclic = true } :: !chains
    end
  done;
  (* straight chains from heads *)
  for s = 0 to n - 1 do
    if next.(s) >= 0 && (not claimed.(s)) && indeg.(s) <> 1 then begin
      let members = ref [ s ] in
      claimed.(s) <- true;
      let cur = ref next.(s) in
      while
        next.(!cur) >= 0 && (not claimed.(!cur)) && indeg.(!cur) = 1
      do
        members := !cur :: !members;
        claimed.(!cur) <- true;
        cur := next.(!cur)
      done;
      (* A chain whose final forced edge re-enters its own head is a
         back-edge cycle (the hot-loop shape): mark it cyclic so replay
         may wrap the signature match and fast-forward iterations. *)
      chains := { members = List.rev !members; cyclic = !cur = s } :: !chains
    end
  done;
  (* pure cycles *)
  for s = 0 to n - 1 do
    if next.(s) >= 0 && not claimed.(s) then begin
      let members = ref [ s ] in
      claimed.(s) <- true;
      let cur = ref next.(s) in
      while !cur <> s do
        members := !cur :: !members;
        claimed.(!cur) <- true;
        cur := next.(!cur)
      done;
      chains := { members = List.rev !members; cyclic = true } :: !chains
    end
  done;
  List.rev !chains

(* Expected match-run length of a chain under a geometric continuation
   model: each member's continuation probability is the profiled fraction
   of its dispatches that took its forced edge (1.0 for never-visited
   states — fusing those costs nothing at runtime). A straight chain's
   expectation is the sum of prefix products; a cyclic chain repeats with
   per-lap survival prod(c_i). Chain entries can start mid-chain, so this
   is an estimate, not an exact value — good enough to separate
   steady-state loop backbones from chains the stream escapes every lap
   or two, where per-entry match overhead beats the bulk-charge win. *)
let expected_run offsets prof ch =
  let cont s =
    let v = prof.Repack.visits.(s) in
    if v = 0 then 1.0
    else float_of_int prof.Repack.taken.(offsets.(s)) /. float_of_int v
  in
  let e = ref 0.0 and p = ref 1.0 in
  List.iter
    (fun s ->
      p := !p *. cont s;
      e := !e +. !p)
    ch.members;
  if not ch.cyclic then !e
  else if !p >= 0.999_999 then infinity
  else !e /. (1.0 -. !p)

let fuse ?(min_chain = default_min_chain) ?profile
    ?(min_expected_run = default_min_expected_run)
    ?(min_coverage = default_min_coverage) packed =
  if min_chain < 1 then invalid_arg "Fuse.fuse: min_chain must be >= 1";
  let raw = Packed.to_raw packed in
  let offsets = raw.Packed.offsets in
  let labels = raw.Packed.labels in
  let targets = raw.Packed.targets in
  let n = Array.length offsets - 1 in
  (match profile with
  | None -> ()
  | Some p ->
      if
        Array.length p.Repack.visits <> n
        || Array.length p.Repack.taken <> Array.length targets
      then invalid_arg "Fuse.fuse: profile shape does not match the image");
  let next = candidates packed in
  let keep ch =
    (ch.cyclic || List.length ch.members >= min_chain)
    &&
    match profile with
    | None -> true
    | Some p -> expected_run offsets p ch >= min_expected_run
  in
  let kept = List.filter keep (decompose next) in
  (* Whole-image coverage gate: every dispatch from an unchained state —
     or past a signature divergence — pays the fused loop's heavier
     verbatim path, whether or not any chain nearby matched. When the
     profile says chain matching would absorb too small a share of the
     stream's dispatches to recoup that, the honest answer is not to
     fuse this image at all. *)
  let kept =
    match profile with
    | None -> kept
    | Some p ->
        let total = Array.fold_left ( + ) 0 p.Repack.visits in
        let matched =
          List.fold_left
            (fun acc ch ->
              List.fold_left
                (fun acc s -> acc + p.Repack.taken.(offsets.(s)))
                acc ch.members)
            0 kept
        in
        if float_of_int matched < min_coverage *. float_of_int (max 1 total)
        then []
        else kept
  in
  if kept = [] then packed
  else begin
    let n_chains = List.length kept in
    let fchain = Array.make n (-1) in
    let fpos = Array.make n 0 in
    let foff = Array.make (n_chains + 1) 0 in
    let fcyc = Array.make n_chains 0 in
    List.iteri
      (fun c ch ->
        foff.(c + 1) <- foff.(c) + List.length ch.members;
        if ch.cyclic then fcyc.(c) <- 1;
        List.iteri
          (fun p s ->
            fchain.(s) <- c;
            fpos.(s) <- p)
          ch.members)
      kept;
    let n_fedges = foff.(n_chains) in
    let fsig = Array.make n_fedges 0 in
    let ftgt = Array.make n_fedges 0 in
    let fecost = Array.make n_fedges 0 in
    (* Each member contributes its single forced edge, at the exact
       simulated cost the unfused dispatch charges to resolve it: the
       precomputed edge_cost on a repacked base, one search step flat
       (a 1-edge span resolves in one probe under every dispatch
       flavor — that equality is what makes bulk charging exact). *)
    let cost_of lo =
      if Packed.is_repacked packed then
        let v = Packed.hot_view packed in
        v.Packed.v_edge_cost.(lo)
      else Packed.cost_search_step
    in
    List.iteri
      (fun c ch ->
        List.iteri
          (fun p s ->
            let e = foff.(c) + p in
            let lo = offsets.(s) in
            fsig.(e) <- labels.(lo);
            ftgt.(e) <- targets.(lo);
            fecost.(e) <- cost_of lo)
          ch.members)
      kept;
    Packed.with_fusion packed
      { Packed.fchain; fpos; foff; fcyc; fsig; ftgt; fecost }
  end

let fused_replay ?min_chain ?profile ?min_expected_run ?min_coverage src ?insns
    addrs ~len =
  let baseline = Replayer.create_packed (Packed.dup src) in
  Replayer.feed_run baseline ?insns addrs ~len;
  let fused = fuse ?min_chain ?profile ?min_expected_run ?min_coverage src in
  let tuned = Replayer.create_packed (Packed.dup fused) in
  Replayer.feed_run tuned ?insns addrs ~len;
  (fused, baseline, tuned)
