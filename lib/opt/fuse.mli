(** Superstate chain fusion for a frozen {!Tea_core.Packed} image.

    TEA automata are dominated by states whose next in-trace transition
    is {e forced} — exactly one edge, landing in-trace: straight-line
    trace bodies and steady-state loop backbones. Classic trace/
    superblock DBTs dispatch such regions as one unit; this pass makes
    the packed engine do the same without changing what replay observes.

    {!fuse} collapses maximal runs of forced states into {e superstate
    chains} described by a {!Tea_core.Packed.fusion} overlay: per chain,
    the PC signature each forced step must see, the state each step
    lands in, and the exact simulated cycles the ordinary dispatch
    charges for each resolution. Self-loops, chains whose last edge
    re-enters their own head, and pure candidate cycles are marked
    {e cyclic}, so the batch replay loop
    ({!Tea_core.Replayer.feed_run}) can verify [k] consecutive loop
    iterations with one wrapping PC-comparison loop and charge [k x]
    the per-iteration profile delta in O(cycle length) — no automaton
    dispatch at all.

    Fusion is observationally the identity: TBB mappings, coverage,
    enter/exit counters, engine stats and simulated cycles are exactly
    those of the unfused image (property-tested in [test_fuse.ml];
    {!Tea_core.Packed.with_fusion} re-validates the overlay against the
    base image, including on TEAPK3 deserialization). The only visible
    difference is the inline-cache hit/miss {e split} on a repacked
    base — chain steps consult no IC — the same documented exception as
    the parallel driver's chunk-local IC. Fusion composes with
    {!Repack}: fuse the repacked image to stack both wins. *)

val default_min_chain : int
(** Minimum member count for a straight chain to be emitted (2). Cyclic
    chains are always kept — even a 1-state self-loop fast-forwards. *)

val default_min_expected_run : float
(** Default [min_expected_run] threshold (4.0) for the profile-aware
    filter below. *)

val default_min_coverage : float
(** Default [min_coverage] threshold (0.5) for the profile-aware
    whole-image gate below. *)

val fuse :
  ?min_chain:int ->
  ?profile:Repack.profile ->
  ?min_expected_run:float ->
  ?min_coverage:float ->
  Tea_core.Packed.t ->
  Tea_core.Packed.t
(** [fuse packed] — a fresh sibling image (own counters, as
    {!Tea_core.Packed.dup}) carrying the fusion overlay; [packed] itself
    is untouched. Returns [packed] unchanged when no chain meets
    [min_chain] (default {!default_min_chain}) and no cycle exists.
    O(states + edges).

    With [profile] (a {!Repack.collect} walk {e over this image's own
    layout}), chain selection becomes profile-aware: a chain is emitted
    only when its expected match-run length — a geometric estimate from
    the per-edge continuation fractions — is at least [min_expected_run]
    (default {!default_min_expected_run}), and the image is fused at all
    only when the kept chains would absorb at least [min_coverage]
    (default {!default_min_coverage}) of the stream's profiled
    dispatches — every step the matcher does {e not} absorb runs the
    fused loop's heavier verbatim path, so sparse chain coverage is a
    net loss. This is how fusion composes with PGO: the same stream
    that guided {!Repack.repack} gates out chains the stream escapes
    every lap or two, where per-entry matching overhead outweighs the
    bulk-charge win (fusion stays observationally the identity either
    way — the filters only change {e which} chains exist, never what
    replay observes). Without [profile] selection is purely structural.
    @raise Invalid_argument when [min_chain < 1] or [profile]'s shape
    does not match [packed]. *)

val fused_replay :
  ?min_chain:int ->
  ?profile:Repack.profile ->
  ?min_expected_run:float ->
  ?min_coverage:float ->
  Tea_core.Packed.t ->
  ?insns:int array ->
  int array ->
  len:int ->
  Tea_core.Packed.t * Tea_core.Replayer.t * Tea_core.Replayer.t
(** [fused_replay src addrs ~len] — side-by-side replay of one stream:
    a baseline over a {!Tea_core.Packed.dup} of [src], then the same
    stream over [fuse src]. Returns
    [(fused, baseline_replayer, fused_replayer)]; [src]'s own counters
    are untouched. The two replayers' snapshots must be equal — the
    fusion-is-identity gate the bench driver enforces. *)
