(* Peephole opportunity analysis over recorded traces — one of the three
   Tea_opt passes. [Opt] finds instruction-level savings inside TBBs;
   [Repack] relays a frozen packed image out of a replay profile; [Fuse]
   collapses forced transition chains into superstates on top of either
   layout. The latter two transform the replay engine's image, this one
   only reports — all three consume the same replay profiles. *)
open Tea_isa
module Trace = Tea_traces.Trace
module Tbb = Tea_traces.Tbb
module Cost = Tea_machine.Cost

type kind =
  | Strength_reduction
  | Combine_immediates
  | Redundant_load
  | Dead_store

let kind_name = function
  | Strength_reduction -> "strength-reduction"
  | Combine_immediates -> "combine-immediates"
  | Redundant_load -> "redundant-load"
  | Dead_store -> "dead-store"

type finding = {
  kind : kind;
  tbb_index : int;
  insn_index : int;
  saved_cycles : int;
  note : string;
}

(* ---------- instruction classification helpers ---------- *)


let regs_of_mem (m : Operand.mem) =
  (match m.base with Some r -> [ r ] | None -> [])
  @ match m.index with Some (r, _) -> [ r ] | None -> []

(* Registers written by an instruction (partial: enough for the kills we
   need; anything surprising should be treated as writing everything). *)
let written_regs = function
  | Insn.Mov (Operand.Reg r, _) | Insn.Lea (r, _) | Insn.Imul (r, _) -> [ r ]
  | Insn.Alu (_, Operand.Reg r, _)
  | Insn.Inc (Operand.Reg r)
  | Insn.Dec (Operand.Reg r)
  | Insn.Neg (Operand.Reg r)
  | Insn.Shift (_, Operand.Reg r, _)
  | Insn.Pop (Operand.Reg r) -> [ r ]
  | Insn.Push _ | Insn.Pop _ -> [ Reg.ESP ]
  | Insn.Rep_movs -> [ Reg.ESI; Reg.EDI; Reg.ECX ]
  | Insn.Rep_stos -> [ Reg.EDI; Reg.ECX ]
  | _ -> []

let writes_flags = function
  | Insn.Alu _ | Insn.Inc _ | Insn.Dec _ | Insn.Neg _ | Insn.Imul _
  | Insn.Shift _ | Insn.Cmp _ | Insn.Test _ -> true
  | _ -> false

let reads_flags = function Insn.Jcc _ -> true | _ -> false

(* Does the instruction read memory anywhere? (conservative) *)
let reads_memory i =
  let op_reads = function Operand.Mem _ -> true | _ -> false in
  match i with
  | Insn.Mov (_, s) -> op_reads s
  | Insn.Alu (_, d, s) -> op_reads d || op_reads s
  | Insn.Cmp (a, b) | Insn.Test (a, b) -> op_reads a || op_reads b
  | Insn.Inc d | Insn.Dec d | Insn.Neg d | Insn.Shift (_, d, _) -> op_reads d
  | Insn.Imul (_, s) | Insn.Push s | Insn.Jmp_ind s | Insn.Call_ind s -> op_reads s
  | Insn.Pop _ | Insn.Ret | Insn.Rep_movs -> true
  | _ -> false

(* Instructions after which nothing we remembered can be trusted. *)
let barrier = function
  | Insn.Call _ | Insn.Call_ind _ | Insn.Ret | Insn.Sys _ | Insn.Rep_movs
  | Insn.Rep_stos | Insn.Cpuid | Insn.Halt | Insn.Jmp_ind _ -> true
  | _ -> false

let power_of_two v = v > 1 && v land (v - 1) = 0

let log2i v =
  let rec go k n = if n <= 1 then k else go (k + 1) (n lsr 1) in
  go 0 v

(* ---------- path extraction ---------- *)

(* The linear chain prefix 0 -> 1 -> ... of a superblock trace; every TBB
   off the chain is analyzed in isolation. *)
let segments (trace : Trace.t) =
  let n = Trace.n_tbbs trace in
  let rec chain i acc =
    if i >= n then List.rev acc
    else
      match Trace.successors trace i with
      | [ j ] when j = i + 1 -> chain (i + 1) (i :: acc)
      | _ -> List.rev (i :: acc)
  in
  let main = if n = 0 then [] else chain 0 [] in
  let on_chain = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace on_chain i ()) main;
  let rest =
    List.init n Fun.id |> List.filter (fun i -> not (Hashtbl.mem on_chain i))
  in
  main :: List.map (fun i -> [ i ]) rest

(* ---------- the analysis ---------- *)

type astate = {
  mutable loads : (Operand.mem * Reg.t * (int * int)) list;
      (* memory word known to be in a register since (tbb, idx) *)
  mutable store : (Operand.mem * (int * int)) option;
      (* latest store not yet observed by any read *)
  mutable imm_alu : (Reg.t * (int * int)) option;
      (* an add/sub-immediate that the very next insn may absorb *)
}

let fresh () = { loads = []; store = None; imm_alu = None }

let kill_all st =
  st.loads <- [];
  st.store <- None;
  st.imm_alu <- None

let kill_reg st r =
  st.loads <-
    List.filter
      (fun (m, v, _) -> not (Reg.equal v r || List.exists (Reg.equal r) (regs_of_mem m)))
      st.loads;
  match st.imm_alu with
  | Some (r', _) when Reg.equal r r' -> st.imm_alu <- None
  | _ -> ()

let mem_equal (a : Operand.mem) (b : Operand.mem) = a = b

(* Is it safe to alter this instruction's flag results? Scan forward in the
   TBB: a flags writer before any reader means the flags are dead. The
   terminator counts as a reader unless it is an unconditional jmp/call. *)
let flags_dead_after insns idx =
  let n = Array.length insns in
  let rec scan k =
    if k >= n then true
    else
      let _, i = insns.(k) in
      if writes_flags i then true
      else if reads_flags i then false
      else if Insn.is_branch i then
        (match i with Insn.Jmp _ | Insn.Call _ -> true | _ -> false)
      else scan (k + 1)
  in
  scan (idx + 1)

let analyze trace =
  let findings = ref [] in
  let emit kind tbb_index insn_index saved_cycles note =
    findings := { kind; tbb_index; insn_index; saved_cycles; note } :: !findings
  in
  let cost i = Cost.insn i ~reps:1 in
  let run_segment seg =
    let st = fresh () in
    List.iter
      (fun tbb_index ->
        let insns = (Trace.tbb trace tbb_index).Tbb.block.Tea_cfg.Block.insns in
        Array.iteri
          (fun insn_index (_, i) ->
            let pos = (tbb_index, insn_index) in
            (* dead store: the previous store is overwritten before a read *)
            (match (i, st.store) with
            | Insn.Mov (Operand.Mem m, _), Some (m', (t', k')) when mem_equal m m' ->
                let _, dead = (Trace.tbb trace t').Tbb.block.Tea_cfg.Block.insns.(k') in
                emit Dead_store t' k' (cost dead) "store overwritten before any read"
            | _ -> ());
            if reads_memory i then st.store <- None;
            (* redundant load *)
            (match i with
            | Insn.Mov (Operand.Reg r, Operand.Mem m) -> (
                match List.find_opt (fun (m', _, _) -> mem_equal m m') st.loads with
                | Some (_, r0, _) ->
                    let replacement =
                      if Reg.equal r r0 then 0
                      else cost (Insn.Mov (Operand.Reg r, Operand.Reg r0))
                    in
                    emit Redundant_load tbb_index insn_index
                      (max 0 (cost i - replacement))
                      (Printf.sprintf "value already in %s" (Reg.to_string r0))
                | None -> ())
            | _ -> ());
            (* strength reduction *)
            (match i with
            | Insn.Imul (r, Operand.Imm v)
              when power_of_two v && flags_dead_after insns insn_index ->
                let shl = Insn.Shift (Insn.Shl, Operand.Reg r, log2i v) in
                emit Strength_reduction tbb_index insn_index
                  (max 0 (cost i - cost shl))
                  (Printf.sprintf "imul by %d -> shl %d" v (log2i v))
            | _ -> ());
            (* combine adjacent immediates *)
            (match (i, st.imm_alu) with
            | Insn.Alu ((Insn.Add | Insn.Sub), Operand.Reg r, Operand.Imm _), Some (r', _)
              when Reg.equal r r' ->
                emit Combine_immediates tbb_index insn_index (cost i)
                  "folds into the previous immediate"
            | _ -> ());
            (* ---- state update ---- *)
            if barrier i then kill_all st
            else begin
              (* stores invalidate remembered loads; a store from a register
                 re-establishes that mapping *)
              (match i with
              | Insn.Mov (Operand.Mem m, src) ->
                  st.loads <- [];
                  st.store <- Some (m, pos);
                  (match src with
                  | Operand.Reg r -> st.loads <- [ (m, r, pos) ]
                  | _ -> ())
              | Insn.Alu (_, Operand.Mem _, _)
              | Insn.Inc (Operand.Mem _)
              | Insn.Dec (Operand.Mem _)
              | Insn.Neg (Operand.Mem _)
              | Insn.Shift (_, Operand.Mem _, _)
              | Insn.Pop (Operand.Mem _) ->
                  st.loads <- [];
                  st.store <- None
              | _ -> ());
              List.iter (kill_reg st) (written_regs i);
              (* remember this load (after killing the overwritten reg) *)
              (match i with
              | Insn.Mov (Operand.Reg r, Operand.Mem m)
                when not (List.exists (Reg.equal r) (regs_of_mem m)) ->
                  st.loads <- (m, r, pos) :: st.loads
              | _ -> ());
              st.imm_alu <-
                (match i with
                | Insn.Alu ((Insn.Add | Insn.Sub), Operand.Reg r, Operand.Imm _)
                  when flags_dead_after insns insn_index -> Some (r, pos)
                | _ -> None)
            end)
          insns)
      seg
  in
  List.iter run_segment (segments trace);
  List.rev !findings

type savings = {
  findings : (finding * int) list;
  static_cycles : int;
  expected_cycles : int;
}

let weighted replayer trace =
  let profile = Tea_core.Replayer.trace_profile replayer trace.Trace.id in
  let count i = Option.value (List.assoc_opt i profile) ~default:0 in
  let fs = analyze trace in
  let findings = List.map (fun f -> (f, count f.tbb_index)) fs in
  {
    findings;
    static_cycles = List.fold_left (fun a f -> a + f.saved_cycles) 0 fs;
    expected_cycles =
      List.fold_left (fun a (f, n) -> a + (f.saved_cycles * n)) 0 findings;
  }

let render trace savings =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "optimization opportunities in trace %d (%s):\n" trace.Trace.id
    trace.Trace.kind;
  List.iter
    (fun (f, n) ->
      pr "  tbb %d insn %d: %-20s saves %d cyc x %d execs  (%s)\n" f.tbb_index
        f.insn_index (kind_name f.kind) f.saved_cycles n f.note)
    savings.findings;
  pr "static: %d cycles per full pass; profile-weighted: %d cycles\n"
    savings.static_cycles savings.expected_cycles;
  Buffer.contents buf
