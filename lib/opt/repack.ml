module Packed = Tea_core.Packed
module Replayer = Tea_core.Replayer
module Automaton = Tea_core.Automaton

type profile = {
  visits : int array;
  taken : int array;
  misses : int array;
}

let empty_profile packed =
  {
    visits = Array.make (Packed.n_slots packed) 0;
    taken = Array.make (Packed.n_edges packed) 0;
    misses = Array.make (Packed.n_slots packed) 0;
  }

let merge a b =
  if
    Array.length a.visits <> Array.length b.visits
    || Array.length a.taken <> Array.length b.taken
    || Array.length a.misses <> Array.length b.misses
  then invalid_arg "Repack.merge: profiles from different images";
  {
    visits = Array.map2 ( + ) a.visits b.visits;
    taken = Array.map2 ( + ) a.taken b.taken;
    misses = Array.map2 ( + ) a.misses b.misses;
  }

(* Pure edge lookup over the raw arrays, honoring the image's own layout
   (hot prefix + sorted tail; a flat image is the hot_len = 0 case). Used
   by the counting walk so collection disturbs no engine counters. *)
let find_edge (raw : Packed.raw) s pc =
  let lo = raw.Packed.offsets.(s) and hi = raw.Packed.offsets.(s + 1) in
  let stop = lo + raw.Packed.hot_len.(s) in
  let rec lin i =
    if i >= stop then -1
    else if raw.Packed.labels.(i) = pc then i
    else lin (i + 1)
  in
  let e = lin lo in
  if e >= 0 then e
  else if hi <= stop then -1
  else begin
    let base = ref stop and l = ref (hi - stop) in
    while !l > 1 do
      let half = !l lsr 1 in
      if raw.Packed.labels.(!base + half) <= pc then base := !base + half;
      l := !l - half
    done;
    if raw.Packed.labels.(!base) = pc then !base else -1
  end

let collect ?(state = Automaton.nte) packed ?(off = 0) addrs ~len =
  if len < 0 || off < 0 || off + len > Array.length addrs then
    invalid_arg "Repack.collect: len out of range";
  let p = empty_profile packed in
  if state < 0 || state >= Packed.n_slots packed then
    invalid_arg "Repack.collect: state id outside the image";
  let raw = Packed.to_raw packed in
  let st = ref state in
  for i = off to off + len - 1 do
    let pc = addrs.(i) in
    let s = !st in
    p.visits.(s) <- p.visits.(s) + 1;
    let e = find_edge raw s pc in
    if e >= 0 then begin
      p.taken.(e) <- p.taken.(e) + 1;
      st := raw.Packed.targets.(e)
    end
    else begin
      p.misses.(s) <- p.misses.(s) + 1;
      st :=
        (match Packed.head_of packed pc with
        | Some h -> h
        | None -> Automaton.nte)
    end
  done;
  p

let default_hot_prefix = 4

(* Exact profile-weighted scan cost of giving a span a hot prefix of
   length [k]: the j-th most-taken edge resolves in j+1 linear probes, the
   rest (and every miss) pay the whole prefix plus the binary search over
   the tail. [taken_desc] is sorted descending. Measured in the engine's
   own units ({!Packed.cost_search_step} per probe/halving), so the argmin
   below minimizes exactly what replay will charge. *)
let span_cost taken_desc ~misses ~k =
  let n = Array.length taken_desc in
  let tail_len = n - k in
  let tail_c = if tail_len > 0 then Packed.halvings tail_len + 1 else 0 in
  let full = k + tail_c in
  let c = ref (misses * full) in
  for j = 0 to n - 1 do
    c := !c + (taken_desc.(j) * if j < k then j + 1 else full)
  done;
  !c * Packed.cost_search_step

let repack ?(hot_prefix = default_hot_prefix) src prof =
  if hot_prefix < 0 then invalid_arg "Repack.repack: negative hot_prefix";
  let n = Packed.n_slots src in
  if
    Array.length prof.visits <> n
    || Array.length prof.taken <> Packed.n_edges src
    || Array.length prof.misses <> n
  then invalid_arg "Repack.repack: profile shape does not match the image";
  let raw = Packed.to_raw src in
  (* Slot order: NTE pinned at 0, then hotness-descending; ties keep
     source order so an empty profile yields the identity permutation. *)
  let old_of_new = Array.init n (fun i -> i) in
  let body = Array.sub old_of_new 1 (max 0 (n - 1)) in
  Array.sort
    (fun a b ->
      let c = Int.compare prof.visits.(b) prof.visits.(a) in
      if c <> 0 then c else Int.compare a b)
    body;
  Array.blit body 0 old_of_new 1 (Array.length body);
  let new_of_old = Array.make n 0 in
  Array.iteri (fun nw old -> new_of_old.(old) <- nw) old_of_new;
  let n_edges = Packed.n_edges src in
  let offsets = Array.make (n + 1) 0 in
  let labels = Array.make n_edges 0 in
  let targets = Array.make n_edges 0 in
  let hot_len = Array.make n 0 in
  let state_trace = Array.make n (-1) in
  let state_tbb = Array.make n 0 in
  let state_start = Array.make n 0 in
  let state_insns = Array.make n 0 in
  let orig_of = Array.make n 0 in
  for nw = 0 to n - 1 do
    let old = old_of_new.(nw) in
    state_trace.(nw) <- raw.Packed.state_trace.(old);
    state_tbb.(nw) <- raw.Packed.state_tbb.(old);
    state_start.(nw) <- raw.Packed.state_start.(old);
    state_insns.(nw) <- raw.Packed.state_insns.(old);
    orig_of.(nw) <- Packed.orig_state src old;
    let lo = raw.Packed.offsets.(old) and hi = raw.Packed.offsets.(old + 1) in
    let span = hi - lo in
    let out = offsets.(nw) in
    offsets.(nw + 1) <- out + span;
    if span > 0 then begin
      (* edges ordered most-taken-first (label ascending on ties, for a
         deterministic layout) *)
      let order = Array.init span (fun i -> lo + i) in
      Array.sort
        (fun a b ->
          let c = Int.compare prof.taken.(b) prof.taken.(a) in
          if c <> 0 then c
          else Int.compare raw.Packed.labels.(a) raw.Packed.labels.(b))
        order;
      let taken_desc = Array.map (fun e -> prof.taken.(e)) order in
      (* exact argmin over the candidate prefix lengths; k = 0 is the
         source layout's cost, so the chosen layout never charges more
         than the source did on the profiling stream *)
      let misses = prof.misses.(old) in
      let best_k = ref 0 in
      let best_c = ref (span_cost taken_desc ~misses ~k:0) in
      for k = 1 to min hot_prefix span do
        let c = span_cost taken_desc ~misses ~k in
        if c < !best_c then begin
          best_c := c;
          best_k := k
        end
      done;
      let k = !best_k in
      hot_len.(nw) <- k;
      for j = 0 to k - 1 do
        let e = order.(j) in
        labels.(out + j) <- raw.Packed.labels.(e);
        targets.(out + j) <- new_of_old.(raw.Packed.targets.(e))
      done;
      let tail = Array.sub order k (span - k) in
      Array.sort
        (fun a b -> Int.compare raw.Packed.labels.(a) raw.Packed.labels.(b))
        tail;
      Array.iteri
        (fun j e ->
          labels.(out + k + j) <- raw.Packed.labels.(e);
          targets.(out + k + j) <- new_of_old.(raw.Packed.targets.(e)))
        tail
    end
  done;
  (* Rebuild the head hash over the renumbered states. Re-inserting in
     address order reproduces {!Packed.freeze}'s insertion order, so the
     probe-chain layout — and with it the hash-path cycle charges — are
     unchanged from the source image. *)
  let heads = ref [] in
  Array.iteri
    (fun i key ->
      if key >= 0 then
        heads := (key, new_of_old.(raw.Packed.hash_vals.(i))) :: !heads)
    raw.Packed.hash_keys;
  let heads = List.sort (fun (a, _) (b, _) -> Int.compare a b) !heads in
  let hash_keys, hash_vals = Packed.build_hash heads n in
  let raw2 =
    {
      Packed.offsets;
      labels;
      targets;
      state_trace;
      state_tbb;
      state_start;
      state_insns;
      hash_keys;
      hash_vals;
      hot_len;
      orig_of;
    }
  in
  match Packed.automaton src with
  | Some auto -> Packed.of_raw ~auto ~repacked:true raw2
  | None -> Packed.of_raw ~repacked:true raw2

let moved_states packed =
  let n = Packed.n_slots packed in
  let moved = ref 0 in
  for s = 0 to n - 1 do
    if Packed.orig_state packed s <> s then incr moved
  done;
  !moved

(* ---- edge-profile serialization (TEAEP1) ----

   magic "TEAEP1" | varint n_slots | varint n_edges
   | n_slots visit varints | n_edges taken varints | n_slots miss varints

   Counts are non-negative ints; LEB128 varints keep typical profiles
   (mostly small counts) compact. Plain Stdlib channels — the format is
   shared with offline tooling ([tea_tool repack --save-profile],
   [tea_tool info --profile]) and the serve daemon's drift reference. *)

let profile_magic = "TEAEP1"

let put_varint buf v =
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!v land 0x7f)));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v)

let save_profile path p =
  let buf = Buffer.create (4096 + (Array.length p.taken * 2)) in
  Buffer.add_string buf profile_magic;
  put_varint buf (Array.length p.visits);
  put_varint buf (Array.length p.taken);
  Array.iter (fun v -> put_varint buf (max 0 v)) p.visits;
  Array.iter (fun v -> put_varint buf (max 0 v)) p.taken;
  Array.iter (fun v -> put_varint buf (max 0 v)) p.misses;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf)

let load_profile path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let corrupt what = failwith ("Repack.load_profile: " ^ what) in
      let magic = Bytes.create (String.length profile_magic) in
      (try really_input ic magic 0 (Bytes.length magic)
       with End_of_file -> corrupt "truncated header");
      if Bytes.to_string magic <> profile_magic then corrupt "bad magic";
      let get_varint () =
        let v = ref 0 and shift = ref 0 and stop = ref false in
        while not !stop do
          let byte =
            try input_byte ic with End_of_file -> corrupt "truncated varint"
          in
          if !shift > 56 then corrupt "varint overflow";
          v := !v lor ((byte land 0x7f) lsl !shift);
          shift := !shift + 7;
          if byte < 0x80 then stop := true
        done;
        !v
      in
      let n_slots = get_varint () in
      let n_edges = get_varint () in
      if n_slots < 1 || n_slots > 0x40000000 || n_edges < 0
         || n_edges > 0x40000000
      then corrupt "implausible shape";
      let read_array n = Array.init n (fun _ -> get_varint ()) in
      let visits = read_array n_slots in
      let taken = read_array n_edges in
      let misses = read_array n_slots in
      (match input_char ic with
      | _ -> corrupt "trailing bytes"
      | exception End_of_file -> ());
      { visits; taken; misses })

let pgo_replay ?hot_prefix src ?insns addrs ~len =
  let baseline = Replayer.create_packed (Packed.dup src) in
  Replayer.feed_run baseline ?insns addrs ~len;
  let prof = collect src addrs ~len in
  let repacked = repack ?hot_prefix src prof in
  let tuned = Replayer.create_packed repacked in
  Replayer.feed_run tuned ?insns addrs ~len;
  (repacked, baseline, tuned)
