(** Profile-guided repacking of a {!Tea_core.Packed} image.

    Real DBTs chain hot transitions so the dispatcher is skipped on the
    common path; TEA's DFA makes the same redundancy explicit, and replay
    profiles say exactly which transitions are hot. This pass consumes a
    replay {!profile} (per-state visit counts, per-edge taken counts,
    per-state scan misses) and rebuilds the image three ways:

    + states renumbered hotness-descending (NTE pinned at slot 0) so the
      hot working set is cache-dense;
    + each edge span reordered most-taken-first behind a linear-scan hot
      prefix, with a label-sorted binary-search tail — the prefix length
      is chosen {e per state} by exact minimization of the
      profile-weighted scan cost, with the source layout (prefix 0) always
      a candidate, so on the profiling stream the repacked image never
      charges more simulated cycles than the source;
    + a per-state monomorphic inline cache in front of any scan
      ({!Tea_core.Packed.ic_hits}).

    Repacking is a pure permutation: replay over the repacked image
    produces identical TBB mappings (ids translate at reporting
    boundaries) and identical coverage/stats; simulated cycles change only
    through the documented scan-cost model. *)

type profile = {
  visits : int array;  (** per source slot: steps taken from this state *)
  taken : int array;   (** per source edge index: times resolved *)
  misses : int array;  (** per source slot: span scans that found no edge *)
}

val empty_profile : Tea_core.Packed.t -> profile
(** All-zero counts shaped for this image. Repacking with it is the
    identity layout (plus the inline cache). *)

val collect :
  ?state:Tea_core.Automaton.state ->
  Tea_core.Packed.t ->
  ?off:int ->
  int array ->
  len:int ->
  profile
(** [collect packed addrs ~len] — a pure counting walk of the address
    stream over the image's own layout, from [state] (default NTE).
    Touches none of the engine's counters or telemetry.
    @raise Invalid_argument on a bad range or state id. *)

val merge : profile -> profile -> profile
(** Pointwise sum; profiles of disjoint stream chunks merge into the
    whole-stream profile.
    @raise Invalid_argument when the shapes differ. *)

val default_hot_prefix : int
(** Default cap on per-state hot-prefix length (4). *)

val repack :
  ?hot_prefix:int -> Tea_core.Packed.t -> profile -> Tea_core.Packed.t
(** [repack src prof] — the repacked image ({!Tea_core.Packed.is_repacked}
    = true), with [src]'s automaton reattached when it has one. [src] may
    itself be repacked (permutations compose).
    @raise Invalid_argument when [prof]'s shape does not match [src]. *)

val moved_states : Tea_core.Packed.t -> int
(** Slots whose id changed under the permutation (0 for a flat image). *)

val save_profile : string -> profile -> unit
(** Write a profile as a TEAEP1 file (magic, varint shape, varint
    counts). Negative counts are clamped to 0. *)

val load_profile : string -> profile
(** Read a TEAEP1 file. @raise Failure on bad magic, truncation or
    trailing bytes; shape-check against an image is the caller's job
    (e.g. {!repack} raises if it does not match). *)

val pgo_replay :
  ?hot_prefix:int ->
  Tea_core.Packed.t ->
  ?insns:int array ->
  int array ->
  len:int ->
  Tea_core.Packed.t * Tea_core.Replayer.t * Tea_core.Replayer.t
(** [pgo_replay src addrs ~len] — the whole profile-guided cycle on one
    stream: replay a baseline over a {!Tea_core.Packed.dup} of [src],
    {!collect}, {!repack}, replay again over the repacked image. Returns
    [(repacked, baseline_replayer, repacked_replayer)] for side-by-side
    comparison; [src]'s own counters are untouched. *)
