(* Closed-loop continuous PGO: the pieces that turn "the drift gauge
   crossed threshold" into "the daemon dispatches through a freshly
   repacked+fused image", without stopping replay.

   The serve daemon retains each completed session's raw trace bytes.
   A retune pass decodes those bytes back into per-asid block segments
   (cut at invalidations/interrupts, exactly the demux-first discipline
   of Tea_parallel.Shard.load_events — rebuilt here over in-memory
   strings because the daemon retains bytes, not files), walks them
   through Repack.collect to get an edge profile, and rebuilds the
   tuning ladder from the *flat* source image: collect -> repack ->
   collect again over the repacked layout -> fuse. Rebuilding from flat
   every generation keeps each epoch's image one permutation away from
   orig-id space and every TEAEP1 snapshot in orig space, so epochs
   never compound.

   The rebuild runs in a background domain (a builder below) while the
   caller keeps replaying on the current image; the swap itself is the
   caller's job (Replayer.rebind at a sync point). *)

module Packed = Tea_core.Packed
module Pc_trace = Tea_core.Pc_trace

type segment = { starts : int array; len : int }

(* -- decoding retained streams back into collectable segments -- *)

type bucket = { mutable bs : int array; mutable bn : int; mutable segs : segment list }

let segments_of_raws raws =
  let buckets : (int, bucket) Hashtbl.t = Hashtbl.create 8 in
  let bucket a =
    match Hashtbl.find_opt buckets a with
    | Some b -> b
    | None ->
        let b = { bs = Array.make 1024 0; bn = 0; segs = [] } in
        Hashtbl.add buckets a b;
        b
  in
  let cut b =
    if b.bn > 0 then begin
      b.segs <- { starts = b.bs; len = b.bn } :: b.segs;
      b.bs <- Array.make 1024 0;
      b.bn <- 0
    end
  in
  let emit ~asid ev =
    match ev with
    | Pc_trace.Block { start; insns = _ } ->
        let b = bucket asid in
        if b.bn = Array.length b.bs then begin
          let s' = Array.make (2 * b.bn) 0 in
          Array.blit b.bs 0 s' 0 b.bn;
          b.bs <- s'
        end;
        b.bs.(b.bn) <- start;
        b.bn <- b.bn + 1
    | Pc_trace.Invalidate { asid = target } -> (
        match Hashtbl.find_opt buckets target with
        | Some b -> cut b
        | None -> ())
    | Pc_trace.Interrupt -> (
        match Hashtbl.find_opt buckets asid with
        | Some b -> cut b
        | None -> ())
    | Pc_trace.Switch _ -> ()
  in
  (* each retained string is one complete session stream: private
     decoder, private asid buckets — sessions never share automata *)
  let out = ref [] in
  List.iter
    (fun raw ->
      Hashtbl.reset buckets;
      let dec = Pc_trace.decoder () in
      Pc_trace.decoder_feed dec raw emit;
      Pc_trace.decoder_finish dec;
      Hashtbl.iter
        (fun _ b ->
          cut b;
          out := List.rev_append b.segs !out)
        buckets)
    raws;
  !out

let collect_segments img segs =
  List.fold_left
    (fun acc { starts; len } ->
      Repack.merge acc (Repack.collect img starts ~len))
    (Repack.empty_profile img) segs

(* -- one generation of the tuning ladder -- *)

let build ?(fuse = true) ?hot_prefix ~src ~profile_of () =
  if Packed.is_fused src then
    invalid_arg "Retune.build: source image must be unfused";
  let prof = profile_of src in
  let repacked = Repack.repack ?hot_prefix src prof in
  let tuned =
    if fuse then Fuse.fuse ~profile:(profile_of repacked) repacked
    else repacked
  in
  (tuned, prof)

(* -- the background builder -- *)

type outcome = (Packed.t * Repack.profile, exn) result

type builder = {
  cell : outcome option Atomic.t;
  mutable dom : unit Domain.t option;
}

let launch f =
  let cell = Atomic.make None in
  let dom =
    Domain.spawn (fun () ->
        let r = try Ok (f ()) with e -> Error e in
        Atomic.set cell (Some r))
  in
  { cell; dom = Some dom }

let join_done b =
  match b.dom with
  | Some d ->
      Domain.join d;
      b.dom <- None
  | None -> ()

let poll b =
  match Atomic.get b.cell with
  | None -> None
  | Some r ->
      join_done b;
      Some r

let await b =
  join_done b;
  match Atomic.get b.cell with
  | Some r -> r
  | None -> assert false (* the domain ran to completion before join *)
