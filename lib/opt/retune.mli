(** Closed-loop continuous PGO: background rebuild of the tuning ladder
    from live traffic.

    {!Repack} and {!Fuse} are offline passes — an operator collects a
    profile, rebuilds, restarts. This module packages the same ladder
    for a daemon that must not stop: decode the raw trace bytes it
    retained back into per-asid block segments ({!segments_of_raws}),
    fold them into an edge profile over any image layout
    ({!collect_segments}), rebuild collect → repack → collect → fuse
    from the {e flat} source image ({!build}), and do it all in a
    background domain ({!launch}/{!poll}) while replay continues on the
    current image. The swap itself is the caller's
    ({!Tea_core.Replayer.rebind} at a sync point — a drain-cycle
    boundary in the serve daemon, a chunk seam offline).

    Rebuilding from the flat image every generation — rather than
    re-permuting the current one — keeps each epoch exactly one
    permutation from orig-id space, so the TEAEP1 snapshot {!build}
    returns is always in original automaton ids and epochs never
    compound permutations. *)

type segment = { starts : int array; len : int }
(** One gap-free run of block start addresses for one asid (only
    [starts.(0..len-1)] is valid; the array may be over-allocated). *)

val segments_of_raws : string list -> segment list
(** Decode complete raw trace streams (any {!Tea_core.Pc_trace} format,
    one string per retained session) and demux into per-asid segments,
    cut at invalidations and interrupts — the same segmentation the
    replayer's cut semantics induce, so collecting over the segments
    sees exactly the automaton walks replay performed. Insn counts are
    dropped: edge profiles count visits, not coverage.
    @raise Tea_core.Pc_trace.Corrupt on bad framing. *)

val collect_segments :
  Tea_core.Packed.t -> segment list -> Repack.profile
(** {!Repack.collect} each segment from NTE over the image and
    {!Repack.merge} the results; the profile is in the image's own id
    space (orig space when the image is flat). *)

val build :
  ?fuse:bool ->
  ?hot_prefix:int ->
  src:Tea_core.Packed.t ->
  profile_of:(Tea_core.Packed.t -> Repack.profile) ->
  unit ->
  Tea_core.Packed.t * Repack.profile
(** [build ~src ~profile_of ()] runs one generation of the ladder:
    [profile_of src] (the TEAEP1-saveable snapshot, in [src]'s id
    space), {!Repack.repack}, then — unless [fuse] is [false] —
    {!Fuse.fuse} guided by [profile_of] re-walked over the repacked
    layout. Returns the tuned image and the snapshot profile.
    [profile_of] is typically [fun img -> collect_segments img segs].
    @raise Invalid_argument when [src] is fused (rebuild from the flat
    source, not the previous generation). *)

type outcome = (Tea_core.Packed.t * Repack.profile, exn) result

type builder
(** A rebuild running in its own domain. OCaml values are shared-heap,
    so the built image crosses back to the launching domain for free;
    its mutable counters are untouched until the swap. *)

val launch : (unit -> Tea_core.Packed.t * Repack.profile) -> builder
(** Spawn the rebuild. Exceptions are captured into the outcome. *)

val poll : builder -> outcome option
(** Nonblocking completion check; joins the finished domain on first
    success (idempotent afterwards). *)

val await : builder -> outcome
(** Block until the rebuild finishes (used at daemon shutdown so no
    domain leaks). *)
