type domain_stat = {
  d_index : int;
  d_tasks : int;
  d_busy : float;
  d_wait : float;
  d_units : int;
}

(* Per-worker counters. [w_tasks]/[w_busy]/[w_wait] are written only by
   the owning worker and read by the driver after a [map] completed (the
   queue mutex orders those accesses); [w_units] is an Atomic because
   [add_units] may be called concurrently with the driver reading stats. *)
type wstat = {
  w_index : int;
  mutable w_tasks : int;
  mutable w_busy : float;
  mutable w_wait : float;
  w_units : int Atomic.t;
  mutable w_domain : Domain.id option;
}

(* A queued task, tagged with its batch's completion counter. Each [map]
   call owns a private counter (guarded by [t.m]), so several driver
   threads can have batches in flight on the same pool concurrently —
   a worker finishing a task decrements that task's own batch and wakes
   the drivers only when a whole batch drained. *)
type job = { run : unit -> unit; batch : int ref (* guarded by [m] *) }

type t = {
  jobs : int;
  m : Mutex.t;
  work : Condition.t; (* signalled when tasks are queued or on shutdown *)
  idle : Condition.t; (* broadcast whenever some batch fully completes *)
  q : job Queue.t;
  mutable closed : bool;
  stats : wstat array;
  mutable doms : unit Domain.t array; (* [||] for an inline pool *)
  residual : int Atomic.t; (* units credited from outside any worker *)
}

let now () = Unix.gettimeofday ()

let fresh_wstat i =
  {
    w_index = i;
    w_tasks = 0;
    w_busy = 0.0;
    w_wait = 0.0;
    w_units = Atomic.make 0;
    w_domain = None;
  }

(* Worker body: wait for a task (counting the wait), run it (tasks catch
   their own exceptions — see [map]), account, repeat until shutdown. *)
let rec worker_loop t ws =
  Mutex.lock t.m;
  let t0 = now () in
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.work t.m
  done;
  ws.w_wait <- ws.w_wait +. (now () -. t0);
  if Queue.is_empty t.q then Mutex.unlock t.m (* closed: drain and exit *)
  else begin
    let job = Queue.pop t.q in
    Mutex.unlock t.m;
    let t1 = now () in
    job.run ();
    ws.w_busy <- ws.w_busy +. (now () -. t1);
    ws.w_tasks <- ws.w_tasks + 1;
    Mutex.lock t.m;
    job.batch := !(job.batch) - 1;
    if !(job.batch) = 0 then Condition.broadcast t.idle;
    Mutex.unlock t.m;
    worker_loop t ws
  end

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | None -> Error (Printf.sprintf "invalid job count %S (expected an integer)" s)
  | Some n when n < 1 ->
      Error (Printf.sprintf "invalid job count %d (must be >= 1)" n)
  | Some n -> Ok n

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let n_workers = if jobs = 1 then 1 else jobs in
  let t =
    {
      jobs;
      m = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      q = Queue.create ();
      closed = false;
      stats = Array.init n_workers fresh_wstat;
      doms = [||];
      residual = Atomic.make 0;
    }
  in
  if jobs = 1 then
    (* inline pool: the caller is worker 0 *)
    t.stats.(0).w_domain <- Some (Domain.self ())
  else
    t.doms <-
      Array.init jobs (fun i ->
          Domain.spawn (fun () ->
              let ws = t.stats.(i) in
              ws.w_domain <- Some (Domain.self ());
              worker_loop t ws));
  t

let jobs t = t.jobs

let reraise_first results =
  Array.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) | None -> ())
    results;
  Array.map
    (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
    results

let check_open t =
  (* under [t.m] for the domained path; the inline pool has no workers to
     race with, but the lock also serializes against a concurrent
     [shutdown] flipping the flag mid-check *)
  Mutex.lock t.m;
  let closed = t.closed in
  Mutex.unlock t.m;
  if closed then invalid_arg "Pool.map: pool is shut down"

let map t ~f n =
  if n < 0 then invalid_arg "Pool.map: negative task count";
  check_open t;
  Tea_telemetry.Probe.with_span "pool.map"
    ~args:[ ("tasks", string_of_int n); ("jobs", string_of_int t.jobs) ]
  @@ fun () ->
  if n = 0 then [||]
  else if t.jobs = 1 then begin
    (* inline: run on the caller, still feeding the worker-0 counters so
       [--jobs 1] and [--jobs n] report through the same channel *)
    let ws = t.stats.(0) in
    let results = Array.make n None in
    for i = 0 to n - 1 do
      let t0 = now () in
      results.(i) <-
        Some (try Ok (f i) with e -> Error (e, Printexc.get_raw_backtrace ()));
      ws.w_busy <- ws.w_busy +. (now () -. t0);
      ws.w_tasks <- ws.w_tasks + 1
    done;
    reraise_first results
  end
  else begin
    let results = Array.make n None in
    (* per-batch completion counter: this map waits on its own batch
       only, so concurrent maps from other driver threads neither wake
       us spuriously-complete nor absorb our completions *)
    let batch = ref n in
    Mutex.lock t.m;
    if t.closed then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.map: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.add
        {
          run =
            (fun () ->
              results.(i) <-
                Some
                  (try Ok (f i)
                   with e -> Error (e, Printexc.get_raw_backtrace ())));
          batch;
        }
        t.q
    done;
    Condition.broadcast t.work;
    (* Wait for this batch. The workers' writes into [results] happen
       before their final [batch] decrement under [t.m], so observing
       [!batch = 0] here orders every result before our reads. [idle] is
       a broadcast shared by all in-flight batches; each driver re-checks
       its own counter. *)
    while !batch > 0 do
      Condition.wait t.idle t.m
    done;
    Mutex.unlock t.m;
    reraise_first results
  end

let map_list t f xs =
  let arr = Array.of_list xs in
  Array.to_list (map t ~f:(fun i -> f arr.(i)) (Array.length arr))

let add_units t n =
  let self = Domain.self () in
  let rec go i =
    if i >= Array.length t.stats then
      ignore (Atomic.fetch_and_add t.residual n)
    else
      match t.stats.(i).w_domain with
      | Some id when id = self -> ignore (Atomic.fetch_and_add t.stats.(i).w_units n)
      | _ -> go (i + 1)
  in
  go 0

(* Idempotent under concurrency: the closed check and the [doms] grab
   both happen under [t.m], so exactly one caller observes the open pool
   and owns the join — a second concurrent caller sees [closed] already
   set (or [doms] already emptied) and returns without double-joining. *)
let shutdown t =
  Mutex.lock t.m;
  if t.closed then Mutex.unlock t.m
  else begin
    t.closed <- true;
    Condition.broadcast t.work;
    let doms = t.doms in
    t.doms <- [||];
    Mutex.unlock t.m;
    Array.iter Domain.join doms
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let domain_stats t =
  Array.to_list
    (Array.map
       (fun ws ->
         {
           d_index = ws.w_index;
           d_tasks = ws.w_tasks;
           d_busy = ws.w_busy;
           d_wait = ws.w_wait;
           d_units = Atomic.get ws.w_units;
         })
       t.stats)

let residual_units t = Atomic.get t.residual

(* The per-domain counters as a telemetry snapshot: worker indices are
   zero-padded so the rendered rows sort numerically, and the wall-clock
   seconds become integer microsecond counters (the snapshot algebra is
   integer sums). These stay out of the {!Tea_telemetry.Probe} registry on
   purpose — busy/wait are wall-clock and would break the determinism of
   the probe counters a [--jobs n] run must share with [--jobs 1]. *)
let metrics_snapshot t =
  let m = Tea_telemetry.Metrics.create () in
  let us s = int_of_float (1e6 *. s) in
  Tea_telemetry.Metrics.count m "pool.jobs" t.jobs;
  Array.iter
    (fun ws ->
      let pre = Printf.sprintf "pool.domain%02d." ws.w_index in
      Tea_telemetry.Metrics.count m (pre ^ "tasks") ws.w_tasks;
      Tea_telemetry.Metrics.count m (pre ^ "busy_us") (us ws.w_busy);
      Tea_telemetry.Metrics.count m (pre ^ "wait_us") (us ws.w_wait);
      Tea_telemetry.Metrics.count m (pre ^ "units") (Atomic.get ws.w_units))
    t.stats;
  Tea_telemetry.Metrics.count m "pool.residual_units" (Atomic.get t.residual);
  Tea_telemetry.Metrics.snapshot m
