(** A persistent Domain-based worker pool (OCaml 5 [Domain]s).

    The table drivers and the sharded PC-trace replayer both reduce to the
    same shape: [n] independent tasks, results wanted in task order. The
    pool spawns its domains once and reuses them across every {!map} —
    domain spawn is milliseconds, a table-sweep task is seconds, but the
    ablation and bench paths map dozens of times and a respawn per map
    would dominate the small runs.

    [jobs = 1] is the degenerate pool: no domains are spawned and {!map}
    runs inline on the caller, so [--jobs 1] is the sequential code path,
    not a one-worker simulation of it.

    Determinism: {!map} returns results indexed by task, never by
    completion order. Scheduling affects only the wall clock and the
    per-domain counters — merge-friendly results (see {!Profile}) make the
    whole parallel run bit-identical to sequential.

    {!map} is not reentrant: tasks must not call {!map} on their own pool
    (the nested call would wait on workers that are all busy running its
    parents). It {e is} safe to call {!map} from several driver threads
    or domains concurrently: each call owns a private batch-completion
    counter, so interleaved batches complete independently and each
    driver wakes only when its own batch drained (stress-tested with
    concurrent drivers in [test_parallel.ml]). On an inline [jobs = 1]
    pool concurrent drivers each run their tasks inline — results stay
    correct, only the shared worker-0 wall-clock counters may interleave.
    {!shutdown} is likewise safe under concurrent callers: exactly one
    joins the workers, the rest return immediately. *)

type t

val create : jobs:int -> t
(** [create ~jobs] — a pool of [jobs] worker domains ([jobs >= 1]; 1 means
    inline execution, no domains).
    @raise Invalid_argument when [jobs < 1]. *)

val parse_jobs : string -> (int, string) result
(** Validate a user-supplied job count (a CLI [--jobs] value): accepts
    exactly the integers {!create} accepts. [Error msg] carries a
    human-readable reason ([0], negatives and non-integers are all
    rejected rather than silently falling back to sequential). *)

val jobs : t -> int

val map : t -> f:(int -> 'a) -> int -> 'a array
(** [map t ~f n] runs [f 0 .. f (n-1)] on the pool and returns the results
    in index order. Blocks until every task finished. If any task raised,
    the first such exception (by task index) is re-raised on the caller
    with its backtrace — after all tasks completed, so the pool stays
    reusable.
    @raise Invalid_argument on a pool that was {!shutdown}. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)

val add_units : t -> int -> unit
(** Credit [n] units of work (for us: replayed blocks) to the calling
    domain's throughput counter. Callable from inside tasks; outside any
    worker the units land on the pool-wide residual counter. *)

val shutdown : t -> unit
(** Join all workers. Idempotent, including under concurrent callers:
    the closed flag and the worker handles are claimed under the pool
    mutex, so exactly one caller performs the join and later (or
    concurrent) callers return without double-joining. {!map} afterwards
    raises. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, and {!shutdown} even on exception. *)

(** {2 Observability} *)

type domain_stat = {
  d_index : int;  (** worker index, 0-based *)
  d_tasks : int;  (** tasks executed *)
  d_busy : float;  (** seconds spent inside tasks *)
  d_wait : float;  (** seconds spent waiting on the queue *)
  d_units : int;  (** work units credited via {!add_units} *)
}

val domain_stats : t -> domain_stat list
(** One entry per worker (a single entry for an inline [jobs = 1] pool),
    in index order. Read when no {!map} is in flight. *)

val residual_units : t -> int
(** Units credited from outside any pool worker. *)

val metrics_snapshot : t -> Tea_telemetry.Metrics.snapshot
(** The same counters as a telemetry snapshot ([pool.jobs],
    [pool.domainNN.tasks/busy_us/wait_us/units], [pool.residual_units]),
    for {!Tea_report.Stats.render}. Deliberately separate from the global
    {!Tea_telemetry.Probe} registry: busy/wait are wall-clock and must not
    leak into the deterministic probe counters. Read when no {!map} is in
    flight. *)
