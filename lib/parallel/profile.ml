type t = Tea_core.Replayer.snapshot = {
  counts : (Tea_core.Automaton.state * int) list;
  covered : int;
  total : int;
  enters : int;
  exits : int;
  steps : int;
  in_trace_hits : int;
  cache_hits : int;
  global_hits : int;
  global_misses : int;
  cycles : int;
}

let empty =
  {
    counts = [];
    covered = 0;
    total = 0;
    enters = 0;
    exits = 0;
    steps = 0;
    in_trace_hits = 0;
    cache_hits = 0;
    global_hits = 0;
    global_misses = 0;
    cycles = 0;
  }

let of_replayer = Tea_core.Replayer.snapshot

(* Merge two sorted-by-state count lists, summing collisions. Lists are
   bounded by the automaton's state count, so plain recursion is fine. *)
let rec merge_counts a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (sa, ca) :: ta, (sb, cb) :: tb ->
      if sa < sb then (sa, ca) :: merge_counts ta b
      else if sb < sa then (sb, cb) :: merge_counts a tb
      else (sa, ca + cb) :: merge_counts ta tb

let merge a b =
  {
    counts = merge_counts a.counts b.counts;
    covered = a.covered + b.covered;
    total = a.total + b.total;
    enters = a.enters + b.enters;
    exits = a.exits + b.exits;
    steps = a.steps + b.steps;
    in_trace_hits = a.in_trace_hits + b.in_trace_hits;
    cache_hits = a.cache_hits + b.cache_hits;
    global_hits = a.global_hits + b.global_hits;
    global_misses = a.global_misses + b.global_misses;
    cycles = a.cycles + b.cycles;
  }

let merge_all = List.fold_left merge empty

let equal (a : t) (b : t) = a = b

let coverage t =
  if t.total = 0 then 0.0 else float_of_int t.covered /. float_of_int t.total

let pp ppf t =
  Format.fprintf ppf
    "{covered=%d/%d enters=%d exits=%d steps=%d in=%d cache=%d glob=%d/%d \
     cycles=%d states=%d}"
    t.covered t.total t.enters t.exits t.steps t.in_trace_hits t.cache_hits
    t.global_hits t.global_misses t.cycles (List.length t.counts)
