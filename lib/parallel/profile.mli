(** Mergeable replay profiles.

    A profile is {!Tea_core.Replayer.snapshot}: every observable total a
    replayer accumulates — per-state execution counts, covered/total
    instructions, trace enters/exits, the engine's transition stats and
    its simulated cycles. All fields are integer sums over the steps
    replayed, so profiles of disjoint step ranges combine by pointwise
    addition: {!merge} is associative and commutative with {!empty} as
    identity, and a sharded parallel replay merges to exactly the
    sequential profile as long as every step was replayed once from the
    state the sequential run would have been in (see {!Shard}). *)

type t = Tea_core.Replayer.snapshot = {
  counts : (Tea_core.Automaton.state * int) list;
      (** execution count per state, sorted by id, zero counts omitted *)
  covered : int;
  total : int;
  enters : int;
  exits : int;
  steps : int;
  in_trace_hits : int;
  cache_hits : int;
  global_hits : int;
  global_misses : int;
  cycles : int;
}

val empty : t
(** The {!merge} identity: all totals 0, no counts. *)

val of_replayer : Tea_core.Replayer.t -> t
(** = {!Tea_core.Replayer.snapshot}. *)

val merge : t -> t -> t
(** Pointwise sum; the counts lists merge-sort by state id. Associative,
    commutative, [empty]-neutral (property-tested). *)

val merge_all : t list -> t

val equal : t -> t -> bool

val coverage : t -> float
(** [covered / total] (0 when nothing replayed). *)

val pp : Format.formatter -> t -> unit
(** One-line rendering, for test failures and debugging. *)
