module Automaton = Tea_core.Automaton
module Packed = Tea_core.Packed
module Replayer = Tea_core.Replayer
module Pc_trace = Tea_core.Pc_trace

(* What a worker learned about its chunk [lo, hi). *)
type chunk =
  | Whole of Profile.t * Automaton.state
      (* replayed [lo, hi) entirely (chunk 0: entry state known = NTE) *)
  | Suffix of { sync : int; profile : Profile.t; exit_state : Automaton.state }
      (* replayed (sync, hi) from the entry-independent state at [sync];
         the prefix [lo, sync] is the driver's *)
  | Unsynced (* no sync point in the chunk; the driver replays all of it *)

(* The union of every state's in-trace labels. A PC outside this set
   resolves identically from any state (head-or-NTE), which is what makes
   it a legal chunk seam. Built once per replay, shared read-only across
   the workers. *)
let edge_labels packed =
  let raw = Packed.to_raw packed in
  let h = Hashtbl.create (2 * Array.length raw.Packed.labels + 1) in
  Array.iter (fun l -> Hashtbl.replace h l ()) raw.Packed.labels;
  h

let resolve packed pc =
  match Packed.head_of packed pc with Some s -> s | None -> Automaton.nte

let default_make p = Replayer.create_packed (Packed.dup p)

let replay_span pool packed ?(make = default_make) ?entry ?insns starts ~off
    ~len =
  if off < 0 || len < 0 || off + len > Array.length starts then
    invalid_arg "Shard.replay_span: span out of range";
  (match insns with
  | Some a when Array.length a < off + len ->
      invalid_arg "Shard.replay_span: insns array shorter than span"
  | _ -> ());
  let n_chunks = max 1 (min (Pool.jobs pool) len) in
  let bounds =
    Array.init n_chunks (fun i ->
        (off + (i * len / n_chunks), off + ((i + 1) * len / n_chunks)))
  in
  let labels = edge_labels packed in
  let work i =
    let lo, hi = bounds.(i) in
    if i = 0 then begin
      let rep = make packed in
      (match entry with Some e -> Replayer.set_state rep e | None -> ());
      Replayer.feed_run rep ~off:lo ?insns starts ~len:(hi - lo);
      Pool.add_units pool (hi - lo);
      Whole (Profile.of_replayer rep, Replayer.state rep)
    end
    else begin
      let sync = ref lo in
      while !sync < hi && Hashtbl.mem labels starts.(!sync) do
        incr sync
      done;
      if !sync >= hi then Unsynced
      else begin
        let k = !sync in
        let rep = make packed in
        Replayer.set_state rep (resolve packed starts.(k));
        let n = hi - k - 1 in
        if n > 0 then Replayer.feed_run rep ~off:(k + 1) ?insns starts ~len:n;
        Pool.add_units pool n;
        Suffix
          {
            sync = k;
            profile = Profile.of_replayer rep;
            exit_state = Replayer.state rep;
          }
      end
    end
  in
  let chunks = Pool.map pool ~f:work n_chunks in
  (* Sequential stitch: carry the true state across chunks, replaying
     only what no worker could — each chunk's uncertain prefix. *)
  let driver = make packed in
  (match entry with Some e -> Replayer.set_state driver e | None -> ());
  let driver_steps = ref 0 in
  Array.iteri
    (fun i chunk ->
      let lo, hi = bounds.(i) in
      match chunk with
      | Whole (_, exit_state) -> Replayer.set_state driver exit_state
      | Suffix { sync; exit_state; _ } ->
          Replayer.feed_run driver ~off:lo ?insns starts ~len:(sync - lo + 1);
          driver_steps := !driver_steps + (sync - lo + 1);
          (* the step at [sync] is entry-independent: the true walk must
             land exactly where the worker started *)
          assert (Replayer.state driver = resolve packed starts.(sync));
          Replayer.set_state driver exit_state
      | Unsynced ->
          if hi > lo then begin
            Replayer.feed_run driver ~off:lo ?insns starts ~len:(hi - lo);
            driver_steps := !driver_steps + (hi - lo)
          end)
    chunks;
  Pool.add_units pool !driver_steps;
  let parts =
    Array.to_list
      (Array.map
         (function
           | Whole (p, _) -> p | Suffix { profile; _ } -> profile
           | Unsynced -> Profile.empty)
         chunks)
  in
  (Profile.merge_all (Profile.of_replayer driver :: parts), Replayer.state driver)

let replay_arrays pool packed ?make ?insns starts ~len =
  if len < 0 || len > Array.length starts then
    invalid_arg "Shard.replay_arrays: len out of range";
  (match insns with
  | Some a when Array.length a < len ->
      invalid_arg "Shard.replay_arrays: insns array shorter than len"
  | _ -> ());
  fst (replay_span pool packed ?make ?insns starts ~off:0 ~len)

let load_pc_trace path =
  let starts = ref (Array.make 4096 0) and insns = ref (Array.make 4096 0) in
  let n = ref 0 in
  Pc_trace.fold path () (fun () ~start ~insns:ins ->
      let cap = Array.length !starts in
      if !n = cap then begin
        let s' = Array.make (2 * cap) 0 and i' = Array.make (2 * cap) 0 in
        Array.blit !starts 0 s' 0 !n;
        Array.blit !insns 0 i' 0 !n;
        starts := s';
        insns := i'
      end;
      !starts.(!n) <- start;
      !insns.(!n) <- ins;
      incr n);
  (!starts, !insns, !n)

let replay_pc_trace pool packed ?make path =
  let starts, insns, len = load_pc_trace path in
  (replay_arrays pool packed ?make ~insns starts ~len, len)

(* ---- multi-asid event streams ----

   [replay_arrays] assumes one uncut single-asid stream: its sync-point
   chunking carries ONE automaton state across seams, so a chunk seam
   falling on an asid switch would stitch with the wrong automaton, and a
   mid-chunk invalidation would not exist in its vocabulary at all. The
   fix is demux-first: split the event stream into per-asid runs, cut at
   every invalidation/interrupt (each run re-enters at NTE — exactly what
   [Replayer.set_state nte] does in the demuxed replayer, with no
   accounting), and shard each run independently. Seams then never
   straddle an asid or a cut by construction, and the per-run profiles
   merge additively into exactly the per-asid sequential snapshot. *)

type run = { starts : int array; insns : int array; len : int }

type bucket = {
  mutable bs : int array;
  mutable bi : int array;
  mutable bn : int;
  mutable segs : run list; (* newest first *)
}

let load_events path =
  let buckets : (int, bucket) Hashtbl.t = Hashtbl.create 8 in
  let bucket a =
    match Hashtbl.find_opt buckets a with
    | Some b -> b
    | None ->
        let b =
          { bs = Array.make 1024 0; bi = Array.make 1024 0; bn = 0; segs = [] }
        in
        Hashtbl.add buckets a b;
        b
  in
  let cut b =
    if b.bn > 0 then begin
      b.segs <- { starts = b.bs; insns = b.bi; len = b.bn } :: b.segs;
      b.bs <- Array.make 1024 0;
      b.bi <- Array.make 1024 0;
      b.bn <- 0
    end
  in
  Pc_trace.fold_events path () (fun () ~asid ev ->
      match ev with
      | Pc_trace.Block { start; insns } ->
          let b = bucket asid in
          let cap = Array.length b.bs in
          if b.bn = cap then begin
            let s' = Array.make (2 * cap) 0 and i' = Array.make (2 * cap) 0 in
            Array.blit b.bs 0 s' 0 b.bn;
            Array.blit b.bi 0 i' 0 b.bn;
            b.bs <- s';
            b.bi <- i'
          end;
          b.bs.(b.bn) <- start;
          b.bi.(b.bn) <- insns;
          b.bn <- b.bn + 1
      (* a cut for an asid with no blocks yet mirrors the demuxed
         replayer's no-op on an unmaterialized entry: [bucket] is only
         consulted, never forced, when there is nothing to cut *)
      | Pc_trace.Invalidate { asid = target } -> (
          match Hashtbl.find_opt buckets target with
          | Some b -> cut b
          | None -> ())
      | Pc_trace.Interrupt -> (
          match Hashtbl.find_opt buckets asid with
          | Some b -> cut b
          | None -> ())
      | Pc_trace.Switch _ -> ());
  Hashtbl.fold
    (fun a b acc ->
      cut b;
      if b.segs = [] then acc else (a, List.rev b.segs) :: acc)
    buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let replay_events pool packed_for ?make path =
  load_events path
  |> List.map (fun (asid, runs) ->
         let packed = packed_for asid in
         let profile =
           Profile.merge_all
             (List.map
                (fun r ->
                  replay_arrays pool packed ?make ~insns:r.insns r.starts
                    ~len:r.len)
                runs)
         in
         (asid, profile))
