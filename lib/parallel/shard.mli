(** Sharded offline replay: one PC trace, [n] domains, the sequential
    profile — exactly.

    A TEA replay is a DFA walk, so chunking a PC trace naively breaks at
    the seams: a worker starting mid-trace does not know the automaton
    state its chunk begins in. The packed image makes the fix cheap. The
    DFA's step is [in_trace_edge(state, pc)], else [head(pc)], else NTE —
    so at any index whose PC appears in {b no} state's in-trace label set,
    the next state is [head(pc)]-or-NTE {e regardless of the current
    state}. Call such indices {b sync points}. Real traces are full of
    them (every cold block is one).

    Each worker scans its chunk for the first sync point [k], seeds a
    private {!Tea_core.Replayer} (over a {!Tea_core.Packed.dup} sibling of
    the shared image) with that entry-independent state, and replays the
    exact suffix [k+1 .. hi). The driver then stitches sequentially:
    chunk 0 is replayed whole from NTE; for every later chunk it replays
    only the short uncertain prefix [lo .. k] from the true carried-in
    state (asserting it lands on the state the worker assumed) and adopts
    the worker's exit state. Every index is thus replayed exactly once,
    from exactly the state the sequential run would have been in — so the
    {!Profile.merge} of all the pieces is bit-identical to the sequential
    profile, including stats and simulated cycles (property-tested for
    1/2/4 domains). A chunk with no sync point degrades gracefully: the
    driver replays it entirely.

    {b Fused images and chunk boundaries.} The scheme carries over
    unchanged to an image with a fusion overlay: superstate matching in
    {!Tea_core.Replayer.feed_run} is bounded by the batch it was handed,
    so a signature run never reads across a chunk seam — it ends at the
    boundary and resumes (from the carried state, which bulk accounting
    maintains exactly) in the next chunk's replay. Because fusion is
    observationally the identity, sync-point detection, entry-state
    stitching and the merged profile are all untouched; only the
    inline-cache hit/miss split can differ, the same exception already
    documented for chunk-local ICs (property-tested for 1/2/4 domains in
    [test_fuse.ml]).

    {b Engine choice.} Workers and the stitching driver build their
    replayers through the [make] factory (default: a packed-engine
    replayer over a {!Tea_core.Packed.dup} sibling). Passing a factory
    that compiles its dup ({!Tea_core.Replayer.create_compiled} over
    {!Tea_core.Compiled.of_packed}) runs every shard through
    closure-threaded dispatch; sync-point detection stays on the shared
    packed image, and since compiled dispatch is batch-bounded exactly
    like the interpreted loops, the merged profile remains bit-identical
    at any job count (property-tested in [test_compile.ml]). *)

val replay_span :
  Pool.t ->
  Tea_core.Packed.t ->
  ?make:(Tea_core.Packed.t -> Tea_core.Replayer.t) ->
  ?entry:Tea_core.Automaton.state ->
  ?insns:int array ->
  int array ->
  off:int ->
  len:int ->
  Profile.t * Tea_core.Automaton.state
(** [replay_span pool packed ~entry starts ~off ~len] — shard
    [starts.(off..off+len-1)] across the pool, entering the span in
    state [entry] (default NTE), and return the merged profile together
    with the true exit state of the walk. The generalization that makes
    {e segmented} sharded replay possible: replay a prefix span, swap
    images ({!Tea_core.Replayer.rebind} semantics — translate the exit
    state through [orig_of] and pass it as the next span's [entry]),
    replay the rest, and the merged profiles equal the sequential
    swapped run bit-for-bit — chunk seams and span seams commute with
    the same sync-point argument. [entry] only affects chunk 0 (and the
    stitching driver's start); every other chunk enters at its own sync
    point exactly as before.
    @raise Invalid_argument when [off..off+len) exceeds either array. *)

val replay_arrays :
  Pool.t ->
  Tea_core.Packed.t ->
  ?make:(Tea_core.Packed.t -> Tea_core.Replayer.t) ->
  ?insns:int array ->
  int array ->
  len:int ->
  Profile.t
(** [replay_arrays pool packed ~insns starts ~len] — shard
    [starts.(0..len-1)] (entry state NTE) across the pool and merge.
    [insns] is the parallel per-block instruction-count array (coverage
    counts 0 per block when absent). Workers credit replayed blocks to
    {!Pool.add_units}. [make] builds each worker's private replayer from
    the shared image — it must dup (never share mutable counters), and
    its engine must be observationally identical to the packed one.
    @raise Invalid_argument when [len] exceeds either array. *)

val load_pc_trace : string -> int array * int array * int
(** Decode a {!Tea_core.Pc_trace} file into [(starts, insns, len)]
    (arrays may be over-allocated; only [0..len-1] is valid). Decoding is
    inherently sequential — the format is delta-coded — so the parallel
    path decodes once up front instead of streaming.
    @raise Tea_core.Pc_trace.Corrupt on bad framing. *)

val replay_pc_trace :
  Pool.t ->
  Tea_core.Packed.t ->
  ?make:(Tea_core.Packed.t -> Tea_core.Replayer.t) ->
  string ->
  Profile.t * int
(** [load_pc_trace] then [replay_arrays]; returns the merged profile and
    the block count. Bit-identical to
    {!Tea_core.Pc_trace.replay_packed} over the same image. *)

(** {2 Multi-asid event streams}

    {!replay_arrays} assumes one uncut single-asid stream — its sync-point
    stitching carries a single automaton state across chunk seams, so a
    seam landing on an asid switch would stitch against the wrong
    automaton. The multi-asid path therefore demuxes {e first}: the v3
    event stream is split into per-asid runs, cut at every
    invalidation/interrupt (each run re-enters at NTE, matching the
    demuxed {!Tea_core.Multi_replayer} cut, which does no accounting),
    and each run is sharded independently. Seams never straddle an asid
    or a cut by construction; per-run profiles merge additively into
    exactly the per-asid sequential snapshot, at any job count. *)

type run = { starts : int array; insns : int array; len : int }
(** One contiguous single-asid block run; only [0..len-1] is valid
    (arrays may be over-allocated). *)

val load_events : string -> (int * run list) list
(** Decode any {!Tea_core.Pc_trace} format into per-asid runs, sorted by
    asid, runs in stream order. Asids with no blocks are absent (matching
    the lazy-entry rule of {!Tea_core.Multi_replayer}); a cut aimed at an
    asid with no blocks so far is a no-op.
    @raise Tea_core.Pc_trace.Corrupt on bad framing. *)

val replay_events :
  Pool.t ->
  (int -> Tea_core.Packed.t) ->
  ?make:(Tea_core.Packed.t -> Tea_core.Replayer.t) ->
  string ->
  (int * Profile.t) list
(** [replay_events pool packed_for path] — demux, then shard each asid's
    runs over [packed_for asid] (workers dup the image internally via
    [make]; a shared image per asid is fine) and merge per asid. The
    result equals
    {!Tea_core.Multi_replayer.snapshots} of a sequential demuxed replay
    over the same images, at any [--jobs] — the interleaved-replay hard
    gate. *)
