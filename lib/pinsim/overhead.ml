module Transition = Tea_core.Transition

type row = {
  native : float;
  without_pintool : float;
  empty : float;
  no_global_local : float;
  global_no_local : float;
  global_local : float;
  packed : float;
  compiled : float;
}

let measure ?(params = Cost_params.default) ?(pgo = false) ?(fuse = false)
    ?fuel ~traces image =
  let native = Pin.native_cycles ?fuel image in
  let ratio cycles =
    if native = 0 then 0.0 else float_of_int cycles /. float_of_int native
  in
  let without_pintool =
    let stats = Pin.run ~params ?fuel image in
    ratio stats.Pin.framework_cycles
  in
  let replay_with ?engine ?pgo ?fuse transition traces =
    let result, _rep =
      Pintool_replay.replay ~params ~transition ?engine ?pgo ?fuse ?fuel
        ~traces image
    in
    ratio result.Pintool_replay.total_cycles
  in
  {
    native = 1.0;
    without_pintool;
    empty = replay_with Transition.config_global_no_local [];
    no_global_local = replay_with Transition.config_no_global_local traces;
    global_no_local = replay_with Transition.config_global_no_local traces;
    global_local = replay_with Transition.config_global_local traces;
    packed =
      replay_with ~engine:`Packed ~pgo ~fuse Transition.config_global_local
        traces;
    compiled =
      replay_with ~engine:`Compiled ~pgo ~fuse Transition.config_global_local
        traces;
  }
