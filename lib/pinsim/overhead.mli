(** The Table 4 measurement harness: one program, seven configurations.

    - Native: plain execution (always 1.00);
    - Without Pintool: Pin alone (JIT + dispatch);
    - Empty: the replay pintool loaded with an empty trace set — global B+
      tree, no local caches, exactly the configuration footnoted in §4.2;
    - No Global / Local: linked-list container + per-state local caches;
    - Global / No Local: B+ tree, no caches;
    - Global / Local: both (the configuration behind Tables 2 and 3);
    - Packed: the flat-array {!Tea_core.Packed} engine — our beyond-paper
      column showing what the transition function costs once compiled;
    - Compiled: the closure-threaded {!Tea_core.Compiled} dispatch over
      the same packed image. Simulated cycles are engine-identical to
      Packed by construction, so equal columns {e are} the cycle-identity
      gate — the win is host ns/block, which Table 4's simulated ratios
      deliberately exclude. *)

type row = {
  native : float;            (** 1.00 by construction *)
  without_pintool : float;
  empty : float;
  no_global_local : float;
  global_no_local : float;
  global_local : float;
  packed : float;
  compiled : float;
}

val measure :
  ?params:Cost_params.t ->
  ?pgo:bool ->
  ?fuse:bool ->
  ?fuel:int ->
  traces:Tea_traces.Trace.t list ->
  Tea_isa.Image.t ->
  row
(** Slowdowns normalized to the native run of the same image. [pgo]
    (default false) profile-repacks the packed column's image on the
    measured stream first, and [fuse] (default false) superstate-fuses it
    ({!Pintool_replay.replay}'s [?pgo] / [?fuse]); the reference columns
    are unaffected. *)
