module Transition = Tea_core.Transition
module Packed = Tea_core.Packed
module Replayer = Tea_core.Replayer
module Builder = Tea_core.Builder

type engine = [ `Reference | `Packed | `Compiled ]

type result = {
  coverage : float;
  covered_insns : int;
  total_insns : int;
  native_cycles : int;
  framework_cycles : int;
  tool_cycles : int;
  total_cycles : int;
  slowdown : float;
  trace_enters : int;
  trace_exits : int;
  transition_stats : Transition.stats;
}

let replay ?(params = Cost_params.default)
    ?(transition = Transition.config_global_local) ?(engine = `Reference)
    ?(pgo = false) ?(fuse = false) ?fuel ~traces image =
  if pgo && engine = `Reference then
    invalid_arg "Pintool_replay.replay: pgo requires the packed engine";
  if fuse && engine = `Reference then
    invalid_arg "Pintool_replay.replay: fuse requires the packed engine";
  let auto = Builder.build traces in
  let rep =
    match engine with
    | `Reference -> Replayer.create (Transition.create transition auto)
    | `Packed -> Replayer.create_packed (Packed.freeze auto)
    | `Compiled ->
        Replayer.create_compiled (Tea_core.Compiled.of_packed (Packed.freeze auto))
  in
  (* §4.1: step the TEA on taken/fall-through edges (merged logical blocks),
     not on Pin's fragment boundaries. *)
  let analysis_calls = ref 0 in
  (* PGO/fusion path: buffer the edge stream during the (single) Pin run,
     then profile-repack and/or superstate-fuse the packed image and
     batch-replay the optimized engine — the pintool analogue of
     `tea_tool repack` / `tea_tool fuse`. One analysis call per emitted
     block either way. *)
  let tune = pgo || fuse in
  let pgo_addrs = ref [||] and pgo_insns = ref [||] and pgo_len = ref 0 in
  let push addr insns =
    let cap = Array.length !pgo_addrs in
    if !pgo_len = cap then begin
      let cap' = max 1024 (2 * cap) in
      let a = Array.make cap' 0 and b = Array.make cap' 0 in
      Array.blit !pgo_addrs 0 a 0 cap;
      Array.blit !pgo_insns 0 b 0 cap;
      pgo_addrs := a;
      pgo_insns := b
    end;
    !pgo_addrs.(!pgo_len) <- addr;
    !pgo_insns.(!pgo_len) <- insns;
    incr pgo_len
  in
  let filter =
    Edge_filter.create ~emit:(fun block ~expanded ->
        incr analysis_calls;
        if tune then push block.Tea_cfg.Block.start expanded
        else Replayer.feed_addr rep ~insns:expanded block.Tea_cfg.Block.start)
  in
  let stats = Pin.run ~params ?fuel ~tool:(Edge_filter.callbacks filter) image in
  Edge_filter.flush filter;
  let rep =
    if not tune then rep
    else begin
      let flat, recreate =
        match Replayer.engine rep with
        | Replayer.Packed flat -> (flat, Replayer.create_packed)
        | Replayer.Compiled c ->
            (* tuning rebuilds the image, so the closures must be
               re-specialized over the tuned layout *)
            ( Tea_core.Compiled.base c,
              fun img ->
                Replayer.create_compiled (Tea_core.Compiled.of_packed img) )
        | Replayer.Reference _ -> assert false
      in
      let img =
        if not pgo then flat
        else
          Tea_opt.Repack.repack flat
            (Tea_opt.Repack.collect flat !pgo_addrs ~len:!pgo_len)
      in
      let img =
        if not fuse then img
        else if not pgo then Tea_opt.Fuse.fuse img
        else
          (* pgo+fuse composition: the captured stream, re-collected
             over the repacked layout, gates chain selection *)
          let profile = Tea_opt.Repack.collect img !pgo_addrs ~len:!pgo_len in
          Tea_opt.Fuse.fuse ~profile img
      in
      let tuned = recreate img in
      Replayer.feed_run tuned ~insns:!pgo_insns !pgo_addrs ~len:!pgo_len;
      tuned
    end
  in
  let st = Replayer.stats rep in
  let tool_cycles =
    (params.Cost_params.analysis_call * !analysis_calls)
    + Replayer.cycles rep
    + (params.Cost_params.nte_side_work * st.Transition.global_misses)
  in
  let total_cycles = stats.Pin.framework_cycles + tool_cycles in
  let native = stats.Pin.native_cycles in
  ( {
      coverage = Replayer.coverage rep;
      covered_insns = Replayer.covered_insns rep;
      total_insns = Replayer.total_insns rep;
      native_cycles = native;
      framework_cycles = stats.Pin.framework_cycles;
      tool_cycles;
      total_cycles;
      slowdown =
        (if native = 0 then 0.0
         else float_of_int total_cycles /. float_of_int native);
      trace_enters = Replayer.trace_enters rep;
      trace_exits = Replayer.trace_exits rep;
      transition_stats = st;
    },
    rep )
