module Transition = Tea_core.Transition
module Packed = Tea_core.Packed
module Replayer = Tea_core.Replayer
module Builder = Tea_core.Builder

type engine = [ `Reference | `Packed ]

type result = {
  coverage : float;
  covered_insns : int;
  total_insns : int;
  native_cycles : int;
  framework_cycles : int;
  tool_cycles : int;
  total_cycles : int;
  slowdown : float;
  trace_enters : int;
  trace_exits : int;
  transition_stats : Transition.stats;
}

let replay ?(params = Cost_params.default)
    ?(transition = Transition.config_global_local) ?(engine = `Reference)
    ?fuel ~traces image =
  let auto = Builder.build traces in
  let rep =
    match engine with
    | `Reference -> Replayer.create (Transition.create transition auto)
    | `Packed -> Replayer.create_packed (Packed.freeze auto)
  in
  (* §4.1: step the TEA on taken/fall-through edges (merged logical blocks),
     not on Pin's fragment boundaries. *)
  let analysis_calls = ref 0 in
  let filter =
    Edge_filter.create ~emit:(fun block ~expanded ->
        incr analysis_calls;
        Replayer.feed_addr rep ~insns:expanded block.Tea_cfg.Block.start)
  in
  let stats = Pin.run ~params ?fuel ~tool:(Edge_filter.callbacks filter) image in
  Edge_filter.flush filter;
  let st = Replayer.stats rep in
  let tool_cycles =
    (params.Cost_params.analysis_call * !analysis_calls)
    + Replayer.cycles rep
    + (params.Cost_params.nte_side_work * st.Transition.global_misses)
  in
  let total_cycles = stats.Pin.framework_cycles + tool_cycles in
  let native = stats.Pin.native_cycles in
  ( {
      coverage = Replayer.coverage rep;
      covered_insns = Replayer.covered_insns rep;
      total_insns = Replayer.total_insns rep;
      native_cycles = native;
      framework_cycles = stats.Pin.framework_cycles;
      tool_cycles;
      total_cycles;
      slowdown =
        (if native = 0 then 0.0
         else float_of_int total_cycles /. float_of_int native);
      trace_enters = Replayer.trace_enters rep;
      trace_exits = Replayer.trace_exits rep;
      transition_stats = st;
    },
    rep )
