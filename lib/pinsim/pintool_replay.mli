(** The trace-replaying pintool (paper §4, Table 2).

    Loads traces recorded elsewhere (typically by {!Tea_dbt.Stardbt}),
    builds the TEA with Algorithm 1, and replays the running program's edge
    stream through it, collecting coverage and per-TBB profiles on the
    *unmodified* executable. *)

type engine = [ `Reference | `Packed | `Compiled ]
(** Which transition engine drives the replayer: the paper-faithful
    {!Tea_core.Transition} (configured by [?transition]), the flat-array
    {!Tea_core.Packed} fast path (which ignores [?transition] — it has no
    container/cache knobs), or the closure-threaded
    {!Tea_core.Compiled} dispatch over the same packed image
    (observationally identical to [`Packed], including simulated
    cycles). *)

type result = {
  coverage : float;
  covered_insns : int;
  total_insns : int;
  native_cycles : int;
  framework_cycles : int;   (** Pin base: native + JIT + dispatch *)
  tool_cycles : int;        (** analysis calls + transition fn + NTE work *)
  total_cycles : int;       (** the pintool run's simulated "Time" *)
  slowdown : float;         (** total / native *)
  trace_enters : int;
  trace_exits : int;
  transition_stats : Tea_core.Transition.stats;
}

val replay :
  ?params:Cost_params.t ->
  ?transition:Tea_core.Transition.config ->
  ?engine:engine ->
  ?pgo:bool ->
  ?fuse:bool ->
  ?fuel:int ->
  traces:Tea_traces.Trace.t list ->
  Tea_isa.Image.t ->
  result * Tea_core.Replayer.t
(** The returned replayer retains per-state profiles for inspection.
    [engine] defaults to [`Reference]. With [~pgo:true] (packed or
    compiled engine — [Invalid_argument] on the reference one) the edge
    stream of the single simulated run is buffered, used to
    {!Tea_opt.Repack.repack} the image, and replayed through the
    repacked engine; coverage, profiles and analysis-call counts are
    identical to the non-PGO run, simulated transition cycles can only
    improve. [~fuse:true] (packed or compiled engine) additionally runs
    {!Tea_opt.Fuse.fuse} over the (possibly repacked) image and replays
    through the superstate-fused engine; the passes compose, and every
    observable is still identical (on [`Compiled] the closures are
    re-specialized over the tuned image). *)
