let record ?fuel ?format image path =
  let writer = Tea_core.Pc_trace.open_writer ?format path in
  let count = ref 0 in
  let filter =
    Edge_filter.create ~emit:(fun block ~expanded ->
        incr count;
        Tea_core.Pc_trace.write writer ~start:block.Tea_cfg.Block.start
          ~insns:expanded)
  in
  Fun.protect
    ~finally:(fun () -> Tea_core.Pc_trace.close_writer writer)
    (fun () ->
      let _stats = Pin.run ?fuel ~tool:(Edge_filter.callbacks filter) image in
      Edge_filter.flush filter);
  !count
