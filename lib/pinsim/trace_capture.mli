(** Capture an execution's logical-block stream to a {!Tea_core.Pc_trace}
    file — the producing half of the fully-decoupled replay workflow: run
    the program once under the instrumentation frontend, ship the (small)
    trace file anywhere, replay TEAs against it offline at will. *)

val record :
  ?fuel:int -> ?format:Tea_core.Pc_trace.format -> Tea_isa.Image.t -> string -> int
(** [record image path] runs [image] under the Pin-policy frontend with
    §4.1 edge filtering and writes every logical block to [path]. Returns
    the number of block records written. [format] selects the trace
    encoding (default [V2]; a single-process capture under [V3] emits
    only block records in asid 0). *)
