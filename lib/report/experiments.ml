module Spec = Tea_workloads.Spec2000
module Proggen = Tea_workloads.Proggen
module Stardbt = Tea_dbt.Stardbt
module Trace_set = Tea_traces.Trace_set
module Registry = Tea_traces.Registry
module Automaton = Tea_core.Automaton
module Builder = Tea_core.Builder
module Pool = Tea_parallel.Pool

type bench = {
  profile : Proggen.profile;
  image : Tea_isa.Image.t;
  dbt : (string * Stardbt.result) list;
}

(* Every driver below is a per-benchmark [List.map] with independent,
   deterministic bodies, so the parallel version is just the same map run
   on a pool: results come back in benchmark order and each body computes
   exactly what it computes sequentially — which is why every rendered
   table is byte-identical whatever [--jobs] is. *)
let pmap ?pool f xs =
  match pool with None -> List.map f xs | Some p -> Pool.map_list p f xs

let credit ?pool n =
  match pool with None -> () | Some p -> Pool.add_units p n

let prepare ?pool ?benchmarks ?config ?fuel () =
  let profiles =
    match benchmarks with
    | None -> Spec.all
    | Some names ->
        List.filter_map
          (fun n ->
            match Spec.by_name n with
            | Some p -> Some p
            | None -> invalid_arg (Printf.sprintf "Experiments.prepare: %s" n))
          names
  in
  pmap ?pool
    (fun profile ->
      Tea_telemetry.Probe.with_span
        ("prepare/" ^ profile.Proggen.name)
      @@ fun () ->
      let image = Spec.image profile in
      let dbt =
        List.map
          (fun (name, strategy) ->
            (name, Stardbt.record ?config ?fuel ~strategy image))
          Registry.all
      in
      credit ?pool
        (List.fold_left (fun acc (_, r) -> acc + r.Stardbt.total_insns) 0 dbt);
      { profile; image; dbt })
    profiles

let mret_traces b = Trace_set.to_list (List.assoc "mret" b.dbt).Stardbt.set

let mcycles c = float_of_int c /. 1.0e6

(* ---------- Table 1 ---------- *)

type size_cell = { dbt_bytes : int; tea_bytes : int; saving : float }

type table1_row = { t1_name : string; cells : (string * size_cell) list }

let table1 ?pool benches =
  pmap ?pool
    (fun b ->
      let cells =
        List.map
          (fun (strategy, (r : Stardbt.result)) ->
            Tea_telemetry.Probe.with_span
              ("table1/" ^ b.profile.Proggen.name ^ "/" ^ strategy)
              ~post:(fun (_, c) ->
                [ ("tea_bytes", string_of_int c.tea_bytes) ])
            @@ fun () ->
            let dbt_bytes = Trace_set.dbt_bytes r.Stardbt.set b.image in
            let tea_bytes =
              Automaton.byte_size (Builder.of_set r.Stardbt.set)
            in
            ( strategy,
              { dbt_bytes; tea_bytes; saving = Stats.savings ~dbt:dbt_bytes ~tea:tea_bytes }
            ))
          b.dbt
      in
      { t1_name = b.profile.Proggen.name; cells })
    benches

let render_table1 rows =
  let strategies = match rows with [] -> [] | r :: _ -> List.map fst r.cells in
  let header =
    "benchmark"
    :: List.concat_map
         (fun s ->
           let s = String.uppercase_ascii s in
           [ s ^ " DBT"; s ^ " TEA"; "Savings" ])
         strategies
  in
  let body =
    List.map
      (fun r ->
        r.t1_name
        :: List.concat_map
             (fun (_, c) ->
               [
                 string_of_int (Stats.kb c.dbt_bytes);
                 string_of_int (Stats.kb c.tea_bytes);
                 Stats.percent c.saving;
               ])
             r.cells)
      rows
  in
  let geomeans =
    "GeoMean"
    :: List.concat_map
         (fun s ->
           let savings =
             List.map (fun r -> (List.assoc s r.cells).saving) rows
           in
           [ ""; ""; Stats.percent (Stats.geomean savings) ])
         strategies
  in
  "Table 1: Size Savings with TEA (sizes in KB)\n"
  ^ Table.render ~header (body @ [ geomeans ])

(* ---------- Table 2 ---------- *)

type table2_row = {
  t2_name : string;
  tea_coverage : float;
  tea_mcycles : float;
  dbt_coverage : float;
  dbt_mcycles : float;
}

let table2 ?pool ?fuel benches =
  pmap ?pool
    (fun b ->
      Tea_telemetry.Probe.with_span ("table2/" ^ b.profile.Proggen.name)
        ~post:(fun r ->
          [ ("sim_mcycles", Printf.sprintf "%.2f" r.tea_mcycles) ])
      @@ fun () ->
      let traces = mret_traces b in
      let dbt_result = List.assoc "mret" b.dbt in
      let res, _rep = Tea_pinsim.Pintool_replay.replay ?fuel ~traces b.image in
      credit ?pool res.Tea_pinsim.Pintool_replay.total_insns;
      {
        t2_name = b.profile.Proggen.name;
        tea_coverage = res.Tea_pinsim.Pintool_replay.coverage;
        tea_mcycles = mcycles res.Tea_pinsim.Pintool_replay.total_cycles;
        dbt_coverage = dbt_result.Stardbt.coverage;
        dbt_mcycles = mcycles dbt_result.Stardbt.dbt_cycles;
      })
    benches

let render_cov_time ~title rows =
  let header =
    [ "Benchmark"; "TEA Coverage"; "TEA Time"; "DBT Coverage"; "DBT Time" ]
  in
  let body =
    List.map
      (fun (name, tc, tt, dc, dt) ->
        [ name; Stats.percent1 tc; Printf.sprintf "%.1f" tt;
          Stats.percent1 dc; Printf.sprintf "%.1f" dt ])
      rows
  in
  let geo f = Stats.geomean (List.map f rows) in
  let geomeans =
    [
      "GeoMean";
      Stats.percent1 (geo (fun (_, tc, _, _, _) -> tc));
      Printf.sprintf "%.1f" (geo (fun (_, _, tt, _, _) -> tt));
      Stats.percent1 (geo (fun (_, _, _, dc, _) -> dc));
      Printf.sprintf "%.1f" (geo (fun (_, _, _, _, dt) -> dt));
    ]
  in
  title ^ " (Time in simulated Mcycles)\n"
  ^ Table.render ~header (body @ [ geomeans ])

let render_table2 rows =
  render_cov_time ~title:"Table 2: TEA Runtime Aspects - Replaying"
    (List.map
       (fun r -> (r.t2_name, r.tea_coverage, r.tea_mcycles, r.dbt_coverage, r.dbt_mcycles))
       rows)

(* ---------- Table 3 ---------- *)

type table3_row = {
  t3_name : string;
  pin_coverage : float;
  pin_mcycles : float;
  sdbt_coverage : float;
  sdbt_mcycles : float;
  n_traces : int;
}

let table3 ?pool ?fuel benches =
  let mret = List.assoc "mret" Registry.all in
  pmap ?pool
    (fun b ->
      Tea_telemetry.Probe.with_span ("table3/" ^ b.profile.Proggen.name)
        ~post:(fun r ->
          [ ("sim_mcycles", Printf.sprintf "%.2f" r.pin_mcycles) ])
      @@ fun () ->
      let dbt_result = List.assoc "mret" b.dbt in
      let res, _online =
        Tea_pinsim.Pintool_record.record ?fuel ~strategy:mret b.image
      in
      credit ?pool res.Tea_pinsim.Pintool_record.total_insns;
      {
        t3_name = b.profile.Proggen.name;
        pin_coverage = res.Tea_pinsim.Pintool_record.coverage;
        pin_mcycles = mcycles res.Tea_pinsim.Pintool_record.total_cycles;
        sdbt_coverage = dbt_result.Stardbt.coverage;
        sdbt_mcycles = mcycles dbt_result.Stardbt.dbt_cycles;
        n_traces = List.length res.Tea_pinsim.Pintool_record.traces;
      })
    benches

let render_table3 rows =
  render_cov_time ~title:"Table 3: TEA Runtime Aspects - Recording"
    (List.map
       (fun r ->
         (r.t3_name, r.pin_coverage, r.pin_mcycles, r.sdbt_coverage, r.sdbt_mcycles))
       rows)

(* ---------- Table 4 ---------- *)

type table4_row = { t4_name : string; row : Tea_pinsim.Overhead.row }

let table4 ?pool ?pgo ?fuse ?fuel benches =
  pmap ?pool
    (fun b ->
      Tea_telemetry.Probe.with_span ("table4/" ^ b.profile.Proggen.name)
        ~post:(fun r ->
          [ ("global_local", Printf.sprintf "%.2f" r.row.Tea_pinsim.Overhead.global_local) ])
      @@ fun () ->
      let traces = mret_traces b in
      {
        t4_name = b.profile.Proggen.name;
        row = Tea_pinsim.Overhead.measure ?pgo ?fuse ?fuel ~traces b.image;
      })
    benches

let render_table4 rows =
  (* The "Packed" and "Compiled" engine columns go beyond the paper's
     three reference configurations: same DFA, flat-array transition
     function, then the closure-threaded specialization of it. Equal
     Packed/Compiled columns are expected — simulated cycles are
     engine-identical by construction; compiled dispatch buys host
     ns/block, which these simulated ratios deliberately exclude. *)
  let header =
    [
      "Benchmark"; "Native"; "Without Pintool"; "Empty"; "No Global / Local";
      "Global / No Local"; "Global / Local"; "Packed"; "Compiled";
    ]
  in
  let open Tea_pinsim.Overhead in
  let body =
    List.map
      (fun r ->
        [
          r.t4_name; Stats.ratio r.row.native; Stats.ratio r.row.without_pintool;
          Stats.ratio r.row.empty; Stats.ratio r.row.no_global_local;
          Stats.ratio r.row.global_no_local; Stats.ratio r.row.global_local;
          Stats.ratio r.row.packed; Stats.ratio r.row.compiled;
        ])
      rows
  in
  let geo f = Stats.geomean (List.map (fun r -> f r.row) rows) in
  let geomeans =
    [
      "GeoMean"; "1.00";
      Stats.ratio (geo (fun r -> r.without_pintool));
      Stats.ratio (geo (fun r -> r.empty));
      Stats.ratio (geo (fun r -> r.no_global_local));
      Stats.ratio (geo (fun r -> r.global_no_local));
      Stats.ratio (geo (fun r -> r.global_local));
      Stats.ratio (geo (fun r -> r.packed));
      Stats.ratio (geo (fun r -> r.compiled));
    ]
  in
  "Table 4: TEA Overhead for Various Configurations (slowdown vs native)\n"
  ^ Table.render ~header (body @ [ geomeans ])
