(** Experiment drivers: one per table of the paper's evaluation (§4).

    Each driver consumes prepared per-benchmark data (program image plus
    StarDBT recording runs for each strategy) and produces row records plus
    a paper-shaped ASCII rendering. "Time" columns report simulated
    mega-cycles — absolute magnitudes cannot match the paper's seconds
    (our substrate is an interpreter, our workloads are synthetic), but the
    ratios and orderings are the reproduction targets; see EXPERIMENTS.md. *)

type bench = {
  profile : Tea_workloads.Proggen.profile;
  image : Tea_isa.Image.t;
  dbt : (string * Tea_dbt.Stardbt.result) list;
      (** per strategy, in {!Tea_traces.Registry.all} order *)
}

val prepare :
  ?pool:Tea_parallel.Pool.t ->
  ?benchmarks:string list ->
  ?config:Tea_traces.Recorder.config ->
  ?fuel:int ->
  unit ->
  bench list
(** Generate images and run the StarDBT recorder with every strategy.
    [benchmarks] defaults to all 26.

    Every driver here accepts an optional [pool]: benchmarks are
    independent, so they shard across the pool's domains, with results
    (and therefore every rendered table) byte-identical to the sequential
    run — only wall-clock time and the pool's per-domain counters differ.
    Omitting [pool] is the plain sequential [List.map]. *)

val mret_traces : bench -> Tea_traces.Trace.t list
(** The MRET trace set from the prepared DBT run (Tables 2-4 input). *)

(** {1 Table 1 — size savings} *)

type size_cell = { dbt_bytes : int; tea_bytes : int; saving : float }

type table1_row = { t1_name : string; cells : (string * size_cell) list }

val table1 : ?pool:Tea_parallel.Pool.t -> bench list -> table1_row list

val render_table1 : table1_row list -> string

(** {1 Table 2 — replaying} *)

type table2_row = {
  t2_name : string;
  tea_coverage : float;
  tea_mcycles : float;
  dbt_coverage : float;
  dbt_mcycles : float;
}

val table2 : ?pool:Tea_parallel.Pool.t -> ?fuel:int -> bench list -> table2_row list

val render_table2 : table2_row list -> string

(** {1 Table 3 — recording} *)

type table3_row = {
  t3_name : string;
  pin_coverage : float;
  pin_mcycles : float;
  sdbt_coverage : float;
  sdbt_mcycles : float;
  n_traces : int;
}

val table3 : ?pool:Tea_parallel.Pool.t -> ?fuel:int -> bench list -> table3_row list

val render_table3 : table3_row list -> string

(** {1 Table 4 — overhead ablation} *)

type table4_row = { t4_name : string; row : Tea_pinsim.Overhead.row }

val table4 :
  ?pool:Tea_parallel.Pool.t ->
  ?pgo:bool ->
  ?fuse:bool ->
  ?fuel:int ->
  bench list ->
  table4_row list
(** [pgo] profile-repacks the packed column's engine on each benchmark's
    own stream before measuring, [fuse] superstate-fuses it; both compose
    ({!Tea_pinsim.Overhead.measure}). *)

val render_table4 : table4_row list -> string
