(* Hotness report over a dispatch-tier snapshot: overall tier mix and
   fusion coverage, then the top-N states by blocks resolved with their
   per-tier split. Pure function of the snapshot (sorting breaks ties on
   state id), so deterministic runs render deterministically. *)

module Tierstat = Tea_core.Tierstat
module Packed = Tea_core.Packed

let default_top = 10

let render ?(top = default_top) ?image (s : Tierstat.snapshot) =
  let buf = Buffer.create 512 in
  let total = Tierstat.total s in
  Buffer.add_string buf "dispatch tiers\n";
  if total = 0 then Buffer.add_string buf "(no blocks resolved)\n"
  else begin
    let pct n = Stats.percent1 (float_of_int n /. float_of_int total) in
    let mix =
      String.concat "  "
        (List.init Tierstat.n_tiers (fun t ->
             Printf.sprintf "%s=%s" (Tierstat.tier_name t)
               (pct s.Tierstat.ts_totals.(t))))
    in
    Buffer.add_string buf
      (Printf.sprintf "blocks: %d  %s\n" total mix);
    Buffer.add_string buf
      (Printf.sprintf "fusion coverage: %s\n"
         (pct s.Tierstat.ts_totals.(Tierstat.t_fused)));
    (* per-state rows, translated out of slot space when the image is
       repacked so ids match the TBB mappings everywhere else *)
    let translate =
      match image with
      | Some p when Packed.is_repacked p -> fun st -> Packed.orig_state p st
      | _ -> fun st -> st
    in
    let rows =
      List.map
        (fun (st, row) -> (translate st, Array.fold_left ( + ) 0 row, row))
        s.Tierstat.ts_states
      |> List.sort (fun (ia, ta, _) (ib, tb, _) ->
             let c = Int.compare tb ta in
             if c <> 0 then c else Int.compare ia ib)
      |> List.filteri (fun i _ -> i < top)
    in
    if rows <> [] then begin
      Buffer.add_char buf '\n';
      let body =
        List.map
          (fun (st, t, row) ->
            string_of_int st :: string_of_int t :: pct t
            :: List.init Tierstat.n_tiers (fun i -> string_of_int row.(i)))
          rows
      in
      let header =
        "state" :: "blocks" :: "share"
        :: List.init Tierstat.n_tiers Tierstat.tier_name
      in
      let align = Table.Right :: List.map (fun _ -> Table.Right) (List.tl header) in
      Buffer.add_string buf (Table.render ~align ~header body)
    end
  end;
  Buffer.contents buf
