(** Hotness report for the dispatch-tier profiler: overall tier mix,
    fusion coverage, and the top-N states by blocks resolved with their
    per-tier split.

    When [image] is a repacked {!Tea_core.Packed} image, per-state rows
    translate slot ids back to automaton ids
    ({!Tea_core.Packed.orig_state}) so they line up with TBB mappings
    and fleet profiles. Deterministic: rows sort by blocks descending,
    state id ascending. *)

val default_top : int
(** 10. *)

val render : ?top:int -> ?image:Tea_core.Packed.t -> Tea_core.Tierstat.snapshot -> string
