let geomean xs =
  let xs = List.filter (fun x -> x > 0.0) xs in
  match xs with
  | [] -> 0.0
  | _ ->
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percent f = Printf.sprintf "%.0f%%" (100.0 *. f)

let percent1 f = Printf.sprintf "%.1f%%" (100.0 *. f)

let ratio f = Printf.sprintf "%.2f" f

let kb bytes = max 1 ((bytes + 1023) / 1024)

let savings ~dbt ~tea =
  if dbt <= 0 then 0.0 else 1.0 -. (float_of_int tea /. float_of_int dbt)

let rate units secs =
  if secs <= 0.0 || units = 0 then "-"
  else
    let r = float_of_int units /. secs in
    if r >= 1.0e6 then Printf.sprintf "%.1fM/s" (r /. 1.0e6)
    else if r >= 1.0e3 then Printf.sprintf "%.1fk/s" (r /. 1.0e3)
    else Printf.sprintf "%.0f/s" r

(* The one rendering for every telemetry snapshot: the pool's per-domain
   counters, the probe registry behind `--metrics`, anything mergeable.
   Counters are a two-column table; histograms get count/sum plus their
   non-empty log2 buckets. Output is a pure function of the snapshot, so
   a deterministic run renders deterministically (the golden test pins
   this for a listscan replay). *)
let render ?(title = "telemetry") (s : Tea_telemetry.Metrics.snapshot) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  if s.Tea_telemetry.Metrics.s_counters = []
     && s.Tea_telemetry.Metrics.s_histograms = []
  then Buffer.add_string buf "(no samples)\n"
  else begin
    if s.Tea_telemetry.Metrics.s_counters <> [] then begin
      let body =
        List.map
          (fun (name, v) -> [ name; string_of_int v ])
          s.Tea_telemetry.Metrics.s_counters
      in
      Buffer.add_string buf (Table.render ~header:[ "counter"; "value" ] body)
    end;
    if s.Tea_telemetry.Metrics.s_histograms <> [] then begin
      if s.Tea_telemetry.Metrics.s_counters <> [] then
        Buffer.add_char buf '\n';
      let body =
        List.map
          (fun (name, h) ->
            let open Tea_telemetry.Metrics in
            let buckets =
              String.concat " "
                (List.map
                   (fun (b, n) ->
                     Printf.sprintf "%s=%d" (bucket_label b) n)
                   h.hs_buckets)
            in
            [ name; string_of_int h.hs_count; string_of_int h.hs_sum; buckets ])
          s.Tea_telemetry.Metrics.s_histograms
      in
      Buffer.add_string buf
        (Table.render
           ~align:[ Table.Left; Table.Right; Table.Right; Table.Left ]
           ~header:[ "histogram"; "count"; "sum"; "buckets" ]
           body)
    end
  end;
  Buffer.contents buf
