let geomean xs =
  let xs = List.filter (fun x -> x > 0.0) xs in
  match xs with
  | [] -> 0.0
  | _ ->
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percent f = Printf.sprintf "%.0f%%" (100.0 *. f)

let percent1 f = Printf.sprintf "%.1f%%" (100.0 *. f)

let ratio f = Printf.sprintf "%.2f" f

let kb bytes = max 1 ((bytes + 1023) / 1024)

let savings ~dbt ~tea =
  if dbt <= 0 then 0.0 else 1.0 -. (float_of_int tea /. float_of_int dbt)

let rate units secs =
  if secs <= 0.0 || units = 0 then "-"
  else
    let r = float_of_int units /. secs in
    if r >= 1.0e6 then Printf.sprintf "%.1fM/s" (r /. 1.0e6)
    else if r >= 1.0e3 then Printf.sprintf "%.1fk/s" (r /. 1.0e3)
    else Printf.sprintf "%.0f/s" r

let render_domains ?(residual = 0) stats =
  let header = [ "domain"; "tasks"; "busy"; "wait"; "units"; "throughput" ] in
  let body =
    List.map
      (fun d ->
        let open Tea_parallel.Pool in
        [
          string_of_int d.d_index;
          string_of_int d.d_tasks;
          Printf.sprintf "%.2fs" d.d_busy;
          Printf.sprintf "%.2fs" d.d_wait;
          string_of_int d.d_units;
          rate d.d_units d.d_busy;
        ])
      stats
  in
  let driver_row =
    if residual = 0 then []
    else [ [ "driver"; "-"; "-"; "-"; string_of_int residual; "-" ] ]
  in
  let totals =
    let open Tea_parallel.Pool in
    let tasks = List.fold_left (fun a d -> a + d.d_tasks) 0 stats in
    let busy = List.fold_left (fun a d -> a +. d.d_busy) 0.0 stats in
    let wait = List.fold_left (fun a d -> a +. d.d_wait) 0.0 stats in
    let units = residual + List.fold_left (fun a d -> a + d.d_units) 0 stats in
    [
      "total"; string_of_int tasks; Printf.sprintf "%.2fs" busy;
      Printf.sprintf "%.2fs" wait; string_of_int units; rate units busy;
    ]
  in
  "Per-domain replay counters\n"
  ^ Table.render ~header (body @ driver_row @ [ totals ])
