(** Small statistics helpers used by the experiment tables. *)

val geomean : float list -> float
(** Geometric mean; zero/negative entries are skipped (the paper's tables
    never contain them). Returns 0 on an empty list. *)

val mean : float list -> float

val percent : float -> string
(** ["77%"] style, rounded to the nearest integer. *)

val percent1 : float -> string
(** ["99.8%"] style, one decimal. *)

val ratio : float -> string
(** ["13.53"] style, two decimals. *)

val kb : int -> int
(** Bytes to whole KB, rounding up (sizes under 1 KB still show as 1). *)

val savings : dbt:int -> tea:int -> float
(** [1 - tea/dbt], the Table 1 "Savings" fraction. *)

val rate : int -> float -> string
(** [rate units secs] — ["3.2M/s"]-style throughput; ["-"] when nothing
    was measured. *)

val render : ?title:string -> Tea_telemetry.Metrics.snapshot -> string
(** ASCII rendering of a telemetry snapshot: a counter table and, when
    present, a histogram table (count, sum, non-empty log2 buckets). The
    one sink for every metrics surface — `tea_tool --metrics`, the pool's
    per-domain counters ({!Tea_parallel.Pool.metrics_snapshot}, printed to
    stderr so parallel stdout stays byte-identical to sequential), and the
    bench harness. Deterministic input renders deterministically (golden
    tested). *)
