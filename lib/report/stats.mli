(** Small statistics helpers used by the experiment tables. *)

val geomean : float list -> float
(** Geometric mean; zero/negative entries are skipped (the paper's tables
    never contain them). Returns 0 on an empty list. *)

val mean : float list -> float

val percent : float -> string
(** ["77%"] style, rounded to the nearest integer. *)

val percent1 : float -> string
(** ["99.8%"] style, one decimal. *)

val ratio : float -> string
(** ["13.53"] style, two decimals. *)

val kb : int -> int
(** Bytes to whole KB, rounding up (sizes under 1 KB still show as 1). *)

val savings : dbt:int -> tea:int -> float
(** [1 - tea/dbt], the Table 1 "Savings" fraction. *)

val rate : int -> float -> string
(** [rate units secs] — ["3.2M/s"]-style throughput; ["-"] when nothing
    was measured. *)

val render_domains :
  ?residual:int -> Tea_parallel.Pool.domain_stat list -> string
(** ASCII table of the pool's per-domain observability counters (tasks,
    busy/wait seconds, work units, throughput) plus a totals row.
    [residual] ({!Tea_parallel.Pool.residual_units}) shows up as a
    "driver" row — the stitching work done outside any worker. The
    parallel CLI paths print this to stderr, keeping stdout byte-identical
    to the sequential run. *)
