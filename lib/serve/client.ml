exception Server_error of string

(* Bounded exponential backoff around connect: a smoke client racing
   daemon startup sees ECONNREFUSED (socket bound, backlog not yet
   listening — or, for a unix path, ENOENT before the bind), not a
   protocol error. Only connect-phase failures retry; once connected,
   errors propagate untouched. *)
let connect ?(retries = 0) ?(backoff = 0.05) addr =
  if retries < 0 then invalid_arg "Client: retries must be >= 0";
  if backoff <= 0.0 then invalid_arg "Client: backoff must be positive";
  let rec go attempt delay =
    match Frame.connect addr with
    | fd -> fd
    | exception
        Unix.Unix_error
          ( ( Unix.ECONNREFUSED | Unix.EAGAIN | Unix.EWOULDBLOCK
            | Unix.ENOENT ),
            _,
            _ )
      when attempt < retries ->
        (* select as a sub-second portable sleep *)
        ignore (Unix.select [] [] [] delay);
        go (attempt + 1) (delay *. 2.0)
  in
  go 0 backoff

let with_connection ?retries ?backoff addr f =
  let fd = connect ?retries ?backoff addr in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)

let send_stream ?(chunk = 65536) fd s =
  if chunk < 1 then invalid_arg "Client: chunk must be >= 1";
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    let k = min chunk (n - !off) in
    Frame.send fd Frame.tag_data (String.sub s !off k);
    off := !off + k
  done

let replay_string ?retries ?backoff ?chunk addr s =
  with_connection ?retries ?backoff addr (fun fd ->
      (* The server may reject the stream — error frame sent, its end
         closed — while we are still writing chunks. The rejection frame
         is already queued on our side of the socket, so swallow the
         write failure and fall through to the reply read. *)
      (try
         send_stream ?chunk fd s;
         Frame.send fd Frame.tag_end ""
       with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
      match Frame.recv fd with
      | None -> raise (Frame.Corrupt "server closed without a reply")
      | Some f when f.Frame.tag = Frame.tag_profile ->
          Frame.decode_profile f.Frame.payload
      | Some f when f.Frame.tag = Frame.tag_error ->
          raise (Server_error f.Frame.payload)
      | Some f ->
          raise
            (Frame.Corrupt
               (Printf.sprintf "unexpected reply tag %C" f.Frame.tag)))

let replay ?retries ?backoff ?chunk addr path =
  replay_string ?retries ?backoff ?chunk addr
    (Tea_core.Pc_trace.read_all path)

let scrape ?retries ?backoff addr =
  with_connection ?retries ?backoff addr (fun fd ->
      Frame.send fd Frame.tag_scrape "";
      match Frame.recv fd with
      | None -> raise (Frame.Corrupt "server closed without a reply")
      | Some f when f.Frame.tag = Frame.tag_metrics -> f.Frame.payload
      | Some f when f.Frame.tag = Frame.tag_error ->
          raise (Server_error f.Frame.payload)
      | Some f ->
          raise
            (Frame.Corrupt
               (Printf.sprintf "unexpected reply tag %C" f.Frame.tag)))

let abort ~bytes_sent addr path =
  let s = Tea_core.Pc_trace.read_all path in
  let n = min bytes_sent (String.length s) in
  with_connection addr (fun fd ->
      send_stream fd (String.sub s 0 n)
      (* no end-of-stream frame: the close below is the disconnect *))
