exception Server_error of string

let with_connection addr f =
  let fd = Frame.connect addr in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)

let send_stream ?(chunk = 65536) fd s =
  if chunk < 1 then invalid_arg "Client: chunk must be >= 1";
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    let k = min chunk (n - !off) in
    Frame.send fd Frame.tag_data (String.sub s !off k);
    off := !off + k
  done

let replay_string ?chunk addr s =
  with_connection addr (fun fd ->
      (* The server may reject the stream — error frame sent, its end
         closed — while we are still writing chunks. The rejection frame
         is already queued on our side of the socket, so swallow the
         write failure and fall through to the reply read. *)
      (try
         send_stream ?chunk fd s;
         Frame.send fd Frame.tag_end ""
       with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
      match Frame.recv fd with
      | None -> raise (Frame.Corrupt "server closed without a reply")
      | Some f when f.Frame.tag = Frame.tag_profile ->
          Frame.decode_profile f.Frame.payload
      | Some f when f.Frame.tag = Frame.tag_error ->
          raise (Server_error f.Frame.payload)
      | Some f ->
          raise
            (Frame.Corrupt
               (Printf.sprintf "unexpected reply tag %C" f.Frame.tag)))

let replay ?chunk addr path =
  replay_string ?chunk addr (Tea_core.Pc_trace.read_all path)

let scrape addr =
  with_connection addr (fun fd ->
      Frame.send fd Frame.tag_scrape "";
      match Frame.recv fd with
      | None -> raise (Frame.Corrupt "server closed without a reply")
      | Some f when f.Frame.tag = Frame.tag_metrics -> f.Frame.payload
      | Some f when f.Frame.tag = Frame.tag_error ->
          raise (Server_error f.Frame.payload)
      | Some f ->
          raise
            (Frame.Corrupt
               (Printf.sprintf "unexpected reply tag %C" f.Frame.tag)))

let abort ~bytes_sent addr path =
  let s = Tea_core.Pc_trace.read_all path in
  let n = min bytes_sent (String.length s) in
  with_connection addr (fun fd ->
      send_stream fd (String.sub s 0 n)
      (* no end-of-stream frame: the close below is the disconnect *))
